(** Fixed-size domain pool with a deterministic-merge contract.

    The pool spawns its worker domains once, at [create] time, and
    reuses them for every subsequent [map]/[map_reduce] call: spawning
    a domain costs milliseconds, so per-call spawning would dwarf the
    work we hand it.  Work is distributed by chunked work-stealing —
    the input array is cut into contiguous chunks and idle workers
    claim the next unclaimed chunk — but results are merged by chunk
    index, never by completion order.  Consequently the output of
    every entry point is byte-for-byte identical to its sequential
    equivalent, no matter how the scheduler interleaves the workers.
    Callers rely on that determinism for answer- and
    leakage-equivalence proofs, so it is part of the interface, not an
    implementation detail.

    All concurrency primitives used by this repository (Domain, Mutex,
    Condition, Atomic) live behind this module and {!Lock}; the
    [concurrency] lint rule rejects direct references anywhere else in
    the tree. *)

type t
(** A pool of worker domains.  A pool of size 1 spawns no domains and
    runs everything on the calling domain. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the
    caller's domain is the remaining worker).  [domains] defaults to
    {!recommended_domains}[ ()] and is clamped to [\[1, 64\]]. *)

val size : t -> int
(** Number of domains that participate in a [map], including the
    caller's. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  Using the pool after
    [shutdown] runs sequentially. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], re-exported so callers (in
    particular bench and tests) can size pools and gate speedup
    assertions without referencing [Domain] directly. *)

val busy : t -> bool
(** Whether a [map]/[map_reduce] is currently running on this pool.  A
    caller that submits while the pool is busy still gets correct
    results — the submission degrades to sequential execution on its
    own domain — so this is an {e advisory} signal for admission
    control (the serving tier counts contended dispatches), never a
    lock. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] is observably [Array.map f xs]: element [i] of the
    result is [f xs.(i)], and if any application raises, the exception
    re-raised is the one from the lowest-indexed failing chunk.
    Applications of [f] may run concurrently on several domains, so
    [f] must not mutate shared state.  Nested or concurrent [map]
    calls on the same pool are safe: the inner call detects the pool
    is busy and degrades to sequential execution. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map} with the element index passed to [f]. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val map_reduce :
  t -> map:('a -> 'b) -> combine:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** [map_reduce pool ~map ~combine ~init xs] is
    [Array.fold_left (fun acc x -> combine acc (map x)) init xs]
    provided [combine] is associative and [init] is its left unit.
    Per-chunk partial folds are combined in chunk order, so the result
    is deterministic under those laws. *)
