type t = Mutex.t

let create () = Mutex.create ()
let protect l f = Mutex.protect l f
