(** A mutual-exclusion lock for callers of {!Pool} that must serialise
    a small commit step (e.g. cache writes) while the surrounding
    computation runs on several domains.  Wrapping the stdlib mutex
    here keeps every concurrency primitive inside [lib/parallel], as
    the [concurrency] lint rule demands. *)

type t

val create : unit -> t

val protect : t -> (unit -> 'a) -> 'a
(** [protect l f] runs [f ()] with [l] held; the lock is released on
    return and on exception.  Not reentrant. *)
