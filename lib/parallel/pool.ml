(* Fixed-size domain pool.  See pool.mli for the contract; the two
   invariants the implementation must keep are:

   - determinism: chunks are claimed in any order but merged by chunk
     index, and on failure the exception from the lowest-indexed
     failing chunk wins, so every entry point behaves exactly like its
     sequential equivalent;

   - reentrancy: a [map] issued while the pool is already running one
     (nested call from inside [f], or a second domain sharing the
     pool) must not deadlock.  A single [busy] flag arbitrates: the
     loser of the compare-and-set runs sequentially on its own
     domain. *)

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : unit -> unit;
  mutable generation : int;
  mutable pending : int; (* chunks of the current job not yet finished *)
  stop : bool Atomic.t;
  mutable domains : unit Domain.t list;
  busy : bool Atomic.t;
}

let recommended_domains () = Domain.recommended_domain_count ()

(* Workers sleep until the generation counter moves, run the then-
   current job closure (which claims chunks until none remain), and go
   back to sleep.  A worker that wakes late — after the job it was
   signalled for has already been drained by others — simply finds no
   chunk to claim and loops; the closure stays valid until the next
   submission, which cannot start before the previous one completed. *)
let rec worker_loop t last_gen =
  Mutex.lock t.mutex;
  while (not (Atomic.get t.stop)) && t.generation = last_gen do
    Condition.wait t.work_ready t.mutex
  done;
  if Atomic.get t.stop then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    let job = t.job in
    Mutex.unlock t.mutex;
    job ();
    worker_loop t gen
  end

let create ?domains () =
  let requested =
    match domains with Some d -> d | None -> recommended_domains ()
  in
  let size = max 1 (min 64 requested) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = ignore;
      generation = 0;
      pending = 0;
      stop = Atomic.make false;
      domains = [];
      busy = Atomic.make false;
    }
  in
  if size > 1 then
    t.domains <-
      List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let size t = t.size
let busy t = Atomic.get t.busy

let shutdown t =
  Mutex.lock t.mutex;
  let ds = t.domains in
  t.domains <- [];
  Atomic.set t.stop true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join ds

(* Publish [body] as the current job, have the calling domain
   participate, and wait until every chunk has completed (not merely
   been claimed).  [body] must never raise. *)
let run_chunks t nchunks body =
  let next = Atomic.make 0 in
  let runner () =
    let rec claim () =
      let c = Atomic.fetch_and_add next 1 in
      if c < nchunks then begin
        body c;
        Mutex.lock t.mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.work_done;
        Mutex.unlock t.mutex;
        claim ()
      end
    in
    claim ()
  in
  Mutex.lock t.mutex;
  t.pending <- nchunks;
  t.job <- runner;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  runner ();
  Mutex.lock t.mutex;
  while t.pending > 0 do
    Condition.wait t.work_done t.mutex
  done;
  Mutex.unlock t.mutex

(* About four chunks per domain: coarse enough to amortise the claim,
   fine enough that one slow chunk cannot idle the rest of the pool
   for long. *)
let chunk_size t n =
  let target = t.size * 4 in
  max 1 ((n + target - 1) / target)

(* Keep the exception of the lowest-indexed failing chunk — the one
   sequential execution would have raised first. *)
let record_failure failure c exn bt =
  let rec cas () =
    let cur = Atomic.get failure in
    match cur with
    | Some (c0, _, _) when c0 <= c -> ()
    | _ -> if not (Atomic.compare_and_set failure cur (Some (c, exn, bt))) then cas ()
  in
  cas ()

let reraise_any failure =
  match Atomic.get failure with
  | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

let sequential t n =
  t.size <= 1 || n <= 1 || Atomic.get t.stop
  || not (Atomic.compare_and_set t.busy false true)

let mapi t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if sequential t n then Array.mapi f xs
  else
    Fun.protect ~finally:(fun () -> Atomic.set t.busy false) @@ fun () ->
    let chunk = chunk_size t n in
    let nchunks = (n + chunk - 1) / chunk in
    let results = Array.make nchunks [||] in
    let failure = Atomic.make None in
    let body c =
      let lo = c * chunk in
      let hi = min n (lo + chunk) in
      try results.(c) <- Array.init (hi - lo) (fun i -> f (lo + i) xs.(lo + i))
      with exn -> record_failure failure c exn (Printexc.get_raw_backtrace ())
    in
    run_chunks t nchunks body;
    reraise_any failure;
    Array.concat (Array.to_list results)

let map t f xs = mapi t (fun _ x -> f x) xs
let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let map_reduce t ~map ~combine ~init xs =
  let n = Array.length xs in
  let seq () =
    Array.fold_left (fun acc x -> combine acc (map x)) init xs
  in
  if n = 0 then init
  else if sequential t n then seq ()
  else
    Fun.protect ~finally:(fun () -> Atomic.set t.busy false) @@ fun () ->
    let chunk = chunk_size t n in
    let nchunks = (n + chunk - 1) / chunk in
    let results = Array.make nchunks None in
    let failure = Atomic.make None in
    let body c =
      let lo = c * chunk in
      let hi = min n (lo + chunk) in
      try
        let acc = ref init in
        for i = lo to hi - 1 do
          acc := combine !acc (map xs.(i))
        done;
        results.(c) <- Some !acc
      with exn -> record_failure failure c exn (Printexc.get_raw_backtrace ())
    in
    run_chunks t nchunks body;
    reraise_any failure;
    Array.fold_left
      (fun acc r -> match r with Some v -> combine acc v | None -> acc)
      init results
