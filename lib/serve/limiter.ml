type t = {
  cap : int;
  per_round : int;
  mutable tokens : int;
}

let create ~capacity ~refill =
  if refill < 1 then invalid_arg "Limiter.create: refill < 1";
  if capacity < refill then invalid_arg "Limiter.create: capacity < refill";
  { cap = capacity; per_round = refill; tokens = capacity }

let capacity t = t.cap
let tokens t = t.tokens
let refill t = t.tokens <- min t.cap (t.tokens + t.per_round)

let try_take t =
  if t.tokens > 0 then begin
    t.tokens <- t.tokens - 1;
    true
  end
  else false

let reset t = t.tokens <- t.cap
