(** Multi-tenant serving tier over the hosted-database stack.

    One [Serve.t] multiplexes N independent hostings — each tenant is a
    complete {!Secure.System.t} with its own master secret, key ring,
    session link, tracer and leakage ledger, so nothing a query touches
    is shared between tenants except the domain pool that schedules
    them.  The tier adds the operational machinery the single-hosting
    stack lacks:

    - {e registry + shard map}: tenants register under a string id and
      are routed to a shard by a stable hash; round-robin admission
      walks tenants in (shard, id) order, rotating the starting point
      every round so no tenant is structurally first.
    - {e admission control}: a bounded FIFO queue per tenant
      ({!submit} rejects with [Overloaded] when full — backpressure is
      a typed answer, never a silent drop), a per-tenant token bucket
      ({!Limiter}) capping sustained throughput per round, and a
      global in-flight cap sized from the pool so a burst cannot
      saturate the domain pool.
    - {e circuit breaking}: per-tenant {!Breaker}s trip after K
      consecutive wire failures, shed the tripped tenant's queue, and
      recover through a half-open probe — one sick tenant cannot burn
      pool lanes that healthy tenants need.
    - {e online rehost}: {!rehost} re-encrypts one tenant under a fresh
      master between rounds; its generation fence (the hosting
      generation counter plus the rehost cache-flush hooks) guarantees
      every answer produced afterwards was computed against the new
      ciphertexts while other tenants keep serving undisturbed.

    Time is the round counter: {!run_round} refills buckets, cools
    breakers, admits up to the caps and dispatches the admitted batch
    across the pool (one worker per tenant, so per-tenant state is
    never touched by two domains).  All breaker transitions and metric
    bumps happen after the merge, on the calling domain.  With equal
    seeds and submission order, every trajectory — trips, probes,
    rejections, answers — replays exactly. *)

module Limiter = Limiter
module Breaker = Breaker

type config = {
  shards : int;             (** shard-map width (>= 1) *)
  queue_depth : int;        (** per-tenant queue bound; full => [Overloaded] *)
  bucket_capacity : int;    (** {!Limiter} burst size *)
  refill_per_round : int;   (** {!Limiter} sustained queries/round *)
  max_inflight : int;       (** global admitted/round cap; 0 = 4 x pool size *)
  breaker_threshold : int;  (** consecutive failures before a trip *)
  breaker_cooldown : int;   (** open rounds before the half-open probe *)
}

val default_config : config
(** 4 shards, depth 8, bucket 4/2, auto inflight, trip after 3,
    cooldown 2. *)

type route =
  [ `Wire     (** {!Secure.System.try_evaluate} through the session
                  link — retries, faults and [Gave_up]s feed the
                  breaker *)
  | `Engine   (** {!Engine.evaluate_report} — planned and cached,
                  bypasses the wire, never trips the breaker *) ]

type reject =
  | Overloaded      (** tenant queue full (or the pool is contended) *)
  | Breaker_open    (** tenant's circuit breaker is open *)
  | Unknown_tenant  (** id not in the registry *)

val reject_to_string : reject -> string

type outcome =
  | Answered of {
      answers : Secure.Client.answer list;
      cost : Secure.System.cost;
      generation : int;
          (** hosting generation the answer was computed against *)
    }
  | Failed of Secure.Session.error
      (** wire path exhausted its retries (feeds the breaker) *)
  | Shed of reject
      (** dropped from the queue after admission — today only
          [Shed Breaker_open], when a trip flushes the queue *)

type completion = {
  ticket : int;
  tenant : string;
  outcome : outcome;
}

type t

val create : ?config:config -> ?pool:Parallel.Pool.t -> unit -> t
(** An empty registry.  Without [pool], rounds dispatch sequentially
    (same completions, no parallelism).
    @raise Invalid_argument on non-positive config fields. *)

val config : t -> config
val pool : t -> Parallel.Pool.t option

val register :
  t -> id:string -> ?route:route -> ?budget:Attack.Budget.t ->
  Secure.System.t -> unit
(** Add a tenant (default route [`Wire]).  The hosting should carry its
    own master secret; the tier never mixes key material.  [budget]
    attaches a leakage budget for {!audit} to score; it obligates
    nothing until the tenant's ledger is enabled.
    @raise Invalid_argument on a duplicate id. *)

val tenants : t -> string list
(** Registered ids in admission order: sorted by (shard, id). *)

val shard_of : t -> string -> int
(** Stable shard for an id (defined whether or not it is registered). *)

val system : t -> string -> Secure.System.t
(** @raise Not_found for unregistered ids (likewise the accessors
    below). *)

val generation : t -> string -> int
val breaker : t -> string -> Breaker.t
val queue_length : t -> string -> int

val engine : t -> string -> Engine.t option
(** The tenant's engine binding ([None] on the [`Wire] route) — exposed
    so tests and the CLI can audit per-tenant cache state. *)

val budget : t -> string -> Attack.Budget.t option
(** The tenant's declared leakage budget, if one was registered. *)

val audit : t -> (string * (Attack.Budget.score, string) result) list
(** Score every budgeted tenant's leakage ledger against its
    declaration ({!Attack.Budget.check}), in admission order.
    Un-budgeted tenants are skipped.  A disabled (hence empty) ledger
    is [Error] — the budget fails closed, so auditing a tenant means
    enabling its ledger first. *)

val registry : t -> Obs.Metric.registry
(** The tier's private, always-enabled metric registry.  Global
    counters: [serve.rounds], [serve.admitted], [serve.probes].
    Per-tenant (prefix [serve.<id>.], cf.
    {!Obs.Metric.snapshot_prefix}): [.submitted], [.served], [.failed],
    [.shed], [.rejected]. *)

val submit : t -> tenant:string -> Xpath.Ast.path -> (int, reject) result
(** Enqueue one query; [Ok ticket] pairs with a {!completion} from a
    later {!run_round}.  Typed rejection, never a silent drop:
    [Error Unknown_tenant] off the registry, [Error Breaker_open] while
    the tenant's breaker is open, [Error Overloaded] when its queue is
    full or the pool is contended ({!Parallel.Pool.busy}). *)

val run_round : t -> completion list
(** One serving round: refill buckets, cool breakers, admit
    round-robin up to the caps (a half-open tenant admits exactly one
    probe), evaluate the admitted batch across the pool, then apply
    breaker transitions and metrics post-merge.  Completions are in
    admission order; a trip also sheds the tenant's remaining queue as
    [Shed Breaker_open] completions. *)

val rounds : t -> int

val drain : t -> ?max_rounds:int -> unit -> completion list
(** {!run_round} until every queue is empty (at most [max_rounds],
    default 64 — open breakers can legitimately leave queues
    non-empty). *)

val relink :
  t -> tenant:string ->
  ?session:Secure.Session.config ->
  ?faults:Secure.Transport.profile * int64 -> unit -> unit
(** Tear down and re-establish one tenant's link via
    {!Secure.System.reset_link} (fresh session, fresh endpoint — the
    old incarnation's replay cache cannot leak across).  Omitting
    [faults] yields a perfect loopback: how an operator repairs a
    tripped tenant before its breaker's probe fires.  The breaker is
    {e not} reset — recovery must be proven by the probe. *)

val rehost : t -> tenant:string -> new_master:string -> Secure.System.setup_cost
(** Online re-encryption of one tenant between rounds: rebuild its
    hosting under [new_master] ({!Secure.System.rotate}; through
    {!Engine.rotate} on the [`Engine] route so caches flush under the
    rehost hook), swap it into the registry and reset the tenant's
    bucket and breaker.  Other tenants are untouched; every subsequent
    answer for this tenant carries the new {!generation}. *)
