(** Per-tenant circuit breaker.

    The wire path of a sick tenant fails by exhausting its session
    retries — every [Gave_up] burns [max_attempts] transport exchanges
    and their simulated backoff, so a tenant behind a dead link would
    bleed pool lanes that healthy tenants need.  The breaker cuts that
    off: after [threshold] {e consecutive} failures it {e trips} open
    and the serving tier rejects the tenant's queries outright
    ([Breaker_open]) for [cooldown] rounds, then {e half-opens} and
    lets exactly one probe query through.  The probe's outcome decides:
    success closes the breaker, failure re-opens it for another
    cooldown.

    Like {!Limiter}, time is the round counter ({!on_round} once per
    serving round), so every trip/recover trajectory is reproducible. *)

type state =
  | Closed of int   (** consecutive failures so far *)
  | Open of int     (** rounds of cooldown left before the probe *)
  | Half_open       (** next admitted query is the probe *)

type t

val create : threshold:int -> cooldown:int -> t
(** Starts [Closed 0].  @raise Invalid_argument unless
    [threshold >= 1] and [cooldown >= 1]. *)

val state : t -> state
val state_to_string : state -> string

val admits : t -> bool
(** [Closed _] and [Half_open] admit; [Open _] rejects. *)

val probing : t -> bool
(** The breaker is [Half_open]: admit one probe and nothing else. *)

val on_round : t -> unit
(** Round boundary: an [Open] breaker counts its cooldown down and
    half-opens when it reaches zero. *)

val on_success : t -> unit
(** A served query: resets the consecutive-failure count; a successful
    probe closes the breaker. *)

val on_failure : t -> bool
(** A [Gave_up]-class failure.  Returns [true] when this failure
    {e trips} the breaker (threshold reached, or a failed probe) —
    the caller sheds the tenant's queue at that moment. *)

val trips : t -> int
(** Times the breaker has tripped (probe failures included). *)

val probes : t -> int
(** Probe queries admitted while half-open. *)

val note_probe : t -> unit
(** Count one admitted probe (called by the admission loop). *)

val reset : t -> unit
(** Back to [Closed 0] (used when a tenant is rehosted); the trip and
    probe counters survive. *)
