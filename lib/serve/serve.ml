module Limiter = Limiter
module Breaker = Breaker

type config = {
  shards : int;
  queue_depth : int;
  bucket_capacity : int;
  refill_per_round : int;
  max_inflight : int;
  breaker_threshold : int;
  breaker_cooldown : int;
}

let default_config =
  {
    shards = 4;
    queue_depth = 8;
    bucket_capacity = 4;
    refill_per_round = 2;
    max_inflight = 0;
    breaker_threshold = 3;
    breaker_cooldown = 2;
  }

type route = [ `Wire | `Engine ]

type reject =
  | Overloaded
  | Breaker_open
  | Unknown_tenant

let reject_to_string = function
  | Overloaded -> "overloaded"
  | Breaker_open -> "breaker open"
  | Unknown_tenant -> "unknown tenant"

type outcome =
  | Answered of {
      answers : Secure.Client.answer list;
      cost : Secure.System.cost;
      generation : int;
    }
  | Failed of Secure.Session.error
  | Shed of reject

type completion = {
  ticket : int;
  tenant : string;
  outcome : outcome;
}

type tenant = {
  id : string;
  shard : int;
  route : route;
  mutable sys : Secure.System.t;
  engine : Engine.t option;
  budget : Attack.Budget.t option;
  breaker : Breaker.t;
  bucket : Limiter.t;
  queue : (int * Xpath.Ast.path) Queue.t;
  m_submitted : Obs.Metric.counter;
  m_served : Obs.Metric.counter;
  m_failed : Obs.Metric.counter;
  m_shed : Obs.Metric.counter;
  m_rejected : Obs.Metric.counter;
}

type t = {
  cfg : config;
  pool : Parallel.Pool.t option;
  reg : Obs.Metric.registry;
  by_id : (string, tenant) Hashtbl.t;
  mutable order : tenant list;   (* (shard, id)-sorted admission order *)
  mutable round : int;
  mutable next_ticket : int;
  m_rounds : Obs.Metric.counter;
  m_admitted : Obs.Metric.counter;
  m_probes : Obs.Metric.counter;
}

(* FNV-1a, so the shard map is stable across runs and OCaml versions
   (Hashtbl.hash is neither). *)
let shard_hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

let create ?(config = default_config) ?pool () =
  if config.shards < 1 then invalid_arg "Serve.create: shards < 1";
  if config.queue_depth < 1 then invalid_arg "Serve.create: queue_depth < 1";
  if config.max_inflight < 0 then invalid_arg "Serve.create: max_inflight < 0";
  (* bucket and breaker fields are validated by Limiter/Breaker.create
     at registration time *)
  let reg = Obs.Metric.create ~enabled:true () in
  {
    cfg = config;
    pool;
    reg;
    by_id = Hashtbl.create 16;
    order = [];
    round = 0;
    next_ticket = 0;
    m_rounds = Obs.Metric.counter reg "serve.rounds" ~help:"serving rounds run";
    m_admitted =
      Obs.Metric.counter reg "serve.admitted"
        ~help:"queries admitted past the buckets and in-flight cap";
    m_probes =
      Obs.Metric.counter reg "serve.probes"
        ~help:"half-open probe queries admitted";
  }

let config t = t.cfg
let pool t = t.pool
let registry t = t.reg
let rounds t = t.round

let shard_of t id = shard_hash id mod t.cfg.shards

let find t id =
  match Hashtbl.find_opt t.by_id id with
  | Some tn -> tn
  | None -> raise Not_found

let register t ~id ?(route = `Wire) ?budget sys =
  if Hashtbl.mem t.by_id id then
    invalid_arg (Printf.sprintf "Serve.register: duplicate tenant %S" id);
  (* Tenant ids are caller-supplied: sanitize before they become metric
     names, so a hostile id cannot inject structure into the sinks. *)
  let label = Obs.Label.sanitize id in
  let c name help =
    Obs.Metric.counter t.reg ("serve." ^ label ^ "." ^ name) ~help
  in
  let tn =
    {
      id;
      shard = shard_of t id;
      route;
      sys;
      engine = (match route with `Engine -> Some (Engine.create sys) | `Wire -> None);
      budget;
      breaker =
        Breaker.create ~threshold:t.cfg.breaker_threshold
          ~cooldown:t.cfg.breaker_cooldown;
      bucket =
        Limiter.create ~capacity:t.cfg.bucket_capacity
          ~refill:t.cfg.refill_per_round;
      queue = Queue.create ();
      m_submitted = c "submitted" "queries accepted into the queue";
      m_served = c "served" "queries answered";
      m_failed = c "failed" "wire failures returned to the caller";
      m_shed = c "shed" "queued queries dropped by a breaker trip";
      m_rejected = c "rejected" "submissions refused with a typed reject";
    }
  in
  Hashtbl.add t.by_id id tn;
  t.order <-
    List.sort
      (fun a b ->
        match compare a.shard b.shard with 0 -> compare a.id b.id | c -> c)
      (tn :: t.order)

let tenants t = List.map (fun tn -> tn.id) t.order
let system t id = (find t id).sys
let generation t id = Secure.System.generation (find t id).sys
let breaker t id = (find t id).breaker
let queue_length t id = Queue.length (find t id).queue
let engine t id = (find t id).engine
let budget t id = (find t id).budget

(* Score every budgeted tenant's ledger against its declaration.  The
   ledger must be enabled for the hosting (otherwise the trace is empty
   and the budget fails closed) — auditing is an explicit opt-in, like
   the ledger itself. *)
let audit t =
  List.filter_map
    (fun tn ->
      match tn.budget with
      | None -> None
      | Some budget ->
        let trace = Attack.Trace.of_ledger (Secure.System.ledger tn.sys) in
        Some (tn.id, Attack.Budget.check budget trace))
    t.order

let pool_contended t =
  match t.pool with Some p -> Parallel.Pool.busy p | None -> false

let submit t ~tenant q =
  match Hashtbl.find_opt t.by_id tenant with
  | None -> Error Unknown_tenant
  | Some tn ->
    if not (Breaker.admits tn.breaker) then begin
      Obs.Metric.incr tn.m_rejected;
      Error Breaker_open
    end
    else if Queue.length tn.queue >= t.cfg.queue_depth || pool_contended t
    then begin
      Obs.Metric.incr tn.m_rejected;
      Error Overloaded
    end
    else begin
      let ticket = t.next_ticket in
      t.next_ticket <- ticket + 1;
      Queue.add (ticket, q) tn.queue;
      Obs.Metric.incr tn.m_submitted;
      Ok ticket
    end

(* The engine path bypasses the session wire, so its report lacks the
   transport fields; synthesize a System.cost with a clean link. *)
let cost_of_report (r : Engine.report) : Secure.System.cost =
  {
    translate_ms = r.translate_ms +. r.plan_ms;
    server_ms = r.server_ms;
    transmit_bytes = r.transmit_bytes;
    transmit_ms = float_of_int r.transmit_bytes /. Secure.System.link_bytes_per_ms;
    decrypt_ms = r.decrypt_ms;
    postprocess_ms = r.postprocess_ms;
    blocks_returned = r.blocks_returned;
    answer_count = r.answer_count;
    attempts = 1;
    retransmitted_bytes = 0;
    faults_absorbed = 0;
    replays = 0;
    degraded = false;
  }

let max_inflight t =
  if t.cfg.max_inflight > 0 then t.cfg.max_inflight
  else 4 * (match t.pool with Some p -> Parallel.Pool.size p | None -> 1)

(* Round-robin admission: walk tenants in (shard, id) order starting at
   a rotating offset, taking one query per eligible tenant per pass
   until the in-flight cap bites or a full pass admits nothing. *)
let admit t =
  let order = Array.of_list t.order in
  let n = Array.length order in
  if n = 0 then []
  else begin
    let cap = max_inflight t in
    let taken = Hashtbl.create n in (* id -> (ticket * query) list, reversed *)
    let counts = Array.make n 0 in
    let admitted = ref 0 in
    let progress = ref true in
    while !admitted < cap && !progress do
      progress := false;
      for i = 0 to n - 1 do
        let tn = order.((i + t.round) mod n) in
        let probe_slot_free = (not (Breaker.probing tn.breaker)) ||
                              counts.((i + t.round) mod n) = 0 in
        if
          !admitted < cap
          && (not (Queue.is_empty tn.queue))
          && Breaker.admits tn.breaker
          && probe_slot_free
          && Limiter.try_take tn.bucket
        then begin
          let job = Queue.pop tn.queue in
          let prev =
            match Hashtbl.find_opt taken tn.id with Some l -> l | None -> []
          in
          Hashtbl.replace taken tn.id (job :: prev);
          counts.((i + t.round) mod n) <- counts.((i + t.round) mod n) + 1;
          if Breaker.probing tn.breaker then begin
            Breaker.note_probe tn.breaker;
            Obs.Metric.incr t.m_probes
          end;
          incr admitted;
          progress := true
        end
      done
    done;
    (* groups in admission (rotated) order, jobs within a group FIFO *)
    let groups = ref [] in
    for i = n - 1 downto 0 do
      let tn = order.((i + t.round) mod n) in
      match Hashtbl.find_opt taken tn.id with
      | Some jobs -> groups := (tn, List.rev jobs) :: !groups
      | None -> ()
    done;
    !groups
  end

let evaluate_job tn q =
  match tn.route, tn.engine with
  | `Engine, Some eng ->
    let answers, report = Engine.evaluate_report eng q in
    Ok (answers, cost_of_report report, Secure.System.generation (Engine.system eng))
  | _ -> (
    match Secure.System.try_evaluate tn.sys q with
    | Ok (answers, cost) ->
      Ok (answers, cost, Secure.System.generation tn.sys)
    | Error e -> Error e)

let shed_queue tn out =
  let shed = ref [] in
  while not (Queue.is_empty tn.queue) do
    let ticket, _ = Queue.pop tn.queue in
    Obs.Metric.incr tn.m_shed;
    shed := { ticket; tenant = tn.id; outcome = Shed Breaker_open } :: !shed
  done;
  out := List.rev_append !shed !out

let run_round t =
  List.iter
    (fun tn ->
      Breaker.on_round tn.breaker;
      Limiter.refill tn.bucket)
    t.order;
  let groups = admit t in
  (* One group per tenant: a worker owns all of a tenant's per-round
     state (session lane, ledger, tracer), so groups never race. *)
  let eval_group (tn, jobs) =
    List.map (fun (ticket, q) -> (ticket, evaluate_job tn q)) jobs
  in
  let results =
    match t.pool with
    | Some p -> Parallel.Pool.map_list p eval_group groups
    | None -> List.map eval_group groups
  in
  (* Post-merge, on the calling domain: breaker transitions, queue
     shedding and every metric bump. *)
  let out = ref [] in
  List.iter2
    (fun (tn, _) ticketed ->
      List.iter
        (fun (ticket, res) ->
          Obs.Metric.incr t.m_admitted;
          match res with
          | Ok (answers, cost, generation) ->
            Breaker.on_success tn.breaker;
            Obs.Metric.incr tn.m_served;
            out :=
              { ticket; tenant = tn.id;
                outcome = Answered { answers; cost; generation } }
              :: !out
          | Error e ->
            Obs.Metric.incr tn.m_failed;
            out := { ticket; tenant = tn.id; outcome = Failed e } :: !out;
            if Breaker.on_failure tn.breaker then shed_queue tn out)
        ticketed)
    groups results;
  t.round <- t.round + 1;
  Obs.Metric.incr t.m_rounds;
  List.rev !out

let drain t ?(max_rounds = 64) () =
  let out = ref [] in
  let n = ref 0 in
  let pending () = List.exists (fun tn -> not (Queue.is_empty tn.queue)) t.order in
  while pending () && !n < max_rounds do
    out := List.rev_append (run_round t) !out;
    incr n
  done;
  List.rev !out

let relink t ~tenant ?session ?faults () =
  let tn = find t tenant in
  tn.sys <- Secure.System.reset_link ?session ?faults tn.sys

let rehost t ~tenant ~new_master =
  let tn = find t tenant in
  let cost =
    match tn.route, tn.engine with
    | `Engine, Some eng ->
      let cost = Engine.rotate eng ~new_master in
      tn.sys <- Engine.system eng;
      cost
    | _ ->
      let sys', cost = Secure.System.rotate tn.sys ~new_master in
      tn.sys <- sys';
      cost
  in
  Limiter.reset tn.bucket;
  Breaker.reset tn.breaker;
  cost
