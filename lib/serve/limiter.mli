(** Token-bucket rate limiter, counted in rounds.

    The serving tier is synchronous and deterministic, so time is not a
    clock but the round counter: {!refill} is called once per
    {!Serve.run_round} and adds [refill] tokens up to [capacity].  A
    query is admitted only when {!try_take} finds a token, which caps a
    tenant's sustained throughput at [refill] queries per round while
    letting it burst up to [capacity] after idling — the standard
    bucket shape, with reproducible behaviour under test. *)

type t

val create : capacity:int -> refill:int -> t
(** A full bucket.  @raise Invalid_argument unless
    [capacity >= refill >= 1] — a bucket that never refills would
    starve its tenant's queue forever. *)

val capacity : t -> int
val tokens : t -> int

val refill : t -> unit
(** One round boundary: add [refill] tokens, clamped to [capacity]. *)

val try_take : t -> bool
(** Consume one token; [false] when the bucket is empty (the query
    stays queued for a later round). *)

val reset : t -> unit
(** Back to a full bucket (used when a tenant is rehosted). *)
