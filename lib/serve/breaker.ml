type state =
  | Closed of int
  | Open of int
  | Half_open

type t = {
  threshold : int;
  cooldown : int;
  mutable state : state;
  mutable trips : int;
  mutable probes : int;
}

let create ~threshold ~cooldown =
  if threshold < 1 then invalid_arg "Breaker.create: threshold < 1";
  if cooldown < 1 then invalid_arg "Breaker.create: cooldown < 1";
  { threshold; cooldown; state = Closed 0; trips = 0; probes = 0 }

let state t = t.state

let state_to_string = function
  | Closed n -> Printf.sprintf "closed (%d consecutive failures)" n
  | Open n -> Printf.sprintf "open (%d cooldown rounds left)" n
  | Half_open -> "half-open (probe pending)"

let admits t = match t.state with Closed _ | Half_open -> true | Open _ -> false
let probing t = t.state = Half_open

let on_round t =
  match t.state with
  | Open n when n <= 1 -> t.state <- Half_open
  | Open n -> t.state <- Open (n - 1)
  | Closed _ | Half_open -> ()

let on_success t =
  match t.state with
  | Closed _ | Half_open -> t.state <- Closed 0
  | Open _ -> ()
      (* cannot happen through the serving tier: an open breaker admits
         nothing, so there is no query whose success could close it *)

let trip t =
  t.state <- Open t.cooldown;
  t.trips <- t.trips + 1;
  true

let on_failure t =
  match t.state with
  | Half_open -> trip t
  | Closed n when n + 1 >= t.threshold -> trip t
  | Closed n ->
    t.state <- Closed (n + 1);
    false
  | Open _ -> false

let trips t = t.trips
let probes t = t.probes
let note_probe t = t.probes <- t.probes + 1
let reset t = t.state <- Closed 0
