(** Inference passes the simulated honest-but-curious server runs over
    a {!Trace}.

    Each pass emits one finding per inferable fact, carrying the
    candidate-set size the adversary achieves for it and a hop-by-hop
    evidence witness (the style of the lint layer's secret-flow
    findings): which rounds were observed, what statistic was computed,
    and how the candidate set collapsed.  Larger candidate sets are
    better for the data owner — the paper's theorems are exactly lower
    bounds on them (Theorem 4.1 for structure, 5.1/5.2 for OPESS
    values), and {!Budget} turns declared minimums into a gate. *)

type finding = {
  pass : string;      (** fact class: the emitting pass's name *)
  subject : string;   (** what the candidate set is about, e.g. ["block 12"] *)
  candidates : int;   (** candidate-set size achieved (1 = pinned) *)
  witness : string list;  (** hop-by-hop evidence, one hop per line *)
}

val frequency : ?census:(string * int) list -> Trace.t -> finding list
(** Frequency analysis over the block-fetch histogram (the Theorem 4.1
    channel): blocks shipped equally often are indistinguishable, so a
    block's candidate set is its frequency class.  [census] is
    known-plaintext auxiliary data — [(tag, expected fetch count)]
    pairs for the known tag universe; when given, a block's candidate
    set is the census tags matching its observed count (an empty match
    falls back to the frequency class).

    Like every pass, the histogram is computed over query rounds only:
    the server decodes requests, so it discards distinguishable cover
    traffic (label ["fetch"]) before computing statistics. *)

val size : Trace.t -> finding list
(** Size/interval analysis against OPESS chunk displacements (the
    Theorem 5.1/5.2 channel): rounds with the same
    (response bytes, blocks returned) fingerprint are indistinguishable;
    a round's candidate set is its fingerprint class.  Cover-traffic
    rounds (label ["fetch"]) carry no query and are skipped. *)

val cooccurrence : Trace.t -> finding list
(** Co-occurrence clustering across rounds: blocks shipped by exactly
    the same set of query rounds cannot be told apart; a block's
    candidate set is its round-membership class. *)

val linkability : Trace.t -> finding list
(** Replay-linked retransmits (the Audit channel): a replay-cache hit
    links a retransmitted frame to its original with certainty —
    candidate set 1, by construction. *)

val run_all : ?census:(string * int) list -> Trace.t -> finding list
(** All four passes, in the order above. *)

val render : finding -> string
(** Multi-line: header then indented witness hops. *)
