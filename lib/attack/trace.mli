(** The adversary's transcript: a leakage-ledger capture recast as the
    observation sequence an honest-but-curious server works from.

    Every field here is a wire fact the server already holds —
    request/response sizes, shipped-block access patterns, replay-cache
    hits — plus one derived ordering, the timing rank (transmission
    dominates round latency at a fixed link speed, so ranking rounds by
    response bytes reproduces the latency order an adversary with a
    stopwatch would see, deterministically).  Nothing in a trace ever
    touches plaintext documents or the key ring; the trust-boundary
    table enforces that for the whole [lib/attack] library. *)

type round = {
  seq : int;             (** ledger sequence number *)
  label : string;        (** protocol path ("evaluate", "batch", "fetch", ...) *)
  bytes_up : int;
  bytes_down : int;
  blocks_returned : int;
  block_ids : int list;  (** shipped-block access pattern, shipping order *)
  replays : int;         (** retransmits the server linked this round *)
  attempts : int;
  degraded : bool;
  timing_rank : int;
      (** 1-based rank of [bytes_down] among the trace's rounds (1 =
          largest; ties broken by [seq]) — the deterministic latency
          ordering proxy *)
}

type t

val of_rounds : Obs.Ledger.round list -> t
val of_ledger : Obs.Ledger.t -> t
(** Build from a live ledger's retained rounds (oldest first). *)

val rounds : t -> round list
(** Oldest first. *)

val length : t -> int
val is_empty : t -> bool

val universe : t -> int list
(** Every distinct block id observed, sorted — the adversary's view of
    the block universe. *)

val fetch_counts : t -> (int * int) list
(** [(block id, rounds that shipped it)], sorted by id — the raw
    block-fetch histogram over {e all} rounds, cover fetches included
    ({!Passes.frequency} recomputes it over query rounds only). *)
