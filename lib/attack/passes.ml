type finding = {
  pass : string;
  subject : string;
  candidates : int;
  witness : string list;
}

(* Witnesses cite the observed rounds hop by hop; long citation lists
   are elided past this many entries to keep findings readable. *)
let max_cited = 4

let cite_rounds verb rounds =
  let shown = List.filteri (fun i _ -> i < max_cited) rounds in
  let elided = List.length rounds - List.length shown in
  Printf.sprintf "%s %s%s" verb
    (String.concat ", "
       (List.map
          (fun (r : Trace.round) -> Printf.sprintf "round %d [%s]" r.Trace.seq r.Trace.label)
          shown))
    (if elided > 0 then Printf.sprintf " (+%d more)" elided else "")

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let class_size tbl key = Option.value ~default:1 (Hashtbl.find_opt tbl key)

(* The simulated server decodes every request, so it can always tell a
   cover [Fetch] round from a real query round (the ledger label
   records that) and a rational adversary discards the cover traffic
   before computing statistics.  Every pass therefore works from the
   query rounds only — which is also what keeps the scorer monotone:
   under a distinctness-based candidate-set measure, noise folded into
   the histogram could only split classes, never merge them, and buying
   dummy traffic would (absurdly) score worse than buying nothing. *)
let query_rounds trace =
  List.filter (fun (r : Trace.round) -> r.Trace.label <> "fetch") (Trace.rounds trace)

(* --- Frequency analysis (Theorem 4.1 channel) ---------------------- *)

let frequency ?census trace =
  let rs = query_rounds trace in
  let total = List.length rs in
  let tally = Hashtbl.create 64 in
  List.iter
    (fun (r : Trace.round) ->
      List.iter (fun id -> bump tally id) (List.sort_uniq compare r.Trace.block_ids))
    rs;
  let counts =
    List.sort compare (Hashtbl.fold (fun id c acc -> (id, c) :: acc) tally [])
  in
  let classes = Hashtbl.create 16 in
  List.iter (fun (_, c) -> bump classes c) counts;
  List.map
    (fun (id, c) ->
      let cls = class_size classes c in
      let sightings =
        List.filter (fun (r : Trace.round) -> List.mem id r.Trace.block_ids) rs
      in
      let base =
        [ cite_rounds (Printf.sprintf "block %d shipped in" id) sightings;
          Printf.sprintf "histogram: %d fetch%s across %d rounds" c
            (if c = 1 then "" else "es")
            total;
          Printf.sprintf
            "frequency class: %d block%s share%s fetch count %d -> candidate set %d" cls
            (if cls = 1 then "" else "s")
            (if cls = 1 then "s" else "")
            c cls ]
      in
      let candidates, witness =
        match census with
        | None -> cls, base
        | Some tags ->
          let matching = List.filter (fun (_, n) -> n = c) tags in
          (match matching with
           | [] ->
             ( cls,
               base
               @ [ Printf.sprintf
                     "known census: no tag with occurrence %d — class size stands" c ] )
           | ms ->
             ( List.length ms,
               base
               @ [ Printf.sprintf "known census: tags with occurrence %d = {%s} -> candidate set %d"
                     c
                     (String.concat ", " (List.map fst ms))
                     (List.length ms) ] ))
      in
      { pass = "frequency"; subject = Printf.sprintf "block %d" id; candidates; witness })
    counts

(* --- Size/interval analysis (Theorem 5.1/5.2 channel) -------------- *)

let size trace =
  let rs = query_rounds trace in
  let total = Trace.length trace in
  let classes = Hashtbl.create 16 in
  List.iter (fun (r : Trace.round) -> bump classes (r.Trace.bytes_down, r.Trace.blocks_returned)) rs;
  List.map
    (fun (r : Trace.round) ->
      let cls = class_size classes (r.Trace.bytes_down, r.Trace.blocks_returned) in
      { pass = "size";
        subject = Printf.sprintf "round %d" r.Trace.seq;
        candidates = cls;
        witness =
          [ Printf.sprintf
              "round %d [%s]: %d bytes down, %d blocks — the OPESS-displaced response shape"
              r.Trace.seq r.Trace.label r.Trace.bytes_down r.Trace.blocks_returned;
            Printf.sprintf "timing rank %d/%d (transmission-dominated latency order)"
              r.Trace.timing_rank total;
            Printf.sprintf
              "size class: %d round%s share%s this (bytes, blocks) fingerprint -> candidate set %d"
              cls
              (if cls = 1 then "" else "s")
            (if cls = 1 then "s" else "")
              cls ] })
    rs

(* --- Co-occurrence clustering -------------------------------------- *)

let cooccurrence trace =
  let membership = Hashtbl.create 64 in
  List.iter
    (fun (r : Trace.round) ->
      List.iter
        (fun id ->
          Hashtbl.replace membership id
            (r.Trace.seq :: Option.value ~default:[] (Hashtbl.find_opt membership id)))
        (List.sort_uniq compare r.Trace.block_ids))
    (query_rounds trace);
  let vector id =
    List.sort compare (Option.value ~default:[] (Hashtbl.find_opt membership id))
  in
  let classes = Hashtbl.create 64 in
  let ids =
    List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) membership [])
  in
  List.iter (fun id -> bump classes (vector id)) ids;
  List.map
    (fun id ->
      let v = vector id in
      let cls = class_size classes v in
      let cited = List.filteri (fun i _ -> i < max_cited) v in
      let elided = List.length v - List.length cited in
      { pass = "cooccurrence";
        subject = Printf.sprintf "block %d" id;
        candidates = cls;
        witness =
          [ Printf.sprintf "block %d co-occurs in rounds %s%s" id
              (String.concat ", " (List.map string_of_int cited))
              (if elided > 0 then Printf.sprintf " (+%d more)" elided else "");
            Printf.sprintf
              "co-occurrence class: %d block%s share%s this round-membership vector -> candidate set %d"
              cls
              (if cls = 1 then "" else "s")
            (if cls = 1 then "s" else "")
              cls ] })
    ids

(* --- Replay linkability (Audit channel) ---------------------------- *)

let linkability trace =
  List.filter (fun (r : Trace.round) -> r.Trace.replays > 0) (Trace.rounds trace)
  |> List.map (fun (r : Trace.round) ->
         { pass = "linkability";
           subject = Printf.sprintf "round %d" r.Trace.seq;
           candidates = 1;
           witness =
             [ Printf.sprintf "round %d [%s]: %d replay-cache hit%s" r.Trace.seq
                 r.Trace.label r.Trace.replays
                 (if r.Trace.replays = 1 then "" else "s");
               "retransmitted frames are byte-identical — the server links them to \
                their original with certainty -> candidate set 1" ] })

let run_all ?census trace =
  frequency ?census trace @ size trace @ cooccurrence trace @ linkability trace

let render f =
  Printf.sprintf "[%s] %s: candidate set %d\n    %s" f.pass f.subject f.candidates
    (String.concat "\n    " f.witness)
