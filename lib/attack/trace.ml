type round = {
  seq : int;
  label : string;
  bytes_up : int;
  bytes_down : int;
  blocks_returned : int;
  block_ids : int list;
  replays : int;
  attempts : int;
  degraded : bool;
  timing_rank : int;
}

type t = {
  rounds : round list;  (* oldest first *)
  universe : int list;  (* distinct observed block ids, sorted *)
  counts : (int * int) list;  (* (block id, rounds shipping it), by id *)
}

(* Rank rounds by response size, largest first, ties by sequence number:
   at a fixed link speed this is the latency order a wall-clock observer
   sees, computed without a wall clock so replays are deterministic. *)
let timing_ranks rounds =
  let keyed =
    List.mapi (fun i (r : Obs.Ledger.round) -> r.Obs.Ledger.bytes_down, r.Obs.Ledger.seq, i) rounds
  in
  let sorted =
    List.sort
      (fun (b1, s1, _) (b2, s2, _) ->
        match compare b2 b1 with 0 -> compare s1 s2 | c -> c)
      keyed
  in
  let ranks = Hashtbl.create 64 in
  List.iteri (fun rank (_, _, i) -> Hashtbl.replace ranks i (rank + 1)) sorted;
  fun i -> Option.value ~default:0 (Hashtbl.find_opt ranks i)

let of_rounds ledger_rounds =
  let rank_of = timing_ranks ledger_rounds in
  let rounds =
    List.mapi
      (fun i (r : Obs.Ledger.round) ->
        { seq = r.Obs.Ledger.seq;
          label = r.Obs.Ledger.label;
          bytes_up = r.Obs.Ledger.bytes_up;
          bytes_down = r.Obs.Ledger.bytes_down;
          blocks_returned = r.Obs.Ledger.blocks_returned;
          block_ids = r.Obs.Ledger.block_ids;
          replays = r.Obs.Ledger.replays;
          attempts = r.Obs.Ledger.attempts;
          degraded = r.Obs.Ledger.degraded;
          timing_rank = rank_of i })
      ledger_rounds
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun r ->
      List.iter
        (fun id ->
          Hashtbl.replace seen id (1 + Option.value ~default:0 (Hashtbl.find_opt seen id)))
        (List.sort_uniq compare r.block_ids))
    rounds;
  let counts =
    Hashtbl.fold (fun id n acc -> (id, n) :: acc) seen []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { rounds; universe = List.map fst counts; counts }

let of_ledger ledger = of_rounds (Obs.Ledger.rounds ledger)

let rounds t = t.rounds
let length t = List.length t.rounds
let is_empty t = t.rounds = []
let universe t = t.universe
let fetch_counts t = t.counts
