(** Declared leakage budgets and the fail-closed scorer behind
    [make attack-gate].

    A budget declaration ([attack.budget] at the repo root) states, per
    fact class (one per {!Passes} pass), the minimum candidate-set size
    every finding must achieve, and which mitigations are bought to
    achieve it.  Parsing fails closed: a missing class, duplicate,
    non-positive minimum, unknown class or unknown mitigation name is
    an error — an unparseable budget never gates anything open.  So
    does scoring: an empty trace certifies nothing, and a finding whose
    class carries no declaration is a violation by definition. *)

type t = {
  minimums : (string * int) list;  (** per fact class, all of {!classes} *)
  mitigations : string list;       (** bought mitigations, subset of {!mitigation_names} *)
}

val classes : string list
(** The fact classes a declaration must cover:
    ["frequency"; "size"; "cooccurrence"; "linkability"]. *)

val mitigation_names : string list
(** Purchasable mitigations: ["pad"; "dummy"; "shuffle"]. *)

val parse : string -> (t, string) result
(** Parse a declaration.  Format, line-oriented: [#] starts a comment;
    [<class> <min>] declares one minimum (every class exactly once,
    [min >= 1]); [mitigations <name> ...] lists the bought mitigations
    (at most one such line; bare [mitigations] buys none). *)

val load : string -> (t, string) result
(** {!parse} the file at a path; I/O errors are [Error]. *)

type violation = {
  finding : Passes.finding;
  required : int;  (** declared minimum; [-1] for an undeclared class *)
}

type score = {
  violations : violation list;
  findings : int;  (** findings scored, violations included *)
}

val score : t -> Passes.finding list -> score

val check : ?census:(string * int) list -> t -> Trace.t -> (score, string) result
(** Run {!Passes.run_all} and score it.  [Error] on an empty trace —
    fail closed: no observations certify nothing. *)

val render_violation : violation -> string
