type t = {
  minimums : (string * int) list;
  mitigations : string list;
}

let classes = [ "frequency"; "size"; "cooccurrence"; "linkability" ]
let mitigation_names = [ "pad"; "dummy"; "shuffle" ]

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (String.trim (strip_comment line))
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* Every malformation is a hard error: a budget that does not parse
   must never let the gate pass. *)
let parse text =
  let err lineno msg = Error (Printf.sprintf "budget line %d: %s" lineno msg) in
  let rec loop lineno minimums mitigations = function
    | [] -> (
      match List.filter (fun c -> not (List.mem_assoc c minimums)) classes with
      | [] ->
        Ok
          { minimums =
              List.map (fun c -> c, List.assoc c minimums) classes;
            mitigations = (match mitigations with Some ms -> ms | None -> []) }
      | missing ->
        Error
          (Printf.sprintf "budget declares no minimum for: %s"
             (String.concat ", " missing)))
    | line :: rest -> (
      match tokens line with
      | [] -> loop (lineno + 1) minimums mitigations rest
      | "mitigations" :: ms ->
        if mitigations <> None then err lineno "duplicate mitigations line"
        else (
          match List.filter (fun m -> not (List.mem m mitigation_names)) ms with
          | [] ->
            let rec dup = function
              | [] -> None
              | m :: more -> if List.mem m more then Some m else dup more
            in
            (match dup ms with
             | Some m -> err lineno (Printf.sprintf "mitigation %S bought twice" m)
             | None -> loop (lineno + 1) minimums (Some ms) rest)
          | unknown ->
            err lineno
              (Printf.sprintf "unknown mitigation(s): %s" (String.concat ", " unknown)))
      | [ cls; min_str ] when List.mem cls classes -> (
        if List.mem_assoc cls minimums then
          err lineno (Printf.sprintf "fact class %S declared twice" cls)
        else
          match int_of_string_opt min_str with
          | Some n when n >= 1 ->
            loop (lineno + 1) ((cls, n) :: minimums) mitigations rest
          | Some _ -> err lineno "minimum candidate-set size must be >= 1"
          | None -> err lineno (Printf.sprintf "%S is not an integer" min_str))
      | [ cls; _ ] -> err lineno (Printf.sprintf "unknown fact class %S" cls)
      | _ -> err lineno "expected '<class> <min>' or 'mitigations <name> ...'")
  in
  loop 1 [] None (String.split_on_char '\n' text)

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let content =
      match really_input_string ic (in_channel_length ic) with
      | exception End_of_file -> ""
      | s -> s
    in
    close_in_noerr ic;
    parse content

type violation = {
  finding : Passes.finding;
  required : int;
}

type score = {
  violations : violation list;
  findings : int;
}

let score t findings =
  let violations =
    List.filter_map
      (fun (f : Passes.finding) ->
        match List.assoc_opt f.Passes.pass t.minimums with
        | Some min ->
          if f.Passes.candidates < min then Some { finding = f; required = min }
          else None
        | None ->
          (* Undeclared fact class: fail closed. *)
          Some { finding = f; required = -1 })
      findings
  in
  { violations; findings = List.length findings }

let check ?census t trace =
  if Trace.is_empty trace then
    Error "empty trace: no rounds observed, nothing to certify (failing closed)"
  else Ok (score t (Passes.run_all ?census trace))

let render_violation v =
  if v.required < 0 then
    Printf.sprintf "%s\n    budget: fact class %S has no declared minimum (fail closed)"
      (Passes.render v.finding) v.finding.Passes.pass
  else
    Printf.sprintf "%s\n    budget: candidate set %d < declared minimum %d"
      (Passes.render v.finding) v.finding.Passes.candidates v.required
