type config = {
  pad : bool;
  dummies : int;
  shuffle : bool;
}

let off = { pad = false; dummies = 0; shuffle = false }

let of_budget ?(dummies = 4) (budget : Budget.t) =
  { pad = List.mem "pad" budget.Budget.mitigations;
    dummies = (if List.mem "dummy" budget.Budget.mitigations then dummies else 0);
    shuffle = List.mem "shuffle" budget.Budget.mitigations }

type t = {
  config : config;
  rng : Crypto.Prng.t;
}

let create ~seed config = { config; rng = Crypto.Prng.create seed }
let config t = t.config

(* The cover fetch's wire facts charged onto the query it shadows.
   Everything added is a transmission or robustness quantity — answers,
   decryption and post-processing belong to the query alone. *)
let add_cover (c : Secure.System.cost) (f : Secure.System.cost) =
  { c with
    Secure.System.server_ms = c.Secure.System.server_ms +. f.Secure.System.server_ms;
    transmit_bytes = c.Secure.System.transmit_bytes + f.Secure.System.transmit_bytes;
    transmit_ms = c.Secure.System.transmit_ms +. f.Secure.System.transmit_ms;
    retransmitted_bytes =
      c.Secure.System.retransmitted_bytes + f.Secure.System.retransmitted_bytes;
    faults_absorbed = c.Secure.System.faults_absorbed + f.Secure.System.faults_absorbed;
    replays = c.Secure.System.replays + f.Secure.System.replays }

(* PRNG-chosen cover blocks, deduplicated so the fetch's size is what
   the dedup-ing server will actually ship. *)
let draw_dummies t universe n =
  if universe = [| |] then []
  else
    List.init n (fun _ -> Crypto.Prng.choice t.rng universe)
    |> List.sort_uniq compare

let evaluate t sys query =
  let answers, cost =
    if t.config.pad then (
      let envelope = Secure.Server.block_ids (Secure.System.server sys) in
      match Secure.System.try_evaluate_padded sys ~extra:envelope query with
      | Ok result -> result
      | Error _ ->
        (* The degradation ladder ships every block — already the full
           padding envelope, so the fallback stays padded in effect. *)
        Secure.System.evaluate sys query)
    else Secure.System.evaluate sys query
  in
  let cost =
    if t.config.dummies <= 0 then cost
    else (
      let universe =
        Array.of_list (Secure.Server.block_ids (Secure.System.server sys))
      in
      match draw_dummies t universe t.config.dummies with
      | [] -> cost
      | ids -> (
        match Secure.System.fetch_blocks sys ids with
        | Ok fetch_cost -> add_cover cost fetch_cost
        | Error _ -> cost (* cover traffic is best-effort *)))
  in
  answers, cost

let evaluate_batch t sys queries =
  let n = Array.length queries in
  let order = Array.init n (fun i -> i) in
  if t.config.shuffle && n > 1 then Crypto.Prng.shuffle t.rng order;
  let indexed =
    if t.config.pad || t.config.dummies > 0 then
      (* Per-query wire variants: evaluate sequentially in wire order so
         the PRNG stream (and thus the trace) is deterministic. *)
      Array.map (fun i -> i, evaluate t sys queries.(i)) order
    else (
      let shuffled = Array.map (fun i -> queries.(i)) order in
      let results = Secure.System.evaluate_batch sys shuffled in
      Array.mapi (fun k i -> i, results.(k)) order)
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) indexed;
  Array.map snd indexed
