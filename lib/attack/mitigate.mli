(** Paid-for mitigations: the opt-in layer between callers and the
    wire that spends bandwidth/latency to grow candidate sets.

    Three mitigations, composable and individually priced by bench
    E14:

    - {b pad} — every query goes over the {!Secure.Protocol.Padded}
      wire variant with the full block universe as the envelope, so
      all query responses carry the same block set (size and frequency
      classes collapse into one);
    - {b dummy} — after each query a {!Secure.Protocol.Fetch} round of
      PRNG-chosen cover blocks crosses the wire and is discarded
      undecrypted (flattens the fetch histogram);
    - {b shuffle} — batches are evaluated in a PRNG-permuted order and
      results are returned in the caller's order (breaks positional
      round-to-query correspondence).

    Answers are byte-identical to the unmitigated path in every
    configuration — shipments only widen, and client-side filtering is
    superset-tolerant (the differential suite pins this).  All
    randomness flows through {!Crypto.Prng} from an explicit seed; a
    mitigator replayed with the same seed over the same call sequence
    is bit-reproducible. *)

type config = {
  pad : bool;
  dummies : int;  (** cover blocks fetched after each query; 0 = off *)
  shuffle : bool;
}

val off : config
(** No mitigations: {!evaluate} is exactly [Secure.System.evaluate]. *)

val of_budget : ?dummies:int -> Budget.t -> config
(** Configuration buying exactly the budget's declared mitigations
    ([dummies], default 4, sizes the cover fetch when ["dummy"] is
    bought). *)

type t

val create : seed:int64 -> config -> t
(** The seed drives every PRNG draw (dummy-block choice, batch
    permutation); no ambient randomness is consulted. *)

val config : t -> config

val evaluate :
  t -> Secure.System.t -> Xpath.Ast.path ->
  Secure.Client.answer list * Secure.System.cost
(** One mitigated query round.  The returned cost folds the cover
    traffic's bytes and time into the query's — what the mitigation
    actually charges the caller. *)

val evaluate_batch :
  t -> Secure.System.t -> Xpath.Ast.path array ->
  (Secure.Client.answer list * Secure.System.cost) array
(** Mitigated batch: result [i] always answers [queries.(i)], whatever
    order the wire saw. *)
