(** Adversary simulator: replay leakage-ledger traces as the
    honest-but-curious server, score achieved candidate sets against a
    declared budget, and buy back indistinguishability with priced
    mitigations.  See docs/SECURITY.md, "Adversary model & enforced
    budgets". *)

module Trace = Trace
module Passes = Passes
module Budget = Budget
module Mitigate = Mitigate
