(** Access-pattern auditing.

    Theorem 6.1 bounds what the server learns about {e which sensitive
    facts hold}; it says nothing about {e access patterns} — which
    blocks a query touches — and deterministic tag translation makes
    repeated queries linkable by design (index lookups require it).
    This module logs what an honest-but-curious server observes across
    a session and quantifies those two leakage channels, so a
    deployment can measure them instead of guessing.  (Hiding them
    needs ORAM-style machinery, which the paper explicitly leaves out —
    see its PIR discussion in Related Work.) *)

type t
(** A mutable observation log (what the server's side of the wire
    sees). *)

val create : unit -> t

val record : t -> request:string -> response:Server.response -> unit
(** Log one exchange: the encoded request bytes and the response. *)

val record_replays : t -> int -> unit
(** Log retransmitted frames the server recognised (its {!Session}
    replay cache hits).  Retries are a leakage surface the reliable
    seed protocol did not have: a retransmitted frame is byte-identical
    to its original, so the server links the two deliveries with
    certainty, and retry {e timing} additionally fingerprints the
    client's loss environment.  Feed {!Session.endpoint_stats}
    [.replayed] here to keep the channel measured. *)

val observed : t -> int
(** Exchanges logged. *)

type analysis = {
  queries : int;
  distinct_requests : int;
      (** repeated queries are linkable: equal request bytes *)
  repeated_requests : int;
      (** queries the server recognises as exact repeats *)
  distinct_patterns : int;
      (** distinct returned block-id sets *)
  replayed_frames : int;
      (** session-layer retransmits the server linked (see
          {!record_replays}) *)
  top_co_accessed : ((int * int) * int) list;
      (** block pairs most often returned together (top 10) — the
          co-location inference channel *)
}

val analyze : t -> analysis

val pp_analysis : Format.formatter -> analysis -> unit
