let log_src = Logs.Src.create "secure.session" ~doc:"Retrying session protocol"

module Log = (val Logs.src_log log_src)

(* Process-wide session counters on Obs.Metric.default (disabled by
   default).  "session.*" is the client view, "session.server.*" the
   endpoint view. *)
module M = struct
  let reg = Obs.Metric.default
  let calls = Obs.Metric.counter reg "session.calls" ~help:"logical calls issued"
  let attempts = Obs.Metric.counter reg "session.attempts" ~help:"frames sent incl. retries"
  let retries = Obs.Metric.counter reg "session.retries" ~help:"retransmissions"
  let timeouts = Obs.Metric.counter reg "session.timeouts" ~help:"attempts lost to drops"
  let tampered = Obs.Metric.counter reg "session.hmac_failures" ~help:"frames failing MAC verification"
  let malformed = Obs.Metric.counter reg "session.malformed" ~help:"unparseable frames"
  let stale = Obs.Metric.counter reg "session.stale" ~help:"frames with the wrong sequence number"
  let gave_up = Obs.Metric.counter reg "session.gave_up" ~help:"calls abandoned after max attempts"
  let retransmitted_bytes = Obs.Metric.counter reg "session.retransmitted_bytes" ~help:"bytes sent again verbatim"
  let served = Obs.Metric.counter reg "session.server.served" ~help:"fresh requests answered"
  let replayed = Obs.Metric.counter reg "session.server.replayed" ~help:"replay-cache hits (linkable retransmits)"
  let discarded = Obs.Metric.counter reg "session.server.discarded" ~help:"unauthenticated frames ignored"
end

type error =
  | Timeout
  | Tampered
  | Malformed
  | Stale
  | Gave_up of int
  | Closed

let error_to_string = function
  | Timeout -> "timeout"
  | Tampered -> "tampered"
  | Malformed -> "malformed"
  | Stale -> "stale"
  | Gave_up n -> Printf.sprintf "gave up after %d attempts" n
  | Closed -> "session closed"

type config = {
  max_attempts : int;
  base_backoff_ms : float;
  max_backoff_ms : float;
}

let default_config = { max_attempts = 4; base_backoff_ms = 10.0; max_backoff_ms = 200.0 }

type stats = {
  calls : int;
  attempts : int;
  retries : int;
  timeouts : int;
  tampered : int;
  malformed : int;
  stale : int;
  gave_up : int;
  retransmitted_bytes : int;
  backoff_ms : float;
}

let zero_stats =
  { calls = 0; attempts = 0; retries = 0; timeouts = 0; tampered = 0;
    malformed = 0; stale = 0; gave_up = 0; retransmitted_bytes = 0;
    backoff_ms = 0.0 }

let faults_absorbed s = s.timeouts + s.tampered + s.malformed + s.stale

(* --- Frame codec --------------------------------------------------- *)

type kind = Request | Response

let magic = "SXSF1"
let mac_len = 32
let kind_byte = function Request -> '\000' | Response -> '\001'

let encode_frame ~mac_key ~kind ~seq payload =
  let b = Buffer.create (String.length payload + 64) in
  Buffer.add_string b magic;
  Buffer.add_char b (kind_byte kind);
  Codec.W.i64 b seq;
  Codec.W.string b payload;
  let body = Buffer.contents b in
  body ^ Crypto.Hmac.mac ~key:mac_key body

let decode_frame ~mac_key ~expect ?expect_seq data =
  let magic_len = String.length magic in
  (* Structural minimum: magic + kind + seq + payload length + MAC. *)
  if String.length data < magic_len + 1 + 8 + 8 + mac_len then Error Malformed
  else if String.sub data 0 magic_len <> magic then Error Malformed
  else begin
    let body_len = String.length data - mac_len in
    let body = String.sub data 0 body_len in
    let mac = String.sub data body_len mac_len in
    if not (Crypto.Eq.constant_time (Crypto.Hmac.mac ~key:mac_key body) mac)
    then Error Tampered
    else begin
      (* MAC verified: the body is exactly what the peer framed, so any
         parse failure below means a protocol bug, not line noise —
         still reported as Malformed rather than an escaped exception. *)
      match
        let r = Codec.R.make body (magic_len + 1) in
        let seq = Codec.R.i64 r in
        let payload = Codec.R.string r in
        if not (Codec.R.at_end r) then raise (Codec.Error "trailing bytes");
        seq, payload
      with
      | exception Codec.Error _ -> Error Malformed
      | seq, payload ->
        if body.[magic_len] <> kind_byte expect then Error Malformed
        else
          match expect_seq with
          | Some want when not (Int64.equal want seq) -> Error Stale
          | Some _ | None -> Ok (seq, payload)
    end
  end

(* --- Client -------------------------------------------------------- *)

type t = {
  cfg : config;
  mac_key : string;
  transport : Transport.t;
  mutable next_seq : int64;
  mutable st : stats;
  mutable closed : bool;
}

let client ?(config = default_config) ~mac_key transport =
  if config.max_attempts < 1 then invalid_arg "Session.client: max_attempts < 1";
  { cfg = config; mac_key; transport; next_seq = 0L; st = zero_stats;
    closed = false }

let stats t = t.st
let config t = t.cfg

(* Closing is the client-side half of a link teardown: the session
   refuses further calls so a superseding incarnation (fresh endpoint,
   fresh replay cache, sequence numbers restarted) is the only wire
   path left.  Idempotent; the transport itself holds no state worth
   releasing in this simulation. *)
let close t = t.closed <- true
let closed t = t.closed

let record_fault t = function
  | Timeout ->
    t.st <- { t.st with timeouts = t.st.timeouts + 1 };
    Obs.Metric.incr M.timeouts
  | Tampered ->
    t.st <- { t.st with tampered = t.st.tampered + 1 };
    Obs.Metric.incr M.tampered
  | Malformed ->
    t.st <- { t.st with malformed = t.st.malformed + 1 };
    Obs.Metric.incr M.malformed
  | Stale ->
    t.st <- { t.st with stale = t.st.stale + 1 };
    Obs.Metric.incr M.stale
  | Gave_up _ | Closed -> ()

let call t payload =
  if t.closed then Error Closed
  else begin
  let seq = t.next_seq in
  t.next_seq <- Int64.add seq 1L;
  t.st <- { t.st with calls = t.st.calls + 1 };
  Obs.Metric.incr M.calls;
  let frame = encode_frame ~mac_key:t.mac_key ~kind:Request ~seq payload in
  let backoff = ref t.cfg.base_backoff_ms in
  let rec attempt n =
    if n > t.cfg.max_attempts then begin
      t.st <- { t.st with gave_up = t.st.gave_up + 1 };
      Obs.Metric.incr M.gave_up;
      Log.warn (fun m -> m "seq %Ld: gave up after %d attempts" seq t.cfg.max_attempts);
      Error (Gave_up t.cfg.max_attempts)
    end
    else begin
      if n > 1 then begin
        (* Simulated capped exponential backoff before each retry. *)
        t.st <- { t.st with retries = t.st.retries + 1;
                            retransmitted_bytes =
                              t.st.retransmitted_bytes + String.length frame;
                            backoff_ms = t.st.backoff_ms +. !backoff };
        Obs.Metric.incr M.retries;
        Obs.Metric.add M.retransmitted_bytes (String.length frame);
        backoff := Float.min (!backoff *. 2.0) t.cfg.max_backoff_ms
      end;
      t.st <- { t.st with attempts = t.st.attempts + 1 };
      Obs.Metric.incr M.attempts;
      let outcome =
        match Transport.exchange t.transport frame with
        | exception Transport.Dropped -> Error Timeout
        | resp ->
          Result.map snd
            (decode_frame ~mac_key:t.mac_key ~expect:Response ~expect_seq:seq resp)
      in
      match outcome with
      | Ok payload -> Ok payload
      | Error fault ->
        record_fault t fault;
        Log.debug (fun m ->
            m "seq %Ld attempt %d/%d: %s" seq n t.cfg.max_attempts
              (error_to_string fault));
        attempt (n + 1)
    end
  in
  attempt 1
  end

(* --- Server endpoint ----------------------------------------------- *)

(* Bounded LRU over request digests.  Capacity is small (default 128),
   so the O(capacity) eviction scan is cheaper than a second index. *)
module Lru = struct
  type 'a t = {
    capacity : int;
    table : (string, 'a * int ref) Hashtbl.t;
    mutable tick : int;
  }

  let create capacity = { capacity = max 1 capacity; table = Hashtbl.create 64; tick = 0 }

  let touch t gen =
    t.tick <- t.tick + 1;
    gen := t.tick

  let find t key =
    match Hashtbl.find_opt t.table key with
    | None -> None
    | Some (v, gen) ->
      touch t gen;
      Some v

  let add t key v =
    if not (Hashtbl.mem t.table key) then begin
      if Hashtbl.length t.table >= t.capacity then begin
        let oldest =
          Hashtbl.fold
            (fun k (_, gen) acc ->
              match acc with
              | Some (_, best) when best <= !gen -> acc
              | _ -> Some (k, !gen))
            t.table None
        in
        match oldest with
        | Some (k, _) -> Hashtbl.remove t.table k
        | None -> ()
      end;
      let gen = ref 0 in
      touch t gen;
      Hashtbl.add t.table key (v, gen)
    end
end

type endpoint_stats = {
  served : int;
  replayed : int;
  discarded : int;
}

type endpoint = {
  e_mac_key : string;
  handler : string -> string;
  cache : string Lru.t;
  mutable est : endpoint_stats;
}

let endpoint ?(replay_cache = 128) ~mac_key ~handler () =
  { e_mac_key = mac_key; handler; cache = Lru.create replay_cache;
    est = { served = 0; replayed = 0; discarded = 0 } }

let endpoint_stats e = e.est

let serve e frame =
  match decode_frame ~mac_key:e.e_mac_key ~expect:Request frame with
  | Error _ ->
    (* A real server cannot answer what it cannot authenticate: stay
       silent and let the client time out. *)
    e.est <- { e.est with discarded = e.est.discarded + 1 };
    Obs.Metric.incr M.discarded;
    raise Transport.Dropped
  | Ok (seq, payload) ->
    let digest = Crypto.Sha256.digest frame in
    (match Lru.find e.cache digest with
     | Some cached ->
       e.est <- { e.est with replayed = e.est.replayed + 1 };
       Obs.Metric.incr M.replayed;
       cached
     | None ->
       (match e.handler payload with
        | exception Protocol.Malformed _ ->
          e.est <- { e.est with discarded = e.est.discarded + 1 };
          Obs.Metric.incr M.discarded;
          raise Transport.Dropped
        | answer ->
          let resp = encode_frame ~mac_key:e.e_mac_key ~kind:Response ~seq answer in
          Lru.add e.cache digest resp;
          e.est <- { e.est with served = e.est.served + 1 };
          Obs.Metric.incr M.served;
          resp))
