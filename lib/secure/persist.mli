(** Persistence of a hosted system.

    Saves everything expensive to rebuild — ciphertext blocks, the DSI
    index table, the encryption block table, the value B-tree entries
    and the OPESS catalogs — in a small versioned binary format, so a
    hosted database can be created once and queried across process
    lifetimes (the sxq CLI's [host -o] / [query --hosted]).

    The master secret is {e never} written: {!load} takes it again and
    re-derives every key.  Loading re-runs only the cheap parts
    (skeleton indexing, server hash tables).  The DSI assignment is
    stored, not recomputed — incremental deltas patch intervals in
    place with gap draws no key can reproduce.

    Incremental updates extend a bundle with an {e append-only delta
    log} ([path ^ ".log"]): each {!System.apply_delta} appends one
    MAC'd record (sequence number, the edit, a keyed digest of the
    post-edit document) instead of rewriting the whole bundle; see
    {!journal_open}.  Crash recovery replays pending records in memory
    and validates every digest before the system is served.

    The on-disk frame is [magic | body length | body | HMAC-SHA-256],
    the MAC keyed from the master secret.  The explicit body length
    lets {!load} and {!verify} distinguish a {e torn write} (the file
    stops before its declared end — a crash, not an attack) from
    {e tampering} (right length, wrong MAC).  {!save} is crash-safe:
    it writes a [.tmp] sibling, fsyncs, and atomically renames, so an
    interruption at any byte offset leaves the previous bundle
    loadable. *)

exception Corrupt of string
(** Raised by {!load} on bad magic, torn writes, truncation or MAC
    failure; the message distinguishes torn from tampered. *)

val save : ?applied_seq:int -> System.t -> string -> unit
(** [save system path] writes the hosted bundle atomically
    (tmp + fsync + rename).  [applied_seq] (default 0) stamps the last
    delta-log sequence number this bundle already incorporates; replay
    skips records at or below it. *)

val load : master:string -> string -> System.t
(** [load ~master path] restores the system (the bundle only — pending
    delta-log records are NOT replayed; use {!journal_open} for that).
    @raise Corrupt on any integrity problem (including a wrong
    master). *)

val load_seq : master:string -> string -> System.t * int
(** Like {!load}, also returning the bundle's applied sequence
    number. *)

val to_string : ?applied_seq:int -> System.t -> string
(** In-memory encoding (what {!save} writes). *)

val of_string : master:string -> string -> System.t
(** In-memory decoding (what {!load} reads). *)

val of_string_seq : master:string -> string -> System.t * int

(** {2 Verification (fsck for hosted bundles)} *)

type verdict =
  | Intact
  | Torn of { expected_bytes : int; actual_bytes : int }
      (** the file stops before its declared end: an interrupted write *)
  | Tampered
      (** framing complete but the HMAC trailer does not verify *)
  | Malformed of string
      (** structurally undecodable despite correct framing *)

val verdict_to_string : verdict -> string

type section_status = Section_ok | Section_failed of string | Section_unreached

type report = {
  file_bytes : int;
  verdict : verdict;
  sections : (string * section_status) list;
      (** per body section, in on-disk order; decoding stops at the
          first failure, localising a tear or flip to one section *)
  blocks_total : int;
  blocks_bad : (int * string) list;
      (** blocks whose authentication tag or decryption fails *)
}

val verify : master:string -> string -> report
(** Never raises: every defect is reported in the verdict/sections.
    Section decoding is attempted even on torn or tampered files to
    localise the damage. *)

val verify_file : master:string -> string -> report

val section_offsets : System.t -> (string * int) list
(** Byte offset (within the full file) at which each body section of
    [system]'s encoding ends — the section boundaries a torn write can
    land on.  Used by the truncation tests and {!verify}
    diagnostics. *)

(** {2 Append-only delta log}

    [path ^ ".log"] holds one MAC'd record per incremental update:
    [magic | record*] with each record
    [i64 payload length | payload | HMAC-SHA-256 over length+payload].
    Appends are fsynced whole, so a crash can only truncate — a
    {e torn} tail whose complete prefix stays recoverable — while any
    bit flip inside a complete record fails its MAC: {e tampered}, a
    hard error.  Compaction ({!journal_compact}, automatic past the
    journal's size threshold) folds the log into a freshly saved
    bundle and removes it. *)

type log_record = {
  seq : int;             (** 1-based, strictly consecutive *)
  edit : Update.edit;
  digest : string;       (** keyed digest of the post-edit document *)
}

type log_tail =
  | Log_clean
  | Log_torn of { clean_bytes : int; dropped_bytes : int }
      (** the file ends mid-record: a crash artifact, recoverable by
          dropping [dropped_bytes] *)

val log_path : string -> string
(** The log sibling of a bundle path ([path ^ ".log"]). *)

val doc_digest : master:string -> Xmlcore.Doc.t -> string
(** The keyed document digest stored in (and validated against) log
    records. *)

val append_record : master:string -> string -> log_record -> unit
(** [append_record ~master bundle_path record] appends one record to
    the bundle's log (creating it with its magic header on first use)
    and fsyncs before returning. *)

val read_log : master:string -> string -> log_record list * log_tail
(** Decode a log file's contents: the complete, authenticated records
    plus the tail classification.
    @raise Corrupt on tampering (MAC mismatch, undecodable payload,
    bad magic) — never on a torn tail. *)

(** {2 Journal: bundle + log as one recoverable unit} *)

type journal

val journal_open :
  ?compact_threshold:int -> master:string -> string -> journal
(** Open a saved bundle together with its delta log: load the bundle,
    drop (and truncate away) a torn log tail, then replay every record
    newer than the bundle's applied sequence number in memory —
    validating consecutive numbering and every post-edit digest — so a
    half-applied or divergent delta is never served.
    [compact_threshold] (default 1 MiB) bounds the log: an update that
    grows it past the threshold triggers {!journal_compact}.
    @raise Corrupt on a tampered log, a sequence gap or a digest
    divergence (the on-disk state is left untouched). *)

val journal_system : journal -> System.t
(** The live system, all pending deltas applied. *)

val journal_seq : journal -> int
(** Sequence number of the last applied update. *)

val journal_update : journal -> Update.edit -> System.delta_cost
(** Apply one edit incrementally ({!System.apply_delta}), append its
    log record (fsynced before returning), and compact if the log
    outgrew the threshold.  A crash between the in-memory apply and
    the append loses that edit entirely — never half of it. *)

val journal_compact : journal -> unit
(** Fold the log into the bundle: {!save} with the current applied
    sequence number, then remove the log. *)

(** {2 Log fsck} *)

type log_fsck = {
  log_bytes : int;
  log_records : int;        (** complete, authenticated records *)
  log_pending : int;        (** records newer than the bundle's applied-seq *)
  log_dropped_bytes : int;  (** torn-tail bytes (0 when clean) *)
  log_fatal : string option;
      (** tampering or malformed framing — a hard error *)
  log_replay : string option;
      (** replay-validation failure; [None] when replay succeeded or
          the bundle itself is unusable (its own verdict tells that
          story) *)
}

val fsck_log : master:string -> string -> log_fsck option
(** [fsck_log ~master bundle_path] checks the bundle's delta log,
    replaying pending records in memory to validate them; [None] when
    no log exists.  Never raises. *)
