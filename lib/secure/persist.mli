(** Persistence of a hosted system.

    Saves everything expensive to rebuild — ciphertext blocks, the DSI
    index table, the encryption block table, the value B-tree entries
    and the OPESS catalogs — in a small versioned binary format, so a
    hosted database can be created once and queried across process
    lifetimes (the sxq CLI's [host -o] / [query --hosted]).

    The master secret is {e never} written: {!load} takes it again and
    re-derives every key.  Loading re-runs only the cheap parts (DSI
    re-assignment for the metadata record, skeleton indexing, server
    hash tables).

    The on-disk frame is [magic | body length | body | HMAC-SHA-256],
    the MAC keyed from the master secret.  The explicit body length
    lets {!load} and {!verify} distinguish a {e torn write} (the file
    stops before its declared end — a crash, not an attack) from
    {e tampering} (right length, wrong MAC).  {!save} is crash-safe:
    it writes a [.tmp] sibling, fsyncs, and atomically renames, so an
    interruption at any byte offset leaves the previous bundle
    loadable. *)

exception Corrupt of string
(** Raised by {!load} on bad magic, torn writes, truncation or MAC
    failure; the message distinguishes torn from tampered. *)

val save : System.t -> string -> unit
(** [save system path] writes the hosted bundle atomically
    (tmp + fsync + rename). *)

val load : master:string -> string -> System.t
(** [load ~master path] restores the system.
    @raise Corrupt on any integrity problem (including a wrong
    master). *)

val to_string : System.t -> string
(** In-memory encoding (what {!save} writes). *)

val of_string : master:string -> string -> System.t
(** In-memory decoding (what {!load} reads). *)

(** {2 Verification (fsck for hosted bundles)} *)

type verdict =
  | Intact
  | Torn of { expected_bytes : int; actual_bytes : int }
      (** the file stops before its declared end: an interrupted write *)
  | Tampered
      (** framing complete but the HMAC trailer does not verify *)
  | Malformed of string
      (** structurally undecodable despite correct framing *)

val verdict_to_string : verdict -> string

type section_status = Section_ok | Section_failed of string | Section_unreached

type report = {
  file_bytes : int;
  verdict : verdict;
  sections : (string * section_status) list;
      (** per body section, in on-disk order; decoding stops at the
          first failure, localising a tear or flip to one section *)
  blocks_total : int;
  blocks_bad : (int * string) list;
      (** blocks whose authentication tag or decryption fails *)
}

val verify : master:string -> string -> report
(** Never raises: every defect is reported in the verdict/sections.
    Section decoding is attempted even on torn or tampered files to
    localise the damage. *)

val verify_file : master:string -> string -> report

val section_offsets : System.t -> (string * int) list
(** Byte offset (within the full file) at which each body section of
    [system]'s encoding ends — the section boundaries a torn write can
    land on.  Used by the truncation tests and {!verify}
    diagnostics. *)
