(** Binary codec primitives shared by {!Persist} (hosted bundles on
    disk) and {!Protocol} (wire messages).

    Fixed-width little-endian integers, IEEE-bits floats,
    length-prefixed strings and count-prefixed lists — boring on
    purpose; every reader bounds-checks and raises {!Error} instead of
    crashing on malformed input. *)

exception Error of string

module W : sig
  val i64 : Buffer.t -> int64 -> unit
  val int : Buffer.t -> int -> unit
  val float : Buffer.t -> float -> unit
  val bool : Buffer.t -> bool -> unit
  val string : Buffer.t -> string -> unit
  val list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
end

module R : sig
  type t = { data : string; mutable pos : int }

  val make : string -> int -> t
  val i64 : t -> int64
  val int : t -> int
  (** @raise Error when negative or implausibly large. *)

  val float : t -> float
  val bool : t -> bool
  val string : t -> string

  val list : t -> (t -> 'a) -> 'a list
  (** @raise Error when the element count exceeds the bytes remaining
      (adversarial counts are rejected before allocation). *)

  val at_end : t -> bool
end
