exception Malformed of string

module W = Codec.W
module R = Codec.R

(* --- Request ------------------------------------------------------ *)

let w_token b = function
  | Squery.Clear tag ->
    W.bool b false;
    W.string b tag
  | Squery.Enc hex ->
    W.bool b true;
    W.string b hex

let r_token r =
  if R.bool r then Squery.Enc (R.string r) else Squery.Clear (R.string r)

let w_test b = function
  | Squery.Any -> W.bool b true
  | Squery.Tokens tokens ->
    W.bool b false;
    W.list b w_token tokens

let r_test r =
  if R.bool r then Squery.Any else Squery.Tokens (R.list r r_token)

let axis_to_int = function
  | Xpath.Ast.Child -> 0
  | Xpath.Ast.Descendant_or_self -> 1
  | Xpath.Ast.Parent -> 2
  | Xpath.Ast.Following_sibling -> 3
  | Xpath.Ast.Preceding_sibling -> 4
  | Xpath.Ast.Following -> 5
  | Xpath.Ast.Preceding -> 6

let axis_of_int = function
  | 0 -> Xpath.Ast.Child
  | 1 -> Xpath.Ast.Descendant_or_self
  | 2 -> Xpath.Ast.Parent
  | 3 -> Xpath.Ast.Following_sibling
  | 4 -> Xpath.Ast.Preceding_sibling
  | 5 -> Xpath.Ast.Following
  | 6 -> Xpath.Ast.Preceding
  | n -> raise (Codec.Error (Printf.sprintf "unknown axis %d" n))

let rec w_path b (p : Squery.path) =
  W.bool b p.Squery.absolute;
  W.list b w_step p.Squery.steps

and w_step b (s : Squery.step) =
  W.int b (axis_to_int s.Squery.axis);
  w_test b s.Squery.test;
  W.list b w_predicate s.Squery.predicates

and w_predicate b = function
  | Squery.Exists q ->
    W.int b 0;
    w_path b q
  | Squery.Value (q, range_set) ->
    W.int b 1;
    w_path b q;
    (match range_set with
     | Squery.Unknown -> W.bool b false
     | Squery.Ranges ranges ->
       W.bool b true;
       W.list b
         (fun b (lo, hi) ->
           W.i64 b lo;
           W.i64 b hi)
         ranges)
  | Squery.P_and (x, y) ->
    W.int b 2;
    w_predicate b x;
    w_predicate b y
  | Squery.P_or (x, y) ->
    W.int b 3;
    w_predicate b x;
    w_predicate b y
  | Squery.P_not x ->
    W.int b 4;
    w_predicate b x

(* Adversarial wire bytes could encode predicate towers deep enough to
   overflow the stack; no honest translation nests anywhere near this
   limit. *)
let max_depth = 64

let deeper depth =
  if depth >= max_depth then raise (Codec.Error "nesting too deep");
  depth + 1

let rec r_path depth r =
  let absolute = R.bool r in
  let steps = R.list r (r_step depth) in
  { Squery.absolute; steps }

and r_step depth r =
  let axis = axis_of_int (R.int r) in
  let test = r_test r in
  let predicates = R.list r (r_predicate (deeper depth)) in
  { Squery.axis; test; predicates }

and r_predicate depth r =
  match R.int r with
  | 0 -> Squery.Exists (r_path depth r)
  | 1 ->
    let q = r_path depth r in
    let range_set =
      if R.bool r then
        Squery.Ranges
          (R.list r (fun r ->
               let lo = R.i64 r in
               let hi = R.i64 r in
               lo, hi))
      else Squery.Unknown
    in
    Squery.Value (q, range_set)
  | 2 ->
    let x = r_predicate (deeper depth) r in
    let y = r_predicate (deeper depth) r in
    Squery.P_and (x, y)
  | 3 ->
    let x = r_predicate (deeper depth) r in
    let y = r_predicate (deeper depth) r in
    Squery.P_or (x, y)
  | 4 -> Squery.P_not (r_predicate (deeper depth) r)
  | n -> raise (Codec.Error (Printf.sprintf "unknown predicate tag %d" n))

let encode_request q =
  let b = Buffer.create 256 in
  w_path b q;
  Buffer.contents b

(* The wire path's only escaping exception is Malformed: any Codec
   error, unknown tag, implausible count or over-deep nesting maps
   here, and the readers bounds-check before every access. *)
let decode_request data =
  try
    let r = R.make data 0 in
    let q = r_path 0 r in
    if not (R.at_end r) then raise (Codec.Error "trailing bytes");
    q
  with Codec.Error m -> raise (Malformed m)

(* --- Versioned request variants ----------------------------------- *)

(* A plain query's first byte is the absolute flag, written by [W.bool]
   as '\000' or '\001'.  The mitigation variants claim unused leading
   bytes, so every request encoded before they existed still decodes as
   a [Query] and an old server rejects the new magics as garbage rather
   than misreading them. *)
type request =
  | Query of Squery.path
  | Fetch of int list
  | Padded of Squery.path * int list

let fetch_magic = '\002'
let padded_magic = '\003'

let encode_fetch ids =
  let b = Buffer.create 64 in
  Buffer.add_char b fetch_magic;
  W.list b W.int ids;
  Buffer.contents b

let encode_padded q extra =
  let b = Buffer.create 256 in
  Buffer.add_char b padded_magic;
  w_path b q;
  W.list b W.int extra;
  Buffer.contents b

let decode_any data =
  try
    if String.length data = 0 then raise (Codec.Error "empty request");
    if data.[0] = fetch_magic then begin
      let r = R.make data 1 in
      let ids = R.list r R.int in
      if not (R.at_end r) then raise (Codec.Error "trailing bytes");
      Fetch ids
    end
    else if data.[0] = padded_magic then begin
      let r = R.make data 1 in
      let q = r_path 0 r in
      let extra = R.list r R.int in
      if not (R.at_end r) then raise (Codec.Error "trailing bytes");
      Padded (q, extra)
    end
    else Query (decode_request data)
  with Codec.Error m -> raise (Malformed m)

(* --- Response ----------------------------------------------------- *)

let w_block b (blk : Encrypt.block) =
  W.int b blk.Encrypt.id;
  W.int b blk.Encrypt.root;
  W.string b blk.Encrypt.ciphertext;
  W.int b blk.Encrypt.plaintext_bytes;
  W.int b blk.Encrypt.node_count;
  W.bool b blk.Encrypt.has_decoy;
  W.int b blk.Encrypt.generation

let r_block r =
  let id = R.int r in
  let root = R.int r in
  let ciphertext = R.string r in
  let plaintext_bytes = R.int r in
  let node_count = R.int r in
  let has_decoy = R.bool r in
  let generation = R.int r in
  { Encrypt.id; root; ciphertext; plaintext_bytes; node_count; has_decoy;
    generation }

let encode_response (resp : Server.response) =
  let b = Buffer.create 1024 in
  W.list b w_block resp.Server.blocks;
  W.int b resp.Server.bytes;
  W.int b resp.Server.candidate_intervals;
  W.int b resp.Server.btree_hits;
  Buffer.contents b

let decode_response data =
  try
    let r = R.make data 0 in
    let blocks = R.list r r_block in
    let bytes = R.int r in
    let candidate_intervals = R.int r in
    let btree_hits = R.int r in
    if not (R.at_end r) then raise (Codec.Error "trailing bytes");
    { Server.blocks; bytes; candidate_intervals; btree_hits }
  with Codec.Error m -> raise (Malformed m)

let roundtrip_request q = decode_request (encode_request q)
let roundtrip_response resp = decode_response (encode_response resp)
