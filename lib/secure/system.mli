(** End-to-end hosted database system — Figure 1's architecture in one
    process, with per-phase cost accounting.

    {!setup} plays the data owner uploading to the service provider:
    build the scheme for the SCs, encrypt, build metadata, hand the
    server its view.  {!evaluate} runs one round trip of the protocol
    and times each phase separately (the quantities of Section 7.2):
    client translation, server evaluation, transmission (modelled by
    byte counts at a configurable link speed), client decryption and
    client post-processing.

    {!naive_evaluate} is the Section 7.3 baseline: the server ships
    every block, the client decrypts everything and evaluates
    locally. *)

type t

type cost = {
  translate_ms : float;
  server_ms : float;
  transmit_bytes : int;
  transmit_ms : float;     (** [transmit_bytes] at {!link_bytes_per_ms} *)
  decrypt_ms : float;
  postprocess_ms : float;
  blocks_returned : int;
  answer_count : int;
  attempts : int;
      (** session-layer transport attempts this query cost (1 = clean) *)
  retransmitted_bytes : int;
      (** frame bytes re-sent by retries (robustness overhead) *)
  faults_absorbed : int;
      (** transport faults survived by the session layer *)
  replays : int;
      (** replay-cache hits the endpoint saw this query — retransmitted
          frames the server linked with certainty *)
  degraded : bool;
      (** the metadata path gave up and the naive fallback answered *)
}

val total_ms : cost -> float

val link_bytes_per_ms : float
(** Modelled link speed: 100 Mbps, as in the paper's testbed. *)

type setup_cost = {
  scheme_build_ms : float;
  encrypt_ms : float;
  metadata_ms : float;
  scheme_size_nodes : int;    (** Definition 4.1 size *)
  block_count : int;
  server_data_bytes : int;    (** skeleton + ciphertexts + headers *)
  metadata_bytes : int;
}

val setup :
  ?master:string ->
  ?cipher:Crypto.Cipher.suite ->
  ?value_index:Metadata.index_policy ->
  ?pool:Parallel.Pool.t ->
  Xmlcore.Doc.t -> Sc.t list -> Scheme.kind -> t * setup_cost
(** When [pool] is given, block encryption and OPESS catalog building
    fan out across its domains during hosting, and the system keeps the
    pool for candidate-block decryption and {!evaluate_batch}.  All
    outputs — ciphertexts, metadata, answers — are byte-identical to a
    pool-less setup; systems derived by {!update} / {!rotate} inherit
    the pool.
    @raise Invalid_argument when the scheme cannot enforce the SCs
    (should not happen for the four built-in kinds). *)

val restore :
  master:string -> ?cipher:Crypto.Cipher.suite ->
  ?value_index:Metadata.index_policy -> ?pool:Parallel.Pool.t ->
  doc:Xmlcore.Doc.t ->
  constraints:Sc.t list -> scheme:Scheme.t -> db:Encrypt.db ->
  metadata:Metadata.t -> unit -> t
(** Rebuild a live system from persisted parts without re-running
    scheme construction, encryption or metadata building (see
    {!Persist}). *)

val doc : t -> Xmlcore.Doc.t

val master : t -> string
(** The owner's master secret (client side only — needed by {!Persist}
    to authenticate saved bundles). *)

val cipher : t -> Crypto.Cipher.suite
(** The block-cipher suite the system was hosted under. *)

val constraints : t -> Sc.t list
val scheme : t -> Scheme.t
val db : t -> Encrypt.db
val metadata : t -> Metadata.t
val client : t -> Client.t
val server : t -> Server.t

val pool : t -> Parallel.Pool.t option
(** The domain pool this system parallelises over, if any. *)

val generation : t -> int
(** Monotone hosting counter: every {!setup} / {!restore} result gets a
    fresh generation.  Anything derived from a system's ciphertext
    artifacts (cached plans, memoised candidates, decrypted blocks) is
    valid for exactly one generation. *)

val on_rehost : t -> (unit -> unit) -> unit
(** Register an invalidation hook on this hosting.  All hooks fire
    (once, then are dropped) when the system is superseded by
    {!update}, {!update_all} or {!rotate} — the moment every derived
    ciphertext artifact becomes stale.  {!with_faults} shares the hook
    list of the system it rewires. *)

type delta_event = {
  touched_blocks : (int * int * int) list;
      (** (block id, old generation, new generation) for every block
          re-encrypted by a delta *)
  dropped_blocks : (int * int) list;
      (** (block id, old generation) for blocks removed outright *)
  structural : bool;
      (** node ids shifted (insert/delete) — value-position artifacts
          like memoised query results must be revalidated even for
          untouched blocks *)
}
(** Block-level changelist of one {!apply_delta}: the granularity at
    which derived artifacts (decrypted-block caches) can be invalidated
    selectively instead of wholesale. *)

val on_delta : t -> (delta_event -> unit) -> unit
(** Register a delta hook.  Hooks fire (once, then are dropped) when
    the system is superseded by {!apply_delta} — carrying the
    changelist, so observers keep artifacts derived from untouched
    blocks.  A full re-host ({!update}/{!rotate}) fires the
    {!on_rehost} hooks instead, never these. *)

(** {2 Transport faults and the session layer}

    Every {!evaluate} round trip is framed by {!Session} (sequence
    numbers + HMAC trailer) and crosses a {!Transport}.  A freshly
    {!setup} or {!restore}d system uses a perfect loopback; rewire it
    with {!with_faults} to exercise the retry and degradation
    machinery under a deterministic chaos schedule. *)

val with_faults :
  ?session:Session.config -> profile:Transport.profile -> seed:int64 -> t -> t
(** [with_faults ~profile ~seed t] shares [t]'s server state but
    routes the wire path through {!Transport.faulty}.  Systems derived
    by {!update} / {!rotate} revert to the perfect loopback. *)

val reset_link :
  ?session:Session.config -> ?faults:Transport.profile * int64 -> t -> t
(** Tear the current link down and re-establish it: the old session is
    {!Session.close}d (it refuses further calls with [Error Closed]),
    and the returned system carries a fresh session {e and} a fresh
    endpoint, so the replay cache of the previous incarnation cannot
    leak across — a retransmit of a pre-reset frame is a fresh request
    to the new endpoint, never a replay hit.  [faults] rewires the new
    link through {!Transport.faulty}; omitting it yields a perfect
    loopback (how a tripped tenant repairs itself).  Server state,
    ledger, tracer and rehost hooks are shared with [t]. *)

val session_stats : t -> Session.stats
val transport_stats : t -> Transport.stats
val endpoint_stats : t -> Session.endpoint_stats

(** {2 Observability}

    Each hosted system carries a tracer (shared with its server, so
    [server.*] spans nest inside [system.*] ones) and a leakage ledger
    recording per-round server-visible facts.  Both start disabled and
    cost one boolean test per instrumentation point; enable them with
    [Obs.Trace.set_enabled] / [Obs.Ledger.set_enabled].  The pooled
    {!evaluate_batch} path records ledger rounds after the
    deterministic merge (label ["batch"]) and never traces from pool
    workers; {!with_faults} shares both with the system it rewires.
    See docs/OBSERVABILITY.md. *)

val tracer : t -> Obs.Trace.t
val ledger : t -> Obs.Ledger.t

val evaluate : t -> Xpath.Ast.path -> Xmlcore.Tree.t list * cost
(** Full protocol round trip.  Total under any fault schedule the
    session layer can survive: retries absorb transient faults, and
    once the configured attempts are exhausted the query {e degrades}
    to {!naive_evaluate} semantics evaluated against the server state
    directly ([cost.degraded = true]) — answers stay exact
    ([Q(δ(Qs(η(D)))) = Q(D)]) either way. *)

val try_evaluate :
  t -> Xpath.Ast.path -> (Xmlcore.Tree.t list * cost, Session.error) result
(** Strict variant: no degradation ladder.  [Error (Gave_up _)] after
    the session layer exhausts its attempts; never raises on transport
    faults. *)

val try_evaluate_padded :
  t -> extra:int list ->
  Xpath.Ast.path -> (Xmlcore.Tree.t list * cost, Session.error) result
(** {!try_evaluate} through the {!Protocol.Padded} wire variant: the
    server widens the shipment with the pad blocks [extra] (unknown and
    already-shipped ids are skipped), keeping it a superset of the
    honest answer, so answers are byte-identical to the unpadded round
    while the traffic shape moves toward the padding envelope.  Ledger
    rounds are labelled ["padded"].  Used by the {!Mitigate} layer
    ([lib/attack]). *)

val fetch_blocks : t -> int list -> (cost, Session.error) result
(** Cover traffic through the {!Protocol.Fetch} wire variant: the
    requested blocks cross the wire and are discarded undecrypted
    (no answers, no decryption cost).  Ledger rounds are labelled
    ["fetch"]. *)

val evaluate_batch : t -> Xpath.Ast.path array -> (Xmlcore.Tree.t list * cost) array
(** Evaluate independent queries of a workload, fanning them across
    the system's pool against the shared read-only server (one private
    session lane per query).  Result [i] — answers, protocol bytes,
    blocks returned — is exactly what [evaluate t queries.(i)] returns;
    only wall-clock changes.  Without a pool (or behind a
    {!with_faults} link, whose deterministic fault schedule is
    per-session) the queries run sequentially. *)

val evaluate_union : t -> Xpath.Ast.path list -> Xmlcore.Tree.t list * cost
(** Union query ([p1 | p2 | ...], cf. {!Xpath.Parser.parse_union}): one
    server round per branch, a single combined decryption and a
    node-deduplicated union evaluation.  [translate_ms] is folded into
    [server_ms] in the reported cost. *)

val try_evaluate_union :
  t -> Xpath.Ast.path list -> (Xmlcore.Tree.t list * cost, Session.error) result
(** Strict union evaluation (first failing branch aborts). *)

val reference_union : t -> Xpath.Ast.path list -> Xmlcore.Tree.t list

val naive_evaluate : t -> Xpath.Ast.path -> Xmlcore.Tree.t list * cost
(** Ship-everything baseline; also the degradation fallback.  Reads the
    server state directly (no metadata round trip), so it succeeds
    regardless of the fault schedule.  The MIN/MAX fast path of
    {!aggregate} likewise bypasses the transport (its extreme-entry
    exchange has no wire encoding yet). *)

val reference : t -> Xpath.Ast.path -> Xmlcore.Tree.t list
(** Ground truth: the query evaluated directly on the plaintext
    document (what [Q(D)] returns). *)

(** {2 Aggregates (Section 6.4)}

    MIN and MAX evaluate {e without decrypting the candidate set}: OPE
    order in the value index locates the extreme encrypted occurrence,
    so at most one block ships.  COUNT cannot be pushed to the server —
    splitting and scaling distort index entry counts — so it decrypts
    like an ordinary query (exactly the paper's trade-off). *)

val aggregate : t -> [ `Min | `Max ] -> Xpath.Ast.path -> string option * cost
(** [aggregate t `Max q] is the largest leaf value among [q]'s answers
    ([None] when the query selects nothing).  Numeric comparison is
    used when values parse as numbers. *)

val count : t -> Xpath.Ast.path -> int * cost
(** Number of answers; pays full decryption like {!evaluate}. *)

val reference_aggregate : t -> [ `Min | `Max ] -> Xpath.Ast.path -> string option
(** Ground-truth aggregate on the plaintext document. *)

(** {2 Updates (the paper's future-work item 3)}

    The re-host strategy: apply the edit to the owner's plaintext,
    then rebuild scheme, blocks and metadata under the same master key
    and constraints.  Always secure — enforcement is re-checked — at
    full setup cost; {!Dsi.Assign.interval_in_gap} is the primitive an
    incremental protocol would use instead. *)

val update : t -> Update.edit -> t * setup_cost
(** Apply one edit and re-host.
    @raise Invalid_argument on impossible edits (see {!Update.apply})
    or if the edited document no longer satisfies setup's checks. *)

val update_all : t -> Update.edit list -> t * setup_cost

val rotate : t -> new_master:string -> t * setup_cost
(** Re-host under a fresh master secret: every derived key, pad, OPE
    mapping and DSI weight changes; bundles persisted under the old
    master no longer authenticate. *)

(** {2 Incremental delta updates}

    {!apply_delta} makes update cost proportional to the delta instead
    of the database: only blocks containing an edit site are
    re-encrypted (each under a bumped per-block generation, so nonces
    never repeat), the DSI interval tables and OPESS catalogs are
    patched in place, and untouched ciphertexts, table rows and index
    namespaces survive verbatim.  Security is preserved by an explicit
    fallback ladder: whenever the incremental path cannot be both
    correct and secure (the remapped scheme stops enforcing an SC,
    attribute or interval space runs out), the edit is applied by the
    always-secure full re-host instead. *)

type delta_cost = {
  plan_ms : float;               (** edit planning + correspondence walk *)
  reencrypt_ms : float;          (** touched-block re-encryption *)
  patch_ms : float;              (** metadata surgery *)
  blocks_touched : int;          (** blocks re-encrypted *)
  blocks_dropped : int;          (** blocks removed with deleted subtrees *)
  blocks_total : int;            (** blocks before the edit *)
  reencrypted_bytes : int;       (** ciphertext bytes re-produced *)
  rows_removed : int;            (** DSI table rows recomputed away *)
  rows_added : int;              (** DSI table rows added back *)
  catalogs_patched : int;        (** OPESS catalogs examined/rebuilt *)
  index_entries_touched : int;   (** B-tree entries deleted + inserted *)
  fell_back : bool;              (** the edit went through a full re-host *)
}

val apply_delta : t -> Update.edit -> t * delta_cost
(** Apply one edit incrementally.  Answers over the result are exactly
    those of a fresh {!setup} of the edited document (pinned by the
    differential suite); server-visible artifacts differ only in the
    touched blocks.  Fires the {!on_delta} hooks with the block
    changelist (or, when falling back, the {!on_rehost} hooks via
    {!update}).  The superseded system's metadata shares its B-tree
    with the result and must not be queried afterwards.
    @raise Invalid_argument on impossible edits (see {!Update.apply}). *)

val apply_deltas : t -> Update.edit list -> t * delta_cost list
(** Fold {!apply_delta} over a batch, left to right. *)
