(** Reliable request/response sessions over an unreliable {!Transport}.

    Every exchange is framed: a magic tag, a direction marker, a 64-bit
    sequence number, the length-prefixed payload and an HMAC-SHA-256
    trailer under a key derived from the client's master secret
    ({!Crypto.Keys.derive}, label ["session-mac"] — provisioned to the
    service provider at setup time, like the metadata).  The MAC
    authenticates the frame end to end, the sequence number pins a
    response to the request that caused it, and the direction marker
    stops a reflected request from passing as a response.

    {!call} retries on timeout, corruption and stale delivery with
    capped exponential backoff.  Backoff time is {e simulated} (counted
    in {!stats}, never slept) to match the repo's modelled-latency cost
    convention; see {!System.link_bytes_per_ms}.

    The server side ({!endpoint}) verifies request frames, discards
    unverifiable ones (raising {!Transport.Dropped}, i.e. silence on
    the wire), and keeps a bounded LRU of recent request digests so a
    duplicated or retransmitted request is answered from cache instead
    of re-evaluated — retries are idempotent by construction. *)

type error =
  | Timeout          (** nothing came back before the (simulated) deadline *)
  | Tampered         (** frame present but its MAC does not verify *)
  | Malformed        (** frame structure unparseable *)
  | Stale            (** authentic frame for the wrong sequence number *)
  | Gave_up of int   (** retries exhausted after this many attempts *)
  | Closed           (** the session was {!close}d; re-establish the link *)

val error_to_string : error -> string

type config = {
  max_attempts : int;       (** total tries per call, >= 1 *)
  base_backoff_ms : float;  (** simulated wait before the first retry *)
  max_backoff_ms : float;   (** cap for the exponential schedule *)
}

val default_config : config
(** 4 attempts, 10 ms doubling to a 200 ms cap. *)

type stats = {
  calls : int;
  attempts : int;             (** transport exchanges, retries included *)
  retries : int;
  timeouts : int;
  tampered : int;
  malformed : int;
  stale : int;
  gave_up : int;              (** calls that exhausted their attempts *)
  retransmitted_bytes : int;  (** request bytes beyond each first attempt *)
  backoff_ms : float;         (** total simulated backoff *)
}

val faults_absorbed : stats -> int
(** Faults survived by retrying: [timeouts + tampered + malformed +
    stale], minus nothing — a fault on the final attempt of a
    [gave_up] call is still counted here. *)

(** {2 Client side} *)

type t

val client : ?config:config -> mac_key:string -> Transport.t -> t

val call : t -> string -> (string, error) result
(** [call t payload] runs one framed, verified, retried exchange and
    returns the response payload.  [Error (Gave_up n)] after [n]
    failed attempts; never raises on transport faults. *)

val stats : t -> stats
(** Cumulative; diff around a {!call} for per-call numbers. *)

val config : t -> config

val close : t -> unit
(** Tear the client side of the session down: every later {!call}
    returns [Error Closed] without touching the transport.  Idempotent.
    Closing the old session before re-establishing a link guarantees no
    frame of the dead incarnation can reach the replacement endpoint —
    the new incarnation's replay cache starts empty and can never be
    warmed by a ghost retransmit (see {!Secure.System.reset_link}). *)

val closed : t -> bool

(** {2 Server side} *)

type endpoint

val endpoint :
  ?replay_cache:int -> mac_key:string -> handler:(string -> string) ->
  unit -> endpoint
(** [endpoint ~handler ()] wraps a raw request handler (payload bytes
    to payload bytes) into a frame handler.  [replay_cache] bounds the
    digest LRU (default 128 entries).  [handler] exceptions of type
    {!Protocol.Malformed} are treated as an unanswerable request and
    dropped. *)

val serve : endpoint -> string -> string
(** Frame handler suitable for {!Transport.loopback}.
    @raise Transport.Dropped on unverifiable or unanswerable frames. *)

type endpoint_stats = {
  served : int;      (** requests evaluated by the handler *)
  replayed : int;    (** requests answered from the replay cache *)
  discarded : int;   (** frames dropped as unverifiable *)
}

val endpoint_stats : endpoint -> endpoint_stats

(** {2 Frame codec} (exposed for tests) *)

type kind = Request | Response

val encode_frame : mac_key:string -> kind:kind -> seq:int64 -> string -> string

val decode_frame :
  mac_key:string -> expect:kind -> ?expect_seq:int64 -> string ->
  (int64 * string, error) result
(** Returns the frame's sequence number and payload.  [Error Stale]
    when [expect_seq] is given and differs; {!Tampered} on MAC
    mismatch; {!Malformed} on structural garbage. *)
