(** OPESS — order-preserving encryption with splitting and scaling
    (Section 5.2).

    For one attribute (leaf tag) with plaintext histogram
    [{(v_1, n_1), ..., (v_k, n_k)}], [build]:

    + maps the domain to numbers (categorical values by rank; the
      client keeps the mapping, cf. Section 5.2.1 last paragraph);
    + picks the largest [m] such that every [n_i >= 2] decomposes as
      [k1·(m-1) + k2·m + k3·(m+1)] (singleton frequencies stay as one
      chunk and rely on scaling, see DESIGN.md);
    + splits each [n_i] into that many chunks, so every ciphertext
      value occurs [m-1], [m] or [m+1] times — a near-flat target
      distribution (Figure 6);
    + displaces chunk [j] of [v_i] to [v_i + (Σ_{t<=j} w_t)·δ_i] with
      secret weights [w_t ∈ (0, 1/(K+1))] and [δ_i] the gap to the next
      domain value, which guarantees the paper's no-straddling condition
      — ciphertexts of different plaintexts never interleave;
    + encrypts displaced values with the order-preserving function of
      {!Crypto.Ope};
    + draws a per-value scale factor [s_i ∈ \[1, 10\]]: every index
      entry for a chunk of [v_i] is replicated [s_i] times, so the
      observable index distribution is no longer flat and cannot be
      re-aggregated against known frequencies.

    The OPE ciphertexts are finally {e namespaced} with the attribute
    id in the top bits, so one global B-tree serves all attributes
    without cross-attribute range pollution. *)

type chunk = {
  cipher : int64;        (** namespaced B-tree key *)
  occurrences : int;     (** how many document occurrences map here *)
}

type value_entry = {
  value : string;
  numeric : float;       (** position on the mapped number line *)
  count : int;
  chunks : chunk list;   (** ciphertexts in increasing order *)
  scale : int;           (** replication factor s_i ∈ [1,10] *)
}

type t

val build : key:string -> attr_id:int -> tag:string -> Xmlcore.Stats.histogram -> t
(** [build ~key ~attr_id ~tag histogram] constructs the catalog for one
    attribute.  [key] must be the per-attribute OPESS key.
    @raise Invalid_argument if [attr_id] is outside [\[0, 126\]]. *)

val patch : key:string -> t -> Xmlcore.Stats.histogram -> t
(** [patch ~key t histogram] brings the catalog up to date with a new
    value histogram for the same attribute.  When the histogram is
    unchanged the catalog is returned as-is (structural edits that only
    move nodes); otherwise it is rebuilt under the {e same} [attr_id],
    so other attributes' namespaced B-tree keys are unaffected.  [key]
    must be the same per-attribute OPESS key used by {!build}. *)

val of_parts :
  tag:string -> attr_id:int -> m:int -> num_keys:int -> value_entry list -> t
(** Reconstruct a catalog from persisted parts (everything query
    translation needs lives in the entries; the OPE instance is only
    used at build time). *)

val tag : t -> string
val attr_id : t -> int
val chunk_parameter : t -> int
(** The chosen [m]. *)

val key_count : t -> int
(** [K] — the maximum number of chunks any value needs (the paper's
    count of encryption keys; with scaling the client stores [2K]). *)

val entries : t -> value_entry list
(** Sorted by [numeric]. *)

val find_entry : t -> string -> value_entry option

val occurrence_cipher : t -> value:string -> occurrence:int -> int64
(** B-tree key for the [occurrence]-th document occurrence (0-based,
    document order) of [value]: occurrences fill chunks left to right.
    @raise Not_found if the value is outside the catalog or the
    occurrence index exceeds its count. *)

val translate : t -> Xpath.Ast.op -> string -> (int64 * int64) list
(** Translate a value predicate into inclusive B-tree key ranges
    (Figure 7(a), generalised): the qualifying domain values form runs;
    each run becomes the range from its first entry's first chunk to
    its last entry's last chunk.  Equality on an absent value yields
    []. *)

val full_range : t -> (int64 * int64) option
(** Inclusive B-tree key range spanning every chunk of every value of
    this attribute; [None] when the attribute has no values.  Used for
    MIN/MAX aggregate evaluation. *)

val ciphertext_histogram : t -> (int64 * int) list
(** What the server observes per ciphertext value {e before} scaling:
    chunk occurrence counts.  All counts lie in [{1} ∪ {m-1, m, m+1}]. *)

val scaled_histogram : t -> (int64 * int) list
(** Observable index distribution after scaling: chunk count × s_i. *)
