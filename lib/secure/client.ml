module Ast = Xpath.Ast
module Tree = Xmlcore.Tree
module Doc = Xmlcore.Doc

type t = {
  keys : Crypto.Keys.t;
  catalogs : (string, Opess.t) Hashtbl.t;
  indexed : (string, unit) Hashtbl.t;  (* value-indexed attributes *)
  encrypted_tags : (string, unit) Hashtbl.t;
  plaintext_tags : (string, unit) Hashtbl.t;
  skeleton : Tree.t;
  skeleton_doc : Doc.t;
  anchors : (int * Doc.node) list;  (* block id -> placeholder node *)
}

let keys t = t.keys

let create ~keys meta db =
  let catalogs = Hashtbl.create 32 in
  List.iter (fun (tag, c) -> Hashtbl.replace catalogs tag c) meta.Metadata.catalogs;
  let indexed = Hashtbl.create 32 in
  List.iter (fun tag -> Hashtbl.replace indexed tag ()) meta.Metadata.indexed_tags;
  let set_of tags =
    let h = Hashtbl.create 32 in
    List.iter (fun tag -> Hashtbl.replace h tag ()) tags;
    h
  in
  let skeleton_doc = Doc.of_tree db.Encrypt.skeleton in
  let anchors =
    Doc.fold skeleton_doc
      (fun acc n ->
        match Encrypt.placeholder_id (Doc.tag skeleton_doc n) with
        | Some id -> (id, n) :: acc
        | None -> acc)
      []
  in
  { keys;
    catalogs;
    indexed;
    encrypted_tags = set_of db.Encrypt.encrypted_tags;
    plaintext_tags = set_of db.Encrypt.plaintext_tags;
    skeleton = db.Encrypt.skeleton;
    skeleton_doc;
    anchors }

(* ------------------------------------------------------------------ *)
(* Translation                                                         *)

let tokens_for t tag =
  let enc =
    if Hashtbl.mem t.encrypted_tags tag then
      [ Squery.Enc
          (Crypto.Vernam.encrypt_hex
             ~key:(Crypto.Keys.tag_key t.keys)
             ~pad_id:(Crypto.Keys.tag_pad_id tag)
             tag) ]
    else []
  in
  let clear = if Hashtbl.mem t.plaintext_tags tag then [ Squery.Clear tag ] else [] in
  match enc @ clear with
  | [] -> [ Squery.Clear tag ] (* tag absent from the database: misses *)
  | tokens -> tokens

let translate_test t = function
  | Ast.Tag tag -> Squery.Tokens (tokens_for t tag)
  | Ast.Wildcard -> Squery.Any

(* The attribute a comparison applies to: the last step's tag of the
   predicate path, or the owning step's tag for a self comparison. *)
let comparison_attribute ~owner_test path =
  let of_test = function
    | Ast.Tag tag -> tag
    | Ast.Wildcard ->
      invalid_arg "Client.translate: comparison on a wildcard step"
  in
  match List.rev path.Ast.steps with
  | [] -> of_test owner_test
  | last :: _ -> of_test last.Ast.test

let rec translate_path t p =
  { Squery.absolute = p.Ast.absolute;
    steps = List.map (translate_step t) p.Ast.steps }

and translate_step t s =
  { Squery.axis = s.Ast.axis;
    test = translate_test t s.Ast.test;
    predicates = List.map (translate_predicate t ~owner_test:s.Ast.test) s.Ast.predicates }

and translate_predicate t ~owner_test = function
  | Ast.And (a, b) ->
    Squery.P_and
      (translate_predicate t ~owner_test a, translate_predicate t ~owner_test b)
  | Ast.Or (a, b) ->
    Squery.P_or
      (translate_predicate t ~owner_test a, translate_predicate t ~owner_test b)
  | Ast.Not a -> Squery.P_not (translate_predicate t ~owner_test a)
  | Ast.Exists q -> Squery.Exists (translate_path t q)
  | Ast.Compare (q, op, literal) ->
    let attribute = comparison_attribute ~owner_test q in
    let ranges =
      match Hashtbl.find_opt t.catalogs attribute with
      | None ->
        (* the attribute has no values in D: unsatisfiable *)
        Squery.Ranges []
      | Some catalog ->
        if Hashtbl.mem t.indexed attribute then
          Squery.Ranges (Opess.translate catalog op literal)
        else Squery.Unknown (* not indexed: server keeps all candidates *)
    in
    Squery.Value (translate_path t q, ranges)

let translate t p = translate_path t p

(* For MIN/MAX: the key range spanning the output attribute's chunks.
   [None] when the query's output is not a catalogued leaf attribute
   (then no encrypted occurrence can exist either). *)
let aggregate_range t p =
  match List.rev p.Ast.steps with
  | { Ast.test = Ast.Tag tag; _ } :: _ when Hashtbl.mem t.indexed tag ->
    (* Only indexed attributes can use the B-tree fast path: otherwise
       encrypted occurrences are invisible to the scan and the ordinary
       protocol must run. *)
    Option.bind (Hashtbl.find_opt t.catalogs tag) Opess.full_range
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Post-processing                                                     *)

type answer = Tree.t

let decrypt_block t b = Encrypt.decrypt_block ~keys:t.keys b

let decrypt_blocks t blocks = List.map (decrypt_block t) blocks

let composite t ~decrypted =
  Composite.create ~skeleton:t.skeleton_doc ~anchors:t.anchors
    ~blocks:(List.map (fun (id, tree) -> id, Doc.of_tree tree) decrypted)

let evaluate_with t ~decrypted query =
  let view = composite t ~decrypted in
  List.map (Composite.subtree view) (Composite.Eval.eval view query)

let evaluate_union_with t ~decrypted queries =
  let view = composite t ~decrypted in
  List.map (Composite.subtree view) (Composite.Eval.eval_union view queries)

let postprocess t ~blocks query =
  let decrypted =
    List.map (fun b -> b.Encrypt.id, Encrypt.decrypt_block ~keys:t.keys b) blocks
  in
  evaluate_with t ~decrypted query
