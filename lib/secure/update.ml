module Ast = Xpath.Ast
module Doc = Xmlcore.Doc
module Tree = Xmlcore.Tree

type edit =
  | Insert_child of {
      parent : Ast.path;
      position : int;
      subtree : Tree.t;
    }
  | Delete_nodes of Ast.path
  | Set_value of Ast.path * string

module Node_set = Set.Make (Int)

let bindings_of doc path =
  match Xpath.Eval.eval doc path with
  | [] ->
    invalid_arg
      (Printf.sprintf "Update: path %s binds nothing" (Ast.to_string path))
  | nodes -> Node_set.of_list nodes

(* Rebuild the tree applying per-node transformations. *)
let rebuild doc ~delete ~set_value ~insert_at =
  let rec walk n =
    if Node_set.mem n delete then None
    else begin
      let tag = Doc.tag doc n in
      match Doc.value doc n with
      | Some v ->
        let v = match set_value n with Some v' -> v' | None -> v in
        Some (Tree.leaf tag v)
      | None ->
        let children = List.filter_map walk (Doc.children doc n) in
        let children =
          match insert_at n with
          | None -> children
          | Some (position, subtree) ->
            let position = max 0 (min position (List.length children)) in
            let rec splice i = function
              | rest when i = position -> subtree :: rest
              | [] -> [ subtree ]
              | c :: rest -> c :: splice (i + 1) rest
            in
            splice 0 children
        in
        Some (Tree.element tag children)
    end
  in
  match walk (Doc.root doc) with
  | Some tree -> tree
  | None -> invalid_arg "Update: cannot delete the document root"

let no_delete = Node_set.empty
let no_set _ = None
let no_insert _ = None

let apply doc = function
  | Delete_nodes path ->
    rebuild doc ~delete:(bindings_of doc path) ~set_value:no_set ~insert_at:no_insert
  | Set_value (path, v) ->
    let targets = bindings_of doc path in
    Node_set.iter
      (fun n ->
        if Doc.value doc n = None then
          invalid_arg
            (Printf.sprintf "Update: node %d (%s) is not a leaf" n (Doc.tag doc n)))
      targets;
    rebuild doc ~delete:no_delete
      ~set_value:(fun n -> if Node_set.mem n targets then Some v else None)
      ~insert_at:no_insert
  | Insert_child { parent; position; subtree } ->
    let parents = bindings_of doc parent in
    Node_set.iter
      (fun n ->
        if Doc.value doc n <> None then
          invalid_arg
            (Printf.sprintf "Update: cannot insert under leaf node %d" n))
      parents;
    rebuild doc ~delete:no_delete ~set_value:no_set
      ~insert_at:(fun n ->
        if Node_set.mem n parents then Some (position, subtree) else None)

let apply_all doc edits =
  List.fold_left (fun doc edit -> Doc.of_tree (apply doc edit)) doc edits

(* Shape-only rendering for logs: paths are plaintext the owner chose
   to log, but replaced values never appear. *)
let describe = function
  | Insert_child { parent; position; _ } ->
    Printf.sprintf "insert child at position %d under %s" position
      (Ast.to_string parent)
  | Delete_nodes path -> "delete nodes at " ^ Ast.to_string path
  | Set_value (path, _) -> "set value at " ^ Ast.to_string path
