module Ast = Xpath.Ast
module Doc = Xmlcore.Doc
module Tree = Xmlcore.Tree

type edit =
  | Insert_child of {
      parent : Ast.path;
      position : int;
      subtree : Tree.t;
    }
  | Delete_nodes of Ast.path
  | Set_value of Ast.path * string

module Node_set = Set.Make (Int)

let bindings_of doc path =
  match Xpath.Eval.eval doc path with
  | [] ->
    invalid_arg
      (Printf.sprintf "Update: path %s binds nothing" (Ast.to_string path))
  | nodes -> Node_set.of_list nodes

(* Rebuild the tree applying per-node transformations. *)
let rebuild doc ~delete ~set_value ~insert_at =
  let rec walk n =
    if Node_set.mem n delete then None
    else begin
      let tag = Doc.tag doc n in
      match Doc.value doc n with
      | Some v ->
        let v = match set_value n with Some v' -> v' | None -> v in
        Some (Tree.leaf tag v)
      | None ->
        let children = List.filter_map walk (Doc.children doc n) in
        let children =
          match insert_at n with
          | None -> children
          | Some (position, subtree) ->
            let position = max 0 (min position (List.length children)) in
            let rec splice i = function
              | rest when i = position -> subtree :: rest
              | [] -> [ subtree ]
              | c :: rest -> c :: splice (i + 1) rest
            in
            splice 0 children
        in
        Some (Tree.element tag children)
    end
  in
  match walk (Doc.root doc) with
  | Some tree -> tree
  | None -> invalid_arg "Update: cannot delete the document root"

let no_delete = Node_set.empty
let no_set _ = None
let no_insert _ = None

let apply doc = function
  | Delete_nodes path ->
    rebuild doc ~delete:(bindings_of doc path) ~set_value:no_set ~insert_at:no_insert
  | Set_value (path, v) ->
    let targets = bindings_of doc path in
    Node_set.iter
      (fun n ->
        if Doc.value doc n = None then
          invalid_arg
            (Printf.sprintf "Update: node %d (%s) is not a leaf" n (Doc.tag doc n)))
      targets;
    rebuild doc ~delete:no_delete
      ~set_value:(fun n -> if Node_set.mem n targets then Some v else None)
      ~insert_at:no_insert
  | Insert_child { parent; position; subtree } ->
    let parents = bindings_of doc parent in
    Node_set.iter
      (fun n ->
        if Doc.value doc n <> None then
          invalid_arg
            (Printf.sprintf "Update: cannot insert under leaf node %d" n))
      parents;
    rebuild doc ~delete:no_delete ~set_value:no_set
      ~insert_at:(fun n ->
        if Node_set.mem n parents then Some (position, subtree) else None)

let apply_all doc edits =
  List.fold_left (fun doc edit -> Doc.of_tree (apply doc edit)) doc edits

(* ------------------------------------------------------------------ *)
(* Delta planning                                                      *)

(* Number of document nodes a tree will occupy once [Doc.of_tree] runs:
   [Element (tag, [Text v])] collapses to a single leaf node. *)
let rec tree_node_count = function
  | Tree.Element (_, [ Tree.Text _ ]) -> 1
  | Tree.Element (_, children) ->
    1 + List.fold_left (fun acc c -> acc + tree_node_count c) 0 children
  | Tree.Text _ -> invalid_arg "Update.tree_node_count: loose text node"

type plan = {
  edit : edit;
  edited : Doc.t;
  new_of_old : int array;
  old_of_new : int array;
  inserted_roots : int list;
  deleted_roots : int list;
  changed_values : int list;
  structural : bool;
}

(* The node correspondence mirrors [rebuild] + [Doc.of_tree] exactly:
   preorder over the old document, skipping deleted subtrees wholesale
   and reserving an id run for each inserted subtree at the spliced
   position (positions index {e surviving} children, as in [rebuild]'s
   clamp).  Everything downstream — interval copying, table surgery,
   block root remapping — leans on this walk agreeing with the fresh
   numbering of the edited document, which the planner asserts. *)
let delta doc edit =
  let delete, set_targets, insert_at =
    match edit with
    | Delete_nodes path ->
      let bound = bindings_of doc path in
      if Node_set.mem (Doc.root doc) bound then
        invalid_arg "Update: cannot delete the document root";
      bound, Node_set.empty, no_insert
    | Set_value (path, _) ->
      let targets = bindings_of doc path in
      Node_set.iter
        (fun n ->
          if Doc.value doc n = None then
            invalid_arg
              (Printf.sprintf "Update: node %d (%s) is not a leaf" n
                 (Doc.tag doc n)))
        targets;
      Node_set.empty, targets, no_insert
    | Insert_child { parent; position; subtree } ->
      let parents = bindings_of doc parent in
      Node_set.iter
        (fun n ->
          if Doc.value doc n <> None then
            invalid_arg
              (Printf.sprintf "Update: cannot insert under leaf node %d" n))
        parents;
      ignore (tree_node_count subtree);
      Node_set.empty, Node_set.empty,
      fun n -> if Node_set.mem n parents then Some (position, subtree) else None
  in
  let new_of_old = Array.make (Doc.node_count doc) (-1) in
  let counter = ref 0 in
  let inserted = ref [] and deleted = ref [] in
  let rec walk n =
    if Node_set.mem n delete then deleted := n :: !deleted
    else begin
      new_of_old.(n) <- !counter;
      incr counter;
      if Doc.value doc n = None then begin
        let children = Doc.children doc n in
        match insert_at n with
        | None -> List.iter walk children
        | Some (position, subtree) ->
          let surviving =
            List.length (List.filter (fun c -> not (Node_set.mem c delete)) children)
          in
          let position = max 0 (min position surviving) in
          let plant () =
            inserted := !counter :: !inserted;
            counter := !counter + tree_node_count subtree
          in
          let planted = ref false and seen = ref 0 in
          List.iter
            (fun c ->
              if not (Node_set.mem c delete) then begin
                if (not !planted) && !seen = position then begin
                  plant ();
                  planted := true
                end;
                incr seen
              end;
              walk c)
            children;
          if not !planted then plant ()
      end
    end
  in
  walk (Doc.root doc);
  let set_fun n =
    match edit with
    | Set_value (_, v) when Node_set.mem n set_targets -> Some v
    | _ -> None
  in
  let edited =
    Doc.of_tree (rebuild doc ~delete ~set_value:set_fun ~insert_at)
  in
  if Doc.node_count edited <> !counter then
    invalid_arg "Update.delta: correspondence walk disagrees with rebuild";
  let old_of_new = Array.make !counter (-1) in
  Array.iteri
    (fun old_id new_id -> if new_id >= 0 then old_of_new.(new_id) <- old_id)
    new_of_old;
  { edit;
    edited;
    new_of_old;
    old_of_new;
    inserted_roots = List.rev !inserted;
    deleted_roots = List.rev !deleted;
    changed_values = Node_set.elements set_targets;
    structural = (match edit with Set_value _ -> false | _ -> true) }

(* Shape-only rendering for logs: paths are plaintext the owner chose
   to log, but replaced values never appear. *)
let describe = function
  | Insert_child { parent; position; _ } ->
    Printf.sprintf "insert child at position %d under %s" position
      (Ast.to_string parent)
  | Delete_nodes path -> "delete nodes at " ^ Ast.to_string path
  | Set_value (path, _) -> "set value at " ^ Ast.to_string path
