module Doc = Xmlcore.Doc
module Tree = Xmlcore.Tree

let log_src = Logs.Src.create "secure.system" ~doc:"Hosted-system lifecycle"

module Log = (val Logs.src_log log_src)

(* Process-wide system counters on Obs.Metric.default (disabled by
   default).  [system.degraded] makes naive-evaluate fallbacks visible
   to operators without tracing: before it existed a degraded query was
   indistinguishable from a clean one unless the caller inspected every
   cost record or enabled the ledger. *)
module M = struct
  let reg = Obs.Metric.default

  let degraded =
    Obs.Metric.counter reg "system.degraded"
      ~help:"queries answered by the naive fallback after the metadata path gave up"

  let relinks =
    Obs.Metric.counter reg "system.relinks"
      ~help:"session links torn down and re-established"
end

(* The wire between client and server: a framed session over a
   (possibly fault-injecting) transport.  Built once per system; the
   endpoint wraps the server's answer function. *)
type link = {
  transport : Transport.t;
  session : Session.t;
  endpoint : Session.endpoint;
  faulty : bool;
}

(* What a delta update changed, block-wise: enough for per-block cache
   invalidation without flushing artifacts derived from untouched
   blocks. *)
type delta_event = {
  touched_blocks : (int * int * int) list;  (* id, old gen, new gen *)
  dropped_blocks : (int * int) list;        (* id, old gen *)
  structural : bool;
}

type t = {
  doc : Doc.t;
  master : string;
  cipher : Crypto.Cipher.suite;
  constraints : Sc.t list;
  scheme : Scheme.t;
  db : Encrypt.db;
  metadata : Metadata.t;
  value_index : Metadata.index_policy;
  client : Client.t;
  server : Server.t;
  link : link;
  pool : Parallel.Pool.t option;
  trace : Obs.Trace.t;    (* shared with the server; disabled by default *)
  ledger : Obs.Ledger.t;  (* per-round server-visible facts *)
  generation : int;
  rehost_hooks : (unit -> unit) list ref;
      (* observers (caches, engines) to notify when this hosting is
         superseded by update/update_all/rotate; shared by the
         with_faults record copy, which is the same hosting rewired *)
  delta_hooks : (delta_event -> unit) list ref;
      (* observers to notify when a delta supersedes this hosting with
         a block-level changelist instead of a wholesale re-host *)
}

(* Re-hosting replaces every ciphertext artifact (blocks, tokens, OPE
   keys, DSI weights), so anything derived from a system must be
   dropped when its generation is superseded. *)
let generation_counter = ref 0

let next_generation () =
  incr generation_counter;
  !generation_counter

let generation t = t.generation

let on_rehost t f = t.rehost_hooks := f :: !(t.rehost_hooks)

let fire_rehost t =
  List.iter (fun f -> f ()) !(t.rehost_hooks);
  t.rehost_hooks := []

let on_delta t f = t.delta_hooks := f :: !(t.delta_hooks)

let fire_delta t event =
  List.iter (fun f -> f event) !(t.delta_hooks);
  t.delta_hooks := []

type cost = {
  translate_ms : float;
  server_ms : float;
  transmit_bytes : int;
  transmit_ms : float;
  decrypt_ms : float;
  postprocess_ms : float;
  blocks_returned : int;
  answer_count : int;
  attempts : int;
  retransmitted_bytes : int;
  faults_absorbed : int;
  replays : int;
  degraded : bool;
}

(* 100 Mbps = 12.5 MB/s = 12500 bytes per ms. *)
let link_bytes_per_ms = 12_500.0

let total_ms c =
  c.translate_ms +. c.server_ms +. c.transmit_ms +. c.decrypt_ms +. c.postprocess_ms

type setup_cost = {
  scheme_build_ms : float;
  encrypt_ms : float;
  metadata_ms : float;
  scheme_size_nodes : int;
  block_count : int;
  server_data_bytes : int;
  metadata_bytes : int;
}

let now_ms () = Unix.gettimeofday () *. 1000.0

let timed f =
  let start = now_ms () in
  let result = f () in
  result, now_ms () -. start

let session_mac_label = "session-mac"

let make_link ?session_config ?faults keys server =
  let mac_key = Crypto.Keys.derive keys session_mac_label in
  let handler request =
    let response =
      match Protocol.decode_any request with
      | Protocol.Query q -> Server.answer server q
      | Protocol.Fetch ids -> Server.fetch server ids
      | Protocol.Padded (q, extra) -> Server.answer_padded server q ~extra
    in
    Protocol.encode_response response
  in
  let endpoint = Session.endpoint ~mac_key ~handler () in
  let transport = Transport.loopback (Session.serve endpoint) in
  let transport =
    match faults with
    | None -> transport
    | Some (profile, seed) -> Transport.faulty ~profile ~seed transport
  in
  { transport; session = Session.client ?config:session_config ~mac_key transport;
    endpoint;
    faulty = faults <> None }

let setup ?(master = "secure-xml-master-key") ?(cipher = Crypto.Cipher.Xtea)
    ?(value_index = Metadata.All_leaves) ?pool doc scs kind =
  let keys = Crypto.Keys.create ~suite:cipher ~master () in
  let trace = Obs.Trace.create () in
  let ledger = Obs.Ledger.create () in
  let scheme, scheme_build_ms = timed (fun () -> Scheme.build doc scs kind) in
  (match Scheme.enforces doc scheme scs with
   | Ok () -> ()
   | Error msg -> invalid_arg ("System.setup: scheme does not enforce SCs: " ^ msg));
  let db, encrypt_ms = timed (fun () -> Encrypt.encrypt ?pool ~keys doc scheme) in
  let metadata, metadata_ms =
    timed (fun () -> Metadata.build ?pool ~keys ~policy:value_index db)
  in
  let client = Client.create ~keys metadata db in
  let server = Server.of_metadata ~trace metadata (Encrypt.server_blocks db) in
  Log.info (fun m ->
      m "setup: scheme %s, %d blocks (%.0f ms), metadata %d B (%.0f ms), cipher %s"
        (Scheme.kind_to_string kind)
        (Scheme.block_count scheme)
        encrypt_ms
        (Metadata.metadata_bytes metadata)
        metadata_ms
        (Crypto.Cipher.suite_to_string cipher));
  let system =
    { doc; master; cipher; constraints = scs; scheme; db; metadata;
      value_index; client; server;
      link = make_link keys server;
      pool;
      trace;
      ledger;
      generation = next_generation ();
      rehost_hooks = ref [];
      delta_hooks = ref [] }
  in
  let cost =
    { scheme_build_ms;
      encrypt_ms;
      metadata_ms;
      scheme_size_nodes = Scheme.size doc scheme;
      block_count = Scheme.block_count scheme;
      server_data_bytes = Encrypt.server_bytes db;
      metadata_bytes = Metadata.metadata_bytes metadata }
  in
  system, cost

(* Rebuild the live client/server pair from persisted parts (used by
   Persist.load); no scheme construction, encryption or metadata work
   happens here. *)
let restore ~master ?(cipher = Crypto.Cipher.Xtea)
    ?(value_index = Metadata.All_leaves) ?pool ~doc ~constraints ~scheme ~db
    ~metadata () =
  let keys = Crypto.Keys.create ~suite:cipher ~master () in
  (* A restored ring never ran [Encrypt.encrypt]: warm its derived-key
     memo before any pooled decryption can read it concurrently. *)
  Encrypt.prewarm_block_keys ~keys;
  let trace = Obs.Trace.create () in
  let server = Server.of_metadata ~trace metadata (Encrypt.server_blocks db) in
  { doc;
    master;
    cipher;
    constraints;
    scheme;
    db;
    metadata;
    value_index;
    client = Client.create ~keys metadata db;
    server;
    link = make_link keys server;
    pool;
    trace;
    ledger = Obs.Ledger.create ();
    generation = next_generation ();
    rehost_hooks = ref [];
    delta_hooks = ref [] }

(* Rewire the same hosted system behind a chaotic link.  The server
   state is shared; only the wire path (and retry policy) changes. *)
let with_faults ?session ~profile ~seed t =
  let keys = Crypto.Keys.create ~suite:t.cipher ~master:t.master () in
  { t with
    link = make_link ?session_config:session ~faults:(profile, seed) keys t.server }

(* Link incarnation boundary: close the old session (it refuses further
   calls) and build a fresh link — new client sequence numbers, new
   endpoint, and therefore an *empty* replay cache.  Without the close,
   a caller still holding the old record could warm the dead
   incarnation's cache and make replay accounting lie across the
   teardown; with it, the two incarnations are observably disjoint. *)
let reset_link ?session ?faults t =
  Session.close t.link.session;
  Obs.Metric.incr M.relinks;
  let keys = Crypto.Keys.create ~suite:t.cipher ~master:t.master () in
  { t with link = make_link ?session_config:session ?faults keys t.server }

let session_stats t = Session.stats t.link.session
let transport_stats t = Transport.stats t.link.transport
let endpoint_stats t = Session.endpoint_stats t.link.endpoint

let tracer t = t.trace
let ledger t = t.ledger

let doc t = t.doc
let master t = t.master
let cipher t = t.cipher
let constraints t = t.constraints
let scheme t = t.scheme
let db t = t.db
let metadata t = t.metadata
let client t = t.client
let server t = t.server
let pool t = t.pool

let cost_of ?(attempts = 1) ?(retransmitted_bytes = 0) ?(faults_absorbed = 0)
    ?(replays = 0) ?(degraded = false) ~translate_ms ~server_ms ~bytes ~decrypt_ms
    ~postprocess_ms ~blocks ~answers () =
  { translate_ms;
    server_ms;
    transmit_bytes = bytes;
    transmit_ms = float_of_int bytes /. link_bytes_per_ms;
    decrypt_ms;
    postprocess_ms;
    blocks_returned = blocks;
    answer_count = answers;
    attempts;
    retransmitted_bytes;
    faults_absorbed;
    replays;
    degraded }

(* Session-stat deltas around a group of calls, for the cost report. *)
let session_snapshot t = Session.stats t.link.session

(* Replay-cache hits the endpoint saw since [before] — the
   retransmit-linkability count of the leakage ledger (retransmitted
   frames are byte-identical; see docs/SECURITY.md). *)
let replays_since t before =
  (Session.endpoint_stats t.link.endpoint).Session.replayed - before

let endpoint_replays t = (Session.endpoint_stats t.link.endpoint).Session.replayed

let robustness_since t (before : Session.stats) =
  let after = Session.stats t.link.session in
  ( after.Session.attempts - before.Session.attempts,
    after.Session.retransmitted_bytes - before.Session.retransmitted_bytes,
    Session.faults_absorbed after - Session.faults_absorbed before )

(* One verified round trip: frame, exchange (with retries), unframe,
   decode.  A response that authenticates but fails protocol decoding
   is reported as Malformed rather than letting the exception escape —
   under a surviving fault schedule the caller must never crash. *)
let exchange_raw link request =
  match Session.call link.session request with
  | Error e -> Error e
  | Ok payload ->
    (match Protocol.decode_response payload with
     | exception Protocol.Malformed _ -> Error Session.Malformed
     | response -> Ok (String.length request, response))

let exchange_on link squery = exchange_raw link (Protocol.encode_request squery)
let exchange t squery = exchange_on t.link squery

(* Shipped-block ids in shipping order — the access pattern the ledger
   records and the adversary simulator replays.  A pure wire fact: ids
   are response-header fields, never decrypted content. *)
let ids_of blocks = List.map (fun b -> b.Encrypt.id) blocks

(* The single candidate-block decrypt step shared by every evaluation
   path: metadata protocol, naive fallback, unions and aggregates.
   Per-block verify+decrypt is independent (nonce and MAC are keyed by
   the block id) and results keep list order, so the pooled fan-out
   returns exactly what the sequential fold would.  When called from
   inside a pool worker (see [evaluate_batch]) the nested map degrades
   to sequential on that worker — correct either way. *)
let decrypt_blocks t blocks =
  timed (fun () ->
      let keys = Client.keys t.client in
      let one b = b.Encrypt.id, Encrypt.decrypt_block ~keys b in
      match t.pool with
      | Some p when Parallel.Pool.size p > 1 -> Parallel.Pool.map_list p one blocks
      | Some _ | None -> List.map one blocks)

let decrypt_response t (response : Server.response) =
  decrypt_blocks t response.Server.blocks

let try_evaluate t query =
  (* Every exchange crosses the wire format: the server decodes the
     request bytes, the client decodes the response bytes — exactly the
     Figure 1 data flow, now framed and retried by the session layer. *)
  Obs.span t.trace "system.evaluate" @@ fun () ->
  let squery, translate_ms =
    Obs.span t.trace "client.translate" @@ fun () ->
    timed (fun () -> Client.translate t.client query)
  in
  let before = session_snapshot t in
  let replays_before = endpoint_replays t in
  match
    Obs.span t.trace "wire.exchange" @@ fun () ->
    timed (fun () -> exchange t squery)
  with
  | Error e, _ -> Error e
  | Ok (request_bytes, response), server_ms ->
    let attempts, retransmitted_bytes, faults_absorbed = robustness_since t before in
    let replays = replays_since t replays_before in
    let decrypted, decrypt_ms =
      Obs.span t.trace "client.decrypt" @@ fun () -> decrypt_response t response
    in
    let answers, postprocess_ms =
      Obs.span t.trace "client.postprocess" @@ fun () ->
      timed (fun () -> Client.evaluate_with t.client ~decrypted query)
    in
    if Obs.Ledger.enabled t.ledger then
      Obs.Ledger.record t.ledger
        (Obs.Ledger.round "evaluate" ~bytes_up:request_bytes
           ~bytes_down:response.Server.bytes
           ~intervals_touched:response.Server.candidate_intervals
           ~btree_hits:response.Server.btree_hits
           ~blocks_returned:(List.length response.Server.blocks)
           ~block_ids:(ids_of response.Server.blocks)
           ~attempts ~replays);
    Ok
      ( answers,
        cost_of ~attempts ~retransmitted_bytes ~faults_absorbed ~replays
          ~translate_ms ~server_ms
          ~bytes:(request_bytes + response.Server.bytes)
          ~decrypt_ms ~postprocess_ms
          ~blocks:(List.length response.Server.blocks)
          ~answers:(List.length answers) () )

(* What the naive path ships: every stored block.  These are wire
   facts of the ciphertext store alone, computed outside the
   answer-producing closures so ledger rounds can record them without
   projecting anything out of the (secret) answer tuple. *)
let shipped_facts t =
  let blocks = Server.all_blocks t.server in
  let bytes =
    List.fold_left
      (fun acc b ->
        acc + String.length b.Encrypt.ciphertext + Encrypt.block_header_bytes)
      0 blocks
  in
  blocks, bytes, List.length blocks

(* [record = false] also skips tracing: the batch path may run this on
   a pool worker, and the tracer/ledger are single-domain structures. *)
let naive_impl ~record t query =
  let shipped, shipped_bytes, shipped_count = shipped_facts t in
  let run () =
    let decrypted, decrypt_ms = decrypt_blocks t shipped in
    let answers, postprocess_ms =
      timed (fun () -> Client.evaluate_with t.client ~decrypted query)
    in
    ( answers,
      cost_of ~translate_ms:0.0 ~server_ms:0.0 ~bytes:shipped_bytes ~decrypt_ms
        ~postprocess_ms ~blocks:shipped_count
        ~answers:(List.length answers) () )
  in
  if not record then run ()
  else begin
    let answers, cost = Obs.span t.trace "system.naive_evaluate" run in
    if Obs.Ledger.enabled t.ledger then
      Obs.Ledger.record t.ledger
        (Obs.Ledger.round "naive" ~bytes_down:shipped_bytes
           ~blocks_returned:shipped_count ~block_ids:(ids_of shipped));
    answers, cost
  end

let naive_evaluate t query = naive_impl ~record:true t query

(* Degradation ladder: the metadata path retries inside Session.call;
   if it still fails, fall back to the naive ship-everything semantics
   evaluated from the server state directly (no metadata round trip to
   fail), so answers stay exact under any survivable fault schedule. *)
let evaluate t query =
  let before = session_snapshot t in
  let replays_before = endpoint_replays t in
  match try_evaluate t query with
  | Ok result -> result
  | Error err ->
    Log.warn (fun m ->
        m "metadata path failed (%s): degrading to naive evaluation"
          (Session.error_to_string err));
    Obs.Metric.incr M.degraded;
    let answers, cost = naive_impl ~record:false t query in
    let shipped, shipped_bytes, shipped_count = shipped_facts t in
    let attempts, retransmitted_bytes, faults_absorbed = robustness_since t before in
    let replays = replays_since t replays_before in
    if Obs.Ledger.enabled t.ledger then
      Obs.Ledger.record t.ledger
        (Obs.Ledger.round "degraded" ~bytes_down:shipped_bytes
           ~blocks_returned:shipped_count ~block_ids:(ids_of shipped)
           ~attempts ~replays ~degraded:true);
    ( answers,
      { cost with
        degraded = true; attempts; retransmitted_bytes; faults_absorbed; replays } )

(* ------------------------------------------------------------------ *)
(* Mitigation primitives (the Mitigate layer's wire operations)        *)

(* Cover traffic: a Fetch round whose blocks the client discards
   undecrypted — only the traffic shape matters, so the cost carries no
   decrypt/postprocess time and no answers. *)
let fetch_blocks t ids =
  Obs.span t.trace "system.fetch" @@ fun () ->
  let before = session_snapshot t in
  let replays_before = endpoint_replays t in
  match timed (fun () -> exchange_raw t.link (Protocol.encode_fetch ids)) with
  | Error e, _ -> Error e
  | Ok (request_bytes, response), server_ms ->
    let attempts, retransmitted_bytes, faults_absorbed = robustness_since t before in
    let replays = replays_since t replays_before in
    if Obs.Ledger.enabled t.ledger then
      Obs.Ledger.record t.ledger
        (Obs.Ledger.round "fetch" ~bytes_up:request_bytes
           ~bytes_down:response.Server.bytes
           ~blocks_returned:(List.length response.Server.blocks)
           ~block_ids:(ids_of response.Server.blocks)
           ~attempts ~replays);
    Ok
      (cost_of ~attempts ~retransmitted_bytes ~faults_absorbed ~replays
         ~translate_ms:0.0 ~server_ms
         ~bytes:(request_bytes + response.Server.bytes)
         ~decrypt_ms:0.0 ~postprocess_ms:0.0
         ~blocks:(List.length response.Server.blocks)
         ~answers:0 ())

(* The padded twin of [try_evaluate]: the shipment is widened to the
   requested envelope but stays a superset of the honest answer, and
   client-side filtering is already superset-tolerant (the naive path
   ships everything), so answers are byte-identical to the unpadded
   round. *)
let try_evaluate_padded t ~extra query =
  Obs.span t.trace "system.evaluate_padded" @@ fun () ->
  let squery, translate_ms =
    Obs.span t.trace "client.translate" @@ fun () ->
    timed (fun () -> Client.translate t.client query)
  in
  let before = session_snapshot t in
  let replays_before = endpoint_replays t in
  match
    Obs.span t.trace "wire.exchange" @@ fun () ->
    timed (fun () -> exchange_raw t.link (Protocol.encode_padded squery extra))
  with
  | Error e, _ -> Error e
  | Ok (request_bytes, response), server_ms ->
    let attempts, retransmitted_bytes, faults_absorbed = robustness_since t before in
    let replays = replays_since t replays_before in
    let decrypted, decrypt_ms =
      Obs.span t.trace "client.decrypt" @@ fun () -> decrypt_response t response
    in
    let answers, postprocess_ms =
      Obs.span t.trace "client.postprocess" @@ fun () ->
      timed (fun () -> Client.evaluate_with t.client ~decrypted query)
    in
    if Obs.Ledger.enabled t.ledger then
      Obs.Ledger.record t.ledger
        (Obs.Ledger.round "padded" ~bytes_up:request_bytes
           ~bytes_down:response.Server.bytes
           ~intervals_touched:response.Server.candidate_intervals
           ~btree_hits:response.Server.btree_hits
           ~blocks_returned:(List.length response.Server.blocks)
           ~block_ids:(ids_of response.Server.blocks)
           ~attempts ~replays);
    Ok
      ( answers,
        cost_of ~attempts ~retransmitted_bytes ~faults_absorbed ~replays
          ~translate_ms ~server_ms
          ~bytes:(request_bytes + response.Server.bytes)
          ~decrypt_ms ~postprocess_ms
          ~blocks:(List.length response.Server.blocks)
          ~answers:(List.length answers) () )

(* Union queries: one server round per branch, one combined block set,
   one client-side union evaluation (node-level dedup). *)
let try_evaluate_union t queries =
  Obs.span t.trace "system.evaluate_union" @@ fun () ->
  let start = now_ms () in
  let before = session_snapshot t in
  let replays_before = endpoint_replays t in
  let rec rounds acc = function
    | [] -> Ok (List.rev acc)
    | q :: rest ->
      (match exchange t (Client.translate t.client q) with
       | Error e -> Error e
       | Ok round -> rounds (round :: acc) rest)
  in
  match rounds [] queries with
  | Error e -> Error e
  | Ok responses ->
    let server_ms = now_ms () -. start in
    let attempts, retransmitted_bytes, faults_absorbed = robustness_since t before in
    let blocks =
      List.sort_uniq
        (fun a b -> compare a.Encrypt.id b.Encrypt.id)
        (List.concat_map (fun (_, r) -> r.Server.blocks) responses)
    in
    let bytes =
      List.fold_left (fun acc (req, r) -> acc + req + r.Server.bytes) 0 responses
    in
    let decrypted, decrypt_ms = decrypt_blocks t blocks in
    let answers, postprocess_ms =
      timed (fun () -> Client.evaluate_union_with t.client ~decrypted queries)
    in
    let replays = replays_since t replays_before in
    if Obs.Ledger.enabled t.ledger then
      Obs.Ledger.record t.ledger
        (Obs.Ledger.round "union"
           ~bytes_up:(List.fold_left (fun acc (req, _) -> acc + req) 0 responses)
           ~bytes_down:
             (List.fold_left (fun acc (_, r) -> acc + r.Server.bytes) 0 responses)
           ~intervals_touched:
             (List.fold_left
                (fun acc (_, r) -> acc + r.Server.candidate_intervals)
                0 responses)
           ~btree_hits:
             (List.fold_left (fun acc (_, r) -> acc + r.Server.btree_hits) 0 responses)
           ~blocks_returned:(List.length blocks) ~block_ids:(ids_of blocks)
           ~attempts ~replays);
    Ok
      ( answers,
        cost_of ~attempts ~retransmitted_bytes ~faults_absorbed ~replays
          ~translate_ms:0.0 ~server_ms ~bytes ~decrypt_ms ~postprocess_ms
          ~blocks:(List.length blocks)
          ~answers:(List.length answers) () )

let evaluate_union t queries =
  let before = session_snapshot t in
  let replays_before = endpoint_replays t in
  match try_evaluate_union t queries with
  | Ok result -> result
  | Error err ->
    Log.warn (fun m ->
        m "union metadata path failed (%s): degrading to naive evaluation"
          (Session.error_to_string err));
    Obs.Metric.incr M.degraded;
    let blocks = Server.all_blocks t.server in
    let bytes =
      List.fold_left
        (fun acc b ->
          acc + String.length b.Encrypt.ciphertext + Encrypt.block_header_bytes)
        0 blocks
    in
    let decrypted, decrypt_ms = decrypt_blocks t blocks in
    let answers, postprocess_ms =
      timed (fun () -> Client.evaluate_union_with t.client ~decrypted queries)
    in
    let attempts, retransmitted_bytes, faults_absorbed = robustness_since t before in
    let replays = replays_since t replays_before in
    if Obs.Ledger.enabled t.ledger then
      Obs.Ledger.record t.ledger
        (Obs.Ledger.round "degraded" ~bytes_down:bytes
           ~blocks_returned:(List.length blocks) ~block_ids:(ids_of blocks)
           ~attempts ~replays ~degraded:true);
    ( answers,
      cost_of ~attempts ~retransmitted_bytes ~faults_absorbed ~replays
        ~degraded:true ~translate_ms:0.0 ~server_ms:0.0 ~bytes ~decrypt_ms
        ~postprocess_ms
        ~blocks:(List.length blocks)
        ~answers:(List.length answers) () )

(* ------------------------------------------------------------------ *)
(* Batched evaluation                                                  *)

(* Fan the independent queries of a workload across the pool, against
   the shared read-only server.  Three things keep this exactly
   equivalent to evaluating the queries one at a time:

   - translation happens up front on the calling domain, in query
     order: OPESS translation memoises inside each catalog's OPE
     instance, which parallel translation would race on;

   - each lane gets a private session link (the system's own session
     is stateful: sequence numbers, stats), built over the same
     endpoint handler, so every request/response crosses the same wire
     format and the server answers from the same read-only state;

   - results merge by input index (the pool's deterministic-merge
     contract), so answers and costs line up with the query array.

   A chaotic link serialises: retry schedules are deterministic per
   session, and interleaving lanes over a shared fault schedule would
   change which faults hit which query. *)
let evaluate_batch t queries =
  let sequentially () = Array.map (fun q -> evaluate t q) queries in
  match t.pool with
  | None -> sequentially ()
  | Some _ when t.link.faulty -> sequentially ()
  | Some p when Parallel.Pool.size p <= 1 -> sequentially ()
  | Some p ->
    let keys = Client.keys t.client in
    (* Lane links derive the session MAC key from the (mutable) key
       ring memo: warm it before fanning out. *)
    ignore (Crypto.Keys.derive keys session_mac_label);
    let translated =
      Array.map (fun q -> q, timed (fun () -> Client.translate t.client q)) queries
    in
    let results =
      Parallel.Pool.map p
      (fun (query, (squery, translate_ms)) ->
        let lane = make_link keys t.server in
        let before = Session.stats lane.session in
        match timed (fun () -> exchange_on lane squery) with
        | Ok (request_bytes, response), server_ms ->
          let attempts, retransmitted_bytes, faults_absorbed =
            let after = Session.stats lane.session in
            ( after.Session.attempts - before.Session.attempts,
              after.Session.retransmitted_bytes - before.Session.retransmitted_bytes,
              Session.faults_absorbed after - Session.faults_absorbed before )
          in
          let decrypted, decrypt_ms = decrypt_response t response in
          let answers, postprocess_ms =
            timed (fun () -> Client.evaluate_with t.client ~decrypted query)
          in
          (* The lane returns the ledger's wire facts next to the
             result pair: they come from the request/response framing,
             never from the answer tuple, so recording them after the
             merge stays clean of the decrypted material. *)
          ( ( answers,
              cost_of ~attempts ~retransmitted_bytes ~faults_absorbed
                ~translate_ms ~server_ms
                ~bytes:(request_bytes + response.Server.bytes)
                ~decrypt_ms ~postprocess_ms
                ~blocks:(List.length response.Server.blocks)
                ~answers:(List.length answers) () ),
            (false, request_bytes + response.Server.bytes,
             ids_of response.Server.blocks, attempts) )
        | Error err, _ ->
          Log.warn (fun m ->
              m "batch lane failed (%s): degrading to naive evaluation"
                (Session.error_to_string err));
          let answers, cost = naive_impl ~record:false t query in
          let shipped, shipped_bytes, _ = shipped_facts t in
          (* attempts 1 matches the naive cost's [cost_of] default. *)
          ( (answers, { cost with degraded = true }),
            (true, shipped_bytes, ids_of shipped, 1) ))
        translated
    in
    (* Metric and ledger updates happen after the deterministic merge,
       on the calling domain — the default registry's counters are not
       atomic, and lane endpoints (with their replay caches) are
       private and discarded, so per-round replay counts are 0 here. *)
    Array.iter
      (fun (_, (lane_degraded, _, _, _)) ->
        if lane_degraded then Obs.Metric.incr M.degraded)
      results;
    if Obs.Ledger.enabled t.ledger then
      Array.iter
        (fun (_, (lane_degraded, lane_bytes, lane_ids, lane_attempts)) ->
          Obs.Ledger.record t.ledger
            (Obs.Ledger.round "batch" ~bytes_down:lane_bytes
               ~blocks_returned:(List.length lane_ids) ~block_ids:lane_ids
               ~attempts:lane_attempts ~degraded:lane_degraded))
        results;
    Array.map fst results

let reference_union t queries =
  List.map (fun n -> Doc.subtree t.doc n) (Xpath.Eval.eval_union t.doc queries)

let reference t query =
  List.map (fun n -> Doc.subtree t.doc n) (Xpath.Eval.eval t.doc query)

(* ------------------------------------------------------------------ *)
(* Aggregates (Section 6.4)                                            *)

(* Compare values the way predicate evaluation does: numerically when
   both sides parse as numbers. *)
let value_compare a b =
  match float_of_string_opt a, float_of_string_opt b with
  | Some x, Some y -> Float.compare x y
  | Some _, None | None, Some _ | None, None -> String.compare a b

let leaf_values trees =
  List.filter_map
    (function
      | Tree.Element (_, [ Tree.Text v ]) -> Some v
      | Tree.Element _ | Tree.Text _ -> None)
    trees

let extreme direction values =
  let better a b =
    match direction with
    | `Min -> if value_compare a b <= 0 then a else b
    | `Max -> if value_compare a b >= 0 then a else b
  in
  match values with
  | [] -> None
  | v :: rest -> Some (List.fold_left better v rest)

let aggregate t direction query =
  let squery, translate_ms = timed (fun () -> Client.translate t.client query) in
  match
    (* The no-decryption fast path needs the server's candidate set to
       be exact, which structural joins guarantee only in the absence
       of value predicates (those are resolved at block granularity and
       may admit false positives under coarse schemes). *)
    if Squery.has_value_predicate squery then None
    else Client.aggregate_range t.client query
  with
  | None ->
    (* Fall back to the ordinary protocol and aggregate client-side. *)
    let answers, cost = evaluate t query in
    extreme direction (leaf_values answers), cost
  | Some key_range ->
    let response, server_ms =
      timed (fun () -> Server.answer_extreme t.server squery ~key_range ~direction)
    in
    let decrypted, decrypt_ms = decrypt_response t response in
    let result, postprocess_ms =
      timed (fun () ->
          extreme direction
            (leaf_values (Client.evaluate_with t.client ~decrypted query)))
    in
    if Obs.Ledger.enabled t.ledger then
      Obs.Ledger.record t.ledger
        (Obs.Ledger.round "aggregate" ~bytes_down:response.Server.bytes
           ~intervals_touched:response.Server.candidate_intervals
           ~btree_hits:response.Server.btree_hits
           ~blocks_returned:(List.length response.Server.blocks)
           ~block_ids:(ids_of response.Server.blocks));
    ( result,
      cost_of ~translate_ms ~server_ms ~bytes:response.Server.bytes ~decrypt_ms
        ~postprocess_ms
        ~blocks:(List.length response.Server.blocks)
        ~answers:(match result with Some _ -> 1 | None -> 0)
        () )

let count t query =
  (* COUNT cannot be answered from the index (splitting and scaling
     distort entry counts, Section 5.2): decrypt and count. *)
  let answers, cost = evaluate t query in
  List.length answers, cost

let reference_aggregate t direction query =
  extreme direction (leaf_values (reference t query))

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)

(* Key rotation: re-host the same document under a fresh master secret
   (new block keys, pads, OPE keys, weights — everything re-derives).
   Old persisted bundles stop authenticating, by construction. *)
let rotate t ~new_master =
  let result =
    setup ~master:new_master ~cipher:t.cipher ?pool:t.pool t.doc t.constraints
      t.scheme.Scheme.kind
  in
  fire_rehost t;
  result

let update t edit =
  Log.info (fun m -> m "update: %s; re-hosting" (Update.describe edit));
  let edited = Doc.of_tree (Update.apply t.doc edit) in
  let result =
    setup ~master:t.master ~cipher:t.cipher ?pool:t.pool edited t.constraints
      t.scheme.Scheme.kind
  in
  fire_rehost t;
  result

let update_all t edits =
  let edited = Update.apply_all t.doc edits in
  let result =
    setup ~master:t.master ~cipher:t.cipher ?pool:t.pool edited t.constraints
      t.scheme.Scheme.kind
  in
  fire_rehost t;
  result

(* ------------------------------------------------------------------ *)
(* Incremental delta updates                                           *)

type delta_cost = {
  plan_ms : float;
  reencrypt_ms : float;
  patch_ms : float;
  blocks_touched : int;
  blocks_dropped : int;
  blocks_total : int;
  reencrypted_bytes : int;
  rows_removed : int;
  rows_added : int;
  catalogs_patched : int;
  index_entries_touched : int;
  fell_back : bool;
}

exception Delta_fallback of string

(* Apply one edit by re-encrypting only the touched blocks and patching
   the metadata in place, instead of re-hosting the whole document.
   The fallback ladder is explicit: whenever the incremental path
   cannot be both correct and secure (the remapped scheme no longer
   enforces the SCs, attribute/interval space exhausted, a surgery
   precondition fails), it degrades to [update] — the always-secure
   full re-host — and says so in the cost record. *)
let apply_delta t edit =
  let keys = Client.keys t.client in
  let started = now_ms () in
  try
    let plan = Update.delta t.doc edit in
    let plan_ms = now_ms () -. started in
    let edited = plan.Update.edited in
    let roots' =
      List.filter_map
        (fun r ->
          let nr = plan.Update.new_of_old.(r) in
          if nr >= 0 then Some nr else None)
        t.scheme.Scheme.block_roots
    in
    let scheme' = { t.scheme with Scheme.block_roots = roots' } in
    (* The remapped scheme must still enforce every SC over the edited
       document — an insert of sensitive content outside all blocks is
       exactly what this catches. *)
    (match Scheme.enforces edited scheme' t.constraints with
     | Ok () -> ()
     | Error msg -> raise (Delta_fallback ("scheme no longer enforces SCs: " ^ msg)));
    (* Touched = blocks containing an edit site; dropped = blocks whose
       root vanished with a deleted subtree. *)
    let touched_tbl = Hashtbl.create 16 in
    let note n =
      match Encrypt.block_id_of_node t.db n with
      | Some id -> Hashtbl.replace touched_tbl id ()
      | None -> ()
    in
    List.iter note plan.Update.changed_values;
    List.iter note plan.Update.deleted_roots;
    List.iter
      (fun r ->
        match Doc.parent edited r with
        | Some p ->
          let old_p = plan.Update.old_of_new.(p) in
          if old_p >= 0 then note old_p
        | None -> ())
      plan.Update.inserted_roots;
    let dropped = ref [] in
    let survivors =
      List.filter_map
        (fun b ->
          let nr = plan.Update.new_of_old.(b.Encrypt.root) in
          if nr < 0 then begin
            dropped := (b.Encrypt.id, b.Encrypt.generation) :: !dropped;
            None
          end
          else Some (b, nr))
        t.db.Encrypt.blocks
    in
    let jobs =
      Array.of_list
        (List.filter (fun (b, _) -> Hashtbl.mem touched_tbl b.Encrypt.id) survivors)
    in
    let reencrypt_start = now_ms () in
    let fresh = Encrypt.reencrypt_blocks ?pool:t.pool ~keys edited jobs in
    let reencrypt_ms = now_ms () -. reencrypt_start in
    let fresh_by_id = Hashtbl.create 16 in
    Array.iter (fun b -> Hashtbl.replace fresh_by_id b.Encrypt.id b) fresh;
    let blocks' =
      List.map
        (fun (b, nr) ->
          match Hashtbl.find_opt fresh_by_id b.Encrypt.id with
          | Some fresh_block -> fresh_block
          | None -> { b with Encrypt.root = nr })
        survivors
    in
    let db' = Encrypt.reassemble ~doc:edited ~scheme:scheme' ~blocks:blocks' in
    let patch_start = now_ms () in
    let metadata', stats =
      Metadata.patch ~keys ~policy:t.value_index t.metadata plan ~old_db:t.db
        ~new_db:db'
    in
    let patch_ms = now_ms () -. patch_start in
    let client = Client.create ~keys metadata' db' in
    (* [tracer t], not [t.trace]: the accessor is the policy-declared
       safe projection of the handle (see lib/analysis/policy.ml). *)
    let server =
      Server.of_metadata ~trace:(tracer t) metadata' (Encrypt.server_blocks db')
    in
    let t' =
      { t with
        doc = edited;
        scheme = scheme';
        db = db';
        metadata = metadata';
        client;
        server;
        link = make_link keys server;
        generation = next_generation ();
        rehost_hooks = ref [];
        delta_hooks = ref [] }
    in
    let event =
      { touched_blocks =
          Array.to_list
            (Array.map
               (fun (b, _) ->
                 b.Encrypt.id, b.Encrypt.generation, b.Encrypt.generation + 1)
               jobs);
        dropped_blocks = List.rev !dropped;
        structural = plan.Update.structural }
    in
    Log.info (fun m ->
        m "delta: %s; %d/%d blocks re-encrypted, %d dropped, %d rows patched"
          (Update.describe edit) (Array.length jobs)
          (List.length t.db.Encrypt.blocks)
          (List.length !dropped)
          (stats.Metadata.rows_removed + stats.Metadata.rows_added));
    fire_delta t event;
    ( t',
      { plan_ms;
        reencrypt_ms;
        patch_ms;
        blocks_touched = Array.length jobs;
        blocks_dropped = List.length !dropped;
        blocks_total = List.length t.db.Encrypt.blocks;
        reencrypted_bytes =
          Array.fold_left
            (fun acc b -> acc + String.length b.Encrypt.ciphertext)
            0 fresh;
        rows_removed = stats.Metadata.rows_removed;
        rows_added = stats.Metadata.rows_added;
        catalogs_patched = stats.Metadata.catalogs_patched;
        index_entries_touched =
          stats.Metadata.index_entries_removed
          + stats.Metadata.index_entries_added;
        fell_back = false } )
  with
  | Delta_fallback reason
  | Metadata.Patch_impossible reason
  (* Interval precision exhausted mid-patch falls back too: a fresh
     assignment (which renumbers everything) can absorb layouts the
     incremental gaps cannot.  A genuinely invalid edit also lands
     here, and [update] re-raises the identical [Invalid_argument]
     before doing any work, so errors still propagate. *)
  | Invalid_argument reason ->
    Log.info (fun m -> m "delta update re-hosting instead: %s" reason);
    let plan_ms = now_ms () -. started in
    let t', setup_cost = update t edit in
    ( t',
      { plan_ms;
        reencrypt_ms = setup_cost.encrypt_ms;
        patch_ms = setup_cost.metadata_ms;
        blocks_touched = setup_cost.block_count;
        blocks_dropped = 0;
        blocks_total = setup_cost.block_count;
        reencrypted_bytes = Encrypt.encrypted_bytes (db t');
        rows_removed = 0;
        rows_added = 0;
        catalogs_patched = 0;
        index_entries_touched = 0;
        fell_back = true } )

let apply_deltas t edits =
  let t, costs =
    List.fold_left
      (fun (t, costs) edit ->
        let t', cost = apply_delta t edit in
        t', cost :: costs)
      (t, []) edits
  in
  t, List.rev costs
