type entry = {
  request : string;
  block_ids : int list;
}

type t = { mutable entries : entry list; mutable replayed_frames : int }

let create () = { entries = []; replayed_frames = 0 }

let record_replays t n = t.replayed_frames <- t.replayed_frames + n

let record t ~request ~response =
  let block_ids =
    List.sort compare (List.map (fun b -> b.Encrypt.id) response.Server.blocks)
  in
  t.entries <- { request; block_ids } :: t.entries

let observed t = List.length t.entries

type analysis = {
  queries : int;
  distinct_requests : int;
  repeated_requests : int;
  distinct_patterns : int;
  replayed_frames : int;
  top_co_accessed : ((int * int) * int) list;
}

let analyze t =
  let entries = t.entries in
  let queries = List.length entries in
  let count_distinct project =
    let h = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace h (project e) ()) entries;
    Hashtbl.length h
  in
  let distinct_requests = count_distinct (fun e -> e.request) in
  let distinct_patterns = count_distinct (fun e -> e.block_ids) in
  let co = Hashtbl.create 256 in
  List.iter
    (fun e ->
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
          List.iter
            (fun b ->
              let key = a, b in
              Hashtbl.replace co key
                (1 + Option.value ~default:0 (Hashtbl.find_opt co key)))
            rest;
          pairs rest
      in
      pairs e.block_ids)
    entries;
  let top_co_accessed =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) co []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.filteri (fun i _ -> i < 10)
  in
  { queries;
    distinct_requests;
    repeated_requests = queries - distinct_requests;
    distinct_patterns;
    replayed_frames = t.replayed_frames;
    top_co_accessed }

let pp_analysis fmt a =
  Format.fprintf fmt
    "@[<v>%d queries observed; %d distinct requests (%d recognisable repeats);@,\
     %d distinct block-access patterns; %d retransmitted frames (linkable)@,"
    a.queries a.distinct_requests a.repeated_requests a.distinct_patterns
    a.replayed_frames;
  List.iter
    (fun ((x, y), c) ->
      Format.fprintf fmt "blocks %d and %d co-returned %d times@," x y c)
    a.top_co_accessed;
  Format.fprintf fmt "@]"
