(** Server-side metadata construction (Section 5).

    From an encrypted database this builds:
    - the {b DSI index table}: token → grouped interval list, where the
      token is the clear tag for plaintext nodes and the Vernam
      ciphertext for nodes inside encryption blocks, and adjacent
      same-tag siblings within one block share a single hull interval
      (Section 5.1.1);
    - the {b encryption block table}: block id → representative
      interval (the block root's interval);
    - the {b value index}: one global B-tree of OPESS ciphertext keys
      (namespaced per attribute) pointing at the block — or, for
      plaintext leaves, at the leaf's own interval;
    - the per-attribute {b OPESS catalogs}, which stay with the client
      (they are the client's value-translation secret).

    The [assignment] (node → interval map) is a client secret too; the
    server only ever receives the table, whose grouping hides the
    correspondence. *)

type target =
  | To_block of int             (** value occurs inside this block *)
  | To_plain of Dsi.Interval.t  (** value at this plaintext leaf *)

type index_policy =
  | All_leaves      (** index every leaf attribute (default) *)
  | Encrypted_only
      (** index only attributes occurring inside encryption blocks;
          queries over plaintext-only attributes then prune nothing on
          the server and are filtered client-side — smaller metadata
          for a measurable query-cost trade (E8 ablation) *)

type t = {
  assignment : Dsi.Assign.t;
  dsi_table : (string * Dsi.Interval.t list) list;
      (** key = {!token_key}-encoded token *)
  block_table : (int * Dsi.Interval.t) list;
  btree : target Btree.t;
  catalogs : (string * Opess.t) list;  (** leaf tag → catalog *)
  indexed_tags : string list;          (** attributes present in [btree] *)
}

val token_key : Squery.token -> string
(** Injective string encoding of tokens used as DSI-table keys. *)

val build :
  ?pool:Parallel.Pool.t -> keys:Crypto.Keys.t -> ?policy:index_policy -> Encrypt.db -> t
(** Build the server-side metadata.  When [pool] is given, the
    per-attribute OPESS catalog builds (each owning its own OPE
    instance) fan out across its domains; catalogs merge in sorted-tag
    order so attr ids and output are identical to the sequential
    path. *)

exception Patch_impossible of string
(** Raised by {!patch} when an edit cannot be absorbed incrementally
    (fresh attribute id space exhausted, or a table row the plan says
    must exist cannot be found).  {!patch} raises before mutating
    anything, so the caller can fall back to a full rebuild. *)

type patch_stats = {
  rows_removed : int;            (** DSI table rows recomputed away *)
  rows_added : int;              (** DSI table rows added back *)
  catalogs_patched : int;        (** attributes whose catalog was examined *)
  index_entries_removed : int;   (** B-tree entries deleted *)
  index_entries_added : int;     (** B-tree entries inserted *)
}

val patch :
  keys:Crypto.Keys.t ->
  ?policy:index_policy ->
  t ->
  Update.plan ->
  old_db:Encrypt.db ->
  new_db:Encrypt.db ->
  t * patch_stats
(** [patch ~keys t plan ~old_db ~new_db] absorbs one planned edit
    without rebuilding: surviving nodes keep their exact DSI intervals
    (copied through the plan's node correspondence), inserted subtrees
    draw intervals from the gaps calInterval reserved, only the parents
    whose child list changed have their DSI-table rows recomputed, and
    only attributes whose value multiset changed have their OPESS
    catalog rebuilt (under the same attr id) and their B-tree namespace
    re-inserted.  Work is proportional to the delta, not the database.

    The B-tree is mutated {e in place} — the input [t] must be
    considered consumed on success.  On [Patch_impossible] or
    [Invalid_argument] (interval precision exhausted) nothing has been
    mutated and [t] remains valid.

    A patched assignment is no longer recomputable from the master key;
    persistence stores the interval array
    (see {!Dsi.Assign.of_intervals}). *)

val catalog : t -> tag:string -> Opess.t option

val table_entry_count : t -> int
(** Total intervals across the DSI table (index-size accounting). *)

val btree_entry_count : t -> int

val metadata_bytes : t -> int
(** Rough serialized size of all server metadata: every table interval
    (two floats + token) plus every B-tree entry (key + target). *)
