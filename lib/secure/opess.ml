type chunk = {
  cipher : int64;
  occurrences : int;
}

type value_entry = {
  value : string;
  numeric : float;
  count : int;
  chunks : chunk list;
  scale : int;
}

type t = {
  tag : string;
  attr_id : int;
  m : int;
  num_keys : int;
  entries : value_entry list;
  by_value : (string, value_entry) Hashtbl.t;
}

let tag t = t.tag
let attr_id t = t.attr_id
let chunk_parameter t = t.m
let key_count t = t.num_keys
let entries t = t.entries
let find_entry t v = Hashtbl.find_opt t.by_value v

let namespace ~attr_id cipher =
  Int64.logor (Int64.shift_left (Int64.of_int attr_id) 56) cipher

(* [n] splits into chunks of sizes m-1, m, m+1 iff some chunk count [c]
   satisfies c(m-1) <= n <= c(m+1). *)
let expressible ~m n =
  let cmin = (n + m) / (m + 1) in
  cmin * (m - 1) <= n

(* Largest m for which every count >= 2 decomposes; counts of 1 are
   handled separately (single chunk + scaling). *)
let choose_m counts =
  let splittable = List.filter (fun n -> n >= 2) counts in
  match splittable with
  | [] -> 2
  | _ ->
    let upper = List.fold_left min max_int splittable + 1 in
    let rec search m =
      if m <= 2 then 2
      else if List.for_all (expressible ~m) splittable then m
      else search (m - 1)
    in
    search upper

(* Chunk sizes for one count: k1 of m-1, k2 of m, k3 of m+1. *)
let decompose ~m n =
  if n = 1 then [ 1 ]
  else begin
    let c = (n + m) / (m + 1) in
    let c = if c * (m - 1) > n then c + 1 else c in
    assert (c * (m - 1) <= n && n <= c * (m + 1));
    let diff = n - (c * m) in
    let k1, k2, k3 =
      if diff >= 0 then 0, c - diff, diff else -diff, c + diff, 0
    in
    List.concat
      [ List.init k1 (fun _ -> m - 1);
        List.init k2 (fun _ -> m);
        List.init k3 (fun _ -> m + 1) ]
  end

(* Map the histogram's values onto the number line: numerically when
   every value parses as a number, by lexicographic rank otherwise (the
   client keeps the rank mapping — it is this catalog). *)
let numeric_positions histogram =
  let numeric =
    List.filter_map
      (fun (v, n) ->
        Option.map (fun num -> v, num, n) (float_of_string_opt v))
      histogram
  in
  if List.length numeric = List.length histogram then
    List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) numeric
  else
    List.sort (fun (a, _) (b, _) -> String.compare a b) histogram
    |> List.mapi (fun i (v, n) -> v, float_of_int i, n)

let build ~key ~attr_id ~tag histogram =
  if attr_id < 0 || attr_id > 126 then
    invalid_arg "Opess.build: attr_id must be in [0, 126]";
  let positioned = numeric_positions histogram in
  let counts = List.map (fun (_, _, n) -> n) positioned in
  let m = choose_m counts in
  let decompositions = List.map (fun n -> decompose ~m n) counts in
  let num_keys =
    List.fold_left (fun acc d -> max acc (List.length d)) 1 decompositions
  in
  (* Split weights w_1..w_K in (1/(2(K+1)), 1/(K+1)), sorted ascending;
     prefix sums stay below K/(K+1) < 1 so chunk j of v_i never reaches
     v_i + delta_i: the paper's no-straddling condition. *)
  let weights =
    Array.init num_keys (fun i ->
        let kf = float_of_int (num_keys + 1) in
        Crypto.Hmac.prf_float_in ~key (Printf.sprintf "split-w\x00%d" i)
          (1.0 /. (2.0 *. kf))
          (1.0 /. kf))
  in
  Array.sort Float.compare weights;
  let prefix = Array.make (num_keys + 1) 0.0 in
  for i = 1 to num_keys do
    prefix.(i) <- prefix.(i - 1) +. weights.(i - 1)
  done;
  (* Per-value gap to the successor; the last value reuses the maximum
     gap (any positive bound works — nothing sits above it). *)
  let positions = Array.of_list (List.map (fun (_, num, _) -> num) positioned) in
  let k = Array.length positions in
  let max_gap =
    let g = ref 1.0 in
    for i = 0 to k - 2 do
      g := Float.max !g (positions.(i + 1) -. positions.(i))
    done;
    !g
  in
  let delta i = if i < k - 1 then positions.(i + 1) -. positions.(i) else max_gap in
  (* Collect displaced reals, then fix a global monotone real->int map. *)
  let displaced =
    List.mapi
      (fun i (_, num, _) ->
        let d = delta i in
        List.mapi (fun j _size -> num +. (prefix.(j + 1) *. d)) (List.nth decompositions i))
      positioned
  in
  let lo = if k = 0 then 0.0 else positions.(0) in
  let hi =
    List.fold_left (List.fold_left Float.max) (lo +. 1.0) displaced
  in
  let domain_bits = 40 in
  let fixscale = (Int64.to_float (Int64.shift_left 1L domain_bits) -. 2.0) /. (hi -. lo) in
  let to_domain x =
    let mapped = Int64.of_float (Float.round ((x -. lo) *. fixscale)) in
    assert (mapped >= 0L);
    mapped
  in
  let ope = Crypto.Ope.create ~key:(Crypto.Sha256.digest (key ^ "\x00ope")) ~domain_bits in
  let scale_of value = 1 + Crypto.Hmac.prf_int ~key ("scale\x00" ^ value) 10 in
  let entries =
    List.map2
      (fun (value, numeric, count) (sizes, reals) ->
        let chunks =
          List.map2
            (fun size real ->
              { cipher = namespace ~attr_id (Crypto.Ope.encrypt ope (to_domain real));
                occurrences = size })
            sizes reals
        in
        (* OPE is monotone, so chunks come out sorted; check anyway. *)
        let rec sorted = function
          | a :: (b :: _ as rest) -> a.cipher < b.cipher && sorted rest
          | [ _ ] | [] -> true
        in
        assert (sorted chunks);
        { value; numeric; count; chunks; scale = scale_of value })
      positioned
      (List.combine decompositions displaced)
  in
  let by_value = Hashtbl.create (List.length entries) in
  List.iter (fun e -> Hashtbl.replace by_value e.value e) entries;
  { tag; attr_id; m; num_keys; entries; by_value }

(* Incremental-update entry point.  [build] is deterministic in
   (key, attr_id, tag, histogram), so patching a catalog whose value
   histogram actually changed is just a rebuild under the SAME attr_id —
   every untouched attribute's namespace (and thus its B-tree entries
   and any cached translations) survives verbatim.  The fast path
   matters for structural edits that move nodes without changing any
   value multiset: the catalog is reused as-is, chunk displacements and
   all. *)
let patch ~key t histogram =
  let current = List.map (fun e -> e.value, e.count) t.entries in
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) histogram in
  if current = sorted then t
  else build ~key ~attr_id:t.attr_id ~tag:t.tag histogram

let of_parts ~tag ~attr_id ~m ~num_keys entries =
  let by_value = Hashtbl.create (List.length entries) in
  List.iter (fun e -> Hashtbl.replace by_value e.value e) entries;
  { tag; attr_id; m; num_keys; entries; by_value }

let occurrence_cipher t ~value ~occurrence =
  match Hashtbl.find_opt t.by_value value with
  | None -> raise Not_found
  | Some entry ->
    let rec pick skipped = function
      | [] -> raise Not_found
      | c :: rest ->
        if occurrence < skipped + c.occurrences then c.cipher
        else pick (skipped + c.occurrences) rest
    in
    pick 0 entry.chunks

(* First and last ciphertext of an entry's chunk list (chunks are built
   sorted ascending).  [None] only for a chunkless entry, which [build]
   never produces but [of_parts] cannot rule out. *)
let chunk_span entry =
  match entry.chunks with
  | [] -> None
  | first :: rest ->
    let last = List.fold_left (fun _ c -> c) first rest in
    Some (first.cipher, last.cipher)

(* Span of a run of entries in catalog order: the first non-empty
   entry's low cipher to the last non-empty entry's high cipher. *)
let entries_span entries =
  List.fold_left
    (fun acc entry ->
      match chunk_span entry, acc with
      | None, acc -> acc
      | Some span, None -> Some span
      | Some (_, hi), Some (lo, _) -> Some (lo, hi))
    None entries

let translate t op literal =
  let qualifies entry = Xpath.Eval.compare_values entry.value op literal in
  (* Entries are sorted by numeric position; qualifying entries form
     runs, each becoming one ciphertext range. *)
  let rec runs acc current = function
    | [] -> List.rev (match current with None -> acc | Some r -> r :: acc)
    | entry :: rest ->
      if qualifies entry then
        let current =
          match current with
          | None -> Some (entry, entry)
          | Some (first, _) -> Some (first, entry)
        in
        runs acc current rest
      else
        let acc = match current with None -> acc | Some r -> r :: acc in
        runs acc None rest
  in
  let to_range (first, last) = entries_span [ first; last ] in
  List.filter_map to_range (runs [] None t.entries)

let full_range t = entries_span t.entries

let ciphertext_histogram t =
  List.concat_map
    (fun e -> List.map (fun c -> c.cipher, c.occurrences) e.chunks)
    t.entries

let scaled_histogram t =
  List.concat_map
    (fun e -> List.map (fun c -> c.cipher, c.occurrences * e.scale) e.chunks)
    t.entries
