module Doc = Xmlcore.Doc
module Interval = Dsi.Interval

exception Corrupt of string

(* Format v2: magic, a 64-bit body length (so torn writes are
   distinguishable from tampering before any MAC check), the body, and
   an HMAC-SHA-256 trailer over everything before it. *)
let magic = "SXQHOST2"
let header_len = String.length magic + 8
let mac_len = 32

(* Primitive codecs live in Codec; readers raise Codec.Error, mapped
   to Corrupt at this module's boundary. *)
module W = Codec.W

module R = struct
  include Codec.R
end

(* ------------------------------------------------------------------ *)
(* Section codecs                                                      *)

let w_interval b (iv : Interval.t) =
  W.float b iv.Interval.lo;
  W.float b iv.Interval.hi

let r_interval r =
  let lo = R.float r in
  let hi = R.float r in
  (try Interval.make lo hi with Invalid_argument m -> raise (Corrupt m))

let w_block b (blk : Encrypt.block) =
  W.int b blk.Encrypt.id;
  W.int b blk.Encrypt.root;
  W.string b blk.Encrypt.ciphertext;
  W.int b blk.Encrypt.plaintext_bytes;
  W.int b blk.Encrypt.node_count;
  W.bool b blk.Encrypt.has_decoy;
  W.int b blk.Encrypt.generation

let r_block r =
  let id = R.int r in
  let root = R.int r in
  let ciphertext = R.string r in
  let plaintext_bytes = R.int r in
  let node_count = R.int r in
  let has_decoy = R.bool r in
  let generation = R.int r in
  { Encrypt.id; root; ciphertext; plaintext_bytes; node_count; has_decoy;
    generation }

let w_target b = function
  | Metadata.To_block id ->
    W.bool b true;
    W.int b id
  | Metadata.To_plain iv ->
    W.bool b false;
    w_interval b iv

let r_target r =
  if R.bool r then Metadata.To_block (R.int r) else Metadata.To_plain (r_interval r)

let w_chunk b (c : Opess.chunk) =
  W.i64 b c.Opess.cipher;
  W.int b c.Opess.occurrences

let r_chunk r =
  let cipher = R.i64 r in
  let occurrences = R.int r in
  { Opess.cipher; occurrences }

let w_entry b (e : Opess.value_entry) =
  W.string b e.Opess.value;
  W.float b e.Opess.numeric;
  W.int b e.Opess.count;
  W.list b w_chunk e.Opess.chunks;
  W.int b e.Opess.scale

let r_entry r =
  let value = R.string r in
  let numeric = R.float r in
  let count = R.int r in
  let chunks = R.list r r_chunk in
  let scale = R.int r in
  { Opess.value; numeric; count; chunks; scale }

let w_catalog b (tag, cat) =
  W.string b tag;
  W.int b (Opess.attr_id cat);
  W.int b (Opess.chunk_parameter cat);
  W.int b (Opess.key_count cat);
  W.list b w_entry (Opess.entries cat)

let r_catalog r =
  let tag = R.string r in
  let attr_id = R.int r in
  let m = R.int r in
  let num_keys = R.int r in
  let entries = R.list r r_entry in
  tag, Opess.of_parts ~tag ~attr_id ~m ~num_keys entries

let kind_to_int = function
  | Scheme.Opt -> 0
  | Scheme.App -> 1
  | Scheme.Sub -> 2
  | Scheme.Top -> 3

let kind_of_int = function
  | 0 -> Scheme.Opt
  | 1 -> Scheme.App
  | 2 -> Scheme.Sub
  | 3 -> Scheme.Top
  | n -> raise (Corrupt (Printf.sprintf "unknown scheme kind %d" n))

(* ------------------------------------------------------------------ *)
(* Whole-bundle codec                                                  *)

(* The body is a sequence of named sections; writer and reader walk the
   same list of names so verify can localise a failure (and a tear) to
   one section. *)
let encode_body ?(applied_seq = 0) system =
  let b = Buffer.create 65_536 in
  let sections = ref [] in
  let mark name = sections := (name, Buffer.length b) :: !sections in
  let doc = System.doc system in
  let scheme = System.scheme system in
  let db = System.db system in
  let meta = System.metadata system in
  W.string b (Crypto.Cipher.suite_to_string (System.cipher system));
  mark "cipher-suite";
  W.string b (Xmlcore.Printer.doc_to_string doc);
  mark "document";
  W.list b (fun b sc -> W.string b (Sc.to_string sc)) (System.constraints system);
  mark "constraints";
  W.int b (kind_to_int scheme.Scheme.kind);
  W.list b W.int scheme.Scheme.block_roots;
  W.list b W.string scheme.Scheme.covered_tags;
  mark "scheme";
  W.list b w_block db.Encrypt.blocks;
  mark "blocks";
  W.string b (Xmlcore.Printer.tree_to_string db.Encrypt.skeleton);
  mark "skeleton";
  W.list b W.string db.Encrypt.encrypted_tags;
  W.list b W.string db.Encrypt.plaintext_tags;
  mark "tag-partition";
  W.list b
    (fun b (key, ivs) ->
      W.string b key;
      W.list b w_interval ivs)
    meta.Metadata.dsi_table;
  mark "dsi-table";
  W.list b
    (fun b (id, iv) ->
      W.int b id;
      w_interval b iv)
    meta.Metadata.block_table;
  mark "block-table";
  let entries = ref [] in
  Btree.iter meta.Metadata.btree (fun k v -> entries := (k, v) :: !entries);
  W.list b
    (fun b (k, v) ->
      W.i64 b k;
      w_target b v)
    (List.rev !entries);
  mark "value-btree";
  W.list b w_catalog meta.Metadata.catalogs;
  mark "opess-catalogs";
  W.list b W.string meta.Metadata.indexed_tags;
  mark "indexed-tags";
  (* Stored, not recomputed: incremental deltas patch intervals in
     place (gap draws for inserted subtrees), so the hosted assignment
     is no longer a pure function of the master key. *)
  W.list b w_interval
    (Array.to_list (Dsi.Assign.intervals meta.Metadata.assignment));
  mark "dsi-assignment";
  (* Sequence number of the last delta-log record folded into this
     bundle; replay skips records at or below it. *)
  W.int b applied_seq;
  mark "applied-seq";
  Buffer.contents b, List.rev !sections

let section_offsets system =
  let _, sections = encode_body system in
  List.map (fun (name, off) -> name, header_len + off) sections

let mac_key master =
  Crypto.Keys.derive (Crypto.Keys.create ~master ()) "persist-mac"

let to_string ?applied_seq system =
  let body, _ = encode_body ?applied_seq system in
  let master = System.master system in
  let b = Buffer.create (header_len + String.length body + mac_len) in
  Buffer.add_string b magic;
  W.i64 b (Int64.of_int (String.length body));
  Buffer.add_string b body;
  let prefix = Buffer.contents b in
  prefix ^ Crypto.Hmac.mac ~key:(mac_key master) prefix

(* --- Staged body reader -------------------------------------------- *)

(* Decoded parts accumulate here; [stages] lists (name, thunk) in body
   order.  of_string runs every stage and then assembles; verify runs
   them one at a time, catching per-stage failures. *)
type partial = {
  mutable p_cipher : Crypto.Cipher.suite option;
  mutable p_doc : Doc.t option;
  mutable p_constraints : Sc.t list;
  mutable p_kind : Scheme.kind option;
  mutable p_block_roots : int list;
  mutable p_covered_tags : string list;
  mutable p_blocks : Encrypt.block list;
  mutable p_skeleton : Xmlcore.Tree.t option;
  mutable p_encrypted_tags : string list;
  mutable p_plaintext_tags : string list;
  mutable p_dsi_table : (string * Interval.t list) list;
  mutable p_block_table : (int * Interval.t) list;
  mutable p_btree_entries : (int64 * Metadata.target) list;
  mutable p_catalogs : (string * Opess.t) list;
  mutable p_indexed_tags : string list;
  mutable p_assignment : Interval.t list;
  mutable p_applied_seq : int;
}

let fresh_partial () =
  { p_cipher = None; p_doc = None; p_constraints = []; p_kind = None;
    p_block_roots = []; p_covered_tags = []; p_blocks = []; p_skeleton = None;
    p_encrypted_tags = []; p_plaintext_tags = []; p_dsi_table = [];
    p_block_table = []; p_btree_entries = []; p_catalogs = []; p_indexed_tags = [];
    p_assignment = []; p_applied_seq = 0 }

let parse_or_corrupt what f x =
  try f x with
  | Corrupt _ as e -> raise e
  | Xmlcore.Parser.Parse_error _ | Xpath.Parser.Parse_error _
  | Invalid_argument _ ->
    raise (Corrupt ("malformed " ^ what))

let stages r p =
  [ ( "cipher-suite",
      fun () ->
        match Crypto.Cipher.suite_of_string (R.string r) with
        | Some s -> p.p_cipher <- Some s
        | None -> raise (Corrupt "unknown cipher suite") );
    ( "document",
      fun () ->
        p.p_doc <-
          Some (parse_or_corrupt "document" Xmlcore.Parser.parse_doc (R.string r)) );
    ( "constraints",
      fun () ->
        p.p_constraints <-
          List.map (parse_or_corrupt "constraint" Sc.parse) (R.list r R.string) );
    ( "scheme",
      fun () ->
        p.p_kind <- Some (kind_of_int (R.int r));
        p.p_block_roots <- R.list r R.int;
        p.p_covered_tags <- R.list r R.string );
    ("blocks", fun () -> p.p_blocks <- R.list r r_block);
    ( "skeleton",
      fun () ->
        p.p_skeleton <-
          Some (parse_or_corrupt "skeleton" Xmlcore.Parser.parse (R.string r)) );
    ( "tag-partition",
      fun () ->
        p.p_encrypted_tags <- R.list r R.string;
        p.p_plaintext_tags <- R.list r R.string );
    ( "dsi-table",
      fun () ->
        p.p_dsi_table <-
          R.list r (fun r ->
              let key = R.string r in
              let ivs = R.list r r_interval in
              key, ivs) );
    ( "block-table",
      fun () ->
        p.p_block_table <-
          R.list r (fun r ->
              let id = R.int r in
              let iv = r_interval r in
              id, iv) );
    ( "value-btree",
      fun () ->
        p.p_btree_entries <-
          R.list r (fun r ->
              let k = R.i64 r in
              let v = r_target r in
              k, v) );
    ("opess-catalogs", fun () -> p.p_catalogs <- R.list r r_catalog);
    ("indexed-tags", fun () -> p.p_indexed_tags <- R.list r R.string);
    ("dsi-assignment", fun () -> p.p_assignment <- R.list r r_interval);
    ("applied-seq", fun () -> p.p_applied_seq <- R.int r) ]

(* --- Header / framing checks --------------------------------------- *)

type framing =
  | F_ok of string  (* the body *)
  | F_torn of { expected_bytes : int; actual_bytes : int }
  | F_tampered
  | F_malformed of string

(* [check_mac = false] lets verify inspect sections of a torn file. *)
let check_framing ~master data =
  let n = String.length data in
  let magic_len = String.length magic in
  if n < magic_len then begin
    if String.equal data (String.sub magic 0 n) then
      F_torn { expected_bytes = header_len + mac_len; actual_bytes = n }
    else F_malformed "bad magic"
  end
  else if String.sub data 0 magic_len <> magic then F_malformed "bad magic"
  else if n < header_len then
    F_torn { expected_bytes = header_len + mac_len; actual_bytes = n }
  else begin
    let body_len =
      let r = R.make data magic_len in
      R.i64 r
    in
    if Int64.compare body_len 0L < 0
       || Int64.compare body_len 0x40_0000_0000L > 0 then
      F_malformed "implausible body length"
    else begin
      let body_len = Int64.to_int body_len in
      let expected = header_len + body_len + mac_len in
      if n < expected then F_torn { expected_bytes = expected; actual_bytes = n }
      else if n > expected then F_malformed "trailing bytes"
      else begin
        let prefix = String.sub data 0 (header_len + body_len) in
        let mac = String.sub data (header_len + body_len) mac_len in
        if Crypto.Eq.constant_time (Crypto.Hmac.mac ~key:(mac_key master) prefix) mac
        then
          F_ok (String.sub data header_len body_len)
        else F_tampered
      end
    end
  end

(* --- Full decode --------------------------------------------------- *)

let rec of_string_seq ~master data =
  try of_string_exn ~master data with Codec.Error m -> raise (Corrupt m)

and of_string_exn ~master data =
  let body =
    match check_framing ~master data with
    | F_ok body -> body
    | F_torn { expected_bytes; actual_bytes } ->
      raise
        (Corrupt
           (Printf.sprintf "torn write: expected %d bytes, got %d" expected_bytes
              actual_bytes))
    | F_tampered ->
      raise (Corrupt "MAC check failed (tampered file or wrong master secret)")
    | F_malformed m -> raise (Corrupt m)
  in
  let r = R.make body 0 in
  let p = fresh_partial () in
  List.iter (fun (_, stage) -> stage ()) (stages r p);
  if not (R.at_end r) then raise (Corrupt "trailing bytes");
  let get what = function Some v -> v | None -> raise (Corrupt ("missing " ^ what)) in
  let cipher = get "cipher" p.p_cipher in
  let doc = get "document" p.p_doc in
  let scheme =
    { Scheme.kind = get "scheme kind" p.p_kind;
      block_roots = p.p_block_roots;
      covered_tags = p.p_covered_tags }
  in
  let db =
    Encrypt.make_db ~doc ~scheme ~blocks:p.p_blocks
      ~skeleton:(get "skeleton" p.p_skeleton)
      ~encrypted_tags:p.p_encrypted_tags ~plaintext_tags:p.p_plaintext_tags
  in
  let btree = Btree.create ~min_degree:16 () in
  List.iter (fun (k, v) -> Btree.insert btree k v) p.p_btree_entries;
  (* Use the stored assignment: after an incremental delta it contains
     gap-drawn intervals no key can recompute. *)
  let assignment =
    try Dsi.Assign.of_intervals doc (Array.of_list p.p_assignment)
    with Invalid_argument m -> raise (Corrupt m)
  in
  let metadata =
    { Metadata.assignment;
      dsi_table = p.p_dsi_table;
      block_table = p.p_block_table;
      btree;
      catalogs = p.p_catalogs;
      indexed_tags = p.p_indexed_tags }
  in
  ( System.restore ~master ~cipher ~doc ~constraints:p.p_constraints ~scheme ~db
      ~metadata (),
    p.p_applied_seq )

let of_string ~master data = fst (of_string_seq ~master data)

(* --- Verification (fsck) ------------------------------------------- *)

type verdict =
  | Intact
  | Torn of { expected_bytes : int; actual_bytes : int }
  | Tampered
  | Malformed of string

type section_status = Section_ok | Section_failed of string | Section_unreached

type report = {
  file_bytes : int;
  verdict : verdict;
  sections : (string * section_status) list;
  blocks_total : int;
  blocks_bad : (int * string) list;
}

let verdict_to_string = function
  | Intact -> "intact"
  | Torn { expected_bytes; actual_bytes } ->
    Printf.sprintf "torn write (expected %d bytes, got %d)" expected_bytes
      actual_bytes
  | Tampered -> "tampered (MAC mismatch or wrong master secret)"
  | Malformed m -> "malformed: " ^ m

let verify ~master data =
  let framing = check_framing ~master data in
  (* Section walk: even a torn or tampered body is worth parsing as far
     as it goes, to localise the damage.  The body slice is whatever is
     actually present past the header. *)
  let body =
    match framing with
    | F_ok body -> Some body
    | F_torn _ when String.length data > header_len ->
      Some (String.sub data header_len (String.length data - header_len))
    | F_torn _ | F_tampered | F_malformed _ ->
      if String.length data > header_len + mac_len then
        (* Tampered/malformed files still frame a body-sized slice when
           the declared length is usable; fall back to everything after
           the header minus a MAC-sized tail. *)
        Some (String.sub data header_len (String.length data - header_len - mac_len))
      else None
  in
  let sections_report, blocks, suite =
    match body with
    | None ->
      ( List.map
          (fun n -> n, Section_unreached)
          [ "cipher-suite"; "document"; "constraints"; "scheme"; "blocks";
            "skeleton"; "tag-partition"; "dsi-table"; "block-table";
            "value-btree"; "opess-catalogs"; "indexed-tags"; "dsi-assignment";
            "applied-seq" ],
        [],
        None )
    | Some body ->
      let r = R.make body 0 in
      let p = fresh_partial () in
      let failed = ref false in
      let statuses =
        List.map
          (fun (name, stage) ->
            if !failed then name, Section_unreached
            else
              match stage () with
              | () -> name, Section_ok
              | exception Codec.Error m ->
                failed := true;
                name, Section_failed m
              | exception Corrupt m ->
                failed := true;
                name, Section_failed m)
          (stages r p)
      in
      let statuses =
        if (not !failed) && not (R.at_end r) then
          statuses @ [ "trailer", Section_failed "trailing bytes" ]
        else statuses
      in
      statuses, p.p_blocks, p.p_cipher
  in
  (* Per-block decryptability, under the declared cipher suite when the
     cipher-suite section survived (XTEA otherwise). *)
  let blocks_bad =
    match blocks with
    | [] -> []
    | blocks ->
      let suite = Option.value ~default:Crypto.Cipher.Xtea suite in
      let keys = Crypto.Keys.create ~suite ~master () in
      List.filter_map
        (fun (b : Encrypt.block) ->
          match Encrypt.decrypt_block ~keys b with
          | (_ : Xmlcore.Tree.t) -> None
          | exception Encrypt.Tampered id ->
            Some (id, "authentication tag mismatch")
          | exception _ -> Some (b.Encrypt.id, "undecryptable"))
        blocks
  in
  let verdict =
    match framing with
    | F_ok _ ->
      let section_failure =
        List.find_map
          (function name, Section_failed m -> Some (name ^ ": " ^ m) | _ -> None)
          sections_report
      in
      (match section_failure with
       | Some m -> Malformed m
       | None when blocks_bad <> [] ->
         Malformed (Printf.sprintf "%d undecryptable block(s)" (List.length blocks_bad))
       | None -> Intact)
    | F_torn { expected_bytes; actual_bytes } -> Torn { expected_bytes; actual_bytes }
    | F_tampered -> Tampered
    | F_malformed m -> Malformed m
  in
  { file_bytes = String.length data;
    verdict;
    sections = sections_report;
    blocks_total = List.length blocks;
    blocks_bad }

(* --- File I/O ------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Crash-safe: write to a temporary sibling, fsync, then atomically
   rename over the destination.  A crash at any byte offset leaves
   either the complete old bundle or the complete new one at [path];
   the worst survivor is a torn [path ^ ".tmp"], which {!verify}
   identifies as such. *)
let save ?applied_seq system path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (to_string ?applied_seq system);
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let load ~master path = of_string ~master (read_file path)
let load_seq ~master path = of_string_seq ~master (read_file path)
let verify_file ~master path = verify ~master (read_file path)

(* ------------------------------------------------------------------ *)
(* Append-only delta log                                               *)

(* The log rides next to its bundle as [path ^ ".log"]: a magic header
   followed by self-framed records, each [i64 payload length | payload
   | HMAC-SHA-256 over length+payload].  Appends are flushed and
   fsynced whole, so a crash can only truncate the file — a {e torn}
   tail (recoverable: the records before it are intact and the tail is
   dropped) — while any bit flip inside a complete record fails its MAC
   — {e tampered} (hard error).  Records are never rewritten; the log
   shrinks only by compaction, which folds its effects into a freshly
   saved bundle (stamped with the last applied sequence number) and
   removes the log in one step. *)

let log_magic = "SXQDLOG1"
let log_path path = path ^ ".log"

let log_mac_key master =
  Crypto.Keys.derive (Crypto.Keys.create ~master ()) "persist-log-mac"

let digest_key master =
  Crypto.Keys.derive (Crypto.Keys.create ~master ()) "persist-doc-digest"

(* Keyed digest of the plaintext document after an edit: replay
   validates each applied record against it, so a divergence (wrong
   master, reordered records, a drifted incremental path) is caught
   before the recovered system is ever served. *)
let doc_digest ~master doc =
  Crypto.Hmac.mac ~key:(digest_key master) (Xmlcore.Printer.doc_to_string doc)

type log_record = { seq : int; edit : Update.edit; digest : string }

let w_edit b = function
  | Update.Insert_child { parent; position; subtree } ->
    W.int b 0;
    W.string b (Xpath.Ast.to_string parent);
    (* apply clamps negatives to 0; normalise here so the codec's
       non-negative ints suffice *)
    W.int b (Int.max 0 position);
    W.string b (Xmlcore.Printer.tree_to_string subtree)
  | Update.Delete_nodes path ->
    W.int b 1;
    W.string b (Xpath.Ast.to_string path)
  | Update.Set_value (path, value) ->
    W.int b 2;
    W.string b (Xpath.Ast.to_string path);
    W.string b value

let r_edit r =
  match R.int r with
  | 0 ->
    let parent = parse_or_corrupt "edit path" Xpath.Parser.parse (R.string r) in
    let position = R.int r in
    let subtree =
      parse_or_corrupt "edit subtree" Xmlcore.Parser.parse (R.string r)
    in
    Update.Insert_child { parent; position; subtree }
  | 1 ->
    Update.Delete_nodes
      (parse_or_corrupt "edit path" Xpath.Parser.parse (R.string r))
  | 2 ->
    let path = parse_or_corrupt "edit path" Xpath.Parser.parse (R.string r) in
    let value = R.string r in
    Update.Set_value (path, value)
  | n -> raise (Corrupt (Printf.sprintf "unknown edit kind %d" n))

let encode_record ~master record =
  let payload =
    let b = Buffer.create 256 in
    W.int b record.seq;
    w_edit b record.edit;
    W.string b record.digest;
    Buffer.contents b
  in
  let framed =
    let b = Buffer.create (String.length payload + 8) in
    W.i64 b (Int64.of_int (String.length payload));
    Buffer.add_string b payload;
    Buffer.contents b
  in
  framed ^ Crypto.Hmac.mac ~key:(log_mac_key master) framed

type log_tail =
  | Log_clean
  | Log_torn of { clean_bytes : int; dropped_bytes : int }

type log_scan = {
  scan_records : log_record list;
  scan_tail : log_tail;
  scan_fatal : (int * string) option;
}

(* Walk the log front to back.  Classification rule: a frame the file
   cannot contain in full is torn (our writer appends whole records, so
   truncation is the only way to lose a suffix); a complete frame whose
   MAC or payload decoding fails is tampering.  A flipped length field
   in the last record can masquerade as a tear — conservative in the
   right direction, since torn recovery drops exactly those bytes. *)
let scan_log ~master data =
  let n = String.length data in
  let mlen = String.length log_magic in
  let fatal idx m = { scan_records = []; scan_tail = Log_clean; scan_fatal = Some (idx, m) } in
  if n < mlen then
    if String.equal data (String.sub log_magic 0 n) then
      { scan_records = [];
        scan_tail = Log_torn { clean_bytes = 0; dropped_bytes = n };
        scan_fatal = None }
    else fatal 0 "bad log magic"
  else if String.sub data 0 mlen <> log_magic then fatal 0 "bad log magic"
  else begin
    let key = log_mac_key master in
    let rec go acc idx off =
      let torn () =
        { scan_records = List.rev acc;
          scan_tail = Log_torn { clean_bytes = off; dropped_bytes = n - off };
          scan_fatal = None }
      in
      let fatal m =
        { scan_records = List.rev acc; scan_tail = Log_clean;
          scan_fatal = Some (idx, m) }
      in
      if off = n then
        { scan_records = List.rev acc; scan_tail = Log_clean; scan_fatal = None }
      else if n - off < 8 then torn ()
      else begin
        let len = Int64.to_int (R.i64 (R.make data off)) in
        if len < 0 then fatal "implausible record length"
        else if n - off < 8 + len + mac_len then torn ()
        else begin
          let framed = String.sub data off (8 + len) in
          let mac = String.sub data (off + 8 + len) mac_len in
          if not (Crypto.Eq.constant_time mac (Crypto.Hmac.mac ~key framed))
          then fatal "record MAC mismatch"
          else
            match
              let r = R.make framed 8 in
              let seq = R.int r in
              let edit = r_edit r in
              let digest = R.string r in
              if not (R.at_end r) then
                raise (Corrupt "trailing bytes in record");
              { seq; edit; digest }
            with
            | record -> go (record :: acc) (idx + 1) (off + 8 + len + mac_len)
            | exception Corrupt m -> fatal m
            | exception Codec.Error m -> fatal m
        end
      end
    in
    go [] 0 mlen
  end

let read_log ~master data =
  let s = scan_log ~master data in
  (match s.scan_fatal with
   | Some (idx, m) ->
     raise (Corrupt (Printf.sprintf "delta log record %d: %s" idx m))
   | None -> ());
  s.scan_records, s.scan_tail

(* Append one record: create-with-magic on first use, then a single
   buffered write flushed and fsynced before returning.  No rename
   dance — the append-only discipline makes truncation the only crash
   artifact, and the scanner recovers from that. *)
let append_record ~master path record =
  let lp = log_path path in
  (* A log truncated all the way to zero bytes (tear inside the magic)
     must be re-seeded with the magic, so "fresh" means empty, not
     merely absent. *)
  let fresh =
    (not (Sys.file_exists lp)) || (Unix.stat lp).Unix.st_size = 0
  in
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 lp
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      if fresh then output_string oc log_magic;
      output_string oc (encode_record ~master record);
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc))

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd len;
      Unix.fsync fd)

(* In-memory replay of pending records over a restored system.  All
   validation happens before the caller sees the result, so recovery
   never serves a half-applied delta: a gap, divergent digest or
   incremental failure raises and leaves the on-disk state untouched. *)
let replay ~master system applied_seq records =
  let system, _ =
    List.fold_left
      (fun (system, expected) record ->
        if record.seq <> expected then
          raise
            (Corrupt
               (Printf.sprintf "delta log gap: expected seq %d, found %d"
                  expected record.seq));
        let next, (_ : System.delta_cost) = System.apply_delta system record.edit in
        if
          not
            (Crypto.Eq.constant_time
               (doc_digest ~master (System.doc next))
               record.digest)
        then
          raise
            (Corrupt
               (Printf.sprintf "delta log replay diverged at seq %d" record.seq));
        next, expected + 1)
      (system, applied_seq + 1) records
  in
  system

(* --- Journal: bundle + log as one recoverable unit ----------------- *)

type journal = {
  mutable j_system : System.t;
  mutable j_seq : int;
  j_path : string;
  j_master : string;
  j_threshold : int;
}

let journal_system j = j.j_system
let journal_seq j = j.j_seq

let journal_open ?(compact_threshold = 1 lsl 20) ~master path =
  let system, applied = load_seq ~master path in
  let lp = log_path path in
  let system, seq =
    if not (Sys.file_exists lp) then system, applied
    else begin
      let records, tail = read_log ~master (read_file lp) in
      (match tail with
       | Log_clean -> ()
       | Log_torn { clean_bytes; dropped_bytes = _ } ->
         (* Drop the torn tail on disk so subsequent appends extend a
            clean log instead of burying garbage mid-file. *)
         truncate_file lp clean_bytes);
      let pending = List.filter (fun r -> r.seq > applied) records in
      let system = replay ~master system applied pending in
      let seq =
        match List.rev pending with [] -> applied | last :: _ -> last.seq
      in
      system, seq
    end
  in
  { j_system = system; j_seq = seq; j_path = path; j_master = master;
    j_threshold = compact_threshold }

let journal_compact j =
  save ~applied_seq:j.j_seq j.j_system j.j_path;
  let lp = log_path j.j_path in
  if Sys.file_exists lp then Sys.remove lp

let journal_update j edit =
  let next, cost = System.apply_delta j.j_system edit in
  j.j_system <- next;
  j.j_seq <- j.j_seq + 1;
  append_record ~master:j.j_master j.j_path
    { seq = j.j_seq; edit;
      digest = doc_digest ~master:j.j_master (System.doc next) };
  let lp = log_path j.j_path in
  if Sys.file_exists lp && (Unix.stat lp).Unix.st_size > j.j_threshold then
    journal_compact j;
  cost

(* --- Log fsck ------------------------------------------------------ *)

type log_fsck = {
  log_bytes : int;
  log_records : int;
  log_pending : int;
  log_dropped_bytes : int;
  log_fatal : string option;
  log_replay : string option;
}

let fsck_log ~master path =
  let lp = log_path path in
  if not (Sys.file_exists lp) then None
  else begin
    let data = read_file lp in
    let s = scan_log ~master data in
    let dropped =
      match s.scan_tail with
      | Log_clean -> 0
      | Log_torn { dropped_bytes; _ } -> dropped_bytes
    in
    let fatal =
      Option.map
        (fun (idx, m) -> Printf.sprintf "record %d: %s" idx m)
        s.scan_fatal
    in
    let pending, replay_err =
      match fatal with
      | Some _ -> 0, None
      | None ->
        (match load_seq ~master path with
         | exception _ ->
           (* Bundle itself unusable: the bundle verdict carries that
              story; replay is simply not attempted. *)
           List.length s.scan_records, None
         | system, applied ->
           let pending = List.filter (fun r -> r.seq > applied) s.scan_records in
           (match replay ~master system applied pending with
            | (_ : System.t) -> List.length pending, None
            | exception Corrupt m -> List.length pending, Some m
            | exception e -> List.length pending, Some (Printexc.to_string e)))
    in
    Some
      { log_bytes = String.length data;
        log_records = List.length s.scan_records;
        log_pending = pending;
        log_dropped_bytes = dropped;
        log_fatal = fatal;
        log_replay = replay_err }
  end
