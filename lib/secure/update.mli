(** Document updates (the paper's future-work item 3).

    Edits address nodes through XPath and rebuild the plaintext tree;
    {!System.update} then re-hosts the edited document under the same
    master key and security constraints (the {e re-host} strategy —
    always secure, because the fresh setup re-derives the scheme and
    re-checks enforcement).

    The DSI layer's contribution to cheaper updates is exposed
    separately as {!Dsi.Assign.interval_in_gap}: the deliberate gaps
    between sibling intervals can absorb inserted subtrees without
    renumbering, which is what an incremental server protocol would
    build on. *)

type edit =
  | Insert_child of {
      parent : Xpath.Ast.path;   (** every binding receives the child *)
      position : int;            (** clamped into [0, child_count] *)
      subtree : Xmlcore.Tree.t;
    }
  | Delete_nodes of Xpath.Ast.path
      (** every binding's subtree is removed *)
  | Set_value of Xpath.Ast.path * string
      (** every binding must be a leaf; its text value is replaced *)

val apply : Xmlcore.Doc.t -> edit -> Xmlcore.Tree.t
(** Apply one edit, returning the new plaintext tree.
    @raise Invalid_argument when the edit is impossible: deleting the
    root, setting the value of a non-leaf, or a path that binds
    nothing. *)

val apply_all : Xmlcore.Doc.t -> edit list -> Xmlcore.Doc.t
(** Fold {!apply} over a batch (re-indexing between edits so later
    paths see earlier edits). *)

val describe : edit -> string
(** One-line rendering of an edit's {e shape} for logs: the path and
    position only — replacement values and inserted subtrees are never
    included. *)
