(** Document updates (the paper's future-work item 3).

    Edits address nodes through XPath and rebuild the plaintext tree;
    {!System.update} then re-hosts the edited document under the same
    master key and security constraints (the {e re-host} strategy —
    always secure, because the fresh setup re-derives the scheme and
    re-checks enforcement).

    The DSI layer's contribution to cheaper updates is exposed
    separately as {!Dsi.Assign.interval_in_gap}: the deliberate gaps
    between sibling intervals can absorb inserted subtrees without
    renumbering, which is what an incremental server protocol would
    build on. *)

type edit =
  | Insert_child of {
      parent : Xpath.Ast.path;   (** every binding receives the child *)
      position : int;            (** clamped into [0, child_count] *)
      subtree : Xmlcore.Tree.t;
    }
  | Delete_nodes of Xpath.Ast.path
      (** every binding's subtree is removed *)
  | Set_value of Xpath.Ast.path * string
      (** every binding must be a leaf; its text value is replaced *)

val apply : Xmlcore.Doc.t -> edit -> Xmlcore.Tree.t
(** Apply one edit, returning the new plaintext tree.
    @raise Invalid_argument when the edit is impossible: deleting the
    root, setting the value of a non-leaf, or a path that binds
    nothing. *)

val apply_all : Xmlcore.Doc.t -> edit list -> Xmlcore.Doc.t
(** Fold {!apply} over a batch (re-indexing between edits so later
    paths see earlier edits). *)

type plan = {
  edit : edit;
  edited : Xmlcore.Doc.t;        (** the post-edit document, re-indexed *)
  new_of_old : int array;        (** old id → new id; [-1] when deleted *)
  old_of_new : int array;        (** new id → old id; [-1] when inserted *)
  inserted_roots : int list;     (** {e new} ids of inserted subtree roots *)
  deleted_roots : int list;      (** {e old} ids of removed subtree roots
                                     (nested bindings are folded into their
                                     outermost deleted ancestor) *)
  changed_values : int list;     (** {e old} ids of leaves whose text changed *)
  structural : bool;             (** whether node ids shifted at all *)
}
(** A planned edit: the edited document together with the exact node
    correspondence that {!apply}'s rebuild induces.  Preorder ids shift
    under structural edits, so every incremental consumer (interval
    copying, DSI table surgery, block re-encryption) routes through
    [new_of_old]/[old_of_new] instead of assuming stable ids. *)

val delta : Xmlcore.Doc.t -> edit -> plan
(** Plan one edit.  Same validation failures as {!apply}
    ([Invalid_argument] on a path binding nothing, deleting the root,
    setting a non-leaf, inserting under a leaf). *)

val tree_node_count : Xmlcore.Tree.t -> int
(** Number of document nodes the tree occupies after
    {!Xmlcore.Doc.of_tree} ([Element (tag, [Text v])] collapses to one
    leaf).
    @raise Invalid_argument on a loose text node. *)

val describe : edit -> string
(** One-line rendering of an edit's {e shape} for logs: the path and
    position only — replacement values and inserted subtrees are never
    included. *)
