exception Dropped

(* Process-wide wire counters; no-ops until Obs.Metric.default is
   enabled.  Per-link accounting stays in the closure-local [stats]. *)
module M = struct
  let reg = Obs.Metric.default
  let exchanges = Obs.Metric.counter reg "transport.exchanges" ~help:"wire exchanges attempted"
  let delivered = Obs.Metric.counter reg "transport.delivered" ~help:"responses delivered intact"
  let bytes_up = Obs.Metric.counter reg "transport.bytes_up" ~help:"request bytes on the wire"
  let bytes_down = Obs.Metric.counter reg "transport.bytes_down" ~help:"response bytes off the wire"
  let dropped = Obs.Metric.counter reg "transport.dropped" ~help:"frames dropped (either direction)"
  let duplicated = Obs.Metric.counter reg "transport.duplicated" ~help:"requests delivered twice"
  let truncated = Obs.Metric.counter reg "transport.truncated" ~help:"frames truncated in flight"
  let flipped = Obs.Metric.counter reg "transport.flipped" ~help:"frames with a flipped bit"
  let reordered = Obs.Metric.counter reg "transport.reordered" ~help:"responses swapped with a stale one"
end

type profile = {
  drop : float;
  duplicate : float;
  truncate : float;
  flip : float;
  reorder : float;
  delay_ms : float * float;
}

let calm =
  { drop = 0.0; duplicate = 0.0; truncate = 0.0; flip = 0.0; reorder = 0.0;
    delay_ms = 0.0, 0.0 }

let chaos ?(drop = 0.0) ?(duplicate = 0.0) ?(truncate = 0.0) ?(flip = 0.0)
    ?(reorder = 0.0) ?(delay_ms = (0.0, 0.0)) () =
  { drop; duplicate; truncate; flip; reorder; delay_ms }

type stats = {
  exchanges : int;
  delivered : int;
  dropped_requests : int;
  dropped_responses : int;
  duplicated : int;
  truncated : int;
  flipped : int;
  reordered : int;
  bytes_up : int;
  bytes_down : int;
  delay_ms : float;
}

let zero_stats =
  { exchanges = 0; delivered = 0; dropped_requests = 0; dropped_responses = 0;
    duplicated = 0; truncated = 0; flipped = 0; reordered = 0; bytes_up = 0;
    bytes_down = 0; delay_ms = 0.0 }

type t = { exchange : string -> string; stats : unit -> stats }

let exchange t msg = t.exchange msg
let stats t = t.stats ()

let loopback handler =
  let s = ref zero_stats in
  let exchange msg =
    s := { !s with exchanges = !s.exchanges + 1;
                   bytes_up = !s.bytes_up + String.length msg };
    Obs.Metric.incr M.exchanges;
    Obs.Metric.add M.bytes_up (String.length msg);
    let resp = handler msg in
    s := { !s with delivered = !s.delivered + 1;
                   bytes_down = !s.bytes_down + String.length resp };
    Obs.Metric.incr M.delivered;
    Obs.Metric.add M.bytes_down (String.length resp);
    resp
  in
  { exchange; stats = (fun () -> !s) }

(* --- Fault injection ----------------------------------------------- *)

type faulty_state = {
  prng : Crypto.Prng.t;
  mutable st : stats;
  (* A response knocked out of order: it was due on an earlier exchange
     and will be delivered (stale) on the next reorder event. *)
  mutable in_flight : string option;
}

let hit f p = p > 0.0 && Crypto.Prng.float f.prng 1.0 < p

(* Mangling never produces the empty string from a non-empty one in a
   way that hides the fault class: truncation keeps a strict prefix,
   flipping touches exactly one bit. *)
let truncate_msg f msg =
  if String.length msg = 0 then msg
  else String.sub msg 0 (Crypto.Prng.int f.prng (String.length msg))

let flip_msg f msg =
  if String.length msg = 0 then msg
  else begin
    let b = Bytes.of_string msg in
    let i = Crypto.Prng.int f.prng (Bytes.length b) in
    let bit = Crypto.Prng.int f.prng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    Bytes.to_string b
  end

(* Per-direction mangling: truncate, then flip, then drop.  Order does
   not matter much — the session layer must absorb any combination. *)
let mangle f profile msg =
  let msg, trunc = if hit f profile.truncate then truncate_msg f msg, 1 else msg, 0 in
  let msg, flips = if hit f profile.flip then flip_msg f msg, 1 else msg, 0 in
  f.st <- { f.st with truncated = f.st.truncated + trunc;
                      flipped = f.st.flipped + flips };
  Obs.Metric.add M.truncated trunc;
  Obs.Metric.add M.flipped flips;
  msg, hit f profile.drop

let faulty ?(profile = calm) ~seed inner =
  let f = { prng = Crypto.Prng.create seed; st = zero_stats; in_flight = None } in
  let exchange msg =
    f.st <- { f.st with exchanges = f.st.exchanges + 1;
                        bytes_up = f.st.bytes_up + String.length msg };
    Obs.Metric.incr M.exchanges;
    Obs.Metric.add M.bytes_up (String.length msg);
    let lo, hi = profile.delay_ms in
    if hi > lo then
      f.st <- { f.st with delay_ms = f.st.delay_ms +. Crypto.Prng.float_in f.prng lo hi };
    (* Uplink. *)
    let msg, dropped_up = mangle f profile msg in
    if dropped_up then begin
      f.st <- { f.st with dropped_requests = f.st.dropped_requests + 1 };
      Obs.Metric.incr M.dropped;
      raise Dropped
    end;
    let deliver () = inner.exchange msg in
    (* Duplicate delivery: the server processes (or replay-caches) the
       request twice; the client hears one answer. *)
    let resp =
      if hit f profile.duplicate then begin
        f.st <- { f.st with duplicated = f.st.duplicated + 1 };
        Obs.Metric.incr M.duplicated;
        (match deliver () with
         | (_ : string) -> ()
         | exception Dropped -> ());
        deliver ()
      end
      else deliver ()
    in
    (* Downlink. *)
    let resp, dropped_down = mangle f profile resp in
    if dropped_down then begin
      f.st <- { f.st with dropped_responses = f.st.dropped_responses + 1 };
      Obs.Metric.incr M.dropped;
      raise Dropped
    end;
    (* Reordering: swap with a response still in flight.  The first
       reorder event stashes the fresh response (the caller times out);
       later ones deliver the stale stash instead. *)
    let resp =
      if hit f profile.reorder then begin
        f.st <- { f.st with reordered = f.st.reordered + 1 };
        Obs.Metric.incr M.reordered;
        match f.in_flight with
        | Some stale ->
          f.in_flight <- Some resp;
          stale
        | None ->
          f.in_flight <- Some resp;
          f.st <- { f.st with dropped_responses = f.st.dropped_responses + 1 };
          Obs.Metric.incr M.dropped;
          raise Dropped
      end
      else resp
    in
    f.st <- { f.st with delivered = f.st.delivered + 1;
                        bytes_down = f.st.bytes_down + String.length resp };
    Obs.Metric.incr M.delivered;
    Obs.Metric.add M.bytes_down (String.length resp);
    resp
  in
  let stats () =
    let inner_st = inner.stats () in
    { f.st with delay_ms = f.st.delay_ms +. inner_st.delay_ms }
  in
  { exchange; stats }
