(** Wire protocol between client and server (Figure 1's arrows).

    The simulation runs in one process, but the messages that would
    cross the network are materialised as byte strings: the translated
    query [Qs] goes up, the block set comes back.  This keeps the
    boundary honest — the server-side decoder only sees what a real
    server would — and gives the cost model exact message sizes in both
    directions.

    Responses carry block ids, ciphertexts and the decoy flag (which
    the client needs for stripping); the server's internal statistics
    travel alongside for the cost report but would be absent in a
    production deployment. *)

exception Malformed of string
(** The {e only} exception the wire-facing decoders may raise: random,
    truncated or bit-flipped buffers must map here, never to
    [Invalid_argument], [Failure], [Stack_overflow] or an
    out-of-bounds access (fuzzed in [test_protocol]).  Decoders
    bounds-check every read, reject implausible list counts, and cap
    predicate nesting depth. *)

val encode_request : Squery.path -> string
val decode_request : string -> Squery.path
(** @raise Malformed on garbage. *)

(** Every message a server endpoint may receive.  A plain query's first
    byte is its absolute flag ('\000'/'\001'); the mitigation variants
    claim other leading magic bytes, so legacy encodings still decode as
    [Query]. *)
type request =
  | Query of Squery.path
  | Fetch of int list           (** dummy block fetch — cover traffic *)
  | Padded of Squery.path * int list
      (** query plus extra block ids padding the response envelope *)

val encode_fetch : int list -> string
val encode_padded : Squery.path -> int list -> string

val decode_any : string -> request
(** Dispatching decoder used by the server endpoint.
    @raise Malformed on garbage. *)

val encode_response : Server.response -> string
val decode_response : string -> Server.response
(** @raise Malformed on garbage. *)

val roundtrip_request : Squery.path -> Squery.path
(** [decode_request (encode_request q)] — used by the system driver to
    force every query through the wire format. *)

val roundtrip_response : Server.response -> Server.response
