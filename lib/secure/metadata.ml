module Doc = Xmlcore.Doc
module Interval = Dsi.Interval

type target =
  | To_block of int
  | To_plain of Interval.t

type index_policy =
  | All_leaves
  | Encrypted_only

type t = {
  assignment : Dsi.Assign.t;
  dsi_table : (string * Interval.t list) list;
  block_table : (int * Interval.t) list;
  btree : target Btree.t;
  catalogs : (string * Opess.t) list;
  indexed_tags : string list;
}

let token_key = function
  | Squery.Clear tag -> "P:" ^ tag
  | Squery.Enc hex -> "E:" ^ hex

let encrypted_token ~keys tag =
  Squery.Enc
    (Crypto.Vernam.encrypt_hex
       ~key:(Crypto.Keys.tag_key keys)
       ~pad_id:(Crypto.Keys.tag_pad_id tag)
       tag)

(* Block id containing node [n] (including block roots), or None.
   Served from the node→block table [Encrypt.make_db] precomputed. *)
let block_index db =
  Array.map
    (fun id -> if id < 0 then None else Some id)
    db.Encrypt.node_block

(* DSI index table rows: one per node, except that runs of adjacent
   same-tag siblings inside the same block collapse to their hull. *)
let table_rows ~keys db assignment block_of =
  let doc = db.Encrypt.doc in
  let rows = ref [] in
  let emit node_run =
    match node_run with
    | [] -> ()
    | first :: _ ->
      let tag = Doc.tag doc first in
      let token =
        match block_of.(first) with
        | Some _ -> encrypted_token ~keys tag
        | None -> Squery.Clear tag
      in
      let hull =
        List.fold_left
          (fun acc n -> Interval.hull acc (Dsi.Assign.interval assignment n))
          (Dsi.Assign.interval assignment first)
          node_run
      in
      rows := (token_key token, hull) :: !rows
  in
  (* Group the children of every node into maximal runs. *)
  let group_children children =
    let same a b =
      String.equal (Doc.tag doc a) (Doc.tag doc b)
      && block_of.(a) = block_of.(b)
      && block_of.(a) <> None
    in
    let rec runs current = function
      | [] -> emit (List.rev current)
      | c :: rest ->
        (match current with
         | prev :: _ when same prev c -> runs (c :: current) rest
         | _ :: _ ->
           emit (List.rev current);
           runs [ c ] rest
         | [] -> runs [ c ] rest)
    in
    runs [] children
  in
  emit [ Doc.root doc ];
  Doc.iter doc (fun n ->
      match Doc.children doc n with
      | [] -> ()
      | children -> group_children children);
  !rows

let build ?pool ~keys ?(policy = All_leaves) db =
  let doc = db.Encrypt.doc in
  let assignment = Dsi.Assign.assign ~key:(Crypto.Keys.dsi_key keys) doc in
  let block_of = block_index db in
  let rows = table_rows ~keys db assignment block_of in
  let grouped = Hashtbl.create 256 in
  List.iter
    (fun (key, iv) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt grouped key) in
      Hashtbl.replace grouped key (iv :: prev))
    rows;
  let dsi_table =
    Hashtbl.fold
      (fun key ivs acc -> (key, List.sort Interval.compare_by_lo ivs) :: acc)
      grouped []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let block_table =
    List.map
      (fun b -> b.Encrypt.id, Dsi.Assign.interval assignment b.Encrypt.root)
      db.Encrypt.blocks
  in
  (* OPESS catalogs for every leaf attribute, ids in sorted-tag order. *)
  let leaf_tags = Xmlcore.Stats.leaf_tags doc in
  if List.length leaf_tags > 127 then
    invalid_arg "Metadata.build: more than 127 distinct leaf attributes";
  (* Derive every per-attribute key up front: the [Keys] memo table is
     mutable, so parallel workers must only read it.  Each catalog then
     owns its own OPE instance and histogram, making the per-tag builds
     independent; merging in tag order keeps attr ids and catalog order
     identical to the sequential path. *)
  let opess_keys =
    List.map (fun tag -> Crypto.Keys.opess_key keys ~attribute:tag) leaf_tags
  in
  let build_catalog attr_id (tag, key) =
    let histogram = Xmlcore.Stats.value_histogram doc ~tag in
    tag, Opess.build ~key ~attr_id ~tag histogram
  in
  let keyed_tags = Array.of_list (List.combine leaf_tags opess_keys) in
  let catalogs =
    match pool with
    | Some p -> Array.to_list (Parallel.Pool.mapi p build_catalog keyed_tags)
    | None -> Array.to_list (Array.mapi build_catalog keyed_tags)
  in
  let catalog_of = Hashtbl.create 32 in
  List.iter (fun (tag, c) -> Hashtbl.replace catalog_of tag c) catalogs;
  (* Which attributes enter the value index. *)
  let indexed_tags =
    match policy with
    | All_leaves -> leaf_tags
    | Encrypted_only ->
      List.filter (fun tag -> List.mem tag db.Encrypt.encrypted_tags) leaf_tags
  in
  let indexed_set = Hashtbl.create 32 in
  List.iter (fun tag -> Hashtbl.replace indexed_set tag ()) indexed_tags;
  (* Value index: one entry per occurrence per scale replica,
     bulk-loaded in one pass. *)
  let occurrence_counters = Hashtbl.create 1024 in
  let entries = ref [] in
  Doc.iter doc (fun n ->
      match Doc.value doc n with
      | None -> ()
      | Some v when Hashtbl.mem indexed_set (Doc.tag doc n) ->
        let tag = Doc.tag doc n in
        let cat = Hashtbl.find catalog_of tag in
        let counter_key = (tag, v) in
        let occurrence =
          Option.value ~default:0 (Hashtbl.find_opt occurrence_counters counter_key)
        in
        Hashtbl.replace occurrence_counters counter_key (occurrence + 1);
        let cipher = Opess.occurrence_cipher cat ~value:v ~occurrence in
        let target =
          match block_of.(n) with
          | Some id -> To_block id
          | None -> To_plain (Dsi.Assign.interval assignment n)
        in
        let scale =
          match Opess.find_entry cat v with
          | Some entry -> entry.Opess.scale
          | None -> 1
        in
        for _ = 1 to scale do
          entries := (cipher, target) :: !entries
        done
      | Some _ -> ());
  let btree = Btree.bulk_load ~min_degree:16 (List.rev !entries) in
  { assignment; dsi_table; block_table; btree; catalogs; indexed_tags }

let catalog t ~tag = List.assoc_opt tag t.catalogs

let table_entry_count t =
  List.fold_left (fun acc (_, ivs) -> acc + List.length ivs) 0 t.dsi_table

let btree_entry_count t = Btree.length t.btree

let metadata_bytes t =
  let interval_bytes = 16 in
  let table =
    List.fold_left
      (fun acc (key, ivs) ->
        acc + String.length key + (List.length ivs * interval_bytes))
      0 t.dsi_table
  in
  let blocks = List.length t.block_table * (8 + interval_bytes) in
  let btree_bytes = Btree.length t.btree * (8 + interval_bytes) in
  table + blocks + btree_bytes
