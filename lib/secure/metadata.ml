module Doc = Xmlcore.Doc
module Interval = Dsi.Interval

type target =
  | To_block of int
  | To_plain of Interval.t

type index_policy =
  | All_leaves
  | Encrypted_only

type t = {
  assignment : Dsi.Assign.t;
  dsi_table : (string * Interval.t list) list;
  block_table : (int * Interval.t) list;
  btree : target Btree.t;
  catalogs : (string * Opess.t) list;
  indexed_tags : string list;
}

let token_key = function
  | Squery.Clear tag -> "P:" ^ tag
  | Squery.Enc hex -> "E:" ^ hex

let encrypted_token ~keys tag =
  Squery.Enc
    (Crypto.Vernam.encrypt_hex
       ~key:(Crypto.Keys.tag_key keys)
       ~pad_id:(Crypto.Keys.tag_pad_id tag)
       tag)

(* Block id containing node [n] (including block roots), or None.
   Served from the node→block table [Encrypt.make_db] precomputed. *)
let block_index db =
  Array.map
    (fun id -> if id < 0 then None else Some id)
    db.Encrypt.node_block

(* DSI index table rows contributed by one sibling list: runs of
   adjacent same-tag siblings inside the same block collapse to their
   hull.  Factored per-parent so the incremental [patch] can recompute
   exactly the affected parents' contributions — the rows are a pure
   function of (children, tags, intervals, block membership), so a
   parent whose child list did not change contributes byte-identical
   rows in the old and new states. *)
let rows_for_children ~keys doc assignment block_of children =
  let rows = ref [] in
  let emit node_run =
    match node_run with
    | [] -> ()
    | first :: _ ->
      let tag = Doc.tag doc first in
      let token =
        match block_of.(first) with
        | Some _ -> encrypted_token ~keys tag
        | None -> Squery.Clear tag
      in
      let hull =
        List.fold_left
          (fun acc n -> Interval.hull acc (Dsi.Assign.interval assignment n))
          (Dsi.Assign.interval assignment first)
          node_run
      in
      rows := (token_key token, hull) :: !rows
  in
  let same a b =
    String.equal (Doc.tag doc a) (Doc.tag doc b)
    && block_of.(a) = block_of.(b)
    && block_of.(a) <> None
  in
  let rec runs current = function
    | [] -> emit (List.rev current)
    | c :: rest ->
      (match current with
       | prev :: _ when same prev c -> runs (c :: current) rest
       | _ :: _ ->
         emit (List.rev current);
         runs [ c ] rest
       | [] -> runs [ c ] rest)
  in
  runs [] children;
  !rows

(* DSI index table rows: one per node, except that runs of adjacent
   same-tag siblings inside the same block collapse to their hull. *)
let table_rows ~keys db assignment block_of =
  let doc = db.Encrypt.doc in
  let rows = ref (rows_for_children ~keys doc assignment block_of [ Doc.root doc ]) in
  Doc.iter doc (fun n ->
      match Doc.children doc n with
      | [] -> ()
      | children ->
        rows := rows_for_children ~keys doc assignment block_of children @ !rows);
  !rows

let build ?pool ~keys ?(policy = All_leaves) db =
  let doc = db.Encrypt.doc in
  let assignment = Dsi.Assign.assign ~key:(Crypto.Keys.dsi_key keys) doc in
  let block_of = block_index db in
  let rows = table_rows ~keys db assignment block_of in
  let grouped = Hashtbl.create 256 in
  List.iter
    (fun (key, iv) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt grouped key) in
      Hashtbl.replace grouped key (iv :: prev))
    rows;
  let dsi_table =
    Hashtbl.fold
      (fun key ivs acc -> (key, List.sort Interval.compare_by_lo ivs) :: acc)
      grouped []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let block_table =
    List.map
      (fun b -> b.Encrypt.id, Dsi.Assign.interval assignment b.Encrypt.root)
      db.Encrypt.blocks
  in
  (* OPESS catalogs for every leaf attribute, ids in sorted-tag order. *)
  let leaf_tags = Xmlcore.Stats.leaf_tags doc in
  if List.length leaf_tags > 127 then
    invalid_arg "Metadata.build: more than 127 distinct leaf attributes";
  (* Derive every per-attribute key up front: the [Keys] memo table is
     mutable, so parallel workers must only read it.  Each catalog then
     owns its own OPE instance and histogram, making the per-tag builds
     independent; merging in tag order keeps attr ids and catalog order
     identical to the sequential path. *)
  let opess_keys =
    List.map (fun tag -> Crypto.Keys.opess_key keys ~attribute:tag) leaf_tags
  in
  let build_catalog attr_id (tag, key) =
    let histogram = Xmlcore.Stats.value_histogram doc ~tag in
    tag, Opess.build ~key ~attr_id ~tag histogram
  in
  let keyed_tags = Array.of_list (List.combine leaf_tags opess_keys) in
  let catalogs =
    match pool with
    | Some p -> Array.to_list (Parallel.Pool.mapi p build_catalog keyed_tags)
    | None -> Array.to_list (Array.mapi build_catalog keyed_tags)
  in
  let catalog_of = Hashtbl.create 32 in
  List.iter (fun (tag, c) -> Hashtbl.replace catalog_of tag c) catalogs;
  (* Which attributes enter the value index. *)
  let indexed_tags =
    match policy with
    | All_leaves -> leaf_tags
    | Encrypted_only ->
      List.filter (fun tag -> List.mem tag db.Encrypt.encrypted_tags) leaf_tags
  in
  let indexed_set = Hashtbl.create 32 in
  List.iter (fun tag -> Hashtbl.replace indexed_set tag ()) indexed_tags;
  (* Value index: one entry per occurrence per scale replica,
     bulk-loaded in one pass. *)
  let occurrence_counters = Hashtbl.create 1024 in
  let entries = ref [] in
  Doc.iter doc (fun n ->
      match Doc.value doc n with
      | None -> ()
      | Some v when Hashtbl.mem indexed_set (Doc.tag doc n) ->
        let tag = Doc.tag doc n in
        let cat = Hashtbl.find catalog_of tag in
        let counter_key = (tag, v) in
        let occurrence =
          Option.value ~default:0 (Hashtbl.find_opt occurrence_counters counter_key)
        in
        Hashtbl.replace occurrence_counters counter_key (occurrence + 1);
        let cipher = Opess.occurrence_cipher cat ~value:v ~occurrence in
        let target =
          match block_of.(n) with
          | Some id -> To_block id
          | None -> To_plain (Dsi.Assign.interval assignment n)
        in
        let scale =
          match Opess.find_entry cat v with
          | Some entry -> entry.Opess.scale
          | None -> 1
        in
        for _ = 1 to scale do
          entries := (cipher, target) :: !entries
        done
      | Some _ -> ());
  let btree = Btree.bulk_load ~min_degree:16 (List.rev !entries) in
  { assignment; dsi_table; block_table; btree; catalogs; indexed_tags }

(* ------------------------------------------------------------------ *)
(* Incremental patching                                                *)

exception Patch_impossible of string

type patch_stats = {
  rows_removed : int;
  rows_added : int;
  catalogs_patched : int;
  index_entries_removed : int;
  index_entries_added : int;
}

module Iset = Set.Make (Int)

(* Namespace of one attribute in the shared B-tree: attr id in the top
   bits, 56 bits of OPE cipher below. *)
let namespace_range attr_id =
  let lo = Int64.shift_left (Int64.of_int attr_id) 56 in
  lo, Int64.logor lo 0xFF_FFFF_FFFF_FFFFL

(* Patch the metadata for one planned edit instead of rebuilding it.

   - DSI intervals: surviving nodes keep their exact interval (copied
     through the plan's correspondence); inserted subtrees land in the
     sibling gaps calInterval reserved and subdivide below that.
   - DSI table: only the parents whose child list changed have their
     rows recomputed; everything else is untouched (and provably equal
     to what a fresh build would emit for those parents, since rows are
     a pure function of unchanged inputs).
   - OPESS catalogs: only attributes whose value multiset changed are
     rebuilt, under their existing attr id, so every other attribute's
     B-tree namespace survives verbatim.  A brand-new attribute takes
     the next free id.
   - Value B-tree: affected attributes' namespaces are deleted and
     re-inserted; the rest of the tree is never traversed.

   All fallible work (interval drawing, row matching, catalog builds,
   cipher lookups) happens before the B-tree is mutated, so a raised
   [Patch_impossible] / [Invalid_argument] leaves [t] untouched and the
   caller can fall back to a full rebuild. *)
let patch ~keys ?(policy = All_leaves) t (plan : Update.plan) ~old_db ~new_db =
  let old_doc = old_db.Encrypt.doc in
  let new_doc = new_db.Encrypt.doc in
  (* -- interval assignment ---------------------------------------- *)
  let dsi_key = Crypto.Keys.dsi_key keys in
  let ivs = Array.make (Doc.node_count new_doc) (Interval.make 0.0 1.0) in
  Array.iteri
    (fun new_id old_id ->
      if old_id >= 0 then ivs.(new_id) <- Dsi.Assign.interval t.assignment old_id)
    plan.Update.old_of_new;
  List.iter
    (fun r ->
      let p =
        match Doc.parent new_doc r with
        | Some p -> p
        | None -> raise (Patch_impossible "inserted subtree at document root")
      in
      (* Neighbouring siblings survive the edit (one insert per parent),
         so their intervals are already in place; the gap between them
         (or out to the parent's bounds) is exactly what calInterval
         reserved for future inserts. *)
      let rec neighbors prev = function
        | [] -> prev, None
        | c :: rest when c = r ->
          prev, (match rest with [] -> None | next :: _ -> Some next)
        | c :: rest -> neighbors (Some c) rest
      in
      let prev, next = neighbors None (Doc.children new_doc p) in
      let lo =
        match prev with Some s -> ivs.(s).Interval.hi | None -> ivs.(p).Interval.lo
      in
      let hi =
        match next with Some s -> ivs.(s).Interval.lo | None -> ivs.(p).Interval.hi
      in
      ivs.(r) <- Dsi.Assign.interval_in_gap ~key:dsi_key ~label:r ~lo ~hi)
    plan.Update.inserted_roots;
  let assignment = Dsi.Assign.of_intervals new_doc ivs in
  List.iter
    (fun r -> Dsi.Assign.subdivide ~key:dsi_key assignment r)
    plan.Update.inserted_roots;
  (* -- DSI table surgery ------------------------------------------ *)
  let old_block_of = block_index old_db in
  let new_block_of = block_index new_db in
  let insert_parents_new =
    List.fold_left
      (fun acc r ->
        match Doc.parent new_doc r with Some p -> Iset.add p acc | None -> acc)
      Iset.empty plan.Update.inserted_roots
  in
  let affected_old_parents =
    let with_deletes =
      List.fold_left
        (fun acc d ->
          let acc =
            match Doc.parent old_doc d with
            | Some p -> Iset.add p acc
            | None -> acc
          in
          List.fold_left
            (fun acc n ->
              if Doc.children old_doc n <> [] then Iset.add n acc else acc)
            acc
            (Doc.descendant_or_self old_doc d))
        Iset.empty plan.Update.deleted_roots
    in
    Iset.fold
      (fun p acc ->
        let old_p = plan.Update.old_of_new.(p) in
        if old_p >= 0 then Iset.add old_p acc else acc)
      insert_parents_new with_deletes
  in
  let affected_new_parents =
    let with_deletes =
      List.fold_left
        (fun acc d ->
          match Doc.parent old_doc d with
          | Some p ->
            let np = plan.Update.new_of_old.(p) in
            if np >= 0 then Iset.add np acc else acc
          | None -> acc)
        Iset.empty plan.Update.deleted_roots
    in
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc n ->
            if Doc.children new_doc n <> [] then Iset.add n acc else acc)
          acc
          (Doc.descendant_or_self new_doc r))
      (Iset.union insert_parents_new with_deletes)
      plan.Update.inserted_roots
  in
  let removed_rows =
    Iset.fold
      (fun p acc ->
        rows_for_children ~keys old_doc t.assignment old_block_of
          (Doc.children old_doc p)
        @ acc)
      affected_old_parents []
  in
  let added_rows =
    Iset.fold
      (fun p acc ->
        rows_for_children ~keys new_doc assignment new_block_of
          (Doc.children new_doc p)
        @ acc)
      affected_new_parents []
  in
  let table = Hashtbl.create 256 in
  List.iter (fun (k, ivl) -> Hashtbl.replace table k ivl) t.dsi_table;
  List.iter
    (fun (k, iv) ->
      match Hashtbl.find_opt table k with
      | None -> raise (Patch_impossible ("dsi table has no group for " ^ k))
      | Some ivl ->
        let rec drop = function
          | [] -> raise (Patch_impossible ("dsi row not found under " ^ k))
          | x :: rest when Interval.equal x iv -> rest
          | x :: rest -> x :: drop rest
        in
        (match drop ivl with
         | [] -> Hashtbl.remove table k
         | ivl -> Hashtbl.replace table k ivl))
    removed_rows;
  List.iter
    (fun (k, iv) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt table k) in
      Hashtbl.replace table k (iv :: prev))
    added_rows;
  let dsi_table =
    Hashtbl.fold
      (fun key ivl acc -> (key, List.sort Interval.compare_by_lo ivl) :: acc)
      table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let block_table =
    List.map
      (fun b -> b.Encrypt.id, Dsi.Assign.interval assignment b.Encrypt.root)
      new_db.Encrypt.blocks
  in
  (* -- OPESS catalogs and value index ------------------------------ *)
  let affected_tags = Hashtbl.create 16 in
  let note tag = Hashtbl.replace affected_tags tag () in
  List.iter
    (fun d ->
      List.iter
        (fun n -> if Doc.value old_doc n <> None then note (Doc.tag old_doc n))
        (Doc.descendant_or_self old_doc d))
    plan.Update.deleted_roots;
  List.iter
    (fun r ->
      List.iter
        (fun n -> if Doc.value new_doc n <> None then note (Doc.tag new_doc n))
        (Doc.descendant_or_self new_doc r))
    plan.Update.inserted_roots;
  List.iter (fun n -> note (Doc.tag old_doc n)) plan.Update.changed_values;
  let affected = Hashtbl.fold (fun tag () acc -> tag :: acc) affected_tags [] in
  let affected = List.sort String.compare affected in
  let next_attr_id =
    ref (1 + List.fold_left (fun acc (_, c) -> Int.max acc (Opess.attr_id c)) (-1)
           t.catalogs)
  in
  (* (tag, old catalog option, new catalog option) per affected tag. *)
  let catalog_changes =
    List.map
      (fun tag ->
        let histogram = Xmlcore.Stats.value_histogram new_doc ~tag in
        let old_cat = List.assoc_opt tag t.catalogs in
        let new_cat =
          match histogram, old_cat with
          | [], _ -> None
          | _, Some cat ->
            Some (Opess.patch ~key:(Crypto.Keys.opess_key keys ~attribute:tag) cat
                    histogram)
          | _, None ->
            let attr_id = !next_attr_id in
            if attr_id > 126 then
              raise (Patch_impossible "attribute id space exhausted");
            incr next_attr_id;
            Some
              (Opess.build ~key:(Crypto.Keys.opess_key keys ~attribute:tag)
                 ~attr_id ~tag histogram)
        in
        tag, old_cat, new_cat)
      affected
  in
  let catalogs =
    List.fold_left
      (fun cats (tag, _, new_cat) ->
        let without = List.remove_assoc tag cats in
        match new_cat with
        | None -> without
        | Some c ->
          List.sort (fun (a, _) (b, _) -> String.compare a b) ((tag, c) :: without))
      t.catalogs catalog_changes
  in
  let indexed tag =
    match policy with
    | All_leaves -> true
    | Encrypted_only -> List.mem tag new_db.Encrypt.encrypted_tags
  in
  let indexed_tags =
    List.fold_left
      (fun tags (tag, _, new_cat) ->
        let without = List.filter (fun x -> not (String.equal x tag)) tags in
        match new_cat with
        | Some _ when indexed tag -> List.sort String.compare (tag :: without)
        | Some _ | None -> without)
      t.indexed_tags catalog_changes
  in
  (* Compute every fresh index entry before touching the tree: the
     occurrence→cipher mapping can only fail here, never mid-surgery. *)
  let fresh_entries =
    List.concat_map
      (fun (tag, _, new_cat) ->
        match new_cat with
        | Some cat when indexed tag ->
          let counters = Hashtbl.create 64 in
          List.filter_map
            (fun n ->
              match Doc.value new_doc n with
              | None -> None
              | Some v ->
                let occurrence =
                  Option.value ~default:0 (Hashtbl.find_opt counters v)
                in
                Hashtbl.replace counters v (occurrence + 1);
                let cipher = Opess.occurrence_cipher cat ~value:v ~occurrence in
                let target =
                  match new_block_of.(n) with
                  | Some id -> To_block id
                  | None -> To_plain (Dsi.Assign.interval assignment n)
                in
                let scale =
                  match Opess.find_entry cat v with
                  | Some entry -> entry.Opess.scale
                  | None -> 1
                in
                Some (List.init scale (fun _ -> cipher, target)))
            (Doc.nodes_with_tag new_doc tag)
          |> List.concat
        | Some _ | None -> [])
      catalog_changes
  in
  (* Point of no return: everything below is infallible surgery. *)
  let index_entries_removed = ref 0 in
  List.iter
    (fun (_tag, old_cat, _) ->
      match old_cat with
      | None -> ()
      | Some cat ->
        let lo, hi = namespace_range (Opess.attr_id cat) in
        let stale = Btree.range t.btree ~lo ~hi in
        let keys_seen = List.sort_uniq Int64.compare (List.map fst stale) in
        List.iter
          (fun key ->
            index_entries_removed :=
              !index_entries_removed + Btree.delete_all t.btree key (fun _ -> true))
          keys_seen)
    catalog_changes;
  List.iter (fun (cipher, target) -> Btree.insert t.btree cipher target) fresh_entries;
  let stats =
    { rows_removed = List.length removed_rows;
      rows_added = List.length added_rows;
      catalogs_patched = List.length catalog_changes;
      index_entries_removed = !index_entries_removed;
      index_entries_added = List.length fresh_entries }
  in
  ( { assignment; dsi_table; block_table; btree = t.btree; catalogs; indexed_tags },
    stats )

let catalog t ~tag = List.assoc_opt tag t.catalogs

let table_entry_count t =
  List.fold_left (fun acc (_, ivs) -> acc + List.length ivs) 0 t.dsi_table

let btree_entry_count t = Btree.length t.btree

let metadata_bytes t =
  let interval_bytes = 16 in
  let table =
    List.fold_left
      (fun acc (key, ivs) ->
        acc + String.length key + (List.length ivs * interval_bytes))
      0 t.dsi_table
  in
  let blocks = List.length t.block_table * (8 + interval_bytes) in
  let btree_bytes = Btree.length t.btree * (8 + interval_bytes) in
  table + blocks + btree_bytes
