module Interval = Dsi.Interval

let log_src = Logs.Src.create "secure.server" ~doc:"Untrusted-server query engine"

module Log = (val Logs.src_log log_src)

(* Everything counted here is already in the server's own view: it
   holds the ciphertext blocks and computes the interval joins itself.
   Nothing client-side (plaintext, keys) is reachable from this file —
   the lint boundary table enforces that. *)
module M = struct
  let reg = Obs.Metric.default
  let answers = Obs.Metric.counter reg "server.answers" ~help:"queries answered"
  let blocks_shipped = Obs.Metric.counter reg "server.blocks_shipped" ~help:"candidate blocks returned"
  let bytes_shipped = Obs.Metric.counter reg "server.bytes_shipped" ~help:"response payload bytes"
  let candidate_intervals = Obs.Metric.counter reg "server.candidate_intervals" ~help:"DSI intervals surviving joins"
  let btree_hits = Obs.Metric.counter reg "server.btree_hits" ~help:"value-index entries touched"
end

(* Invariant: every interval list in [table] is sorted by
   {!Interval.compare_by_lo} and duplicate-free — the sort is hoisted
   into {!create} so per-step lookups need not re-sort (single-token
   lookups, the common case, return the stored list as-is). *)
type t = {
  table : (string, Interval.t list) Hashtbl.t;
  counts : (string, int) Hashtbl.t;    (* per-token interval counts *)
  universe : Interval.t list;          (* wildcard candidates *)
  universe_count : int;
  prepared : Dsi.Join.universe;        (* for child-axis joins *)
  block_table : (int * Interval.t) list;
  reps_prepared : Dsi.Join.universe;   (* block representatives, sorted once *)
  rep_by_id : (int, Interval.t) Hashtbl.t;
  id_by_rep : (float * float, int) Hashtbl.t;
  blocks_by_id : (int, Encrypt.block) Hashtbl.t;
  btree : Metadata.target Btree.t;
  trace : Obs.Trace.t;   (* disabled no-op tracer unless one is injected *)
}

type response = {
  blocks : Encrypt.block list;
  bytes : int;
  candidate_intervals : int;
  btree_hits : int;
}

let create ?trace ~dsi_table ~block_table ~btree ~blocks () =
  let trace = match trace with Some t -> t | None -> Obs.Trace.create () in
  let table = Hashtbl.create (List.length dsi_table) in
  let counts = Hashtbl.create (List.length dsi_table) in
  List.iter
    (fun (key, ivs) ->
      (* Establish the sortedness invariant once, at build time. *)
      let ivs = List.sort_uniq Interval.compare_by_lo ivs in
      Hashtbl.replace table key ivs;
      Hashtbl.replace counts key (List.length ivs))
    dsi_table;
  let universe =
    List.sort Interval.compare_by_lo (List.concat_map snd dsi_table)
  in
  let prepared = Dsi.Join.prepare_universe universe in
  let blocks_by_id = Hashtbl.create (List.length blocks) in
  List.iter (fun b -> Hashtbl.replace blocks_by_id b.Encrypt.id b) blocks;
  let rep_by_id = Hashtbl.create (List.length block_table) in
  let id_by_rep = Hashtbl.create (List.length block_table) in
  List.iter
    (fun (id, rep) ->
      Hashtbl.replace rep_by_id id rep;
      Hashtbl.replace id_by_rep (rep.Interval.lo, rep.Interval.hi) id)
    block_table;
  { table;
    counts;
    universe;
    universe_count = List.length universe;
    prepared;
    block_table;
    reps_prepared = Dsi.Join.prepare_universe (List.map snd block_table);
    rep_by_id;
    id_by_rep;
    blocks_by_id;
    btree;
    trace }

let of_metadata ?trace meta blocks =
  create ?trace ~dsi_table:meta.Metadata.dsi_table
    ~block_table:meta.Metadata.block_table ~btree:meta.Metadata.btree
    ~blocks ()

let all_blocks t =
  Hashtbl.fold (fun _ b acc -> b :: acc) t.blocks_by_id []
  |> List.sort (fun a b -> compare a.Encrypt.id b.Encrypt.id)

let block_bytes blocks =
  List.fold_left
    (fun acc b -> acc + String.length b.Encrypt.ciphertext + Encrypt.block_header_bytes)
    0 blocks

let stored_bytes t = block_bytes (all_blocks t)

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                    *)

let lookup t = function
  | Squery.Any -> t.universe
  | Squery.Tokens [ token ] ->
    (* Fast path: table entries are sorted and duplicate-free already
       (see {!create}), so the stored list is returned as-is. *)
    Option.value ~default:[] (Hashtbl.find_opt t.table (Metadata.token_key token))
  | Squery.Tokens tokens ->
    (* Multi-token tests (attribute Enc over several scramblings) still
       need one merge pass over the per-token sorted lists. *)
    List.concat_map
      (fun token ->
        Option.value ~default:[] (Hashtbl.find_opt t.table (Metadata.token_key token)))
      tokens
    |> List.sort_uniq Interval.compare_by_lo

(* Candidate count of a test without materialising the merge — the
   planner's selectivity input.  Multi-token sums may double-count
   intervals shared between tokens; as an estimate that is fine. *)
let test_count t = function
  | Squery.Any -> t.universe_count
  | Squery.Tokens tokens ->
    List.fold_left
      (fun acc token ->
        acc
        + Option.value ~default:0 (Hashtbl.find_opt t.counts (Metadata.token_key token)))
      0 tokens

(* Document-order axes over intervals: [m] follows [o] iff m.lo > o.hi,
   precedes iff m.hi < o.lo.  Grouped hulls can hide the relationship
   inside a single interval, so candidates equal to or containing an
   origin are kept as well (supersets only — the client filters). *)
let after_subtrees origins candidates =
  let min_hi =
    List.fold_left (fun acc o -> Float.min acc o.Interval.hi) infinity origins
  in
  let related = Dsi.Join.ancestors_of_some ~descendants:origins candidates in
  let related_set = Hashtbl.create 32 in
  List.iter
    (fun c -> Hashtbl.replace related_set (c.Interval.lo, c.Interval.hi) ())
    related;
  List.iter
    (fun o -> Hashtbl.replace related_set (o.Interval.lo, o.Interval.hi) ())
    origins;
  List.filter
    (fun c ->
      c.Interval.lo > min_hi || Hashtbl.mem related_set (c.Interval.lo, c.Interval.hi))
    candidates

let before_subtrees origins candidates =
  let max_lo =
    List.fold_left (fun acc o -> Float.max acc o.Interval.lo) neg_infinity origins
  in
  let related = Dsi.Join.ancestors_of_some ~descendants:origins candidates in
  let related_set = Hashtbl.create 32 in
  List.iter
    (fun c -> Hashtbl.replace related_set (c.Interval.lo, c.Interval.hi) ())
    related;
  List.iter
    (fun o -> Hashtbl.replace related_set (o.Interval.lo, o.Interval.hi) ())
    origins;
  List.filter
    (fun c ->
      c.Interval.hi < max_lo || Hashtbl.mem related_set (c.Interval.lo, c.Interval.hi))
    candidates

(* Join a step's raw candidates against the surviving origin set.
   [origin = None] is the virtual document node of an absolute path. *)
let join_forward t origin axis candidates =
  match origin, axis with
  | None, Xpath.Ast.Descendant_or_self -> candidates
  | None, Xpath.Ast.Child ->
    (* Top-level intervals: contained in no other table interval. *)
    Dsi.Join.children_within ~universe:t.prepared ~parents:[ Interval.make (-1.0) 2.0 ]
      candidates
  | None, ( Xpath.Ast.Parent | Xpath.Ast.Following_sibling
          | Xpath.Ast.Preceding_sibling | Xpath.Ast.Following
          | Xpath.Ast.Preceding ) ->
    [] (* the virtual document node has none of these *)
  | Some origins, Xpath.Ast.Descendant_or_self ->
    Dsi.Join.descendants_within ~ancestors:origins candidates
  | Some origins, Xpath.Ast.Child ->
    Dsi.Join.children_within ~universe:t.prepared ~parents:origins candidates
  | Some origins, Xpath.Ast.Parent ->
    Dsi.Join.parents_of_some ~universe:t.prepared ~children:origins candidates
  | Some origins, Xpath.Ast.Following_sibling ->
    Dsi.Join.following_siblings_within ~universe:t.prepared ~anchors:origins candidates
  | Some origins, Xpath.Ast.Preceding_sibling ->
    Dsi.Join.preceding_siblings_within ~universe:t.prepared ~anchors:origins candidates
  | Some origins, Xpath.Ast.Following -> after_subtrees origins candidates
  | Some origins, Xpath.Ast.Preceding -> before_subtrees origins candidates

(* Tighten [origin] to the members with a surviving successor. *)
let join_backward t origins axis survivors =
  match axis with
  | Xpath.Ast.Descendant_or_self ->
    Dsi.Join.ancestors_of_some ~descendants:survivors origins
  | Xpath.Ast.Child ->
    Dsi.Join.parents_of_some ~universe:t.prepared ~children:survivors origins
  | Xpath.Ast.Parent ->
    (* survivors are parents of qualifying origins *)
    Dsi.Join.children_within ~universe:t.prepared ~parents:survivors origins
  | Xpath.Ast.Following_sibling ->
    Dsi.Join.anchors_of_following ~universe:t.prepared ~followers:survivors origins
  | Xpath.Ast.Preceding_sibling ->
    Dsi.Join.anchors_of_preceding ~universe:t.prepared ~predecessors:survivors origins
  | Xpath.Ast.Following -> before_subtrees survivors origins
  | Xpath.Ast.Preceding -> after_subtrees survivors origins

(* Allowed targets of a value constraint: union of B-tree range scans. *)
let btree_targets t ranges =
  let hits = ref 0 in
  let targets =
    List.concat_map
      (fun (lo, hi) ->
        let entries = Btree.range t.btree ~lo ~hi in
        hits := !hits + List.length entries;
        List.map snd entries)
      ranges
  in
  targets, !hits

let rep_interval t id = Hashtbl.find t.rep_by_id id

(* Keep candidates compatible with at least one allowed target: equal
   to an allowed plaintext-leaf interval, or equal to / contained in an
   allowed block's representative interval.  Equality goes through a
   hash set and containment through one sweep, so the cost is
   O((candidates + targets) log) rather than candidates × targets. *)
let filter_by_targets t candidates targets =
  let exact = Hashtbl.create 64 in
  let reps = ref [] in
  List.iter
    (fun target ->
      match target with
      | Metadata.To_plain iv -> Hashtbl.replace exact (iv.Interval.lo, iv.Interval.hi) ()
      | Metadata.To_block id ->
        let rep = rep_interval t id in
        Hashtbl.replace exact (rep.Interval.lo, rep.Interval.hi) ();
        reps := rep :: !reps)
    targets;
  let inside = Hashtbl.create 64 in
  (* [descendants_within] sorts its ancestor side internally and the
     sweep tolerates duplicates, so no pre-sort of [!reps] is needed. *)
  List.iter
    (fun c -> Hashtbl.replace inside (c.Interval.lo, c.Interval.hi) ())
    (Dsi.Join.descendants_within ~ancestors:!reps candidates);
  List.filter
    (fun c ->
      let key = c.Interval.lo, c.Interval.hi in
      Hashtbl.mem exact key || Hashtbl.mem inside key)
    candidates

type eval_state = {
  mutable touched : int;     (* surviving intervals, summed over query nodes *)
  mutable hits : int;        (* B-tree entries touched *)
  mutable witnesses : Interval.t list;  (* all surviving intervals, for block selection *)
}

let new_state () = { touched = 0; hits = 0; witnesses = [] }

let add_hits state n = state.hits <- state.hits + n

let register state survivors =
  state.touched <- state.touched + List.length survivors;
  state.witnesses <- List.rev_append survivors state.witnesses

(* Forward pass over [steps] from [origin]; returns the per-step
   surviving candidate lists (in step order). *)
let rec forward t state origin steps =
  match steps with
  | [] -> []
  | step :: rest ->
    let raw = lookup t step.Squery.test in
    let joined = join_forward t origin step.Squery.axis raw in
    let filtered =
      List.fold_left (fun cands pred -> filter_by_predicate t state cands pred) joined
        step.Squery.predicates
    in
    register state filtered;
    filtered :: forward t state (Some filtered) rest

(* Filter a candidate set by one predicate, with back-propagation
   through the predicate's chain. *)
and filter_by_predicate t state candidates pred =
  match pred with
  | Squery.P_and (a, b) ->
    filter_by_predicate t state (filter_by_predicate t state candidates a) b
  | Squery.P_or (a, b) ->
    (* Union of the branch survivors (candidates stay a superset). *)
    let left = filter_by_predicate t state candidates a in
    let right = filter_by_predicate t state candidates b in
    let seen = Hashtbl.create 64 in
    List.iter
      (fun c -> Hashtbl.replace seen (c.Interval.lo, c.Interval.hi) ())
      left;
    left
    @ List.filter
        (fun c -> not (Hashtbl.mem seen (c.Interval.lo, c.Interval.hi)))
        right
  | Squery.P_not inner ->
    (* Negation cannot prune soundly when the inner filter is itself a
       superset approximation; walk the inner predicate only for its
       statistics/witnesses and keep every candidate. *)
    ignore (filter_by_predicate t state candidates inner);
    candidates
  | Squery.Exists q -> chain_filter t state candidates q None
  | Squery.Value (q, Squery.Unknown) ->
    (* Unindexed attribute: the server cannot prune on the value, but
       the structural part of the chain still applies. *)
    if q.Squery.steps = [] then candidates
    else chain_filter t state candidates q None
  | Squery.Value (q, Squery.Ranges ranges) ->
    let targets, hits = btree_targets t ranges in
    state.hits <- state.hits + hits;
    if q.Squery.steps = [] then filter_by_targets t candidates targets
    else chain_filter t state candidates q (Some targets)

(* [chain_filter t state candidates q targets] keeps the candidates
   that can reach, through q's chain, a final node compatible with
   [targets] (when given): forward pass down the chain, target filter
   at the bottom, backward tightening up to the candidates. *)
and chain_filter t state candidates q targets =
  let levels = forward t state (Some candidates) q.Squery.steps in
  match levels with
  | [] -> candidates (* self path: a Value on self is handled by the caller *)
  | _ ->
    let last = List.nth levels (List.length levels - 1) in
    let last =
      match targets with
      | None -> last
      | Some ts -> filter_by_targets t last ts
    in
    (* Level i was joined from level i-1 (level 0 = candidates) via the
       axis of step i; walk back from the deepest survivors. *)
    let rev_axes = List.rev (List.map (fun s -> s.Squery.axis) q.Squery.steps) in
    (* [candidates :: levels] is non-empty by construction, so dropping
       the deepest level after reversal is total; the [[]] arm is
       unreachable but typed. *)
    let rev_uppers =
      match List.rev (candidates :: levels) with
      | _deepest :: uppers -> uppers
      | [] -> []
    in
    List.fold_left2
      (fun survivors above axis -> join_backward t above axis survivors)
      last rev_uppers rev_axes

type step_report = {
  step_index : int;
  axis : Xpath.Ast.axis;
  raw_candidates : int;
  surviving_candidates : int;
}

let explain t query =
  let state = new_state () in
  let levels = forward t state None query.Squery.steps in
  List.mapi
    (fun i (step, survivors) ->
      { step_index = i;
        axis = step.Squery.axis;
        raw_candidates = List.length (lookup t step.Squery.test);
        surviving_candidates = List.length survivors })
    (List.combine query.Squery.steps levels)

(* Blocks to ship: any block whose representative interval covers
   (contains or equals) a witness interval, plus blocks nested inside a
   distinguished interval (needed to rebuild full answer subtrees).
   All three relations are computed with sweeps/hashes to stay
   near-linear; the block-representative side is prepared once at
   {!create}. *)
let select_blocks t ~witnesses ~distinguished ~candidate_intervals ~btree_hits =
  Obs.span t.trace "server.select_blocks" @@ fun () ->
  let reps = List.map snd t.block_table in
  let needed = Hashtbl.create 64 in
  let need rep =
    match Hashtbl.find_opt t.id_by_rep (rep.Interval.lo, rep.Interval.hi) with
    | Some id -> Hashtbl.replace needed id ()
    | None -> ()
  in
  let witnesses = List.sort_uniq Interval.compare_by_lo witnesses in
  (* (a) reps strictly containing a witness *)
  List.iter need
    (Dsi.Join.ancestors_of_some_prepared ~descendants:witnesses
       ~candidates:t.reps_prepared);
  (* (b) reps equal to a witness *)
  List.iter
    (fun w ->
      if Hashtbl.mem t.id_by_rep (w.Interval.lo, w.Interval.hi) then need w)
    witnesses;
  (* (c) reps strictly inside a distinguished interval *)
  List.iter need (Dsi.Join.descendants_within ~ancestors:distinguished reps);
  let blocks =
    Hashtbl.fold
      (fun id () acc ->
        match Hashtbl.find_opt t.blocks_by_id id with
        | Some b -> b :: acc
        | None -> acc)
      needed []
    |> List.sort (fun a b -> compare a.Encrypt.id b.Encrypt.id)
  in
  let response =
    { blocks; bytes = block_bytes blocks; candidate_intervals; btree_hits }
  in
  if Obs.Trace.enabled t.trace then
    Obs.Trace.event t.trace "selected"
      ~attrs:
        [ "blocks", string_of_int (List.length blocks);
          "bytes", string_of_int response.bytes ];
  Obs.Metric.add M.blocks_shipped (List.length blocks);
  Obs.Metric.add M.bytes_shipped response.bytes;
  response

let record_answer t response =
  Obs.Metric.incr M.answers;
  Obs.Metric.add M.candidate_intervals response.candidate_intervals;
  Obs.Metric.add M.btree_hits response.btree_hits;
  if Obs.Trace.enabled t.trace then
    Obs.Trace.event t.trace "pruned"
      ~attrs:
        [ "intervals", string_of_int response.candidate_intervals;
          "btree_hits", string_of_int response.btree_hits ]

let answer t query =
  Log.debug (fun m -> m "answer: %s" (Squery.to_string query));
  Obs.span t.trace "server.answer" @@ fun () ->
  let state = new_state () in
  let levels =
    Obs.span t.trace "server.prune" (fun () -> forward t state None query.Squery.steps)
  in
  let distinguished =
    match List.rev levels with
    | last :: _ -> last
    | [] -> []
  in
  let response =
    select_blocks t ~witnesses:state.witnesses ~distinguished
      ~candidate_intervals:state.touched ~btree_hits:state.hits
  in
  record_answer t response;
  Log.debug (fun m ->
      m "answer: %d candidate intervals, %d btree hits, %d blocks shipped"
        state.touched state.hits (List.length response.blocks));
  response

(* MIN/MAX without shipping the whole candidate set (Section 6.4): OPE
   preserves order, so the extreme B-tree entry over the attribute's
   key range whose target is compatible with a distinguished-node
   candidate locates the extreme {e encrypted} occurrence; plaintext
   candidates live in the skeleton the client already holds.  At most
   one block ships. *)
let answer_extreme t query ~key_range ~direction =
  Obs.span t.trace "server.answer_extreme" @@ fun () ->
  let state = new_state () in
  let levels = forward t state None query.Squery.steps in
  let distinguished =
    match List.rev levels with
    | last :: _ -> last
    | [] -> []
  in
  let lo, hi = key_range in
  let entries = Btree.range t.btree ~lo ~hi in
  let entries =
    match direction with
    | `Min -> entries
    | `Max -> List.rev entries
  in
  state.hits <- state.hits + List.length entries;
  let compatible target =
    filter_by_targets t distinguished [ target ] <> []
  in
  let block_of_target = function
    | Metadata.To_block id -> Hashtbl.find_opt t.blocks_by_id id
    | Metadata.To_plain _ -> None
  in
  let rec first_match = function
    | [] -> None
    | (_, target) :: rest ->
      if compatible target then Some (block_of_target target) else first_match rest
  in
  let blocks =
    match first_match entries with
    | Some (Some block) -> [ block ]
    | Some None | None -> []
  in
  let response =
    { blocks;
      bytes = block_bytes blocks;
      candidate_intervals = state.touched;
      btree_hits = state.hits }
  in
  Obs.Metric.add M.blocks_shipped (List.length blocks);
  Obs.Metric.add M.bytes_shipped response.bytes;
  record_answer t response;
  response

(* ------------------------------------------------------------------ *)
(* Mitigation support: dummy fetches and padded answers                *)

let block_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.blocks_by_id []
  |> List.sort compare

(* Cover traffic: ship the requested blocks verbatim.  Unknown ids are
   skipped — a dishonest client probing the id space learns only what
   the block universe already reveals. *)
let fetch t ids =
  Obs.span t.trace "server.fetch" @@ fun () ->
  let blocks =
    List.sort_uniq compare ids
    |> List.filter_map (fun id -> Hashtbl.find_opt t.blocks_by_id id)
  in
  let response =
    { blocks; bytes = block_bytes blocks; candidate_intervals = 0;
      btree_hits = 0 }
  in
  Obs.Metric.add M.blocks_shipped (List.length blocks);
  Obs.Metric.add M.bytes_shipped response.bytes;
  record_answer t response;
  response

(* Answer a query, then widen the shipment with the requested pad
   blocks.  The result stays a superset of the honest answer, so the
   client's filtering still yields byte-identical answers. *)
let answer_padded t query ~extra =
  let real = answer t query in
  let have = Hashtbl.create 64 in
  List.iter (fun b -> Hashtbl.replace have b.Encrypt.id ()) real.blocks;
  let pad =
    List.sort_uniq compare extra
    |> List.filter_map (fun id ->
           if Hashtbl.mem have id then None
           else Hashtbl.find_opt t.blocks_by_id id)
  in
  let blocks =
    List.sort (fun a b -> compare a.Encrypt.id b.Encrypt.id) (real.blocks @ pad)
  in
  let pad_bytes = block_bytes pad in
  Obs.Metric.add M.blocks_shipped (List.length pad);
  Obs.Metric.add M.bytes_shipped pad_bytes;
  { real with blocks; bytes = real.bytes + pad_bytes }

(* ------------------------------------------------------------------ *)
(* Server-visible metadata summary (the planner's statistics source)   *)

type index_stats = {
  btree_entries : int;
  btree_height : int;
  key_lo : int64 option;
  key_hi : int64 option;
  table_tokens : int;
  universe_intervals : int;
  block_count : int;
}

let index_stats t =
  { btree_entries = Btree.length t.btree;
    btree_height = Btree.height t.btree;
    key_lo = Btree.min_key t.btree;
    key_hi = Btree.max_key t.btree;
    table_tokens = Hashtbl.length t.table;
    universe_intervals = t.universe_count;
    block_count = List.length t.block_table }
