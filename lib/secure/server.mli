(** The untrusted server's query engine (Section 6.2).

    The server stores only what {!create} receives: the DSI index
    table, the encryption block table, the value B-tree and the
    ciphertext blocks.  Answering a translated query proceeds exactly
    as the paper's three steps:

    + look up every query node's token(s) in the DSI table and prune
      the interval lists with structural joins along the query tree
      (with back-propagation through predicate chains);
    + resolve each value constraint through the B-tree into a set of
      allowed targets (blocks or plaintext leaves) and prune the
      constrained node's intervals against it;
    + map the surviving intervals to the encryption blocks that must be
      shipped: every block whose representative interval contains or
      equals a surviving interval, plus every block lying inside a
      surviving interval of the distinguished (output) node — those are
      needed to reconstruct answers whose subtrees contain nested
      blocks.

    The response is a superset of what the query needs (false positives
    are filtered by the client), never a subset. *)

type t

type response = {
  blocks : Encrypt.block list;   (** ciphertexts shipped to the client *)
  bytes : int;                   (** transmission size, headers included *)
  candidate_intervals : int;     (** intervals surviving per query node, summed *)
  btree_hits : int;              (** value-index entries touched *)
}

val create :
  ?trace:Obs.Trace.t ->
  dsi_table:(string * Dsi.Interval.t list) list ->
  block_table:(int * Dsi.Interval.t) list ->
  btree:Metadata.target Btree.t ->
  blocks:Encrypt.block list ->
  unit ->
  t
(** [?trace] injects a tracer for the server's evaluation spans
    ([server.answer] → [server.prune], [server.select_blocks]); without
    it a disabled tracer is used and spans cost one boolean test. *)

val of_metadata : ?trace:Obs.Trace.t -> Metadata.t -> Encrypt.block list -> t
(** Convenience constructor from the server-visible halves: the
    (declassified) metadata tables and the ciphertext blocks, as
    produced by {!Encrypt.server_blocks}.  The server never receives
    an {!Encrypt.db} — that record keeps the plaintext document. *)

val answer : t -> Squery.path -> response

val answer_extreme :
  t -> Squery.path -> key_range:(int64 * int64) -> direction:[ `Min | `Max ] ->
  response
(** MIN/MAX evaluation (Section 6.4): finds the extreme value-index
    entry in [key_range] compatible with the query's distinguished
    candidates and ships at most that one block.  Plaintext candidates
    need no shipping — they are in the skeleton.  The client combines
    both sides. *)

type step_report = {
  step_index : int;
  axis : Xpath.Ast.axis;
  raw_candidates : int;       (** intervals fetched from the DSI table *)
  surviving_candidates : int; (** after joins and predicate filtering *)
}

val explain : t -> Squery.path -> step_report list
(** Query-plan introspection: per main-chain step, how many intervals
    the token lookup produced and how many survived structural joins
    and predicate filtering.  Evaluation work is the same as
    {!answer}'s pruning phase; no blocks are selected. *)

val all_blocks : t -> Encrypt.block list
(** Everything — the naive method's response. *)

val block_ids : t -> int list
(** Ids of every stored block, sorted — the block universe a padding
    envelope draws from.  Block ids are already server-visible. *)

val fetch : t -> int list -> response
(** Cover traffic ({!Protocol.Fetch}): ship the requested blocks
    verbatim, unknown ids skipped.  No index work is done
    ([candidate_intervals] and [btree_hits] are 0). *)

val answer_padded : t -> Squery.path -> extra:int list -> response
(** {!answer} widened with the requested pad blocks
    ({!Protocol.Padded}).  The shipment remains a superset of the
    honest answer, so client-side filtering yields byte-identical
    answers; only the traffic shape changes. *)

val stored_bytes : t -> int
(** Ciphertext bytes held by the server (headers included). *)

(** {1 Engine support}

    Building blocks of {!answer}, exposed so an external evaluation
    engine ({!module:Engine}) can re-order structural-join steps and
    memoise intermediate results while delegating every join and
    predicate decision to the same code paths {!answer} uses.  All
    inputs and outputs are ciphertext artifacts (DSI intervals, Vernam
    tokens, OPESS ranges) — nothing here widens the server's view. *)

type eval_state = {
  mutable touched : int;
      (** surviving intervals, summed over query nodes *)
  mutable hits : int;  (** B-tree entries touched *)
  mutable witnesses : Dsi.Interval.t list;
      (** every surviving interval, for block selection *)
}

val new_state : unit -> eval_state

val add_hits : eval_state -> int -> unit

val register : eval_state -> Dsi.Interval.t list -> unit
(** Record a step's survivors: counts them and adds them to the
    witness set. *)

val lookup : t -> Squery.test -> Dsi.Interval.t list
(** DSI-table intervals of a test, sorted by lower endpoint and
    duplicate-free. *)

val test_count : t -> Squery.test -> int
(** Candidate count of a test without materialising the token merge —
    the planner's selectivity input.  Multi-token sums may
    double-count; exact for the common single-token case. *)

val join_forward :
  t -> Dsi.Interval.t list option -> Xpath.Ast.axis -> Dsi.Interval.t list ->
  Dsi.Interval.t list
(** Prune a step's raw candidates against the surviving origin set
    ([None] is the virtual document node of an absolute path). *)

val join_backward :
  t -> Dsi.Interval.t list -> Xpath.Ast.axis -> Dsi.Interval.t list ->
  Dsi.Interval.t list
(** Tighten an origin set to the members with a surviving successor —
    the sound direction for pre-applying a selective later step. *)

val btree_targets :
  t -> (int64 * int64) list -> Metadata.target list * int
(** Allowed targets of a value constraint (union of B-tree range
    scans) and the number of entries touched. *)

val filter_by_targets :
  t -> Dsi.Interval.t list -> Metadata.target list -> Dsi.Interval.t list
(** Keep candidates compatible with at least one allowed target. *)

val filter_by_predicate :
  t -> eval_state -> Dsi.Interval.t list -> Squery.predicate ->
  Dsi.Interval.t list
(** Filter a candidate set by one predicate, with back-propagation
    through the predicate's chain; chain survivors are registered as
    witnesses in [eval_state]. *)

val select_blocks :
  t ->
  witnesses:Dsi.Interval.t list ->
  distinguished:Dsi.Interval.t list ->
  candidate_intervals:int ->
  btree_hits:int ->
  response
(** Step 3 of {!answer}: map surviving intervals to the blocks that
    must ship (representative covers a witness, or representative lies
    inside a distinguished interval). *)

type index_stats = {
  btree_entries : int;          (** value-index size *)
  btree_height : int;
  key_lo : int64 option;        (** smallest OPESS key present *)
  key_hi : int64 option;        (** largest OPESS key present *)
  table_tokens : int;           (** distinct DSI-table entries *)
  universe_intervals : int;     (** total intervals across all entries *)
  block_count : int;
}

val index_stats : t -> index_stats
(** Summary of the server-visible metadata; everything a cost model may
    read is derived from what the server already stores. *)
