(** The data owner's side: query translation and post-processing
    (Sections 6.1 and 6.4).

    The client owns the master key (hence all derived keys and OPESS
    catalogs) and caches the public skeleton it uploaded at setup
    (indexed once).  Per query it (1) translates tags via the Vernam
    pads and value literals via OPESS ranges, (2) decrypts the returned
    blocks and removes decoys, and (3) evaluates the original query
    over the composite "skeleton + decrypted blocks" view
    ({!Composite}) — guaranteeing [Q(δ(Qs(η(D)))) = Q(D)] while doing
    work proportional to the data returned. *)

type t

type answer = Xmlcore.Tree.t
(** An answer subtree (also a decrypted block's payload).  The alias
    lets modules above the client — notably {!module:Engine} — handle
    decrypted material opaquely without referencing the plaintext
    document layer themselves. *)

val create : keys:Crypto.Keys.t -> Metadata.t -> Encrypt.db -> t
(** Build the client state after setup ({!Metadata.build} output plus
    the encrypted database it uploaded). *)

val keys : t -> Crypto.Keys.t

val decrypt_block : t -> Encrypt.block -> answer
(** Decrypt one block with the client's derived keys (decoys are {e
    not} removed here — {!evaluate_with} ignores them).
    @raise Encrypt.Tampered when authentication fails. *)

val translate : t -> Xpath.Ast.path -> Squery.path
(** Translate a plaintext XPath query into the server IR.
    @raise Invalid_argument for comparisons whose attribute cannot be
    determined (wildcard last step). *)

val aggregate_range : t -> Xpath.Ast.path -> (int64 * int64) option
(** B-tree key range covering the query's output attribute (for MIN/MAX
    evaluation); [None] when the output is not a catalogued leaf
    attribute. *)

val decrypt_blocks : t -> Encrypt.block list -> Xmlcore.Tree.t list
(** Decrypt blocks, removing decoys (exposed so the cost model can time
    decryption separately from post-processing). *)

val evaluate_with :
  t -> decrypted:(int * Xmlcore.Tree.t) list -> Xpath.Ast.path -> Xmlcore.Tree.t list
(** Evaluate the original query over the composite view built from the
    given decrypted blocks; returns answer subtrees in document
    order. *)

val evaluate_union_with :
  t -> decrypted:(int * Xmlcore.Tree.t) list -> Xpath.Ast.path list ->
  Xmlcore.Tree.t list
(** Union query over one composite view: node-level deduplication, so a
    node matched by several branches appears once. *)

val postprocess : t -> blocks:Encrypt.block list -> Xpath.Ast.path -> Xmlcore.Tree.t list
(** {!decrypt_blocks} + {!evaluate_with} in one call. *)
