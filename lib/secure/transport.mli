(** The network between client and server, made explicit.

    The simulation runs in one process, but every exchange crosses this
    abstraction as raw bytes: the client hands over a framed request and
    either receives the framed response bytes or learns that the message
    was lost in transit ({!Dropped}).  Two implementations:

    - {!loopback} delivers perfectly to an in-process handler (the
      honest, reliable service provider the seed repo assumed);
    - {!faulty} wraps any transport with a deterministic fault schedule
      — drops, duplicates, truncations, bit-flips, reordering and
      latency — driven by a seeded {!Crypto.Prng}, so every chaos run
      is byte-for-byte reproducible.

    The faulty wrapper knows nothing about frame formats: it mangles
    opaque bytes.  Detection and recovery are entirely {!Session}'s
    job, which is exactly the layering a real DAS deployment needs. *)

exception Dropped
(** Raised by {!exchange} when the request or the response is lost in
    transit (the synchronous analogue of a receive timeout). *)

type t

type profile = {
  drop : float;        (** P(lose the message), per direction *)
  duplicate : float;   (** P(deliver the request twice) *)
  truncate : float;    (** P(cut the message short), per direction *)
  flip : float;        (** P(flip one bit), per direction *)
  reorder : float;     (** P(swap the response with one in flight) *)
  delay_ms : float * float;
      (** uniform simulated latency range added per exchange *)
}

val calm : profile
(** All rates zero, no delay. *)

val chaos : ?drop:float -> ?duplicate:float -> ?truncate:float ->
  ?flip:float -> ?reorder:float -> ?delay_ms:float * float -> unit -> profile
(** [calm] with the given rates overridden. *)

type stats = {
  exchanges : int;          (** calls to {!exchange} *)
  delivered : int;          (** responses returned to the caller *)
  dropped_requests : int;
  dropped_responses : int;
  duplicated : int;
  truncated : int;
  flipped : int;
  reordered : int;          (** stale responses delivered or stashed *)
  bytes_up : int;           (** request bytes put on the wire *)
  bytes_down : int;         (** response bytes taken off the wire *)
  delay_ms : float;         (** total simulated latency *)
}

val loopback : (string -> string) -> t
(** [loopback handler] delivers every request to [handler] and returns
    its response unchanged.  [handler] may itself raise {!Dropped} (a
    server discarding an unverifiable frame). *)

val faulty : ?profile:profile -> seed:int64 -> t -> t
(** [faulty ~profile ~seed inner] injects faults around [inner].
    Requests may be truncated, bit-flipped or dropped before delivery;
    delivered requests may be duplicated (the server sees both copies);
    responses may be truncated, bit-flipped, dropped or swapped with a
    stale response still "in flight".  The schedule is a pure function
    of [seed] and the call sequence. *)

val exchange : t -> string -> string
(** One synchronous round trip.  @raise Dropped on simulated loss. *)

val stats : t -> stats
(** Cumulative counters (all zero except [exchanges]/[delivered]/bytes
    for a loopback). *)
