module Doc = Xmlcore.Doc
module Tree = Xmlcore.Tree

type block = {
  id : int;
  root : Doc.node;
  ciphertext : string;
  plaintext_bytes : int;
  node_count : int;
  has_decoy : bool;
  generation : int;
}

type db = {
  doc : Doc.t;
  scheme : Scheme.t;
  blocks : block list;
  skeleton : Tree.t;
  encrypted_tags : string list;
  plaintext_tags : string list;
  node_block : int array;
  block_by_id : block option array;
}

(* Models the EncryptedData / EncryptionMethod / CipherValue wrapper
   elements of W3C XML-Encryption around every block. *)
let block_header_bytes = 120

let placeholder_prefix = "_enc_block_"

let placeholder_tag id = placeholder_prefix ^ string_of_int id

let placeholder_id tag =
  let n = String.length placeholder_prefix in
  if String.length tag > n && String.sub tag 0 n = placeholder_prefix then
    int_of_string_opt (String.sub tag n (String.length tag - n))
  else None

let decoy_attribute = "@_decoy"

let decoy_value ~keys ~root =
  let raw = Crypto.Hmac.mac ~key:(Crypto.Keys.decoy_key keys) (string_of_int root) in
  (* Short alphanumeric salt, like the paper's "xyya". *)
  String.init 6 (fun i -> Char.chr (Char.code 'a' + (Char.code raw.[i] mod 26)))

let add_decoy ~keys ~root tree =
  match tree with
  | Tree.Element (tag, children) ->
    Tree.Element (tag, Tree.leaf decoy_attribute (decoy_value ~keys ~root) :: children)
  | Tree.Text _ -> assert false

let strip_decoy tree =
  match tree with
  | Tree.Element (tag, children) ->
    let children =
      List.filter
        (function
          | Tree.Element (t, _) -> not (String.equal t decoy_attribute)
          | Tree.Text _ -> true)
        children
    in
    Tree.Element (tag, children)
  | Tree.Text _ -> tree

exception Tampered of int

let mac_tag_bytes = 16

(* Truncated encrypt-then-MAC tag binding the ciphertext to its block
   id and content generation (prevents corruption, block-swapping and
   rollback to a superseded generation).  Generation 0 keeps the
   historical MAC input so freshly hosted blocks stay byte-identical;
   the "#" separator cannot collide with it because ids render as bare
   digits. *)
let block_mac ~keys ~id ?(generation = 0) ciphertext =
  let input =
    if generation = 0 then Printf.sprintf "%d\x00%s" id ciphertext
    else Printf.sprintf "%d#%d\x00%s" id generation ciphertext
  in
  String.sub
    (Crypto.Hmac.mac ~key:(Crypto.Keys.derive keys "block-mac") input)
    0 mac_tag_bytes

let encrypt_one ~keys ?(generation = 0) doc ~id root =
  let has_decoy = Doc.is_leaf doc root in
  let subtree = Doc.subtree doc root in
  let payload = if has_decoy then add_decoy ~keys ~root subtree else subtree in
  let serialized = Xmlcore.Printer.tree_to_string payload in
  let ciphertext =
    let body =
      Crypto.Cipher.encrypt (Crypto.Keys.block_cipher keys)
        ~nonce:(Crypto.Keys.block_nonce keys ~generation ~block_id:id ())
        serialized
    in
    body ^ block_mac ~keys ~id ~generation body
  in
  { id;
    root;
    ciphertext;
    plaintext_bytes = String.length serialized;
    node_count = Doc.subtree_node_count doc root + (if has_decoy then 1 else 0);
    has_decoy;
    generation }

let encrypt_block = encrypt_one

(* Rebuild the tree with block subtrees replaced by placeholders.
   [block_at] maps a node id to its block id when the node is a block
   root. *)
let skeleton_of doc ~block_at =
  let rec rebuild n =
    match block_at n with
    | Some id -> Tree.element (placeholder_tag id) []
    | None ->
      (match Doc.value doc n with
       | Some v -> Tree.leaf (Doc.tag doc n) v
       | None -> Tree.element (Doc.tag doc n) (List.map rebuild (Doc.children doc n)))
  in
  rebuild (Doc.root doc)

(* Shared constructor: every [db] — freshly encrypted or restored from
   disk — goes through here so the derived node→block table exists by
   construction.  Marking each block's [descendant_or_self] run once
   makes [block_of_node] an O(1) array read instead of the old
   O(nodes×blocks) ancestor scan. *)
let make_db ~doc ~scheme ~blocks ~skeleton ~encrypted_tags ~plaintext_tags =
  let node_block = Array.make (Doc.node_count doc) (-1) in
  List.iter
    (fun b ->
      List.iter (fun n -> node_block.(n) <- b.id) (Doc.descendant_or_self doc b.root))
    blocks;
  (* Ids are dense [0..n-1] at setup but become sparse once incremental
     deletes drop whole blocks (dropped ids are never reused — the
     engine's per-generation cache keys depend on that), so the lookup
     table is an option array over the id range. *)
  let max_id = List.fold_left (fun acc b -> Int.max acc b.id) (-1) blocks in
  let block_by_id = Array.make (max_id + 1) None in
  List.iter
    (fun b ->
      if b.id < 0 then invalid_arg "Encrypt.make_db: negative block id";
      if block_by_id.(b.id) <> None then
        invalid_arg "Encrypt.make_db: duplicate block id";
      block_by_id.(b.id) <- Some b)
    blocks;
  { doc; scheme; blocks; skeleton; encrypted_tags; plaintext_tags;
    node_block; block_by_id }

(* The server's half of the split: ciphertext blocks only.  The rest
   of the [db] (plaintext document, scheme, tag partitions) stays on
   the client side of the wire. *)
let server_blocks db = db.blocks

(* The derived-key memos inside [Keys] are mutable; touch every label
   the per-block work needs before fanning out so parallel workers
   only ever read them. *)
let prewarm_block_keys ~keys =
  ignore (Crypto.Keys.block_cipher keys);
  ignore (Crypto.Keys.derive keys "block-mac");
  ignore (Crypto.Keys.decoy_key keys)

(* Assemble a db around a document and its (already encrypted) blocks:
   recompute the skeleton and the tag partition from the plaintext —
   pure bookkeeping, no cryptography.  Shared by fresh encryption and
   the incremental delta path (which re-encrypts only touched blocks
   and reuses every other ciphertext verbatim). *)
let reassemble ~doc ~scheme ~blocks =
  let root_to_block = Hashtbl.create 64 in
  List.iter (fun b -> Hashtbl.replace root_to_block b.root b.id) blocks;
  let skeleton = skeleton_of doc ~block_at:(Hashtbl.find_opt root_to_block) in
  (* Partition tags by whether their nodes fall inside blocks. *)
  let encrypted = Hashtbl.create 64 and plaintext = Hashtbl.create 64 in
  Doc.iter doc (fun n ->
      let inside = Scheme.in_some_block doc scheme n in
      let table = if inside then encrypted else plaintext in
      Hashtbl.replace table (Doc.tag doc n) ());
  let tags table =
    Hashtbl.fold (fun tag () acc -> tag :: acc) table [] |> List.sort String.compare
  in
  make_db ~doc ~scheme ~blocks ~skeleton ~encrypted_tags:(tags encrypted)
    ~plaintext_tags:(tags plaintext)

let encrypt ?pool ~keys doc scheme =
  prewarm_block_keys ~keys;
  let roots = Array.of_list scheme.Scheme.block_roots in
  let encrypt_at id root = encrypt_one ~keys doc ~id root in
  (* Each block's cipher+MAC depends only on (id, subtree): the nonce
     is keyed by block id, so evaluation order is irrelevant and the
     pooled path produces byte-identical ciphertexts. *)
  let blocks_arr =
    match pool with
    | Some p -> Parallel.Pool.mapi p encrypt_at roots
    | None -> Array.mapi encrypt_at roots
  in
  reassemble ~doc ~scheme ~blocks:(Array.to_list blocks_arr)

(* Re-encrypt a delta's touched blocks under bumped generations.  Like
   [encrypt], the output is encrypt-then-MAC ciphertext only — which is
   why this is a declassification boundary in the secret-flow policy —
   and nonces are keyed by (id, generation), so the pooled path is
   byte-identical to the sequential one. *)
let reencrypt_blocks ?pool ~keys doc jobs =
  prewarm_block_keys ~keys;
  let re (b, root) =
    encrypt_block ~keys ~generation:(b.generation + 1) doc ~id:b.id root
  in
  match pool with
  | Some p when Parallel.Pool.size p > 1 ->
    Parallel.Pool.mapi p (fun _ job -> re job) jobs
  | Some _ | None -> Array.map re jobs

let decrypt_block ~keys block =
  let total = String.length block.ciphertext in
  if total < mac_tag_bytes then raise (Tampered block.id);
  let body = String.sub block.ciphertext 0 (total - mac_tag_bytes) in
  let tag = String.sub block.ciphertext (total - mac_tag_bytes) mac_tag_bytes in
  if
    not
      (Crypto.Eq.constant_time tag
         (block_mac ~keys ~id:block.id ~generation:block.generation body))
  then raise (Tampered block.id);
  let serialized =
    Crypto.Cipher.decrypt (Crypto.Keys.block_cipher keys)
      ~nonce:
        (Crypto.Keys.block_nonce keys ~generation:block.generation
           ~block_id:block.id ())
      body
  in
  let tree = Xmlcore.Parser.parse serialized in
  if block.has_decoy then strip_decoy tree else tree

let block_id_of_node db n =
  let id = db.node_block.(n) in
  if id < 0 then None else Some id

let block_of_node db n =
  match block_id_of_node db n with
  | None -> None
  | Some id -> db.block_by_id.(id)

let encrypted_bytes db =
  List.fold_left
    (fun acc b -> acc + String.length b.ciphertext + block_header_bytes)
    0 db.blocks

let server_bytes db =
  String.length (Xmlcore.Printer.tree_to_string db.skeleton) + encrypted_bytes db
