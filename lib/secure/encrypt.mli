(** Applying an encryption scheme to a document (Section 4.1).

    Each block root's subtree is serialized, salted with an encryption
    decoy when the root is a leaf element, and CBC-encrypted under the
    client's block key with a per-block nonce.  What remains in
    plaintext — the {e skeleton} — has each block replaced by an
    [_enc_block_<id>] placeholder element.  The skeleton plus the
    ciphertext blocks is exactly what the server stores (along with the
    metadata of {!Metadata}).

    Per-block framing overhead (the W3C XML-Encryption wrapper elements
    in the paper's setup) is modelled by {!block_header_bytes}; it is
    what makes the [Sub] scheme's output largest in experiment E6. *)

type block = {
  id : int;
  root : Xmlcore.Doc.node;          (** subtree root in the original document *)
  ciphertext : string;
  plaintext_bytes : int;            (** serialized subtree size, decoy included *)
  node_count : int;                 (** block size |b|, decoy included *)
  has_decoy : bool;
  generation : int;                 (** content version; 0 = freshly hosted *)
}

type db = {
  doc : Xmlcore.Doc.t;              (** the original — client side only *)
  scheme : Scheme.t;
  blocks : block list;              (** ordered by id = position in scheme *)
  skeleton : Xmlcore.Tree.t;        (** public part with placeholders *)
  encrypted_tags : string list;     (** tags occurring inside blocks *)
  plaintext_tags : string list;     (** tags occurring outside blocks *)
  node_block : int array;           (** node id → containing block id, -1 if none *)
  block_by_id : block option array; (** blocks indexed by block id; [None] at
                                        ids dropped by incremental deletes *)
}

val block_header_bytes : int
(** Fixed per-block framing overhead added to stored/transmitted
    sizes. *)

val placeholder_tag : int -> string
(** [placeholder_tag id] = ["_enc_block_<id>"]. *)

val placeholder_id : string -> int option
(** Inverse of {!placeholder_tag}. *)

val decoy_attribute : string
(** The ["@"]-prefixed tag of decoy children ("_decoy"). *)

exception Tampered of int
(** Raised by {!decrypt_block} when a block's authentication tag does
    not verify (block id attached). *)

val make_db :
  doc:Xmlcore.Doc.t ->
  scheme:Scheme.t ->
  blocks:block list ->
  skeleton:Xmlcore.Tree.t ->
  encrypted_tags:string list ->
  plaintext_tags:string list ->
  db
(** Assemble a [db], computing the derived node→block lookup tables.
    Every construction site (fresh encryption, restore from disk,
    incremental delta) must go through here so {!block_of_node} stays
    O(1).  Ids are dense [0..n-1] at setup but may be sparse after
    incremental deletes; dropped ids are never reused.
    @raise Invalid_argument on negative or duplicate block ids. *)

val encrypt_block :
  keys:Crypto.Keys.t ->
  ?generation:int ->
  Xmlcore.Doc.t ->
  id:int ->
  Xmlcore.Doc.node ->
  block
(** Encrypt a single subtree as a block.  [generation] (default [0])
    versions the nonce and MAC so incremental re-encryption of the same
    block id with new content never reuses a nonce.  The generation-0
    output is byte-identical to what {!encrypt} produces at setup. *)

val reassemble :
  doc:Xmlcore.Doc.t -> scheme:Scheme.t -> blocks:block list -> db
(** Assemble a [db] around an edited document and its already-encrypted
    blocks (roots remapped to the new numbering): the skeleton and tag
    partition are recomputed from the plaintext, no cryptography runs.
    The incremental delta path uses this to reuse untouched ciphertexts
    verbatim. *)

val encrypt :
  ?pool:Parallel.Pool.t -> keys:Crypto.Keys.t -> Xmlcore.Doc.t -> Scheme.t -> db
(** Encrypt the document under the scheme.  Blocks are
    encrypt-then-MAC: a truncated HMAC tag over (block id, ciphertext)
    is appended, so corruption and block-swapping are detected instead
    of decrypting garbage.

    When [pool] is given, per-block encryption fans out across its
    domains.  Nonces are keyed by block id and results merge in block
    order, so the output is byte-identical to the sequential path. *)

val reencrypt_blocks :
  ?pool:Parallel.Pool.t ->
  keys:Crypto.Keys.t ->
  Xmlcore.Doc.t ->
  (block * Xmlcore.Doc.node) array ->
  block array
(** Re-encrypt each [(old block, new root)] job against the edited
    document under generation [old.generation + 1].  This is the delta
    path's only cryptographic step; its output is encrypt-then-MAC
    ciphertext, so — like {!encrypt} — the secret-flow policy declares
    it a declassification boundary.  Fans out across [pool] when it has
    more than one domain; byte-identical to the sequential path. *)

val server_blocks : db -> block list
(** The ciphertext half of the database — exactly what may be shipped
    to the untrusted server.  A [db] as a whole is a client-side value
    (it keeps the plaintext document for post-processing); the blocks
    are encrypt-then-MAC ciphertext and carry no key or plaintext
    material, which is why the secret-flow policy declares this
    projection a declassifier (see docs/STATIC_ANALYSIS.md). *)

val prewarm_block_keys : keys:Crypto.Keys.t -> unit
(** Derive (and thereby memoise) every subkey that per-block
    encryption and decryption touch.  The memo table inside
    {!Crypto.Keys} is mutable, so any caller about to decrypt blocks
    on several domains must warm the ring first; after that, workers
    only read it.  [encrypt] warms its ring itself. *)

val decrypt_block : keys:Crypto.Keys.t -> block -> Xmlcore.Tree.t
(** Verify, decrypt and parse one block; the decoy (if any) is removed.
    @raise Tampered when the authentication tag fails. *)

val block_of_node : db -> Xmlcore.Doc.node -> block option
(** The block containing the node (as root or inner node), if any.
    O(1): served from the precomputed node→block table. *)

val block_id_of_node : db -> Xmlcore.Doc.node -> int option
(** Like {!block_of_node} but returns just the block id. *)

val server_bytes : db -> int
(** Total size the server stores: skeleton plus all ciphertexts plus
    per-block headers. *)

val encrypted_bytes : db -> int
(** Ciphertext bytes only (headers included). *)
