exception Error of string

module W = struct
  let i64 b v =
    for i = 0 to 7 do
      Buffer.add_char b
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (i * 8)) land 0xFF))
    done

  let int b v = i64 b (Int64.of_int v)
  let float b v = i64 b (Int64.bits_of_float v)
  let bool b v = Buffer.add_char b (if v then '\001' else '\000')

  let string b s =
    int b (String.length s);
    Buffer.add_string b s

  let list b f items =
    int b (List.length items);
    List.iter (f b) items
end

module R = struct
  type t = { data : string; mutable pos : int }

  let make data pos = { data; pos }

  let need r n =
    if r.pos + n > String.length r.data then raise (Error "truncated input")

  let i64 r =
    need r 8;
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (Char.code r.data.[r.pos + i]))
    done;
    r.pos <- r.pos + 8;
    !v

  let int r =
    let v = Int64.to_int (i64 r) in
    if v < 0 || v > 0x3FFFFFFFFFFF then raise (Error "implausible length");
    v

  let float r = Int64.float_of_bits (i64 r)

  let bool r =
    need r 1;
    let c = r.data.[r.pos] in
    r.pos <- r.pos + 1;
    c = '\001'

  let string r =
    let n = int r in
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let list r f =
    let n = int r in
    (* Every list element in the formats built on this codec consumes
       at least one byte, so a count exceeding the remaining bytes is
       adversarial — reject it before materialising anything. *)
    if n > String.length r.data - r.pos then raise (Error "implausible list length");
    List.init n (fun _ -> f r)

  let at_end r = r.pos = String.length r.data
end
