(** Plan-directed server evaluation.

    {!run} computes the same kind of response as
    {!Secure.Server.answer} — and an answer-equivalent one: every block
    a correct final answer needs is shipped — but follows the plan's
    order: the pivot's value-range predicates are hoisted, the
    tightened pivot back-propagates through
    {!Secure.Server.join_backward} to shrink earlier seeds, and each
    step's predicates apply in the plan's order.  All candidate
    decisions are delegated to {!Secure.Server} primitives, so the
    engine introduces no second implementation of join semantics. *)

type step_actual = {
  index : int;
  axis : Xpath.Ast.axis;
  estimated : float;   (** the plan's selected estimate for this step *)
  actual_raw : int;    (** seed candidates actually scanned (after any
                           pre-tightening) *)
  surviving : int;     (** after joins and predicates *)
}

type run = {
  response : Secure.Server.response;
  steps : step_actual list;
}

val application_order : int list -> int -> int list
(** Sanitised predicate order: plan order with invalid indices dropped
    and missing ones appended. *)

val run : Secure.Server.t -> Plan.t -> Secure.Squery.path -> run
