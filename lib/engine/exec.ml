module Server = Secure.Server
module Squery = Secure.Squery

type step_actual = {
  index : int;
  axis : Xpath.Ast.axis;
  estimated : float;
  actual_raw : int;
  surviving : int;
}

type run = {
  response : Server.response;
  steps : step_actual list;
}

(* Predicate application order: the plan's order, with out-of-range or
   duplicate indices dropped (impossible for a plan compiled from this
   query, but a cached plan is data) and any index the order misses
   appended — no predicate is ever skipped. *)
let application_order plan_order n =
  let seen = Array.make (Int.max 1 n) false in
  let picked =
    List.filter
      (fun j ->
        if j >= 0 && j < n && not seen.(j) then begin
          seen.(j) <- true;
          true
        end
        else false)
      plan_order
  in
  let missed = ref [] in
  for j = n - 1 downto 0 do
    if not seen.(j) then missed := j :: !missed
  done;
  picked @ !missed

let step_plans plan n =
  let arr = Array.of_list plan.Plan.steps in
  fun i -> if i < Array.length arr && i < n then Some arr.(i) else None

(* Evaluate [squery] under [plan], delegating every join, predicate
   and block-selection decision to {!Secure.Server}'s own primitives —
   the plan only changes the order work happens in, so the shipped
   block set stays a superset of what the client needs (the pivot
   back-propagation removes only candidates with no successor, which
   can support no answer). *)
let run server plan (squery : Squery.path) =
  let state = Server.new_state () in
  let steps = Array.of_list squery.Squery.steps in
  let n = Array.length steps in
  let plan_of = step_plans plan n in
  let seeds = Array.map (fun s -> Server.lookup server s.Squery.test) steps in
  let pivot = plan.Plan.pivot in
  let pre_applied = Hashtbl.create 4 in
  if pivot > 0 && pivot < n then begin
    (* Hoist the pivot's own value-range predicates... *)
    (match plan_of pivot with
     | None -> ()
     | Some sp ->
       List.iter
         (fun j ->
           match List.nth_opt steps.(pivot).Squery.predicates j with
           | Some (Squery.Value (q, Squery.Ranges ranges))
             when q.Squery.steps = [] ->
             let targets, touched = Server.btree_targets server ranges in
             Server.add_hits state touched;
             seeds.(pivot) <- Server.filter_by_targets server seeds.(pivot) targets;
             Hashtbl.replace pre_applied j ()
           | Some _ | None -> ())
         sp.Plan.pre_applied);
    (* ...then back-propagate the tightened pivot so every earlier
       step's forward join starts from a smaller seed. *)
    for j = pivot downto 1 do
      seeds.(j - 1) <-
        Server.join_backward server seeds.(j - 1) steps.(j).Squery.axis seeds.(j)
    done
  end;
  let reports = ref [] in
  let rec forward origin i =
    if i >= n then []
    else begin
      let step = steps.(i) in
      let joined = Server.join_forward server origin step.Squery.axis seeds.(i) in
      let pred_arr = Array.of_list step.Squery.predicates in
      let order =
        match plan_of i with
        | None -> Plan.identity_order (Array.length pred_arr)
        | Some sp -> application_order sp.Plan.pred_order (Array.length pred_arr)
      in
      let preds =
        List.filter_map
          (fun j ->
            (* At the pivot, predicates hoisted before back-propagation
               must not apply twice. *)
            if i = pivot && Hashtbl.mem pre_applied j then None
            else Some pred_arr.(j))
          order
      in
      let filtered =
        List.fold_left
          (fun cands p -> Server.filter_by_predicate server state cands p)
          joined preds
      in
      Server.register state filtered;
      (let estimated =
         match plan_of i with Some sp -> sp.Plan.est_selected | None -> 0.0
       in
       reports :=
         { index = i;
           axis = step.Squery.axis;
           estimated;
           actual_raw = List.length seeds.(i);
           surviving = List.length filtered }
         :: !reports);
      filtered :: forward (Some filtered) (i + 1)
    end
  in
  let levels = forward None 0 in
  let distinguished =
    match List.rev levels with
    | last :: _ -> last
    | [] -> []
  in
  let response =
    Server.select_blocks server ~witnesses:state.Server.witnesses ~distinguished
      ~candidate_intervals:state.Server.touched ~btree_hits:state.Server.hits
  in
  { response; steps = List.rev !reports }
