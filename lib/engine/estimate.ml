module Server = Secure.Server
module Squery = Secure.Squery

(* Everything here is computed from {!Secure.Server.index_stats} and
   {!Secure.Server.test_count} — statistics the untrusted server
   already derives from its own view (token entry counts, B-tree
   shape).  No plaintext reaches the cost model. *)

type t = {
  server : Server.t;
  index : Server.index_stats;
  key_span : float;  (* width of the populated OPESS key space, >= 1 *)
}

let of_server server =
  let index = Server.index_stats server in
  let key_span =
    match index.Server.key_lo, index.Server.key_hi with
    | Some lo, Some hi -> Float.max 1.0 (Int64.to_float (Int64.sub hi lo) +. 1.0)
    | Some _, None | None, Some _ | None, None -> 1.0
  in
  { server; index; key_span }

let test_count t test = float_of_int (Server.test_count t.server test)

(* Uniform-density model over the populated key span: expected B-tree
   entries matched by one OPESS range. *)
let range_count t (lo, hi) =
  let entries = float_of_int t.index.Server.btree_entries in
  if entries <= 0.0 || Int64.compare hi lo < 0 then 0.0
  else
    let width = Int64.to_float (Int64.sub hi lo) +. 1.0 in
    Float.min entries (entries /. t.key_span *. width)

let range_selectivity t ranges =
  let entries = float_of_int t.index.Server.btree_entries in
  if entries <= 0.0 then 0.0
  else
    let expected = List.fold_left (fun acc r -> acc +. range_count t r) 0.0 ranges in
    Float.min 1.0 (expected /. entries)

(* Work of walking a predicate chain: sum of its steps' lookup sizes. *)
let path_lookup_cost t q =
  List.fold_left
    (fun acc step -> acc +. test_count t step.Squery.test)
    0.0 q.Squery.steps

(* (cost, selectivity) of applying one predicate to a candidate set.
   Selectivities are heuristic — they only rank steps and predicates,
   never affect which candidates survive. *)
let rec predicate t = function
  | Squery.P_and (a, b) ->
    let ca, sa = predicate t a in
    let cb, sb = predicate t b in
    ca +. cb, Float.min sa sb
  | Squery.P_or (a, b) ->
    let ca, sa = predicate t a in
    let cb, sb = predicate t b in
    ca +. cb, Float.min 1.0 (sa +. sb)
  | Squery.P_not inner ->
    (* The server keeps every candidate under negation. *)
    let c, _ = predicate t inner in
    c, 1.0
  | Squery.Exists q -> path_lookup_cost t q, 0.5
  | Squery.Value (q, Squery.Unknown) ->
    (* Unindexed value: only the structural chain prunes. *)
    path_lookup_cost t q, (if q.Squery.steps = [] then 1.0 else 0.5)
  | Squery.Value (q, Squery.Ranges ranges) ->
    let sel = range_selectivity t ranges in
    let chain = path_lookup_cost t q in
    if q.Squery.steps = [] then chain, sel
    else
      (* Through a chain the range constrains a descendant, not the
         candidate itself — damp the selectivity accordingly. *)
      chain, Float.min 1.0 (sel *. 4.0)

type step_est = {
  raw : float;          (* DSI intervals the token lookup returns *)
  selectivity : float;  (* product over the step's predicates *)
  cost : float;         (* lookup + predicate-chain work *)
}

let step t s =
  let raw = test_count t s.Squery.test in
  let pred_cost, sel =
    List.fold_left
      (fun (c, sl) p ->
        let pc, ps = predicate t p in
        c +. pc, sl *. ps)
      (0.0, 1.0) s.Squery.predicates
  in
  { raw; selectivity = sel; cost = raw +. pred_cost }
