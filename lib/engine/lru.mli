(** Bounded least-recently-used map with hit/miss/eviction counters.

    The engine's three caches (compiled plans, server-side result
    memos, client-side decrypted blocks) are all instances of this one
    structure; a capacity of [0] disables storage entirely, turning
    every {!find} into a counted miss — that is how the engine's
    cache-disabled mode is implemented without a second code path. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** [create capacity]; negative capacities behave like [0]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry's recency. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Presence test that does {e not} touch recency or counters. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite; evicts the least recently used entry when the
    capacity is exceeded.  A no-op at capacity [0]. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Drop one entry if present.  Touches neither counters nor the
    recency of other entries — targeted invalidation (a superseded
    block generation) is bookkeeping, not a lookup. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry.  Counters survive (the invalidation story is part
    of what they measure); use {!reset_counters} for a clean slate. *)

val reset_counters : ('k, 'v) t -> unit
(** Zero the hit/miss/eviction counters without touching the entries.
    The engine calls this when a hosting is superseded, so stats always
    describe the current generation's artifacts. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int
val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int
