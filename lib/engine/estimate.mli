(** Selectivity and cost estimates from server-visible metadata only.

    Inputs are {!Secure.Server.test_count} (per-token DSI interval
    counts) and {!Secure.Server.index_stats} (B-tree entry count and
    populated key span, modelled as uniform density).  The estimates
    rank structural-join steps and predicates for the planner; they are
    never used to decide which candidates survive, so a wrong estimate
    can cost time but not correctness. *)

type t

val of_server : Secure.Server.t -> t
(** Snapshot the server's statistics.  Valid for one hosting
    generation — rebuild after {!Secure.System.update}. *)

val test_count : t -> Secure.Squery.test -> float

val range_count : t -> int64 * int64 -> float
(** Expected B-tree entries inside one OPESS range. *)

val range_selectivity : t -> (int64 * int64) list -> float
(** Expected fraction of B-tree entries covered by a range union,
    clamped to [[0, 1]]; [0.0] for the empty union. *)

val predicate : t -> Secure.Squery.predicate -> float * float
(** [(cost, selectivity)] of applying one predicate. *)

type step_est = {
  raw : float;          (** DSI intervals the token lookup returns *)
  selectivity : float;  (** product over the step's predicates *)
  cost : float;         (** lookup + predicate-chain work *)
}

val step : t -> Secure.Squery.step -> step_est
