(** Engine counter snapshot.

    Cache counters are hit/miss/eviction triples per cache (compiled
    plans, server-side result memos, client-side decrypted blocks);
    [invalidations] counts whole-cache flushes triggered by re-hosting
    ({!Secure.System.on_rehost}). *)

type t = {
  queries : int;
  plans_compiled : int;
  steps_reordered : int;
      (** pivot spans: number of steps whose evaluation order a
          compiled plan changed, summed over compilations *)
  invalidations : int;
  plan_hits : int;
  plan_misses : int;
  plan_evictions : int;
  result_hits : int;
  result_misses : int;
  result_evictions : int;
  block_hits : int;
  block_misses : int;
  block_evictions : int;
}

val zero : t

val plan_hit_rate : t -> float
val result_hit_rate : t -> float
val block_hit_rate : t -> float
(** Hits over hits+misses; [0.0] when the cache was never consulted. *)

val to_string : t -> string
