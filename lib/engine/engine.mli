(** Cost-based query-evaluation engine over the paper's protocol.

    Sits between {!Secure.System} (hosting lifecycle) and the
    {!Secure.Server} / {!Secure.Client} pair: translated queries are
    compiled into order-only {!Plan}s (pivot selection + predicate
    ordering from server-visible statistics), executed through the
    server's own join primitives by {!Exec}, and memoised in three
    caches —

    - {e plan cache}: wire request -> compiled plan (server side);
    - {e result memo}: wire request -> evaluated response (server side);
    - {e block cache}: (block id, generation) -> decrypted subtree
      (client side).

    Every cache key is a ciphertext artifact the server already
    observes (the encoded request of Vernam tokens and OPESS ranges, or
    a block id and its content generation); plaintext never reaches a
    key.  All three caches are flushed by the
    {!Secure.System.on_rehost} hook, so answers after {!update} /
    {!rotate} are computed against fresh artifacts only.  The
    incremental path ({!apply_delta}) instead invalidates selectively
    through {!Secure.System.on_delta}: the result memo is flushed, but
    compiled plans and the decrypted subtrees of untouched blocks stay
    warm — only the superseded (id, generation) entries are dropped.
    See docs/SECURITY.md ("What the engine's caches add") for the
    leakage analysis. *)

module Lru = Lru
module Stats = Stats
module Estimate = Estimate
module Plan = Plan
module Planner = Planner
module Exec = Exec

type config = {
  planner : bool;   (** [false]: identity plans (left-to-right) *)
  caches : bool;    (** [false]: every lookup is a counted bypass *)
  plan_capacity : int;
  result_capacity : int;
  block_capacity : int;
}

val default_config : config
(** planner and caches on; capacities 128 / 64 / 256. *)

type outcome =
  | Hit
  | Miss
  | Bypass  (** caches disabled by configuration *)

val outcome_to_string : outcome -> string

type t

val create : ?config:config -> Secure.System.t -> t
(** Bind an engine to a hosting and arm its invalidation hook. *)

val system : t -> Secure.System.t
(** The hosting currently bound (changes on {!update} / {!rotate}). *)

val registry : t -> Obs.Metric.registry
(** The engine's private (always-enabled) metric registry —
    [engine.queries], [engine.plans_compiled], [engine.steps_reordered].
    Reset wholesale by {!flush}, so its counters always describe the
    current hosting generation. *)

val update : t -> Secure.Update.edit -> Secure.System.setup_cost
(** {!Secure.System.update} + cache flush + re-bind, in one step: the
    old hosting's rehost hook flushes all three caches before the new
    hosting is attached. *)

val rotate : t -> new_master:string -> Secure.System.setup_cost

val apply_delta : t -> Secure.Update.edit -> Secure.System.delta_cost
(** {!Secure.System.apply_delta} + selective invalidation + re-bind.
    The old hosting's delta hook flushes the result memo and evicts
    only the touched blocks' (id, generation) cache entries; plans and
    untouched decrypted blocks survive, and no counters are reset
    (their survival across the update is part of the contract — see
    the cache-survival test).  When the system falls back to a full
    rebuild, the rehost hook fires instead and all caches flush as in
    {!update}. *)

val flush : t -> unit
(** Manual invalidation (counted like a rehost-triggered one). *)

val wire_request : t -> Xpath.Ast.path -> string
(** The ciphertext request encoding used as the plan/result cache key —
    exactly {!Secure.Protocol.encode_request} of the translated query,
    exposed so tests can assert the engine keys on nothing else. *)

type report = {
  plan : Plan.t;
  plan_outcome : outcome;
  result_outcome : outcome;
  steps : Exec.step_actual list;   (** estimated vs actual, per step *)
  request_bytes : int;
  block_hits : int;       (** blocks served from the client cache *)
  block_misses : int;     (** blocks shipped and decrypted *)
  translate_ms : float;
  plan_ms : float;
  server_ms : float;
  transmit_bytes : int;   (** request + blocks actually shipped *)
  decrypt_ms : float;
  postprocess_ms : float;
  blocks_returned : int;  (** blocks the response references *)
  blocks_decrypted : int;
  answer_count : int;
}

val server_decrypt_ms : report -> float
(** The E10 headline quantity: server evaluation + client decryption. *)

val evaluate_report : t -> Xpath.Ast.path -> Secure.Client.answer list * report
(** One full round trip through plan -> execute -> decrypt ->
    post-process.  Answers are exact (identical to
    {!Secure.System.evaluate}'s) for any planner/cache configuration:
    plans only reorder sound joins, and the client re-evaluates the
    original query over the decrypted view. *)

val evaluate : t -> Xpath.Ast.path -> Secure.Client.answer list

val evaluate_batch :
  t -> Xpath.Ast.path array -> (Secure.Client.answer list * report) array
(** Evaluate independent queries, fanning them across the system's
    domain pool (sequentially when it has none).  Answers at index [i]
    are exactly [evaluate_report t queries.(i)]'s; every cache and
    counter touch is serialised through an internal lock, so only the
    hit/miss accounting can differ from a sequential replay (two lanes
    may concurrently miss on the same key and duplicate a compile or a
    decrypt — both compute equal values). *)

val stats : t -> Stats.t
(** Snapshot of the current hosting generation's counters.  A rehost
    (or manual {!flush}) resets every counter except [invalidations],
    which counts generations this engine outlived — previously counters
    accumulated across generations, silently mixing hit rates of dead
    ciphertext artifacts into live ones. *)
