module Lru = Lru
module Stats = Stats
module Estimate = Estimate
module Plan = Plan
module Planner = Planner
module Exec = Exec

let log_src = Logs.Src.create "engine" ~doc:"Cost-based evaluation engine"

module Log = (val Logs.src_log log_src)

type config = {
  planner : bool;
  caches : bool;
  plan_capacity : int;
  result_capacity : int;
  block_capacity : int;
}

let default_config =
  { planner = true;
    caches = true;
    plan_capacity = 128;
    result_capacity = 64;
    block_capacity = 256 }

type outcome =
  | Hit
  | Miss
  | Bypass

let outcome_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Bypass -> "bypass"

(* Per-engine metric registry (always enabled — the engine's own stats
   are part of its contract).  Counters live here rather than in
   mutable fields so a rehost flush can reset them wholesale and
   external consumers (sxq stats) can snapshot them uniformly. *)
type counters = {
  reg : Obs.Metric.registry;
  queries : Obs.Metric.counter;
  plans_compiled : Obs.Metric.counter;
  steps_reordered : Obs.Metric.counter;
}

let make_counters () =
  let reg = Obs.Metric.create ~enabled:true () in
  { reg;
    queries = Obs.Metric.counter reg "engine.queries" ~help:"queries evaluated";
    plans_compiled =
      Obs.Metric.counter reg "engine.plans_compiled" ~help:"plans compiled (cache misses)";
    steps_reordered =
      Obs.Metric.counter reg "engine.steps_reordered" ~help:"join steps moved by the planner" }

type t = {
  config : config;
  mutable system : Secure.System.t;
  mutable est : Estimate.t;
  plans : (string, Plan.t) Lru.t;
  results : (string, Exec.run) Lru.t;
  blocks : (int * int, Secure.Client.answer) Lru.t;
      (* keyed by (block id, block generation): a delta bumps only the
         touched blocks' generations, so untouched entries stay valid
         and warm across updates *)
  lock : Parallel.Lock.t;
      (* guards every cache and counter touch during [evaluate_batch];
         the sequential entry points run on one domain and need it only
         because a batch may be in flight on the same engine *)
  c : counters;
  mutable invalidations : int;
      (* monotone across rehosts by design: it counts hosting
         generations this engine outlived, unlike the per-generation
         registry counters which {!flush} resets *)
}

let flush t =
  Lru.clear t.plans;
  Lru.clear t.results;
  Lru.clear t.blocks;
  (* The superseded hosting's artifacts are gone; stats that mixed the
     old generation's hit rates with the new one's were a bug (the
     planner would mis-trust stale rates).  Reset everything except the
     invalidation count itself. *)
  Lru.reset_counters t.plans;
  Lru.reset_counters t.results;
  Lru.reset_counters t.blocks;
  Obs.Metric.reset t.c.reg;
  t.invalidations <- t.invalidations + 1;
  Log.debug (fun m -> m "caches flushed (invalidation %d)" t.invalidations)

(* Selective invalidation for a delta update: the result memo is
   flushed wholesale (a memoised response may need to GAIN blocks after
   an insert or value change, so per-block eviction of memos is
   unsound), but compiled plans stay (any plan is a correct plan) and
   decrypted-block entries survive for every untouched block — only the
   superseded (id, generation) keys are dropped.  Counters are NOT
   reset: the survival of warm entries across an update is exactly what
   they should show. *)
let absorb_delta t (event : Secure.System.delta_event) =
  Lru.clear t.results;
  List.iter
    (fun (id, old_gen, _new_gen) -> Lru.remove t.blocks (id, old_gen))
    event.Secure.System.touched_blocks;
  List.iter
    (fun (id, old_gen) -> Lru.remove t.blocks (id, old_gen))
    event.Secure.System.dropped_blocks;
  t.invalidations <- t.invalidations + 1;
  Log.debug (fun m ->
      m "delta invalidation %d: %d touched, %d dropped, results flushed"
        t.invalidations
        (List.length event.Secure.System.touched_blocks)
        (List.length event.Secure.System.dropped_blocks))

(* Bind the engine to a hosting: refresh the statistics snapshot and
   arm the invalidation hooks that fire when this hosting is superseded
   — wholesale on update/rotate, per-block on apply_delta. *)
let attach t system =
  t.system <- system;
  t.est <- Estimate.of_server (Secure.System.server system);
  Secure.System.on_rehost system (fun () -> flush t);
  Secure.System.on_delta system (fun event -> absorb_delta t event)

let create ?(config = default_config) system =
  let cap c = if config.caches then Int.max 0 c else 0 in
  let t =
    { config;
      system;
      est = Estimate.of_server (Secure.System.server system);
      plans = Lru.create (cap config.plan_capacity);
      results = Lru.create (cap config.result_capacity);
      blocks = Lru.create (cap config.block_capacity);
      lock = Parallel.Lock.create ();
      c = make_counters ();
      invalidations = 0 }
  in
  Secure.System.on_rehost system (fun () -> flush t);
  Secure.System.on_delta system (fun event -> absorb_delta t event);
  t

let system t = t.system
let registry t = t.c.reg

let update t edit =
  (* System.update fires the old hosting's rehost hooks, which flush
     this engine's caches; attach then re-arms on the new hosting. *)
  let next, cost = Secure.System.update t.system edit in
  attach t next;
  cost

let rotate t ~new_master =
  let next, cost = Secure.System.rotate t.system ~new_master in
  attach t next;
  cost

let apply_delta t edit =
  (* System.apply_delta fires the old hosting's delta hooks (or, when
     it falls back to a full rebuild, its rehost hooks) before
     returning; attach then re-arms both on the new hosting. *)
  let next, cost = Secure.System.apply_delta t.system edit in
  attach t next;
  cost

(* The cache key IS the wire request: the ciphertext encoding of the
   translated query (Vernam tokens + OPESS ranges) that the server
   sees on every evaluation anyway.  Exposed so tests can assert the
   engine keys on nothing beyond it. *)
let wire_request t query =
  Secure.Protocol.encode_request
    (Secure.Client.translate (Secure.System.client t.system) query)

let now_ms () = Unix.gettimeofday () *. 1000.0

let timed f =
  let start = now_ms () in
  let result = f () in
  result, now_ms () -. start

let plan_for t req squery =
  match Lru.find t.plans req with
  | Some plan -> plan, (if t.config.caches then Hit else Bypass)
  | None ->
    let plan = Planner.compile ~reorder:t.config.planner t.est squery in
    Obs.Metric.incr t.c.plans_compiled;
    Obs.Metric.add t.c.steps_reordered (Plan.reorder_span plan);
    Lru.put t.plans req plan;
    plan, (if t.config.caches then Miss else Bypass)

let run_for t req plan squery =
  match Lru.find t.results req with
  | Some run -> run, (if t.config.caches then Hit else Bypass)
  | None ->
    let run = Exec.run (Secure.System.server t.system) plan squery in
    Lru.put t.results req run;
    run, (if t.config.caches then Miss else Bypass)

type report = {
  plan : Plan.t;
  plan_outcome : outcome;
  result_outcome : outcome;
  steps : Exec.step_actual list;
  request_bytes : int;
  block_hits : int;
  block_misses : int;
  translate_ms : float;
  plan_ms : float;
  server_ms : float;
  transmit_bytes : int;
  decrypt_ms : float;
  postprocess_ms : float;
  blocks_returned : int;
  blocks_decrypted : int;
  answer_count : int;
}

let server_decrypt_ms r = r.server_ms +. r.decrypt_ms

(* One ledger round per engine evaluation, recorded on the bound
   system's ledger.  Cache outcomes are server-visible: the plan cache
   and result memo live server-side, and a client block-cache hit means
   one fewer block crossed the wire. *)
let one_if = function Hit -> 1 | Miss | Bypass -> 0
let miss_if = function Miss -> 1 | Hit | Bypass -> 0

let record_round t (response : Secure.Server.response) report =
  let ledger = Secure.System.ledger t.system in
  if Obs.Ledger.enabled ledger then
    Obs.Ledger.record ledger
      (Obs.Ledger.round "engine" ~bytes_up:report.request_bytes
         ~bytes_down:(report.transmit_bytes - report.request_bytes)
         ~intervals_touched:response.Secure.Server.candidate_intervals
         ~btree_hits:response.Secure.Server.btree_hits
         ~blocks_returned:report.blocks_returned
         ~block_ids:
           (List.map
              (fun b -> b.Secure.Encrypt.id)
              response.Secure.Server.blocks)
         ~cache_hits:
           (one_if report.plan_outcome + one_if report.result_outcome
           + report.block_hits)
         ~cache_misses:
           (miss_if report.plan_outcome + miss_if report.result_outcome
           + report.block_misses))

let evaluate_report t query =
  Obs.Metric.incr t.c.queries;
  let trace = Secure.System.tracer t.system in
  Obs.span trace "engine.evaluate" @@ fun () ->
  let client = Secure.System.client t.system in
  let squery, translate_ms =
    timed (fun () -> Secure.Client.translate client query)
  in
  let req = Secure.Protocol.encode_request squery in
  let (plan, plan_outcome), plan_ms =
    Obs.span trace "engine.plan" (fun () -> timed (fun () -> plan_for t req squery))
  in
  let (run, result_outcome), server_ms =
    Obs.span trace "engine.exec" (fun () -> timed (fun () -> run_for t req plan squery))
  in
  (* Client-side block cache: a cached block is neither re-shipped nor
     re-decrypted, so both byte and decrypt accounting follow it. *)
  let hits_before = Lru.hits t.blocks in
  let misses_before = Lru.misses t.blocks in
  let shipped = ref 0 in
  let decrypted, decrypt_ms =
    timed (fun () ->
        List.map
          (fun b ->
            let id = b.Secure.Encrypt.id in
            let key = id, b.Secure.Encrypt.generation in
            match Lru.find t.blocks key with
            | Some tree -> id, tree
            | None ->
              shipped :=
                !shipped
                + String.length b.Secure.Encrypt.ciphertext
                + Secure.Encrypt.block_header_bytes;
              let tree = Secure.Client.decrypt_block client b in
              Lru.put t.blocks key tree;
              id, tree)
          run.Exec.response.Secure.Server.blocks)
  in
  let block_hits = Lru.hits t.blocks - hits_before in
  let block_misses = Lru.misses t.blocks - misses_before in
  let answers, postprocess_ms =
    timed (fun () -> Secure.Client.evaluate_with client ~decrypted query)
  in
  let report =
    { plan;
      plan_outcome;
      result_outcome;
      steps = run.Exec.steps;
      request_bytes = String.length req;
      block_hits;
      block_misses;
      translate_ms;
      plan_ms;
      server_ms;
      transmit_bytes = String.length req + !shipped;
      decrypt_ms;
      postprocess_ms;
      blocks_returned = List.length run.Exec.response.Secure.Server.blocks;
      blocks_decrypted = block_misses;
      answer_count = List.length answers }
  in
  record_round t run.Exec.response report;
  answers, report

let evaluate t query = fst (evaluate_report t query)

(* Batched evaluation over the system's domain pool.  Answers are
   cache-independent, so result [i] is exactly [evaluate t queries.(i)];
   only the cache accounting can differ from a sequential replay
   (concurrent lanes may both miss on the same key and compile or
   decrypt twice — the last put wins, and both values are equal).
   Every cache and counter touch goes through [t.lock]; the expensive
   work — plan compilation, server execution, block decryption,
   post-processing — runs outside it.  Translation stays on the
   calling domain: OPESS translation memoises inside each catalog's
   OPE instance. *)
let evaluate_batch t queries =
  let locked f = Parallel.Lock.protect t.lock f in
  let lane (query, squery, req, translate_ms) =
    locked (fun () -> Obs.Metric.incr t.c.queries);
    let client = Secure.System.client t.system in
    let (plan, plan_outcome), plan_ms =
      timed (fun () ->
          match locked (fun () -> Lru.find t.plans req) with
          | Some plan -> plan, (if t.config.caches then Hit else Bypass)
          | None ->
            let plan = Planner.compile ~reorder:t.config.planner t.est squery in
            locked (fun () ->
                Obs.Metric.incr t.c.plans_compiled;
                Obs.Metric.add t.c.steps_reordered (Plan.reorder_span plan);
                Lru.put t.plans req plan);
            plan, (if t.config.caches then Miss else Bypass))
    in
    let (run, result_outcome), server_ms =
      timed (fun () ->
          match locked (fun () -> Lru.find t.results req) with
          | Some run -> run, (if t.config.caches then Hit else Bypass)
          | None ->
            let run = Exec.run (Secure.System.server t.system) plan squery in
            locked (fun () -> Lru.put t.results req run);
            run, (if t.config.caches then Miss else Bypass))
    in
    let shipped = ref 0 in
    let block_hits = ref 0 in
    let block_misses = ref 0 in
    let decrypted, decrypt_ms =
      timed (fun () ->
          List.map
            (fun b ->
              let id = b.Secure.Encrypt.id in
              let key = id, b.Secure.Encrypt.generation in
              match locked (fun () -> Lru.find t.blocks key) with
              | Some tree ->
                incr block_hits;
                id, tree
              | None ->
                incr block_misses;
                shipped :=
                  !shipped
                  + String.length b.Secure.Encrypt.ciphertext
                  + Secure.Encrypt.block_header_bytes;
                let tree = Secure.Client.decrypt_block client b in
                locked (fun () -> Lru.put t.blocks key tree);
                id, tree)
            run.Exec.response.Secure.Server.blocks)
    in
    let answers, postprocess_ms =
      timed (fun () -> Secure.Client.evaluate_with client ~decrypted query)
    in
    ( answers,
      { plan;
        plan_outcome;
        result_outcome;
        steps = run.Exec.steps;
        request_bytes = String.length req;
        block_hits = !block_hits;
        block_misses = !block_misses;
        translate_ms;
        plan_ms;
        server_ms;
        transmit_bytes = String.length req + !shipped;
        decrypt_ms;
        postprocess_ms;
        blocks_returned = List.length run.Exec.response.Secure.Server.blocks;
        blocks_decrypted = !block_misses;
        answer_count = List.length answers },
      run.Exec.response )
  in
  match Secure.System.pool t.system with
  | Some p when Parallel.Pool.size p > 1 ->
    let client = Secure.System.client t.system in
    let translated =
      Array.map
        (fun q ->
          let squery, translate_ms =
            timed (fun () -> Secure.Client.translate client q)
          in
          q, squery, Secure.Protocol.encode_request squery, translate_ms)
        queries
    in
    let results = Parallel.Pool.map p lane translated in
    (* Ledger rounds are recorded after the deterministic merge, on the
       calling domain — the tracer/ledger are single-domain structures
       and pool workers never touch them. *)
    Array.map
      (fun (answers, report, response) ->
        record_round t response report;
        answers, report)
      results
  | Some _ | None -> Array.map (fun q -> evaluate_report t q) queries

let stats t =
  { Stats.queries = Obs.Metric.value t.c.queries;
    plans_compiled = Obs.Metric.value t.c.plans_compiled;
    steps_reordered = Obs.Metric.value t.c.steps_reordered;
    invalidations = t.invalidations;
    plan_hits = Lru.hits t.plans;
    plan_misses = Lru.misses t.plans;
    plan_evictions = Lru.evictions t.plans;
    result_hits = Lru.hits t.results;
    result_misses = Lru.misses t.results;
    result_evictions = Lru.evictions t.results;
    block_hits = Lru.hits t.blocks;
    block_misses = Lru.misses t.blocks;
    block_evictions = Lru.evictions t.blocks }
