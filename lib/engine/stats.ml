type t = {
  queries : int;
  plans_compiled : int;
  steps_reordered : int;
  invalidations : int;
  plan_hits : int;
  plan_misses : int;
  plan_evictions : int;
  result_hits : int;
  result_misses : int;
  result_evictions : int;
  block_hits : int;
  block_misses : int;
  block_evictions : int;
}

let zero =
  { queries = 0;
    plans_compiled = 0;
    steps_reordered = 0;
    invalidations = 0;
    plan_hits = 0;
    plan_misses = 0;
    plan_evictions = 0;
    result_hits = 0;
    result_misses = 0;
    result_evictions = 0;
    block_hits = 0;
    block_misses = 0;
    block_evictions = 0 }

let rate hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let plan_hit_rate t = rate t.plan_hits t.plan_misses
let result_hit_rate t = rate t.result_hits t.result_misses
let block_hit_rate t = rate t.block_hits t.block_misses

let to_string t =
  Printf.sprintf
    "queries %d | plans compiled %d, steps reordered %d, invalidations %d | \
     plan %d/%d (evict %d) | result %d/%d (evict %d) | block %d/%d (evict %d)"
    t.queries t.plans_compiled t.steps_reordered t.invalidations t.plan_hits
    t.plan_misses t.plan_evictions t.result_hits t.result_misses
    t.result_evictions t.block_hits t.block_misses t.block_evictions
