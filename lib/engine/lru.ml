(* Classic LRU: a hash table into a doubly-linked recency list.  The
   list head is the most recently used entry; eviction pops the tail.
   All operations are O(1) expected. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards the head (more recent) *)
  mutable next : ('k, 'v) node option;  (* towards the tail (less recent) *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create capacity =
  { capacity = Int.max 0 capacity;
    table = Hashtbl.create (Int.max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with
   | Some h -> h.prev <- Some node
   | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value

let mem t key = Hashtbl.mem t.table key

let put t key value =
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.table key with
     | Some node ->
       node.value <- value;
       unlink t node;
       push_front t node
     | None ->
       let node = { key; value; prev = None; next = None } in
       Hashtbl.replace t.table key node;
       push_front t node);
    if Hashtbl.length t.table > t.capacity then
      match t.tail with
      | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.key;
        t.evictions <- t.evictions + 1
      | None -> ()
  end

(* Targeted eviction (no hit/miss accounting): dropping a stale entry
   is bookkeeping, not a lookup. *)
let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table key

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
