type step_plan = {
  index : int;
  axis : Xpath.Ast.axis;
  est_raw : float;
  est_selected : float;
  pred_order : int list;
  pre_applied : int list;
}

type t = {
  steps : step_plan list;
  pivot : int;
  reordered : bool;
}

let identity_order n = List.init n (fun i -> i)

let reorder_span t = t.pivot

let axis_name = function
  | Xpath.Ast.Child -> "child"
  | Xpath.Ast.Descendant_or_self -> "descendant-or-self"
  | Xpath.Ast.Parent -> "parent"
  | Xpath.Ast.Following_sibling -> "following-sibling"
  | Xpath.Ast.Preceding_sibling -> "preceding-sibling"
  | Xpath.Ast.Following -> "following"
  | Xpath.Ast.Preceding -> "preceding"

let ints_to_string is = String.concat ";" (List.map string_of_int is)

let step_to_string t sp =
  Printf.sprintf "step %d%s %s: est %.1f -> %.1f%s%s" sp.index
    (if t.pivot > 0 && sp.index = t.pivot then " [pivot]" else "")
    (axis_name sp.axis) sp.est_raw sp.est_selected
    (if sp.pred_order = identity_order (List.length sp.pred_order) then ""
     else Printf.sprintf ", preds [%s]" (ints_to_string sp.pred_order))
    (if t.pivot > 0 && sp.index = t.pivot && sp.pre_applied <> [] then
       Printf.sprintf ", pre-applied [%s]" (ints_to_string sp.pre_applied)
     else "")

let to_string t =
  let header =
    if t.reordered then
      Printf.sprintf "reordered: pivot at step %d, steps 1..%d pre-tightened"
        t.pivot t.pivot
    else "left-to-right (no profitable pivot)"
  in
  String.concat "\n" (header :: List.map (step_to_string t) t.steps)
