(** Cost-based plan compilation.

    Two decisions, both order-only (see {!Plan}):

    + {b pivot selection} — the step with the smallest selected
      estimate becomes the pivot when the costliest step before it is
      at least 4x larger; its candidate set (after hoisting its own
      value-range predicates) back-propagates through
      {!Secure.Server.join_backward} to shrink every earlier step's
      seed before the ordinary forward pass runs;
    + {b predicate ordering} — each step's predicates are applied most
      selective first (ties broken towards the cheaper one), stably, so
      estimate-free plans keep the written order.

    Estimates come from {!Estimate}; compilation reads no candidate
    data, so a plan depends only on the translated query and the
    server's statistics snapshot. *)

val pivot_gain : float

val predicate_order : Estimate.t -> Secure.Squery.predicate list -> int list

val compile : ?reorder:bool -> Estimate.t -> Secure.Squery.path -> Plan.t
(** [~reorder:false] forces the left-to-right identity pivot (the
    engine's planner-off mode) while still ordering predicates. *)
