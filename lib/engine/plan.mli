(** Compiled evaluation plan for one translated query.

    A plan never changes {e what} is computed — only the order: which
    step's candidate set is tightened first (the pivot, whose
    constraint back-propagates through the sound
    {!Secure.Server.join_backward} direction before the forward pass)
    and in which order each step's predicates apply.  Plans mention
    step/predicate {e indices} and axis names only; tags exist in the
    plan solely as the ciphertext tokens inside the query it was
    compiled from. *)

type step_plan = {
  index : int;
  axis : Xpath.Ast.axis;
  est_raw : float;        (** estimated DSI intervals before joins *)
  est_selected : float;   (** after the step's own predicates *)
  pred_order : int list;  (** predicate application order (indices) *)
  pre_applied : int list;
      (** self value-range predicates hoisted before back-propagation
          when this step is the pivot *)
}

type t = {
  steps : step_plan list;
  pivot : int;        (** [0] = plain left-to-right evaluation *)
  reordered : bool;   (** [pivot > 0] *)
}

val identity_order : int -> int list

val reorder_span : t -> int
(** Number of steps whose evaluation order the plan changed. *)

val axis_name : Xpath.Ast.axis -> string

val to_string : t -> string
