module Squery = Secure.Squery

(* A pivot must beat the costliest step before it by this factor to
   justify the extra back-propagation joins. *)
let pivot_gain = 4.0

let predicate_order est preds =
  let keyed = List.mapi (fun j p -> j, Estimate.predicate est p) preds in
  (* Most selective first; ties broken towards the cheaper predicate.
     The stable sort keeps the written order on full ties, so plans for
     predicate-free steps are the identity. *)
  List.stable_sort
    (fun (_, (ca, sa)) (_, (cb, sb)) ->
      match Float.compare sa sb with 0 -> Float.compare ca cb | c -> c)
    keyed
  |> List.map fst

let self_value_preds preds =
  List.concat
    (List.mapi
       (fun j p ->
         match p with
         | Squery.Value (q, Squery.Ranges _) when q.Squery.steps = [] -> [ j ]
         | Squery.Value _ | Squery.Exists _ | Squery.P_and _ | Squery.P_or _
         | Squery.P_not _ -> [])
       preds)

let compile ?(reorder = true) est (squery : Squery.path) =
  let annotated =
    List.mapi
      (fun i s ->
        let e = Estimate.step est s in
        let sp =
          { Plan.index = i;
            axis = s.Squery.axis;
            est_raw = e.Estimate.raw;
            est_selected = e.Estimate.raw *. e.Estimate.selectivity;
            pred_order = predicate_order est s.Squery.predicates;
            pre_applied = [] }
        in
        s, sp)
      squery.Squery.steps
  in
  let plans = Array.of_list (List.map snd annotated) in
  let n = Array.length plans in
  let pivot =
    if (not reorder) || n < 2 then 0
    else begin
      let best = ref 0 in
      for i = 1 to n - 1 do
        if plans.(i).Plan.est_selected < plans.(!best).Plan.est_selected then
          best := i
      done;
      let i = !best in
      if i = 0 then 0
      else begin
        let max_before = ref 0.0 in
        for j = 0 to i - 1 do
          max_before := Float.max !max_before plans.(j).Plan.est_raw
        done;
        if !max_before > pivot_gain *. Float.max 1.0 plans.(i).Plan.est_selected
        then i
        else 0
      end
    end
  in
  let steps =
    List.map
      (fun (s, sp) ->
        if pivot > 0 && sp.Plan.index = pivot then
          { sp with Plan.pre_applied = self_value_preds s.Squery.predicates }
        else sp)
      annotated
  in
  { Plan.steps; pivot; reordered = pivot > 0 }
