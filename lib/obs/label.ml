(* Metric/span label hygiene.  Tenant ids and other caller-supplied
   strings end up embedded in metric names and ledger rows; anything
   outside a small safe alphabet is replaced rather than escaped so a
   label can never smuggle exposition-format structure (newlines,
   braces, quotes) or plaintext fragments into an observability sink. *)

let max_len = 64

let safe = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
  | _ -> false

let sanitize s =
  let n = min (String.length s) max_len in
  if n = String.length s && String.for_all safe s then s
  else String.init n (fun i -> if safe s.[i] then s.[i] else '_')
