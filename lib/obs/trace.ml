type node = {
  name : string;
  attrs : (string * string) list;
  start_tick : int;
  end_tick : int;
  children : node list;
}

type clock = unit -> int

(* An open span accumulates its children in reverse; closing reverses
   once and attaches the finished node to the parent (or the roots). *)
type frame = {
  f_name : string;
  f_attrs : (string * string) list;
  f_start : int;
  mutable f_children : node list;
}

type t = {
  mutable on : bool;
  clock : clock option;   (* [None]: the deterministic internal tick *)
  mutable internal_tick : int;
  mutable stack : frame list;
  mutable finished : node list;   (* roots, newest first *)
}

let create ?(enabled = false) ?clock () =
  { on = enabled; clock; internal_tick = 0; stack = []; finished = [] }

let tick t =
  match t.clock with
  | Some c -> c ()
  | None ->
    t.internal_tick <- t.internal_tick + 1;
    t.internal_tick

let enabled t = t.on
let set_enabled t on = t.on <- on

let attach t node =
  match t.stack with
  | parent :: _ -> parent.f_children <- node :: parent.f_children
  | [] -> t.finished <- node :: t.finished

let open_span t name attrs =
  let f = { f_name = name; f_attrs = attrs; f_start = tick t; f_children = [] } in
  t.stack <- f :: t.stack

let close_span t =
  match t.stack with
  | [] -> ()
  | f :: rest ->
    t.stack <- rest;
    attach t
      { name = f.f_name;
        attrs = f.f_attrs;
        start_tick = f.f_start;
        end_tick = tick t;
        children = List.rev f.f_children }

let span t ?(attrs = []) name f =
  if not t.on then f ()
  else begin
    open_span t name attrs;
    match f () with
    | result ->
      close_span t;
      result
    | exception e ->
      close_span t;
      raise e
  end

let event t ?(attrs = []) name =
  if t.on then begin
    let now = tick t in
    attach t { name; attrs; start_tick = now; end_tick = now; children = [] }
  end

let roots t = List.rev t.finished

let clear t =
  t.stack <- [];
  t.finished <- [];
  t.internal_tick <- 0

let rec node_to_json n =
  let base =
    [ "name", Json.Str n.name;
      "start", Json.Int n.start_tick;
      "end", Json.Int n.end_tick ]
  in
  let attrs =
    match n.attrs with
    | [] -> []
    | attrs ->
      [ "attrs", Json.Obj (List.map (fun (k, v) -> k, Json.Str v) attrs) ]
  in
  let children =
    match n.children with
    | [] -> []
    | cs -> [ "children", Json.List (List.map node_to_json cs) ]
  in
  Json.Obj (base @ attrs @ children)

let to_json t = Json.List (List.map node_to_json (roots t))

let render t =
  let buf = Buffer.create 256 in
  let rec go depth n =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf
      (Printf.sprintf "%s [%d..%d]" n.name n.start_tick n.end_tick);
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%s" k v))
      n.attrs;
    Buffer.add_char buf '\n';
    List.iter (go (depth + 1)) n.children
  in
  List.iter (go 0) (roots t);
  Buffer.contents buf
