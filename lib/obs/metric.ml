type registry = {
  mutable on : bool;
  mutable op_count : int;
  table : (string, instrument) Hashtbl.t;
}

and instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_histogram of histogram

and counter = { c_reg : registry; mutable c_value : int; c_help : string }

and gauge = { g_reg : registry; mutable g_value : float; g_help : string }

and histogram = {
  h_reg : registry;
  h_bounds : float array;            (* strictly increasing upper bounds *)
  h_counts : int array;              (* bounds + 1 (overflow) *)
  mutable h_sum : float;
  mutable h_observed : int;
  h_help : string;
}

let create ?(enabled = false) () =
  { on = enabled; op_count = 0; table = Hashtbl.create 64 }

let default = create ()

let enabled r = r.on
let set_enabled r on = r.on <- on
let ops r = r.op_count

let register r name make describe =
  match Hashtbl.find_opt r.table name with
  | Some existing -> describe existing
  | None ->
    let fresh = make () in
    Hashtbl.replace r.table name fresh;
    describe fresh

let counter r ?(help = "") name =
  register r name
    (fun () -> I_counter { c_reg = r; c_value = 0; c_help = help })
    (function
      | I_counter c -> c
      | I_gauge _ | I_histogram _ ->
        invalid_arg
          (Printf.sprintf "Obs.Metric.counter: %S is registered as another kind"
             name))

let gauge r ?(help = "") name =
  register r name
    (fun () -> I_gauge { g_reg = r; g_value = 0.0; g_help = help })
    (function
      | I_gauge g -> g
      | I_counter _ | I_histogram _ ->
        invalid_arg
          (Printf.sprintf "Obs.Metric.gauge: %S is registered as another kind"
             name))

let histogram r ?(help = "") ~buckets name =
  let bounds = Array.of_list buckets in
  if Array.length bounds = 0 then
    invalid_arg "Obs.Metric.histogram: empty bucket list";
  Array.iteri
    (fun i b ->
      if i > 0 && not (bounds.(i - 1) < b) then
        invalid_arg "Obs.Metric.histogram: bounds must be strictly increasing")
    bounds;
  register r name
    (fun () ->
      I_histogram
        { h_reg = r;
          h_bounds = bounds;
          h_counts = Array.make (Array.length bounds + 1) 0;
          h_sum = 0.0;
          h_observed = 0;
          h_help = help })
    (function
      | I_histogram h ->
        if h.h_bounds <> bounds then
          invalid_arg
            (Printf.sprintf
               "Obs.Metric.histogram: %S is registered with different bounds"
               name);
        h
      | I_counter _ | I_gauge _ ->
        invalid_arg
          (Printf.sprintf
             "Obs.Metric.histogram: %S is registered as another kind" name))

(* Hot path: one load, one branch when disabled. *)
let incr c =
  let r = c.c_reg in
  if r.on then begin
    c.c_value <- c.c_value + 1;
    r.op_count <- r.op_count + 1
  end

let add c n =
  if n < 0 then invalid_arg "Obs.Metric.add: negative amount";
  let r = c.c_reg in
  if r.on then begin
    c.c_value <- c.c_value + n;
    r.op_count <- r.op_count + 1
  end

let value c = c.c_value

let set g v =
  let r = g.g_reg in
  if r.on then begin
    g.g_value <- v;
    r.op_count <- r.op_count + 1
  end

let gauge_value g = g.g_value

(* First bucket whose bound admits [v]; the trailing slot is the
   overflow bucket.  Buckets are few and fixed, so a linear scan beats
   a binary search's branch misses at this size. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  let r = h.h_reg in
  if r.on then begin
    let i = bucket_index h.h_bounds v in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_observed <- h.h_observed + 1;
    r.op_count <- r.op_count + 1
  end

let bucket_bounds h = Array.copy h.h_bounds
let bucket_counts h = Array.copy h.h_counts
let observed_count h = h.h_observed
let observed_sum h = h.h_sum

type value_snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { bounds : float array; counts : int array; sum : float }

let snapshot r =
  Hashtbl.fold
    (fun name inst acc ->
      let v =
        match inst with
        | I_counter c -> Counter_v c.c_value
        | I_gauge g -> Gauge_v g.g_value
        | I_histogram h ->
          Histogram_v
            { bounds = Array.copy h.h_bounds;
              counts = Array.copy h.h_counts;
              sum = h.h_sum }
      in
      (name, v) :: acc)
    r.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_prefix r prefix =
  let pl = String.length prefix in
  List.filter
    (fun (name, _) ->
      String.length name >= pl && String.sub name 0 pl = prefix)
    (snapshot r)

let reset r =
  r.op_count <- 0;
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | I_counter c -> c.c_value <- 0
      | I_gauge g -> g.g_value <- 0.0
      | I_histogram h ->
        Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
        h.h_sum <- 0.0;
        h.h_observed <- 0)
    r.table

let to_json r =
  Json.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Counter_v n -> Json.Obj [ "kind", Json.Str "counter"; "value", Json.Int n ]
           | Gauge_v f -> Json.Obj [ "kind", Json.Str "gauge"; "value", Json.Float f ]
           | Histogram_v { bounds; counts; sum } ->
             Json.Obj
               [ "kind", Json.Str "histogram";
                 "bounds",
                 Json.List (Array.to_list (Array.map (fun b -> Json.Float b) bounds));
                 "counts",
                 Json.List (Array.to_list (Array.map (fun c -> Json.Int c) counts));
                 "sum", Json.Float sum ] ))
       (snapshot r))

let render r =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v n -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name n)
      | Gauge_v f -> Buffer.add_string buf (Printf.sprintf "%-40s %g\n" name f)
      | Histogram_v { bounds; counts; sum } ->
        let cells =
          Array.to_list
            (Array.mapi
               (fun i c ->
                 if i < Array.length bounds then
                   Printf.sprintf "<=%g:%d" bounds.(i) c
                 else Printf.sprintf ">%g:%d" bounds.(Array.length bounds - 1) c)
               counts)
        in
        Buffer.add_string buf
          (Printf.sprintf "%-40s [%s] sum=%g\n" name (String.concat " " cells) sum))
    (snapshot r);
  Buffer.contents buf
