(** Observability: metrics, trace spans, and the leakage ledger.

    Zero-dependency (stdlib only) so every layer — transport, session,
    server, engine, system — can record without new edges in the
    layering DAG.  All instruments are disabled by default and cost one
    boolean test per update when off; see docs/OBSERVABILITY.md for the
    full metric/span/ledger inventory. *)

module Json = Json
module Label = Label
module Metric = Metric
module Trace = Trace
module Ledger = Ledger

val span : Trace.t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] — alias of {!Trace.span} for call-site brevity. *)
