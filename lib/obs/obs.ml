module Json = Json
module Label = Label
module Metric = Metric
module Trace = Trace
module Ledger = Ledger

let span = Trace.span
