module Json = Json
module Metric = Metric
module Trace = Trace
module Ledger = Ledger

let span = Trace.span
