type round = {
  seq : int;
  label : string;
  bytes_up : int;
  bytes_down : int;
  intervals_touched : int;
  btree_hits : int;
  blocks_returned : int;
  cache_hits : int;
  cache_misses : int;
  attempts : int;
  replays : int;
  degraded : bool;
}

let round ?(bytes_up = 0) ?(bytes_down = 0) ?(intervals_touched = 0)
    ?(btree_hits = 0) ?(blocks_returned = 0) ?(cache_hits = 0) ?(cache_misses = 0)
    ?(attempts = 1) ?(replays = 0) ?(degraded = false) label =
  { seq = 0; label; bytes_up; bytes_down; intervals_touched; btree_hits;
    blocks_returned; cache_hits; cache_misses; attempts; replays; degraded }

type t = {
  mutable on : bool;
  capacity : int;
  mutable recorded : int;          (* rounds ever recorded *)
  mutable held : round list;       (* newest first, length <= capacity *)
  mutable held_count : int;
  mutable sums : round;            (* accumulates over every round *)
}

let zero_totals =
  { seq = 0; label = "totals"; bytes_up = 0; bytes_down = 0;
    intervals_touched = 0; btree_hits = 0; blocks_returned = 0; cache_hits = 0;
    cache_misses = 0; attempts = 0; replays = 0; degraded = false }

let create ?(enabled = false) ?(capacity = 1024) () =
  { on = enabled; capacity = max 1 capacity; recorded = 0; held = [];
    held_count = 0; sums = zero_totals }

let enabled t = t.on
let set_enabled t on = t.on <- on

let record t r =
  if t.on then begin
    t.recorded <- t.recorded + 1;
    let r = { r with seq = t.recorded } in
    t.held <- r :: t.held;
    t.held_count <- t.held_count + 1;
    if t.held_count > t.capacity then begin
      (* Drop the oldest retained round; totals keep the history. *)
      t.held <- (match List.rev t.held with _ :: kept -> List.rev kept | [] -> []);
      t.held_count <- t.held_count - 1
    end;
    t.sums <-
      { t.sums with
        bytes_up = t.sums.bytes_up + r.bytes_up;
        bytes_down = t.sums.bytes_down + r.bytes_down;
        intervals_touched = t.sums.intervals_touched + r.intervals_touched;
        btree_hits = t.sums.btree_hits + r.btree_hits;
        blocks_returned = t.sums.blocks_returned + r.blocks_returned;
        cache_hits = t.sums.cache_hits + r.cache_hits;
        cache_misses = t.sums.cache_misses + r.cache_misses;
        attempts = t.sums.attempts + r.attempts;
        replays = t.sums.replays + r.replays;
        degraded = t.sums.degraded || r.degraded }
  end

let rounds t = List.rev t.held
let count t = t.recorded
let totals t = { t.sums with seq = t.recorded }

let clear t =
  t.recorded <- 0;
  t.held <- [];
  t.held_count <- 0;
  t.sums <- zero_totals

let round_to_json r =
  Json.Obj
    [ "seq", Json.Int r.seq;
      "label", Json.Str r.label;
      "bytes_up", Json.Int r.bytes_up;
      "bytes_down", Json.Int r.bytes_down;
      "intervals_touched", Json.Int r.intervals_touched;
      "btree_hits", Json.Int r.btree_hits;
      "blocks_returned", Json.Int r.blocks_returned;
      "cache_hits", Json.Int r.cache_hits;
      "cache_misses", Json.Int r.cache_misses;
      "attempts", Json.Int r.attempts;
      "replays", Json.Int r.replays;
      "degraded", Json.Bool r.degraded ]

let to_json t =
  Json.Obj
    [ "rounds", Json.List (List.map round_to_json (rounds t));
      "totals", round_to_json (totals t) ]

let render_round r =
  Printf.sprintf
    "%4d %-10s up %6d B, down %8d B; %4d intervals, %4d btree, %3d blocks; \
     cache %d/%d; attempts %d, replays %d%s"
    r.seq r.label r.bytes_up r.bytes_down r.intervals_touched r.btree_hits
    r.blocks_returned r.cache_hits r.cache_misses r.attempts r.replays
    (if r.degraded then " [degraded]" else "")

let render t =
  String.concat "\n" (List.map render_round (rounds t) @ [ render_round (totals t) ])
  ^ "\n"
