type round = {
  seq : int;
  label : string;
  bytes_up : int;
  bytes_down : int;
  intervals_touched : int;
  btree_hits : int;
  blocks_returned : int;
  block_ids : int list;
  cache_hits : int;
  cache_misses : int;
  attempts : int;
  replays : int;
  degraded : bool;
}

let round ?(bytes_up = 0) ?(bytes_down = 0) ?(intervals_touched = 0)
    ?(btree_hits = 0) ?(blocks_returned = 0) ?(block_ids = []) ?(cache_hits = 0)
    ?(cache_misses = 0) ?(attempts = 1) ?(replays = 0) ?(degraded = false) label =
  { seq = 0; label; bytes_up; bytes_down; intervals_touched; btree_hits;
    blocks_returned; block_ids; cache_hits; cache_misses; attempts; replays;
    degraded }

type t = {
  mutable on : bool;
  capacity : int;
  mutable recorded : int;          (* rounds ever recorded *)
  mutable held : round list;       (* newest first, length <= capacity *)
  mutable held_count : int;
  mutable sums : round;            (* accumulates over every round *)
}

let zero_totals =
  { seq = 0; label = "totals"; bytes_up = 0; bytes_down = 0;
    intervals_touched = 0; btree_hits = 0; blocks_returned = 0; block_ids = [];
    cache_hits = 0; cache_misses = 0; attempts = 0; replays = 0;
    degraded = false }

let create ?(enabled = false) ?(capacity = 1024) () =
  { on = enabled; capacity = max 1 capacity; recorded = 0; held = [];
    held_count = 0; sums = zero_totals }

let enabled t = t.on
let set_enabled t on = t.on <- on

let record t r =
  if t.on then begin
    t.recorded <- t.recorded + 1;
    let r = { r with seq = t.recorded } in
    t.held <- r :: t.held;
    t.held_count <- t.held_count + 1;
    if t.held_count > t.capacity then begin
      (* Drop the oldest retained round; totals keep the history. *)
      t.held <- (match List.rev t.held with _ :: kept -> List.rev kept | [] -> []);
      t.held_count <- t.held_count - 1
    end;
    t.sums <-
      { t.sums with
        bytes_up = t.sums.bytes_up + r.bytes_up;
        bytes_down = t.sums.bytes_down + r.bytes_down;
        intervals_touched = t.sums.intervals_touched + r.intervals_touched;
        btree_hits = t.sums.btree_hits + r.btree_hits;
        blocks_returned = t.sums.blocks_returned + r.blocks_returned;
        cache_hits = t.sums.cache_hits + r.cache_hits;
        cache_misses = t.sums.cache_misses + r.cache_misses;
        attempts = t.sums.attempts + r.attempts;
        replays = t.sums.replays + r.replays;
        degraded = t.sums.degraded || r.degraded }
  end

let rounds t = List.rev t.held
let count t = t.recorded
let totals t = { t.sums with seq = t.recorded }

let clear t =
  t.recorded <- 0;
  t.held <- [];
  t.held_count <- 0;
  t.sums <- zero_totals

let round_to_json r =
  Json.Obj
    [ "seq", Json.Int r.seq;
      "label", Json.Str r.label;
      "bytes_up", Json.Int r.bytes_up;
      "bytes_down", Json.Int r.bytes_down;
      "intervals_touched", Json.Int r.intervals_touched;
      "btree_hits", Json.Int r.btree_hits;
      "blocks_returned", Json.Int r.blocks_returned;
      "block_ids", Json.List (List.map (fun id -> Json.Int id) r.block_ids);
      "cache_hits", Json.Int r.cache_hits;
      "cache_misses", Json.Int r.cache_misses;
      "attempts", Json.Int r.attempts;
      "replays", Json.Int r.replays;
      "degraded", Json.Bool r.degraded ]

let to_json t =
  Json.Obj
    [ "rounds", Json.List (List.map round_to_json (rounds t));
      "totals", round_to_json (totals t) ]

(* --- Parsing (offline trace replay) ------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let req_int name j =
  match Json.member name j with
  | Some v -> (
    match Json.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "round field %S is not an integer" name))
  | None -> Error (Printf.sprintf "round is missing field %S" name)

let req_str name j =
  match Json.member name j with
  | Some v -> (
    match Json.to_str v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "round field %S is not a string" name))
  | None -> Error (Printf.sprintf "round is missing field %S" name)

let req_bool name j =
  match Json.member name j with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "round field %S is not a bool" name)
  | None -> Error (Printf.sprintf "round is missing field %S" name)

let req_ids name j =
  match Json.member name j with
  | Some v -> (
    match Json.to_list v with
    | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match Json.to_int item with
          | Some id -> Ok (id :: acc)
          | None -> Error (Printf.sprintf "%S holds a non-integer id" name))
        (Ok []) items
      |> fun r -> (match r with Ok ids -> Ok (List.rev ids) | Error _ as e -> e)
    | None -> Error (Printf.sprintf "round field %S is not a list" name))
  | None -> Error (Printf.sprintf "round is missing field %S" name)

let round_of_json j =
  let* seq = req_int "seq" j in
  let* label = req_str "label" j in
  let* bytes_up = req_int "bytes_up" j in
  let* bytes_down = req_int "bytes_down" j in
  let* intervals_touched = req_int "intervals_touched" j in
  let* btree_hits = req_int "btree_hits" j in
  let* blocks_returned = req_int "blocks_returned" j in
  let* block_ids = req_ids "block_ids" j in
  let* cache_hits = req_int "cache_hits" j in
  let* cache_misses = req_int "cache_misses" j in
  let* attempts = req_int "attempts" j in
  let* replays = req_int "replays" j in
  let* degraded = req_bool "degraded" j in
  Ok
    { seq; label; bytes_up; bytes_down; intervals_touched; btree_hits;
      blocks_returned; block_ids; cache_hits; cache_misses; attempts; replays;
      degraded }

(* Reconstruct the exact ledger state the JSON was printed from: held
   rounds keep their recorded [seq]s (the capacity bound may have
   dropped early rounds, so seqs need not start at 1), [recorded] comes
   from the totals row, and sums are taken as printed rather than
   re-accumulated — [to_json (of_json j)] is byte-identical to [j]. *)
let of_json j =
  let* round_items =
    match Json.member "rounds" j with
    | Some v -> (
      match Json.to_list v with
      | Some items -> Ok items
      | None -> Error "\"rounds\" is not a list")
    | None -> Error "ledger is missing field \"rounds\""
  in
  let* parsed =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* r = round_of_json item in
        Ok (r :: acc))
      (Ok []) round_items
  in
  let held = parsed in (* fold reversed oldest-first input: newest first *)
  let* totals_j =
    match Json.member "totals" j with
    | Some v -> Ok v
    | None -> Error "ledger is missing field \"totals\""
  in
  let* sums = round_of_json totals_j in
  if sums.label <> "totals" then Error "totals row is not labelled \"totals\""
  else begin
    let held_count = List.length held in
    if sums.seq < held_count then
      Error "totals seq is smaller than the number of held rounds"
    else
      Ok
        { on = false;
          capacity = max 1 held_count;
          recorded = sums.seq;
          held;
          held_count;
          sums = { sums with seq = 0 } }
  end

let render_round r =
  Printf.sprintf
    "%4d %-10s up %6d B, down %8d B; %4d intervals, %4d btree, %3d blocks; \
     cache %d/%d; attempts %d, replays %d%s"
    r.seq r.label r.bytes_up r.bytes_down r.intervals_touched r.btree_hits
    r.blocks_returned r.cache_hits r.cache_misses r.attempts r.replays
    (if r.degraded then " [degraded]" else "")

let render t =
  String.concat "\n" (List.map render_round (rounds t) @ [ render_round (totals t) ])
  ^ "\n"
