(** Metrics registry: named monotonic counters, gauges and fixed-bucket
    histograms.

    Instruments are registered once ({!counter} and friends are
    idempotent: asking for an existing name returns the {e same}
    instrument) and cheap to bump afterwards — {!incr} on a disabled
    registry is a single boolean test, no allocation, no hashing.
    Registries start {e disabled} so instrumented hot paths cost
    nothing unless a caller (the CLI, a test, the bench harness) turns
    them on.

    One process-wide {!default} registry collects the library-level
    counters (transport, session, server); components that need
    isolated counters — the query engine, tests — create their own. *)

type registry

val create : ?enabled:bool -> unit -> registry
(** Fresh registry; disabled unless [~enabled:true]. *)

val default : registry
(** The process-wide registry the secure layers bump.  Disabled until
    {!set_enabled}; {!reset} it between measurements. *)

val enabled : registry -> bool
val set_enabled : registry -> bool -> unit

val ops : registry -> int
(** Total instrument updates recorded while enabled — the bench
    harness divides this by query count to bound instrumentation
    overhead. *)

(** {2 Instruments} *)

type counter
type gauge
type histogram

val counter : registry -> ?help:string -> string -> counter
(** Register (or fetch) a monotonic counter.  Registration is
    idempotent: the same name always yields the same counter.
    @raise Invalid_argument when [name] already names an instrument of
    a different kind. *)

val gauge : registry -> ?help:string -> string -> gauge

val histogram : registry -> ?help:string -> buckets:float list -> string -> histogram
(** [buckets] are upper bounds, strictly increasing; an implicit
    overflow bucket catches everything above the last bound.
    Re-registering with the same bounds returns the existing histogram.
    @raise Invalid_argument on an empty or unsorted bucket list, or
    when the name exists with different bounds or a different kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** @raise Invalid_argument on a negative amount (counters are
    monotone between resets). *)

val value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val bucket_bounds : histogram -> float array
val bucket_counts : histogram -> int array
(** One count per bound plus the trailing overflow bucket
    ([Array.length counts = Array.length bounds + 1]). *)

val observed_count : histogram -> int
val observed_sum : histogram -> float

(** {2 Snapshot and sinks} *)

type value_snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { bounds : float array; counts : int array; sum : float }

val snapshot : registry -> (string * value_snapshot) list
(** Name-sorted view of every registered instrument. *)

val snapshot_prefix : registry -> string -> (string * value_snapshot) list
(** {!snapshot} restricted to instruments whose name starts with the
    given prefix — how a multi-tenant caller carves one registry into
    per-tenant views (e.g. ["serve.tenant-a."]). *)

val reset : registry -> unit
(** Zero every instrument (and the {!ops} count); registration
    survives.  Enabled state is unchanged. *)

val to_json : registry -> Json.t
val render : registry -> string
(** Human-readable dump, one instrument per line, name-sorted. *)
