(** Leakage ledger: per query round, the facts the service provider's
    side of the wire can observe.

    Theorem 6.1 bounds what the server learns about {e which sensitive
    facts hold}; everything in this ledger is the complementary
    channel — access patterns and traffic shape — that the paper
    explicitly leaves unhidden.  Every field is derived from data the
    server already holds or sees: wire bytes, DSI intervals surviving
    structural joins, B-tree entries touched, ciphertext blocks
    shipped, cache outcomes keyed on ciphertext artifacts, and
    replay-cache hits (retransmitted frames are byte-identical, so the
    server links them with certainty; see docs/SECURITY.md).

    The ledger is bounded: once [capacity] rounds are held the oldest
    round is dropped (totals keep accumulating).  Recording on a
    disabled ledger is a no-op. *)

type round = {
  seq : int;                (** 1-based recording order, 0 until recorded *)
  label : string;           (** protocol path: "evaluate", "naive", ... *)
  bytes_up : int;           (** request bytes put on the wire *)
  bytes_down : int;         (** response bytes taken off the wire *)
  intervals_touched : int;  (** DSI intervals surviving per query node, summed *)
  btree_hits : int;         (** value-index entries touched *)
  blocks_returned : int;    (** candidate blocks shipped *)
  block_ids : int list;     (** ids of the shipped blocks, in shipping order —
                                the access pattern an adversary replays *)
  cache_hits : int;         (** ciphertext-keyed cache hits this round *)
  cache_misses : int;
  attempts : int;           (** session attempts the round needed (1 = clean) *)
  replays : int;            (** retransmitted frames the server linked *)
  degraded : bool;          (** the naive fallback answered *)
}

val round :
  ?bytes_up:int -> ?bytes_down:int -> ?intervals_touched:int -> ?btree_hits:int ->
  ?blocks_returned:int -> ?block_ids:int list -> ?cache_hits:int ->
  ?cache_misses:int -> ?attempts:int ->
  ?replays:int -> ?degraded:bool -> string -> round
(** Build a round with every numeric field defaulting to 0 ([attempts]
    to 1) and [degraded] to false; the argument is the label. *)

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** Disabled unless [~enabled:true]; keeps the last [capacity] rounds
    (default 1024). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> round -> unit
(** Append one round (its [seq] is assigned by the ledger). *)

val rounds : t -> round list
(** Retained rounds, oldest first. *)

val count : t -> int
(** Rounds ever recorded (including any dropped by the capacity bound). *)

val totals : t -> round
(** Field-wise sums over every round ever recorded, labelled
    ["totals"]; [degraded] is true when any round degraded, [attempts]
    sums. *)

val clear : t -> unit

val to_json : t -> Json.t
val round_to_json : round -> Json.t

val of_json : Json.t -> (t, string) result
(** Parse a ledger printed by {!to_json} for offline replay (the
    [sxq attack --trace] path).  The reconstruction is exact:
    [to_json (of_json j)] equals [j] structurally — held rounds keep
    their recorded sequence numbers, [count] comes from the totals row,
    and sums are taken as printed.  The returned ledger is disabled
    (recording into a replayed trace would corrupt it). *)

val round_of_json : Json.t -> (round, string) result

val render : t -> string
