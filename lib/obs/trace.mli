(** Structured trace spans.

    A tracer collects a deterministic in-memory tree of named spans:
    [span t "server.select_blocks" ~attrs f] opens a span, runs [f],
    and closes the span when [f] returns {e or raises}.  Time is a
    {e tick counter} injected by the caller — the default clock is a
    plain monotone counter that advances by one per open/close event,
    so traces taken in tests are bit-for-bit reproducible and never
    touch the wall clock.

    Tracers start disabled; a disabled {!span} is one boolean test
    around a direct call of [f].  Spans opened from several domains at
    once are not supported — the parallel evaluation paths skip
    tracing, matching the repo's determinism contract. *)

type t

type clock = unit -> int
(** Must be monotone non-decreasing across calls. *)

val create : ?enabled:bool -> ?clock:clock -> unit -> t
(** Disabled unless [~enabled:true].  Without [clock], an internal
    counter ticks once per span open/close and per {!event}. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run [f] inside a fresh span nested under the currently open one.
    The span is closed (and recorded) even when [f] raises; the
    exception is re-raised unchanged. *)

val event : t -> ?attrs:(string * string) list -> string -> unit
(** A zero-width span (start = end tick) attached to the open span. *)

type node = {
  name : string;
  attrs : (string * string) list;
  start_tick : int;
  end_tick : int;
  children : node list;   (** in open order *)
}

val roots : t -> node list
(** Completed top-level spans, oldest first.  Spans still open are not
    visible. *)

val clear : t -> unit
(** Drop recorded spans and reset the internal clock.  Must not be
    called while a span is open. *)

val to_json : t -> Json.t
val render : t -> string
(** Indented tree, one span per line with its tick range and
    attributes. *)
