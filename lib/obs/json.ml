type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- Printer -------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal that round-trips the float; always contains a '.',
   'e' or "inf"/"nan" marker so the parser keeps Int/Float apart. *)
let float_repr f =
  let s = Printf.sprintf "%.17g" f in
  let shorter = Printf.sprintf "%.15g" f in
  let s = if float_of_string shorter = f then shorter else s in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
     || String.contains s 'n' (* inf/nan, mapped to null above *)
  then s
  else s ^ ".0"

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (name, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape buf name;
          Buffer.add_string buf (if indent then ": " else ":");
          go (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* --- Parser --------------------------------------------------------- *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Bad (Printf.sprintf "%s at byte %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | Some _ | None -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c (Printf.sprintf "expected %C, found %C" ch x)
  | None -> fail c (Printf.sprintf "expected %C, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' ->
      advance c;
      (match peek c with
       | None -> fail c "unterminated escape"
       | Some e ->
         advance c;
         (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if c.pos + 4 > String.length c.src then fail c "short \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
             | None -> fail c "bad \\u escape"
             | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
             | Some code when code < 0x800 ->
               (* Re-encode as UTF-8 so escaped and raw bytes agree. *)
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             | Some code ->
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
          | other -> fail c (Printf.sprintf "bad escape \\%C" other));
         go ())
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | Some _ | None -> ()
  in
  go ();
  let text = String.sub c.src start (c.pos - start) in
  let floating =
    String.contains text '.' || String.contains text 'e' || String.contains text 'E'
  in
  if floating then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> fail c (Printf.sprintf "bad number %S" text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "empty input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    (match peek c with
     | Some ']' ->
       advance c;
       List []
     | Some _ | None ->
       let rec items acc =
         let v = parse_value c in
         skip_ws c;
         match peek c with
         | Some ',' ->
           advance c;
           items (v :: acc)
         | Some ']' ->
           advance c;
           List.rev (v :: acc)
         | Some ch -> fail c (Printf.sprintf "expected ',' or ']', found %C" ch)
         | None -> fail c "unterminated array"
       in
       List (items []))
  | Some '{' ->
    advance c;
    skip_ws c;
    (match peek c with
     | Some '}' ->
       advance c;
       Obj []
     | Some _ | None ->
       let field () =
         skip_ws c;
         let name = parse_string c in
         skip_ws c;
         expect c ':';
         name, parse_value c
       in
       let rec fields acc =
         let f = field () in
         skip_ws c;
         match peek c with
         | Some ',' ->
           advance c;
           fields (f :: acc)
         | Some '}' ->
           advance c;
           List.rev (f :: acc)
         | Some ch -> fail c (Printf.sprintf "expected ',' or '}', found %C" ch)
         | None -> fail c "unterminated object"
       in
       Obj (fields []))
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | exception Bad msg -> Error msg
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at byte %d" c.pos)
    else Ok v

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (na, va) (nb, vb) -> String.equal na nb && equal va vb)
         x y
  | (Null | Bool _ | Int _ | Float _ | Str _ | List _ | Obj _), _ -> false

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
