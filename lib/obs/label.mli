(** Label hygiene for metric names, span attributes and ledger tags.

    Caller-supplied strings (tenant ids above all) get embedded into
    metric names; this is the one sanctioned path for doing so. *)

val sanitize : string -> string
(** Restrict a label to [A-Za-z0-9._-], replacing every other byte with
    ['_'], and truncate to 64 bytes.  Idempotent; already-clean strings
    are returned unchanged (no allocation).

    Declared as a declassifier in the secret-flow policy
    (lib/analysis/policy.ml): a value routed through [sanitize] is
    considered safe to surface in observability output, precisely
    because the substitution destroys any secret content beyond the
    label's shape. *)
