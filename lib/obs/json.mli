(** Minimal JSON values for the observability sinks.

    The library is zero-dependency by design (it sits below every other
    layer), so it carries its own printer {e and} parser: the parser
    exists so the machine-readable sinks can be round-trip validated —
    [of_string (to_string v)] must return a value equal to [v] — which
    is exactly what the [trace-smoke] gate and the obs test suite
    check. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float   (** finite only; printing a non-finite float yields [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with two-space
    nesting.  Strings are escaped per RFC 8259 (control characters as
    [\uXXXX]); floats print with enough digits to round-trip. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed).  Numbers
    without [.], [e] or [E] parse as [Int]; everything else numeric as
    [Float].  [Error msg] carries a position-annotated reason. *)

val equal : t -> t -> bool
(** Structural equality; object fields compare in order. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
