(** Constant-time comparison.

    [String.equal] (and structural [=]) exit at the first differing
    byte, so an attacker who can submit guesses and time the check can
    recover a MAC one byte at a time.  Every authenticator comparison
    in the repo (session frames, block MACs, persisted-bundle trailers)
    must go through {!constant_time}; the [mac-compare] lint rule
    enforces this. *)

val constant_time : string -> string -> bool
(** [constant_time a b] is [String.equal a b], in time that depends
    only on the length of the shorter string — never on where the
    strings first differ.  Operand lengths are not hidden (MAC lengths
    are public constants). *)
