let constant_time a b =
  let la = String.length a and lb = String.length b in
  (* Fold every byte difference into one accumulator; no early exit. *)
  let acc = ref (la lxor lb) in
  for i = 0 to min la lb - 1 do
    acc := !acc lor (Char.code (String.unsafe_get a i)
                     lxor Char.code (String.unsafe_get b i))
  done;
  !acc = 0
