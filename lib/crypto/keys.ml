type t = {
  master : string;
  suite : Cipher.suite;
  derived : (string, string) Hashtbl.t;     (* label -> subkey memo *)
  mutable block_cipher : Cipher.prepared option;
}

let create ?(suite = Cipher.Xtea) ~master () =
  { master; suite; derived = Hashtbl.create 16; block_cipher = None }

let suite t = t.suite

let derive t label =
  match Hashtbl.find_opt t.derived label with
  | Some key -> key
  | None ->
    let key = Hmac.mac ~key:t.master ("derive\x00" ^ label) in
    Hashtbl.replace t.derived label key;
    key

let block_key t = derive t "block-cipher"

let block_cipher t =
  match t.block_cipher with
  | Some prepared -> prepared
  | None ->
    let prepared = Cipher.prepare t.suite (block_key t) in
    t.block_cipher <- Some prepared;
    prepared

(* The nonce only needs to be unique per (block, content version); the
   IV derivation is keyed downstream, so the identifiers themselves
   suffice.  Generation 0 keeps the historical shape so freshly hosted
   blocks stay byte-identical across versions of this code; re-encrypted
   blocks (incremental updates) bump the generation and therefore never
   reuse a nonce under the same key with different plaintext. *)
let block_nonce _t ?(generation = 0) ~block_id () =
  if generation = 0 then Printf.sprintf "blk-%d" block_id
  else Printf.sprintf "blk-%d.%d" block_id generation

let tag_key t = derive t "tag-vernam"

let tag_pad_id tag = "tag\x00" ^ tag

let ope_key t ~attribute = derive t ("ope\x00" ^ attribute)

let opess_key t ~attribute = derive t ("opess\x00" ^ attribute)

let dsi_key t = derive t "dsi-weights"

let decoy_key t = derive t "decoy"
