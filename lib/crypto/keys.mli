(** Client key management.

    The client holds a single master secret; every other key in the
    system (block encryption keys, tag pads, OPE keys, OPESS split and
    scale randomness, DSI gap weights) is derived from it with
    HMAC-SHA-256 so nothing but the master secret needs to be stored.

    Derivation labels are namespaced so independent uses can never
    collide. *)

type t
(** A key ring rooted at a master secret. *)

val create : ?suite:Cipher.suite -> master:string -> unit -> t
(** [create ~master ()] builds the ring.  [suite] selects the block
    cipher for subtree encryption (default {!Cipher.Xtea}). *)

val suite : t -> Cipher.suite

val derive : t -> string -> string
(** [derive t label] is a 32-byte subkey bound to [label]. *)

val block_key : t -> string
(** Key for CBC encryption of XML subtree blocks. *)

val block_cipher : t -> Cipher.prepared
(** Prepared (schedule-expanded) form of {!block_key} under the ring's
    suite, cached. *)

val block_nonce : t -> ?generation:int -> block_id:int -> unit -> string
(** Per-block CBC nonce, unique per (block, generation); keyed
    downstream.  [generation] defaults to [0] (a freshly hosted block)
    and is bumped by incremental re-encryption so the same block id
    never reuses a nonce for different plaintext. *)

val tag_key : t -> string
(** Key for the Vernam tag pads. *)

val tag_pad_id : string -> string
(** [tag_pad_id tag] is the deterministic pad id used to encrypt [tag];
    one pad per distinct tag keeps translation deterministic. *)

val ope_key : t -> attribute:string -> string
(** Per-attribute key for the order-preserving encryption function. *)

val opess_key : t -> attribute:string -> string
(** Per-attribute key for OPESS split weights and scale factors. *)

val dsi_key : t -> string
(** Key for DSI gap weights. *)

val decoy_key : t -> string
(** Key for generating encryption decoy values. *)
