module Doc = Xmlcore.Doc

type t = {
  doc : Doc.t;
  intervals : Interval.t array;
}

let interval t n = t.intervals.(n)

let doc t = t.doc

(* Weight in (0, 0.5) for child node [child_id]; [side] distinguishes w1
   from w2. *)
let weight ~key ~side child_id =
  let bits =
    Int64.shift_right_logical
      (Crypto.Hmac.prf64_prepared key (Printf.sprintf "dsi-w%d\x00%d" side child_id))
      11
  in
  let raw = Int64.to_float bits /. 9007199254740992.0 in
  (* Keep away from the extremes so gaps never collapse numerically. *)
  0.01 +. (raw *. 0.48)

(* Core calInterval recursion over a mutable interval array: place every
   descendant of [node] inside [intervals.(node)].  Shared by whole-tree
   [assign] and by incremental [subdivide] (which seeds the subtree root
   from a sibling gap first). *)
let rec place ~key doc intervals node =
  let iv = intervals.(node) in
  let children = Doc.children doc node in
  let count = List.length children in
  if count > 0 then begin
    let d = Interval.width iv /. float_of_int ((2 * count) + 1) in
    (* Each level shrinks widths by 1/(2N+1); below double-precision
       resolution the discontinuity guarantees collapse.  Fail loudly
       with the remedy rather than corrupting the index. *)
    if d < Float.abs iv.Interval.lo *. 1e-13 || d < 1e-300 then
      invalid_arg
        (Printf.sprintf
           "Dsi.Assign: node %d is too deep/narrow for float-interval \
            precision (interval width %.3g); the DSI scheme supports \
            documents up to roughly 2^53 total slot subdivisions — \
            restructure or shard the document"
           node (Interval.width iv));
    List.iteri
      (fun idx child ->
        let i = float_of_int (idx + 1) in
        let w1 = weight ~key ~side:1 child in
        let w2 = weight ~key ~side:2 child in
        let lo = iv.Interval.lo +. (((2.0 *. i) -. 1.0) *. d) -. (w1 *. d) in
        let hi = iv.Interval.lo +. (2.0 *. i *. d) +. (w2 *. d) in
        intervals.(child) <- Interval.make lo hi;
        place ~key doc intervals child)
      children
  end

let assign ~key doc =
  let key = Crypto.Hmac.prepare ~key in
  let n = Doc.node_count doc in
  let intervals = Array.make n (Interval.make 0.0 1.0) in
  place ~key doc intervals (Doc.root doc);
  { doc; intervals }

let of_intervals doc intervals =
  if Array.length intervals <> Doc.node_count doc then
    invalid_arg "Assign.of_intervals: interval count does not match document";
  { doc; intervals = Array.copy intervals }

let intervals t = Array.copy t.intervals

let subdivide ~key t node =
  let key = Crypto.Hmac.prepare ~key in
  place ~key t.doc t.intervals node

let interval_in_gap ~key ~label ~lo ~hi =
  if not (hi > lo) then invalid_arg "Assign.interval_in_gap: empty gap";
  let width = hi -. lo in
  let prepared = Crypto.Hmac.prepare ~key in
  let draw side =
    let bits =
      Int64.shift_right_logical
        (Crypto.Hmac.prf64_prepared prepared
           (Printf.sprintf "gap-w%d\x00%d" side label))
        11
    in
    Int64.to_float bits /. 9007199254740992.0
  in
  (* Land strictly inside the middle 60% of the gap, leaving fresh gaps
     on both sides for future inserts. *)
  let new_lo = lo +. (width *. (0.2 +. (draw 1 *. 0.2))) in
  let new_hi = hi -. (width *. (0.2 +. (draw 2 *. 0.2))) in
  if not (new_hi > new_lo) then
    invalid_arg "Assign.interval_in_gap: gap too narrow for float precision";
  Interval.make new_lo new_hi

let validate t =
  let exception Bad of string in
  let check node =
    let iv = t.intervals.(node) in
    if Interval.width iv <= 0.0 then
      raise (Bad (Printf.sprintf "degenerate interval at node %d" node));
    (match Doc.parent t.doc node with
     | None -> ()
     | Some p ->
       if not (Interval.contains t.intervals.(p) iv) then
         raise (Bad (Printf.sprintf "node %d not strictly inside its parent" node)));
    let rec check_siblings = function
      | a :: (b :: _ as rest) ->
        if not (t.intervals.(a).Interval.hi < t.intervals.(b).Interval.lo) then
          raise (Bad (Printf.sprintf "no gap between siblings %d and %d" a b));
        check_siblings rest
      | [ _ ] | [] -> ()
    in
    check_siblings (Doc.children t.doc node)
  in
  match Doc.iter t.doc check with
  | () -> Ok ()
  | exception Bad msg -> Error msg
