(** Structural (semi-)joins over DSI interval lists.

    These are the server-side primitives of query evaluation (Section
    6.2, step 1): given the interval lists retrieved from the DSI index
    table for two query nodes, prune the lists so only intervals that
    can stand in the required structural relationship survive.

    All functions assume the intervals come from one DSI assignment and
    therefore form a {e laminar} family: two intervals are either
    disjoint or strictly nested.

    The descendant axis is pure containment.  The child axis follows
    the paper's derivation
    [child(x,y) <-> desc(x,y) /\ ¬∃z: desc(x,z) /\ desc(z,y)]
    where [z] ranges over the {e universe} — every interval stored in
    the DSI index table.  Because the universe is large and reused
    across every child-axis join of every query, it is prepared (sorted)
    once with {!prepare_universe}. *)

type universe
(** Pre-sorted snapshot of all DSI-table intervals. *)

val prepare_universe : Interval.t list -> universe

val universe_size : universe -> int

val descendants_within :
  ancestors:Interval.t list -> Interval.t list -> Interval.t list
(** Keep the candidates strictly contained in at least one ancestor. *)

val ancestors_of_some :
  descendants:Interval.t list -> Interval.t list -> Interval.t list
(** Keep the candidates strictly containing at least one descendant. *)

val descendants_within_prepared :
  ancestors:universe -> Interval.t list -> Interval.t list
(** {!descendants_within} with the ancestor side prepared once via
    {!prepare_universe}: callers that probe the same fixed interval set
    repeatedly (block representatives, a cached table entry) skip the
    per-call sort. *)

val ancestors_of_some_prepared :
  descendants:Interval.t list -> candidates:universe -> Interval.t list
(** {!ancestors_of_some} with the candidate side prepared once via
    {!prepare_universe}.  The result preserves the prepared (document)
    order. *)

val children_within :
  universe:universe -> parents:Interval.t list ->
  Interval.t list -> Interval.t list
(** Keep the candidates whose innermost strict container (within the
    universe and [parents] together) is one of [parents]. *)

val parents_of_some :
  universe:universe -> children:Interval.t list ->
  Interval.t list -> Interval.t list
(** Keep the candidates that are the innermost container of at least
    one child. *)

val following_siblings_within :
  universe:universe -> anchors:Interval.t list ->
  Interval.t list -> Interval.t list
(** Keep the candidates that share their innermost container with some
    anchor and lie strictly after it (the DSI rendering of the
    [following-sibling] axis, Section 5.1). *)

val anchors_of_following :
  universe:universe -> followers:Interval.t list ->
  Interval.t list -> Interval.t list
(** Keep the candidates that have at least one follower among their
    later same-parent siblings. *)

val preceding_siblings_within :
  universe:universe -> anchors:Interval.t list ->
  Interval.t list -> Interval.t list
(** Mirror of {!following_siblings_within}: same innermost container,
    strictly before the anchor. *)

val anchors_of_preceding :
  universe:universe -> predecessors:Interval.t list ->
  Interval.t list -> Interval.t list
(** Keep the candidates preceded by one of [predecessors] among their
    same-parent siblings. *)
