type universe = Interval.t array (* sorted by compare_by_lo *)

let prepare_universe intervals =
  let u = Array.of_list intervals in
  Array.sort Interval.compare_by_lo u;
  u

let universe_size = Array.length

(* Sweep-line containment over a laminar interval family.

   [with_containers events queries f] calls [f query containers] for
   every query interval, where [containers] is the stack of event
   intervals strictly containing [query], innermost first.  [events]
   must be sorted by {!Interval.compare_by_lo}; queries are sorted
   internally.  The stack invariant (each element nested in the one
   below) holds because the family is laminar; exact duplicates are
   tolerated (they sit adjacently on the stack). *)
let with_containers (events : Interval.t array) queries f =
  let queries_sorted = List.sort Interval.compare_by_lo queries in
  let stack = ref [] in
  let next_event = ref 0 in
  List.iter
    (fun q ->
      (* Push events that start strictly before [q]. *)
      while
        !next_event < Array.length events
        && events.(!next_event).Interval.lo < q.Interval.lo
      do
        (* Drop finished intervals before pushing, to keep the stack laminar. *)
        while
          (match !stack with
           | top :: _ -> top.Interval.hi < events.(!next_event).Interval.lo
           | [] -> false)
        do
          stack := List.tl !stack
        done;
        stack := events.(!next_event) :: !stack;
        incr next_event
      done;
      (* Drop intervals that end before [q] starts. *)
      while
        (match !stack with
         | top :: _ -> top.Interval.hi < q.Interval.lo
         | [] -> false)
      do
        stack := List.tl !stack
      done;
      (* Remaining stack elements all strictly contain [q] except exact
         duplicates of [q], filtered here. *)
      let containers = List.filter (fun iv -> Interval.contains iv q) !stack in
      f q containers)
    queries_sorted

let sorted_array_of_list l =
  let a = Array.of_list l in
  Array.sort Interval.compare_by_lo a;
  a

let descendants_within ~ancestors candidates =
  let kept = ref [] in
  with_containers (sorted_array_of_list ancestors) candidates (fun q containers ->
      if containers <> [] then kept := q :: !kept);
  List.rev !kept

let ancestors_of_some ~descendants candidates =
  let marked = Hashtbl.create 64 in
  with_containers (sorted_array_of_list candidates) descendants (fun _ containers ->
      List.iter
        (fun c -> Hashtbl.replace marked (c.Interval.lo, c.Interval.hi) ())
        containers);
  List.filter (fun c -> Hashtbl.mem marked (c.Interval.lo, c.Interval.hi)) candidates

(* Prepared-universe variants: the fixed side of the join (a server's
   block representatives, a table entry reused across steps) is sorted
   once with {!prepare_universe} instead of per call. *)

let descendants_within_prepared ~ancestors candidates =
  let kept = ref [] in
  with_containers ancestors candidates (fun q containers ->
      if containers <> [] then kept := q :: !kept);
  List.rev !kept

let ancestors_of_some_prepared ~descendants ~candidates =
  let marked = Hashtbl.create 64 in
  with_containers candidates descendants (fun _ containers ->
      List.iter
        (fun c -> Hashtbl.replace marked (c.Interval.lo, c.Interval.hi) ())
        containers);
  List.filter
    (fun c -> Hashtbl.mem marked (c.Interval.lo, c.Interval.hi))
    (Array.to_list candidates)

(* Merge the prepared universe with the (sorted) parents into one
   sorted event array; duplicates are harmless to the sweep. *)
let merge_events universe parents_sorted =
  let np = Array.length parents_sorted and nu = Array.length universe in
  if np = 0 then universe
  else begin
    let out = Array.make (nu + np) parents_sorted.(0) in
    let i = ref 0 and j = ref 0 in
    for k = 0 to nu + np - 1 do
      if
        !j >= np
        || (!i < nu && Interval.compare_by_lo universe.(!i) parents_sorted.(!j) <= 0)
      then begin
        out.(k) <- universe.(!i);
        incr i
      end
      else begin
        out.(k) <- parents_sorted.(!j);
        incr j
      end
    done;
    out
  end

(* The innermost strict container of each query among universe+parents
   decides child-axis membership; results are (query, parent) pairs. *)
let innermost_is_parent ~universe ~parents queries =
  let parent_set = Hashtbl.create (List.length parents) in
  List.iter
    (fun p -> Hashtbl.replace parent_set (p.Interval.lo, p.Interval.hi) ())
    parents;
  let events = merge_events universe (sorted_array_of_list parents) in
  let result = ref [] in
  with_containers events queries (fun q containers ->
      match containers with
      | innermost :: _
        when Hashtbl.mem parent_set (innermost.Interval.lo, innermost.Interval.hi) ->
        result := (q, innermost) :: !result
      | _ :: _ | [] -> ());
  !result

let children_within ~universe ~parents candidates =
  let pairs = innermost_is_parent ~universe ~parents candidates in
  List.sort Interval.compare_by_lo (List.map fst pairs)

(* Innermost universe container key of each query ((lo,hi), or None for
   top level), as an association list in query order. *)
let container_keys ~universe queries =
  let out = ref [] in
  with_containers universe queries (fun q containers ->
      let key =
        match containers with
        | innermost :: _ -> Some (innermost.Interval.lo, innermost.Interval.hi)
        | [] -> None
      in
      out := (q, key) :: !out);
  !out

(* A table interval may be the hull of several grouped same-tag
   siblings, so an interval can hide both an anchor and its follower:
   hull-equal pairs must be kept for completeness (the client filters
   any false positives after decryption). *)
let interval_set intervals =
  let h = Hashtbl.create (List.length intervals) in
  List.iter (fun iv -> Hashtbl.replace h (iv.Interval.lo, iv.Interval.hi) ()) intervals;
  h

let following_siblings_within ~universe ~anchors candidates =
  (* Earliest anchor end per parent; a candidate follows iff its parent
     has an anchor ending before the candidate starts. *)
  let min_hi = Hashtbl.create 32 in
  List.iter
    (fun (a, key) ->
      let prev = Hashtbl.find_opt min_hi key in
      if prev = None || Option.get prev > a.Interval.hi then
        Hashtbl.replace min_hi key a.Interval.hi)
    (container_keys ~universe anchors);
  let anchor_set = interval_set anchors in
  List.filter
    (fun (c, key) ->
      Hashtbl.mem anchor_set (c.Interval.lo, c.Interval.hi)
      ||
      match Hashtbl.find_opt min_hi key with
      | Some hi -> hi < c.Interval.lo
      | None -> false)
    (container_keys ~universe candidates)
  |> List.map fst
  |> List.sort Interval.compare_by_lo

let anchors_of_following ~universe ~followers candidates =
  (* Latest follower start per parent; an anchor qualifies iff some
     follower of the same parent starts after it ends. *)
  let max_lo = Hashtbl.create 32 in
  List.iter
    (fun (f, key) ->
      let prev = Hashtbl.find_opt max_lo key in
      if prev = None || Option.get prev < f.Interval.lo then
        Hashtbl.replace max_lo key f.Interval.lo)
    (container_keys ~universe followers);
  let follower_set = interval_set followers in
  List.filter
    (fun (c, key) ->
      Hashtbl.mem follower_set (c.Interval.lo, c.Interval.hi)
      ||
      match Hashtbl.find_opt max_lo key with
      | Some lo -> lo > c.Interval.hi
      | None -> false)
    (container_keys ~universe candidates)
  |> List.map fst
  |> List.sort Interval.compare_by_lo

let preceding_siblings_within ~universe ~anchors candidates =
  (* Latest anchor start per parent; a candidate precedes iff its
     parent has an anchor starting after the candidate ends. *)
  let max_lo = Hashtbl.create 32 in
  List.iter
    (fun (a, key) ->
      let prev = Hashtbl.find_opt max_lo key in
      if prev = None || Option.get prev < a.Interval.lo then
        Hashtbl.replace max_lo key a.Interval.lo)
    (container_keys ~universe anchors);
  let anchor_set = interval_set anchors in
  List.filter
    (fun (c, key) ->
      Hashtbl.mem anchor_set (c.Interval.lo, c.Interval.hi)
      ||
      match Hashtbl.find_opt max_lo key with
      | Some lo -> lo > c.Interval.hi
      | None -> false)
    (container_keys ~universe candidates)
  |> List.map fst
  |> List.sort Interval.compare_by_lo

let anchors_of_preceding ~universe ~predecessors candidates =
  (* Earliest predecessor end per parent; an anchor qualifies iff a
     predecessor of the same parent ends before it starts. *)
  let min_hi = Hashtbl.create 32 in
  List.iter
    (fun (p, key) ->
      let prev = Hashtbl.find_opt min_hi key in
      if prev = None || Option.get prev > p.Interval.hi then
        Hashtbl.replace min_hi key p.Interval.hi)
    (container_keys ~universe predecessors);
  let pred_set = interval_set predecessors in
  List.filter
    (fun (c, key) ->
      Hashtbl.mem pred_set (c.Interval.lo, c.Interval.hi)
      ||
      match Hashtbl.find_opt min_hi key with
      | Some hi -> hi < c.Interval.lo
      | None -> false)
    (container_keys ~universe candidates)
  |> List.map fst
  |> List.sort Interval.compare_by_lo

let parents_of_some ~universe ~children candidates =
  let pairs = innermost_is_parent ~universe ~parents:candidates children in
  let marked = Hashtbl.create 64 in
  List.iter
    (fun (_, p) -> Hashtbl.replace marked (p.Interval.lo, p.Interval.hi) ())
    pairs;
  List.filter (fun c -> Hashtbl.mem marked (c.Interval.lo, c.Interval.hi)) candidates
