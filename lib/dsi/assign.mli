(** DSI interval assignment — the [calInterval] algorithm of Figure 3.

    The root receives [\[0, 1\]].  A node [p] with interval
    [\[min, max\]] and [N] children divides its width into [2N + 1]
    slots of size [d = (max - min) / (2N + 1)]; child [i] (1-based)
    receives
    {v
      min_i = min + (2i - 1)·d − w1_i·d
      max_i = min + 2i·d      + w2_i·d
    v}
    with per-child secret weights [w1_i, w2_i ∈ (0, 0.5)].  This leaves
    a strictly positive gap of [(1 − w2_i − w1_{i+1})·d] between
    adjacent children, a gap before the first child and one after the
    last — so the server can never tell whether two table intervals were
    adjacent siblings, nor how many nodes a grouped interval hides.

    Weights are derived from the client's DSI key via a PRF keyed by
    the child's preorder id, so the client can regenerate them without
    storing anything. *)

type t
(** Intervals for every node of one document. *)

val assign : key:string -> Xmlcore.Doc.t -> t
(** [assign ~key doc] runs calInterval over the whole document. *)

val interval : t -> Xmlcore.Doc.node -> Interval.t
(** The interval assigned to a node. *)

val doc : t -> Xmlcore.Doc.t

val of_intervals : Xmlcore.Doc.t -> Interval.t array -> t
(** [of_intervals doc intervals] wraps an externally supplied interval
    array (indexed by preorder node id) as an assignment.  This is how
    incrementally patched assignments are built: surviving nodes copy
    their old intervals through the edit's node correspondence, inserted
    nodes draw fresh ones from {!interval_in_gap}/{!subdivide}.  A
    patched assignment is {e not} recomputable from the key alone, so
    persistence must store the array.  The array is copied.
    @raise Invalid_argument when the length differs from the document's
    node count. *)

val intervals : t -> Interval.t array
(** The per-node interval array (a copy), for persistence. *)

val subdivide : key:string -> t -> Xmlcore.Doc.node -> unit
(** [subdivide ~key t node] reruns calInterval below [node], placing
    every descendant inside [node]'s current interval (which must
    already be set, e.g. by {!interval_in_gap}).  Used after an insert
    to lay out the new subtree's interior.
    @raise Invalid_argument when float precision would collapse, as in
    {!assign}. *)

val interval_in_gap :
  key:string -> label:int -> lo:float -> hi:float -> Interval.t
(** [interval_in_gap ~key ~label ~lo ~hi] draws a fresh interval
    strictly inside the open gap [(lo, hi)], keyed like the calInterval
    weights.  This is the incremental-update primitive: the gaps that
    calInterval reserves between siblings (and between a parent's
    bounds and its first/last child) can absorb inserted subtrees
    without moving any existing interval.
    @raise Invalid_argument if the gap is empty or too narrow for a
    well-formed interval. *)

val validate : t -> (unit, string) result
(** Checks the structural invariants: every child interval strictly
    inside its parent's, positive gaps between adjacent siblings,
    first/last child strictly inside the parent's bounds.  Fails also
    when float precision has degenerated (zero-width intervals), which
    bounds the document depth/fanout this index supports. *)
