type mref = {
  path : string list;
  line : int;
  col : int;
}

let all_rule_ids =
  [ "layering"; "trust-boundary"; "mac-compare"; "random-source";
    "secret-print"; "partiality"; "concurrency"; "secret-flow" ]

(* --- Module-reference extraction ----------------------------------- *)

(* A reference starts at a capitalized identifier that is not itself a
   path member ([. Uident]) and not a module binder ([module Uident]).
   The path extends through [.Uident] segments and one final [.lident]
   projection. *)
let raw_refs tokens =
  let n = Array.length tokens in
  let refs = ref [] in
  let aliases = Hashtbl.create 8 in
  let kind i = if i >= 0 && i < n then Some tokens.(i).Lexer.kind else None in
  let path_at i u =
    let comps = ref [ u ] in
    let j = ref i in
    let stop = ref false in
    while not !stop do
      match kind (!j + 1), kind (!j + 2) with
      | Some (Op "."), Some (Uident v) ->
        comps := v :: !comps;
        j := !j + 2
      | Some (Op "."), Some (Lident l) ->
        comps := l :: !comps;
        j := !j + 2;
        stop := true
      | _ -> stop := true
    done;
    List.rev !comps
  in
  for i = 0 to n - 1 do
    match tokens.(i).Lexer.kind with
    | Uident u when kind (i - 1) <> Some (Op ".") ->
      if kind (i - 1) = Some (Keyword "module") then begin
        (* Binder, not a reference; record [module U = V...] aliases so
           later references through the alias still resolve. *)
        match kind (i + 1), kind (i + 2) with
        | Some (Op "="), Some (Uident v) ->
          let rhs = List.filter (fun c -> c.[0] >= 'A' && c.[0] <= 'Z')
              (path_at (i + 2) v)
          in
          Hashtbl.replace aliases u rhs
        | _ -> ()
      end
      else
        refs :=
          { path = path_at i u;
            line = tokens.(i).Lexer.line;
            col = tokens.(i).Lexer.col }
          :: !refs
    | _ -> ()
  done;
  List.rev !refs, aliases

let expand_alias aliases r =
  let rec expand depth path =
    if depth = 0 then path
    else
      match path with
      | root :: rest -> (
        match Hashtbl.find_opt aliases root with
        | Some rhs when rhs <> [ root ] -> expand (depth - 1) (rhs @ rest)
        | _ -> path)
      | [] -> path
  in
  { r with path = expand 4 r.path }

let module_refs (lex : Lexer.t) =
  let refs, aliases = raw_refs lex.tokens in
  List.map (expand_alias aliases) refs

(* --- Identifier classification ------------------------------------- *)

let components ident = String.split_on_char '_' (String.lowercase_ascii ident)

let has_component ident names =
  List.exists (fun c -> List.mem c names) (components ident)

(* Values whose comparison must be constant-time. *)
let timing_sensitive ident =
  has_component ident [ "hmac"; "digest" ]
  || (has_component ident [ "mac" ] && not (String.equal ident "mac_len"))
  || String.equal (String.lowercase_ascii ident) "auth_tag"

(* Values that must never reach a formatter. *)
let print_sensitive ident =
  has_component ident [ "secret"; "password"; "passphrase"; "master" ]
  || (String.length ident > 4
      && String.sub ident (String.length ident - 4) 4 = "_key")
  || String.equal ident "keys"

(* --- Binding vs. comparison [=] ------------------------------------ *)

(* Walk left from the [=], skipping pattern-shaped tokens; the first
   structural token decides.  [let]/[and]/record-[{]/[;]/[with]/[?]
   open a binding position; anything else ([if], [->], another [=],
   [&&], ...) means the [=] compares. *)
let is_binding_eq tokens i =
  (* Jump from a closer to the index before its matching opener, so a
     whole parenthesised group ([?(x = d)], [(a, b)]) reads as one
     pattern atom and an [=] inside it cannot decide for an [=]
     outside it. *)
  let skip_group close open_ j =
    let depth = ref 1 and k = ref (j - 1) in
    while !depth > 0 && !k >= 0 do
      (match tokens.(!k).Lexer.kind with
       | Op c when c = close -> incr depth
       | Op o when o = open_ -> decr depth
       | _ -> ());
      decr k
    done;
    !k
  in
  let rec back j =
    if j < 0 then true
    else
      match tokens.(j).Lexer.kind with
      | Op ")" -> back (skip_group ")" "(" j)
      | Op "]" -> back (skip_group "]" "[" j)
      | Lident _ | Uident _ | Int_lit | String_lit | Char_lit -> back (j - 1)
      | Op ("." | "~" | ":" | "," | "*" | "(" | "[") -> back (j - 1)
      | Keyword
          ( "let" | "and" | "rec" | "nonrec" | "type" | "module" | "val"
          | "method" | "external" | "mutable" | "with" | "for" | "exception"
          | "of" ) -> true
      | Op ("{" | ";" | "?") -> true
      | _ -> false
  in
  back (i - 1)

(* --- Rules ---------------------------------------------------------- *)

let finding rule rel (tok : Lexer.token) message =
  { Finding.rule; file = rel; line = tok.line; col = tok.col; message;
    witness = [] }

let dotted path = String.concat "." path

let starts_with ~prefix s =
  let pl = String.length prefix in
  String.length s >= pl && String.sub s 0 pl = prefix

let layering policy ~rel ~lib refs =
  List.filter_map
    (fun r ->
      match r.path with
      | root :: _ -> (
        match Policy.library_of_root policy root with
        | Some target
          when target <> lib && not (List.mem target (Policy.allowed_deps policy lib))
          ->
          Some
            { Finding.rule = "layering";
              file = rel;
              line = r.line;
              col = r.col;
              message =
                Printf.sprintf
                  "library '%s' may not depend on '%s' (reference to %s)" lib
                  target (dotted r.path);
              witness = [] }
        | _ -> None)
      | [] -> None)
    refs

let trust_boundary policy ~rel refs =
  match List.assoc_opt rel policy.Policy.boundary with
  | None -> []
  | Some forbidden ->
    let forbidden_roots =
      List.sort_uniq String.compare
        (List.filter_map
           (fun p ->
             match String.split_on_char '.' p with r :: _ -> Some r | [] -> None)
           forbidden)
    in
    List.filter_map
      (fun r ->
        let d = dotted r.path in
        let hit =
          List.find_opt
            (fun p -> String.equal d p || starts_with ~prefix:(p ^ ".") d)
            forbidden
        in
        match hit, r.path with
        | Some p, _ ->
          Some
            { Finding.rule = "trust-boundary";
              file = rel;
              line = r.line;
              col = r.col;
              message =
                Printf.sprintf
                  "server-side code may not reference %s (forbidden: %s stays \
                   on the client side of the wire)"
                  d p;
              witness = [] }
        | None, [ root ] when List.mem root forbidden_roots ->
          Some
            { Finding.rule = "trust-boundary";
              file = rel;
              line = r.line;
              col = r.col;
              message =
                Printf.sprintf
                  "bare reference to %s (e.g. via open) defeats the per-module \
                   boundary check; use qualified paths"
                  root;
              witness = [] }
        | _ -> None)
      refs

let random_source policy ~rel refs =
  if List.mem rel policy.Policy.random_ok then []
  else
    List.filter_map
      (fun r ->
        match r.path with
        | "Random" :: _ ->
          Some
            { Finding.rule = "random-source";
              file = rel;
              line = r.line;
              col = r.col;
              message =
                "stdlib Random breaks seeded reproducibility; use Crypto.Prng \
                 (lib/crypto/prng.ml) instead";
              witness = [] }
        | _ -> None)
      refs

(* Raw concurrency primitives are confined behind the Parallel library
   (the policy's [concurrency_ok] prefixes): its pool's deterministic
   merge is the only sanctioned way to fan work across domains, and a
   stray Mutex or Atomic elsewhere would be invisible to that
   argument. *)
let concurrency_roots =
  [ "Domain"; "Mutex"; "Condition"; "Atomic"; "Thread"; "Semaphore" ]

let concurrency policy ~rel refs =
  if
    List.exists
      (fun prefix -> starts_with ~prefix rel)
      policy.Policy.concurrency_ok
  then []
  else
    List.filter_map
      (fun r ->
        let root =
          match r.path with
          | "Stdlib" :: root :: _ -> Some root
          | root :: _ -> Some root
          | [] -> None
        in
        match root with
        | Some root when List.mem root concurrency_roots ->
          Some
            { Finding.rule = "concurrency";
              file = rel;
              line = r.line;
              col = r.col;
              message =
                Printf.sprintf
                  "%s is a raw concurrency primitive; only lib/parallel may \
                   touch it — use Parallel.Pool / Parallel.Lock"
                  (dotted r.path);
              witness = [] }
        | _ -> None)
      refs

(* Token-pattern helpers over the array. *)
let path3 tokens i m f =
  let n = Array.length tokens in
  i + 2 < n
  && tokens.(i).Lexer.kind = Lexer.Uident m
  && tokens.(i + 1).Lexer.kind = Lexer.Op "."
  && (match tokens.(i + 2).Lexer.kind with
     | Lexer.Lident l -> f l
     | _ -> false)

let bare_lident tokens i names =
  (match tokens.(i).Lexer.kind with
   | Lexer.Lident l -> List.mem l names
   | _ -> false)
  && (i = 0 || tokens.(i - 1).Lexer.kind <> Lexer.Op ".")

let mac_compare ~rel (lex : Lexer.t) =
  let tokens = lex.tokens in
  let n = Array.length tokens in
  let window_hit i =
    let t = tokens.(i) in
    let found = ref None in
    for j = max 0 (i - 10) to min (n - 1) (i + 10) do
      (match tokens.(j).Lexer.kind with
       | Lexer.Lident l
         when !found = None
              && abs (tokens.(j).Lexer.line - t.Lexer.line) <= 1
              && timing_sensitive l ->
         found := Some l
       | _ -> ())
    done;
    !found
  in
  let out = ref [] in
  let report i what =
    match window_hit i with
    | Some ident ->
      out :=
        finding "mac-compare" rel tokens.(i)
          (Printf.sprintf
             "%s on '%s' is not constant-time; use Crypto.Eq.constant_time"
             what ident)
        :: !out
    | None -> ()
  in
  for i = 0 to n - 1 do
    match tokens.(i).Lexer.kind with
    | Lexer.Op (("=" | "<>") as op) when not (is_binding_eq tokens i) ->
      report i (Printf.sprintf "structural (%s)" op)
    | _ when path3 tokens i "String" (fun l -> l = "equal" || l = "compare") ->
      report i "String comparison"
    | _ when path3 tokens i "Stdlib" (fun l -> l = "compare") ->
      report i "polymorphic compare"
    | _ when bare_lident tokens i [ "compare" ] -> report i "polymorphic compare"
    | _ -> ()
  done;
  List.rev !out

let secret_print ~rel (lex : Lexer.t) =
  let tokens = lex.tokens in
  let n = Array.length tokens in
  let head i =
    match tokens.(i).Lexer.kind with
    | Lexer.Uident (("Printf" | "Format") as m) -> path3 tokens i m (fun _ -> true)
    | Lexer.Uident (("Log" | "Logs") as m) ->
      path3 tokens i m (fun l ->
          List.mem l [ "debug"; "info"; "warn"; "err"; "app"; "msg" ])
    | Lexer.Lident _ ->
      bare_lident tokens i
        [ "print_string"; "print_endline"; "prerr_string"; "prerr_endline" ]
    | _ -> false
  in
  let out = ref [] in
  for i = 0 to n - 1 do
    if head i then begin
      let t = tokens.(i) in
      let j = ref (i + 1) in
      let hit = ref None in
      let stopped = ref false in
      while
        (not !stopped) && !hit = None && !j < n
        && !j <= i + 40
        && tokens.(!j).Lexer.line <= t.Lexer.line + 2
      do
        (match tokens.(!j).Lexer.kind with
         | Lexer.Lident l when print_sensitive l -> hit := Some l
         | Lexer.Keyword ("let" | "and" | "in" | "module" | "type" | "val") ->
           (* the argument list cannot extend past these *)
           stopped := true
         | _ -> ());
        incr j
      done;
      match !hit with
      | Some ident ->
        out :=
          finding "secret-print" rel t
            (Printf.sprintf
               "formatting call may leak secret-named value '%s'" ident)
          :: !out
      | None -> ()
    end
  done;
  List.rev !out

let partiality policy ~rel (lex : Lexer.t) =
  if not (List.mem rel policy.Policy.total_paths) then []
  else begin
    let tokens = lex.tokens in
    let n = Array.length tokens in
    let out = ref [] in
    let report i msg = out := finding "partiality" rel tokens.(i) msg :: !out in
    for i = 0 to n - 1 do
      match tokens.(i).Lexer.kind with
      | Lexer.Keyword "assert" ->
        (* allow an optional parenthesis: [assert (false)] *)
        let j = if i + 1 < n && tokens.(i + 1).Lexer.kind = Lexer.Op "(" then i + 2 else i + 1 in
        if j < n && tokens.(j).Lexer.kind = Lexer.Keyword "false" then
          report i
            "'assert false' on a hostile-input path; return a typed error or \
             make the match total"
      | _ when bare_lident tokens i [ "failwith" ] ->
        report i
          "'failwith' on a hostile-input path; raise a typed exception from \
           the error taxonomy instead"
      | _ when path3 tokens i "List" (fun l -> l = "hd" || l = "tl") ->
        report i "partial List projection; match on the list shape instead"
      | _ when path3 tokens i "Option" (fun l -> l = "get") ->
        report i "'Option.get' is partial; match on the option instead"
      | _ -> ()
    done;
    List.rev !out
  end

let check policy ~rel (lex : Lexer.t) =
  match Policy.classify rel with
  | None -> []
  | Some kind ->
    let refs = module_refs lex in
    let structural =
      match kind with
      | Policy.Library lib -> layering policy ~rel ~lib refs
      | Policy.Binary | Policy.Test_unit -> []
    in
    structural
    @ trust_boundary policy ~rel refs
    @ random_source policy ~rel refs
    @ concurrency policy ~rel refs
    @ mac_compare ~rel lex
    @ secret_print ~rel lex
    @ partiality policy ~rel lex
