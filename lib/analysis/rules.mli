(** The lint rules.

    Every rule works on the {!Lexer} token stream — never on raw text —
    so literals and comments cannot produce findings.  Rules are
    heuristic where full type information would be needed (see
    [docs/STATIC_ANALYSIS.md] for the precise approximations); anything
    too clever for the heuristics is suppressed inline with
    [(* lint: allow <rule> *)].

    Rule identifiers: [layering], [trust-boundary], [mac-compare],
    [random-source], [secret-print], [partiality], [concurrency]. *)

type mref = {
  path : string list;  (** dotted components, aliases expanded *)
  line : int;
  col : int;
}

val module_refs : Lexer.t -> mref list
(** Capitalized module paths referenced by a compilation unit, with
    single-step [module X = A.B] aliases expanded (to a fixed depth).
    Module-definition binders ([module X]) are not references; the
    right-hand side of an alias is. *)

val is_binding_eq : Lexer.token array -> int -> bool
(** Whether the [=] at token index [i] binds ([let x =], record fields,
    optional-argument defaults, [for i =], type/module equations) rather
    than compares.  Exposed for tests. *)

val all_rule_ids : string list

val check : Policy.t -> rel:string -> Lexer.t -> Finding.t list
(** Run every rule applicable to [rel] under the policy.  Suppression
    comments and the baseline are applied by {!Lint}, not here. *)
