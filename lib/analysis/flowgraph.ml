type slot = {
  label : string option;
  groups : int list;
}

type binding = {
  group : int;
  name : string;
  line : int;
  toplevel : bool;
  is_param : bool;
  slots : slot list;
}

type frame = {
  head : string list;
  arg_index : int;
  arg_label : string option;
}

type use = {
  path : string list;
  line : int;
  col : int;
  binder : int;
  frames : frame list;
}

type t = {
  rel : string;
  modpath : string list;
  bindings : binding list;
  uses : use list;
}

let qualify g path =
  match path with
  | [ x ] when x <> "" && x.[0] >= 'a' && x.[0] <= 'z' ->
    String.concat "." (g.modpath @ [ x ])
  | _ -> String.concat "." path

(* --- Scanner state -------------------------------------------------- *)

(* An open application: [head] applied to the arguments scanned so far.
   [argi] counts unlabelled argument atoms (labelled ones are matched by
   name, so they do not shift positions); [lab] is the label of the
   argument atom currently open, [pending] a label waiting for its
   atom ([~l: expr]). *)
type app = {
  ahead : string list;
  fdepth : int;
  mutable argi : int;
  mutable lab : string option;
  mutable pending : string option;
  mutable in_atom : bool;
}

type scan = {
  toks : Lexer.token array;
  n : int;
  aliases : (string, string list) Hashtbl.t;
  mutable depth : int;
  mutable openers : char list;             (* innermost first *)
  mutable bstack : (int * int) list;       (* (group, depth), innermost first *)
  mutable astack : app list;               (* innermost first *)
  mutable expr_start : bool;
  mutable in_typedecl : bool;
  mutable typedecl_depth : int;
  mutable next_group : int;
  mutable bindings : binding list;
  mutable uses : use list;
}

let kind_at s i = if i >= 0 && i < s.n then Some s.toks.(i).Lexer.kind else None

let is_opener = function
  | Lexer.Op ("(" | "[" | "{") -> true
  | Lexer.Keyword ("begin" | "struct" | "sig" | "object") -> true
  | _ -> false

let is_closer = function
  | Lexer.Op (")" | "]" | "}") -> true
  | Lexer.Keyword "end" -> true
  | _ -> false

(* Does the token start an expression atom (and therefore, right after a
   path in head position, mark that path as applied)? *)
let starts_atom = function
  | Lexer.Lident _ | Lexer.Uident _ | Lexer.Int_lit | Lexer.String_lit
  | Lexer.Char_lit -> true
  | Lexer.Op ("(" | "[" | "{" | "~" | "?" | "!") -> true
  | Lexer.Keyword ("true" | "false" | "fun" | "function" | "begin") -> true
  | _ -> false

let fresh s =
  let g = s.next_group in
  s.next_group <- g + 1;
  g

let pop_frames_deeper s d =
  let rec go = function
    | a :: rest when a.fdepth > d -> go rest
    | rest -> rest
  in
  s.astack <- go s.astack

(* The pseudo-head recorded for anonymous [fun]/[function] bodies: a
   use inside a lambda does not flow into the application the lambda is
   an argument of (the closure does, but tracking that through generic
   runners like [timed] or a pool's [map] would conflate every call
   site).  {!Taint} stops its outward frame walk here; the use still
   taints the binding the lambda body sits under. *)
let lambda_head = [ "(fun)" ]

let lambda_frame s =
  { ahead = lambda_head;
    fdepth = s.depth;
    argi = -1;
    lab = None;
    pending = None;
    in_atom = false }

(* Operators and branch keywords terminate open applications at their
   depth, but a lambda extends past them ([fun () -> a; b] — [b] is
   still inside the lambda), so markers survive until the depth drops
   or an [in]/[let] closes the scope. *)
let pop_frames_at ?(keep_lambdas = false) s d =
  let rec go = function
    | a :: rest when a.fdepth >= d ->
      if keep_lambdas && a.ahead == lambda_head then a :: go rest else go rest
    | rest -> rest
  in
  s.astack <- go s.astack

let pop_bindings_deeper s d =
  let rec go = function
    | (_, bd) :: rest when bd > d -> go rest
    | rest -> rest
  in
  s.bstack <- go s.bstack

(* Mark that an atom is starting at the innermost frame (if it is at the
   frame's own depth): consume a pending label or count a positional
   argument. *)
let begin_atom s =
  match s.astack with
  | a :: _ when a.fdepth = s.depth && not a.in_atom ->
    (match a.pending with
     | Some l ->
       a.lab <- Some l;
       a.pending <- None
     | None ->
       a.argi <- a.argi + 1;
       a.lab <- None);
    a.in_atom <- true
  | _ -> ()

let end_atom s =
  match s.astack with
  | a :: _ when a.fdepth = s.depth -> a.in_atom <- false
  | _ -> ()

let snapshot_frames s =
  List.map
    (fun a -> { head = a.ahead; arg_index = a.argi; arg_label = a.lab })
    s.astack

(* --- Path consumption ----------------------------------------------- *)

(* Starting at an Uident, collect [U(.U)*(.l)?]; starting at an Lident,
   collect just the root and skip trailing [.field] projections.
   Returns (path, next_index). *)
let consume_path s i =
  match s.toks.(i).Lexer.kind with
  | Lexer.Uident u ->
    let comps = ref [ u ] in
    let j = ref i in
    let stop = ref false in
    while not !stop do
      match kind_at s (!j + 1), kind_at s (!j + 2) with
      | Some (Lexer.Op "."), Some (Lexer.Uident v) ->
        comps := v :: !comps;
        j := !j + 2
      | Some (Lexer.Op "."), Some (Lexer.Lident l) ->
        comps := l :: !comps;
        j := !j + 2;
        stop := true
      | _ -> stop := true
    done;
    List.rev !comps, !j + 1
  | Lexer.Lident x ->
    let j = ref i in
    let stop = ref false in
    while not !stop do
      match kind_at s (!j + 1), kind_at s (!j + 2) with
      | Some (Lexer.Op "."), Some (Lexer.Lident _) -> j := !j + 2
      | _ -> stop := true
    done;
    [ x ], !j + 1
  | _ -> [], i + 1

let expand_alias s path =
  let rec expand depth path =
    if depth = 0 then path
    else
      match path with
      | root :: rest -> (
        match Hashtbl.find_opt s.aliases root with
        | Some rhs when rhs <> [ root ] -> expand (depth - 1) (rhs @ rest)
        | _ -> path)
      | [] -> path
  in
  expand 4 path

(* --- Pattern parsing ------------------------------------------------ *)

(* Collect the Lidents of a pattern token slice that are bound names:
   skip field projections ([.x]) and everything after a [:] type
   annotation (reset at [,] and [;]). *)
let pattern_names toks =
  let names = ref [] in
  let ann = ref false in
  List.iteri
    (fun k tk ->
      match tk with
      | Lexer.Op (":") -> ann := true
      | Lexer.Op ("," | ";") -> ann := false
      | Lexer.Lident x when x <> "_" && not !ann ->
        let prev = if k = 0 then None else Some (List.nth toks (k - 1)) in
        if prev <> Some (Lexer.Op ".") then names := x :: !names
      | _ -> ())
    toks;
  List.rev !names

(* Parse one parameter pattern list (the tokens between a function name
   and [=]).  Returns slots; each slot registers its bound names as
   param bindings. *)
let parse_params s line toks =
  let slots = ref [] in
  let register names =
    List.map
      (fun name ->
        let g = fresh s in
        s.bindings <-
          { group = g; name; line; toplevel = false; is_param = true; slots = [] }
          :: s.bindings;
        g)
      names
  in
  let add label names = slots := { label; groups = register names } :: !slots in
  let arr = Array.of_list toks in
  let n = Array.length arr in
  let i = ref 0 in
  (* skip a parenthesized group, returning the tokens inside *)
  let group_tokens stop_open stop_close =
    (* arr.(!i) is the opener *)
    let d = ref 1 in
    let inner = ref [] in
    incr i;
    while !d > 0 && !i < n do
      (match arr.(!i) with
       | Lexer.Op o when o = stop_open -> incr d
       | Lexer.Op c when c = stop_close -> decr d
       | _ -> ());
      if !d > 0 then inner := arr.(!i) :: !inner;
      incr i
    done;
    List.rev !inner
  in
  let stop = ref false in
  while not !stop && !i < n do
    (match arr.(!i) with
     | Lexer.Op "~" | Lexer.Op "?" -> (
       match (if !i + 1 < n then Some arr.(!i + 1) else None) with
       | Some (Lexer.Lident l) ->
         if !i + 2 < n && arr.(!i + 2) = Lexer.Op ":" then begin
           (* ~l: pattern — one atom follows *)
           i := !i + 3;
           if !i < n then
             match arr.(!i) with
             | Lexer.Lident x ->
               add (Some l) (if x = "_" then [] else [ x ]);
               incr i
             | Lexer.Op "(" ->
               let inner = group_tokens "(" ")" in
               (* ?(x = default): names stop at the [=] *)
               let before_eq =
                 let rec take = function
                   | Lexer.Op "=" :: _ -> []
                   | t :: rest -> t :: take rest
                   | [] -> []
                 in
                 take inner
               in
               add (Some l) (pattern_names before_eq)
             | _ ->
               add (Some l) [];
               incr i
         end
         else begin
           (* pun: ~l binds l *)
           add (Some l) [ l ];
           i := !i + 2
         end
       | Some (Lexer.Op "(") ->
         (* ?(x = default) without label rename *)
         i := !i + 1;
         let inner = group_tokens "(" ")" in
         let before_eq =
           let rec take = function
             | Lexer.Op "=" :: _ -> []
             | t :: rest -> t :: take rest
             | [] -> []
           in
           take inner
         in
         (match pattern_names before_eq with
          | x :: _ -> add (Some x) [ x ]
          | [] -> add None [])
       | _ -> incr i)
     | Lexer.Lident "_" ->
       add None [];
       incr i
     | Lexer.Lident x ->
       add None [ x ];
       incr i
     | Lexer.Op "(" ->
       let inner = group_tokens "(" ")" in
       add None (pattern_names inner)
     | Lexer.Op "{" ->
       let inner = group_tokens "{" "}" in
       add None (pattern_names inner)
     | Lexer.Op "[" ->
       let inner = group_tokens "[" "]" in
       add None (pattern_names inner)
     | Lexer.Op ":" ->
       (* return-type annotation: the rest is a type *)
       stop := true
     | Lexer.Int_lit | Lexer.String_lit | Lexer.Char_lit ->
       add None [];
       incr i
     | _ -> incr i);
    ()
  done;
  List.rev !slots

(* Parse a [let]/[and] binding starting at the keyword at index [i].
   Returns the index just after the [=] (scanning resumes in the RHS),
   or [i + 1] when no binding shape is recognized. *)
let parse_binding s i =
  let line = s.toks.(i).Lexer.line in
  let j = ref (i + 1) in
  (match kind_at s !j with
   | Some (Lexer.Keyword ("rec" | "nonrec")) -> incr j
   | _ -> ());
  match kind_at s !j with
  | Some (Lexer.Keyword ("open" | "module" | "exception")) -> i + 1
  | _ ->
    (* scan to the [=] at pattern depth 0 *)
    let pat = ref [] in
    let pdepth = ref 0 in
    let eq = ref (-1) in
    let k = ref !j in
    let give_up = ref false in
    while !eq < 0 && (not !give_up) && !k < s.n && !k - !j < 200 do
      (match s.toks.(!k).Lexer.kind with
       | Lexer.Op ("(" | "[" | "{") -> incr pdepth
       | Lexer.Op (")" | "]" | "}") ->
         decr pdepth;
         if !pdepth < 0 then give_up := true
       | Lexer.Op "=" when !pdepth = 0 -> eq := !k
       | Lexer.Keyword ("in" | "let" | "and" | "struct" | "end") ->
         give_up := true
       | _ -> ());
      if !eq < 0 && not !give_up then begin
        pat := s.toks.(!k).Lexer.kind :: !pat;
        incr k
      end
    done;
    if !eq < 0 then i + 1
    else begin
      let pat = List.rev !pat in
      let toplevel = s.depth = 0 && s.bstack = [] in
      let g = fresh s in
      let register ?(slots = []) name =
        s.bindings <-
          { group = g; name; line; toplevel; is_param = false; slots }
          :: s.bindings
      in
      (match pat with
       | [] -> register "_"
       | Lexer.Lident name :: rest -> (
         match rest with
         | [] -> register name
         | Lexer.Op "," :: _ | Lexer.Op ":" :: _ ->
           (* tuple pattern or annotated simple binding: co-bound names *)
           List.iter register (pattern_names pat)
         | _ ->
           (* function definition: the rest is the parameter list *)
           let slots = parse_params s line rest in
           register ~slots name)
       | _ ->
         (* destructuring ([let (a, b) = ...], [let { x; y } = ...],
            [let () = ...], operators): all pattern names co-bound *)
         (match pattern_names pat with
          | [] -> register "_"
          | names -> List.iter register names));
      s.bstack <- (g, s.depth) :: s.bstack;
      !eq + 1
    end

(* Skip a [fun]-parameter list: tokens up to the [->] at the same
   nesting depth (the parameters are binders, not uses). *)
let skip_fun_params s i =
  let k = ref (i + 1) in
  let d = ref 0 in
  let stop = ref false in
  while (not !stop) && !k < s.n && !k - i < 120 do
    (match s.toks.(!k).Lexer.kind with
     | Lexer.Op ("(" | "[" | "{") -> incr d
     | Lexer.Op (")" | "]" | "}") -> decr d
     | Lexer.Op "->" when !d <= 0 -> stop := true
     | Lexer.Keyword ("fun" | "function" | "let" | "in") -> stop := true
     | _ -> ());
    if not !stop then incr k
  done;
  if !stop then !k + 1 else i + 1

(* --- Main scan ------------------------------------------------------ *)

let build ~rel ~modpath (lex : Lexer.t) =
  let s =
    { toks = lex.Lexer.tokens;
      n = Array.length lex.Lexer.tokens;
      aliases = Hashtbl.create 8;
      depth = 0;
      openers = [];
      bstack = [];
      astack = [];
      expr_start = true;
      in_typedecl = false;
      typedecl_depth = 0;
      next_group = 0;
      bindings = [];
      uses = [] }
  in
  let i = ref 0 in
  while !i < s.n do
    let tok = s.toks.(!i) in
    let prev = kind_at s (!i - 1) in
    let next = kind_at s (!i + 1) in
    (match tok.Lexer.kind with
     | _ when s.in_typedecl ->
       (* Inside a type declaration only structure is tracked; names in
          type expressions are not value uses. *)
       (match tok.Lexer.kind with
        | k when is_opener k -> s.depth <- s.depth + 1
        | k when is_closer k ->
          s.depth <- max 0 (s.depth - 1);
          if s.depth < s.typedecl_depth then s.in_typedecl <- false
        | Lexer.Keyword ("let" | "module" | "open" | "exception" | "external"
                        | "include" | "val") ->
          s.in_typedecl <- false;
          (* reprocess this token normally, as a structure item *)
          s.expr_start <- false;
          decr i
        | _ -> ());
       incr i
     | Lexer.Keyword "type" when s.bstack = [] ->
       s.in_typedecl <- true;
       s.typedecl_depth <- s.depth;
       incr i
     | Lexer.Keyword "module" ->
       (* record [module X = A.B] aliases; skip the binder *)
       (match kind_at s (!i + 1), kind_at s (!i + 2) with
        | Some (Lexer.Uident u), Some (Lexer.Op "=") -> (
          match kind_at s (!i + 3) with
          | Some (Lexer.Uident _) ->
            let path, after = consume_path s (!i + 3) in
            let rhs = List.filter (fun c -> c <> "" && c.[0] >= 'A' && c.[0] <= 'Z') path in
            Hashtbl.replace s.aliases u rhs;
            i := after
          | _ -> i := !i + 3)
        | _ -> incr i);
       s.expr_start <- false
     | Lexer.Keyword "let" ->
       pop_frames_at ~keep_lambdas:true s s.depth;
       (* A [let] where no expression is expected is a structure item:
          the previous toplevel binding's body just ended, so its scope
          (never closed by [in]) ends here.  Expression [let]s arrive
          with [expr_start] true (after [=], [in], [->], [;], ...) and
          are closed by their own [in]. *)
       if s.depth = 0 && not s.expr_start then begin
         s.bstack <- [];
         s.astack <- []
       end;
       i := parse_binding s !i;
       s.expr_start <- true
     | Lexer.Keyword "and" ->
       (* continuation of a [let]/[let rec] group at this depth: the
          sibling binding's RHS ends here *)
       pop_frames_at ~keep_lambdas:true s s.depth;
       (match s.bstack with
        | (_, bd) :: rest when bd = s.depth -> s.bstack <- rest
        | _ -> ());
       i := parse_binding s !i;
       s.expr_start <- true
     | Lexer.Keyword "in" ->
       (* [let ... in] inside a lambda body does not end the lambda:
          keep the marker, it falls with its opening paren. *)
       pop_frames_at ~keep_lambdas:true s s.depth;
       (match s.bstack with
        | (_, bd) :: rest when bd = s.depth -> s.bstack <- rest
        | _ -> ());
       s.expr_start <- true;
       incr i
     | Lexer.Keyword "fun" ->
       begin_atom s;
       end_atom s;
       s.astack <- lambda_frame s :: s.astack;
       i := skip_fun_params s !i;
       s.expr_start <- true
     | Lexer.Keyword "function" ->
       begin_atom s;
       end_atom s;
       s.astack <- lambda_frame s :: s.astack;
       s.expr_start <- true;
       incr i
     | k when is_opener k ->
       begin_atom s;
       s.depth <- s.depth + 1;
       s.openers <-
         (match k with
          | Lexer.Op "(" -> '('
          | Lexer.Op "[" -> '['
          | Lexer.Op "{" -> '{'
          | _ -> 'b')
         :: s.openers;
       s.expr_start <- true;
       incr i
     | k when is_closer k ->
       (match s.openers with [] -> () | _ :: rest -> s.openers <- rest);
       s.depth <- max 0 (s.depth - 1);
       pop_frames_deeper s s.depth;
       pop_bindings_deeper s s.depth;
       end_atom s;
       s.expr_start <- false;
       incr i
     | Lexer.Op "~" | Lexer.Op "?" -> (
       (* labelled argument: [~l:] marks the next atom, [~l] is a pun *)
       match kind_at s (!i + 1), kind_at s (!i + 2) with
       | Some (Lexer.Lident l), Some (Lexer.Op ":") ->
         (match s.astack with
          | a :: _ when a.fdepth = s.depth ->
            a.pending <- Some l;
            a.in_atom <- false
          | _ -> ());
         i := !i + 3;
         s.expr_start <- false
       | Some (Lexer.Lident l), _ ->
         begin_atom s;
         (match s.astack with
          | a :: _ when a.fdepth = s.depth && a.in_atom && a.lab = None ->
            (* retroactively label the pun atom *)
            a.argi <- a.argi - 1;
            a.lab <- Some l
          | _ -> ());
         s.uses <-
           { path = [ l ];
             line = tok.Lexer.line;
             col = tok.Lexer.col;
             binder = (match s.bstack with (g, _) :: _ -> g | [] -> -1);
             frames = snapshot_frames s }
           :: s.uses;
         end_atom s;
         i := !i + 2;
         s.expr_start <- false
       | _ ->
         incr i)
     | Lexer.Lident x -> (
       let field_label =
         (* [{ f = e }] / [{ r with f = e }]: f is a field name *)
         next = Some (Lexer.Op "=")
         && (match s.openers with '{' :: _ -> true | _ -> false)
         && (match prev with
             | Some (Lexer.Op ("{" | ";")) | Some (Lexer.Keyword "with") -> true
             | _ -> false)
       in
       if prev = Some (Lexer.Op ".") || field_label then begin
         s.expr_start <- false;
         incr i
       end
       else begin
         ignore x;
         begin_atom s;
         let path, after = consume_path s !i in
         let frames = snapshot_frames s in
         s.uses <-
           { path = expand_alias s path;
             line = tok.Lexer.line;
             col = tok.Lexer.col;
             binder = (match s.bstack with (g, _) :: _ -> g | [] -> -1);
             frames }
           :: s.uses;
         (* head position: first atom of an expression, applied to at
            least one following atom *)
         (match kind_at s after with
          | Some k when starts_atom k && s.expr_start ->
            s.astack <-
              { ahead = expand_alias s path;
                fdepth = s.depth;
                argi = -1;
                lab = None;
                pending = None;
                in_atom = false }
              :: s.astack
          | _ -> end_atom s);
         s.expr_start <- false;
         i := after
       end)
     | Lexer.Uident _ -> (
       if prev = Some (Lexer.Keyword "module") then begin
         s.expr_start <- false;
         incr i
       end
       else begin
         begin_atom s;
         let path, after = consume_path s !i in
         let frames = snapshot_frames s in
         s.uses <-
           { path = expand_alias s path;
             line = tok.Lexer.line;
             col = tok.Lexer.col;
             binder = (match s.bstack with (g, _) :: _ -> g | [] -> -1);
             frames }
           :: s.uses;
         (match kind_at s after with
          | Some k when starts_atom k && s.expr_start ->
            s.astack <-
              { ahead = expand_alias s path;
                fdepth = s.depth;
                argi = -1;
                lab = None;
                pending = None;
                in_atom = false }
              :: s.astack
          | _ -> end_atom s);
         s.expr_start <- false;
         i := after
       end)
     | Lexer.Int_lit | Lexer.String_lit | Lexer.Char_lit
     | Lexer.Keyword ("true" | "false") ->
       begin_atom s;
       end_atom s;
       s.expr_start <- false;
       incr i
     | Lexer.Op ("." | "!" | "#") ->
       incr i
     | Lexer.Op ":" ->
       end_atom s;
       incr i
     | Lexer.Op _ ->
       (* operators, [;], [,], [|], [->], [@@], ...: terminate open
          applications at this depth and start a new expression *)
       pop_frames_at ~keep_lambdas:true s s.depth;
       s.expr_start <- true;
       incr i
     | Lexer.Keyword ("if" | "then" | "else" | "match" | "with" | "when"
                     | "try" | "do" | "done" | "while" | "for" | "to"
                     | "downto" | "lazy" | "assert" | "new") ->
       pop_frames_at ~keep_lambdas:true s s.depth;
       s.expr_start <- true;
       incr i
     | Lexer.Keyword _ ->
       s.expr_start <- true;
       incr i)
  done;
  { rel; modpath; bindings = List.rev s.bindings; uses = List.rev s.uses }
