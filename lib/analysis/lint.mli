(** Lint driver: suppressions, baseline, tree walking.

    The pipeline for one compilation unit is
    [tokenize -> Rules.check -> drop suppressed -> drop baselined].

    A suppression is a comment [(* lint: allow <rule> ... *)] (rule
    names separated by spaces or commas; [all] matches every rule).  It
    covers every line the comment touches plus the following line, so
    both trailing and preceding-line placement work.

    The baseline file holds one {!Finding.fingerprint} per line ([#]
    comments and blank lines ignored); each entry absorbs at most one
    matching finding per run.  The shipped baseline is empty — it
    exists so a future rule can land before the violations it finds are
    all fixed, without the gate going red in between. *)

val check_source : ?policy:Policy.t -> rel:string -> string -> Finding.t list
(** Lint one unit from an in-memory source string: token-level rules
    only ([rel] decides which apply, see {!Policy.classify}).
    Suppression comments are honoured; the baseline is not applied.
    The whole-tree secret-flow pass needs every unit at once — use
    {!check_sources} for that. *)

val check_sources :
  ?policy:Policy.t -> (string * string) list -> Finding.t list
(** Full pipeline over an in-memory file set [(rel, content)]: per-unit
    token rules plus the whole-tree {!Taint} pass, suppressions
    applied, sorted.  The baseline is not applied. *)

val suppressed : Lexer.t -> Finding.t -> bool
(** Exposed for tests. *)

val load_baseline : string -> string list
(** Fingerprints from a baseline file; [[]] if the file is missing. *)

val apply_baseline : string list -> Finding.t list -> Finding.t list
(** Remove findings matched by baseline entries (each entry consumes at
    most one finding). *)

val source_files : root:string -> string list
(** Repo-relative [.ml]/[.mli] paths under [lib/], [bin/] and [test/],
    sorted. *)

val check_tree :
  ?policy:Policy.t -> ?cache_dir:string -> root:string -> unit ->
  Finding.t list
(** Lint the whole tree rooted at [root]; suppressions applied,
    baseline not.  With [cache_dir], per-file lexing/rule/def-use
    results are reused when the content (and policy) digest matches —
    the whole-tree taint pass still runs every time, on the cached
    graphs.  Cache corruption or I/O failure silently degrades to a
    full re-lint; results are identical with and without the cache. *)

val run :
  ?policy:Policy.t -> ?baseline:string -> ?cache_dir:string ->
  root:string -> unit -> Finding.t list * int
(** [run ~root ()] lints the tree and applies the baseline at
    [baseline] (default [<root>/lint.baseline]).  Returns the surviving
    findings (sorted) and the number absorbed by the baseline. *)

val write_baseline : string -> Finding.t list -> unit
