(** Lint driver: suppressions, baseline, tree walking.

    The pipeline for one compilation unit is
    [tokenize -> Rules.check -> drop suppressed -> drop baselined].

    A suppression is a comment [(* lint: allow <rule> ... *)] (rule
    names separated by spaces or commas; [all] matches every rule).  It
    covers every line the comment touches plus the following line, so
    both trailing and preceding-line placement work.

    The baseline file holds one {!Finding.fingerprint} per line ([#]
    comments and blank lines ignored); each entry absorbs at most one
    matching finding per run.  The shipped baseline is empty — it
    exists so a future rule can land before the violations it finds are
    all fixed, without the gate going red in between. *)

val check_source : ?policy:Policy.t -> rel:string -> string -> Finding.t list
(** Lint one unit from an in-memory source string.  [rel] decides which
    rules apply (see {!Policy.classify}).  Suppression comments are
    honoured; the baseline is not applied. *)

val suppressed : Lexer.t -> Finding.t -> bool
(** Exposed for tests. *)

val load_baseline : string -> string list
(** Fingerprints from a baseline file; [[]] if the file is missing. *)

val apply_baseline : string list -> Finding.t list -> Finding.t list
(** Remove findings matched by baseline entries (each entry consumes at
    most one finding). *)

val source_files : root:string -> string list
(** Repo-relative [.ml]/[.mli] paths under [lib/], [bin/] and [test/],
    sorted. *)

val check_tree : ?policy:Policy.t -> root:string -> unit -> Finding.t list
(** Lint the whole tree rooted at [root]; suppressions applied,
    baseline not. *)

val run :
  ?policy:Policy.t -> ?baseline:string -> root:string -> unit ->
  Finding.t list * int
(** [run ~root ()] lints the tree and applies the baseline at
    [baseline] (default [<root>/lint.baseline]).  Returns the surviving
    findings (sorted) and the number absorbed by the baseline. *)

val write_baseline : string -> Finding.t list -> unit
