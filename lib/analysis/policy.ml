type unit_kind =
  | Library of string
  | Binary
  | Test_unit

type flow = {
  sources : string list;
  source_params : (string * string) list;
  declassifiers : string list;
  sinks : string list;
  sink_files : string list;
  trusted_files : string list;
}

type t = {
  roots : (string * string) list;
  allowed : (string * string list) list;
  boundary : (string * string list) list;
  total_paths : string list;
  random_ok : string list;
  concurrency_ok : string list;
  flow : flow;
}

(* The layering DAG mirrors the dune dependency graph on purpose: dune
   enforces link-time reachability, this table enforces *intent*.  A
   library absent from a right-hand side cannot be referenced even
   though dune's implicit transitive deps would let it link. *)
let default =
  {
    roots =
      [ "Xmlcore", "xmlcore";
        "Xpath", "xpath";
        "Crypto", "crypto";
        "Btree", "btree";
        "Dsi", "dsi";
        "Secure", "secure";
        "Engine", "engine";
        "Xquery", "xquery";
        "Workload", "workload";
        "Analysis", "analysis";
        "Parallel", "parallel";
        "Obs", "obs";
        "Serve", "serve";
        "Attack", "attack" ];
    allowed =
      [ "xmlcore", [];
        "btree", [];
        "crypto", [];
        "analysis", [];
        (* The task-pool library sits below everything: it knows
           nothing of documents or ciphertexts, it only schedules. *)
        "parallel", [];
        (* Observability is likewise a leaf: counters, spans and the
           leakage ledger are plain data structures any layer may bump
           without gaining new reachability. *)
        "obs", [];
        "xpath", [ "xmlcore" ];
        "dsi", [ "xmlcore"; "crypto" ];
        "secure",
        [ "xmlcore"; "xpath"; "crypto"; "btree"; "dsi"; "parallel"; "obs" ];
        (* The engine reorders and caches ciphertext-side evaluation:
           it may see the query IR, intervals and the secure layer's
           public surface, but never the plaintext document layer. *)
        "engine", [ "xpath"; "dsi"; "secure"; "parallel"; "obs" ];
        (* The serving tier multiplexes hostings: it schedules, admits
           and breaks circuits over the system/engine surface.  Nothing
           depends on it except bin — it is the top of the DAG, and it
           handles answers only behind the Secure.Client.answer
           alias. *)
        (* The adversary simulator replays ledger traces and buys
           mitigations on the wire surface: it may see translated
           queries, the secure layer's public surface and the ledger,
           but never the plaintext-document layer — its entire input is
           what the server already observes. *)
        "attack", [ "xpath"; "crypto"; "secure"; "obs" ];
        "serve", [ "xpath"; "secure"; "engine"; "parallel"; "obs"; "attack" ];
        "xquery", [ "xmlcore"; "xpath"; "secure" ];
        "workload", [ "xmlcore"; "xpath"; "crypto"; "secure" ] ];
    (* The server evaluates queries over DSI intervals, OPESS
       ciphertexts and encrypted blocks only.  Plaintext documents and
       the key ring live strictly on the client side of the wire. *)
    boundary =
      ([ ( "lib/secure/server.ml",
           [ "Xmlcore.Doc"; "Xmlcore.Tree"; "Xmlcore.Parser"; "Xmlcore.Sax";
             "Xmlcore.Printer"; "Crypto.Keys" ] );
         ( "lib/secure/server.mli",
           [ "Xmlcore.Doc"; "Xmlcore.Tree"; "Xmlcore.Parser"; "Xmlcore.Sax";
             "Xmlcore.Printer"; "Crypto.Keys" ] ) ]
      (* The engine holds decrypted material only behind the opaque
         Secure.Client.answer alias and never derives keys: no module
         of it may name the plaintext-document layer or the key
         ring. *)
      @ List.concat_map
          (fun name ->
            let forbidden =
              [ "Xmlcore.Doc"; "Xmlcore.Tree"; "Xmlcore.Parser"; "Xmlcore.Sax";
                "Xmlcore.Printer"; "Crypto.Keys" ]
            in
            [ "lib/engine/" ^ name ^ ".ml", forbidden;
              "lib/engine/" ^ name ^ ".mli", forbidden ])
          [ "lru"; "stats"; "estimate"; "plan"; "planner"; "exec"; "engine" ]
      (* Observability records server-visible facts only: a counter or
         ledger row that could name the plaintext-document layer or the
         key ring would be a leak by construction. *)
      @ List.concat_map
          (fun name ->
            let forbidden =
              [ "Xmlcore.Doc"; "Xmlcore.Tree"; "Xmlcore.Parser"; "Xmlcore.Sax";
                "Xmlcore.Printer"; "Crypto.Keys" ]
            in
            [ "lib/obs/" ^ name ^ ".ml", forbidden;
              "lib/obs/" ^ name ^ ".mli", forbidden ])
          [ "json"; "metric"; "trace"; "ledger"; "obs" ]
      (* The serving tier never holds plaintext or key material of any
         tenant: answers flow through it as the opaque
         Secure.Client.answer alias, and hostings arrive pre-keyed. *)
      @ List.concat_map
          (fun name ->
            let forbidden =
              [ "Xmlcore.Doc"; "Xmlcore.Tree"; "Xmlcore.Parser"; "Xmlcore.Sax";
                "Xmlcore.Printer"; "Crypto.Keys" ]
            in
            [ "lib/serve/" ^ name ^ ".ml", forbidden;
              "lib/serve/" ^ name ^ ".mli", forbidden ])
          [ "limiter"; "breaker"; "serve" ]
      (* The adversary simulator's inputs are ledger-only: it scores
         what the server can see, so reaching for the plaintext
         document layer or the key ring would let the "adversary"
         cheat.  [attack.ml] is the facade unit. *)
      @ List.concat_map
          (fun name ->
            let forbidden =
              [ "Xmlcore.Doc"; "Xmlcore.Tree"; "Xmlcore.Parser"; "Xmlcore.Sax";
                "Xmlcore.Printer"; "Crypto.Keys" ]
            in
            [ "lib/attack/" ^ name ^ ".ml", forbidden;
              "lib/attack/" ^ name ^ ".mli", forbidden ])
          [ "trace"; "passes"; "budget"; "mitigate"; "attack" ]);
    (* Paths reachable from hostile input: a malformed frame, query or
       stored catalog must surface as a typed error, never as an
       assertion failure or partial-projection exception. *)
    total_paths =
      [ "lib/secure/server.ml";
        "lib/secure/session.ml";
        "lib/secure/protocol.ml";
        "lib/secure/codec.ml";
        "lib/secure/transport.ml";
        "lib/secure/opess.ml" ];
    (* Everything random is derived from seeds through Crypto.Prng (or
       the HMAC PRF); stdlib Random would break the chaos suite's
       seeded reproducibility. *)
    random_ok = [ "lib/crypto/prng.ml" ];
    (* Domains, mutexes and atomics are confined behind the pool API:
       everything else must go through Parallel.Pool / Parallel.Lock,
       whose merge contract is what makes parallelism deterministic. *)
    concurrency_ok = [ "lib/parallel/" ];
    (* The information-flow policy of the paper, as data.  Secrets are
       born at the [sources] (key-ring values, plaintext documents,
       decrypted blocks and answers, PRNG streams seeded from keys);
       they may leave only through the [declassifiers] (the encrypt /
       MAC / OPESS boundary — a ciphertext or tag is server-safe by
       construction); everything reaching a [sink] (wire encoders, the
       session, console output, observability labels) or used at all
       inside a [sink_file] must have been declassified on the way.
       Entries ending in "." are prefix wildcards. *)
    flow =
      {
        sources =
          [ "Crypto.Keys.";
            "Crypto.Cipher.decrypt";
            "Crypto.Xtea.decrypt";
            "Crypto.Xtea.decrypt_prepared";
            "Crypto.Aes.decrypt_block";
            "Crypto.Vernam.decrypt";
            "Crypto.Ope.decrypt";
            "Secure.Encrypt.decrypt_block";
            "Secure.Client.keys";
            "Secure.Client.decrypt_block";
            "Secure.Client.decrypt_blocks";
            "Secure.Client.evaluate_with";
            "Secure.Client.evaluate_union_with";
            "Secure.Client.postprocess";
            "Secure.System.doc";
            "Secure.System.master";
            "Secure.System.reference";
            "Secure.System.reference_union";
            "Secure.System.reference_aggregate";
            "Workload.Xmark.generate";
            "Workload.Nasa.generate";
            "Workload.Health.generate";
            "Workload.Dblp.generate" ];
        (* Parameters that receive secrets at every call site: taint is
           seeded on the callee's parameter group itself, so the secret
           is tracked inside the function body even when the analysis
           cannot see any call. *)
        source_params =
          [ "Secure.System.setup", "doc";
            "Secure.System.setup", "master";
            "Secure.System.restore", "doc";
            "Secure.System.restore", "master";
            "Secure.Encrypt.encrypt", "doc";
            "Secure.Encrypt.encrypt", "keys";
            "Secure.Encrypt.decrypt_block", "keys";
            "Secure.Metadata.build", "keys";
            "Secure.Metadata.patch", "keys";
            "Secure.Opess.patch", "key";
            "Secure.Client.create", "keys";
            "Crypto.Keys.create", "master";
            "Crypto.Ope.create", "key";
            "Crypto.Hmac.mac", "key";
            "Crypto.Hmac.prepare", "key";
            "Crypto.Cipher.prepare", "key";
            "Crypto.Xtea.prepare", "key";
            "Crypto.Vernam.keystream", "key";
            "Crypto.Vernam.encrypt", "key";
            "Crypto.Vernam.decrypt", "key";
            "Secure.Opess.build", "key" ];
        (* The only legal crossings: a value that has passed through one
           of these is ciphertext, a MAC tag, or a sanitized label. *)
        declassifiers =
          [ "Crypto.Cipher.encrypt";
            "Crypto.Xtea.encrypt";
            "Crypto.Xtea.encrypt_prepared";
            "Crypto.Aes.encrypt_block";
            "Crypto.Vernam.encrypt";
            "Crypto.Vernam.encrypt_hex";
            "Crypto.Ope.encrypt";
            "Crypto.Hmac.mac";
            "Crypto.Hmac.mac_prepared";
            "Crypto.Hmac.mac_hex";
            "Crypto.Hmac.prf64";
            "Crypto.Hmac.prf64_prepared";
            "Crypto.Hmac.prf_float";
            "Crypto.Hmac.prf_float_in";
            "Crypto.Hmac.prf_int";
            "Secure.Opess.build";
            "Secure.Encrypt.encrypt";
            (* The ciphertext half of the database: what
               Server.of_metadata consumes.  The [db] record itself
               stays secret (it keeps the plaintext document); this
               projection ships encrypt-then-MAC blocks only. *)
            "Secure.Encrypt.server_blocks";
            (* Storing into an engine cache returns unit, so nothing
               secret comes back from the call itself.  Every binding
               that reads the decrypted-block cache also contains the
               decrypt-on-miss path of the same match expression, so
               cache {e hits} stay covered without a source entry for
               [find].  Without this the unit result of [put] would
               smear taint over every binding near a cache insert. *)
            "Engine.Lru.put";
            (* The delta path's only cryptographic step: re-encrypting
               the touched blocks yields encrypt-then-MAC ciphertext,
               the same boundary [Secure.Encrypt.encrypt] crosses at
               setup. *)
            "Secure.Encrypt.reencrypt_blocks";
            "Secure.Metadata.build";
            (* The incremental patchers are boundaries for the same
               reason as the builders: their outputs are the
               server-side tables (interval rows keyed/deduplicated
               like [build]'s, catalog rows through the keyed OPESS
               encoder), never raw plaintext or key material. *)
            "Secure.Metadata.patch";
            "Secure.Opess.patch";
            "Secure.Client.translate";
            "Secure.Client.aggregate_range";
            "Secure.Session.client";
            "Secure.Session.endpoint";
            (* Safe projections of the hosting handle: the handle record
               itself is secret (it holds the plaintext document and the
               master passphrase), but these fields are the server-side
               half and the plumbing — built exclusively from
               already-declassified material.  Declaring the accessors
               here is the policy statement that the server, tracer,
               ledger and pool contain no key or plaintext material. *)
            "Secure.System.server";
            "Secure.System.tracer";
            "Secure.System.ledger";
            "Secure.System.pool";
            "Obs.Label.sanitize" ];
        sinks =
          [ "Secure.Protocol.encode_request";
            "Secure.Protocol.encode_fetch";
            "Secure.Protocol.encode_padded";
            "Secure.Protocol.encode_response";
            "Secure.Transport.exchange";
            "Secure.Session.call";
            "Obs.Ledger.round";
            "Obs.Metric.counter";
            "Obs.Metric.gauge";
            "Obs.Metric.histogram";
            "Obs.Trace.span";
            "Obs.Trace.event";
            "Printf.printf";
            "Printf.eprintf";
            "Format.printf";
            "Format.eprintf";
            "print_string";
            "print_endline";
            "print_int";
            "print_float";
            "print_newline";
            "prerr_string";
            "prerr_endline" ];
        sink_files = [ "lib/secure/server.ml" ];
        (* Interiors the flow analysis does not descend into.  Two
           reasons to be here.  lib/crypto is the trusted computing
           base: the primitives necessarily mix key material into
           everything they compute (that is their job), so analysing
           their interiors only poisons the summaries of shared helpers
           — HMAC feeding the key schedule through SHA-256 would mark
           every digest in the tree secret.  Their API is fully
           modelled above: decrypt results are [sources], encrypt/MAC
           outputs are [declassifiers], key parameters are
           [source_params].  The rest are pure container / scheduler
           libraries that hold no keys and perform no I/O: a
           context-insensitive summary of [Doc.node_count] or
           [Interval.make] tainted by one secret caller would mark the
           server's own clean calls secret, whereas the unknown-callee
           fallback (argument taint flows straight to the caller's
           binding) models them call-site-locally and loses nothing —
           any secret passed in comes back out tainted at that call
           site only. *)
        trusted_files =
          [ "lib/crypto/";
            "lib/xmlcore/";
            "lib/btree/";
            "lib/parallel/";
            "lib/obs/";
            "lib/dsi/interval.ml";
            "lib/dsi/join.ml" ];
      };
  }

let strip_prefix ~prefix s =
  let pl = String.length prefix in
  if String.length s >= pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

let classify rel =
  match strip_prefix ~prefix:"lib/" rel with
  | Some rest -> (
    match String.index_opt rest '/' with
    | Some i -> Some (Library (String.sub rest 0 i))
    | None -> None)
  | None ->
    if strip_prefix ~prefix:"bin/" rel <> None then Some Binary
    else if strip_prefix ~prefix:"test/" rel <> None then Some Test_unit
    else None

let library_of_root t root = List.assoc_opt root t.roots

let allowed_deps t lib =
  match List.assoc_opt lib t.allowed with Some deps -> deps | None -> []
