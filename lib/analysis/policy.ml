type unit_kind =
  | Library of string
  | Binary
  | Test_unit

type t = {
  roots : (string * string) list;
  allowed : (string * string list) list;
  boundary : (string * string list) list;
  total_paths : string list;
  random_ok : string list;
  concurrency_ok : string list;
}

(* The layering DAG mirrors the dune dependency graph on purpose: dune
   enforces link-time reachability, this table enforces *intent*.  A
   library absent from a right-hand side cannot be referenced even
   though dune's implicit transitive deps would let it link. *)
let default =
  {
    roots =
      [ "Xmlcore", "xmlcore";
        "Xpath", "xpath";
        "Crypto", "crypto";
        "Btree", "btree";
        "Dsi", "dsi";
        "Secure", "secure";
        "Engine", "engine";
        "Xquery", "xquery";
        "Workload", "workload";
        "Analysis", "analysis";
        "Parallel", "parallel";
        "Obs", "obs";
        "Serve", "serve" ];
    allowed =
      [ "xmlcore", [];
        "btree", [];
        "crypto", [];
        "analysis", [];
        (* The task-pool library sits below everything: it knows
           nothing of documents or ciphertexts, it only schedules. *)
        "parallel", [];
        (* Observability is likewise a leaf: counters, spans and the
           leakage ledger are plain data structures any layer may bump
           without gaining new reachability. *)
        "obs", [];
        "xpath", [ "xmlcore" ];
        "dsi", [ "xmlcore"; "crypto" ];
        "secure",
        [ "xmlcore"; "xpath"; "crypto"; "btree"; "dsi"; "parallel"; "obs" ];
        (* The engine reorders and caches ciphertext-side evaluation:
           it may see the query IR, intervals and the secure layer's
           public surface, but never the plaintext document layer. *)
        "engine", [ "xpath"; "dsi"; "secure"; "parallel"; "obs" ];
        (* The serving tier multiplexes hostings: it schedules, admits
           and breaks circuits over the system/engine surface.  Nothing
           depends on it except bin — it is the top of the DAG, and it
           handles answers only behind the Secure.Client.answer
           alias. *)
        "serve", [ "xpath"; "secure"; "engine"; "parallel"; "obs" ];
        "xquery", [ "xmlcore"; "xpath"; "secure" ];
        "workload", [ "xmlcore"; "xpath"; "crypto"; "secure" ] ];
    (* The server evaluates queries over DSI intervals, OPESS
       ciphertexts and encrypted blocks only.  Plaintext documents and
       the key ring live strictly on the client side of the wire. *)
    boundary =
      ([ ( "lib/secure/server.ml",
           [ "Xmlcore.Doc"; "Xmlcore.Tree"; "Xmlcore.Parser"; "Xmlcore.Sax";
             "Xmlcore.Printer"; "Crypto.Keys" ] );
         ( "lib/secure/server.mli",
           [ "Xmlcore.Doc"; "Xmlcore.Tree"; "Xmlcore.Parser"; "Xmlcore.Sax";
             "Xmlcore.Printer"; "Crypto.Keys" ] ) ]
      (* The engine holds decrypted material only behind the opaque
         Secure.Client.answer alias and never derives keys: no module
         of it may name the plaintext-document layer or the key
         ring. *)
      @ List.concat_map
          (fun name ->
            let forbidden =
              [ "Xmlcore.Doc"; "Xmlcore.Tree"; "Xmlcore.Parser"; "Xmlcore.Sax";
                "Xmlcore.Printer"; "Crypto.Keys" ]
            in
            [ "lib/engine/" ^ name ^ ".ml", forbidden;
              "lib/engine/" ^ name ^ ".mli", forbidden ])
          [ "lru"; "stats"; "estimate"; "plan"; "planner"; "exec"; "engine" ]
      (* Observability records server-visible facts only: a counter or
         ledger row that could name the plaintext-document layer or the
         key ring would be a leak by construction. *)
      @ List.concat_map
          (fun name ->
            let forbidden =
              [ "Xmlcore.Doc"; "Xmlcore.Tree"; "Xmlcore.Parser"; "Xmlcore.Sax";
                "Xmlcore.Printer"; "Crypto.Keys" ]
            in
            [ "lib/obs/" ^ name ^ ".ml", forbidden;
              "lib/obs/" ^ name ^ ".mli", forbidden ])
          [ "json"; "metric"; "trace"; "ledger"; "obs" ]
      (* The serving tier never holds plaintext or key material of any
         tenant: answers flow through it as the opaque
         Secure.Client.answer alias, and hostings arrive pre-keyed. *)
      @ List.concat_map
          (fun name ->
            let forbidden =
              [ "Xmlcore.Doc"; "Xmlcore.Tree"; "Xmlcore.Parser"; "Xmlcore.Sax";
                "Xmlcore.Printer"; "Crypto.Keys" ]
            in
            [ "lib/serve/" ^ name ^ ".ml", forbidden;
              "lib/serve/" ^ name ^ ".mli", forbidden ])
          [ "limiter"; "breaker"; "serve" ]);
    (* Paths reachable from hostile input: a malformed frame, query or
       stored catalog must surface as a typed error, never as an
       assertion failure or partial-projection exception. *)
    total_paths =
      [ "lib/secure/server.ml";
        "lib/secure/session.ml";
        "lib/secure/protocol.ml";
        "lib/secure/codec.ml";
        "lib/secure/transport.ml";
        "lib/secure/opess.ml" ];
    (* Everything random is derived from seeds through Crypto.Prng (or
       the HMAC PRF); stdlib Random would break the chaos suite's
       seeded reproducibility. *)
    random_ok = [ "lib/crypto/prng.ml" ];
    (* Domains, mutexes and atomics are confined behind the pool API:
       everything else must go through Parallel.Pool / Parallel.Lock,
       whose merge contract is what makes parallelism deterministic. *)
    concurrency_ok = [ "lib/parallel/" ];
  }

let strip_prefix ~prefix s =
  let pl = String.length prefix in
  if String.length s >= pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

let classify rel =
  match strip_prefix ~prefix:"lib/" rel with
  | Some rest -> (
    match String.index_opt rest '/' with
    | Some i -> Some (Library (String.sub rest 0 i))
    | None -> None)
  | None ->
    if strip_prefix ~prefix:"bin/" rel <> None then Some Binary
    else if strip_prefix ~prefix:"test/" rel <> None then Some Test_unit
    else None

let library_of_root t root = List.assoc_opt root t.roots

let allowed_deps t lib =
  match List.assoc_opt lib t.allowed with Some deps -> deps | None -> []
