(** Binding-level def-use graphs for the secret-flow analysis.

    One graph per compilation unit, built from the {!Lexer} token
    stream — no parser, no typechecker.  The model is deliberately
    coarse (see docs/STATIC_ANALYSIS.md for the soundness caveats):

    - a {e binding} is a [let]-bound name (value, function, or one name
      of a tuple/record pattern).  All names bound by one pattern share
      a taint {e group}; a function's parameters get groups of their
      own, reachable through the function's argument {e slots}.
    - a {e use} is an identifier occurrence in expression position,
      recorded with the dotted path, the innermost enclosing binding,
      and the stack of enclosing application frames (head + which
      argument slot of that head the use sits in, innermost first).
    - record/tuple projections collapse onto the root value: [t.field]
      is a use of [t], so taint is tracked per binding, not per field.

    {!Taint} interprets these graphs whole-tree: a use of a tainted
    binding taints the binding it appears under, call sites propagate
    argument taint into the callee's parameter groups (matched by
    label, else positionally), and application heads that the policy
    declares as declassifiers absorb the flow. *)

type slot = {
  label : string option;  (** [Some l] for [~l]/[?l] parameters *)
  groups : int list;      (** taint groups of the names this slot binds *)
}

type binding = {
  group : int;            (** taint group (unit-local; names co-bound by
                              one pattern share it) *)
  name : string;
  line : int;
  toplevel : bool;        (** struct item of the unit (not nested in a
                              [let ... in] or an inner [struct]) *)
  is_param : bool;
  slots : slot list;      (** parameter slots, for function bindings *)
}

type frame = {
  head : string list;        (** applied path, aliases expanded *)
  arg_index : int;           (** 0-based index among the {e unlabelled}
                                 arguments, [-1] in head position *)
  arg_label : string option; (** label of the argument the use sits in *)
}

type use = {
  path : string list;     (** dotted path; a lowercase root keeps only the
                              root (projections collapse), aliases expanded *)
  line : int;
  col : int;
  binder : int;           (** group of the innermost open binding, -1 at
                              the unit's toplevel *)
  frames : frame list;    (** enclosing applications, innermost first *)
}

type t = {
  rel : string;           (** repo-relative path *)
  modpath : string list;  (** qualified module path, e.g. ["Crypto"; "Keys"] *)
  bindings : binding list;
  uses : use list;
}

val lambda_head : string list
(** The pseudo-head recorded as the frame of anonymous [fun]/[function]
    bodies.  {!Taint} stops its outward frame walk at this marker: a
    use inside a lambda taints the binding the lambda sits under, but
    not the parameters of whatever application the lambda is an
    argument of (see docs/STATIC_ANALYSIS.md on closure captures). *)

val build : rel:string -> modpath:string list -> Lexer.t -> t
(** Never raises; unparseable regions degrade to missing bindings or
    spurious uses, both of which only ever {e over}-approximate flows. *)

val qualify : t -> string list -> string
(** [qualify g path] is the dotted name used for policy matching: a
    bare lowercase identifier is prefixed with the unit's module path,
    a dotted path is joined as written (the caller normalizes library
    roots). *)
