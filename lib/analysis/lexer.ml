type kind =
  | Lident of string
  | Uident of string
  | Keyword of string
  | Int_lit
  | String_lit
  | Char_lit
  | Op of string

type token = {
  kind : kind;
  line : int;
  col : int;
}

type comment = {
  text : string;
  start_line : int;
  end_line : int;
}

type t = {
  tokens : token array;
  comments : comment list;
}

let keywords =
  [ "and"; "as"; "assert"; "begin"; "class"; "constraint"; "do"; "done";
    "downto"; "else"; "end"; "exception"; "external"; "false"; "for"; "fun";
    "function"; "functor"; "if"; "in"; "include"; "inherit"; "initializer";
    "lazy"; "let"; "match"; "method"; "module"; "mutable"; "new"; "nonrec";
    "object"; "of"; "open"; "private"; "rec"; "sig"; "struct"; "then"; "to";
    "true"; "try"; "type"; "val"; "virtual"; "when"; "while"; "with";
    "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr"; "or" ]

let keyword_table =
  let h = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace h k ()) keywords;
  h

let is_keyword s = Hashtbl.mem keyword_table s

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let is_symbol_char c =
  match c with
  | '!' | '$' | '%' | '&' | '*' | '+' | '-' | '.' | '/' | ':' | '<' | '='
  | '>' | '?' | '@' | '^' | '|' | '~' -> true
  | _ -> false

type state = {
  src : string;
  len : int;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* index of the first byte of the current line *)
}

let peek st k = if st.pos + k < st.len then Some st.src.[st.pos + k] else None
let cur st = peek st 0

let advance st =
  (match cur st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.bol <- st.pos + 1
   | _ -> ());
  st.pos <- st.pos + 1

let col st = st.pos - st.bol + 1

(* Skip a "..." literal; [st.pos] is on the opening quote. *)
let skip_string st =
  advance st;
  let rec loop () =
    match cur st with
    | None -> ()
    | Some '\\' ->
      advance st;
      (match cur st with None -> () | Some _ -> advance st);
      loop ()
    | Some '"' -> advance st
    | Some _ ->
      advance st;
      loop ()
  in
  loop ()

(* Skip a {id|...|id} literal; [st.pos] is on the opening brace and the
   caller has verified the shape.  Returns false if it was not actually
   a quoted string (caller then treats '{' as punctuation). *)
let try_skip_quoted_string st =
  let j = ref (st.pos + 1) in
  while
    !j < st.len
    && (let c = st.src.[!j] in (c >= 'a' && c <= 'z') || c = '_')
  do
    incr j
  done;
  if !j >= st.len || st.src.[!j] <> '|' then false
  else begin
    let id = String.sub st.src (st.pos + 1) (!j - st.pos - 1) in
    let closing = "|" ^ id ^ "}" in
    let clen = String.length closing in
    (* advance past "{id|" *)
    while st.pos <= !j do
      advance st
    done;
    let matched = ref false in
    while (not !matched) && st.pos < st.len do
      if st.pos + clen <= st.len && String.sub st.src st.pos clen = closing then begin
        for _ = 1 to clen do
          advance st
        done;
        matched := true
      end
      else advance st
    done;
    true
  end

(* Skip a comment; [st.pos] is on '('. Collects the body text.  Strings
   inside comments follow string lexing rules (OCaml requires them to be
   well formed), so a "*)" inside a quoted string does not close the
   comment. *)
let skip_comment st =
  let start_line = st.line in
  let buf = Buffer.create 64 in
  advance st;
  advance st;
  (* past "(*" *)
  let depth = ref 1 in
  let finished = ref false in
  while (not !finished) && st.pos < st.len do
    match cur st, peek st 1 with
    | Some '*', Some ')' ->
      decr depth;
      advance st;
      advance st;
      if !depth = 0 then finished := true else Buffer.add_string buf "*)"
    | Some '(', Some '*' ->
      incr depth;
      advance st;
      advance st;
      Buffer.add_string buf "(*"
    | Some '"', _ ->
      let s0 = st.pos in
      skip_string st;
      Buffer.add_string buf (String.sub st.src s0 (st.pos - s0))
    | Some c, _ ->
      Buffer.add_char buf c;
      advance st
    | None, _ -> finished := true
  done;
  { text = Buffer.contents buf; start_line; end_line = st.line }

(* Char literal vs. type variable.  On the opening quote: ['\...'] and
   ['c'] are char literals; everything else is a type-variable quote and
   is simply skipped (the identifier after it lexes on its own). *)
let lex_quote st emit =
  let line = st.line and c0 = col st in
  match peek st 1 with
  | Some '\\' ->
    advance st;
    advance st;
    (* past '\ ; consume escape body up to the closing quote *)
    let budget = ref 5 in
    let rec loop () =
      match cur st with
      | Some '\'' -> advance st
      | Some _ when !budget > 0 ->
        decr budget;
        advance st;
        loop ()
      | _ -> ()
    in
    loop ();
    emit { kind = Char_lit; line; col = c0 }
  | Some _ when peek st 2 = Some '\'' ->
    advance st;
    advance st;
    advance st;
    emit { kind = Char_lit; line; col = c0 }
  | _ -> advance st

let lex_number st emit =
  let line = st.line and c0 = col st in
  let prev_exp () =
    st.pos > 0 && (st.src.[st.pos - 1] = 'e' || st.src.[st.pos - 1] = 'E')
  in
  let rec loop () =
    match cur st with
    | Some c
      when is_digit c || is_ident_start c || c = '.'
           || ((c = '+' || c = '-') && prev_exp ()) ->
      advance st;
      loop ()
    | _ -> ()
  in
  advance st;
  loop ();
  emit { kind = Int_lit; line; col = c0 }

let lex_ident st emit =
  let line = st.line and c0 = col st in
  let start = st.pos in
  while (match cur st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  let kind =
    if is_keyword s then Keyword s
    else if s.[0] >= 'A' && s.[0] <= 'Z' then Uident s
    else Lident s
  in
  emit { kind; line; col = c0 }

let lex_symbol st emit =
  let line = st.line and c0 = col st in
  let start = st.pos in
  while (match cur st with Some c -> is_symbol_char c | None -> false) do
    advance st
  done;
  emit { kind = Op (String.sub st.src start (st.pos - start)); line; col = c0 }

let tokenize src =
  let st = { src; len = String.length src; pos = 0; line = 1; bol = 0 } in
  let tokens = ref [] in
  let comments = ref [] in
  let emit t = tokens := t :: !tokens in
  while st.pos < st.len do
    let line = st.line and c0 = col st in
    match cur st, peek st 1 with
    | Some (' ' | '\t' | '\r' | '\n'), _ -> advance st
    | Some '(', Some '*' -> comments := skip_comment st :: !comments
    | Some '"', _ ->
      skip_string st;
      emit { kind = String_lit; line; col = c0 }
    | Some '{', _ when try_skip_quoted_string st ->
      emit { kind = String_lit; line; col = c0 }
    | Some '\'', _ -> lex_quote st emit
    | Some c, _ when is_digit c -> lex_number st emit
    | Some c, _ when is_ident_start c -> lex_ident st emit
    | Some c, _ when is_symbol_char c -> lex_symbol st emit
    | Some c, _ ->
      advance st;
      emit { kind = Op (String.make 1 c); line; col = c0 }
    | None, _ -> ()
  done;
  { tokens = Array.of_list (List.rev !tokens); comments = List.rev !comments }
