(** A lightweight OCaml lexer for static analysis.

    This is not a full frontend: it produces a flat token stream with
    positions, plus the comment list (needed for [lint: allow]
    suppressions).  It understands the parts of the language that can
    hide or fake tokens — nested comments, string literals (including
    strings inside comments and [{id|...|id}] quoted strings), char
    literals vs. type variables — so downstream rules never match text
    inside a literal or a comment. *)

type kind =
  | Lident of string  (** lowercase identifier or keyword-free name *)
  | Uident of string  (** capitalized identifier (module/constructor) *)
  | Keyword of string (** OCaml keyword, including [true]/[false] *)
  | Int_lit           (** any numeric literal *)
  | String_lit        (** ["..."] or [{id|...|id}] *)
  | Char_lit          (** ['c'] or ['\n'] *)
  | Op of string      (** symbolic operator or single punctuation *)

type token = {
  kind : kind;
  line : int;  (** 1-based *)
  col : int;   (** 1-based *)
}

type comment = {
  text : string;      (** comment body, without the delimiters *)
  start_line : int;
  end_line : int;
}

type t = {
  tokens : token array;
  comments : comment list;
}

val tokenize : string -> t
(** [tokenize src] never raises: unterminated literals or comments are
    closed at end of input. *)

val is_keyword : string -> bool
