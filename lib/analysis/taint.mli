(** Whole-tree interprocedural secret-flow analysis.

    Interprets the {!Flowgraph} def-use graphs of every [lib/*.ml] unit
    against the {!Policy.flow} table: taint is seeded at the sources,
    propagated through let-bindings and across module boundaries into
    callee parameter groups (matched by label, positionally otherwise),
    and absorbed at the declared declassifiers.  A tainted value
    reaching a sink — or used at all inside a sink file — yields a
    [secret-flow] finding whose witness is the source->sink provenance
    chain, one hop per line.

    The analysis is flow-insensitive (a binding is tainted for the
    whole unit once any of its definitions is) and binding-level
    (record fields collapse onto the root value); see
    docs/STATIC_ANALYSIS.md for what that over- and under-approximates. *)

val check : Policy.t -> Flowgraph.t list -> Finding.t list
(** Run the fixpoint over all graphs; findings are de-duplicated per
    (file, line, sink) and sorted with {!Finding.compare}. *)

val modpath_of : Policy.t -> string -> string list
(** [modpath_of policy "lib/secure/system.ml"] is [["Secure"; "System"]];
    the library's root-named unit collapses to the root alone
    ([["Obs"]] for [lib/obs/obs.ml]).  [[]] outside [lib/]. *)

val check_files : Policy.t -> (string * string) list -> Finding.t list
(** [check_files policy [(rel, source); ...]] — convenience for tests:
    tokenize, build the graphs, run {!check}.  Only [lib/*.ml] paths
    participate, mirroring the tree walk in {!Lint}. *)
