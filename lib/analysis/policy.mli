(** The repo's checked-in layering and trust-boundary policy.

    The policy is data, not code: the allowed inter-library dependency
    DAG, the per-file forbidden module prefixes (the client/server trust
    boundary), the files whose code must be total (no [assert false] /
    [failwith] / partial projections), and the single module allowed to
    use [Random].  [Rules] interprets it; tests build ad-hoc policies to
    exercise each rule in isolation. *)

type unit_kind =
  | Library of string  (** a compilation unit under [lib/<name>/] *)
  | Binary             (** under [bin/] *)
  | Test_unit          (** under [test/] *)

type flow = {
  sources : string list;
      (** qualified functions whose results (or values) are secret.
          Entries ending in ["."] are prefix wildcards
          (["Crypto.Keys."] covers the whole key ring). *)
  source_params : (string * string) list;
      (** (qualified function, parameter name) pairs whose parameter
          receives a secret at every call site — taint is seeded on the
          parameter group itself. *)
  declassifiers : string list;
      (** the only legal source->sink crossings: encrypt / MAC / OPESS
          encode / label sanitizing.  A value returned by one of these
          is clean; an argument flowing into one is absorbed. *)
  sinks : string list;
      (** qualified functions whose arguments become server- or
          world-visible: wire encoders, session calls, console output,
          observability labels.  Bare lowercase entries match unqualified
          stdlib names ([print_endline]). *)
  sink_files : string list;
      (** files where {e any} tainted use is a finding (server-side
          code). *)
  trusted_files : string list;
      (** relative-path prefixes forming the analysis' trusted computing
          base: their interiors are not analysed (the crypto primitives
          necessarily mix key material into everything they compute),
          only their policy-declared API surface is modelled. *)
}

type t = {
  roots : (string * string) list;
      (** wrapped root module name -> library id, e.g. ["Xmlcore", "xmlcore"] *)
  allowed : (string * string list) list;
      (** library id -> library ids it may reference.  Binaries and
          tests may reference everything. *)
  boundary : (string * string list) list;
      (** relative path -> dotted module prefixes it must never
          reference (the trust boundary). *)
  total_paths : string list;
      (** relative paths where partiality is a lint error. *)
  random_ok : string list;
      (** relative paths allowed to reference [Random]. *)
  concurrency_ok : string list;
      (** relative path prefixes allowed to reference concurrency
          primitives ([Domain], [Mutex], [Condition], [Atomic], ...);
          everywhere else they must go through [Parallel]. *)
  flow : flow;
      (** the secret-flow table interpreted by {!Taint}. *)
}

val default : t
(** This repository's policy. *)

val classify : string -> unit_kind option
(** [classify rel] maps a repo-relative path to the unit kind it is
    linted as; [None] for paths outside [lib/], [bin/] and [test/]. *)

val library_of_root : t -> string -> string option
(** [library_of_root t "Xmlcore"] is [Some "xmlcore"]. *)

val allowed_deps : t -> string -> string list
