(** Lint findings: machine-readable, baseline-able. *)

type t = {
  rule : string;
  file : string;  (** repo-relative path *)
  line : int;
  col : int;
  message : string;
}

val to_string : t -> string
(** [file:line:col: [rule] message] — one line, machine-parseable. *)

val fingerprint : t -> string
(** Line-number-independent identity used by the baseline file:
    [rule<TAB>file<TAB>message].  Editing unrelated lines does not
    invalidate a baselined finding; changing the code that produced it
    does. *)

val compare : t -> t -> int
(** Order by file, line, column, rule. *)
