(** Lint findings: machine-readable, baseline-able. *)

type t = {
  rule : string;
  file : string;  (** repo-relative path *)
  line : int;
  col : int;
  message : string;
  witness : string list;
      (** for [secret-flow]: the source->sink path, one hop per line
          ([file:line  name]).  Empty for token-level rules.  Not part
          of {!fingerprint} — the witness explains a finding, it does
          not identify it. *)
}

val to_string : t -> string
(** [file:line:col: [rule] message] — one line, machine-parseable. *)

val fingerprint : t -> string
(** Line-number-independent identity used by the baseline file:
    [rule<TAB>file<TAB>message].  Editing unrelated lines does not
    invalidate a baselined finding; changing the code that produced it
    does. *)

val compare : t -> t -> int
(** Order by file, line, column, rule. *)
