(* --- Suppression comments ------------------------------------------ *)

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

(* [lint: allow r1 r2] -> Some [r1; r2]; [lint: allow all] -> Some []. *)
let parse_suppression text =
  match split_words (String.trim text) with
  | "lint:" :: "allow" :: rules when rules <> [] ->
    if List.mem "all" rules then Some [] else Some rules
  | _ -> None

let suppressed_by comments (f : Finding.t) =
  List.exists
    (fun (c : Lexer.comment) ->
      match parse_suppression c.text with
      | None -> false
      | Some rules ->
        (rules = [] || List.mem f.Finding.rule rules)
        && f.Finding.line >= c.start_line
        && f.Finding.line <= c.end_line + 1)
    comments

let suppressed (lex : Lexer.t) f = suppressed_by lex.comments f

(* --- Single unit ---------------------------------------------------- *)

(* Everything derivable from one file in isolation: the token-level
   findings (suppressions already applied), the comments (needed to
   apply suppressions to whole-tree taint findings later), and the
   def-use graph for [lib/*.ml] units.  This is the value the
   incremental cache stores per content digest. *)
type unit_result = {
  u_findings : Finding.t list;
  u_comments : Lexer.comment list;
  u_graph : Flowgraph.t option;
}

let unit_of ?(policy = Policy.default) ~rel content =
  let lex = Lexer.tokenize content in
  let findings =
    Rules.check policy ~rel lex
    |> List.filter (fun f -> not (suppressed lex f))
  in
  let graph =
    match Policy.classify rel with
    | Some (Policy.Library _) when Filename.check_suffix rel ".ml" ->
      Some (Flowgraph.build ~rel ~modpath:(Taint.modpath_of policy rel) lex)
    | _ -> None
  in
  { u_findings = findings; u_comments = lex.comments; u_graph = graph }

let check_source ?(policy = Policy.default) ~rel content =
  (unit_of ~policy ~rel content).u_findings

(* --- Incremental cache ---------------------------------------------- *)

(* One cache file per source path, holding [digest * unit_result]
   marshalled; the digest covers the file content, the policy and a
   format version, so a stale entry can never be mistaken for current.
   Any I/O or unmarshalling failure degrades to a plain re-lint. *)
let cache_version = "sxq-lint-cache-1"

let cache_key policy content =
  Digest.to_hex
    (Digest.string
       (cache_version ^ "\000"
       ^ Digest.to_hex (Digest.string (Marshal.to_string policy []))
       ^ "\000" ^ content))

let cache_file cache_dir rel =
  Filename.concat cache_dir
    (String.map (fun c -> if c = '/' || c = '\\' then '_' else c) rel)

let cache_load cache_dir policy ~rel content =
  let path = cache_file cache_dir rel in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
    let entry =
      match (Marshal.from_channel ic : string * unit_result) with
      | exception _ -> None
      | stamp, result when String.equal stamp (cache_key policy content) ->
        Some result
      | _ -> None
    in
    close_in_noerr ic;
    entry)

let cache_store cache_dir policy ~rel content result =
  (try
     if not (Sys.file_exists cache_dir) then Sys.mkdir cache_dir 0o755
   with Sys_error _ -> ());
  let path = cache_file cache_dir rel in
  match open_out_bin (path ^ ".tmp") with
  | exception Sys_error _ -> ()
  | oc ->
    (try
       Marshal.to_channel oc (cache_key policy content, result) [];
       close_out oc;
       Sys.rename (path ^ ".tmp") path
     with Sys_error _ -> close_out_noerr oc)

(* --- Baseline ------------------------------------------------------- *)

let load_baseline path =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
    let rec loop acc =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        List.rev acc
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then loop acc else loop (line :: acc)
    in
    loop []

let apply_baseline entries findings =
  let remaining = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let count = Option.value ~default:0 (Hashtbl.find_opt remaining e) in
      Hashtbl.replace remaining e (count + 1))
    entries;
  List.filter
    (fun f ->
      let fp = Finding.fingerprint f in
      match Hashtbl.find_opt remaining fp with
      | Some count when count > 0 ->
        Hashtbl.replace remaining fp (count - 1);
        false
      | _ -> true)
    findings

let write_baseline path findings =
  let oc = open_out_bin path in
  output_string oc
    "# sxq-lint baseline: one fingerprint (rule<TAB>file<TAB>message) per \
     line.\n\
     # Entries absorb existing findings so a new rule can land before every\n\
     # violation is fixed.  Keep this file empty whenever possible.\n";
  List.iter
    (fun f ->
      output_string oc (Finding.fingerprint f);
      output_char oc '\n')
    findings;
  close_out oc

(* --- Tree walk ------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let source_files ~root =
  let out = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    (* Broken symlinks or unreadable entries raise Sys_error; skip them
       rather than abort the whole walk. *)
    match Sys.is_directory abs with
    | exception Sys_error _ -> ()
    | true ->
      Array.iter
        (fun entry -> walk (Filename.concat rel entry))
        (Sys.readdir abs)
    | false ->
      if Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli"
      then out := rel :: !out
  in
  List.iter
    (fun top ->
      if Sys.file_exists (Filename.concat root top) then walk top)
    [ "lib"; "bin"; "test" ];
  List.sort String.compare !out

(* Token findings per unit, then the whole-tree taint pass over the
   collected graphs; taint findings honour the same suppression
   comments as everything else. *)
let check_units policy units =
  let token = List.concat_map (fun (_, u) -> u.u_findings) units in
  let graphs = List.filter_map (fun (_, u) -> u.u_graph) units in
  let comments_of =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (rel, u) -> Hashtbl.replace tbl rel u.u_comments) units;
    fun rel ->
      match Hashtbl.find_opt tbl rel with Some c -> c | None -> []
  in
  let taint =
    Taint.check policy graphs
    |> List.filter (fun f -> not (suppressed_by (comments_of f.Finding.file) f))
  in
  List.sort Finding.compare (token @ taint)

let check_sources ?(policy = Policy.default) files =
  check_units policy
    (List.map (fun (rel, content) -> rel, unit_of ~policy ~rel content) files)

let check_tree ?(policy = Policy.default) ?cache_dir ~root () =
  let units =
    List.map
      (fun rel ->
        let content = read_file (Filename.concat root rel) in
        let unit =
          match cache_dir with
          | None -> unit_of ~policy ~rel content
          | Some dir -> (
            match cache_load dir policy ~rel content with
            | Some u -> u
            | None ->
              let u = unit_of ~policy ~rel content in
              cache_store dir policy ~rel content u;
              u)
        in
        rel, unit)
      (source_files ~root)
  in
  check_units policy units

let run ?(policy = Policy.default) ?baseline ?cache_dir ~root () =
  let baseline_path =
    match baseline with
    | Some p -> p
    | None -> Filename.concat root "lint.baseline"
  in
  let findings = check_tree ~policy ?cache_dir ~root () in
  let kept = apply_baseline (load_baseline baseline_path) findings in
  let kept = List.sort Finding.compare kept in
  kept, List.length findings - List.length kept
