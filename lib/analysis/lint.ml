(* --- Suppression comments ------------------------------------------ *)

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

(* [lint: allow r1 r2] -> Some [r1; r2]; [lint: allow all] -> Some []. *)
let parse_suppression text =
  match split_words (String.trim text) with
  | "lint:" :: "allow" :: rules when rules <> [] ->
    if List.mem "all" rules then Some [] else Some rules
  | _ -> None

let suppressed (lex : Lexer.t) (f : Finding.t) =
  List.exists
    (fun (c : Lexer.comment) ->
      match parse_suppression c.text with
      | None -> false
      | Some rules ->
        (rules = [] || List.mem f.Finding.rule rules)
        && f.Finding.line >= c.start_line
        && f.Finding.line <= c.end_line + 1)
    lex.comments

(* --- Single unit ---------------------------------------------------- *)

let check_source ?(policy = Policy.default) ~rel content =
  let lex = Lexer.tokenize content in
  Rules.check policy ~rel lex
  |> List.filter (fun f -> not (suppressed lex f))

(* --- Baseline ------------------------------------------------------- *)

let load_baseline path =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
    let rec loop acc =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        List.rev acc
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then loop acc else loop (line :: acc)
    in
    loop []

let apply_baseline entries findings =
  let remaining = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let count = Option.value ~default:0 (Hashtbl.find_opt remaining e) in
      Hashtbl.replace remaining e (count + 1))
    entries;
  List.filter
    (fun f ->
      let fp = Finding.fingerprint f in
      match Hashtbl.find_opt remaining fp with
      | Some count when count > 0 ->
        Hashtbl.replace remaining fp (count - 1);
        false
      | _ -> true)
    findings

let write_baseline path findings =
  let oc = open_out_bin path in
  output_string oc
    "# sxq-lint baseline: one fingerprint (rule<TAB>file<TAB>message) per \
     line.\n\
     # Entries absorb existing findings so a new rule can land before every\n\
     # violation is fixed.  Keep this file empty whenever possible.\n";
  List.iter
    (fun f ->
      output_string oc (Finding.fingerprint f);
      output_char oc '\n')
    findings;
  close_out oc

(* --- Tree walk ------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let source_files ~root =
  let out = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    (* Broken symlinks or unreadable entries raise Sys_error; skip them
       rather than abort the whole walk. *)
    match Sys.is_directory abs with
    | exception Sys_error _ -> ()
    | true ->
      Array.iter
        (fun entry -> walk (Filename.concat rel entry))
        (Sys.readdir abs)
    | false ->
      if Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli"
      then out := rel :: !out
  in
  List.iter
    (fun top ->
      if Sys.file_exists (Filename.concat root top) then walk top)
    [ "lib"; "bin"; "test" ];
  List.sort String.compare !out

let check_tree ?(policy = Policy.default) ~root () =
  List.concat_map
    (fun rel -> check_source ~policy ~rel (read_file (Filename.concat root rel)))
    (source_files ~root)

let run ?(policy = Policy.default) ?baseline ~root () =
  let baseline_path =
    match baseline with
    | Some p -> p
    | None -> Filename.concat root "lint.baseline"
  in
  let findings = check_tree ~policy ~root () in
  let kept = apply_baseline (load_baseline baseline_path) findings in
  let kept = List.sort Finding.compare kept in
  kept, List.length findings - List.length kept
