type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  witness : string list;
}

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let fingerprint f = String.concat "\t" [ f.rule; f.file; f.message ]

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
    | c -> c)
  | c -> c
