(* Group ids are unit-local in a Flowgraph; the environment assigns
   each unit an offset so one Hashtbl can hold the whole tree's taint. *)

type prov = {
  pfile : string;
  pline : int;
  plabel : string;
  parent : int option;  (* global group whose taint caused this one *)
}

type env = {
  policy : Policy.t;
  graphs : Flowgraph.t list;
  (* rel -> graph, group offset, sorted toplevel binding lines (the
     file's region boundaries — see [region_of]) *)
  infos : (string, Flowgraph.t * int * int array) Hashtbl.t;
  gname : (int, string) Hashtbl.t;                (* group -> binding name *)
  (* (rel, name) -> (offset, region, binding); the binding record keeps
     local slot ids, so the unit's offset travels with it *)
  by_name : (string, (int * int * Flowgraph.binding) list) Hashtbl.t;
  tainted : (int, prov) Hashtbl.t;
  mutable changed : bool;
}

let key rel name = rel ^ "\000" ^ name

let is_upper s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'
let is_lower s = s <> "" && s.[0] >= 'a' && s.[0] <= 'z'

let lib_dir rel =
  if String.length rel > 4 && String.sub rel 0 4 = "lib/" then
    let rest = String.sub rel 4 (String.length rel - 4) in
    match String.index_opt rest '/' with
    | Some i -> Some (String.sub rest 0 i)
    | None -> None
  else None

(* Scope approximation: a file is partitioned into regions, one per
   toplevel binding (by line); a non-toplevel binding is visible only to
   uses in its own region.  This loses nested-scope precision inside one
   toplevel function (shadowed locals unify) but keeps unrelated
   functions' equally-named locals apart — without it, every [t] or
   [result] in a file would share taint. *)
let region_of lines l =
  let lo = ref (-1) in
  Array.iteri (fun i start -> if start <= l then lo := i) lines;
  !lo

let build_env policy graphs =
  let env =
    { policy;
      graphs;
      infos = Hashtbl.create 64;
      gname = Hashtbl.create 1024;
      by_name = Hashtbl.create 1024;
      tainted = Hashtbl.create 256;
      changed = false }
  in
  let next = ref 0 in
  List.iter
    (fun (g : Flowgraph.t) ->
      let offset = !next in
      let top_lines =
        g.bindings
        |> List.filter_map (fun (b : Flowgraph.binding) ->
               if b.toplevel then Some b.line else None)
        |> List.sort_uniq Int.compare
        |> Array.of_list
      in
      Hashtbl.replace env.infos g.rel (g, offset, top_lines);
      let top =
        List.fold_left (fun m (b : Flowgraph.binding) -> max m b.group) (-1)
          g.bindings
      in
      next := offset + top + 1;
      List.iter
        (fun (b : Flowgraph.binding) ->
          let gg = offset + b.group in
          if not (Hashtbl.mem env.gname gg) then
            Hashtbl.replace env.gname gg b.name;
          let k = key g.rel b.name in
          let prior =
            match Hashtbl.find_opt env.by_name k with Some l -> l | None -> []
          in
          Hashtbl.replace env.by_name k
            ((offset, region_of top_lines b.line, b) :: prior))
        g.bindings)
    graphs;
  env

(* --- Path resolution ------------------------------------------------ *)

(* [Secure.Client.create] -> (lib/secure/client.ml, create);
   [Obs.span]             -> (lib/obs/obs.ml, span);
   [Client.create] seen from lib/secure/* -> (lib/secure/client.ml, create);
   [Hmac.prepare] seen from lib/dsi/* under [open Crypto] -> the first
   of lib/dsi/hmac.ml, lib/xmlcore/hmac.ml, lib/crypto/hmac.ml that
   exists (the current library, then its allowed dependencies). *)
let target_of env ~from_rel path =
  match path with
  | root :: rest when is_upper root -> (
    match Policy.library_of_root env.policy root, rest with
    | Some lib, [ fn ] when is_lower fn ->
      Some ("lib/" ^ lib ^ "/" ^ String.lowercase_ascii root ^ ".ml", fn)
    | Some lib, sub :: fn :: _ when is_upper sub && is_lower fn ->
      Some ("lib/" ^ lib ^ "/" ^ String.lowercase_ascii sub ^ ".ml", fn)
    | Some _, _ -> None
    | None, fn :: _ when is_lower fn -> (
      match lib_dir from_rel with
      | Some lib ->
        let candidates =
          List.map
            (fun l -> "lib/" ^ l ^ "/" ^ String.lowercase_ascii root ^ ".ml")
            (lib :: Policy.allowed_deps env.policy lib)
        in
        (match List.find_opt (Hashtbl.mem env.infos) candidates with
         | Some rel' -> Some (rel', fn)
         | None -> None)
      | None -> None)
    | None, _ -> None)
  | _ -> None

type pinfo = {
  qnames : string list;  (* dotted candidates for policy matching *)
  bare : string option;  (* single unqualified lowercase name *)
  groups : int list;     (* resolved global taint groups *)
  callees : (int * Flowgraph.binding) list;  (* function bindings + offset *)
}

let analyze_path env (g : Flowgraph.t) ~line path =
  match path with
  | [ x ] when is_lower x ->
    let entries =
      match Hashtbl.find_opt env.by_name (key g.rel x) with
      | Some l -> (
        match Hashtbl.find_opt env.infos g.rel with
        | Some (_, _, top_lines) ->
          let region = region_of top_lines line in
          List.filter
            (fun (_, r, (b : Flowgraph.binding)) -> b.toplevel || r = region)
            l
        | None -> l)
      | None -> []
    in
    { qnames = [ Flowgraph.qualify g path ];
      bare = Some x;
      groups =
        List.map (fun (off, _, (b : Flowgraph.binding)) -> off + b.group) entries;
      callees =
        List.filter_map
          (fun (off, _, (b : Flowgraph.binding)) ->
            if b.slots <> [] then Some (off, b) else None)
          entries }
  | _ :: _ :: _ when is_upper (List.hd path) ->
    let literal = String.concat "." path in
    (match target_of env ~from_rel:g.rel path with
     | Some (rel', fn) when Hashtbl.mem env.infos rel' ->
       let tg, _, _ = Hashtbl.find env.infos rel' in
       let canonical = Flowgraph.qualify tg [ fn ] in
       let entries =
         match Hashtbl.find_opt env.by_name (key rel' fn) with
         | Some l ->
           List.filter (fun (_, _, (b : Flowgraph.binding)) -> b.toplevel) l
         | None -> []
       in
       { qnames =
           (if canonical = literal then [ literal ] else [ literal; canonical ]);
         bare = None;
         groups =
           List.map
             (fun (off, _, (b : Flowgraph.binding)) -> off + b.group)
             entries;
         callees =
           List.filter_map
             (fun (off, _, (b : Flowgraph.binding)) ->
               if b.slots <> [] then Some (off, b) else None)
             entries }
     | _ -> { qnames = [ literal ]; bare = None; groups = []; callees = [] })
  | _ ->
    { qnames = [ String.concat "." path ]; bare = None; groups = []; callees = [] }

(* Policy entries ending in "." are prefix wildcards; bare lowercase
   entries match only unqualified names (stdlib sinks). *)
let matches entries (p : pinfo) =
  List.exists
    (fun e ->
      if String.contains e '.' then
        if String.length e > 0 && e.[String.length e - 1] = '.' then
          List.exists
            (fun q ->
              String.length q >= String.length e
              && String.sub q 0 (String.length e) = e)
            p.qnames
        else List.mem e p.qnames
      else match p.bare with Some b -> String.equal b e | None -> false)
    entries

let flow env = env.policy.Policy.flow

let taint env group prov =
  if group >= 0 && not (Hashtbl.mem env.tainted group) then begin
    Hashtbl.replace env.tainted group prov;
    env.changed <- true
  end

(* Seed the parameters that receive secrets at every call site, so the
   secret is tracked inside the callee even when no call is visible. *)
let seed_params env =
  List.iter
    (fun (qfn, pname) ->
      Hashtbl.iter
        (fun rel (g, offset, _) ->
          List.iter
            (fun (b : Flowgraph.binding) ->
              if b.toplevel && Flowgraph.qualify g [ b.name ] = qfn then
                List.iter
                  (fun (slot : Flowgraph.slot) ->
                    List.iter
                      (fun pg ->
                        let gg = offset + pg in
                        match Hashtbl.find_opt env.gname gg with
                        | Some n when n = pname ->
                          taint env gg
                            { pfile = rel;
                              pline = b.line;
                              plabel =
                                Printf.sprintf
                                  "%s (parameter of %s, receives secrets)" pname
                                  qfn;
                              parent = None }
                        | _ -> ())
                      slot.groups)
                  b.slots)
            g.Flowgraph.bindings)
        env.infos)
    (flow env).Policy.source_params

(* --- The per-use transfer function ---------------------------------- *)

let path_str path = String.concat "." path

(* Map a use's argument position onto the callee's parameter slot:
   label match first, else the n-th unlabelled slot. *)
let slot_for (b : Flowgraph.binding) (fr : Flowgraph.frame) =
  match fr.arg_label with
  | Some l ->
    List.find_opt
      (fun (s : Flowgraph.slot) -> s.label = Some l)
      b.slots
  | None ->
    if fr.arg_index < 0 then None
    else
      let unlabelled =
        List.filter (fun (s : Flowgraph.slot) -> s.label = None) b.slots
      in
      List.nth_opt unlabelled fr.arg_index

let process_use env (g : Flowgraph.t) emit (u : Flowgraph.use) =
  let fl = flow env in
  let offset = match Hashtbl.find_opt env.infos g.rel with
    | Some (_, off, _) -> off
    | None -> 0
  in
  let binder = if u.binder < 0 then -1 else offset + u.binder in
  let p = analyze_path env g ~line:u.line u.path in
  if matches fl.Policy.declassifiers p then ()
  else begin
    (* why is this use tainted, if it is? *)
    let cause =
      if matches fl.Policy.sources p then
        Some
          ( Printf.sprintf "%s (source)" (path_str u.path),
            None )
      else
        match List.find_opt (fun gg -> Hashtbl.mem env.tainted gg) p.groups with
        | Some gg ->
          Some (path_str u.path, Some gg)
        | None -> None
    in
    match cause with
    | None -> ()
    | Some (label, parent) ->
      let absorbed = ref false in
      let sunk = ref false in
      let consumed = ref false in
      let stop = ref false in
      let frames = ref u.frames in
      while (not !stop) && !frames <> [] do
        let fr = List.hd !frames in
        frames := List.tl !frames;
        if fr.Flowgraph.head = Flowgraph.lambda_head then
          (* The use sits in an anonymous [fun] body.  The flow into
             whatever application the lambda is an argument of is cut —
             the runner receives a closure, not the secret — but the use
             still taints the binding the lambda sits under, because the
             runner may call the closure and hand back its result. *)
          stop := true
        else begin
          let fp = analyze_path env g ~line:u.line fr.Flowgraph.head in
          if matches fl.Policy.declassifiers fp then begin
            absorbed := true;
            stop := true
          end
          else if matches fl.Policy.sinks fp then begin
            sunk := true;
            stop := true;
            match emit with
            | None -> ()
            | Some record ->
              record ~file:g.rel ~line:u.line ~col:u.col ~label ~parent
                ~sink:(path_str fr.Flowgraph.head)
          end
          else begin
            (* A known callee consumes the argument: the secret enters
               its parameter group, and the call's result is secret only
               if the callee's own body makes it so (which taints the
               callee's function binding and re-emerges at call sites
               through the head-use rule).  Unknown heads fall through:
               the value may come straight back, so the binder below
               stays tainted. *)
            let hit = ref false in
            List.iter
              (fun (off, (b : Flowgraph.binding)) ->
                match slot_for b fr with
                | Some slot ->
                  hit := true;
                  List.iter
                    (fun pg ->
                      taint env (off + pg)
                        { pfile = g.rel;
                          pline = u.line;
                          plabel =
                            Printf.sprintf "%s -> %s (argument)" label b.name;
                          parent })
                    slot.Flowgraph.groups
                | None -> ())
              fp.callees;
            if !hit then begin
              consumed := true;
              stop := true
            end
          end
        end
      done;
      if (not !absorbed) && not !consumed then
        taint env binder
          { pfile = g.rel;
            pline = u.line;
            plabel =
              (match Hashtbl.find_opt env.gname binder with
               | Some n -> Printf.sprintf "%s <- %s" n label
               | None -> label);
            parent };
      if
        (not !absorbed) && (not !sunk)
        && List.mem g.rel fl.Policy.sink_files
      then
        match emit with
        | None -> ()
        | Some record ->
          record ~file:g.rel ~line:u.line ~col:u.col ~label ~parent
            ~sink:"server-side code"
  end

(* --- Witness rendering ---------------------------------------------- *)

let witness env ~file ~line ~label ~parent ~sink =
  let hops = ref [] in
  let cursor = ref parent in
  let seen = Hashtbl.create 8 in
  let steps = ref 0 in
  while !cursor <> None && !steps < 32 do
    incr steps;
    (match !cursor with
     | Some gg when not (Hashtbl.mem seen gg) -> (
       Hashtbl.replace seen gg ();
       match Hashtbl.find_opt env.tainted gg with
       | Some pr ->
         hops := Printf.sprintf "%s:%d  %s" pr.pfile pr.pline pr.plabel :: !hops;
         cursor := pr.parent
       | None -> cursor := None)
     | _ -> cursor := None)
  done;
  let hops = if !cursor <> None then "... (witness truncated)" :: !hops else !hops in
  hops @ [ Printf.sprintf "%s:%d  %s -> sink %s" file line label sink ]

(* --- Entry points --------------------------------------------------- *)

let trusted policy rel =
  List.exists
    (fun prefix ->
      String.length rel >= String.length prefix
      && String.sub rel 0 (String.length prefix) = prefix)
    policy.Policy.flow.Policy.trusted_files

let check policy graphs =
  let graphs =
    List.filter (fun (g : Flowgraph.t) -> not (trusted policy g.rel)) graphs
  in
  let env = build_env policy graphs in
  seed_params env;
  (* monotone fixpoint: every pass may only add tainted groups, and the
     group count bounds the pass count; the cap is a safety net. *)
  let passes = ref 0 in
  env.changed <- true;
  while env.changed && !passes < 64 do
    env.changed <- false;
    incr passes;
    List.iter
      (fun (g : Flowgraph.t) ->
        List.iter (process_use env g None) g.Flowgraph.uses)
      graphs
  done;
  let out = ref [] in
  let dedup = Hashtbl.create 32 in
  List.iter
    (fun (g : Flowgraph.t) ->
      let record ~file ~line ~col ~label ~parent ~sink =
        let message =
          Printf.sprintf "secret value %s reaches %s without declassification"
            label
            (if sink = "server-side code" then sink else "sink " ^ sink)
        in
        let k = (file, line, col, message) in
        if not (Hashtbl.mem dedup k) then begin
          Hashtbl.replace dedup k ();
          out :=
            { Finding.rule = "secret-flow";
              file;
              line;
              col;
              message;
              witness = witness env ~file ~line ~label ~parent ~sink }
            :: !out
        end
      in
      List.iter (process_use env g (Some record)) g.Flowgraph.uses)
    graphs;
  List.sort Finding.compare !out

let modpath_of policy rel =
  match lib_dir rel with
  | None -> []
  | Some lib -> (
    let root =
      List.find_opt (fun (_, l) -> String.equal l lib) policy.Policy.roots
    in
    match root with
    | None -> []
    | Some (root, _) ->
      let base = Filename.remove_extension (Filename.basename rel) in
      if String.lowercase_ascii root = base then [ root ]
      else [ root; String.capitalize_ascii base ])

let check_files policy files =
  let graphs =
    List.filter_map
      (fun (rel, src) ->
        match lib_dir rel with
        | Some _ when Filename.check_suffix rel ".ml" ->
          let lex = Lexer.tokenize src in
          Some (Flowgraph.build ~rel ~modpath:(modpath_of policy rel) lex)
        | _ -> None)
      files
  in
  check policy graphs
