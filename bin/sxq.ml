(* sxq — secure XML query tool.

   Command-line front end for the library: generate workload documents,
   inspect their statistics, host them under an encryption scheme and
   run queries through the full client/server protocol, or run the
   attack simulators against them. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let doc_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml"
         ~doc:"XML document file.")

let scheme_arg =
  let parse = function
    | "opt" -> Ok Secure.Scheme.Opt
    | "app" -> Ok Secure.Scheme.App
    | "sub" -> Ok Secure.Scheme.Sub
    | "top" -> Ok Secure.Scheme.Top
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %S (opt|app|sub|top)" s))
  in
  let print fmt k = Format.pp_print_string fmt (Secure.Scheme.kind_to_string k) in
  Arg.(value & opt (conv (parse, print)) Secure.Scheme.Opt
       & info [ "s"; "scheme" ] ~docv:"SCHEME"
           ~doc:"Encryption scheme: opt, app, sub or top.")

let sc_arg =
  Arg.(value & opt_all string [] & info [ "c"; "constraint" ] ~docv:"SC"
         ~doc:"Security constraint, e.g. //insurance or \
               //patient:(/pname,/SSN).  Repeatable.")

let master_arg =
  Arg.(value & opt string "sxq-master-key" & info [ "k"; "key" ] ~docv:"KEY"
         ~doc:"Master secret for key derivation.")

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
         ~doc:"Size of the domain pool used for hosting and evaluation.  The \
               default 1 is fully sequential; any other value changes only \
               wall-clock time, never answers or wire traffic.")

(* [f] gets [None] for --domains 1 so the sequential code path is
   byte-for-byte the pre-pool one; otherwise the pool is torn down
   (domains joined) before the command returns. *)
let with_pool domains f =
  if domains <= 1 then f None
  else begin
    let pool = Parallel.Pool.create ~domains () in
    Fun.protect
      ~finally:(fun () -> Parallel.Pool.shutdown pool)
      (fun () -> f (Some pool))
  end

let load_doc path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Xmlcore.Parser.parse_doc s

let parse_scs = List.map Secure.Sc.parse

(* ------------------------------------------------------------------ *)
(* generate                                                            *)

let generate_cmd =
  let workload_arg =
    Arg.(required
         & pos 0
             (some
                (enum
                   [ "xmark", `Xmark; "nasa", `Nasa; "health", `Health;
                     "dblp", `Dblp ]))
             None
         & info [] ~docv:"WORKLOAD" ~doc:"xmark, nasa, health or dblp.")
  in
  let size_arg =
    Arg.(value & opt int 1000 & info [ "n" ] ~docv:"N"
           ~doc:"Record count (persons / datasets / patients).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE"
           ~doc:"Output file (stdout otherwise).")
  in
  let run workload n seed out =
    let seed = Int64.of_int seed in
    let doc =
      match workload with
      | `Xmark -> Workload.Xmark.generate ~seed ~persons:n ()
      | `Nasa -> Workload.Nasa.generate ~seed ~datasets:n ()
      | `Health -> Workload.Health.generate ~seed ~patients:n ()
      | `Dblp -> Workload.Dblp.generate ~seed ~papers:n ()
    in
    let s = Xmlcore.Printer.doc_to_string ~indent:true doc in
    match out with
    | None -> print_string s
    | Some path ->
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc;
      Printf.printf "wrote %d bytes (%d nodes) to %s\n" (String.length s)
        (Xmlcore.Doc.node_count doc) path
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic workload document.")
    Term.(const run $ workload_arg $ size_arg $ seed_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)

(* Emit a JSON value only after checking it survives our own parser —
   every machine-readable sink is self-validating. *)
let print_json_checked j =
  let s = Obs.Json.to_string ~indent:true j in
  match Obs.Json.of_string s with
  | Ok j' when Obs.Json.equal j j' -> print_endline s
  | Ok _ | Error _ ->
    prerr_endline "sxq: internal error: JSON sink failed round-trip validation";
    exit 2

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let stats_cmd =
  let queries_arg =
    Arg.(value & opt_all string [] & info [ "q"; "query" ] ~docv:"XPATH"
           ~doc:"Host the document, evaluate $(docv) through the protocol, and \
                 report the observability counters and leakage ledger for the \
                 run.  Repeatable.")
  in
  let census_json doc =
    Obs.Json.Obj
      [ "nodes", Obs.Json.Int (Xmlcore.Doc.node_count doc);
        "height", Obs.Json.Int (Xmlcore.Doc.height doc);
        "bytes", Obs.Json.Int (String.length (Xmlcore.Printer.doc_to_string doc));
        "tags",
        Obs.Json.Obj
          (List.map
             (fun (tag, c) -> tag, Obs.Json.Int c)
             (Xmlcore.Stats.tag_census doc));
        "leaf_attributes",
        Obs.Json.Obj
          (List.map
             (fun (tag, h) ->
               ( tag,
                 Obs.Json.Obj
                   [ "values", Obs.Json.Int (Xmlcore.Stats.total_count h);
                     "distinct", Obs.Json.Int (Xmlcore.Stats.distinct_count h);
                     "flatness", Obs.Json.Float (Xmlcore.Stats.flatness h) ] ))
             (Xmlcore.Stats.all_histograms doc)) ]
  in
  let census_text doc =
    Printf.printf "nodes: %d   height: %d   serialized: %d bytes\n"
      (Xmlcore.Doc.node_count doc) (Xmlcore.Doc.height doc)
      (String.length (Xmlcore.Printer.doc_to_string doc));
    Printf.printf "\ntag census:\n";
    List.iter
      (fun (tag, c) -> Printf.printf "  %-20s %d\n" tag c)
      (Xmlcore.Stats.tag_census doc);
    Printf.printf "\nleaf attributes:\n";
    List.iter
      (fun (tag, h) ->
        Printf.printf "  %-20s %4d values, %4d distinct, flatness %.2f\n" tag
          (Xmlcore.Stats.total_count h)
          (Xmlcore.Stats.distinct_count h)
          (Xmlcore.Stats.flatness h))
      (Xmlcore.Stats.all_histograms doc)
  in
  let run path queries scs scheme master json =
    let doc = load_doc path in
    match queries with
    | [] -> if json then print_json_checked (census_json doc) else census_text doc
    | queries ->
      let sys, _ = Secure.System.setup ~master doc (parse_scs scs) scheme in
      Obs.Metric.set_enabled Obs.Metric.default true;
      Obs.Metric.reset Obs.Metric.default;
      Obs.Ledger.set_enabled (Secure.System.ledger sys) true;
      List.iter
        (fun q -> ignore (Secure.System.evaluate sys (Xpath.Parser.parse q)))
        queries;
      let reg = Obs.Metric.default in
      let ledger = Secure.System.ledger sys in
      if json then
        print_json_checked
          (Obs.Json.Obj
             [ "document", census_json doc;
               "metrics", Obs.Metric.to_json reg;
               "ledger", Obs.Ledger.to_json ledger ])
      else begin
        census_text doc;
        Printf.printf "\nmetrics (%d queries evaluated):\n%s"
          (List.length queries) (Obs.Metric.render reg);
        Printf.printf "\nleakage ledger:\n%s" (Obs.Ledger.render ledger)
      end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Show document statistics (the attacker's view); with $(b,--query), \
             also the observability counters and leakage ledger of evaluating \
             the given queries through the protocol.")
    Term.(const run $ doc_file_arg $ queries_arg $ sc_arg $ scheme_arg
          $ master_arg $ json_flag)

(* ------------------------------------------------------------------ *)
(* host                                                                *)

let host_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Persist the hosted bundle for later $(b,query --hosted) runs.")
  in
  let run path scs scheme master out domains =
    with_pool domains @@ fun pool ->
    let doc = load_doc path in
    let scs = parse_scs scs in
    let sys, cost = Secure.System.setup ~master ?pool doc scs scheme in
    (match out with
     | None -> ()
     | Some file ->
       Secure.Persist.save sys file;
       Printf.printf "hosted bundle written to %s\n" file);
    let meta = Secure.System.metadata sys in
    Printf.printf "scheme %s: %d blocks, %d nodes encrypted (cover: %s)\n"
      (Secure.Scheme.kind_to_string scheme) cost.Secure.System.block_count
      cost.Secure.System.scheme_size_nodes
      (String.concat ", " (Secure.System.scheme sys).Secure.Scheme.covered_tags);
    Printf.printf "setup: scheme %.1f ms, encrypt %.1f ms, metadata %.1f ms\n"
      cost.Secure.System.scheme_build_ms cost.Secure.System.encrypt_ms
      cost.Secure.System.metadata_ms;
    Printf.printf "server data: %d bytes;  metadata: %d bytes\n"
      cost.Secure.System.server_data_bytes cost.Secure.System.metadata_bytes;
    Printf.printf "DSI table: %d tokens, %d intervals;  B-tree: %d entries, height %d\n"
      (List.length meta.Secure.Metadata.dsi_table)
      (Secure.Metadata.table_entry_count meta)
      (Secure.Metadata.btree_entry_count meta)
      (Btree.height meta.Secure.Metadata.btree)
  in
  Cmd.v
    (Cmd.info "host"
       ~doc:"Build the hosted (encrypted) form of a document and report sizes.")
    Term.(const run $ doc_file_arg $ sc_arg $ scheme_arg $ master_arg $ out_arg
          $ domains_arg)

(* ------------------------------------------------------------------ *)
(* verify                                                              *)

let verify_cmd =
  let bundle_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BUNDLE"
           ~doc:"Hosted bundle file written by $(b,host -o).")
  in
  let run path master =
    let report = Secure.Persist.verify_file ~master path in
    Printf.printf "%s: %d bytes\n" path report.Secure.Persist.file_bytes;
    Printf.printf "sections:\n";
    List.iter
      (fun (name, status) ->
        let s =
          match status with
          | Secure.Persist.Section_ok -> "ok"
          | Secure.Persist.Section_failed m -> "FAILED (" ^ m ^ ")"
          | Secure.Persist.Section_unreached -> "unreached"
        in
        Printf.printf "  %-16s %s\n" name s)
      report.Secure.Persist.sections;
    Printf.printf "blocks: %d/%d decrypt ok\n"
      (report.Secure.Persist.blocks_total
       - List.length report.Secure.Persist.blocks_bad)
      report.Secure.Persist.blocks_total;
    List.iter
      (fun (id, why) -> Printf.printf "  block %d: %s\n" id why)
      report.Secure.Persist.blocks_bad;
    Printf.printf "verdict: %s\n"
      (Secure.Persist.verdict_to_string report.Secure.Persist.verdict);
    (* Delta-log fsck: complete records are authenticated and replayed
       in memory against their stored digests.  A torn tail is a crash
       artifact the journal recovers from (warning only); tampering or
       a replay divergence is as fatal as a bad bundle. *)
    let log_failed =
      match Secure.Persist.fsck_log ~master path with
      | None -> false
      | Some l ->
        Printf.printf "delta log: %d bytes, %d record(s), %d pending\n"
          l.Secure.Persist.log_bytes l.Secure.Persist.log_records
          l.Secure.Persist.log_pending;
        if l.Secure.Persist.log_dropped_bytes > 0 then
          Printf.printf
            "  torn tail: %d byte(s) dropped (recoverable; the journal \
             truncates them on open)\n"
            l.Secure.Persist.log_dropped_bytes;
        (match l.Secure.Persist.log_fatal with
         | Some m -> Printf.printf "  TAMPERED: %s\n" m
         | None -> ());
        (match l.Secure.Persist.log_replay with
         | Some m -> Printf.printf "  replay FAILED: %s\n" m
         | None ->
           if l.Secure.Persist.log_fatal = None then
             Printf.printf "  replay: ok\n");
        l.Secure.Persist.log_fatal <> None
        || l.Secure.Persist.log_replay <> None
    in
    if report.Secure.Persist.verdict <> Secure.Persist.Intact || log_failed
    then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check a hosted bundle's integrity (magic, framing, HMAC trailer, \
             per-section decodability, per-block decryptability) plus its \
             delta log (per-record authentication, torn-tail vs tampering, \
             replay validation) and report a per-section status instead of a \
             bare Corrupt exception.")
    Term.(const run $ bundle_arg $ master_arg)

(* ------------------------------------------------------------------ *)
(* query                                                               *)

let query_cmd =
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH"
           ~doc:"XPath query to evaluate through the protocol.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the translated query.")
  in
  let hosted_arg =
    Arg.(value & flag & info [ "hosted" ]
           ~doc:"Treat DOC as a persisted bundle from $(b,host -o) instead of \
                 XML (skips setup).")
  in
  let run path query scs scheme master verbose hosted domains =
    with_pool domains @@ fun pool ->
    let sys =
      if hosted then
        (try Secure.Persist.load ~master path
         with Secure.Persist.Corrupt m ->
           Printf.eprintf
             "sxq: cannot load %s: %s\n(run `sxq verify %s` for a per-section \
              diagnosis)\n"
             path m path;
           exit 1)
      else begin
        let doc = load_doc path in
        let scs = parse_scs scs in
        fst (Secure.System.setup ~master ?pool doc scs scheme)
      end
    in
    let branches = Xpath.Parser.parse_union query in
    if verbose then
      List.iter
        (fun q ->
          let translated = Secure.Client.translate (Secure.System.client sys) q in
          Printf.printf "translated: %s\n" (Secure.Squery.to_string translated);
          List.iter
            (fun r ->
              Printf.printf "  step %d: %d candidates -> %d surviving\n"
                r.Secure.Server.step_index r.Secure.Server.raw_candidates
                r.Secure.Server.surviving_candidates)
            (Secure.Server.explain (Secure.System.server sys) translated))
        branches;
    let answers, cost =
      match branches with
      | [ q ] -> Secure.System.evaluate sys q
      | many -> Secure.System.evaluate_union sys many
    in
    List.iter
      (fun t -> print_endline (Xmlcore.Printer.tree_to_string t))
      answers;
    Printf.eprintf
      "%d answer(s); %d block(s), %d bytes shipped; translate %.2f + server \
       %.2f + transmit %.2f + decrypt %.2f + post %.2f = %.2f ms\n"
      cost.Secure.System.answer_count cost.Secure.System.blocks_returned
      cost.Secure.System.transmit_bytes cost.Secure.System.translate_ms
      cost.Secure.System.server_ms cost.Secure.System.transmit_ms
      cost.Secure.System.decrypt_ms cost.Secure.System.postprocess_ms
      (Secure.System.total_ms cost)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Evaluate an XPath query through the full secure protocol.")
    Term.(const run $ doc_file_arg $ query_arg $ sc_arg $ scheme_arg $ master_arg
          $ verbose_arg $ hosted_arg $ domains_arg)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

let explain_cmd =
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH"
           ~doc:"XPath query to plan and evaluate through the engine.")
  in
  let rounds_arg =
    Arg.(value & opt int 2 & info [ "rounds" ] ~docv:"N"
           ~doc:"Evaluation rounds (round 1 is cold, later rounds show \
                 cache behaviour).")
  in
  let no_planner_arg =
    Arg.(value & flag & info [ "no-planner" ]
           ~doc:"Compile identity (left-to-right) plans.")
  in
  let no_caches_arg =
    Arg.(value & flag & info [ "no-caches" ]
           ~doc:"Disable the plan, result and block caches.")
  in
  let print_report round (report : Engine.report) =
    Printf.printf "round %d: plan %s, result %s, blocks %d cached / %d shipped\n"
      round
      (Engine.outcome_to_string report.Engine.plan_outcome)
      (Engine.outcome_to_string report.Engine.result_outcome)
      report.Engine.block_hits report.Engine.block_misses;
    if round = 1 then begin
      Printf.printf "plan:\n%s\n" (Engine.Plan.to_string report.Engine.plan);
      Printf.printf "%-6s %-20s %12s %12s %12s\n" "step" "axis" "estimated"
        "actual" "surviving";
      List.iter
        (fun (s : Engine.Exec.step_actual) ->
          Printf.printf "%-6d %-20s %12.1f %12d %12d\n" s.Engine.Exec.index
            (Engine.Plan.axis_name s.Engine.Exec.axis)
            s.Engine.Exec.estimated s.Engine.Exec.actual_raw
            s.Engine.Exec.surviving)
        report.Engine.steps
    end;
    Printf.printf
      "  %d answer(s); %d block(s), %d bytes on the wire; plan %.2f + server \
       %.2f + decrypt %.2f ms\n"
      report.Engine.answer_count report.Engine.blocks_returned
      report.Engine.transmit_bytes report.Engine.plan_ms
      report.Engine.server_ms report.Engine.decrypt_ms
  in
  let run path query scs scheme master rounds no_planner no_caches =
    let doc = load_doc path in
    let scs = parse_scs scs in
    let sys = fst (Secure.System.setup ~master doc scs scheme) in
    let config =
      { Engine.default_config with
        planner = not no_planner;
        caches = not no_caches }
    in
    let engine = Engine.create ~config sys in
    let q = Xpath.Parser.parse query in
    for round = 1 to Int.max 1 rounds do
      let _, report = Engine.evaluate_report engine q in
      print_report round report
    done;
    Printf.printf "engine: %s\n" (Engine.Stats.to_string (Engine.stats engine))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the engine's evaluation plan, per-step estimates vs. \
             actuals, and cache outcomes for an XPath query.")
    Term.(const run $ doc_file_arg $ query_arg $ sc_arg $ scheme_arg
          $ master_arg $ rounds_arg $ no_planner_arg $ no_caches_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)

let trace_cmd =
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH"
           ~doc:"XPath query to trace through the protocol.")
  in
  let engine_arg =
    Arg.(value & flag & info [ "engine" ]
           ~doc:"Evaluate through the cost-based engine instead of the plain \
                 protocol (adds engine.* spans and cache outcomes).")
  in
  let rounds_arg =
    Arg.(value & opt int 1 & info [ "rounds" ] ~docv:"N"
           ~doc:"Evaluation rounds (each produces one root span; with \
                 $(b,--engine), later rounds show cache hits).")
  in
  let run path query scs scheme master engine_mode rounds json =
    let doc = load_doc path in
    let sys, _ = Secure.System.setup ~master doc (parse_scs scs) scheme in
    let trace = Secure.System.tracer sys in
    let ledger = Secure.System.ledger sys in
    Obs.Trace.set_enabled trace true;
    Obs.Ledger.set_enabled ledger true;
    let q = Xpath.Parser.parse query in
    let eng = if engine_mode then Some (Engine.create sys) else None in
    let answers = ref [] in
    for _ = 1 to Int.max 1 rounds do
      match eng with
      | Some eng -> answers := Engine.evaluate eng q
      | None -> answers := fst (Secure.System.evaluate sys q)
    done;
    if json then
      print_json_checked
        (Obs.Json.Obj
           [ "query", Obs.Json.Str query;
             "answers", Obs.Json.Int (List.length !answers);
             "trace", Obs.Trace.to_json trace;
             "ledger", Obs.Ledger.to_json ledger ])
    else begin
      print_string (Obs.Trace.render trace);
      Printf.printf "\nleakage ledger:\n%s" (Obs.Ledger.render ledger);
      Printf.printf "\n%d answer(s)\n" (List.length !answers)
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Evaluate an XPath query with structured tracing enabled and dump \
             the span tree (deterministic tick counter, never wall clock) \
             together with the leakage ledger.")
    Term.(const run $ doc_file_arg $ query_arg $ sc_arg $ scheme_arg $ master_arg
          $ engine_arg $ rounds_arg $ json_flag)

(* ------------------------------------------------------------------ *)
(* aggregate                                                           *)

let aggregate_cmd =
  let dir_arg =
    Arg.(required & pos 1 (some (enum [ "min", `Min; "max", `Max ])) None
         & info [] ~docv:"MIN|MAX" ~doc:"Aggregate function.")
  in
  let path_arg =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"XPATH"
           ~doc:"Query whose answers are aggregated.")
  in
  let run path dir query scs scheme master =
    let doc = load_doc path in
    let sys, _ = Secure.System.setup ~master doc (parse_scs scs) scheme in
    let q = Xpath.Parser.parse query in
    let result, cost = Secure.System.aggregate sys dir q in
    print_endline (Option.value ~default:"(no answers)" result);
    Printf.eprintf "%d block(s) shipped, %.2f ms\n" cost.Secure.System.blocks_returned
      (Secure.System.total_ms cost)
  in
  Cmd.v
    (Cmd.info "aggregate"
       ~doc:"MIN/MAX over a query's answers (Section 6.4: at most one block \
             is decrypted for structural queries).")
    Term.(const run $ doc_file_arg $ dir_arg $ path_arg $ sc_arg $ scheme_arg
          $ master_arg)

(* ------------------------------------------------------------------ *)
(* xquery                                                              *)

let xquery_cmd =
  let flwor_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FLWOR"
           ~doc:"FLWOR expression, e.g. \"for \\$p in //patient where \
                 \\$p/age >= 40 return <r>{\\$p/pname}</r>\".")
  in
  let run path flwor scs scheme master =
    let doc = load_doc path in
    let sys, _ = Secure.System.setup ~master doc (parse_scs scs) scheme in
    let q = Xquery.Parser.parse flwor in
    let results, cost = Xquery.Secure_run.evaluate sys q in
    List.iter (fun t -> print_endline (Xmlcore.Printer.tree_to_string t)) results;
    Printf.eprintf "%d result(s); %d block(s), %.2f ms\n" (List.length results)
      cost.Secure.System.blocks_returned (Secure.System.total_ms cost)
  in
  Cmd.v
    (Cmd.info "xquery"
       ~doc:"Evaluate a FLWOR expression through the secure protocol.")
    Term.(const run $ doc_file_arg $ flwor_arg $ sc_arg $ scheme_arg $ master_arg)

(* ------------------------------------------------------------------ *)
(* attack                                                              *)

(* The adversary simulator (lib/attack).  Three modes:
   - live (default): host a document, run a workload through the
     mitigation layer, then recast the captured leakage ledger as the
     server's observation trace, run the inference passes over it and
     score the candidate sets against the budget declaration;
   - [--trace FILE]: replay an exported ledger capture offline (a bare
     ledger object or the {"tenants":[...]} wrapper that
     [sxq serve --trace-out] writes);
   - [DOC.xml --tag TAG]: the original paper demo — frequency attack on
     one attribute under deterministic vs. OPESS encodings.
   Exit 1 on a budget violation or an unparseable budget (fail closed),
   exit 2 when a trace file fails round-trip validation. *)

let attack_cmd =
  let doc_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"DOC.xml"
           ~doc:"Document to host for the live audit (a built-in health \
                 hosting is used when omitted).")
  in
  let tag_arg =
    Arg.(value & opt (some string) None & info [ "tag" ] ~docv:"TAG"
           ~doc:"Legacy demo: frequency-attack leaf attribute $(docv) of \
                 DOC.xml under deterministic vs. OPESS encodings, then exit.")
  in
  let trace_arg =
    Arg.(value & opt (some file) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Replay an exported leakage trace offline instead of running \
                 a live workload.  $(docv) is either a bare ledger object or \
                 the tenants wrapper written by sxq serve --trace-out; a \
                 capture that does not survive the ledger JSON round trip is \
                 rejected with exit 2.")
  in
  let budget_arg =
    Arg.(value & opt string "attack.budget" & info [ "budget" ] ~docv:"FILE"
           ~doc:"Leakage budget declaration to enforce (minimum candidate-set \
                 size per fact class; see docs/SECURITY.md).")
  in
  let mitigate_arg =
    Arg.(value & opt string "budget" & info [ "mitigate" ] ~docv:"SPEC"
           ~doc:"Mitigations for the live workload: $(b,budget) buys exactly \
                 what the declaration lists, $(b,off) buys none, or a \
                 comma-separated subset of pad, dummy, shuffle.")
  in
  let query_args =
    Arg.(value & opt_all string [] & info [ "q"; "query" ] ~docv:"XPATH"
           ~doc:"Live-workload query (repeatable).  Required when DOC.xml is \
                 given; defaults to the fixed health workload otherwise.")
  in
  let rounds_arg =
    Arg.(value & opt int 2 & info [ "rounds" ] ~docv:"N"
           ~doc:"Times the live workload is submitted (one batch each).")
  in
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED"
           ~doc:"PRNG seed for the mitigation layer (dummy-block choice, \
                 batch shuffling).  Same seed, same trace.")
  in
  let legacy_demo path tag =
    let doc = load_doc path in
    let known = Xmlcore.Stats.value_histogram doc ~tag in
    if known = [] then Printf.printf "no values under tag %S\n" tag
    else begin
      let broken =
        Secure.Attack.frequency_attack ~known
          ~observed:(Secure.Attack.deterministic_leaf_histogram known)
      in
      let cat = Secure.Opess.build ~key:"sxq-attack" ~attr_id:0 ~tag known in
      let secured =
        Secure.Attack.frequency_attack ~known
          ~observed:(Secure.Opess.scaled_histogram cat)
      in
      Printf.printf
        "frequency attack on %S (%d distinct values):\n\
        \  deterministic per-leaf encryption: %3.0f%% cracked\n\
        \  OPESS split+scale index:           %3.0f%% cracked\n"
        tag broken.Secure.Attack.domain_size
        (100.0 *. broken.Secure.Attack.crack_rate)
        (100.0 *. secured.Secure.Attack.crack_rate)
    end
  in
  let load_budget path =
    match Attack.Budget.load path with
    | Ok b -> b
    | Error msg ->
      Printf.eprintf "sxq attack: budget %s: %s (failing closed)\n" path msg;
      exit 1
  in
  let mitigation_config budget = function
    | "off" -> Attack.Mitigate.off
    | "budget" -> Attack.Mitigate.of_budget budget
    | spec ->
      let names =
        List.filter (fun s -> s <> "") (String.split_on_char ',' spec)
      in
      (match
         List.find_opt
           (fun n -> not (List.mem n Attack.Budget.mitigation_names))
           names
       with
       | Some bad ->
         Printf.eprintf "sxq attack: unknown mitigation %S (have: %s)\n" bad
           (String.concat ", " Attack.Budget.mitigation_names);
         exit 1
       | None ->
         { Attack.Mitigate.pad = List.mem "pad" names;
           dummies = (if List.mem "dummy" names then 4 else 0);
           shuffle = List.mem "shuffle" names })
  in
  let bought_names (c : Attack.Mitigate.config) =
    (if c.Attack.Mitigate.pad then [ "pad" ] else [])
    @ (if c.Attack.Mitigate.dummies > 0 then [ "dummy" ] else [])
    @ if c.Attack.Mitigate.shuffle then [ "shuffle" ] else []
  in
  (* Score one trace.  Returns (budget met, json report, text report). *)
  let audit ~label (budget : Attack.Budget.t) trace =
    let required c =
      Option.value ~default:(-1) (List.assoc_opt c budget.Attack.Budget.minimums)
    in
    match Attack.Budget.check budget trace with
    | Error msg ->
      ( false,
        Obs.Json.Obj
          [ "trace", Obs.Json.Str label; "ok", Obs.Json.Bool false;
            "error", Obs.Json.Str msg ],
        [ Printf.sprintf "leakage audit (%s): %s" label msg ] )
    | Ok sc ->
      let findings = Attack.Passes.run_all trace in
      let rows =
        List.map
          (fun c ->
            let sizes =
              List.filter_map
                (fun (f : Attack.Passes.finding) ->
                  if f.pass = c then Some f.candidates else None)
                findings
            in
            (c, List.length sizes, List.fold_left min max_int sizes))
          Attack.Budget.classes
      in
      let violations = sc.Attack.Budget.violations in
      let ok = violations = [] in
      let json =
        Obs.Json.Obj
          [ "trace", Obs.Json.Str label;
            "ok", Obs.Json.Bool ok;
            "rounds", Obs.Json.Int (Attack.Trace.length trace);
            "findings", Obs.Json.Int sc.Attack.Budget.findings;
            "classes",
            Obs.Json.Obj
              (List.map
                 (fun (c, n, mn) ->
                   ( c,
                     Obs.Json.Obj
                       [ "findings", Obs.Json.Int n;
                         "min_candidates",
                         (if n = 0 then Obs.Json.Null else Obs.Json.Int mn);
                         "required", Obs.Json.Int (required c) ] ))
                 rows);
            "violations",
            Obs.Json.List
              (List.map
                 (fun (v : Attack.Budget.violation) ->
                   Obs.Json.Obj
                     [ "pass", Obs.Json.Str v.finding.Attack.Passes.pass;
                       "subject", Obs.Json.Str v.finding.Attack.Passes.subject;
                       "candidates",
                       Obs.Json.Int v.finding.Attack.Passes.candidates;
                       "required", Obs.Json.Int v.required;
                       "witness",
                       Obs.Json.List
                         (List.map
                            (fun h -> Obs.Json.Str h)
                            v.finding.Attack.Passes.witness) ])
                 violations) ]
      in
      let text =
        Printf.sprintf
          "leakage audit (%s): %d round(s), %d finding(s), %d violation(s)"
          label (Attack.Trace.length trace) sc.Attack.Budget.findings
          (List.length violations)
        :: List.map
             (fun (c, n, mn) ->
               if n = 0 then
                 Printf.sprintf "  %-12s no findings (budget >= %d)" c
                   (required c)
               else
                 Printf.sprintf
                   "  %-12s min candidate set %d over %d finding(s) (budget \
                    >= %d)"
                   c mn n (required c))
             rows
        @ List.map
            (fun v -> "  VIOLATION " ^ Attack.Budget.render_violation v)
            violations
      in
      (ok, json, text)
  in
  let live doc_path queries spec rounds seed scs scheme budget_path json =
    if rounds < 1 then begin
      prerr_endline "sxq attack: --rounds must be >= 1";
      exit 1
    end;
    let budget = load_budget budget_path in
    let config = mitigation_config budget spec in
    let doc, constraints, workload =
      match doc_path with
      | Some path ->
        (match queries with
         | [] ->
           prerr_endline
             "sxq attack: at least one --query is required with DOC.xml";
           exit 1
         | qs -> (load_doc path, parse_scs scs, qs))
      | None ->
        let qs =
          if queries = [] then
            [ "//patient/pname"; "//patient[age>=50]/pname"; "//treat/doctor";
              "//SSN" ]
          else queries
        in
        ( Workload.Health.generate ~seed:1L ~patients:6 (),
          Workload.Health.constraints (), qs )
    in
    let batch = Array.of_list (List.map Xpath.Parser.parse workload) in
    let sys, _ =
      Secure.System.setup ~master:"sxq-attack-audit" doc constraints scheme
    in
    Obs.Ledger.set_enabled (Secure.System.ledger sys) true;
    let mit = Attack.Mitigate.create ~seed:(Int64.of_int seed) config in
    for _ = 1 to rounds do
      ignore (Attack.Mitigate.evaluate_batch mit sys batch)
    done;
    let trace = Attack.Trace.of_ledger (Secure.System.ledger sys) in
    let ok, jv, text = audit ~label:"live" budget trace in
    if json then print_json_checked jv
    else begin
      Printf.printf "workload: %d batch(es) x %d quer(ies), mitigations: %s\n"
        rounds (Array.length batch)
        (match bought_names config with
         | [] -> "none"
         | l -> String.concat "," l);
      List.iter print_endline text;
      print_endline
        (if ok then "budget met" else "budget VIOLATED (exit 1)")
    end;
    if not ok then exit 1
  in
  let replay file budget_path json =
    let budget = load_budget budget_path in
    let content =
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let root =
      match Obs.Json.of_string content with
      | Ok j -> j
      | Error msg ->
        Printf.eprintf "sxq attack: %s: %s\n" file msg;
        exit 2
    in
    let entries =
      match Obs.Json.member "tenants" root with
      | Some (Obs.Json.List ts) ->
        List.map
          (fun tj ->
            let name =
              match Obs.Json.member "tenant" tj with
              | Some (Obs.Json.Str s) -> s
              | _ ->
                Printf.eprintf "sxq attack: %s: tenant entry without a name\n"
                  file;
                exit 2
            in
            match Obs.Json.member "ledger" tj with
            | Some lj -> (name, lj)
            | None ->
              Printf.eprintf "sxq attack: %s: tenant %S has no ledger\n" file
                name;
              exit 2)
          ts
      | Some _ ->
        Printf.eprintf "sxq attack: %s: \"tenants\" is not a list\n" file;
        exit 2
      | None -> [ (Filename.basename file, root) ]
    in
    let audits =
      List.map
        (fun (name, lj) ->
          match Obs.Ledger.of_json lj with
          | Error msg ->
            Printf.eprintf "sxq attack: %s: ledger %S: %s\n" file name msg;
            exit 2
          | Ok ledger ->
            (* The exported capture must survive our own printer/parser
               round trip, same bar as every JSON sink. *)
            if not (Obs.Json.equal (Obs.Ledger.to_json ledger) lj) then begin
              Printf.eprintf
                "sxq attack: %s: ledger %S failed round-trip validation\n"
                file name;
              exit 2
            end;
            audit ~label:name budget (Attack.Trace.of_ledger ledger))
        entries
    in
    if json then
      print_json_checked
        (Obs.Json.Obj
           [ "budget", Obs.Json.Str budget_path;
             "audits", Obs.Json.List (List.map (fun (_, jv, _) -> jv) audits) ])
    else
      List.iter
        (fun (_, _, text) ->
          List.iter print_endline text;
          print_newline ())
        audits;
    if List.exists (fun (ok, _, _) -> not ok) audits then exit 1
  in
  let run doc tag trace budget_path spec queries rounds seed scs scheme json =
    match trace, doc, tag with
    | Some _, Some _, _ | Some _, _, Some _ ->
      prerr_endline "sxq attack: --trace cannot be combined with DOC.xml or --tag";
      exit 1
    | Some file, None, None -> replay file budget_path json
    | None, Some path, Some tag -> legacy_demo path tag
    | None, None, Some _ ->
      prerr_endline "sxq attack: --tag requires DOC.xml";
      exit 1
    | None, doc, None ->
      live doc queries spec rounds seed scs scheme budget_path json
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Simulate the honest-but-curious server: run the inference \
             passes (frequency, size, co-occurrence, linkability) over a \
             leakage trace — live, or replayed from a file — and enforce the \
             declared candidate-set budget; with $(b,--tag), run the legacy \
             OPESS frequency-attack demo.")
    Term.(const run $ doc_arg $ tag_arg $ trace_arg $ budget_arg
          $ mitigate_arg $ query_args $ rounds_arg $ seed_arg $ sc_arg
          $ scheme_arg $ json_flag)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let serve_cmd =
  let tenants_arg =
    Arg.(value & opt int 4 & info [ "tenants" ] ~docv:"N"
           ~doc:"Number of independent tenant hostings to multiplex.")
  in
  let queries_arg =
    Arg.(value & opt int 4 & info [ "queries" ] ~docv:"N"
           ~doc:"Queries submitted per tenant, drawn round-robin from a fixed \
                 mixed workload.")
  in
  let chaos_flag =
    Arg.(value & flag & info [ "chaos" ]
           ~doc:"Run tenant-1 over a dead link: its circuit breaker trips \
                 while every other tenant keeps serving, then the link is \
                 re-established and a half-open probe closes the breaker.")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Enable every tenant's leakage ledger and write the captured \
                 traces to $(docv) as {\"tenants\":[{\"tenant\",\"ledger\"}]} \
                 JSON, replayable offline with sxq attack --trace $(docv).")
  in
  let run tenants queries chaos trace_out domains json =
    if tenants < 1 || queries < 1 then begin
      prerr_endline "sxq serve: --tenants and --queries must be >= 1";
      exit 1
    end;
    with_pool domains @@ fun pool ->
    let workload =
      Array.of_list
        (List.map Xpath.Parser.parse
           [ "//patient/pname"; "//patient[age>=50]/pname"; "//treat/doctor";
             "//SSN" ])
    in
    let config =
      { Serve.default_config with
        Serve.queue_depth = Int.max 8 queries;
        bucket_capacity = 2;
        refill_per_round = 2;
        breaker_threshold = 2;
        breaker_cooldown = 2 }
    in
    let srv = Serve.create ~config ?pool () in
    for i = 1 to tenants do
      let id = Printf.sprintf "tenant-%d" i in
      let doc =
        Workload.Health.generate ~seed:(Int64.of_int i) ~patients:(3 + i) ()
      in
      let sys, _ =
        Secure.System.setup ~master:("master-" ^ id) doc
          (Workload.Health.constraints ()) Secure.Scheme.Opt
      in
      let sys =
        if chaos && i = 1 then
          Secure.System.with_faults
            ~session:{ Secure.Session.default_config with max_attempts = 2 }
            ~profile:(Secure.Transport.chaos ~drop:1.0 ()) ~seed:3L sys
        else sys
      in
      if trace_out <> None then
        Obs.Ledger.set_enabled (Secure.System.ledger sys) true;
      Serve.register srv ~id sys
    done;
    let submit_for ids =
      List.iter
        (fun id ->
          for k = 0 to queries - 1 do
            match Serve.submit srv ~tenant:id workload.(k mod Array.length workload) with
            | Ok _ -> ()
            | Error r ->
              Printf.printf "  %s: submission rejected (%s)\n" id
                (Serve.reject_to_string r)
          done)
        ids
    in
    let counter name =
      Obs.Metric.value (Obs.Metric.counter (Serve.registry srv) name)
    in
    let tenant_row id =
      let c name = counter (Printf.sprintf "serve.%s.%s" id name) in
      ( id, Serve.shard_of srv id, Serve.generation srv id,
        c "submitted", c "served", c "failed", c "shed", c "rejected",
        Serve.Breaker.state_to_string (Serve.Breaker.state (Serve.breaker srv id)) )
    in
    let print_table header =
      Printf.printf "\n%s\n" header;
      Printf.printf "%-10s %5s %4s %9s %7s %7s %5s %9s %-12s\n" "tenant"
        "shard" "gen" "submitted" "served" "failed" "shed" "rejected" "breaker";
      List.iter
        (fun id ->
          let _, shard, gen, sub, srvd, fld, shd, rej, st = tenant_row id in
          Printf.printf "%-10s %5d %4d %9d %7d %7d %5d %9d %-12s\n" id shard
            gen sub srvd fld shd rej st)
        (Serve.tenants srv)
    in
    submit_for (Serve.tenants srv);
    ignore (Serve.drain srv ());
    if not json then
      print_table
        (Printf.sprintf "after %d round(s), %d tenant(s), %d quer(ies) each:"
           (Serve.rounds srv) tenants queries);
    if chaos then begin
      if not json then
        Printf.printf
          "\ntenant-1's dead link tripped its breaker; re-establishing the \
           link...\n";
      Serve.relink srv ~tenant:"tenant-1" ();
      (* The relink does not close the breaker: it must cool down and
         earn its way back through a half-open probe.  Empty rounds
         still advance breaker time. *)
      let budget = ref 8 in
      while (not (Serve.Breaker.admits (Serve.breaker srv "tenant-1")))
            && !budget > 0 do
        ignore (Serve.run_round srv);
        decr budget
      done;
      submit_for [ "tenant-1" ];
      ignore (Serve.drain srv ());
      if not json then begin
        Printf.printf
          "breaker cooled to half-open, probe admitted (%d probe(s) total), \
           recovery served over the fresh link:\n"
          (counter "serve.probes");
        print_table "after recovery:"
      end
    end;
    if json then
      print_json_checked
        (Obs.Json.Obj
           [ "tenants",
             Obs.Json.List
               (List.map
                  (fun id ->
                    let _, shard, gen, sub, srvd, fld, shd, rej, st =
                      tenant_row id
                    in
                    Obs.Json.Obj
                      [ "tenant", Obs.Json.Str id;
                        "shard", Obs.Json.Int shard;
                        "generation", Obs.Json.Int gen;
                        "submitted", Obs.Json.Int sub;
                        "served", Obs.Json.Int srvd;
                        "failed", Obs.Json.Int fld;
                        "shed", Obs.Json.Int shd;
                        "rejected", Obs.Json.Int rej;
                        "breaker", Obs.Json.Str st ])
                  (Serve.tenants srv));
             "rounds", Obs.Json.Int (counter "serve.rounds");
             "admitted", Obs.Json.Int (counter "serve.admitted");
             "probes", Obs.Json.Int (counter "serve.probes") ])
    else
      Printf.printf
        "\nglobal: %d round(s), %d admitted, %d probe(s)\n"
        (counter "serve.rounds") (counter "serve.admitted")
        (counter "serve.probes");
    match trace_out with
    | None -> ()
    | Some path ->
      (* Same self-validation bar as stdout JSON: the capture must
         survive our own parser before it is allowed on disk, so
         [sxq attack --trace] never chokes on what we wrote. *)
      let capture =
        Obs.Json.Obj
          [ "tenants",
            Obs.Json.List
              (List.map
                 (fun id ->
                   Obs.Json.Obj
                     [ "tenant", Obs.Json.Str id;
                       "ledger",
                       Obs.Ledger.to_json
                         (Secure.System.ledger (Serve.system srv id)) ])
                 (Serve.tenants srv)) ]
      in
      let s = Obs.Json.to_string ~indent:true capture in
      (match Obs.Json.of_string s with
       | Ok j when Obs.Json.equal capture j -> ()
       | Ok _ | Error _ ->
         prerr_endline
           "sxq serve: internal error: trace capture failed round-trip \
            validation";
         exit 2);
      let oc = open_out_bin path in
      output_string oc s;
      output_char oc '\n';
      close_out oc;
      if not json then
        Printf.printf "wrote leakage trace for %d tenant(s) to %s\n" tenants
          path
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Multiplex N independent tenant hostings through the serving tier \
             (admission control, per-tenant circuit breakers) and report \
             per-tenant counters; with $(b,--chaos), demonstrate breaker trip \
             and half-open recovery on a faulty tenant while the others keep \
             serving.")
    Term.(const run $ tenants_arg $ queries_arg $ chaos_flag $ trace_out_arg
          $ domains_arg $ json_flag)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)

let lint_cmd =
  let root_arg =
    Arg.(value & opt dir "." & info [ "root" ] ~docv:"DIR"
           ~doc:"Repository root to lint (lib/, bin/ and test/ under it).")
  in
  let baseline_arg =
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Baseline file (default: \\$(docv) is ROOT/lint.baseline).")
  in
  let no_cache_flag =
    Arg.(value & flag & info [ "no-cache" ]
           ~doc:"Disable the per-file result cache under \
                 ROOT/_build/.lintcache.")
  in
  let finding_json (f : Analysis.Finding.t) =
    Obs.Json.Obj
      [ "rule", Obs.Json.Str f.rule;
        "file", Obs.Json.Str f.file;
        "line", Obs.Json.Int f.line;
        "col", Obs.Json.Int f.col;
        "message", Obs.Json.Str f.message;
        "witness", Obs.Json.List (List.map (fun h -> Obs.Json.Str h) f.witness) ]
  in
  let run root baseline no_cache json =
    let cache_dir =
      if no_cache then None
      else Some (Filename.concat root "_build/.lintcache")
    in
    (* The run's own observability goes through the metrics registry
       like everything else; a local registry keeps the gauge out of
       the process-wide one the serving layers share. *)
    let reg = Obs.Metric.create ~enabled:true () in
    let duration = Obs.Metric.gauge reg ~help:"wall-clock lint time" "lint.duration_ms" in
    let started = Unix.gettimeofday () in
    let findings, baselined =
      Analysis.Lint.run ?baseline ?cache_dir ~root ()
    in
    Obs.Metric.set duration ((Unix.gettimeofday () -. started) *. 1000.0);
    let duration_ms = Obs.Metric.gauge_value duration in
    if json then
      print_json_checked
        (Obs.Json.Obj
           [ "findings", Obs.Json.List (List.map finding_json findings);
             "baselined", Obs.Json.Int baselined;
             "duration_ms", Obs.Json.Float duration_ms ])
    else
      List.iter
        (fun (f : Analysis.Finding.t) ->
          print_endline (Analysis.Finding.to_string f);
          List.iter (fun hop -> print_endline ("    " ^ hop)) f.witness)
        findings;
    match findings with
    | [] ->
      Printf.eprintf "sxq lint: clean (%d baselined, %.0f ms)\n" baselined
        duration_ms
    | fs ->
      Printf.eprintf "sxq lint: %d finding(s), %d baselined (%.0f ms)\n"
        (List.length fs) baselined duration_ms;
      exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the trust-boundary, crypto-hygiene and secret-flow static \
             analysis (see docs/STATIC_ANALYSIS.md).")
    Term.(const run $ root_arg $ baseline_arg $ no_cache_flag $ json_flag)

let () =
  (* SXQ_DEBUG=1 turns on debug logging from the secure.* sources. *)
  (match Sys.getenv_opt "SXQ_DEBUG" with
   | Some ("1" | "true") ->
     Logs.set_reporter (Logs_fmt.reporter ());
     Logs.set_level (Some Logs.Debug)
   | Some _ | None -> ());
  let info =
    Cmd.info "sxq" ~version:"1.0.0"
      ~doc:"Secure query evaluation over encrypted XML databases (VLDB 2006 \
            reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; stats_cmd; host_cmd; verify_cmd; query_cmd;
            explain_cmd; trace_cmd; aggregate_cmd; xquery_cmd; attack_cmd;
            serve_cmd; lint_cmd ]))
