(* sxq-lint — trust-boundary and crypto-hygiene static analysis.

   Stdlib-only on purpose: the gate must run anywhere the compiler
   does.  Exit status: 0 clean, 1 findings, 2 usage error.  Findings go
   to stdout (machine-readable, one per line); the summary to stderr. *)

let usage =
  "usage: sxq_lint [--root DIR] [--baseline FILE] [--update-baseline]\n\
   \n\
   Lints lib/, bin/ and test/ under the root (default: the current\n\
   directory) against the policy in lib/analysis/policy.ml.  See\n\
   docs/STATIC_ANALYSIS.md for the rules and how to suppress findings."

let () =
  let root = ref "." in
  let baseline = ref None in
  let update = ref false in
  let rec parse = function
    | [] -> ()
    | "--root" :: dir :: rest ->
      root := dir;
      parse rest
    | "--baseline" :: file :: rest ->
      baseline := Some file;
      parse rest
    | "--update-baseline" :: rest ->
      update := true;
      parse rest
    | ("--help" | "-h") :: _ ->
      print_endline usage;
      exit 0
    | arg :: _ ->
      prerr_endline ("sxq_lint: unknown argument " ^ arg);
      prerr_endline usage;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path =
    match !baseline with
    | Some p -> p
    | None -> Filename.concat !root "lint.baseline"
  in
  if !update then begin
    let findings = Analysis.Lint.check_tree ~root:!root () in
    Analysis.Lint.write_baseline baseline_path findings;
    Printf.eprintf "sxq-lint: wrote %d fingerprint(s) to %s\n"
      (List.length findings) baseline_path;
    exit 0
  end;
  let findings, baselined =
    Analysis.Lint.run ~baseline:baseline_path ~root:!root ()
  in
  List.iter
    (fun f -> print_endline (Analysis.Finding.to_string f))
    findings;
  match findings with
  | [] ->
    Printf.eprintf "sxq-lint: clean (%d baselined)\n" baselined;
    exit 0
  | fs ->
    Printf.eprintf "sxq-lint: %d finding(s), %d baselined\n" (List.length fs)
      baselined;
    exit 1
