(* sxq-lint — trust-boundary, crypto-hygiene and secret-flow static
   analysis.

   Stdlib-only on purpose: the gate must run anywhere the compiler
   does.  Exit status: 0 clean, 1 findings, 2 usage error.  Findings go
   to stdout (machine-readable, one per line, secret-flow witnesses
   indented under them); the summary to stderr. *)

let usage =
  "usage: sxq_lint [--root DIR] [--baseline FILE] [--update-baseline]\n\
  \                [--cache DIR] [--no-cache]\n\
   \n\
   Lints lib/, bin/ and test/ under the root (default: the current\n\
   directory) against the policy in lib/analysis/policy.ml.  Per-file\n\
   token results are cached under ROOT/_build/.lintcache (keyed on\n\
   content digest and policy; --no-cache disables, --cache relocates).\n\
   See docs/STATIC_ANALYSIS.md for the rules and how to suppress\n\
   findings."

let () =
  let root = ref "." in
  let baseline = ref None in
  let update = ref false in
  let cache = ref None in
  let no_cache = ref false in
  let rec parse = function
    | [] -> ()
    | "--root" :: dir :: rest ->
      root := dir;
      parse rest
    | "--baseline" :: file :: rest ->
      baseline := Some file;
      parse rest
    | "--update-baseline" :: rest ->
      update := true;
      parse rest
    | "--cache" :: dir :: rest ->
      cache := Some dir;
      parse rest
    | "--no-cache" :: rest ->
      no_cache := true;
      parse rest
    | ("--help" | "-h") :: _ ->
      print_endline usage;
      exit 0
    | arg :: _ ->
      prerr_endline ("sxq_lint: unknown argument " ^ arg);
      prerr_endline usage;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cache_dir =
    if !no_cache then None
    else
      Some
        (match !cache with
         | Some dir -> dir
         | None -> Filename.concat !root "_build/.lintcache")
  in
  let baseline_path =
    match !baseline with
    | Some p -> p
    | None -> Filename.concat !root "lint.baseline"
  in
  if !update then begin
    let findings = Analysis.Lint.check_tree ?cache_dir ~root:!root () in
    Analysis.Lint.write_baseline baseline_path findings;
    Printf.eprintf "sxq-lint: wrote %d fingerprint(s) to %s\n"
      (List.length findings) baseline_path;
    exit 0
  end;
  let started = Sys.time () in
  let findings, baselined =
    Analysis.Lint.run ~baseline:baseline_path ?cache_dir ~root:!root ()
  in
  let duration_ms = (Sys.time () -. started) *. 1000.0 in
  List.iter
    (fun (f : Analysis.Finding.t) ->
      print_endline (Analysis.Finding.to_string f);
      List.iter (fun hop -> print_endline ("    " ^ hop)) f.witness)
    findings;
  match findings with
  | [] ->
    Printf.eprintf "sxq-lint: clean (%d baselined, %.0f ms cpu)\n" baselined
      duration_ms;
    exit 0
  | fs ->
    Printf.eprintf "sxq-lint: %d finding(s), %d baselined (%.0f ms cpu)\n"
      (List.length fs) baselined duration_ms;
    exit 1
