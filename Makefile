.PHONY: all build test lint check bench bench-smoke trace-smoke attack-gate clean

all: build

build:
	dune build

test:
	dune runtest

# Static analysis gate: layering/trust-boundary, crypto hygiene,
# robustness.  See docs/STATIC_ANALYSIS.md.  Exits non-zero on any
# finding not covered by an inline suppression or lint.baseline.
lint:
	dune build bin/sxq_lint.exe && dune exec bin/sxq_lint.exe -- --root .

# Tier-1 gate: everything compiles, the full suite passes, the tree is
# lint-clean, the cache/observability experiments' assertions hold on a
# tiny dataset, the trace CLI emits parseable JSON, and the leakage
# budget holds against the adversary simulator.
check:
	dune build && dune runtest && $(MAKE) lint && $(MAKE) bench-smoke && $(MAKE) trace-smoke && $(MAKE) attack-gate

bench:
	dune exec bench/main.exe

# Tiny-scale engine-cache, pool-scaling and observability-overhead
# experiments with machine-readable output exercised end to end; their
# equality/invalidation/overhead checks abort the run on any mismatch.
# --compare replays the checked-in BENCH_1.json snapshot against this
# run: configuration axes and deterministic counters must match
# exactly, timings may drift but not blow up (see bench/main.ml).
# The second invocation gates the incremental-update churn experiment
# (answers identical to a per-edit re-host, delta cost proportional to
# the touched blocks) against the BENCH_2.json snapshot.
bench-smoke:
	dune build bench/main.exe && dune exec bench/main.exe -- e10 e11 e12 e13 e14 --scale tiny --json /dev/null --compare BENCH_1.json
	dune exec bench/main.exe -- e15 --scale tiny --json /dev/null --compare BENCH_2.json

# The observability CLI end to end: generate a document, trace a query
# (engine path, two rounds, so the ledger shows a cache hit), and emit
# JSON.  sxq validates every JSON sink by parsing its own output and
# re-comparing structurally before printing — exit code 2 means the
# round-trip failed, so this target *is* the consumer test.
trace-smoke:
	dune build bin/sxq.exe
	dune exec bin/sxq.exe -- generate health -n 20 -o /tmp/trace-smoke.xml > /dev/null
	dune exec bin/sxq.exe -- trace /tmp/trace-smoke.xml "//patient[age>=60]/pname" -c "//patient:(/pname,/SSN)" --engine --rounds 2 --json > /dev/null
	dune exec bin/sxq.exe -- stats -q "//patient//pname" -c "//patient:(/pname,/SSN)" /tmp/trace-smoke.xml --json > /dev/null
	rm -f /tmp/trace-smoke.xml

# The leakage-budget gate: run the adversary simulator over the default
# gate workload with the mitigations attack.budget buys, and fail if
# any inference pass achieves a candidate set below the declared
# minimums (exit 1) or the trace machinery miscarries (exit 2).
attack-gate:
	dune build bin/sxq.exe && dune exec bin/sxq.exe -- attack --budget attack.budget

clean:
	dune clean
