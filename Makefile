.PHONY: all build test lint check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Static analysis gate: layering/trust-boundary, crypto hygiene,
# robustness.  See docs/STATIC_ANALYSIS.md.  Exits non-zero on any
# finding not covered by an inline suppression or lint.baseline.
lint:
	dune build bin/sxq_lint.exe && dune exec bin/sxq_lint.exe -- --root .

# Tier-1 gate: everything compiles, the full suite passes, and the
# tree is lint-clean.
check:
	dune build && dune runtest && $(MAKE) lint

bench:
	dune exec bench/main.exe

clean:
	dune clean
