.PHONY: all build test lint check bench bench-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Static analysis gate: layering/trust-boundary, crypto hygiene,
# robustness.  See docs/STATIC_ANALYSIS.md.  Exits non-zero on any
# finding not covered by an inline suppression or lint.baseline.
lint:
	dune build bin/sxq_lint.exe && dune exec bin/sxq_lint.exe -- --root .

# Tier-1 gate: everything compiles, the full suite passes, the tree is
# lint-clean, and the cache experiment's equality assertions hold on a
# tiny dataset.
check:
	dune build && dune runtest && $(MAKE) lint && $(MAKE) bench-smoke

bench:
	dune exec bench/main.exe

# Tiny-scale engine-cache experiment with machine-readable output
# exercised end to end; its answer-equality and invalidation checks
# abort the run on any mismatch.
bench-smoke:
	dune build bench/main.exe && dune exec bench/main.exe -- e10 e11 --scale tiny --json /dev/null

clean:
	dune clean
