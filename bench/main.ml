(* Benchmark harness: regenerates every experimental artifact of the
   paper's Section 7 (see DESIGN.md's per-experiment index).

     dune exec bench/main.exe                    # all experiments, small scale
     dune exec bench/main.exe -- e2 e3           # selected experiments
     dune exec bench/main.exe -- all --scale medium
     dune exec bench/main.exe -- e10 --scale tiny --json results.json

   Experiments:
     e1  Figure 6    — OPESS distribution flattening
     e2  Figure 9    — query performance per scheme per query family
     e3  Figure 10   — saving ratios of app/opt over top/sub
     e4  Section 7.2 — division of work between client and server
     e5  Section 7.3 — secure protocol vs naive ship-everything
     e6  Section 7.4 — encryption time and encrypted document size
     e7  Theorems 4.1/5.1/5.2/6.1 — candidate counts and attacker belief
     e9              — session-layer overhead under transport faults
     e10             — engine caches: repeated workload, cold vs warm vs off
     e11             — domain-pool scaling of hosting and batched queries
     e12             — disabled-observability overhead bound
     e13             — multi-tenant admission control under offered load
     e14             — leakage mitigations: candidate-set growth vs. price
     e15             — incremental updates: delta cost vs full re-host
     micro           — Bechamel micro-benchmarks of the core primitives

   --json <path> additionally writes every measured row (scheme x
   dataset x family x phase-ms x bytes, plus e10 hit rates and
   speedups) as a flat JSON array for downstream tooling. *)

module System = Secure.System
module Scheme = Secure.Scheme
module Qg = Workload.Querygen

let line = String.make 78 '-'

let header title = Printf.printf "\n%s\n%s\n%s\n%!" line title line

(* ------------------------------------------------------------------ *)
(* Scale                                                               *)

type scale = { label : string; xmark_persons : int; nasa_datasets : int }

(* [tiny] exists for `make bench-smoke`: just enough data for the cache
   experiment's equality assertions to be meaningful while keeping the
   tier-1 gate fast.  Its speedup assertion is skipped (timings at this
   size are noise-dominated). *)
let tiny = { label = "tiny"; xmark_persons = 200; nasa_datasets = 80 }
let small = { label = "small"; xmark_persons = 1500; nasa_datasets = 500 }
let medium = { label = "medium"; xmark_persons = 6000; nasa_datasets = 2000 }
let large = { label = "large"; xmark_persons = 25_000; nasa_datasets = 8_000 }

let queries_per_family = 10

(* The paper's measurement protocol: the average of 5 trials after
   dropping the maximum and the minimum. *)
let trials = 5

(* ------------------------------------------------------------------ *)
(* Machine-readable output (--json <path>)                             *)

type jv =
  | S of string
  | F of float
  | I of int
  | B of bool

let json_rows : (string * jv) list list ref = ref []

(* Every experiment that measures something appends flat rows here; the
   driver serializes them when --json was given (collection is cheap
   enough to do unconditionally). *)
let json_row fields = json_rows := fields :: !json_rows

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_write path =
  let oc = open_out path in
  let field (k, v) =
    Printf.sprintf "\"%s\": %s" (json_escape k)
      (match v with
       | S s -> "\"" ^ json_escape s ^ "\""
       | F f -> if Float.is_finite f then Printf.sprintf "%.6g" f else "null"
       | I i -> string_of_int i
       | B b -> if b then "true" else "false")
  in
  output_string oc "[\n";
  List.iteri
    (fun i row ->
      if i > 0 then output_string oc ",\n";
      output_string oc ("  {" ^ String.concat ", " (List.map field row) ^ "}"))
    (List.rev !json_rows);
  output_string oc "\n]\n";
  close_out oc

(* --- Regression gate ---------------------------------------------- *)

(* [--compare BASELINE.json] re-checks a previous [--json] snapshot
   against this run.  A baseline row participates only when its
   "experiment" value was produced this run, so a full baseline can
   gate a partial invocation.  Rows pair up on their non-float fields
   (ints, strings, bools — the configuration axes and the counters,
   which are deterministic under the fixed seeds); a baseline row with
   no partner means the shape of the output changed or a counter
   drifted, and fails the gate.  Floats are checked per field: [_ms]
   timings may move two orders of magnitude either way (machines and
   load differ; the gate is for blow-ups and shape changes, not
   jitter), every other float must agree to the %.6g precision the
   snapshot was written with. *)

let jv_of_json = function
  | Obs.Json.Int i -> Some (I i)
  | Obs.Json.Float f -> Some (F f)
  | Obs.Json.Str s -> Some (S s)
  | Obs.Json.Bool b -> Some (B b)
  | Obs.Json.Null | Obs.Json.List _ | Obs.Json.Obj _ -> None

let jv_print = function
  | S s -> "\"" ^ json_escape s ^ "\""
  | F f -> Printf.sprintf "%.6g" f
  | I i -> string_of_int i
  | B b -> string_of_bool b

let row_key row =
  List.filter (fun (_, v) -> match v with F _ -> false | _ -> true) row

let key_print key =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ jv_print v) key)

let floats_agree field prev cur =
  match Float.is_finite prev, Float.is_finite cur with
  | false, false -> true
  | false, true | true, false -> false
  | true, true ->
    let suffix = "_ms" in
    let n = String.length suffix and m = String.length field in
    if m >= n && String.sub field (m - n) n = suffix then
      prev = 0.0 || cur = 0.0
      || (let r = cur /. prev in r <= 100.0 && r >= 0.01)
    else Float.abs (cur -. prev) <= 1e-5 *. Float.max 1.0 (Float.abs prev)

let json_compare path =
  let baseline =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Obs.Json.of_string s with
    | Ok (Obs.Json.List rows) ->
      List.filter_map
        (function
          | Obs.Json.Obj fields ->
            Some
              (List.filter_map
                 (fun (k, v) ->
                   match jv_of_json v with
                   | Some jv -> Some (k, jv)
                   | None -> None)
                 fields)
          | _ -> None)
        rows
    | Ok _ ->
      Printf.eprintf "compare: %s is not a JSON array of rows\n" path;
      exit 2
    | Error msg ->
      Printf.eprintf "compare: cannot parse %s: %s\n" path msg;
      exit 2
  in
  let current = List.rev !json_rows in
  (* %.6g prints integral floats without a decimal point, and the
     parser reads those back as ints — so decide float-ness per field
     name from this run's rows and coerce the baseline to match,
     otherwise a row with e.g. a 0.0 rate never finds its partner. *)
  let float_fields =
    List.concat_map
      (fun row ->
        List.filter_map
          (fun (k, v) -> match v with F _ -> Some k | _ -> None)
          row)
      current
  in
  let normalize row =
    List.map
      (fun (k, v) ->
        match v with
        | I i when List.mem k float_fields -> (k, F (float_of_int i))
        | v -> (k, v))
      row
  in
  let baseline = List.map normalize baseline in
  let ran_experiments =
    List.filter_map (fun row -> List.assoc_opt "experiment" row) current
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let checked = ref 0 in
  List.iter
    (fun brow ->
      let relevant =
        match List.assoc_opt "experiment" brow with
        | Some e -> List.mem e ran_experiments
        | None -> true
      in
      if relevant then begin
        incr checked;
        let key = row_key brow in
        match
          List.find_opt (fun crow -> row_key crow = key) current
        with
        | None -> fail "no current row matches baseline row {%s}" (key_print key)
        | Some crow ->
          List.iter
            (fun (field, bv) ->
              match bv, List.assoc_opt field crow with
              | F prev, Some (F cur) ->
                if not (floats_agree field prev cur) then
                  fail "{%s} %s: baseline %.6g, current %.6g" (key_print key)
                    field prev cur
              | F prev, (Some _ | None) ->
                fail "{%s} %s: baseline %.6g, current row lacks the float"
                  (key_print key) field prev
              | (S _ | I _ | B _), _ -> ())
            brow
      end)
    baseline;
  match !failures with
  | [] ->
    Printf.printf "\ncompare: %d baseline row(s) matched against %s\n" !checked
      path;
    if !checked = 0 then
      Printf.printf
        "compare: (no baseline row shares an experiment with this run)\n"
  | fs ->
    List.iter (fun m -> Printf.printf "compare: FAIL %s\n" m) (List.rev fs);
    Printf.printf "compare: %d mismatch(es) against %s\n" (List.length fs) path;
    exit 1

(* ------------------------------------------------------------------ *)
(* Dataset / system cache                                              *)

type dataset = {
  name : string;
  doc : Xmlcore.Doc.t;
  scs : Secure.Sc.t list;
}

let dataset_cache : (string, dataset list) Hashtbl.t = Hashtbl.create 4

let datasets scale =
  match Hashtbl.find_opt dataset_cache scale.label with
  | Some ds -> ds
  | None ->
    let xmark = Workload.Xmark.generate ~persons:scale.xmark_persons () in
    let nasa = Workload.Nasa.generate ~datasets:scale.nasa_datasets () in
    let ds =
      [ { name = "XMark"; doc = xmark; scs = Workload.Xmark.constraints () };
        { name = "NASA"; doc = nasa; scs = Workload.Nasa.constraints () } ]
    in
    Hashtbl.replace dataset_cache scale.label ds;
    ds

let systems = Hashtbl.create 8

let system_of ds kind =
  let key = ds.name, kind in
  match Hashtbl.find_opt systems key with
  | Some entry -> entry
  | None ->
    let sys, cost = System.setup ds.doc ds.scs kind in
    Hashtbl.replace systems key (sys, cost);
    sys, cost

(* Per-phase averages of a query's cost; [p_bytes] is the mean number
   of bytes actually transmitted, for the machine-readable output. *)
type phases = {
  p_server : float;
  p_transmit : float;
  p_decrypt : float;
  p_post : float;
  p_total : float;
  p_bytes : float;
}

let phases_zero =
  { p_server = 0.0;
    p_transmit = 0.0;
    p_decrypt = 0.0;
    p_post = 0.0;
    p_total = 0.0;
    p_bytes = 0.0 }

let phases_add a b =
  { p_server = a.p_server +. b.p_server;
    p_transmit = a.p_transmit +. b.p_transmit;
    p_decrypt = a.p_decrypt +. b.p_decrypt;
    p_post = a.p_post +. b.p_post;
    p_total = a.p_total +. b.p_total;
    p_bytes = a.p_bytes +. b.p_bytes }

let phases_scale p k =
  { p_server = p.p_server /. k;
    p_transmit = p.p_transmit /. k;
    p_decrypt = p.p_decrypt /. k;
    p_post = p.p_post /. k;
    p_total = p.p_total /. k;
    p_bytes = p.p_bytes /. k }

(* Average cost of a query over [trials] runs, dropping the fastest and
   slowest trial (ranked by total time), as in Section 7.1. *)
let avg_cost sys q =
  let runs = List.init trials (fun _ -> snd (System.evaluate sys q)) in
  let runs =
    match
      List.sort (fun a b -> Float.compare (System.total_ms a) (System.total_ms b)) runs
    with
    | _fastest :: (_ :: _ :: _ as middle) ->
      (match List.rev middle with
       | _slowest :: kept -> kept
       | [] -> middle)
    | short -> short
  in
  let n = float_of_int (List.length runs) in
  let avg f = List.fold_left (fun acc c -> acc +. f c) 0.0 runs /. n in
  { p_server = avg (fun c -> c.System.server_ms);
    p_transmit = avg (fun c -> c.System.transmit_ms);
    p_decrypt = avg (fun c -> c.System.decrypt_ms);
    p_post = avg (fun c -> c.System.postprocess_ms);
    p_total = avg System.total_ms;
    p_bytes = avg (fun c -> float_of_int c.System.transmit_bytes) }

(* Per (scheme, family): averages over the query set.  Memoised — E3
   reuses E2's measurements. *)
let family_costs = Hashtbl.create 32

let family_cost name sys doc fam =
  let key = name, fam in
  match Hashtbl.find_opt family_costs key with
  | Some cached -> cached
  | None ->
    let queries = Qg.generate doc fam ~count:queries_per_family in
    let total =
      List.fold_left
        (fun acc q -> phases_add acc (avg_cost sys q))
        phases_zero queries
    in
    let n = float_of_int (max 1 (List.length queries)) in
    let result = List.length queries, phases_scale total n in
    Hashtbl.replace family_costs key result;
    result

(* ------------------------------------------------------------------ *)
(* E1 — Figure 6: OPESS distribution flattening                        *)

let e1 () =
  header "E1 (Figure 6): value distribution before and after OPESS";
  (* The figure's input: six values with skewed occurrence counts (the
     text spells out 34 = 1*6 + 4*7 for value 90). *)
  let input = [ "1001", 21; "932", 8; "23", 26; "77", 7; "90", 34; "12", 14 ] in
  let cat = Secure.Opess.build ~key:"figure6" ~attr_id:0 ~tag:"value" input in
  Printf.printf "chosen m = %d, K = %d split keys\n\n"
    (Secure.Opess.chunk_parameter cat) (Secure.Opess.key_count cat);
  Printf.printf "%-10s %-6s    %s\n" "value" "count" "ciphertext chunk counts";
  List.iter
    (fun entry ->
      Printf.printf "%-10s %-6d -> %d values: [%s]  (index scale x%d)\n"
        entry.Secure.Opess.value entry.Secure.Opess.count
        (List.length entry.Secure.Opess.chunks)
        (String.concat ","
           (List.map
              (fun c -> string_of_int c.Secure.Opess.occurrences)
              entry.Secure.Opess.chunks))
        entry.Secure.Opess.scale)
    (Secure.Opess.entries cat);
  let flatness hist =
    let counts = List.map snd hist in
    let mn = List.fold_left min max_int counts
    and mx = List.fold_left max 0 counts in
    float_of_int mn /. float_of_int mx
  in
  Printf.printf
    "\nflatness (min/max count): plaintext %.3f -> split %.3f -> split+scaled %.3f\n"
    (flatness input)
    (flatness (Secure.Opess.ciphertext_histogram cat))
    (flatness (Secure.Opess.scaled_histogram cat));
  Printf.printf
    "expected shape: split is near-flat (all counts in {m-1,m,m+1}); scaling \
     re-skews\nit without correspondence to the plaintext frequencies.\n";
  (* A larger Zipf domain, as a robustness check. *)
  let rng = Crypto.Prng.create 31L in
  let dist =
    Workload.Distribution.zipf (Array.init 200 (fun i -> Printf.sprintf "%04d" i))
  in
  let counts = Hashtbl.create 256 in
  for _ = 1 to 20_000 do
    let v = Workload.Distribution.sample dist rng in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let hist =
    Hashtbl.fold (fun v c acc -> (v, c) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let cat2 = Secure.Opess.build ~key:"zipf" ~attr_id:1 ~tag:"zipf" hist in
  Printf.printf
    "\nZipf(1.0) domain, %d distinct / %d total values: m=%d; flatness %.4f -> \
     %.3f after split\n"
    (List.length hist)
    (List.fold_left (fun a (_, c) -> a + c) 0 hist)
    (Secure.Opess.chunk_parameter cat2) (flatness hist)
    (flatness (Secure.Opess.ciphertext_histogram cat2))

(* ------------------------------------------------------------------ *)
(* E2 — Figure 9: query performance per scheme per family              *)

let e2 scale =
  header
    (Printf.sprintf
       "E2 (Figure 9): query performance per encryption scheme (%s scale)"
       scale.label);
  List.iter
    (fun ds ->
      Printf.printf "\n[%s] %d nodes, %d bytes serialized\n" ds.name
        (Xmlcore.Doc.node_count ds.doc)
        (String.length (Xmlcore.Printer.doc_to_string ds.doc));
      (* Figure 9 plots three bars per scheme: server query processing,
         client decryption, client post-processing.  compute-ms is
         their sum; transmit is shown for completeness but is not part
         of the paper's figure (their transmission was negligible). *)
      Printf.printf "%-4s %-4s %2s %10s %10s %10s %10s %10s\n" "qry" "schm" "#q"
        "server-ms" "decrypt" "postproc" "compute-ms" "transmit";
      List.iter
        (fun fam ->
          List.iter
            (fun kind ->
              let sys, _ = system_of ds kind in
              let n, p =
                family_cost (ds.name ^ Scheme.kind_to_string kind) sys ds.doc fam
              in
              Printf.printf "%-4s %-4s %2d %10.2f %10.2f %10.2f %10.2f %10.2f\n"
                (Qg.family_to_string fam) (Scheme.kind_to_string kind) n
                p.p_server p.p_decrypt p.p_post
                (p.p_server +. p.p_decrypt +. p.p_post)
                p.p_transmit;
              json_row
                [ "experiment", S "e2";
                  "dataset", S ds.name;
                  "scheme", S (Scheme.kind_to_string kind);
                  "family", S (Qg.family_to_string fam);
                  "queries", I n;
                  "server_ms", F p.p_server;
                  "transmit_ms", F p.p_transmit;
                  "decrypt_ms", F p.p_decrypt;
                  "postprocess_ms", F p.p_post;
                  "total_ms", F p.p_total;
                  "transmit_bytes", F p.p_bytes ])
            Scheme.all_kinds;
          print_newline ())
        [ Qg.Qs; Qg.Qm; Qg.Ql ])
    (datasets scale);
  Printf.printf
    "expected shape: compute-ms decreases top > sub > app >= opt; decryption \
     dominates\nfor coarse schemes; the opt/top gap widens from Qs to Ql.\n"

(* ------------------------------------------------------------------ *)
(* E3 — Figure 10: saving ratios                                       *)

let e3 scale =
  header (Printf.sprintf "E3 (Figure 10): saving ratios (%s scale)" scale.label);
  List.iter
    (fun ds ->
      Printf.printf "\n[%s]\n%-4s %8s %8s %8s %8s\n" ds.name "qry" "Sa/t" "Sa/s"
        "So/t" "So/s";
      List.iter
        (fun fam ->
          (* Ratios over the Figure 9 quantity: server + decrypt +
             post-process (transmission excluded, as in the paper). *)
          let total kind =
            let sys, _ = system_of ds kind in
            let _, p =
              family_cost (ds.name ^ Scheme.kind_to_string kind) sys ds.doc fam
            in
            p.p_server +. p.p_decrypt +. p.p_post
          in
          let tt = total Scheme.Top and ts = total Scheme.Sub in
          let ta = total Scheme.App and topt = total Scheme.Opt in
          let ratio base t = (base -. t) /. base in
          Printf.printf "%-4s %8.2f %8.2f %8.2f %8.2f\n" (Qg.family_to_string fam)
            (ratio tt ta) (ratio ts ta) (ratio tt topt) (ratio ts topt);
          json_row
            [ "experiment", S "e3";
              "dataset", S ds.name;
              "family", S (Qg.family_to_string fam);
              "saving_app_over_top", F (ratio tt ta);
              "saving_app_over_sub", F (ratio ts ta);
              "saving_opt_over_top", F (ratio tt topt);
              "saving_opt_over_sub", F (ratio ts topt) ])
        [ Qg.Qs; Qg.Qm; Qg.Ql ])
    (datasets scale);
  Printf.printf
    "\nexpected shape: ratios grow as the output node nears the leaves (paper: \
     up to\n~0.64 over top, ~0.53 over sub at Ql); app stays within 1.1-1.3x \
     of opt, keeping\nSa close to So.\n"

(* ------------------------------------------------------------------ *)
(* E4 — Section 7.2: division of work                                  *)

let e4 scale =
  header
    (Printf.sprintf "E4 (Section 7.2): division of work, NASA, opt scheme (%s)"
       scale.label);
  let ds = List.nth (datasets scale) 1 in
  let sys, _ = system_of ds Scheme.Opt in
  Printf.printf "%-4s %12s %12s %12s %12s %12s\n" "qry" "translate" "server-ms"
    "transmit" "decrypt" "postprocess";
  List.iter
    (fun fam ->
      let queries = Qg.generate ds.doc fam ~count:queries_per_family in
      let acc = Array.make 5 0.0 in
      List.iter
        (fun q ->
          let _, c = System.evaluate sys q in
          acc.(0) <- acc.(0) +. c.System.translate_ms;
          acc.(1) <- acc.(1) +. c.System.server_ms;
          acc.(2) <- acc.(2) +. c.System.transmit_ms;
          acc.(3) <- acc.(3) +. c.System.decrypt_ms;
          acc.(4) <- acc.(4) +. c.System.postprocess_ms)
        queries;
      let n = float_of_int (max 1 (List.length queries)) in
      Printf.printf "%-4s %12.3f %12.3f %12.3f %12.3f %12.3f\n"
        (Qg.family_to_string fam) (acc.(0) /. n) (acc.(1) /. n) (acc.(2) /. n)
        (acc.(3) /. n) (acc.(4) /. n))
    [ Qg.Qs; Qg.Qm; Qg.Ql; Qg.Qv ];
  Printf.printf
    "\nexpected shape: translation negligible on both sides (paper: <5 ms \
     client,\n~13 ms server at 50 MB); transmission negligible on a fast link.\n"

(* ------------------------------------------------------------------ *)
(* E5 — Section 7.3: secure protocol vs naive method                   *)

let e5 scale =
  header (Printf.sprintf "E5 (Section 7.3): our approach vs naive (%s)" scale.label);
  List.iter
    (fun ds ->
      Printf.printf "\n[%s] ratio = secure total / naive total (lower is better)\n"
        ds.name;
      Printf.printf "%-4s %12s %12s %10s\n" "schm" "secure-ms" "naive-ms" "ratio";
      List.iter
        (fun kind ->
          let sys, _ = system_of ds kind in
          (* Mixed workload across the three paper families. *)
          let queries =
            List.concat_map
              (fun fam -> Qg.generate ds.doc fam ~count:4)
              [ Qg.Qs; Qg.Qm; Qg.Ql ]
          in
          let secure, naive =
            List.fold_left
              (fun (s, nv) q ->
                let _, cs = System.evaluate sys q in
                let _, cn = System.naive_evaluate sys q in
                s +. System.total_ms cs, nv +. System.total_ms cn)
              (0.0, 0.0) queries
          in
          Printf.printf "%-4s %12.1f %12.1f %10.2f\n" (Scheme.kind_to_string kind)
            secure naive (secure /. naive))
        Scheme.all_kinds)
    (datasets scale);
  Printf.printf
    "\nexpected shape: opt/app/sub evaluate in a fraction of naive time \
     (paper: 11%%-28%%);\ntop equals naive (everything ships regardless).\n"

(* ------------------------------------------------------------------ *)
(* E6 — Section 7.4: encryption time and size                          *)

let e6 scale =
  header
    (Printf.sprintf "E6 (Section 7.4): encryption time and encrypted size (%s)"
       scale.label);
  List.iter
    (fun ds ->
      let plain_bytes = String.length (Xmlcore.Printer.doc_to_string ds.doc) in
      Printf.printf "\n[%s] plaintext %d bytes\n" ds.name plain_bytes;
      Printf.printf "%-4s %8s %12s %12s %12s %12s\n" "schm" "blocks" "enc-ms"
        "cipher-B" "server-B" "metadata-B";
      List.iter
        (fun kind ->
          let sys, cost = system_of ds kind in
          Printf.printf "%-4s %8d %12.1f %12d %12d %12d\n"
            (Scheme.kind_to_string kind) cost.System.block_count
            cost.System.encrypt_ms
            (Secure.Encrypt.encrypted_bytes (System.db sys))
            cost.System.server_data_bytes cost.System.metadata_bytes)
        Scheme.all_kinds)
    (datasets scale);
  Printf.printf
    "\nexpected shape: app encrypts the most elements when its cover is \
     larger; sub\nproduces the largest ciphertext (per-block headers on big \
     blocks); opt is best\non both axes; top has one big block.\n"

(* ------------------------------------------------------------------ *)
(* E7 — theorem validation                                             *)

let e7 () =
  header "E7: candidate counts and attacker belief (Theorems 4.1/5.1/5.2/6.1)";
  let doc = Workload.Health.generate ~patients:300 () in
  Printf.printf "300-patient hospital database\n\n";
  Printf.printf "Theorem 4.1 — per-attribute candidate databases (multinomial):\n";
  List.iter
    (fun (tag, hist) ->
      let ks = List.map snd hist in
      let log10 = Secure.Counting.log_multinomial ks /. log 10.0 in
      Printf.printf "  %-12s k=%-3d total=%-5d candidates ~ 10^%.0f\n" tag
        (List.length ks)
        (List.fold_left ( + ) 0 ks)
        log10)
    (Xmlcore.Stats.all_histograms doc);
  Printf.printf "\nTheorem 5.2 — value-index candidate mappings C(n-1, k-1):\n";
  List.iter
    (fun (tag, hist) ->
      let cat = Secure.Opess.build ~key:"e7" ~attr_id:0 ~tag hist in
      let k = List.length hist in
      let n = List.length (Secure.Opess.ciphertext_histogram cat) in
      Printf.printf "  %-12s k=%-3d n=%-4d candidates ~ 10^%.1f\n" tag k n
        (Secure.Counting.log_compositions_count ~n ~k /. log 10.0))
    (Xmlcore.Stats.all_histograms doc);
  (* Theorem 5.1: structural candidates from block grouping under the
     coarse sub scheme (whole patient records encrypted). *)
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Scheme.Sub in
  let db = System.db sys in
  let log10_structural =
    List.fold_left
      (fun acc b ->
        let root = b.Secure.Encrypt.root in
        let leaves =
          List.filter
            (fun n -> Xmlcore.Doc.is_leaf doc n)
            (Xmlcore.Doc.descendant_or_self doc root)
        in
        let n = List.length leaves in
        (* Grouping makes k < n intervals visible for the block. *)
        let k = max 1 (n - 2) in
        if n >= 2 then
          acc +. (Secure.Counting.log_compositions_count ~n ~k /. log 10.0)
        else acc)
      0.0 db.Secure.Encrypt.blocks
  in
  Printf.printf
    "\nTheorem 5.1 — structural candidates over %d sub-scheme blocks: ~10^%.0f\n"
    (List.length db.Secure.Encrypt.blocks)
    log10_structural;
  (* Constructive check on the paper's running example: enumerate the
     actual candidate databases and compare what the attacker sees. *)
  let hdoc = Workload.Health.doc () in
  let report =
    Secure.Candidates.indistinguishability_report ~master:"e7"
      ~constraints:(Workload.Health.constraints ()) ~kind:Scheme.Opt
      ~tag:"disease" ~limit:12 hdoc
  in
  Printf.printf
    "\nDefinition 3.1/3.3, constructively (Figure 2 database, disease \
     attribute):\n\
    \  %d candidate databases enumerated; schema-conformant: %b;\n\
    \  equal encrypted sizes: %b; equal index histograms: %b;\n\
    \  candidates containing every protected association: %d (must be 1)\n"
    report.Secure.Candidates.candidates report.Secure.Candidates.all_conform
    report.Secure.Candidates.equal_sizes
    report.Secure.Candidates.equal_index_histograms
    report.Secure.Candidates.satisfying_original;
  Printf.printf "\nTheorem 6.1 — attacker belief per association after q queries:\n";
  let hist = Xmlcore.Stats.value_histogram doc ~tag:"disease" in
  let cat = Secure.Opess.build ~key:"e7b" ~attr_id:0 ~tag:"disease" hist in
  let k = List.length hist in
  let n = List.length (Secure.Opess.ciphertext_histogram cat) in
  Printf.printf "  disease: k=%d n=%d: %s\n" k n
    (String.concat " -> "
       (List.map (Printf.sprintf "%.2e")
          (Secure.Attack.belief_sequence ~k ~n ~queries:4)));
  Printf.printf "\nFrequency attack crack rates (Section 4.1's motivation):\n";
  List.iter
    (fun tag ->
      let known = Xmlcore.Stats.value_histogram doc ~tag in
      if known <> [] then begin
        let broken =
          Secure.Attack.frequency_attack ~known
            ~observed:(Secure.Attack.deterministic_leaf_histogram known)
        in
        let cat = Secure.Opess.build ~key:"e7c" ~attr_id:0 ~tag known in
        let secured =
          Secure.Attack.frequency_attack ~known
            ~observed:(Secure.Opess.scaled_histogram cat)
        in
        Printf.printf "  %-12s naive %3.0f%%  opess %3.0f%%\n" tag
          (100.0 *. broken.Secure.Attack.crack_rate)
          (100.0 *. secured.Secure.Attack.crack_rate)
      end)
    [ "disease"; "doctor"; "pname"; "@coverage"; "age" ];
  Printf.printf
    "\nexpected shape: candidate counts exponentially large; belief never \
     increases;\nnaive crack rates high, OPESS crack rates ~0.\n"

(* ------------------------------------------------------------------ *)
(* E8 — ablations of the design choices DESIGN.md calls out            *)

let e8 () =
  header "E8 (ablations): what each mechanism buys";
  (* (a) Scaling: the re-aggregation (coalescing) attack against
     split-only vs split+scaled index distributions. *)
  Printf.printf "(a) scaling vs the coalescing attack\n";
  Printf.printf "%-22s %14s %14s\n" "attribute" "split-only" "split+scale";
  let doc = Workload.Health.generate ~patients:300 () in
  List.iter
    (fun tag ->
      let hist = Xmlcore.Stats.value_histogram doc ~tag in
      if hist <> [] then begin
        let cat = Secure.Opess.build ~key:"e8" ~attr_id:0 ~tag hist in
        (* known frequencies in the index's (numeric) order *)
        let known_ordered =
          List.map
            (fun e -> e.Secure.Opess.value, e.Secure.Opess.count)
            (Secure.Opess.entries cat)
        in
        let describe observed =
          let r = Secure.Attack.coalescing_attack ~known:known_ordered ~observed in
          if r.Secure.Attack.unique then "CRACKED"
          else Printf.sprintf "%d partitions" r.Secure.Attack.valid_partitions
        in
        Printf.printf "%-22s %14s %14s\n" tag
          (describe (Secure.Opess.ciphertext_histogram cat))
          (describe (Secure.Opess.scaled_histogram cat))
      end)
    [ "disease"; "doctor"; "@coverage"; "age" ];
  (* (b) Decoys: byte overhead they add to the encrypted database. *)
  Printf.printf "\n(b) decoy overhead (opt scheme, healthcare doc)\n";
  let scs = Workload.Health.constraints () in
  let keys = Crypto.Keys.create ~master:"e8" () in
  let scheme = Scheme.build doc scs Scheme.Opt in
  let db = Secure.Encrypt.encrypt ~keys doc scheme in
  let decoy_blocks =
    List.length (List.filter (fun b -> b.Secure.Encrypt.has_decoy) db.Secure.Encrypt.blocks)
  in
  Printf.printf
    "  %d of %d blocks carry decoys; ciphertext total %d bytes (~%d decoy bytes)\n"
    decoy_blocks
    (List.length db.Secure.Encrypt.blocks)
    (Secure.Encrypt.encrypted_bytes db)
    (decoy_blocks * 16);
  (* (c) DSI grouping: index-size effect.  Grouping collapses runs of
     adjacent same-tag siblings inside one block, so it only bites for
     coarse schemes (opt's single-leaf blocks have nothing to group). *)
  Printf.printf "\n(c) DSI grouping (table intervals; %d nodes in the document)\n"
    (Xmlcore.Doc.node_count doc);
  List.iter
    (fun kind ->
      let scheme = Scheme.build doc scs kind in
      let db = Secure.Encrypt.encrypt ~keys doc scheme in
      let meta = Secure.Metadata.build ~keys db in
      Printf.printf "  %-4s %6d intervals\n" (Scheme.kind_to_string kind)
        (Secure.Metadata.table_entry_count meta))
    Scheme.all_kinds;
  (* (d) B-tree min_degree sweep. *)
  Printf.printf "\n(d) B-tree min_degree sweep (100k inserts + 1k range scans)\n";
  Printf.printf "  %6s %10s %8s %12s %12s\n" "t" "height" "nodes" "build-ms" "scan-ms";
  List.iter
    (fun degree ->
      let tree = Btree.create ~min_degree:degree () in
      let rng = Crypto.Prng.create 5L in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to 100_000 do
        Btree.insert tree (Int64.of_int (Crypto.Prng.int rng 1_000_000)) 0
      done;
      let t1 = Unix.gettimeofday () in
      for i = 1 to 1_000 do
        ignore (Btree.range tree ~lo:(Int64.of_int (i * 500)) ~hi:(Int64.of_int ((i * 500) + 2_000)))
      done;
      let t2 = Unix.gettimeofday () in
      Printf.printf "  %6d %10d %8d %12.1f %12.1f\n" degree (Btree.height tree)
        (Btree.node_count tree)
        ((t1 -. t0) *. 1000.0)
        ((t2 -. t1) *. 1000.0))
    [ 2; 4; 8; 16; 32; 64 ];
  (* (e) Per-block header size: where sub overtakes top in stored bytes. *)
  Printf.printf "\n(e) per-block header overhead (XMark, stored ciphertext bytes)\n";
  let xdoc = Workload.Xmark.generate ~persons:800 () in
  let xscs = Workload.Xmark.constraints () in
  let payload_bytes kind =
    let scheme = Scheme.build xdoc xscs kind in
    let db = Secure.Encrypt.encrypt ~keys xdoc scheme in
    let raw =
      List.fold_left
        (fun acc b -> acc + String.length b.Secure.Encrypt.ciphertext)
        0 db.Secure.Encrypt.blocks
    in
    raw, List.length db.Secure.Encrypt.blocks
  in
  let raw_opt, n_opt = payload_bytes Scheme.Opt in
  let raw_sub, n_sub = payload_bytes Scheme.Sub in
  let raw_top, n_top = payload_bytes Scheme.Top in
  Printf.printf "  %8s %6s %6s %6s\n" "header-B" "opt" "sub" "top";
  List.iter
    (fun h ->
      Printf.printf "  %8d %6d %6d %6d\n" h
        ((raw_opt + (n_opt * h)) / 1024)
        ((raw_sub + (n_sub * h)) / 1024)
        ((raw_top + (n_top * h)) / 1024))
    [ 0; 30; 60; 120; 240; 480 ];
  Printf.printf
    "  (KiB; opt's many tiny blocks pay the header, sub's big blocks carry \
     duplicate\n   subtree bytes, top pays neither — the paper's size ordering \
     emerges from the\n   header term)\n";
  (* (f) DSI vs the continuous interval baseline (Section 5.1.1): does
     grouping leak? *)
  Printf.printf "\n(f) grouping leakage: continuous index vs DSI\n";
  let hdoc = Workload.Health.doc () in
  let cont = Dsi.Continuous.assign hdoc in
  let dsi = Dsi.Assign.assign ~key:"e8f" hdoc in
  let insurance =
    List.find
      (fun n -> List.length (Xmlcore.Doc.children hdoc n) = 3)
      (Xmlcore.Doc.nodes_with_tag hdoc "insurance")
  in
  let children = Xmlcore.Doc.children hdoc insurance in
  let policies = List.filter (fun n -> Xmlcore.Doc.tag hdoc n = "policy#") children in
  let others = List.filter (fun n -> Xmlcore.Doc.tag hdoc n <> "policy#") children in
  let leak interval_of parent_iv =
    let hull =
      List.fold_left
        (fun acc n -> Dsi.Interval.hull acc (interval_of n))
        (interval_of (List.hd policies))
        policies
    in
    Dsi.Continuous.grouping_leak ~parent:parent_iv
      ~child_intervals:(hull :: List.map interval_of others)
  in
  Printf.printf "  continuous index: grouping detected = %b\n"
    (leak (Dsi.Continuous.interval cont) (Dsi.Continuous.interval cont insurance));
  Printf.printf "  DSI index:        grouping detected = %b\n"
    (leak (Dsi.Assign.interval dsi) (Dsi.Assign.interval dsi insurance));
  (* (g) tag-distribution attacker (the paper's stated non-goal). *)
  Printf.printf "\n(g) tag-distribution attack (outside the threat model, Section 8)\n";
  let meta2 = Secure.Metadata.build ~keys db in
  let observed =
    List.map (fun (token, ivs) -> token, List.length ivs) meta2.Secure.Metadata.dsi_table
  in
  let r =
    Secure.Attack.tag_distribution_attack
      ~known_census:(Xmlcore.Stats.tag_census doc) ~observed
  in
  Printf.printf
    "  %d/%d tags re-identified by a census-equipped attacker — confirming \
     the paper's\n  declared limitation (grouping only partially erodes the \
     signal)\n"
    (List.length r.Secure.Attack.identified)
    r.Secure.Attack.tag_domain;
  (* (h) update cost: the re-host strategy pays full setup per edit. *)
  Printf.printf "\n(h) update cost (re-host strategy)\n";
  let scs_h = Workload.Health.constraints () in
  List.iter
    (fun patients ->
      let doc = Workload.Health.generate ~patients () in
      let sys, setup0 = System.setup doc scs_h Scheme.Opt in
      let t0 = Unix.gettimeofday () in
      let _sys2, _ =
        System.update sys
          (Secure.Update.Set_value (Xpath.Parser.parse "//patient/age", "50"))
      in
      ignore setup0;
      Printf.printf "  %6d patients: re-host %.0f ms\n" patients
        ((Unix.gettimeofday () -. t0) *. 1000.0))
    [ 50; 200; 800 ];
  Printf.printf
    "  (linear in document size — the cost an incremental protocol built on \
     the DSI\n   gaps, cf. Dsi.Assign.interval_in_gap, would avoid)\n";
  (* (i) cipher suites: XTEA (paper-era stand-in) vs AES-128 (what W3C
     XML-Encryption deployments used). *)
  Printf.printf "\n(i) block-cipher suite comparison (1 MiB CBC)\n";
  let payload = String.init (1024 * 1024) (fun i -> Char.chr (i land 0xFF)) in
  List.iter
    (fun suite ->
      let prepared = Crypto.Cipher.prepare suite "bench-key" in
      let t0 = Unix.gettimeofday () in
      let ct = Crypto.Cipher.encrypt prepared ~nonce:"n" payload in
      let t1 = Unix.gettimeofday () in
      ignore (Crypto.Cipher.decrypt prepared ~nonce:"n" ct);
      let t2 = Unix.gettimeofday () in
      Printf.printf "  %-5s encrypt %6.1f MB/s   decrypt %6.1f MB/s\n"
        (Crypto.Cipher.suite_to_string suite)
        (1.0 /. (t1 -. t0))
        (1.0 /. (t2 -. t1)))
    [ Crypto.Cipher.Xtea; Crypto.Cipher.Aes ];
  let hdoc2 = Workload.Health.generate ~patients:200 () in
  List.iter
    (fun suite ->
      let _, cost =
        System.setup ~master:"e8i" ~cipher:suite hdoc2
          (Workload.Health.constraints ()) Scheme.Opt
      in
      Printf.printf "  %-5s full setup: encrypt %.1f ms, server data %d bytes\n"
        (Crypto.Cipher.suite_to_string suite) cost.System.encrypt_ms
        cost.System.server_data_bytes)
    [ Crypto.Cipher.Xtea; Crypto.Cipher.Aes ];
  (* (j) value-index policy: metadata size vs value-query cost. *)
  Printf.printf "\n(j) value-index policy (200-patient hospital, opt scheme)\n";
  let scs_j = Workload.Health.constraints () in
  let q = Xpath.Parser.parse "//patient[age>=60]/pname" in
  List.iter
    (fun (label, policy) ->
      let sys, cost = System.setup ~master:"e8j" ~value_index:policy hdoc2 scs_j Scheme.Opt in
      let answers, qcost = System.evaluate sys q in
      Printf.printf
        "  %-14s metadata %8d B, btree %6d entries; age>=60 query %6.2f ms \
         (%d blocks, %d answers)\n"
        label cost.System.metadata_bytes
        (Secure.Metadata.btree_entry_count (System.metadata sys))
        (System.total_ms qcost) qcost.System.blocks_returned
        (List.length answers))
    [ "all-leaves", Secure.Metadata.All_leaves;
      "encrypted-only", Secure.Metadata.Encrypted_only ]

(* ------------------------------------------------------------------ *)
(* E9: robustness — the protocol under transport faults                *)

(* Runs the same seeded query workload across a grid of fault profiles
   and reports what the session layer paid to keep answers exact:
   attempts per call, retransmitted bytes, faults absorbed, replay-cache
   hits, and how often the metadata path degraded to the naive
   fallback. *)
let e9 () =
  header "e9: robustness under transport faults (session layer overhead)";
  let doc = Workload.Health.generate ~patients:120 () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup ~master:"e9" doc scs Scheme.Opt in
  let queries =
    List.concat_map
      (fun fam -> Qg.generate ~seed:9L doc fam ~count:15)
      Qg.all_families
  in
  Printf.printf "workload: %d queries over a %d-patient hospital document\n\n"
    (List.length queries) 120;
  Printf.printf "%-28s %8s %9s %9s %8s %8s %9s\n" "profile" "attempts"
    "retx B" "absorbed" "replays" "degraded" "overhead";
  let baseline_ms = ref 0.0 in
  List.iter
    (fun (label, profile) ->
      let faulty =
        System.with_faults ~profile ~seed:99L sys
      in
      let t0 = Unix.gettimeofday () in
      let costs = List.map (fun q -> snd (System.evaluate faulty q)) queries in
      let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      if !baseline_ms = 0.0 then baseline_ms := elapsed_ms;
      let sum f = List.fold_left (fun acc c -> acc + f c) 0 costs in
      let attempts = sum (fun c -> c.System.attempts) in
      let retx = sum (fun c -> c.System.retransmitted_bytes) in
      let absorbed = sum (fun c -> c.System.faults_absorbed) in
      let degraded =
        List.length (List.filter (fun c -> c.System.degraded) costs)
      in
      let replays = (System.endpoint_stats faulty).Secure.Session.replayed in
      Printf.printf "%-28s %8.2f %9d %9d %8d %7d%% %8.2fx\n" label
        (float_of_int attempts /. float_of_int (List.length costs))
        retx absorbed replays
        (100 * degraded / List.length costs)
        (elapsed_ms /. !baseline_ms))
    [ "calm", Secure.Transport.calm;
      "drop 5%", Secure.Transport.chaos ~drop:0.05 ();
      "drop 20%", Secure.Transport.chaos ~drop:0.20 ();
      ( "corrupt 5%",
        Secure.Transport.chaos ~flip:0.05 ~truncate:0.05 () );
      ( "corrupt 20%",
        Secure.Transport.chaos ~flip:0.20 ~truncate:0.20 () );
      "duplicate 20%", Secure.Transport.chaos ~duplicate:0.20 ();
      ( "lossy mix (5% each)",
        Secure.Transport.chaos ~drop:0.05 ~flip:0.05 ~truncate:0.05
          ~duplicate:0.05 ~reorder:0.05 () );
      ( "hostile mix (20% each)",
        Secure.Transport.chaos ~drop:0.20 ~flip:0.20 ~truncate:0.20
          ~duplicate:0.20 ~reorder:0.20 () ) ];
  (* Exactness is asserted in test_chaos; here we just confirm it held
     on the hostile profile for the benchmark workload too. *)
  let hostile =
    System.with_faults
      ~profile:
        (Secure.Transport.chaos ~drop:0.20 ~flip:0.20 ~truncate:0.20
           ~duplicate:0.20 ~reorder:0.20 ())
      ~seed:7L sys
  in
  let exact =
    List.for_all
      (fun q ->
        fst (System.evaluate hostile q) = fst (System.evaluate sys q))
      queries
  in
  Printf.printf "\nanswers under hostile mix byte-exact vs calm run: %b\n" exact

(* ------------------------------------------------------------------ *)
(* E10: the engine's plan/result/block caches on a repeated workload    *)

(* A client that re-issues the same queries is the cache's natural
   workload.  Measures server+decrypt ms cold (first touch of each
   distinct query) vs warm (four further passes), checks answers are
   identical across warm engine / caches-disabled engine /
   System.evaluate reference, and exercises update invalidation: after
   an Engine.update the first query must miss and still agree with the
   reference on the re-hosted system. *)
let e10 scale =
  header
    (Printf.sprintf
       "E10: engine caches on a repeated workload, opt scheme (%s scale)"
       scale.label);
  List.iter
    (fun ds ->
      (* Fresh hosting (not [system_of]'s cache): the invalidation leg
         re-hosts, and other experiments must keep their snapshot. *)
      let sys, _ = System.setup ds.doc ds.scs Scheme.Opt in
      let distinct =
        List.sort_uniq compare
          (List.concat_map
             (fun fam -> Qg.generate ~seed:10L ds.doc fam ~count:4)
             [ Qg.Qs; Qg.Qm; Qg.Ql; Qg.Qv ])
      in
      (* The block working set of this workload exceeds the default
         256-entry client cache (opt blocks are single leaves), which
         would turn every warm pass into LRU thrashing; model a client
         whose cache holds the working set. *)
      let engine =
        Engine.create
          ~config:{ Engine.default_config with Engine.block_capacity = 65_536 }
          sys
      in
      let off =
        Engine.create
          ~config:{ Engine.default_config with Engine.caches = false } sys
      in
      let pass eng = List.map (fun q -> snd (Engine.evaluate_report eng q)) distinct in
      let cold = pass engine in
      let warm_passes = 4 in
      let warm = List.concat (List.init warm_passes (fun _ -> pass engine)) in
      let mean rs f =
        List.fold_left (fun a r -> a +. f r) 0.0 rs
        /. float_of_int (max 1 (List.length rs))
      in
      let cold_ms = mean cold Engine.server_decrypt_ms in
      let warm_ms = mean warm Engine.server_decrypt_ms in
      let cold_bytes = mean cold (fun r -> float_of_int r.Engine.transmit_bytes) in
      let warm_bytes = mean warm (fun r -> float_of_int r.Engine.transmit_bytes) in
      let speedup = cold_ms /. Float.max warm_ms 1e-6 in
      (* Answer equality: warm engine = caches-off engine = reference. *)
      let exact =
        List.for_all
          (fun q ->
            let reference = fst (System.evaluate sys q) in
            Engine.evaluate engine q = reference
            && Engine.evaluate off q = reference)
          distinct
      in
      if not exact then
        failwith (Printf.sprintf "e10 [%s]: engine answers differ from reference" ds.name);
      (* Invalidation: update through the engine, then the very next
         query must be a result-cache miss and still exact. *)
      let before = (Engine.stats engine).Engine.Stats.invalidations in
      let root_tag = Xmlcore.Doc.tag ds.doc (Xmlcore.Doc.root ds.doc) in
      let _cost =
        Engine.update engine
          (Secure.Update.Insert_child
             { parent = Xpath.Parser.parse ("/" ^ root_tag);
               position = 0;
               subtree =
                 Xmlcore.Tree.element "probe" [ Xmlcore.Tree.leaf "stamp" "1" ] })
      in
      let post_q = List.hd distinct in
      let post_answers, post_report = Engine.evaluate_report engine post_q in
      let stats = Engine.stats engine in
      if stats.Engine.Stats.invalidations <= before then
        failwith (Printf.sprintf "e10 [%s]: update did not invalidate the caches" ds.name);
      if post_report.Engine.result_outcome <> Engine.Miss then
        failwith
          (Printf.sprintf "e10 [%s]: first post-update query served from cache" ds.name);
      if post_answers <> fst (System.evaluate (Engine.system engine) post_q) then
        failwith
          (Printf.sprintf "e10 [%s]: post-update answers differ from reference" ds.name);
      Printf.printf
        "[%s] %d distinct queries x (1 cold + %d warm passes)\n\
        \  server+decrypt: cold %8.3f ms -> warm %8.3f ms   (speedup %.1fx)\n\
        \  transmitted:    cold %8.0f B  -> warm %8.0f B\n\
        \  hit rates: plan %.2f  result %.2f  block %.2f; invalidations %d; \
         post-update exact: yes\n\n"
        ds.name (List.length distinct) warm_passes cold_ms warm_ms speedup
        cold_bytes warm_bytes
        (Engine.Stats.plan_hit_rate stats)
        (Engine.Stats.result_hit_rate stats)
        (Engine.Stats.block_hit_rate stats)
        stats.Engine.Stats.invalidations;
      json_row
        [ "experiment", S "e10";
          "dataset", S ds.name;
          "scheme", S (Scheme.kind_to_string Scheme.Opt);
          "distinct_queries", I (List.length distinct);
          "warm_passes", I warm_passes;
          "cold_server_decrypt_ms", F cold_ms;
          "warm_server_decrypt_ms", F warm_ms;
          "speedup", F speedup;
          "cold_transmit_bytes", F cold_bytes;
          "warm_transmit_bytes", F warm_bytes;
          "plan_hit_rate", F (Engine.Stats.plan_hit_rate stats);
          "result_hit_rate", F (Engine.Stats.result_hit_rate stats);
          "block_hit_rate", F (Engine.Stats.block_hit_rate stats);
          "answers_exact", B exact ];
      (* The ISSUE's acceptance bar; tiny runs are noise-dominated, so
         only the equality assertions gate there. *)
      if scale.label <> "tiny" && speedup < 2.0 then
        failwith
          (Printf.sprintf "e10 [%s]: warm speedup %.2fx below the 2x bar" ds.name
             speedup))
    (datasets scale);
  Printf.printf
    "expected shape: warm passes hit the result memo and block cache, so \
     server+decrypt\nms and shipped bytes collapse; an update flushes \
     everything and answers stay exact.\n"

(* ------------------------------------------------------------------ *)
(* E11: domain-pool scaling                                            *)

(* Hosting (block encryption + OPESS/B-tree bulk load) and a batched
   query workload, sequential vs a 1/2/4-domain pool.  Parallelism must
   be invisible in everything but wall-clock: ciphertext bytes,
   serialized answers, transmitted bytes and blocks returned are
   asserted byte-identical to the sequential reference at every pool
   size. *)
let e11 scale =
  header
    (Printf.sprintf
       "E11: domain-pool scaling of hosting and batched queries (%s scale)"
       scale.label);
  List.iter
    (fun ds ->
      (* Sequential reference: fresh hosting (not [system_of]'s cache)
         so the cold host time is honest and other experiments keep
         their snapshot. *)
      let t0 = Unix.gettimeofday () in
      let ref_sys, _ = System.setup ds.doc ds.scs Scheme.Opt in
      let seq_host_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let queries =
        Array.of_list
          (List.concat_map
             (fun fam -> Qg.generate ~seed:11L ds.doc fam ~count:4)
             [ Qg.Qs; Qg.Qm; Qg.Ql; Qg.Qv ])
      in
      let serialize trees = List.map Xmlcore.Printer.tree_to_string trees in
      let ciphertexts sys =
        List.map
          (fun b -> b.Secure.Encrypt.ciphertext)
          (System.db sys).Secure.Encrypt.blocks
      in
      let t0 = Unix.gettimeofday () in
      let reference = Array.map (System.evaluate ref_sys) queries in
      let seq_batch_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let ref_cipher = ciphertexts ref_sys in
      let host_ms_1 = ref Float.nan in
      List.iter
        (fun domains ->
          let pool = Parallel.Pool.create ~domains () in
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.shutdown pool)
            (fun () ->
              let t0 = Unix.gettimeofday () in
              let sys, _ = System.setup ~pool ds.doc ds.scs Scheme.Opt in
              let host_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
              if domains = 1 then host_ms_1 := host_ms;
              if ciphertexts sys <> ref_cipher then
                failwith
                  (Printf.sprintf
                     "e11 [%s, %d domains]: ciphertext bytes differ from \
                      sequential hosting"
                     ds.name domains);
              let t0 = Unix.gettimeofday () in
              let batch = System.evaluate_batch sys queries in
              let batch_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
              Array.iteri
                (fun i (answers, cost) ->
                  let ref_answers, ref_cost = reference.(i) in
                  if serialize answers <> serialize ref_answers then
                    failwith
                      (Printf.sprintf
                         "e11 [%s, %d domains]: answers differ from the \
                          sequential reference (query %d)"
                         ds.name domains i);
                  if cost.System.transmit_bytes <> ref_cost.System.transmit_bytes
                  then
                    failwith
                      (Printf.sprintf
                         "e11 [%s, %d domains]: wire traffic differs from the \
                          sequential reference (query %d)"
                         ds.name domains i);
                  if
                    cost.System.blocks_returned
                    <> ref_cost.System.blocks_returned
                  then
                    failwith
                      (Printf.sprintf
                         "e11 [%s, %d domains]: blocks returned differ from \
                          the sequential reference (query %d)"
                         ds.name domains i);
                  if cost.System.degraded then
                    failwith
                      (Printf.sprintf
                         "e11 [%s, %d domains]: batch lane degraded (query %d)"
                         ds.name domains i))
                batch;
              let host_speedup = !host_ms_1 /. Float.max host_ms 1e-6 in
              let batch_speedup = seq_batch_ms /. Float.max batch_ms 1e-6 in
              Printf.printf
                "[%s] %d domain(s): host %8.1f ms (%.2fx vs 1 domain)   \
                 batch of %d queries %8.1f ms (%.2fx vs sequential)   exact: \
                 yes\n"
                ds.name domains host_ms host_speedup (Array.length queries)
                batch_ms batch_speedup;
              json_row
                [ "experiment", S "e11";
                  "dataset", S ds.name;
                  "scheme", S (Scheme.kind_to_string Scheme.Opt);
                  "domains", I domains;
                  "queries", I (Array.length queries);
                  "seq_host_ms", F seq_host_ms;
                  "host_ms", F host_ms;
                  "host_speedup", F host_speedup;
                  "seq_batch_ms", F seq_batch_ms;
                  "batch_ms", F batch_ms;
                  "batch_speedup", F batch_speedup;
                  "answers_exact", B true ];
              (* The ISSUE's acceptance bar.  Tiny runs are
                 noise-dominated, and on machines without at least four
                 cores extra domains only add scheduling overhead, so
                 only the equality assertions gate there. *)
              if
                scale.label <> "tiny" && domains >= 4
                && Parallel.Pool.recommended_domains () >= 4
                && host_speedup < 1.5
              then
                failwith
                  (Printf.sprintf
                     "e11 [%s]: %d-domain host speedup %.2fx below the 1.5x bar"
                     ds.name domains host_speedup)))
        [ 1; 2; 4 ])
    (datasets scale);
  Printf.printf
    "expected shape: hosting and batch times shrink with the domain count \
     while every\nbyte the server sees or returns stays identical to the \
     sequential run.\n"

(* ------------------------------------------------------------------ *)
(* E12: observability overhead when disabled                           *)

(* The obs instrumentation is compiled in unconditionally; the whole
   budget of a disabled sink is one boolean test per site.  This
   experiment measures that per-site cost directly, counts the sites a
   real query actually crosses (every instrument update, span, event
   and ledger round corresponds to exactly one always-on guard), and
   asserts the product stays under 3% of the measured e2/e3 query path
   with all sinks off. *)
let e12 scale =
  header
    (Printf.sprintf "E12: disabled-observability overhead bound (%s scale)"
       scale.label);
  (* 1. Per-site cost: a tight loop of [incr] on a disabled registry,
     long enough to defeat timer granularity. *)
  let reg = Obs.Metric.create () in
  let site = Obs.Metric.counter reg "e12.site" in
  let iters = 20_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    Obs.Metric.incr site
  done;
  let per_site_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
  Printf.printf "disabled instrument site: %.2f ns (loop of %dM)\n\n" per_site_ns
    (iters / 1_000_000);
  List.iter
    (fun ds ->
      let sys, _ = system_of ds Scheme.Opt in
      let queries =
        List.concat_map
          (fun fam -> Qg.generate ds.doc fam ~count:queries_per_family)
          [ Qg.Qs; Qg.Qm; Qg.Ql ]
      in
      let nq = List.length queries in
      (* 2. Sites per query: turn every sink on, replay the workload
         once, and count what they saw. *)
      let tracer = System.tracer sys and ledger = System.ledger sys in
      Obs.Metric.set_enabled Obs.Metric.default true;
      Obs.Metric.reset Obs.Metric.default;
      Obs.Trace.set_enabled tracer true;
      Obs.Trace.clear tracer;
      Obs.Ledger.set_enabled ledger true;
      Obs.Ledger.clear ledger;
      List.iter (fun q -> ignore (System.evaluate sys q)) queries;
      let rec nodes (n : Obs.Trace.node) =
        1 + List.fold_left (fun acc c -> acc + nodes c) 0 n.Obs.Trace.children
      in
      let spans =
        List.fold_left (fun acc r -> acc + nodes r) 0 (Obs.Trace.roots tracer)
      in
      let sites =
        Obs.Metric.ops Obs.Metric.default + spans + Obs.Ledger.count ledger
      in
      Obs.Metric.set_enabled Obs.Metric.default false;
      Obs.Metric.reset Obs.Metric.default;
      Obs.Trace.set_enabled tracer false;
      Obs.Trace.clear tracer;
      Obs.Ledger.set_enabled ledger false;
      Obs.Ledger.clear ledger;
      let sites_per_query = float_of_int sites /. float_of_int (max 1 nq) in
      (* 3. The instrumented path with every sink off — exactly what e2
         and e3 measure: median compute-ms (server + decrypt +
         post-process) per query. *)
      let compute =
        List.sort Float.compare
          (List.map
             (fun q ->
               let p = avg_cost sys q in
               p.p_server +. p.p_decrypt +. p.p_post)
             queries)
      in
      let median_ms = List.nth compute (nq / 2) in
      let overhead_ms = sites_per_query *. per_site_ns /. 1e6 in
      let pct = 100.0 *. overhead_ms /. Float.max median_ms 1e-9 in
      Printf.printf
        "[%s] %d queries: %.0f sites/query x %.2f ns = %.6f ms overhead vs \
         median compute %.3f ms (%.4f%%)\n"
        ds.name nq sites_per_query per_site_ns overhead_ms median_ms pct;
      json_row
        [ "experiment", S "e12";
          "dataset", S ds.name;
          "scheme", S (Scheme.kind_to_string Scheme.Opt);
          "queries", I nq;
          "sites_per_query", F sites_per_query;
          "per_site_ns", F per_site_ns;
          "overhead_ms", F overhead_ms;
          "median_compute_ms", F median_ms;
          "overhead_pct", F pct ];
      if overhead_ms >= 0.03 *. median_ms then
        failwith
          (Printf.sprintf
             "e12 [%s]: disabled-instrumentation overhead %.4f%% breaches the \
              3%% bound"
             ds.name pct))
    (datasets scale);
  Printf.printf
    "expected shape: a handful of nanoseconds per query against a \
     millisecond-scale\npath — three orders of magnitude inside the 3%% \
     acceptance bound.\n"

(* ------------------------------------------------------------------ *)
(* E13: multi-tenant serving tier under an offered-load sweep          *)

(* N independent hostings behind one serving tier, mixed workload per
   tenant, offered load (submissions per tenant per round) swept across
   the admission limit (the token bucket's sustained refill rate).  At
   or below the limit every submission is admitted and served; above
   it the bounded queue pushes back with typed Overloaded rejections
   while per-tenant latency stays flat — the tier sheds load instead of
   queueing without bound.  Both halves are asserted, and the sweep is
   the repo's first serving-tier baseline (BENCH_1.json). *)
let e13 scale =
  header
    (Printf.sprintf
       "E13: multi-tenant admission control under offered load (%s scale)"
       scale.label);
  let patients = if scale.label = "tiny" then 4 else 10 in
  let ids = [ "tenant-a"; "tenant-b"; "tenant-c"; "tenant-d" ] in
  let hostings =
    List.map
      (fun id ->
        let doc = Workload.Health.generate ~patients () in
        let scs = Workload.Health.constraints () in
        id, fst (System.setup ~master:("e13-" ^ id) doc scs Scheme.Opt))
      ids
  in
  let queries =
    Array.of_list
      (List.map Xpath.Parser.parse
         [ "//patient/pname"; "//patient[age>=50]/pname"; "//treat/doctor";
           "//SSN" ])
  in
  let rounds = 8 in
  let refill = 2 and queue_depth = 4 in
  Printf.printf
    "%d tenants, %d rounds; bucket refill %d/round (the admission limit), \
     queue depth %d\n\n"
    (List.length ids) rounds refill queue_depth;
  Printf.printf "%-10s %-10s %9s %9s %9s %9s %9s %9s\n" "offered/rd" "tenant"
    "accepted" "served" "rejected" "rej_rate" "p50_ms" "p95_ms";
  List.iter
    (fun offered ->
      let config =
        { Serve.default_config with
          Serve.queue_depth;
          bucket_capacity = refill;
          refill_per_round = refill;
          max_inflight = 64 }
      in
      let srv = Serve.create ~config () in
      List.iter (fun (id, sys) -> Serve.register srv ~id sys) hostings;
      let latencies = Hashtbl.create 8 in
      let accepted = Hashtbl.create 8 and rejected = Hashtbl.create 8 in
      let bump tbl id =
        Hashtbl.replace tbl id
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl id))
      in
      let count tbl id = Option.value ~default:0 (Hashtbl.find_opt tbl id) in
      let note completions =
        List.iter
          (fun c ->
            match c.Serve.outcome with
            | Serve.Answered { cost; _ } ->
              let prev =
                Option.value ~default:[]
                  (Hashtbl.find_opt latencies c.Serve.tenant)
              in
              Hashtbl.replace latencies c.Serve.tenant
                (System.total_ms cost :: prev)
            | Serve.Failed _ | Serve.Shed _ ->
              failwith "e13: fault-free workload lost a query")
          completions
      in
      for round = 0 to rounds - 1 do
        List.iteri
          (fun ti (id, _) ->
            for k = 0 to offered - 1 do
              let q = queries.((ti + k + round) mod Array.length queries) in
              match Serve.submit srv ~tenant:id q with
              | Ok _ -> bump accepted id
              | Error Serve.Overloaded -> bump rejected id
              | Error r ->
                failwith ("e13: unexpected reject " ^ Serve.reject_to_string r)
            done)
          hostings;
        note (Serve.run_round srv)
      done;
      note (Serve.drain srv ());
      List.iter
        (fun (id, _) ->
          let served =
            List.sort Float.compare
              (Option.value ~default:[] (Hashtbl.find_opt latencies id))
          in
          let n = List.length served in
          let pct p =
            if n = 0 then 0.0
            else List.nth served (min (n - 1) (int_of_float (p *. float_of_int n)))
          in
          let acc = count accepted id and rej = count rejected id in
          let offered_total = offered * rounds in
          let rej_rate = float_of_int rej /. float_of_int offered_total in
          Printf.printf "%-10d %-10s %9d %9d %9d %9.3f %9.3f %9.3f\n" offered
            id acc n rej rej_rate (pct 0.50) (pct 0.95);
          json_row
            [ "experiment", S "e13";
              "tenant", S id;
              "tenants", I (List.length ids);
              "rounds", I rounds;
              "offered_per_round", I offered;
              "admission_limit", I refill;
              "queue_depth", I queue_depth;
              "accepted", I acc;
              "served", I n;
              "rejected", I rej;
              "rejection_rate", F rej_rate;
              "p50_ms", F (pct 0.50);
              "p95_ms", F (pct 0.95) ];
          (* The gate: backpressure appears exactly when offered load
             crosses the admission limit, and nothing is ever lost —
             every accepted query is served. *)
          if acc <> n then
            failwith
              (Printf.sprintf "e13 [%s]: accepted %d but served %d" id acc n);
          if offered <= refill && rej > 0 then
            failwith
              (Printf.sprintf
                 "e13 [%s]: rejected %d below the admission limit" id rej);
          if offered > refill + queue_depth && rej = 0 then
            failwith
              (Printf.sprintf
                 "e13 [%s]: offered %d/round crossed the limit without a \
                  single Overloaded rejection"
                 id offered))
        hostings)
    [ 1; 2; 4; 8 ];
  Printf.printf
    "\nexpected shape: zero rejections at or below the bucket's refill rate; \
     past it the\nbounded queue rejects the overflow (typed, never silent) \
     while p50/p95 stay flat.\n"

(* ------------------------------------------------------------------ *)
(* E14: leakage mitigations — candidate-set growth vs. price           *)

let e14 scale =
  header
    (Printf.sprintf
       "E14: leakage mitigations — candidate-set growth and its price (%s \
        scale)"
       scale.label);
  let patients = if scale.label = "tiny" then 5 else 12 in
  let doc = Workload.Health.generate ~seed:1L ~patients () in
  let scs = Workload.Health.constraints () in
  let queries =
    Array.of_list
      (List.map Xpath.Parser.parse
         [ "//patient/pname"; "//patient[age>=50]/pname"; "//treat/doctor";
           "//SSN" ])
  in
  let batches = 2 in
  let budget =
    match Attack.Budget.load "attack.budget" with
    | Ok b -> b
    | Error msg -> failwith ("e14: attack.budget: " ^ msg)
  in
  let configs =
    [ "off", Attack.Mitigate.off;
      "shuffle", { Attack.Mitigate.pad = false; dummies = 0; shuffle = true };
      "dummy", { Attack.Mitigate.pad = false; dummies = 4; shuffle = false };
      "pad", { Attack.Mitigate.pad = true; dummies = 0; shuffle = false };
      "pad+dummy+shuffle",
      { Attack.Mitigate.pad = true; dummies = 4; shuffle = true } ]
  in
  (* One fresh hosting per configuration: the leakage ledger must see
     only this configuration's wire traffic. *)
  let run_config config =
    let sys, _ = System.setup ~master:"e14" doc scs Scheme.Opt in
    Obs.Ledger.set_enabled (System.ledger sys) true;
    let mit = Attack.Mitigate.create ~seed:11L config in
    let answers = ref [] and ms = ref 0.0 and bytes = ref 0 in
    for _ = 1 to batches do
      Array.iter
        (fun (ans, cost) ->
          answers := List.map Xmlcore.Printer.tree_to_string ans :: !answers;
          ms := !ms +. System.total_ms cost;
          bytes := !bytes + cost.System.transmit_bytes)
        (Attack.Mitigate.evaluate_batch mit sys queries)
    done;
    (List.rev !answers, !ms, !bytes, Attack.Trace.of_ledger (System.ledger sys))
  in
  let min_class findings c =
    match
      List.filter_map
        (fun (f : Attack.Passes.finding) ->
          if f.Attack.Passes.pass = c then Some f.Attack.Passes.candidates
          else None)
        findings
    with
    | [] -> None
    | sizes -> Some (List.fold_left min max_int sizes)
  in
  Printf.printf
    "%d batch(es) x %d quer(ies) per configuration; budget: attack.budget\n\n"
    batches (Array.length queries);
  Printf.printf "%-18s %9s %9s %9s %11s %9s %9s %9s\n" "mitigations"
    "freq_min" "size_min" "cooc_min" "violations" "ms" "bytes" "overhead";
  let baseline = ref None in
  List.iter
    (fun (name, config) ->
      let answers, ms, bytes, trace = run_config config in
      (* The differential gate: whatever the mitigation spends, the
         answers must be byte-identical to the unmitigated run. *)
      (match !baseline with
       | None -> baseline := Some (answers, ms, bytes)
       | Some (base_answers, _, _) ->
         if answers <> base_answers then
           failwith
             (Printf.sprintf
                "e14 [%s]: mitigated answers differ from the unmitigated \
                 baseline"
                name));
      let findings = Attack.Passes.run_all trace in
      let sc = Attack.Budget.score budget findings in
      let violations = List.length sc.Attack.Budget.violations in
      let _, _, base_bytes =
        match !baseline with Some b -> b | None -> assert false
      in
      let overhead =
        if base_bytes = 0 then 0.0
        else float_of_int (bytes - base_bytes) /. float_of_int base_bytes
      in
      let show c =
        match min_class findings c with
        | None -> "-"
        | Some n -> string_of_int n
      in
      Printf.printf "%-18s %9s %9s %9s %11d %9.2f %9d %8.1f%%\n" name
        (show "frequency") (show "size") (show "cooccurrence") violations ms
        bytes (100.0 *. overhead);
      json_row
        [ "experiment", S "e14";
          "mitigations", S name;
          "frequency_min",
          I (Option.value ~default:0 (min_class findings "frequency"));
          "size_min", I (Option.value ~default:0 (min_class findings "size"));
          "cooccurrence_min",
          I (Option.value ~default:0 (min_class findings "cooccurrence"));
          "violations", I violations;
          "ms", F ms;
          "transmit_bytes", I bytes;
          "bytes_overhead", F overhead ];
      (* The budget gates: the unmitigated run must exhibit the leakage
         the adversary passes exist to find, and the declaration's
         bought mitigation must actually buy it back. *)
      if name = "off" && violations = 0 then
        failwith
          "e14 [off]: unmitigated workload shows no budget violation — the \
           adversary channels vanished";
      if name = "pad" && violations > 0 then
        failwith
          (Printf.sprintf
             "e14 [pad]: the bought mitigation left %d budget violation(s)"
             violations))
    configs;
  Printf.printf
    "\nexpected shape: off pins blocks (candidate sets of 1); pad collapses \
     every\nresponse to the block-universe envelope (one frequency/size \
     class), priced in\nbytes and ms; dummy costs bandwidth but buys nothing \
     against this adversary (the\nserver decodes requests, so it discards \
     distinguishable cover fetches); shuffle\nalone changes nothing the \
     passes see (order is not an input).  Answers are\nbyte-identical \
     throughout.\n"

(* ------------------------------------------------------------------ *)
(* E15: incremental updates under mixed read/write churn               *)

(* The incremental-update claim: applying an edit through
   System.apply_delta costs proportionally to the delta (the touched
   blocks), not to the database, while a full re-host pays the whole
   setup again.  A churn workload of targeted value edits plus one
   insert/delete pair runs down two systems in lockstep — one
   maintained incrementally, one re-hosted per edit — interleaved with
   reads; answers must stay byte-identical throughout, and at non-tiny
   scale the incremental path must be at least 5x cheaper. *)
let e15 scale =
  header
    (Printf.sprintf
       "E15: incremental updates — delta cost vs full re-host under churn \
        (%s scale)"
       scale.label);
  let patients = if scale.label = "tiny" then 40 else 300 in
  let churn = 4 in
  let doc = Workload.Health.generate ~seed:5L ~patients () in
  let scs = Workload.Health.constraints () in
  (* Targeted edits address patients by name; names are unique in the
     generated database, so each Set_value touches one patient record
     (~1 block of the hosting). *)
  let pnames =
    Array.of_list
      (List.filter_map
         (Xmlcore.Doc.value doc)
         (Xmlcore.Doc.nodes_with_tag doc "pname"))
  in
  let pname i = pnames.(i * 7 mod Array.length pnames) in
  let edits =
    (* policy# leaves live inside the insurance encryption blocks (SC1
       encrypts //insurance wholesale), so each value edit re-encrypts
       the touched patient's insurance block — the delta re-encryption
       path, not just metadata surgery. *)
    List.init churn (fun i ->
        Secure.Update.Set_value
          ( Xpath.Parser.parse
              (Printf.sprintf "//patient[pname='%s']//policy#" (pname i)),
            Printf.sprintf "9%04d" i ))
    @ [ Secure.Update.Insert_child
          { parent =
              Xpath.Parser.parse
                (Printf.sprintf "//patient[pname='%s']" (pname churn));
            position = 0;
            subtree = Xmlcore.Tree.leaf "remark" "follow-up" };
        Secure.Update.Delete_nodes
          (Xpath.Parser.parse
             (Printf.sprintf "//patient[pname='%s']/remark" (pname churn))) ]
  in
  let queries =
    List.map Xpath.Parser.parse
      [ "//patient/pname"; "//insurance/policy#"; "//treat/doctor" ]
  in
  let answers sys =
    List.map
      (fun q ->
        List.map Xmlcore.Printer.tree_to_string (fst (System.evaluate sys q)))
      queries
  in
  let incremental = ref (fst (System.setup ~master:"e15" doc scs Scheme.Opt)) in
  let rehosted = ref (fst (System.setup ~master:"e15" doc scs Scheme.Opt)) in
  let delta_ms = ref 0.0 and rehost_ms = ref 0.0 in
  let touched = ref 0 and dropped = ref 0 and fell_back = ref 0 in
  let blocks_total = ref 0 in
  Printf.printf "%d patients, %d edit(s) (%d value, 1 insert, 1 delete)\n\n"
    patients (List.length edits) churn;
  Printf.printf "%-10s %9s %9s %9s %9s %9s %11s\n" "edit" "plan_ms"
    "reenc_ms" "patch_ms" "touched" "blocks" "rehost_ms";
  List.iteri
    (fun i edit ->
      let next, (dc : System.delta_cost) = System.apply_delta !incremental edit in
      incremental := next;
      let rnext, (sc : System.setup_cost) = System.update !rehosted edit in
      rehosted := rnext;
      let d = dc.System.plan_ms +. dc.System.reencrypt_ms +. dc.System.patch_ms in
      let r = sc.System.scheme_build_ms +. sc.System.encrypt_ms
              +. sc.System.metadata_ms in
      delta_ms := !delta_ms +. d;
      rehost_ms := !rehost_ms +. r;
      touched := !touched + dc.System.blocks_touched;
      dropped := !dropped + dc.System.blocks_dropped;
      if dc.System.fell_back then incr fell_back;
      blocks_total := dc.System.blocks_total;
      Printf.printf "%-10s %9.3f %9.3f %9.3f %9d %9d %11.3f\n"
        (Printf.sprintf "#%d" (i + 1))
        dc.System.plan_ms dc.System.reencrypt_ms dc.System.patch_ms
        dc.System.blocks_touched dc.System.blocks_total r;
      (* A read between every write keeps the churn honest: the
         incrementally maintained hosting must answer like the
         re-hosted one at every intermediate state, not just at the
         end. *)
      if answers !incremental <> answers !rehosted then
        failwith
          (Printf.sprintf
             "e15: answers diverged from the re-hosted baseline after edit %d"
             (i + 1)))
    edits;
  let speedup = if !delta_ms = 0.0 then 0.0 else !rehost_ms /. !delta_ms in
  Printf.printf
    "\ntotal: delta %.2f ms vs re-host %.2f ms (%.1fx); %d block(s) touched, \
     %d dropped, %d fallback(s)\n"
    !delta_ms !rehost_ms speedup !touched !dropped !fell_back;
  json_row
    [ "experiment", S "e15";
      "patients", I patients;
      "edits", I (List.length edits);
      "blocks_touched", I !touched;
      "blocks_dropped", I !dropped;
      "blocks_total", I !blocks_total;
      "fallbacks", I !fell_back;
      "delta_ms", F !delta_ms;
      "rehost_ms", F !rehost_ms ];
  (* The value edits must stay incremental: a silent fallback would
     make the comparison measure the re-host path against itself. *)
  if !fell_back > 0 then
    failwith (Printf.sprintf "e15: %d edit(s) fell back to a full re-host" !fell_back);
  if !touched > List.length edits * 2 then
    failwith
      (Printf.sprintf "e15: %d blocks touched for %d edits — delta is not \
                       proportional to the edit" !touched (List.length edits));
  (* Timing assertion only where timings mean something. *)
  if scale.label <> "tiny" && !delta_ms *. 5.0 > !rehost_ms then
    failwith
      (Printf.sprintf
         "e15: incremental updates only %.1fx cheaper than re-hosting \
          (expected >= 5x)"
         speedup);
  Printf.printf
    "expected shape: per-edit delta cost tracks the touched block count \
     (1-2 of\n%d blocks), not the database; the re-host column pays full \
     setup every time.\nAnswers are byte-identical to the re-hosted baseline \
     after every edit.\n"
    !blocks_total

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)

let micro () =
  header "micro: Bechamel micro-benchmarks of the core primitives";
  let open Bechamel in
  let open Toolkit in
  (* Fixtures. *)
  let doc_10k = Workload.Xmark.generate ~persons:700 () in
  let assignment = Dsi.Assign.assign ~key:"bench" doc_10k in
  let intervals =
    List.init (Xmlcore.Doc.node_count doc_10k) (Dsi.Assign.interval assignment)
  in
  let people = List.filteri (fun i _ -> i mod 13 = 0) intervals in
  let big_hist =
    List.init 300 (fun i -> Printf.sprintf "%05d" i, 3 + (i mod 40))
  in
  let cat = Secure.Opess.build ~key:"bench" ~attr_id:0 ~tag:"v" big_hist in
  let btree = Btree.create () in
  List.iteri (fun i (_, c) -> Btree.insert btree (Int64.of_int (i * 7)) c) big_hist;
  let payload = String.init 65_536 (fun i -> Char.chr (i mod 256)) in
  let cbc_key = Crypto.Cbc.prepare "bench-key" in
  let ope = Crypto.Ope.create ~key:"bench" ~domain_bits:32 in
  let query = Xpath.Parser.parse "//person[address/city='Seoul']/name" in
  let tests =
    Test.make_grouped ~name:"primitives"
      [ Test.make ~name:"dsi-assign-10k-nodes"
          (Staged.stage (fun () -> Dsi.Assign.assign ~key:"x" doc_10k));
        Test.make ~name:"structural-join-10k"
          (Staged.stage (fun () ->
               Dsi.Join.descendants_within ~ancestors:people intervals));
        Test.make ~name:"opess-build-300-values"
          (Staged.stage (fun () ->
               Secure.Opess.build ~key:"b" ~attr_id:0 ~tag:"v" big_hist));
        Test.make ~name:"opess-translate-range"
          (Staged.stage (fun () -> Secure.Opess.translate cat Xpath.Ast.Ge "00150"));
        Test.make ~name:"btree-range-scan"
          (Staged.stage (fun () -> Btree.range btree ~lo:100L ~hi:1500L));
        Test.make ~name:"cbc-encrypt-64KiB"
          (Staged.stage (fun () ->
               Crypto.Cbc.encrypt_prepared cbc_key ~nonce:"n" payload));
        Test.make ~name:"ope-encrypt"
          (Staged.stage (fun () -> Crypto.Ope.encrypt ope 123_456_789L));
        Test.make ~name:"vernam-tag-token"
          (Staged.stage (fun () ->
               Crypto.Vernam.encrypt_hex ~key:"k" ~pad_id:"tag" "insurance"));
        Test.make ~name:"xpath-eval-10k-doc"
          (Staged.stage (fun () -> Xpath.Eval.eval doc_10k query));
        Test.make ~name:"sha256-4KiB"
          (Staged.stage
             (let block = String.make 4096 'x' in
              fun () -> Crypto.Sha256.digest block));
        Test.make ~name:"btree-insert-delete"
          (Staged.stage (fun () ->
               Btree.insert btree 424242L 1;
               ignore (Btree.delete btree 424242L (fun _ -> true))));
        Test.make ~name:"protocol-encode-request"
          (Staged.stage
             (let squery =
                { Secure.Squery.absolute = true;
                  steps =
                    [ { Secure.Squery.axis = Xpath.Ast.Descendant_or_self;
                        test = Secure.Squery.Tokens [ Secure.Squery.Clear "person" ];
                        predicates =
                          [ Secure.Squery.Value
                              ( { Secure.Squery.absolute = false;
                                  steps =
                                    [ { Secure.Squery.axis = Xpath.Ast.Child;
                                        test =
                                          Secure.Squery.Tokens
                                            [ Secure.Squery.Clear "age" ];
                                        predicates = [] } ] },
                                Secure.Squery.Ranges [ (1L, 99L) ] ) ] } ] }
              in
              fun () -> Secure.Protocol.encode_request squery));
        Test.make ~name:"xquery-parse"
          (Staged.stage (fun () ->
               Xquery.Parser.parse
                 "for $p in //person where $p/age >= 40 order by $p/age return \
                  <r>{$p/name}</r>")) ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> (name, est) :: acc
        | Some [] | None -> acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "%-52s %14s\n" "benchmark" "ns/run";
  List.iter (fun (name, ns) -> Printf.printf "%-52s %14.0f\n" name ns) rows

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec flag_value name = function
    | f :: v :: _ when f = name -> Some v
    | _ :: rest -> flag_value name rest
    | [] -> None
  in
  let scale =
    match flag_value "--scale" args with
    | Some "tiny" -> tiny
    | Some "medium" -> medium
    | Some "large" -> large
    | Some _ | None -> small
  in
  let json_path = flag_value "--json" args in
  let compare_path = flag_value "--compare" args in
  let wanted =
    (* Flags and their operands are not experiment names. *)
    let rec positional = function
      | ("--scale" | "--json" | "--compare") :: _ :: rest -> positional rest
      | a :: rest when String.length a >= 2 && String.sub a 0 2 = "--" ->
        positional rest
      | a :: rest -> a :: positional rest
      | [] -> []
    in
    List.filter
      (fun a -> a <> "tiny" && a <> "small" && a <> "medium" && a <> "large")
      (positional args)
  in
  let all =
    [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11";
      "e12"; "e13"; "e14"; "e15"; "micro" ]
  in
  let wanted = if wanted = [] || List.mem "all" wanted then all else wanted in
  Printf.printf "secure-xml bench harness (scale: %s)\n" scale.label;
  List.iter
    (fun name ->
      match name with
      | "e1" -> e1 ()
      | "e2" -> e2 scale
      | "e3" -> e3 scale
      | "e4" -> e4 scale
      | "e5" -> e5 scale
      | "e6" -> e6 scale
      | "e7" -> e7 ()
      | "e8" -> e8 ()
      | "e9" -> e9 ()
      | "e10" -> e10 scale
      | "e11" -> e11 scale
      | "e12" -> e12 scale
      | "e13" -> e13 scale
      | "e14" -> e14 scale
      | "e15" -> e15 scale
      | "micro" -> micro ()
      | other -> Printf.printf "unknown experiment %S (skipped)\n" other)
    wanted;
  (match json_path with
   | None -> ()
   | Some path ->
     json_write path;
     Printf.printf "\njson: %d rows -> %s\n" (List.length !json_rows) path);
  match compare_path with
  | None -> ()
  | Some path -> json_compare path
