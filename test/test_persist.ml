(* Persistence tests: save/load round trips, integrity checks. *)

module System = Secure.System
module Persist = Secure.Persist

let parse = Xpath.Parser.parse

let build_system () =
  let doc = Workload.Health.generate ~patients:40 () in
  let scs = Workload.Health.constraints () in
  fst (System.setup ~master:"persist-master" doc scs Secure.Scheme.Opt)

let queries =
  [ "//patient/pname"; "//patient[.//disease='flu']/pname";
    "//insurance/@coverage"; "//patient[age>=50]/SSN"; "//treat/doctor" ]

let roundtrip_preserves_answers () =
  let sys = build_system () in
  let restored = Persist.of_string ~master:"persist-master" (Persist.to_string sys) in
  List.iter
    (fun q ->
      let query = parse q in
      let expected, _ = System.evaluate sys query in
      let got, _ = System.evaluate restored query in
      Helpers.check_trees_equal q expected got)
    queries;
  (* Aggregates survive too (catalog reconstruction). *)
  List.iter
    (fun q ->
      let query = parse q in
      Alcotest.(check (option string)) ("max " ^ q)
        (fst (System.aggregate sys `Max query))
        (fst (System.aggregate restored `Max query)))
    [ "//age"; "//disease" ]

let roundtrip_via_file () =
  let sys = build_system () in
  let path = Filename.temp_file "sxq" ".host" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save sys path;
      let restored = Persist.load ~master:"persist-master" path in
      let q = parse "//patient[.//disease='flu']/pname" in
      Helpers.check_trees_equal "file roundtrip"
        (fst (System.evaluate sys q))
        (fst (System.evaluate restored q)))

let stable_encoding () =
  let sys = build_system () in
  Alcotest.(check bool) "deterministic encoding" true
    (Persist.to_string sys = Persist.to_string sys)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let wrong_master_rejected () =
  let sys = build_system () in
  let data = Persist.to_string sys in
  (match Persist.of_string ~master:"wrong" data with
   | _ -> Alcotest.fail "wrong master must be rejected"
   | exception Persist.Corrupt m ->
     (* A wrong master is indistinguishable from tampering — and must
        not be misreported as a torn write. *)
     Alcotest.(check bool) "reported as MAC failure" true
       (contains ~sub:"MAC" m))

let tampering_rejected () =
  let sys = build_system () in
  let data = Bytes.of_string (Persist.to_string sys) in
  (* Flip a byte in the middle of the payload. *)
  let i = Bytes.length data / 2 in
  Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0x40));
  (match Persist.of_string ~master:"persist-master" (Bytes.to_string data) with
   | _ -> Alcotest.fail "tampered file must be rejected"
   | exception Persist.Corrupt _ -> ())

let truncation_rejected () =
  let sys = build_system () in
  let data = Persist.to_string sys in
  List.iter
    (fun keep ->
      match Persist.of_string ~master:"persist-master" (String.sub data 0 keep) with
      | _ -> Alcotest.failf "truncation to %d must be rejected" keep
      | exception Persist.Corrupt m ->
        (* Truncation is a crash artifact, not an attack: the error must
           say "torn", never "tampered". *)
        Alcotest.(check bool)
          (Printf.sprintf "truncation to %d reported as torn" keep)
          true (contains ~sub:"torn write" m))
    [ 0; 7; 40; String.length data / 2; String.length data - 1 ]

let truncation_at_every_section_boundary () =
  let sys = build_system () in
  let data = Persist.to_string sys in
  let offsets = Persist.section_offsets sys in
  Alcotest.(check int) "twelve sections" 12 (List.length offsets);
  List.iter
    (fun (name, boundary) ->
      List.iter
        (fun cut ->
          if cut >= 0 && cut < String.length data then begin
            let torn = String.sub data 0 cut in
            (* load refuses, as a torn write... *)
            (match Persist.of_string ~master:"persist-master" torn with
             | _ -> Alcotest.failf "cut at %s%+d accepted" name (cut - boundary)
             | exception Persist.Corrupt m ->
               Alcotest.(check bool)
                 (Printf.sprintf "%s cut %d torn" name cut)
                 true (contains ~sub:"torn write" m));
            (* ...and verify localises the tear: sections whose bytes
               are fully present still decode, the straddling one
               fails, the rest are unreached. *)
            let report = Persist.verify ~master:"persist-master" torn in
            (match report.Persist.verdict with
             | Persist.Torn { expected_bytes; actual_bytes } ->
               Alcotest.(check int) "expected full size" (String.length data)
                 expected_bytes;
               Alcotest.(check int) "actual cut size" cut actual_bytes
             | v ->
               Alcotest.failf "cut at %s%+d: verdict %s" name (cut - boundary)
                 (Persist.verdict_to_string v));
            List.iter
              (fun (sec, sec_end) ->
                match List.assoc_opt sec report.Persist.sections with
                | None -> Alcotest.failf "section %s missing from report" sec
                | Some status ->
                  let present = sec_end <= cut in
                  let ok = status = Persist.Section_ok in
                  if present && not ok then
                    Alcotest.failf "cut %d: complete section %s not ok" cut sec;
                  if (not present) && ok then
                    Alcotest.failf "cut %d: incomplete section %s reported ok" cut
                      sec)
              offsets
          end)
        [ boundary - 1; boundary; boundary + 1 ])
    offsets

let interrupted_save_preserves_previous_bundle () =
  let sys = build_system () in
  let sys2, _ =
    System.update sys (Secure.Update.Set_value (parse "//patient/age", "64"))
  in
  let path = Filename.temp_file "sxq" ".host" in
  let tmp = path ^ ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      Persist.save sys path;
      let q = parse "//patient[.//disease='flu']/pname" in
      let expected = fst (System.evaluate sys q) in
      let new_data = Persist.to_string sys2 in
      (* Simulate a crash mid-save at assorted byte offsets: save writes
         to [path ^ ".tmp"] first, so the interruption leaves a torn tmp
         next to an untouched previous bundle. *)
      List.iter
        (fun cut ->
          let oc = open_out_bin tmp in
          output_string oc (String.sub new_data 0 cut);
          close_out oc;
          (* The previous bundle is still loadable and answers as before. *)
          let restored = Persist.load ~master:"persist-master" path in
          Helpers.check_trees_equal
            (Printf.sprintf "previous bundle survives crash at offset %d" cut)
            expected
            (fst (System.evaluate restored q));
          (* fsck flags the torn tmp artifact. *)
          let report = Persist.verify_file ~master:"persist-master" tmp in
          match report.Persist.verdict with
          | Persist.Torn _ -> ()
          | v ->
            Alcotest.failf "tmp torn at %d: verdict %s" cut
              (Persist.verdict_to_string v))
        [ 0; 1; 7; 15; 100; String.length new_data / 3;
          String.length new_data - 1 ];
      (* A completed save replaces the bundle atomically and cleans up. *)
      Persist.save sys2 path;
      Alcotest.(check bool) "tmp removed after successful save" false
        (Sys.file_exists tmp);
      let restored = Persist.load ~master:"persist-master" path in
      Helpers.check_trees_equal "new bundle after completed save"
        (fst (System.evaluate sys2 q))
        (fst (System.evaluate restored q)))

let verify_reports () =
  let sys = build_system () in
  let data = Persist.to_string sys in
  (* Intact bundle: everything green. *)
  let report = Persist.verify ~master:"persist-master" data in
  Alcotest.(check string) "intact" "intact"
    (Persist.verdict_to_string report.Persist.verdict);
  List.iter
    (fun (name, status) ->
      if status <> Persist.Section_ok then
        Alcotest.failf "section %s not ok on intact bundle" name)
    report.Persist.sections;
  Alcotest.(check bool) "blocks seen" true (report.Persist.blocks_total > 0);
  Alcotest.(check int) "no bad blocks" 0 (List.length report.Persist.blocks_bad);
  (* Bit flip: tampering, not a tear. *)
  let flipped = Bytes.of_string data in
  let i = Bytes.length flipped / 2 in
  Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0x40));
  let report = Persist.verify ~master:"persist-master" (Bytes.to_string flipped) in
  (match report.Persist.verdict with
   | Persist.Tampered | Persist.Malformed _ -> ()
   | v -> Alcotest.failf "flip verdict %s" (Persist.verdict_to_string v));
  (* Wrong master: MAC cannot verify. *)
  let report = Persist.verify ~master:"eve" data in
  match report.Persist.verdict with
  | Persist.Tampered -> ()
  | v -> Alcotest.failf "wrong master verdict %s" (Persist.verdict_to_string v)

let updated_system_persists () =
  let sys = build_system () in
  let sys2, _ =
    System.update sys
      (Secure.Update.Set_value (parse "//patient/age", "64"))
  in
  let restored = Persist.of_string ~master:"persist-master" (Persist.to_string sys2) in
  let q = parse "//patient[age=64]/pname" in
  Helpers.check_trees_equal "post-update persistence"
    (fst (System.evaluate sys2 q))
    (fst (System.evaluate restored q))

let () =
  Alcotest.run "persist"
    [ ( "roundtrip",
        [ Alcotest.test_case "answers preserved" `Quick roundtrip_preserves_answers;
          Alcotest.test_case "file io" `Quick roundtrip_via_file;
          Alcotest.test_case "deterministic" `Quick stable_encoding;
          Alcotest.test_case "after update" `Quick updated_system_persists ] );
      ( "integrity",
        [ Alcotest.test_case "wrong master" `Quick wrong_master_rejected;
          Alcotest.test_case "tampering" `Quick tampering_rejected;
          Alcotest.test_case "truncation" `Quick truncation_rejected;
          Alcotest.test_case "section boundaries" `Quick
            truncation_at_every_section_boundary ] );
      ( "crash safety",
        [ Alcotest.test_case "interrupted save" `Quick
            interrupted_save_preserves_previous_bundle;
          Alcotest.test_case "verify reports" `Quick verify_reports ] ) ]
