(* Persistence tests: save/load round trips, integrity checks. *)

module System = Secure.System
module Persist = Secure.Persist

let parse = Xpath.Parser.parse

let build_system () =
  let doc = Workload.Health.generate ~patients:40 () in
  let scs = Workload.Health.constraints () in
  fst (System.setup ~master:"persist-master" doc scs Secure.Scheme.Opt)

let queries =
  [ "//patient/pname"; "//patient[.//disease='flu']/pname";
    "//insurance/@coverage"; "//patient[age>=50]/SSN"; "//treat/doctor" ]

let roundtrip_preserves_answers () =
  let sys = build_system () in
  let restored = Persist.of_string ~master:"persist-master" (Persist.to_string sys) in
  List.iter
    (fun q ->
      let query = parse q in
      let expected, _ = System.evaluate sys query in
      let got, _ = System.evaluate restored query in
      Helpers.check_trees_equal q expected got)
    queries;
  (* Aggregates survive too (catalog reconstruction). *)
  List.iter
    (fun q ->
      let query = parse q in
      Alcotest.(check (option string)) ("max " ^ q)
        (fst (System.aggregate sys `Max query))
        (fst (System.aggregate restored `Max query)))
    [ "//age"; "//disease" ]

let roundtrip_via_file () =
  let sys = build_system () in
  let path = Filename.temp_file "sxq" ".host" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save sys path;
      let restored = Persist.load ~master:"persist-master" path in
      let q = parse "//patient[.//disease='flu']/pname" in
      Helpers.check_trees_equal "file roundtrip"
        (fst (System.evaluate sys q))
        (fst (System.evaluate restored q)))

let stable_encoding () =
  let sys = build_system () in
  Alcotest.(check bool) "deterministic encoding" true
    (Persist.to_string sys = Persist.to_string sys)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let wrong_master_rejected () =
  let sys = build_system () in
  let data = Persist.to_string sys in
  (match Persist.of_string ~master:"wrong" data with
   | _ -> Alcotest.fail "wrong master must be rejected"
   | exception Persist.Corrupt m ->
     (* A wrong master is indistinguishable from tampering — and must
        not be misreported as a torn write. *)
     Alcotest.(check bool) "reported as MAC failure" true
       (contains ~sub:"MAC" m))

let tampering_rejected () =
  let sys = build_system () in
  let data = Bytes.of_string (Persist.to_string sys) in
  (* Flip a byte in the middle of the payload. *)
  let i = Bytes.length data / 2 in
  Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0x40));
  (match Persist.of_string ~master:"persist-master" (Bytes.to_string data) with
   | _ -> Alcotest.fail "tampered file must be rejected"
   | exception Persist.Corrupt _ -> ())

let truncation_rejected () =
  let sys = build_system () in
  let data = Persist.to_string sys in
  List.iter
    (fun keep ->
      match Persist.of_string ~master:"persist-master" (String.sub data 0 keep) with
      | _ -> Alcotest.failf "truncation to %d must be rejected" keep
      | exception Persist.Corrupt m ->
        (* Truncation is a crash artifact, not an attack: the error must
           say "torn", never "tampered". *)
        Alcotest.(check bool)
          (Printf.sprintf "truncation to %d reported as torn" keep)
          true (contains ~sub:"torn write" m))
    [ 0; 7; 40; String.length data / 2; String.length data - 1 ]

let truncation_at_every_section_boundary () =
  let sys = build_system () in
  let data = Persist.to_string sys in
  let offsets = Persist.section_offsets sys in
  Alcotest.(check int) "fourteen sections" 14 (List.length offsets);
  List.iter
    (fun (name, boundary) ->
      List.iter
        (fun cut ->
          if cut >= 0 && cut < String.length data then begin
            let torn = String.sub data 0 cut in
            (* load refuses, as a torn write... *)
            (match Persist.of_string ~master:"persist-master" torn with
             | _ -> Alcotest.failf "cut at %s%+d accepted" name (cut - boundary)
             | exception Persist.Corrupt m ->
               Alcotest.(check bool)
                 (Printf.sprintf "%s cut %d torn" name cut)
                 true (contains ~sub:"torn write" m));
            (* ...and verify localises the tear: sections whose bytes
               are fully present still decode, the straddling one
               fails, the rest are unreached. *)
            let report = Persist.verify ~master:"persist-master" torn in
            (match report.Persist.verdict with
             | Persist.Torn { expected_bytes; actual_bytes } ->
               Alcotest.(check int) "expected full size" (String.length data)
                 expected_bytes;
               Alcotest.(check int) "actual cut size" cut actual_bytes
             | v ->
               Alcotest.failf "cut at %s%+d: verdict %s" name (cut - boundary)
                 (Persist.verdict_to_string v));
            List.iter
              (fun (sec, sec_end) ->
                match List.assoc_opt sec report.Persist.sections with
                | None -> Alcotest.failf "section %s missing from report" sec
                | Some status ->
                  let present = sec_end <= cut in
                  let ok = status = Persist.Section_ok in
                  if present && not ok then
                    Alcotest.failf "cut %d: complete section %s not ok" cut sec;
                  if (not present) && ok then
                    Alcotest.failf "cut %d: incomplete section %s reported ok" cut
                      sec)
              offsets
          end)
        [ boundary - 1; boundary; boundary + 1 ])
    offsets

let interrupted_save_preserves_previous_bundle () =
  let sys = build_system () in
  let sys2, _ =
    System.update sys (Secure.Update.Set_value (parse "//patient/age", "64"))
  in
  let path = Filename.temp_file "sxq" ".host" in
  let tmp = path ^ ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      Persist.save sys path;
      let q = parse "//patient[.//disease='flu']/pname" in
      let expected = fst (System.evaluate sys q) in
      let new_data = Persist.to_string sys2 in
      (* Simulate a crash mid-save at assorted byte offsets: save writes
         to [path ^ ".tmp"] first, so the interruption leaves a torn tmp
         next to an untouched previous bundle. *)
      List.iter
        (fun cut ->
          let oc = open_out_bin tmp in
          output_string oc (String.sub new_data 0 cut);
          close_out oc;
          (* The previous bundle is still loadable and answers as before. *)
          let restored = Persist.load ~master:"persist-master" path in
          Helpers.check_trees_equal
            (Printf.sprintf "previous bundle survives crash at offset %d" cut)
            expected
            (fst (System.evaluate restored q));
          (* fsck flags the torn tmp artifact. *)
          let report = Persist.verify_file ~master:"persist-master" tmp in
          match report.Persist.verdict with
          | Persist.Torn _ -> ()
          | v ->
            Alcotest.failf "tmp torn at %d: verdict %s" cut
              (Persist.verdict_to_string v))
        [ 0; 1; 7; 15; 100; String.length new_data / 3;
          String.length new_data - 1 ];
      (* A completed save replaces the bundle atomically and cleans up. *)
      Persist.save sys2 path;
      Alcotest.(check bool) "tmp removed after successful save" false
        (Sys.file_exists tmp);
      let restored = Persist.load ~master:"persist-master" path in
      Helpers.check_trees_equal "new bundle after completed save"
        (fst (System.evaluate sys2 q))
        (fst (System.evaluate restored q)))

let verify_reports () =
  let sys = build_system () in
  let data = Persist.to_string sys in
  (* Intact bundle: everything green. *)
  let report = Persist.verify ~master:"persist-master" data in
  Alcotest.(check string) "intact" "intact"
    (Persist.verdict_to_string report.Persist.verdict);
  List.iter
    (fun (name, status) ->
      if status <> Persist.Section_ok then
        Alcotest.failf "section %s not ok on intact bundle" name)
    report.Persist.sections;
  Alcotest.(check bool) "blocks seen" true (report.Persist.blocks_total > 0);
  Alcotest.(check int) "no bad blocks" 0 (List.length report.Persist.blocks_bad);
  (* Bit flip: tampering, not a tear. *)
  let flipped = Bytes.of_string data in
  let i = Bytes.length flipped / 2 in
  Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0x40));
  let report = Persist.verify ~master:"persist-master" (Bytes.to_string flipped) in
  (match report.Persist.verdict with
   | Persist.Tampered | Persist.Malformed _ -> ()
   | v -> Alcotest.failf "flip verdict %s" (Persist.verdict_to_string v));
  (* Wrong master: MAC cannot verify. *)
  let report = Persist.verify ~master:"eve" data in
  match report.Persist.verdict with
  | Persist.Tampered -> ()
  | v -> Alcotest.failf "wrong master verdict %s" (Persist.verdict_to_string v)

let updated_system_persists () =
  let sys = build_system () in
  let sys2, _ =
    System.update sys
      (Secure.Update.Set_value (parse "//patient/age", "64"))
  in
  let restored = Persist.of_string ~master:"persist-master" (Persist.to_string sys2) in
  let q = parse "//patient[age=64]/pname" in
  Helpers.check_trees_equal "post-update persistence"
    (fst (System.evaluate sys2 q))
    (fst (System.evaluate restored q))

(* --- Delta log: journal round trips, crash injection, compaction --- *)

module Update = Secure.Update
module Tree = Xmlcore.Tree

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

(* A mixed edit batch: value edits on encrypted leaves (policy# and
   disease live inside //insurance and //patient blocks under the
   Health constraints), a structural insert of a plaintext tag, and a
   structural delete. *)
let log_edits =
  [ Update.Set_value (parse "//policy#", "90001");
    Update.Insert_child
      { parent = parse "//patient"; position = 0;
        subtree = Tree.leaf "remark" "checked" };
    Update.Set_value (parse "//disease", "flu");
    Update.Delete_nodes (parse "//remark");
    Update.Set_value (parse "//policy#", "90002") ]

(* Host a bundle, run [edits] through a journal, hand (path, sys0) to
   [f], and clean up every artifact afterwards. *)
let with_journal ?compact_threshold edits f =
  let sys = build_system () in
  let path = Filename.temp_file "sxq" ".host" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; Persist.log_path path; path ^ ".tmp" ])
    (fun () ->
      Persist.save sys path;
      let j = Persist.journal_open ?compact_threshold ~master:"persist-master" path in
      List.iter (fun e -> ignore (Persist.journal_update j e)) edits;
      f path sys j)

(* The plaintext oracle for "exactly the first [k] edits applied":
   mutate the document offline and re-host it from scratch. *)
let oracle_answers sys k q =
  let prefix = List.filteri (fun i _ -> i < k) log_edits in
  let doc' = Update.apply_all (System.doc sys) prefix in
  let fresh, _ =
    System.setup ~master:"persist-master" doc' (System.constraints sys)
      Secure.Scheme.Opt
  in
  Helpers.norm_trees (System.reference fresh (parse q))

let log_queries =
  [ "//patient/pname"; "//insurance/policy#"; "//remark";
    "//patient[.//disease='flu']/pname" ]

let journal_roundtrip () =
  with_journal log_edits (fun path sys j ->
      let n = List.length log_edits in
      Alcotest.(check int) "seq after updates" n (Persist.journal_seq j);
      (* Reopening replays the log to a byte-identical system. *)
      let j2 = Persist.journal_open ~master:"persist-master" path in
      Alcotest.(check int) "seq after reopen" n (Persist.journal_seq j2);
      Alcotest.(check bool) "replayed state byte-identical" true
        (Persist.to_string (Persist.journal_system j)
        = Persist.to_string (Persist.journal_system j2));
      (* Answers agree with a from-scratch re-host of the mutated doc. *)
      List.iter
        (fun q ->
          Alcotest.(check (list string)) ("reopen " ^ q)
            (oracle_answers sys n q)
            (Helpers.norm_trees
               (fst (System.evaluate (Persist.journal_system j2) (parse q)))))
        log_queries;
      (* fsck agrees the log is clean and fully pending. *)
      match Persist.fsck_log ~master:"persist-master" path with
      | None -> Alcotest.fail "fsck found no log"
      | Some f ->
        Alcotest.(check int) "records" n f.Persist.log_records;
        Alcotest.(check int) "pending" n f.Persist.log_pending;
        Alcotest.(check int) "dropped" 0 f.Persist.log_dropped_bytes;
        Alcotest.(check (option string)) "fatal" None f.Persist.log_fatal;
        Alcotest.(check (option string)) "replay" None f.Persist.log_replay)

(* Frame geometry of the on-disk log: [(start, stop)] per record, where
   a record spans [8-byte length][payload][32-byte MAC]. *)
let record_spans data =
  let magic_len = 8 and mac_len = 32 in
  let n = String.length data in
  let rec go off acc =
    if off >= n then List.rev acc
    else
      let len =
        Int64.to_int (Bytes.get_int64_le (Bytes.unsafe_of_string data) off)
      in
      let stop = off + 8 + len + mac_len in
      go stop ((off, stop) :: acc)
  in
  go magic_len []

let log_truncation_battery () =
  with_journal log_edits (fun path sys _j ->
      let lp = Persist.log_path path in
      let data = read_file lp in
      let spans = record_spans data in
      Alcotest.(check int) "one record per edit" (List.length log_edits)
        (List.length spans);
      (* Cut points: inside the magic, at every record boundary, and at
         several offsets inside every record (length field, payload,
         MAC). *)
      let cuts =
        (0, 0) :: (3, 0) :: (8, 8)
        :: List.concat_map
             (fun (start, stop) ->
               let clean = start in
               [ start + 1, clean; start + 8, clean;
                 start + 8 + ((stop - start - 40) / 2), clean;
                 stop - 1, clean; stop, stop ])
             spans
      in
      List.iter
        (fun (cut, clean_bytes) ->
          if cut <= String.length data then begin
            write_file lp (String.sub data 0 cut);
            (* read_log classifies the damage as a tear, never raises. *)
            let records, tail =
              Persist.read_log ~master:"persist-master" (String.sub data 0 cut)
            in
            let full_before =
              List.length (List.filter (fun (_, stop) -> stop <= cut) spans)
            in
            Alcotest.(check int)
              (Printf.sprintf "cut %d: complete records" cut)
              full_before (List.length records);
            (match tail with
             | Persist.Log_clean ->
               Alcotest.(check int)
                 (Printf.sprintf "cut %d is a boundary" cut)
                 clean_bytes cut
             | Persist.Log_torn { clean_bytes = cb; dropped_bytes } ->
               Alcotest.(check int)
                 (Printf.sprintf "cut %d: clean prefix" cut)
                 clean_bytes cb;
               Alcotest.(check int)
                 (Printf.sprintf "cut %d: dropped bytes" cut)
                 (cut - clean_bytes) dropped_bytes);
            (* fsck reports the tear as recoverable, not fatal. *)
            (match Persist.fsck_log ~master:"persist-master" path with
             | None -> Alcotest.fail "fsck found no log"
             | Some f ->
               Alcotest.(check (option string))
                 (Printf.sprintf "cut %d: no fatal" cut)
                 None f.Persist.log_fatal;
               Alcotest.(check (option string))
                 (Printf.sprintf "cut %d: replay ok" cut)
                 None f.Persist.log_replay);
            (* Recovery serves exactly the clean-prefix state — never a
               half-applied delta. *)
            let j =
              Persist.journal_open ~master:"persist-master" path
            in
            Alcotest.(check int)
              (Printf.sprintf "cut %d: recovered seq" cut)
              full_before (Persist.journal_seq j);
            List.iter
              (fun q ->
                Alcotest.(check (list string))
                  (Printf.sprintf "cut %d: %s" cut q)
                  (oracle_answers sys full_before q)
                  (Helpers.norm_trees
                     (fst
                        (System.evaluate (Persist.journal_system j) (parse q)))))
              log_queries;
            (* journal_open truncated the torn tail on disk. *)
            Alcotest.(check int)
              (Printf.sprintf "cut %d: tail dropped on disk" cut)
              clean_bytes
              (String.length (read_file lp))
          end)
        cuts)

(* After a tear inside the magic, recovery truncates the log to zero
   bytes; the next append must re-seed the magic so the log stays
   scannable. *)
let log_reseeds_after_total_tear () =
  with_journal log_edits (fun path sys _j ->
      let lp = Persist.log_path path in
      let data = read_file lp in
      write_file lp (String.sub data 0 3);
      let j = Persist.journal_open ~master:"persist-master" path in
      Alcotest.(check int) "nothing replayed" 0 (Persist.journal_seq j);
      ignore (Persist.journal_update j (List.hd log_edits));
      let j2 = Persist.journal_open ~master:"persist-master" path in
      Alcotest.(check int) "reopen sees the new record" 1
        (Persist.journal_seq j2);
      List.iter
        (fun q ->
          Alcotest.(check (list string)) ("reseed " ^ q)
            (oracle_answers sys 1 q)
            (Helpers.norm_trees
               (fst (System.evaluate (Persist.journal_system j2) (parse q)))))
        log_queries)

let log_tampering_battery () =
  with_journal log_edits (fun path _sys _j ->
      let lp = Persist.log_path path in
      let data = read_file lp in
      let spans = record_spans data in
      (* Flip one byte in the payload and one in the MAC of every
         record; each is a complete frame, so the scanner must call it
         tampering (a hard error), never a recoverable tear. *)
      let flips =
        List.concat_map
          (fun (start, stop) -> [ start + 8 + 2; stop - 5 ])
          spans
      in
      List.iter
        (fun i ->
          let b = Bytes.of_string data in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
          let mutated = Bytes.to_string b in
          (match Persist.read_log ~master:"persist-master" mutated with
           | _ -> Alcotest.failf "flip at %d accepted" i
           | exception Persist.Corrupt m ->
             Alcotest.(check bool)
               (Printf.sprintf "flip %d names the record" i)
               true (contains ~sub:"delta log record" m));
          write_file lp mutated;
          (* fsck surfaces it as fatal... *)
          (match Persist.fsck_log ~master:"persist-master" path with
           | None -> Alcotest.fail "fsck found no log"
           | Some f ->
             Alcotest.(check bool)
               (Printf.sprintf "flip %d fatal" i)
               true (f.Persist.log_fatal <> None));
          (* ...and recovery refuses outright rather than serving a
             half-applied prefix. *)
          match Persist.journal_open ~master:"persist-master" path with
          | _ -> Alcotest.failf "journal_open accepted flip at %d" i
          | exception Persist.Corrupt _ -> ())
        flips;
      (* A record from a different master is tampering too. *)
      write_file lp data;
      match
        Persist.read_log ~master:"eve" data
      with
      | _ -> Alcotest.fail "foreign master accepted"
      | exception Persist.Corrupt _ -> ())

let log_compaction () =
  (* A one-byte threshold forces compaction after every update: the log
     is folded into the bundle and removed, and the bundle's applied
     sequence advances so reopen replays nothing. *)
  with_journal ~compact_threshold:1 log_edits (fun path sys j ->
      let n = List.length log_edits in
      Alcotest.(check int) "seq survives compaction" n (Persist.journal_seq j);
      Alcotest.(check bool) "log removed" false
        (Sys.file_exists (Persist.log_path path));
      Alcotest.(check (option string)) "fsck has nothing to do" None
        (Option.map (fun _ -> "log present")
           (Persist.fsck_log ~master:"persist-master" path));
      let restored, applied = Persist.load_seq ~master:"persist-master" path in
      Alcotest.(check int) "applied-seq folded into bundle" n applied;
      List.iter
        (fun q ->
          Alcotest.(check (list string)) ("compacted " ^ q)
            (oracle_answers sys n q)
            (Helpers.norm_trees (fst (System.evaluate restored (parse q)))))
        log_queries;
      let j2 = Persist.journal_open ~master:"persist-master" path in
      Alcotest.(check int) "reopen after compaction" n (Persist.journal_seq j2))

let () =
  Alcotest.run "persist"
    [ ( "roundtrip",
        [ Alcotest.test_case "answers preserved" `Quick roundtrip_preserves_answers;
          Alcotest.test_case "file io" `Quick roundtrip_via_file;
          Alcotest.test_case "deterministic" `Quick stable_encoding;
          Alcotest.test_case "after update" `Quick updated_system_persists ] );
      ( "integrity",
        [ Alcotest.test_case "wrong master" `Quick wrong_master_rejected;
          Alcotest.test_case "tampering" `Quick tampering_rejected;
          Alcotest.test_case "truncation" `Quick truncation_rejected;
          Alcotest.test_case "section boundaries" `Quick
            truncation_at_every_section_boundary ] );
      ( "crash safety",
        [ Alcotest.test_case "interrupted save" `Quick
            interrupted_save_preserves_previous_bundle;
          Alcotest.test_case "verify reports" `Quick verify_reports ] );
      ( "delta log",
        [ Alcotest.test_case "journal roundtrip" `Quick journal_roundtrip;
          Alcotest.test_case "truncation battery" `Quick log_truncation_battery;
          Alcotest.test_case "reseed after total tear" `Quick
            log_reseeds_after_total_tear;
          Alcotest.test_case "tampering battery" `Quick log_tampering_battery;
          Alcotest.test_case "compaction" `Quick log_compaction ] ) ]
