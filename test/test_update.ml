(* Update subsystem tests: tree edits, re-hosting, and the DSI
   gap-insertion primitive. *)

module Doc = Xmlcore.Doc
module Tree = Xmlcore.Tree
module System = Secure.System
module Update = Secure.Update

let parse = Xpath.Parser.parse

let fresh_system () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  System.setup doc scs Secure.Scheme.Opt

(* --- Edits on plain documents ------------------------------------- *)

let insert_child () =
  let doc = Workload.Health.doc () in
  let new_patient =
    Tree.element "patient"
      [ Tree.leaf "pname" "Zoe"; Tree.leaf "SSN" "111222333";
        Tree.element "treat"
          [ Tree.leaf "disease" "asthma"; Tree.leaf "doctor" "Lee" ];
        Tree.leaf "age" "29" ]
  in
  let edited =
    Doc.of_tree
      (Update.apply doc
         (Update.Insert_child
            { parent = parse "/hospital"; position = 99; subtree = new_patient }))
  in
  Alcotest.(check int) "three patients" 3
    (List.length (Doc.nodes_with_tag edited "patient"));
  Alcotest.(check int) "appended last: no following siblings" 0
    (List.length
       (Xpath.Eval.eval edited (parse "//patient[pname='Zoe']/following-sibling::*")));
  Alcotest.(check int) "original patients precede Zoe" 2
    (List.length
       (Xpath.Eval.eval edited (parse "//patient[following-sibling::patient[pname='Zoe']]")));
  (* position 0 prepends *)
  let edited0 =
    Doc.of_tree
      (Update.apply doc
         (Update.Insert_child
            { parent = parse "/hospital"; position = 0; subtree = new_patient }))
  in
  (match Doc.children edited0 (Doc.root edited0) with
   | first :: _ ->
     Alcotest.(check (option string)) "first child is Zoe's record" (Some "Zoe")
       (Doc.value edited0 (List.hd (Doc.nodes_with_tag edited0 "pname")));
     ignore first
   | [] -> Alcotest.fail "no children")

let delete_nodes () =
  let doc = Workload.Health.doc () in
  let edited = Doc.of_tree (Update.apply doc (Update.Delete_nodes (parse "//treat"))) in
  Alcotest.(check int) "no treats" 0 (List.length (Doc.nodes_with_tag edited "treat"));
  Alcotest.(check int) "no diseases either" 0
    (List.length (Doc.nodes_with_tag edited "disease"));
  Alcotest.(check int) "patients intact" 2
    (List.length (Doc.nodes_with_tag edited "patient"))

let set_value () =
  let doc = Workload.Health.doc () in
  let edited =
    Doc.of_tree
      (Update.apply doc (Update.Set_value (parse "//patient[pname='Matt']/age", "41")))
  in
  Alcotest.(check (list string)) "age updated" [ "41" ]
    (List.filter_map (fun n -> Doc.value edited n)
       (Xpath.Eval.eval edited (parse "//patient[pname='Matt']/age")));
  Alcotest.(check (list string)) "other age untouched" [ "35" ]
    (List.filter_map (fun n -> Doc.value edited n)
       (Xpath.Eval.eval edited (parse "//patient[pname='Betty']/age")))

let invalid_edits () =
  let doc = Workload.Health.doc () in
  let raises ?expect f = match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument m ->
      (match expect with
       | None -> ()
       | Some sub ->
         let contains ~sub s =
           let n = String.length sub and len = String.length s in
           let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         Alcotest.(check bool)
           (Printf.sprintf "message %S mentions %S" m sub)
           true (contains ~sub m))
  in
  (* Deleting the document root leaves no document. *)
  raises ~expect:"root"
    (fun () -> Update.apply doc (Update.Delete_nodes (parse "/hospital")));
  (* Set_value targets must be leaves. *)
  raises ~expect:"not a leaf"
    (fun () -> Update.apply doc (Update.Set_value (parse "//patient", "x")));
  (* Paths that bind nothing are user errors, not silent no-ops. *)
  raises ~expect:"binds nothing"
    (fun () -> Update.apply doc (Update.Delete_nodes (parse "//absent")));
  raises ~expect:"binds nothing"
    (fun () -> Update.apply doc (Update.Set_value (parse "//absent", "v")));
  raises ~expect:"binds nothing"
    (fun () ->
      Update.apply doc
        (Update.Insert_child
           { parent = parse "//absent"; position = 0; subtree = Tree.leaf "x" "1" }));
  (* Leaves cannot grow children. *)
  raises ~expect:"leaf"
    (fun () ->
      Update.apply doc
        (Update.Insert_child
           { parent = parse "//pname"; position = 0; subtree = Tree.leaf "x" "1" }));
  (* A failed edit must not have mutated the document. *)
  Alcotest.(check int) "document unchanged after failures" 2
    (List.length (Doc.nodes_with_tag doc "patient"))

let insert_position_clamped () =
  let doc = Workload.Health.doc () in
  let note = Tree.leaf "note" "n" in
  (* Negative positions clamp to a prepend rather than failing. *)
  let edited =
    Doc.of_tree
      (Update.apply doc
         (Update.Insert_child
            { parent = parse "/hospital"; position = -5; subtree = note }))
  in
  (match Doc.children edited (Doc.root edited) with
   | first :: _ -> Alcotest.(check string) "prepended" "note" (Doc.tag edited first)
   | [] -> Alcotest.fail "no children");
  (* Positions past the end clamp to an append. *)
  let edited =
    Doc.of_tree
      (Update.apply doc
         (Update.Insert_child
            { parent = parse "/hospital"; position = 1_000; subtree = note }))
  in
  match List.rev (Doc.children edited (Doc.root edited)) with
  | last :: _ -> Alcotest.(check string) "appended" "note" (Doc.tag edited last)
  | [] -> Alcotest.fail "no children"

let apply_all_sees_earlier_edits () =
  let doc = Workload.Health.doc () in
  let edited =
    Update.apply_all doc
      [ Update.Insert_child
          { parent = parse "//patient[pname='Betty']";
            position = 99;
            subtree = Tree.leaf "note" "recheck" };
        Update.Set_value (parse "//note", "done") ]
  in
  Alcotest.(check (list string)) "second edit sees the first" [ "done" ]
    (List.filter_map (fun n -> Doc.value edited n)
       (Xpath.Eval.eval edited (parse "//note")))

(* --- Re-hosting through System.update ------------------------------ *)

let update_rehosts_securely () =
  let sys, _ = fresh_system () in
  let new_patient =
    Tree.element "patient"
      [ Tree.leaf "pname" "Zoe"; Tree.leaf "SSN" "111222333";
        Tree.element "treat"
          [ Tree.leaf "disease" "asthma"; Tree.leaf "doctor" "Lee" ];
        Tree.leaf "age" "29";
        Tree.element "insurance"
          [ Tree.attribute "coverage" "20000"; Tree.leaf "policy#" "99999" ] ]
  in
  let sys2, cost =
    System.update sys
      (Update.Insert_child
         { parent = parse "/hospital"; position = 99; subtree = new_patient })
  in
  Alcotest.(check bool) "setup cost reported" true (cost.System.block_count > 0);
  (* The new data is queryable through the full protocol... *)
  let answers, _ = System.evaluate sys2 (parse "//patient[pname='Zoe']//disease") in
  Helpers.check_trees_equal "new patient queryable"
    (System.reference sys2 (parse "//patient[pname='Zoe']//disease"))
    answers;
  (* ...and the SCs are enforced on the edited document (Zoe's
     insurance is encrypted). *)
  (match
     Secure.Scheme.enforces (System.doc sys2) (System.scheme sys2)
       (Workload.Health.constraints ())
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (* Deleting her again restores the original answers. *)
  let sys3, _ = System.update sys2 (Update.Delete_nodes (parse "//patient[pname='Zoe']")) in
  Alcotest.(check int) "back to two patients" 2
    (List.length (Xpath.Eval.eval (System.doc sys3) (parse "//patient")))

let update_changes_value_index () =
  let sys, _ = fresh_system () in
  let sys2, _ =
    System.update sys (Update.Set_value (parse "//patient[pname='Matt']/age", "77"))
  in
  let answers, _ = System.evaluate sys2 (parse "//patient[age>=70]/pname") in
  Helpers.check_trees_equal "value predicate sees the new value"
    (System.reference sys2 (parse "//patient[age>=70]/pname"))
    answers;
  Alcotest.(check int) "exactly Matt" 1 (List.length answers)

(* --- Incremental deltas -------------------------------------------- *)

(* The invariant every delta test leans on: after apply_delta(s), the
   system answers exactly like a fresh setup of the mutated document —
   and like the plaintext oracle. *)
let check_delta_equiv what sys' queries =
  let edited = System.doc sys' in
  let fresh, _ =
    System.setup ~master:(System.master sys') edited (System.constraints sys')
      (System.scheme sys').Secure.Scheme.kind
  in
  List.iter
    (fun q ->
      let query = parse q in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s agrees with oracle" what q)
        true
        (Helpers.norm_trees (System.reference sys' query)
         = Helpers.norm_trees (fst (System.evaluate sys' query)));
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s agrees with fresh setup" what q)
        true
        (Helpers.norm_trees (fst (System.evaluate fresh query))
         = Helpers.norm_trees (fst (System.evaluate sys' query))))
    queries

let health_queries =
  [ "//patient/pname"; "//insurance/policy#"; "//treat/doctor";
    "//patient[age>=40]/pname" ]

(* Regression: deleting the last node(s) of a block must re-encrypt the
   emptied block (inner deletion) or drop it (root deletion) — the
   original delta planner lost the correspondence for both shapes. *)
let delta_delete_last_block_node () =
  let sys, _ = fresh_system () in
  (* Betty's insurance block: delete its policy# leaves, then the
     @coverage attribute — the block root ends up childless but alive. *)
  let sys2, costs =
    System.apply_deltas sys
      [ Update.Delete_nodes (parse "//patient[pname='Betty']/insurance/policy#");
        Update.Delete_nodes (parse "//patient[pname='Betty']/insurance/@coverage") ]
  in
  List.iteri
    (fun i (c : System.delta_cost) ->
      Alcotest.(check bool) (Printf.sprintf "edit %d stayed incremental" i)
        false c.System.fell_back;
      Alcotest.(check bool) (Printf.sprintf "edit %d re-encrypted, not dropped" i)
        true (c.System.blocks_touched >= 1 && c.System.blocks_dropped = 0))
    costs;
  Alcotest.(check int) "Betty's insurance emptied" 0
    (List.length
       (Xpath.Eval.eval (System.doc sys2)
          (parse "//patient[pname='Betty']/insurance/*")));
  check_delta_equiv "emptied block" sys2 health_queries;
  (* Deleting a whole block subtree drops its block instead. *)
  let sys3, cost =
    System.apply_delta sys2
      (Update.Delete_nodes (parse "//patient[pname='Matt']/insurance"))
  in
  Alcotest.(check bool) "drop stayed incremental" false cost.System.fell_back;
  Alcotest.(check bool) "block dropped" true (cost.System.blocks_dropped >= 1);
  check_delta_equiv "dropped block" sys3 health_queries

(* Regression: inserting into an empty tag group — a childless element
   (the DSI gap is bounded by the parent interval, no siblings to lean
   on) and a tag no catalog has seen (a fresh OPESS catalog must
   spring up, not a patched one). *)
let delta_insert_into_empty_group () =
  let sys, _ = fresh_system () in
  let sys2, _ =
    System.apply_deltas sys
      [ Update.Delete_nodes (parse "//patient[pname='Betty']/insurance/policy#");
        Update.Delete_nodes (parse "//patient[pname='Betty']/insurance/@coverage") ]
  in
  (* Insert into the now-childless insurance element (inside a block). *)
  let sys3, cost =
    System.apply_delta sys2
      (Update.Insert_child
         { parent = parse "//patient[pname='Betty']/insurance";
           position = 0;
           subtree = Tree.leaf "policy#" "55555" })
  in
  Alcotest.(check bool) "childless insert stayed incremental" false
    cost.System.fell_back;
  Alcotest.(check bool) "touched the containing block" true
    (cost.System.blocks_touched >= 1);
  Alcotest.(check (list string)) "inserted leaf queryable" [ "55555" ]
    (List.filter_map
       (fun t -> match t with Tree.Element (_, [ Tree.Text v ]) -> Some v | _ -> None)
       (fst (System.evaluate sys3 (parse "//patient[pname='Betty']/insurance/policy#"))));
  check_delta_equiv "childless-element insert" sys3 health_queries;
  (* Insert a tag nobody indexed yet: the patch must build a fresh
     catalog under a fresh attribute id. *)
  let sys4, cost =
    System.apply_delta sys3
      (Update.Insert_child
         { parent = parse "//patient[pname='Matt']";
           position = 99;
           subtree = Tree.leaf "remark" "recheck" })
  in
  Alcotest.(check bool) "new-tag insert stayed incremental" false
    cost.System.fell_back;
  check_delta_equiv "new-tag insert" sys4 ("//remark" :: health_queries)

(* Random interleavings of incremental updates, queries and key
   rotations against ONE hosting: every query must agree with the
   plaintext oracle at the moment it runs, and no block's generation
   counter may ever decrease (a decrease would reuse a (key, nonce)
   pair).  Rotation re-keys the hosting — a fresh nonce space — so the
   tracker restarts there. *)
let delta_interleaving_agrees =
  QCheck.Test.make ~name:"update/query/rotate interleavings stay exact" ~count:10
    QCheck.(list_of_size Gen.(int_range 4 10) (int_range 0 1000))
    (fun ops ->
      let doc = Workload.Health.generate ~patients:12 () in
      let scs = Workload.Health.constraints () in
      let sys =
        ref (fst (System.setup ~master:"interleave" doc scs Secure.Scheme.Opt))
      in
      let gens : (int, int) Hashtbl.t = Hashtbl.create 32 in
      let check_gens () =
        List.iter
          (fun (b : Secure.Encrypt.block) ->
            (match Hashtbl.find_opt gens b.Secure.Encrypt.id with
             | Some g0 when b.Secure.Encrypt.generation < g0 ->
               failwith
                 (Printf.sprintf "block %d generation decreased %d -> %d"
                    b.Secure.Encrypt.id g0 b.Secure.Encrypt.generation)
             | _ -> ());
            Hashtbl.replace gens b.Secure.Encrypt.id b.Secure.Encrypt.generation)
          (System.db !sys).Secure.Encrypt.blocks
      in
      check_gens ();
      let target i =
        let pnames =
          List.filter_map
            (Doc.value (System.doc !sys))
            (Doc.nodes_with_tag (System.doc !sys) "pname")
        in
        List.nth pnames (i mod List.length pnames)
      in
      let queries =
        [| "//patient/pname"; "//insurance/policy#"; "//treat/doctor";
           "//patient[age>=40]/pname" |]
      in
      let agree q =
        let q = parse q in
        Helpers.norm_trees (System.reference !sys q)
        = Helpers.norm_trees (fst (System.evaluate !sys q))
      in
      let ok = ref true in
      List.iteri
        (fun i op ->
          match op mod 6 with
          | 0 ->
            let next, _ =
              System.apply_delta !sys
                (Update.Set_value
                   ( parse (Printf.sprintf "//patient[pname='%s']/age" (target op)),
                     string_of_int (20 + (op mod 60)) ))
            in
            sys := next;
            check_gens ()
          | 1 ->
            let next, _ =
              System.apply_delta !sys
                (Update.Set_value
                   ( parse
                       (Printf.sprintf "//patient[pname='%s']//policy#" (target op)),
                     Printf.sprintf "8%04d" (op mod 1000) ))
            in
            sys := next;
            check_gens ()
          | 2 ->
            let next, _ =
              System.apply_delta !sys
                (Update.Insert_child
                   { parent =
                       parse (Printf.sprintf "//patient[pname='%s']" (target op));
                     position = op mod 3;
                     subtree = Tree.leaf "remark" (Printf.sprintf "r%d" op) })
            in
            sys := next;
            check_gens ()
          | 3 ->
            if Doc.nodes_with_tag (System.doc !sys) "remark" <> [] then begin
              let next, _ =
                System.apply_delta !sys (Update.Delete_nodes (parse "//remark"))
              in
              sys := next;
              check_gens ()
            end
          | 4 -> ok := !ok && agree queries.(op mod Array.length queries)
          | _ ->
            let next, _ =
              System.rotate !sys
                ~new_master:(Printf.sprintf "interleave-%d-%d" i op)
            in
            sys := next;
            Hashtbl.reset gens;
            check_gens ())
        ops;
      !ok
      && Array.for_all agree queries)

(* --- DSI gap insertion --------------------------------------------- *)

let gap_insertion_fits =
  QCheck.Test.make ~name:"interval_in_gap stays inside and leaves slack" ~count:300
    QCheck.(triple small_string (pair (float_bound_exclusive 1.0) pos_float) small_nat)
    (fun (key, (lo, width), label) ->
      let width = Float.min (Float.max width 1e-6) 10.0 in
      let hi = lo +. width in
      let iv = Dsi.Assign.interval_in_gap ~key ~label ~lo ~hi in
      iv.Dsi.Interval.lo > lo && iv.Dsi.Interval.hi < hi
      && iv.Dsi.Interval.lo < iv.Dsi.Interval.hi)

let gap_insertion_between_siblings () =
  let doc = Workload.Health.doc () in
  let a = Dsi.Assign.assign ~key:"gap-test" doc in
  (* Insert between the two patients: the gap between their intervals
     absorbs a new interval without touching either. *)
  (match Doc.nodes_with_tag doc "patient" with
   | [ p1; p2 ] ->
     let i1 = Dsi.Assign.interval a p1 and i2 = Dsi.Assign.interval a p2 in
     let fresh =
       Dsi.Assign.interval_in_gap ~key:"gap-test" ~label:12345
         ~lo:i1.Dsi.Interval.hi ~hi:i2.Dsi.Interval.lo
     in
     Alcotest.(check bool) "after first" true (fresh.Dsi.Interval.lo > i1.Dsi.Interval.hi);
     Alcotest.(check bool) "before second" true (fresh.Dsi.Interval.hi < i2.Dsi.Interval.lo);
     (* And inside the shared parent. *)
     let root_iv = Dsi.Assign.interval a (Doc.root doc) in
     Alcotest.(check bool) "inside parent" true (Dsi.Interval.contains root_iv fresh)
   | _ -> Alcotest.fail "expected two patients");
  (* Degenerate gap rejected. *)
  Alcotest.(check bool) "empty gap rejected" true
    (match Dsi.Assign.interval_in_gap ~key:"k" ~label:0 ~lo:0.5 ~hi:0.5 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let random_edits_stay_consistent =
  QCheck.Test.make ~name:"random value edits keep the protocol exact" ~count:20
    QCheck.(pair (int_range 1 15) (int_range 20 90))
    (fun (patient_index, new_age) ->
      let doc = Workload.Health.generate ~patients:20 () in
      let scs = Workload.Health.constraints () in
      let sys, _ = System.setup doc scs Secure.Scheme.Opt in
      (* Pick an existing patient by position via its pname value. *)
      let pnames =
        List.filter_map
          (fun n -> Doc.value (System.doc sys) n)
          (Xpath.Eval.eval (System.doc sys) (parse "//pname"))
      in
      let target = List.nth pnames (patient_index mod List.length pnames) in
      let sys2, _ =
        System.update sys
          (Update.Set_value
             ( parse (Printf.sprintf "//patient[pname='%s']/age" target),
               string_of_int new_age ))
      in
      List.for_all
        (fun q ->
          let query = parse q in
          Helpers.norm_trees (System.reference sys2 query)
          = Helpers.norm_trees (fst (System.evaluate sys2 query)))
        [ Printf.sprintf "//patient[age=%d]/pname" new_age;
          "//patient[age>=50]/SSN"; "//pname" ])

let () =
  Alcotest.run "update"
    [ ( "edits",
        [ Alcotest.test_case "insert child" `Quick insert_child;
          Alcotest.test_case "delete nodes" `Quick delete_nodes;
          Alcotest.test_case "set value" `Quick set_value;
          Alcotest.test_case "invalid edits" `Quick invalid_edits;
          Alcotest.test_case "position clamping" `Quick insert_position_clamped;
          Alcotest.test_case "apply_all sequencing" `Quick apply_all_sees_earlier_edits ] );
      ( "rehost",
        [ Alcotest.test_case "secure re-host" `Quick update_rehosts_securely;
          Alcotest.test_case "value index refresh" `Quick update_changes_value_index ]
        @ List.map QCheck_alcotest.to_alcotest [ random_edits_stay_consistent ] );
      ( "delta",
        [ Alcotest.test_case "delete last node of a block" `Quick
            delta_delete_last_block_node;
          Alcotest.test_case "insert into an empty tag group" `Quick
            delta_insert_into_empty_group ]
        @ List.map QCheck_alcotest.to_alcotest [ delta_interleaving_agrees ] );
      ( "dsi gaps",
        Alcotest.test_case "between siblings" `Quick gap_insertion_between_siblings
        :: List.map QCheck_alcotest.to_alcotest [ gap_insertion_fits ] ) ]
