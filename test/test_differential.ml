(* Differential sweep: every evaluation path the library offers must
   return byte-identical answers on the same (document, query, scheme)
   triple.

   Paths compared, warm and cold:

   - [System.reference]       plaintext oracle (tree navigation)
   - [System.naive_evaluate]  ship-everything baseline
   - [System.evaluate]        the paper's protocol, 1-domain pool
   - [System.evaluate]        4-domain pool (parallel block decryption)
   - [System.evaluate_batch]  pooled lanes
   - [Engine.evaluate]        planner + caches, first (cold) and second
                              (warm) run

   The main sweep is fully deterministic — fixed document seeds, fixed
   query-generator seeds — and covers >= 200 (doc, scheme, query)
   cases; a qcheck property re-runs the core comparison on arbitrary
   documents on top. *)

module System = Secure.System
module Scheme = Secure.Scheme
module Sc = Secure.Sc

(* SCs over the tag alphabet Helpers.random_doc draws from, same shape
   as the secure-vs-reference property in test_system.ml. *)
let scs = [ Sc.parse "//item:(/name, /price)"; Sc.parse "//c" ]

(* Queries with guaranteed matches (Querygen) plus fixed shapes that
   exercise empty results, wildcards and value predicates. *)
let queries_for doc =
  let generated =
    List.concat_map
      (fun family ->
        Workload.Querygen.generate ~seed:71L doc family ~count:3)
      Workload.Querygen.all_families
  in
  let fixed =
    List.map Xpath.Parser.parse
      [ "//item/name"; "//b//c"; "//item[price>=20]/name";
        "//item[name='hello']"; "//nosuchtag"; "//*[name]" ]
  in
  let seen = Hashtbl.create 32 in
  List.filter
    (fun q ->
      let key = Xpath.Ast.to_string q in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    (generated @ fixed)

let cases = ref 0

let check_one ~label ~expected answers =
  incr cases;
  Alcotest.(check (list string)) label expected (Helpers.norm_trees answers)

let sweep_doc pool1 pool4 doc =
  let queries = queries_for doc in
  List.iter
    (fun kind ->
      let sys1, _ = System.setup ~master:"diff-master" ~pool:pool1 doc scs kind in
      let sys4, _ = System.setup ~master:"diff-master" ~pool:pool4 doc scs kind in
      let eng = Engine.create sys1 in
      let batch4 =
        System.evaluate_batch sys4 (Array.of_list queries)
      in
      List.iteri
        (fun i q ->
          let name path =
            Printf.sprintf "%s %s: %s" (Scheme.kind_to_string kind) path
              (Xpath.Ast.to_string q)
          in
          let expected = Helpers.norm_trees (System.reference sys1 q) in
          check_one ~label:(name "naive") ~expected
            (fst (System.naive_evaluate sys1 q));
          check_one ~label:(name "evaluate/pool1") ~expected
            (fst (System.evaluate sys1 q));
          check_one ~label:(name "evaluate/pool4") ~expected
            (fst (System.evaluate sys4 q));
          check_one ~label:(name "batch/pool4") ~expected (fst batch4.(i));
          check_one ~label:(name "engine/cold") ~expected (Engine.evaluate eng q);
          check_one ~label:(name "engine/warm") ~expected (Engine.evaluate eng q))
        queries)
    Scheme.all_kinds

let doc_seeds = [ 101L; 2002L; 30003L; 400004L ]

let deterministic_sweep () =
  let pool1 = Parallel.Pool.create ~domains:1 () in
  let pool4 = Parallel.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () ->
      Parallel.Pool.shutdown pool1;
      Parallel.Pool.shutdown pool4)
    (fun () ->
      List.iter
        (fun seed -> sweep_doc pool1 pool4 (Helpers.random_doc ~seed ()))
        doc_seeds);
  (* Each case is one (doc, scheme, query, path, cache-state)
     comparison; the floor below is on (doc, scheme, query) triples. *)
  Alcotest.(check bool)
    (Printf.sprintf "sweep covered >= 200 triples (got %d)" (!cases / 6))
    true
    (!cases / 6 >= 200)

(* ------------------------------------------------------------------ *)
(* Update equivalence: applying a sequence of deltas to a hosted
   system must be indistinguishable — answer for answer — from tearing
   everything down and re-hosting the mutated document from scratch.
   Every evaluation path is compared against the fresh-setup oracle,
   and the engine keeps its caches warm across the update (that is the
   point of the delta pipeline; test_engine pins the hit counters, here
   we pin the answers). *)

module Update = Secure.Update
module Tree = Xmlcore.Tree

(* Tag census of the current document: which tags can safely receive
   each edit kind.  [Set_value] needs every binding to be a leaf,
   [Insert_child] needs every binding to be an element, [Delete_nodes]
   works on anything but the root. *)
let census doc =
  let tbl = Hashtbl.create 16 in
  let bump tag leaf =
    let l, e = Option.value (Hashtbl.find_opt tbl tag) ~default:(0, 0) in
    Hashtbl.replace tbl tag (if leaf then (l + 1, e) else (l, e + 1))
  in
  Tree.fold
    (fun () t ->
      match t with
      | Tree.Element (tag, [ Tree.Text _ ]) -> bump tag true
      | Tree.Element (tag, _) -> bump tag false
      | Tree.Text _ -> ())
    ()
    (Xmlcore.Doc.to_tree doc);
  let pick pred =
    Hashtbl.fold
      (fun tag counts acc -> if pred tag counts then tag :: acc else acc)
      tbl []
    |> List.sort compare
  in
  let leaf_tags = pick (fun _ (l, e) -> l > 0 && e = 0) in
  let elem_tags = pick (fun t (l, e) -> e > 0 && l = 0 && t <> "root") in
  let any_tags = pick (fun t _ -> t <> "root") in
  leaf_tags, elem_tags, any_tags

(* Deterministic edit sequence: each step re-reads the evolved document
   so the chosen path is guaranteed to bind (Update raises
   Invalid_argument on dangling paths, and a raise here would be a test
   bug, not a library one). *)
let gen_edits ~seed doc n =
  let rng = Crypto.Prng.create seed in
  let choose xs = List.nth xs (Crypto.Prng.int rng (List.length xs)) in
  let rec go cur k acc =
    if k = 0 then List.rev acc
    else
      let leaf_tags, elem_tags, any_tags = census cur in
      let candidates =
        List.concat
          [ List.map
              (fun t ->
                Update.Set_value
                  ( Xpath.Parser.parse ("//" ^ t),
                    string_of_int (100 + Crypto.Prng.int rng 900) ))
              leaf_tags;
            List.map
              (fun t ->
                Update.Insert_child
                  {
                    parent = Xpath.Parser.parse ("//" ^ t);
                    position = Crypto.Prng.int rng 4;
                    subtree =
                      Tree.leaf "note" ("n" ^ string_of_int (n - k));
                  })
              elem_tags;
            (* Deletes last so value/structure edits dominate; still
               exercised whenever the rng lands on them. *)
            List.filteri (fun i _ -> i < 2)
              (List.map
                 (fun t -> Update.Delete_nodes (Xpath.Parser.parse ("//" ^ t)))
                 any_tags);
          ]
      in
      if candidates = [] then List.rev acc
      else
        let edit = choose candidates in
        go (Update.apply_all cur [ edit ]) (k - 1) (edit :: acc)
  in
  go doc n []

let update_queries =
  List.map Xpath.Parser.parse
    [ "//item/name"; "//c"; "//price"; "//item[price>=20]/name"; "//note";
      "//*[name]" ]

let update_cases = ref 0

(* One (doc, edit-sequence, scheme) cell: host, warm an engine, apply
   the deltas everywhere, then compare every path against a fresh
   re-host of the mutated plaintext. *)
let update_equiv_cell ~seed doc edits kind =
  let sys0, _ = System.setup ~master:"diff-update" doc scs kind in
  let eng = Engine.create sys0 in
  (* Warm the engine's plan/result/block caches on the pre-update
     document so the post-update runs cross a warm cache. *)
  List.iter (fun q -> ignore (Engine.evaluate eng q)) update_queries;
  let sysn, costs = System.apply_deltas sys0 edits in
  List.iter (fun e -> ignore (Engine.apply_delta eng e)) edits;
  ignore costs;
  let fresh, _ =
    System.setup ~master:(System.master sysn) (System.doc sysn)
      (System.constraints sysn) kind
  in
  let batch = System.evaluate_batch sysn (Array.of_list update_queries) in
  List.iteri
    (fun i q ->
      let name path =
        Printf.sprintf "update %Ld %s %s: %s" seed
          (Scheme.kind_to_string kind) path (Xpath.Ast.to_string q)
      in
      let expected = Helpers.norm_trees (System.reference fresh q) in
      incr update_cases;
      check_one ~label:(name "fresh/evaluate") ~expected
        (fst (System.evaluate fresh q));
      check_one ~label:(name "delta/naive") ~expected
        (fst (System.naive_evaluate sysn q));
      check_one ~label:(name "delta/evaluate") ~expected
        (fst (System.evaluate sysn q));
      check_one ~label:(name "delta/batch") ~expected (fst batch.(i));
      check_one ~label:(name "delta/engine-warm") ~expected
        (Engine.evaluate eng q))
    update_queries

let update_seeds = [ 7L; 77L; 777L ]

let update_equivalence_sweep () =
  List.iter
    (fun seed ->
      let doc = Helpers.random_doc ~seed () in
      List.iter
        (fun (eseed, len) ->
          let edits = gen_edits ~seed:eseed doc len in
          Alcotest.(check bool)
            (Printf.sprintf "seed %Ld produced edits" seed)
            true (edits <> []);
          List.iter
            (fun kind -> update_equiv_cell ~seed doc edits kind)
            Scheme.all_kinds)
        [ Int64.add seed 1L, 3; Int64.add seed 2L, 5 ])
    update_seeds;
  Alcotest.(check bool)
    (Printf.sprintf "update sweep covered >= 100 cases (got %d)" !update_cases)
    true
    (!update_cases >= 100)

(* Arbitrary documents on top of the fixed seeds: the same all-paths
   agreement, qcheck-generated.  Kept smaller per run (two schemes, the
   generated queries only) so the whole suite stays fast. *)
let arbitrary_doc_agreement =
  QCheck.Test.make ~name:"arbitrary docs: all paths agree" ~count:10
    Helpers.arbitrary_doc
    (fun doc ->
      List.for_all
        (fun kind ->
          let sys, _ = System.setup ~master:"diff-arb" doc scs kind in
          let eng = Engine.create sys in
          List.for_all
            (fun q ->
              let expected = Helpers.norm_trees (System.reference sys q) in
              Helpers.norm_trees (fst (System.naive_evaluate sys q)) = expected
              && Helpers.norm_trees (fst (System.evaluate sys q)) = expected
              && Helpers.norm_trees (Engine.evaluate eng q) = expected
              && Helpers.norm_trees (Engine.evaluate eng q) = expected)
            (Workload.Querygen.generate ~seed:17L doc Workload.Querygen.Qs
               ~count:4))
        [ Scheme.Opt; Scheme.Top ])

let () =
  Alcotest.run "differential"
    [ ( "sweep",
        [ Alcotest.test_case "deterministic all-paths sweep" `Slow
            deterministic_sweep ] );
      ( "updates",
        [ Alcotest.test_case "delta-vs-fresh-host equivalence sweep" `Slow
            update_equivalence_sweep ] );
      Helpers.qsuite "property" [ arbitrary_doc_agreement ] ]
