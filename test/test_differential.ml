(* Differential sweep: every evaluation path the library offers must
   return byte-identical answers on the same (document, query, scheme)
   triple.

   Paths compared, warm and cold:

   - [System.reference]       plaintext oracle (tree navigation)
   - [System.naive_evaluate]  ship-everything baseline
   - [System.evaluate]        the paper's protocol, 1-domain pool
   - [System.evaluate]        4-domain pool (parallel block decryption)
   - [System.evaluate_batch]  pooled lanes
   - [Engine.evaluate]        planner + caches, first (cold) and second
                              (warm) run

   The main sweep is fully deterministic — fixed document seeds, fixed
   query-generator seeds — and covers >= 200 (doc, scheme, query)
   cases; a qcheck property re-runs the core comparison on arbitrary
   documents on top. *)

module System = Secure.System
module Scheme = Secure.Scheme
module Sc = Secure.Sc

(* SCs over the tag alphabet Helpers.random_doc draws from, same shape
   as the secure-vs-reference property in test_system.ml. *)
let scs = [ Sc.parse "//item:(/name, /price)"; Sc.parse "//c" ]

(* Queries with guaranteed matches (Querygen) plus fixed shapes that
   exercise empty results, wildcards and value predicates. *)
let queries_for doc =
  let generated =
    List.concat_map
      (fun family ->
        Workload.Querygen.generate ~seed:71L doc family ~count:3)
      Workload.Querygen.all_families
  in
  let fixed =
    List.map Xpath.Parser.parse
      [ "//item/name"; "//b//c"; "//item[price>=20]/name";
        "//item[name='hello']"; "//nosuchtag"; "//*[name]" ]
  in
  let seen = Hashtbl.create 32 in
  List.filter
    (fun q ->
      let key = Xpath.Ast.to_string q in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    (generated @ fixed)

let cases = ref 0

let check_one ~label ~expected answers =
  incr cases;
  Alcotest.(check (list string)) label expected (Helpers.norm_trees answers)

let sweep_doc pool1 pool4 doc =
  let queries = queries_for doc in
  List.iter
    (fun kind ->
      let sys1, _ = System.setup ~master:"diff-master" ~pool:pool1 doc scs kind in
      let sys4, _ = System.setup ~master:"diff-master" ~pool:pool4 doc scs kind in
      let eng = Engine.create sys1 in
      let batch4 =
        System.evaluate_batch sys4 (Array.of_list queries)
      in
      List.iteri
        (fun i q ->
          let name path =
            Printf.sprintf "%s %s: %s" (Scheme.kind_to_string kind) path
              (Xpath.Ast.to_string q)
          in
          let expected = Helpers.norm_trees (System.reference sys1 q) in
          check_one ~label:(name "naive") ~expected
            (fst (System.naive_evaluate sys1 q));
          check_one ~label:(name "evaluate/pool1") ~expected
            (fst (System.evaluate sys1 q));
          check_one ~label:(name "evaluate/pool4") ~expected
            (fst (System.evaluate sys4 q));
          check_one ~label:(name "batch/pool4") ~expected (fst batch4.(i));
          check_one ~label:(name "engine/cold") ~expected (Engine.evaluate eng q);
          check_one ~label:(name "engine/warm") ~expected (Engine.evaluate eng q))
        queries)
    Scheme.all_kinds

let doc_seeds = [ 101L; 2002L; 30003L; 400004L ]

let deterministic_sweep () =
  let pool1 = Parallel.Pool.create ~domains:1 () in
  let pool4 = Parallel.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () ->
      Parallel.Pool.shutdown pool1;
      Parallel.Pool.shutdown pool4)
    (fun () ->
      List.iter
        (fun seed -> sweep_doc pool1 pool4 (Helpers.random_doc ~seed ()))
        doc_seeds);
  (* Each case is one (doc, scheme, query, path, cache-state)
     comparison; the floor below is on (doc, scheme, query) triples. *)
  Alcotest.(check bool)
    (Printf.sprintf "sweep covered >= 200 triples (got %d)" (!cases / 6))
    true
    (!cases / 6 >= 200)

(* Arbitrary documents on top of the fixed seeds: the same all-paths
   agreement, qcheck-generated.  Kept smaller per run (two schemes, the
   generated queries only) so the whole suite stays fast. *)
let arbitrary_doc_agreement =
  QCheck.Test.make ~name:"arbitrary docs: all paths agree" ~count:10
    Helpers.arbitrary_doc
    (fun doc ->
      List.for_all
        (fun kind ->
          let sys, _ = System.setup ~master:"diff-arb" doc scs kind in
          let eng = Engine.create sys in
          List.for_all
            (fun q ->
              let expected = Helpers.norm_trees (System.reference sys q) in
              Helpers.norm_trees (fst (System.naive_evaluate sys q)) = expected
              && Helpers.norm_trees (fst (System.evaluate sys q)) = expected
              && Helpers.norm_trees (Engine.evaluate eng q) = expected
              && Helpers.norm_trees (Engine.evaluate eng q) = expected)
            (Workload.Querygen.generate ~seed:17L doc Workload.Querygen.Qs
               ~count:4))
        [ Scheme.Opt; Scheme.Top ])

let () =
  Alcotest.run "differential"
    [ ( "sweep",
        [ Alcotest.test_case "deterministic all-paths sweep" `Slow
            deterministic_sweep ] );
      Helpers.qsuite "property" [ arbitrary_doc_agreement ] ]
