(* Chaos suite: the full protocol under injected transport faults.

   Acceptance property: for every fault profile in the sweep, every
   query either completes with byte-exact answers (same as the
   fault-free run) or fails with a typed [Gave_up] — never a crash,
   never a wrong answer.  [System.evaluate] additionally never fails:
   it degrades to the naive fallback and stays exact. *)

module System = Secure.System
module Session = Secure.Session
module Transport = Secure.Transport

let rates = [ 0.0; 0.05; 0.20 ]

let build () =
  let doc = Workload.Health.generate ~patients:20 () in
  let scs = Workload.Health.constraints () in
  fst (System.setup ~master:"chaos-master" doc scs Secure.Scheme.Opt)

(* >= 50 distinct seeded queries across the four Section 7.1 families. *)
let query_set sys =
  let doc = System.doc sys in
  let all =
    List.concat_map
      (fun family ->
        Workload.Querygen.generate ~seed:4242L doc family ~count:40)
      Workload.Querygen.all_families
  in
  let seen = Hashtbl.create 64 in
  let queries =
    List.filter
      (fun q ->
        let key = Xpath.Ast.to_string q in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      all
  in
  Alcotest.(check bool)
    (Printf.sprintf "workload offers >= 50 queries (got %d)" (List.length queries))
    true
    (List.length queries >= 50);
  queries

let profile ~drop ~corrupt ~duplicate =
  Transport.chaos ~drop ~flip:corrupt ~truncate:corrupt ~duplicate ()

let seed_of i j k = Int64.of_int (((i * 3) + j) * 3 + k + 1)

let sweep_exact_or_gave_up () =
  let sys = build () in
  let queries = query_set sys in
  let baseline =
    List.map (fun q -> Helpers.norm_trees (fst (System.evaluate sys q))) queries
  in
  let gave_up = ref 0 and succeeded = ref 0 in
  List.iteri
    (fun i drop ->
      List.iteri
        (fun j corrupt ->
          List.iteri
            (fun k duplicate ->
              let faulty =
                System.with_faults
                  ~profile:(profile ~drop ~corrupt ~duplicate)
                  ~seed:(seed_of i j k) sys
              in
              List.iter2
                (fun q expected ->
                  match System.try_evaluate faulty q with
                  | Ok (answers, cost) ->
                    incr succeeded;
                    Alcotest.(check bool)
                      (Printf.sprintf "exact under drop=%.2f corrupt=%.2f dup=%.2f: %s"
                         drop corrupt duplicate (Xpath.Ast.to_string q))
                      true
                      (Helpers.norm_trees answers = expected);
                    Alcotest.(check bool) "attempts >= 1" true
                      (cost.System.attempts >= 1);
                    Alcotest.(check bool) "strict path never degrades" false
                      cost.System.degraded
                  | Error (Session.Gave_up _) -> incr gave_up
                  | Error e ->
                    Alcotest.failf "non-terminal error escaped: %s"
                      (Session.error_to_string e))
                queries baseline)
            rates)
        rates)
    rates;
  (* The calm corner of the sweep alone guarantees successes; at these
     rates with 4 attempts the vast majority must go through. *)
  Alcotest.(check bool) "most calls succeed" true (!succeeded > 10 * !gave_up)

let clean_profile_has_no_overhead () =
  let sys = build () in
  let faulty =
    System.with_faults ~profile:(profile ~drop:0.0 ~corrupt:0.0 ~duplicate:0.0)
      ~seed:7L sys
  in
  let q = Xpath.Parser.parse "//patient[age>=50]/pname" in
  match System.try_evaluate faulty q with
  | Error e -> Alcotest.failf "calm link failed: %s" (Session.error_to_string e)
  | Ok (_, cost) ->
    Alcotest.(check int) "one attempt" 1 cost.System.attempts;
    Alcotest.(check int) "no retransmits" 0 cost.System.retransmitted_bytes;
    Alcotest.(check int) "no faults" 0 cost.System.faults_absorbed

let evaluate_is_total_and_exact () =
  (* A near-dead link with a tight retry budget: [evaluate] must still
     answer every query exactly, flagging degradation in the cost. *)
  let sys = build () in
  let queries = query_set sys in
  let session = { Session.default_config with Session.max_attempts = 2 } in
  let faulty =
    System.with_faults ~session
      ~profile:(Transport.chaos ~drop:0.9 ~flip:0.4 ())
      ~seed:13L sys
  in
  let degraded = ref 0 in
  List.iter
    (fun q ->
      let expected = Helpers.norm_trees (fst (System.evaluate sys q)) in
      let answers, cost = System.evaluate faulty q in
      if cost.System.degraded then incr degraded;
      Alcotest.(check bool)
        ("total evaluation stays exact: " ^ Xpath.Ast.to_string q)
        true
        (Helpers.norm_trees answers = expected))
    queries;
  Alcotest.(check bool) "degradation exercised" true (!degraded > 0)

let union_and_session_stats () =
  let sys = build () in
  let faulty =
    System.with_faults ~profile:(profile ~drop:0.20 ~corrupt:0.05 ~duplicate:0.20)
      ~seed:21L sys
  in
  let union =
    Xpath.Parser.parse_union "//patient/pname | //treat/doctor"
  in
  let expected = Helpers.norm_trees (fst (System.evaluate_union sys union)) in
  (* Strict union either matches or gives up... *)
  (match System.try_evaluate_union faulty union with
   | Ok (answers, _) ->
     Alcotest.(check bool) "strict union exact" true
       (Helpers.norm_trees answers = expected)
   | Error (Session.Gave_up _) -> ()
   | Error e ->
     Alcotest.failf "unexpected union error %s" (Session.error_to_string e));
  (* ...total union always matches. *)
  let answers, _ = System.evaluate_union faulty union in
  Alcotest.(check bool) "total union exact" true
    (Helpers.norm_trees answers = expected);
  (* Retries showed up in the layered statistics. *)
  let s = System.session_stats faulty in
  Alcotest.(check bool) "session saw the calls" true (s.Session.calls > 0);
  let t = System.transport_stats faulty in
  Alcotest.(check bool) "transport counted exchanges" true
    (t.Transport.exchanges >= s.Session.attempts);
  let e = System.endpoint_stats faulty in
  Alcotest.(check bool) "endpoint served or replayed" true
    (e.Session.served + e.Session.replayed > 0)

let replay_linkability_audited () =
  (* Duplicates reach the endpoint as replay-cache hits; feeding them to
     the audit log quantifies the retransmit-linkability channel. *)
  let sys = build () in
  let faulty =
    System.with_faults ~profile:(profile ~drop:0.3 ~corrupt:0.0 ~duplicate:0.5)
      ~seed:3L sys
  in
  let q = Xpath.Parser.parse "//patient/pname" in
  for _ = 1 to 20 do
    ignore (System.evaluate faulty q)
  done;
  let e = System.endpoint_stats faulty in
  let audit = Secure.Audit.create () in
  Secure.Audit.record_replays audit e.Session.replayed;
  let a = Secure.Audit.analyze audit in
  Alcotest.(check int) "replays flow into the audit analysis"
    e.Session.replayed a.Secure.Audit.replayed_frames;
  Alcotest.(check bool) "schedule produced replays" true (e.Session.replayed > 0)

let () =
  Alcotest.run "chaos"
    [ ( "sweep",
        [ Alcotest.test_case "exact or Gave_up" `Quick sweep_exact_or_gave_up;
          Alcotest.test_case "calm corner clean" `Quick clean_profile_has_no_overhead ] );
      ( "degradation",
        [ Alcotest.test_case "evaluate total and exact" `Quick evaluate_is_total_and_exact;
          Alcotest.test_case "union + stats" `Quick union_and_session_stats;
          Alcotest.test_case "replay audit" `Quick replay_linkability_audited ] ) ]
