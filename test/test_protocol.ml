(* Wire protocol tests: request/response codecs. *)

module Squery = Secure.Squery
module Protocol = Secure.Protocol
module System = Secure.System

let translate_all () =
  (* Translate a battery of real queries and roundtrip each request. *)
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Secure.Scheme.Opt in
  List.iter
    (fun q ->
      let squery = Secure.Client.translate (System.client sys) (Xpath.Parser.parse q) in
      let roundtripped = Protocol.roundtrip_request squery in
      Alcotest.(check string) q (Squery.to_string squery)
        (Squery.to_string roundtripped))
    [ "//patient"; "//patient[pname='Betty']//disease"; "//insurance/policy#";
      "//patient[.//insurance//@coverage>='10000']//SSN"; "//*";
      "//disease/.."; "//pname/following-sibling::SSN";
      "//treat[disease='flu'][doctor!='Smith']/doctor";
      "/hospital/patient/age" ]

let response_roundtrip () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Secure.Scheme.Opt in
  let squery =
    Secure.Client.translate (System.client sys)
      (Xpath.Parser.parse "//patient[pname='Betty']//disease")
  in
  let response = Secure.Server.answer (System.server sys) squery in
  let rt = Protocol.roundtrip_response response in
  Alcotest.(check int) "block count"
    (List.length response.Secure.Server.blocks)
    (List.length rt.Secure.Server.blocks);
  List.iter2
    (fun a b ->
      Alcotest.(check int) "id" a.Secure.Encrypt.id b.Secure.Encrypt.id;
      Alcotest.(check string) "ciphertext" a.Secure.Encrypt.ciphertext
        b.Secure.Encrypt.ciphertext;
      Alcotest.(check bool) "decoy flag" a.Secure.Encrypt.has_decoy
        b.Secure.Encrypt.has_decoy)
    response.Secure.Server.blocks rt.Secure.Server.blocks;
  Alcotest.(check int) "stats" response.Secure.Server.btree_hits
    rt.Secure.Server.btree_hits

let malformed_rejected () =
  let rejects data =
    match Protocol.decode_request data with
    | _ -> Alcotest.failf "%S should be rejected" data
    | exception Protocol.Malformed _ -> ()
  in
  rejects "";
  rejects "\255\255\255\255\255\255\255\255";
  rejects (String.make 100 '\000' ^ "x");
  (* Valid prefix with trailing garbage. *)
  let good =
    Protocol.encode_request
      { Squery.absolute = true;
        steps =
          [ { Squery.axis = Xpath.Ast.Child;
              test = Squery.Tokens [ Squery.Clear "a" ];
              predicates = [] } ] }
  in
  rejects (good ^ "junk");
  (match Protocol.decode_response "\001" with
   | _ -> Alcotest.fail "bad response accepted"
   | exception Protocol.Malformed _ -> ())

(* --- Adversarial-bytes fuzzing ------------------------------------- *)

(* The wire decoders face attacker-controlled bytes; the contract is
   that the only exception they may raise is [Protocol.Malformed] — no
   Invalid_argument, Failure, Stack_overflow or out-of-bounds escape.
   Seeded, so every run covers the same corpus. *)

let decode_only_malformed ~what decode data =
  match decode data with
  | _ -> ()
  | exception Protocol.Malformed _ -> ()
  | exception e ->
    Alcotest.failf "%s on %d bytes leaked %s" what (String.length data)
      (Printexc.to_string e)

let fuzz_decoders () =
  let prng = Crypto.Prng.create 0xF022EDL in
  let random_buffer () =
    String.init (Crypto.Prng.int prng 300) (fun _ ->
        Char.chr (Crypto.Prng.int prng 256))
  in
  (* Valid encodings to truncate and bit-flip. *)
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Secure.Scheme.Opt in
  let requests =
    List.map
      (fun q ->
        Protocol.encode_request
          (Secure.Client.translate (System.client sys) (Xpath.Parser.parse q)))
      [ "//patient[pname='Betty']//disease"; "//insurance/policy#";
        "//treat[disease='flu'][doctor!='Smith']/doctor"; "//*" ]
  in
  let responses =
    List.map
      (fun q ->
        Protocol.encode_response
          (Secure.Server.answer (System.server sys)
             (Secure.Client.translate (System.client sys) (Xpath.Parser.parse q))))
      [ "//patient"; "//disease" ]
  in
  let truncated data =
    String.sub data 0 (Crypto.Prng.int prng (String.length data))
  in
  let flipped data =
    let b = Bytes.of_string data in
    let i = Crypto.Prng.int prng (Bytes.length b) in
    let bit = 1 lsl Crypto.Prng.int prng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
    Bytes.to_string b
  in
  for _ = 1 to 2000 do
    let buf = random_buffer () in
    decode_only_malformed ~what:"decode_request" Protocol.decode_request buf;
    decode_only_malformed ~what:"decode_any" Protocol.decode_any buf;
    decode_only_malformed ~what:"decode_response" Protocol.decode_response buf
  done;
  (* The versioned variants under the same truncate/flip battery. *)
  List.iter
    (fun data ->
      for _ = 1 to 500 do
        decode_only_malformed ~what:"decode_any (truncated)"
          Protocol.decode_any (truncated data);
        decode_only_malformed ~what:"decode_any (flipped)" Protocol.decode_any
          (flipped data)
      done)
    [ Protocol.encode_fetch [ 1; 2; 3; 4 ];
      Protocol.encode_padded
        (Secure.Client.translate (System.client sys)
           (Xpath.Parser.parse "//patient//disease"))
        [ 9; 11; 13 ] ];
  List.iter
    (fun data ->
      for _ = 1 to 500 do
        decode_only_malformed ~what:"decode_request (truncated)"
          Protocol.decode_request (truncated data);
        decode_only_malformed ~what:"decode_request (flipped)"
          Protocol.decode_request (flipped data)
      done)
    requests;
  List.iter
    (fun data ->
      for _ = 1 to 200 do
        decode_only_malformed ~what:"decode_response (truncated)"
          Protocol.decode_response (truncated data);
        decode_only_malformed ~what:"decode_response (flipped)"
          Protocol.decode_response (flipped data)
      done)
    responses

let deep_nesting_rejected () =
  (* A hand-built predicate tower deeper than any honest translation:
     the depth guard must reject it with Malformed, not blow the
     stack.  Encoding: P_not^n wrapping an Exists of an empty relative
     path, hung off a single child step. *)
  let b = Buffer.create 4096 in
  let module W = Secure.Codec.W in
  W.bool b false;            (* relative *)
  W.int b 1;                 (* one step *)
  W.int b 0;                 (* Child axis *)
  W.bool b true;             (* Any test *)
  W.int b 1;                 (* one predicate *)
  for _ = 1 to 10_000 do
    W.int b 4                (* P_not *)
  done;
  W.int b 0;                 (* Exists *)
  W.bool b false;            (* relative path *)
  W.int b 0;                 (* no steps *)
  (match Protocol.decode_request (Buffer.contents b) with
   | _ -> Alcotest.fail "unbounded nesting accepted"
   | exception Protocol.Malformed m ->
     Alcotest.(check string) "depth guard fired" "nesting too deep" m);
  (* An implausible list count (larger than the remaining buffer) is
     rejected up front rather than attempted. *)
  let b = Buffer.create 16 in
  W.bool b false;
  W.int b 1_000_000;
  match Protocol.decode_request (Buffer.contents b) with
  | _ -> Alcotest.fail "implausible count accepted"
  | exception Protocol.Malformed _ -> ()

(* Random squery generator for the roundtrip property. *)
let squery_gen =
  let open QCheck.Gen in
  let token =
    oneof
      [ map (fun s -> Squery.Clear ("t" ^ s)) (string_size (int_range 0 5));
        map (fun s -> Squery.Enc s) (string_size (int_range 1 16)) ]
  in
  let test =
    oneof
      [ return Squery.Any;
        map (fun ts -> Squery.Tokens ts) (list_size (int_range 1 3) token) ]
  in
  let axis =
    oneofl
      [ Xpath.Ast.Child; Xpath.Ast.Descendant_or_self; Xpath.Ast.Parent;
        Xpath.Ast.Following_sibling ]
  in
  let rec path depth =
    let* absolute = bool in
    let* steps = list_size (int_range 1 3) (step depth) in
    return { Squery.absolute; steps }
  and step depth =
    let* axis = axis in
    let* test = test in
    let* predicates =
      if depth = 0 then return []
      else list_size (int_range 0 2) (predicate (depth - 1))
    in
    return { Squery.axis; test; predicates }
  and predicate depth =
    let* choice = int_range 0 (if depth = 0 then 1 else 4) in
    match choice with
    | 0 ->
      let* q = path depth in
      return (Squery.Exists q)
    | 1 ->
      let* q = path depth in
      let* ranges =
        list_size (int_range 0 2)
          (map2 (fun a b -> Int64.of_int (min a b), Int64.of_int (max a b)) nat nat)
      in
      let* known = bool in
      return
        (Squery.Value (q, if known then Squery.Ranges ranges else Squery.Unknown))
    | 2 ->
      let* a = predicate (depth - 1) in
      let* b = predicate (depth - 1) in
      return (Squery.P_and (a, b))
    | 3 ->
      let* a = predicate (depth - 1) in
      let* b = predicate (depth - 1) in
      return (Squery.P_or (a, b))
    | _ ->
      let* a = predicate (depth - 1) in
      return (Squery.P_not a)
  in
  path 2

let request_roundtrip_prop =
  QCheck.Test.make ~name:"encode/decode request = id" ~count:300
    (QCheck.make ~print:Squery.to_string squery_gen)
    (fun q -> Squery.to_string (Protocol.roundtrip_request q) = Squery.to_string q)

(* --- Versioned request variants (Fetch / Padded) -------------------- *)

let variants_roundtrip () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Secure.Scheme.Opt in
  let squery =
    Secure.Client.translate (System.client sys)
      (Xpath.Parser.parse "//patient[pname='Betty']//disease")
  in
  (* Honest queries keep decoding as Query — the variant magic bytes
     are unreachable from the legacy encoding's first byte. *)
  (match Protocol.decode_any (Protocol.encode_request squery) with
   | Protocol.Query q ->
     Alcotest.(check string) "query survives" (Squery.to_string squery)
       (Squery.to_string q)
   | Protocol.Fetch _ | Protocol.Padded _ ->
     Alcotest.fail "honest request must decode as Query");
  (match Protocol.decode_any (Protocol.encode_fetch [ 3; 1; 4; 1; 5 ]) with
   | Protocol.Fetch ids ->
     Alcotest.(check (list int)) "fetch ids survive" [ 3; 1; 4; 1; 5 ] ids
   | Protocol.Query _ | Protocol.Padded _ ->
     Alcotest.fail "fetch must decode as Fetch");
  (match Protocol.decode_any (Protocol.encode_padded squery [ 9; 2 ]) with
   | Protocol.Padded (q, extra) ->
     Alcotest.(check string) "padded query survives" (Squery.to_string squery)
       (Squery.to_string q);
     Alcotest.(check (list int)) "envelope survives" [ 9; 2 ] extra
   | Protocol.Query _ | Protocol.Fetch _ ->
     Alcotest.fail "padded must decode as Padded");
  match Protocol.decode_any "" with
  | _ -> Alcotest.fail "empty request must be rejected"
  | exception Protocol.Malformed _ -> ()

let () =
  Alcotest.run "protocol"
    [ ( "requests",
        [ Alcotest.test_case "real queries roundtrip" `Quick translate_all;
          Alcotest.test_case "malformed rejected" `Quick malformed_rejected;
          Alcotest.test_case "fetch/padded variants roundtrip" `Quick
            variants_roundtrip ]
        @ List.map QCheck_alcotest.to_alcotest [ request_roundtrip_prop ] );
      ("responses", [ Alcotest.test_case "roundtrip" `Quick response_roundtrip ]);
      ( "adversarial",
        [ Alcotest.test_case "fuzzed buffers" `Quick fuzz_decoders;
          Alcotest.test_case "deep nesting" `Quick deep_nesting_rejected ] ) ]
