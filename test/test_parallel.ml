(* The domain pool's contract (Pool.map is observably Array.map:
   chunk coverage, deterministic merge and exception choice, nested
   calls, reusability after failure) and the system-level determinism
   it promises: hosting, evaluation and batches are byte-identical
   with and without a pool, across schemes and after update/rotate. *)

module Pool = Parallel.Pool
module Doc = Xmlcore.Doc
module Printer = Xmlcore.Printer
module System = Secure.System
module Scheme = Secure.Scheme
module Encrypt = Secure.Encrypt

let with_pool ?(domains = 4) f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* --- Pool properties ------------------------------------------------ *)

let sizes = [ 0; 1; 2; 3; 7; 64; 1000 ]

let map_matches_sequential () =
  with_pool (fun pool ->
      List.iter
        (fun n ->
          let xs = Array.init n (fun i -> i) in
          let f x = (x * 7) mod 13 in
          Alcotest.(check (array int))
            (Printf.sprintf "map n=%d" n)
            (Array.map f xs) (Pool.map pool f xs))
        sizes)

let mapi_covers_every_index () =
  with_pool (fun pool ->
      List.iter
        (fun n ->
          (* Inputs are all zero, so the output IS the index each chunk
             claimed: any gap, overlap or misordering shows up here. *)
          let xs = Array.make n 0 in
          Alcotest.(check (array int))
            (Printf.sprintf "mapi n=%d" n)
            (Array.init n (fun i -> i))
            (Pool.mapi pool (fun i x -> i + x) xs))
        sizes)

let map_list_preserves_order () =
  with_pool (fun pool ->
      let xs = List.init 100 string_of_int in
      Alcotest.(check (list string)) "map_list" xs (Pool.map_list pool Fun.id xs))

let map_reduce_sums () =
  with_pool (fun pool ->
      List.iter
        (fun n ->
          let xs = Array.init n (fun i -> i + 1) in
          Alcotest.(check int)
            (Printf.sprintf "sum n=%d" n)
            (n * (n + 1) / 2)
            (Pool.map_reduce pool ~map:Fun.id ~combine:( + ) ~init:0 xs))
        sizes)

exception Boom of int

let exception_is_sequential_choice () =
  with_pool (fun pool ->
      let xs = Array.init 1000 (fun i -> i) in
      (match
         Pool.map pool (fun i -> if i = 37 || i = 503 then raise (Boom i) else i) xs
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        (* chunks are contiguous and merged by index, so the surviving
           exception is the one sequential execution would raise *)
        Alcotest.(check int) "lowest failing element wins" 37 i);
      (* every worker rejoined: the pool is still fully usable *)
      Alcotest.(check (array int)) "pool survives the exception"
        (Array.map succ xs) (Pool.map pool succ xs))

let nested_map_does_not_deadlock () =
  with_pool (fun pool ->
      let inner = Array.init 8 (fun j -> j) in
      let f i = Array.fold_left ( + ) 0 (Pool.map pool (fun j -> i + j) inner) in
      let xs = Array.init 64 (fun i -> i) in
      Alcotest.(check (array int)) "nested map" (Array.map f xs)
        (Pool.map pool f xs))

let degenerate_pools_run_sequentially () =
  let one = Pool.create ~domains:1 () in
  Alcotest.(check int) "size 1" 1 (Pool.size one);
  Alcotest.(check (array int)) "size-1 pool maps"
    [| 2; 3; 4 |]
    (Pool.map one succ [| 1; 2; 3 |]);
  Pool.shutdown one;
  with_pool (fun pool ->
      Pool.shutdown pool;
      Alcotest.(check (array int)) "map after shutdown degrades, not crashes"
        [| 2; 3; 4 |]
        (Pool.map pool succ [| 1; 2; 3 |]));
  Alcotest.(check bool) "recommended_domains is positive" true
    (Pool.recommended_domains () >= 1)

(* --- Pathological loads --------------------------------------------- *)

let zero_work_batches () =
  with_pool (fun pool ->
      (* Empty and all-trivial batches, interleaved and repeated: the
         chunker must neither divide by zero nor leave a worker parked. *)
      for _ = 1 to 50 do
        Alcotest.(check (array int)) "empty batch" [||] (Pool.map pool succ [||]);
        Alcotest.(check (array unit)) "unit batch" [| () |]
          (Pool.map pool ignore [| 0 |]);
        Alcotest.(check int) "empty reduce" 0
          (Pool.map_reduce pool ~map:Fun.id ~combine:( + ) ~init:0 [||])
      done;
      Alcotest.(check bool) "pool idle afterwards" false (Pool.busy pool))

let one_hog_does_not_starve_the_batch () =
  with_pool (fun pool ->
      (* One element burns vastly more work than the rest (a tenant
         hogging its lane).  Work-stealing must let the other workers
         drain every light chunk, and the merge must still be by index. *)
      let spin n =
        let acc = ref 0 in
        for i = 1 to n do
          acc := (!acc + i) mod 9973
        done;
        !acc
      in
      let xs = Array.init 256 (fun i -> if i = 17 then 2_000_000 else 10) in
      let expected = Array.map spin xs in
      Alcotest.(check (array int)) "hog batch merges by index" expected
        (Pool.map pool spin xs))

let failed_lane_does_not_poison_later_submissions () =
  with_pool (fun pool ->
      (* Alternate failing and clean batches many times: every failure
         surfaces as the sequential-choice exception, every following
         submission runs on a fully rejoined pool. *)
      let xs = Array.init 500 (fun i -> i) in
      for round = 1 to 10 do
        (match
           Pool.map pool (fun i -> if i mod 100 = 3 then raise (Boom i) else i) xs
         with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom i ->
          Alcotest.(check int)
            (Printf.sprintf "round %d raises the lowest index" round)
            3 i);
        Alcotest.(check (array int))
          (Printf.sprintf "round %d clean submission" round)
          (Array.map succ xs) (Pool.map pool succ xs)
      done)

let busy_is_advisory_and_accurate () =
  with_pool (fun pool ->
      Alcotest.(check bool) "idle pool not busy" false (Pool.busy pool);
      (* Observed from inside a running map, the pool reports busy: the
         serving tier keys its Overloaded backpressure off this. *)
      let seen = Pool.map pool (fun _ -> Pool.busy pool) [| 0; 1; 2; 3 |] in
      Alcotest.(check bool) "busy while mapping" true
        (Array.for_all Fun.id seen);
      Alcotest.(check bool) "idle again" false (Pool.busy pool))

(* --- Parallel/sequential determinism ------------------------------- *)

let serialize trees = List.map Printer.tree_to_string trees

let ciphertexts sys =
  List.map (fun b -> b.Encrypt.ciphertext) (System.db sys).Encrypt.blocks

let query_strings =
  [ "//patient"; "//patient/pname"; "//SSN";
    "//patient[age>=40]/pname"; "//treat[disease='leukemia']/doctor";
    "//patient[.//disease='diarrhea']/pname"; "//nonexistent" ]

let queries () = List.map Xpath.Parser.parse query_strings

let check_same_system label seq par =
  Alcotest.(check (list string))
    (label ^ ": ciphertext bytes")
    (ciphertexts seq) (ciphertexts par);
  Alcotest.(check string)
    (label ^ ": skeleton")
    (Printer.tree_to_string (System.db seq).Encrypt.skeleton)
    (Printer.tree_to_string (System.db par).Encrypt.skeleton);
  List.iter2
    (fun q qs ->
      let a_seq, c_seq = System.evaluate seq q in
      let a_par, c_par = System.evaluate par q in
      Alcotest.(check (list string))
        (label ^ ": answers " ^ qs)
        (serialize a_seq) (serialize a_par);
      Alcotest.(check int)
        (label ^ ": wire bytes " ^ qs)
        c_seq.System.transmit_bytes c_par.System.transmit_bytes;
      Alcotest.(check int)
        (label ^ ": blocks " ^ qs)
        c_seq.System.blocks_returned c_par.System.blocks_returned)
    (queries ()) query_strings

let hosting_is_deterministic_across_schemes () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  with_pool (fun pool ->
      List.iter
        (fun kind ->
          let seq, _ = System.setup doc scs kind in
          let par, _ = System.setup ~pool doc scs kind in
          check_same_system (Scheme.kind_to_string kind) seq par)
        Scheme.all_kinds)

let batch_matches_one_by_one () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  with_pool (fun pool ->
      let par, _ = System.setup ~pool doc scs Scheme.Opt in
      let qs = Array.of_list (queries ()) in
      let batch = System.evaluate_batch par qs in
      Alcotest.(check int) "one result per query" (Array.length qs)
        (Array.length batch);
      Array.iteri
        (fun i (answers, cost) ->
          let expected, ecost = System.evaluate par qs.(i) in
          let label = List.nth query_strings i in
          Alcotest.(check (list string))
            ("batch answers " ^ label)
            (serialize expected) (serialize answers);
          Alcotest.(check int)
            ("batch wire bytes " ^ label)
            ecost.System.transmit_bytes cost.System.transmit_bytes;
          Alcotest.(check int)
            ("batch blocks " ^ label)
            ecost.System.blocks_returned cost.System.blocks_returned;
          Alcotest.(check bool) ("batch not degraded " ^ label) false
            cost.System.degraded)
        batch)

let engine_batch_matches_engine () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  with_pool (fun pool ->
      let par, _ = System.setup ~pool doc scs Scheme.Opt in
      let engine = Engine.create par in
      let qs = Array.of_list (queries ()) in
      let batch = Engine.evaluate_batch engine qs in
      Array.iteri
        (fun i (answers, _) ->
          let expected = Engine.evaluate engine qs.(i) in
          Alcotest.(check (list string))
            ("engine batch " ^ List.nth query_strings i)
            (serialize expected) (serialize answers))
        batch)

let determinism_survives_update_and_rotate () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let edit =
    Secure.Update.Set_value
      (Xpath.Parser.parse "//patient[pname='Matt']/age", "41")
  in
  with_pool (fun pool ->
      let seq, _ = System.setup doc scs Scheme.Opt in
      let par, _ = System.setup ~pool doc scs Scheme.Opt in
      let seq, _ = System.update seq edit in
      let par, _ = System.update par edit in
      Alcotest.(check bool) "updated system keeps the pool" true
        (System.pool par <> None);
      check_same_system "after update" seq par;
      let seq, _ = System.rotate seq ~new_master:"rotated-master" in
      let par, _ = System.rotate par ~new_master:"rotated-master" in
      check_same_system "after rotate" seq par)

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "map = Array.map" `Quick map_matches_sequential;
          Alcotest.test_case "chunking covers all indices" `Quick
            mapi_covers_every_index;
          Alcotest.test_case "map_list order" `Quick map_list_preserves_order;
          Alcotest.test_case "map_reduce" `Quick map_reduce_sums;
          Alcotest.test_case "exceptions rejoin the pool" `Quick
            exception_is_sequential_choice;
          Alcotest.test_case "nested map no deadlock" `Quick
            nested_map_does_not_deadlock;
          Alcotest.test_case "degenerate pools" `Quick
            degenerate_pools_run_sequentially ] );
      ( "pathological",
        [ Alcotest.test_case "zero-work batches" `Quick zero_work_batches;
          Alcotest.test_case "one hog does not starve" `Quick
            one_hog_does_not_starve_the_batch;
          Alcotest.test_case "failed lane does not poison" `Quick
            failed_lane_does_not_poison_later_submissions;
          Alcotest.test_case "busy flag" `Quick busy_is_advisory_and_accurate ] );
      ( "determinism",
        [ Alcotest.test_case "hosting across schemes" `Quick
            hosting_is_deterministic_across_schemes;
          Alcotest.test_case "batch = one-by-one" `Quick batch_matches_one_by_one;
          Alcotest.test_case "engine batch" `Quick engine_batch_matches_engine;
          Alcotest.test_case "after update and rotate" `Quick
            determinism_survives_update_and_rotate ] ) ]
