(* Serving-tier tests: the Limiter/Breaker state machines, admission
   control and typed backpressure, and the chaos isolation gate — N
   tenants under seeded faults targeting one of them, with the healthy
   tenants byte-identical to their single-tenant references, zero
   cross-tenant ledger/cache entries, a breaker that trips and recovers
   through its probe, and Overloaded rejections under offered overload. *)

module System = Secure.System
module Session = Secure.Session
module Transport = Secure.Transport
module Pool = Parallel.Pool
module Limiter = Serve.Limiter
module Breaker = Serve.Breaker

let counter_value srv name =
  Obs.Metric.value (Obs.Metric.counter (Serve.registry srv) name)

(* --- Limiter -------------------------------------------------------- *)

let limiter_bucket_shape () =
  let l = Limiter.create ~capacity:3 ~refill:2 in
  Alcotest.(check int) "starts full" 3 (Limiter.tokens l);
  Alcotest.(check bool) "take 1" true (Limiter.try_take l);
  Alcotest.(check bool) "take 2" true (Limiter.try_take l);
  Alcotest.(check bool) "take 3" true (Limiter.try_take l);
  Alcotest.(check bool) "empty refuses" false (Limiter.try_take l);
  Limiter.refill l;
  Alcotest.(check int) "refill adds the per-round quota" 2 (Limiter.tokens l);
  Limiter.refill l;
  Limiter.refill l;
  Alcotest.(check int) "refill clamps to capacity" 3 (Limiter.tokens l);
  ignore (Limiter.try_take l);
  Limiter.reset l;
  Alcotest.(check int) "reset restores a full bucket" 3 (Limiter.tokens l);
  (match Limiter.create ~capacity:1 ~refill:0 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "refill 0 must be rejected");
  match Limiter.create ~capacity:1 ~refill:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity < refill must be rejected"

(* --- Breaker -------------------------------------------------------- *)

let breaker_lifecycle () =
  let b = Breaker.create ~threshold:3 ~cooldown:2 in
  Alcotest.(check bool) "closed admits" true (Breaker.admits b);
  Alcotest.(check bool) "failure 1 no trip" false (Breaker.on_failure b);
  Alcotest.(check bool) "failure 2 no trip" false (Breaker.on_failure b);
  (* a success resets the consecutive count *)
  Breaker.on_success b;
  Alcotest.(check bool) "still no trip after reset" false (Breaker.on_failure b);
  Alcotest.(check bool) "..." false (Breaker.on_failure b);
  Alcotest.(check bool) "third consecutive failure trips" true
    (Breaker.on_failure b);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  Alcotest.(check bool) "open rejects" false (Breaker.admits b);
  Breaker.on_round b;
  Alcotest.(check bool) "still cooling" false (Breaker.admits b);
  Breaker.on_round b;
  Alcotest.(check bool) "half-open admits" true (Breaker.admits b);
  Alcotest.(check bool) "half-open is the probe state" true (Breaker.probing b);
  (* failed probe re-opens immediately *)
  Alcotest.(check bool) "failed probe trips" true (Breaker.on_failure b);
  Alcotest.(check int) "second trip" 2 (Breaker.trips b);
  Breaker.on_round b;
  Breaker.on_round b;
  Alcotest.(check bool) "half-open again" true (Breaker.probing b);
  Breaker.on_success b;
  Alcotest.(check bool) "successful probe closes" true
    (Breaker.state b = Breaker.Closed 0);
  Breaker.reset b;
  Alcotest.(check int) "reset keeps the trip history" 2 (Breaker.trips b)

(* --- Fixtures ------------------------------------------------------- *)

let build ~master ~patients =
  let doc = Workload.Health.generate ~patients () in
  let scs = Workload.Health.constraints () in
  fst (System.setup ~master doc scs Secure.Scheme.Opt)

let queries =
  List.map Xpath.Parser.parse
    [ "//patient/pname"; "//patient[age>=50]/pname";
      "//treat/doctor"; "//patient[.//disease='diarrhea']/pname" ]

let reference_answers sys =
  List.map (fun q -> Helpers.norm_trees (fst (System.evaluate sys q))) queries

let submit_all srv ~tenant =
  List.map
    (fun q ->
      match Serve.submit srv ~tenant q with
      | Ok ticket -> ticket
      | Error r -> Alcotest.failf "submit rejected: %s" (Serve.reject_to_string r))
    queries

let answers_cost_gen c =
  match c.Serve.outcome with
  | Serve.Answered { answers; cost; generation } ->
    Some (answers, cost, generation)
  | _ -> None

(* --- Admission and backpressure ------------------------------------- *)

let overload_is_a_typed_rejection () =
  let config =
    { Serve.default_config with
      Serve.queue_depth = 3; bucket_capacity = 1; refill_per_round = 1;
      max_inflight = 1 }
  in
  let srv = Serve.create ~config () in
  Serve.register srv ~id:"solo" (build ~master:"solo-m" ~patients:4);
  let q = List.hd queries in
  let accepted = ref 0 and rejected = ref 0 in
  for _ = 1 to 5 do
    match Serve.submit srv ~tenant:"solo" q with
    | Ok _ -> incr accepted
    | Error Serve.Overloaded -> incr rejected
    | Error r -> Alcotest.failf "wrong reject: %s" (Serve.reject_to_string r)
  done;
  Alcotest.(check int) "queue bound accepted" 3 !accepted;
  Alcotest.(check int) "overflow rejected, never dropped" 2 !rejected;
  Alcotest.(check int) "rejections counted" 2 (counter_value srv "serve.solo.rejected");
  (match Serve.submit srv ~tenant:"ghost" q with
   | Error Serve.Unknown_tenant -> ()
   | _ -> Alcotest.fail "unknown tenant must be a typed rejection");
  (* the inflight cap of 1 trickles the queue out one query per round *)
  let served_per_round = ref [] in
  while Serve.queue_length srv "solo" > 0 do
    let done_ = Serve.run_round srv in
    served_per_round := List.length done_ :: !served_per_round
  done;
  Alcotest.(check (list int)) "one per round" [ 1; 1; 1 ]
    (List.rev !served_per_round)

let rate_limit_and_fairness () =
  let config =
    { Serve.default_config with
      Serve.queue_depth = 8; bucket_capacity = 2; refill_per_round = 1;
      max_inflight = 8 }
  in
  let srv = Serve.create ~config () in
  Serve.register srv ~id:"a" (build ~master:"a-m" ~patients:4);
  Serve.register srv ~id:"b" (build ~master:"b-m" ~patients:5);
  let q = List.hd queries in
  for _ = 1 to 6 do
    (match Serve.submit srv ~tenant:"a" q with Ok _ -> () | Error _ -> ());
    match Serve.submit srv ~tenant:"b" q with Ok _ -> () | Error _ -> ()
  done;
  (* burst of 2 each in round 1, then the sustained rate of 1/round;
     both tenants are served every round (round-robin, no starvation) *)
  let per_round = ref [] in
  for _ = 1 to 5 do
    let done_ = Serve.run_round srv in
    let count tenant =
      List.length (List.filter (fun c -> c.Serve.tenant = tenant) done_)
    in
    per_round := (count "a", count "b") :: !per_round
  done;
  Alcotest.(check (list (pair int int))) "bucket shape per tenant"
    [ (2, 2); (1, 1); (1, 1); (1, 1); (1, 1) ]
    (List.rev !per_round);
  Alcotest.(check int) "all drained" 0
    (Serve.queue_length srv "a" + Serve.queue_length srv "b")

(* --- The chaos isolation gate --------------------------------------- *)

let chaos_isolation_gate () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let config =
    { Serve.default_config with
      Serve.queue_depth = 16; bucket_capacity = 2; refill_per_round = 2;
      breaker_threshold = 2; breaker_cooldown = 2 }
  in
  let srv = Serve.create ~config ~pool () in
  (* Five tenants, each a fully independent hosting: own master secret,
     own document, own link, tracer and ledger. *)
  let healthy = [ "t-a", 4; "t-b", 5; "t-c", 6; "t-d", 7 ] in
  List.iter
    (fun (id, patients) ->
      let sys = build ~master:("master-" ^ id) ~patients in
      Obs.Ledger.set_enabled (System.ledger sys) true;
      Serve.register srv ~id sys)
    healthy;
  let sick_clean = build ~master:"master-sick" ~patients:5 in
  let sick_faulty =
    System.with_faults
      ~session:{ Session.default_config with Session.max_attempts = 2 }
      ~profile:(Transport.chaos ~drop:1.0 ()) ~seed:3L sick_clean
  in
  Obs.Ledger.set_enabled (System.ledger sick_faulty) true;
  Serve.register srv ~id:"t-sick" sick_faulty;
  Alcotest.(check int) "five tenants registered" 5
    (List.length (Serve.tenants srv));
  (* Single-tenant references, built outside the tier. *)
  let refs =
    List.map
      (fun (id, patients) ->
        id, reference_answers (build ~master:("master-" ^ id) ~patients))
      healthy
  in
  let sick_ref = reference_answers (build ~master:"master-sick" ~patients:5) in
  (* Phase 1: faults target t-sick only. *)
  List.iter (fun (id, _) -> ignore (submit_all srv ~tenant:id)) healthy;
  ignore (submit_all srv ~tenant:"t-sick");
  let completions = Serve.drain srv () in
  (* Healthy tenants: every query answered, byte-identical to the
     single-tenant reference, over a clean link. *)
  List.iter
    (fun (id, _) ->
      let mine = List.filter (fun c -> c.Serve.tenant = id) completions in
      Alcotest.(check int) (id ^ " all served") (List.length queries)
        (List.length mine);
      let expected = List.assoc id refs in
      List.iter2
        (fun c exp ->
          match answers_cost_gen c with
          | Some (answers, cost, _) ->
            Alcotest.(check bool) (id ^ " byte-identical to reference") true
              (Helpers.norm_trees answers = exp);
            Alcotest.(check int) (id ^ " clean attempts") 1
              cost.System.attempts
          | None -> Alcotest.failf "%s lost a query to the sick tenant" id)
        mine expected)
    healthy;
  (* The sick tenant: the first [threshold] queries fail with Gave_up,
     the trip sheds the rest of its queue as typed completions. *)
  let sick = List.filter (fun c -> c.Serve.tenant = "t-sick") completions in
  Alcotest.(check int) "sick completions all accounted" (List.length queries)
    (List.length sick);
  let failed, shed =
    List.partition (fun c -> match c.Serve.outcome with
        | Serve.Failed _ -> true | _ -> false) sick
  in
  Alcotest.(check int) "threshold failures" 2 (List.length failed);
  List.iter
    (fun c ->
      match c.Serve.outcome with
      | Serve.Failed (Session.Gave_up _) -> ()
      | _ -> Alcotest.fail "sick failures must be Gave_up")
    failed;
  Alcotest.(check int) "queue shed on trip" 2 (List.length shed);
  List.iter
    (fun c ->
      Alcotest.(check bool) "shed is typed Breaker_open" true
        (c.Serve.outcome = Serve.Shed Serve.Breaker_open))
    shed;
  Alcotest.(check int) "breaker tripped once" 1
    (Breaker.trips (Serve.breaker srv "t-sick"));
  (* While open, submissions are rejected outright. *)
  (match Serve.submit srv ~tenant:"t-sick" (List.hd queries) with
   | Error Serve.Breaker_open -> ()
   | _ -> Alcotest.fail "open breaker must reject submissions");
  (* Zero cross-tenant ledger bleed: each tenant's ledger holds exactly
     its own served rounds; the sick tenant (which served nothing)
     holds none of the 16 healthy rounds. *)
  List.iter
    (fun (id, _) ->
      Alcotest.(check int) (id ^ " ledger = own rounds") (List.length queries)
        (Obs.Ledger.count (System.ledger (Serve.system srv id))))
    healthy;
  Alcotest.(check int) "sick ledger saw no foreign rounds" 0
    (Obs.Ledger.count (System.ledger (Serve.system srv "t-sick")));
  (* Phase 2: repair the link, let the breaker cool, recover via the
     probe — while healthy tenants keep serving. *)
  Serve.relink srv ~tenant:"t-sick" ();
  Alcotest.(check bool) "relink does not close the breaker" false
    (Breaker.admits (Serve.breaker srv "t-sick"));
  ignore (Serve.run_round srv);
  ignore (Serve.run_round srv);
  Alcotest.(check bool) "cooled to half-open" true
    (Breaker.probing (Serve.breaker srv "t-sick"));
  let probe_tickets = submit_all srv ~tenant:"t-sick" in
  List.iter (fun (id, _) -> ignore (submit_all srv ~tenant:id)) healthy;
  let recovery = Serve.drain srv () in
  (* Exactly one probe went out first; its success closed the breaker
     and the rest of the queue followed. *)
  Alcotest.(check int) "one probe admitted" 1
    (Breaker.probes (Serve.breaker srv "t-sick"));
  Alcotest.(check bool) "breaker closed by the probe" true
    (Breaker.state (Serve.breaker srv "t-sick") = Breaker.Closed 0);
  let sick_rec =
    List.filter (fun c -> c.Serve.tenant = "t-sick") recovery
  in
  Alcotest.(check int) "every sick query answered after recovery"
    (List.length probe_tickets) (List.length sick_rec);
  List.iter2
    (fun c exp ->
      match answers_cost_gen c with
      | Some (answers, _, _) ->
        Alcotest.(check bool) "recovered answers byte-identical" true
          (Helpers.norm_trees answers = exp)
      | None -> Alcotest.fail "recovered tenant must answer")
    sick_rec sick_ref;
  List.iter
    (fun (id, _) ->
      let mine = List.filter (fun c -> c.Serve.tenant = id) recovery in
      Alcotest.(check int) (id ^ " kept serving through recovery")
        (List.length queries) (List.length mine))
    healthy;
  (* Per-tenant metrics carve cleanly out of the shared registry. *)
  Alcotest.(check int) "sick served counter" (List.length probe_tickets)
    (counter_value srv "serve.t-sick.served");
  Alcotest.(check int) "sick failed counter" 2
    (counter_value srv "serve.t-sick.failed");
  Alcotest.(check int) "sick shed counter" 2
    (counter_value srv "serve.t-sick.shed");
  Alcotest.(check int) "t-a is unpolluted: no failures" 0
    (counter_value srv "serve.t-a.failed");
  Alcotest.(check bool) "tenant view has its own counters only" true
    (List.for_all
       (fun (name, _) ->
         String.length name > 10 && String.sub name 0 10 = "serve.t-a.")
       (Obs.Metric.snapshot_prefix (Serve.registry srv) "serve.t-a."))

(* --- Determinism ---------------------------------------------------- *)

let trajectory_is_deterministic () =
  (* Same seeds, same submission order: the whole trip/shed/answer
     trajectory replays exactly, with or without a pool. *)
  let run pool =
    let config =
      { Serve.default_config with
        Serve.max_inflight = 4; breaker_threshold = 2; breaker_cooldown = 1 }
    in
    let srv = Serve.create ~config ?pool () in
    Serve.register srv ~id:"h" (build ~master:"h-m" ~patients:4);
    let sick =
      System.with_faults
        ~session:{ Session.default_config with Session.max_attempts = 2 }
        ~profile:(Transport.chaos ~drop:1.0 ()) ~seed:9L
        (build ~master:"s-m" ~patients:5)
    in
    Serve.register srv ~id:"s" sick;
    ignore (submit_all srv ~tenant:"h");
    ignore (submit_all srv ~tenant:"s");
    List.map
      (fun c ->
        ( c.Serve.ticket, c.Serve.tenant,
          match answers_cost_gen c with
          | Some (answers, _, _) ->
            "ok:" ^ String.concat "," (Helpers.norm_trees answers)
          | None -> (
            match c.Serve.outcome with
            | Serve.Failed e -> "fail:" ^ Session.error_to_string e
            | Serve.Shed r -> "shed:" ^ Serve.reject_to_string r
            | Serve.Answered _ -> assert false) ))
      (Serve.drain srv ())
  in
  let sequential = run None in
  let pool = Pool.create ~domains:4 () in
  let pooled =
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
        run (Some pool))
  in
  Alcotest.(check bool) "pooled trajectory = sequential trajectory" true
    (sequential = pooled);
  Alcotest.(check bool) "trajectory replays" true (sequential = run None)

(* --- Online rehost under the generation fence ------------------------ *)

let rehost_swaps_generation_online () =
  let srv = Serve.create () in
  Serve.register srv ~id:"alpha" ~route:`Engine
    (build ~master:"alpha-m" ~patients:4);
  Serve.register srv ~id:"beta" (build ~master:"beta-m" ~patients:5);
  let q = List.hd queries in
  let ask tenant =
    match Serve.submit srv ~tenant q with
    | Error r -> Alcotest.failf "submit: %s" (Serve.reject_to_string r)
    | Ok _ -> (
      match
        List.filter (fun c -> c.Serve.tenant = tenant) (Serve.drain srv ())
      with
      | [ c ] -> (
        match answers_cost_gen c with
        | Some (answers, _, generation) -> answers, generation
        | None -> Alcotest.fail "expected an answer")
      | _ -> Alcotest.fail "expected exactly one completion")
  in
  let a1, g1 = ask "alpha" in
  let _, g2 = ask "alpha" in   (* warms the engine caches *)
  Alcotest.(check int) "stable generation before rehost" g1 g2;
  let beta_gen = Serve.generation srv "beta" in
  let engine_stats () =
    match Serve.engine srv "alpha" with
    | Some e -> Engine.stats e
    | None -> Alcotest.fail "alpha is on the engine route"
  in
  Alcotest.(check bool) "second ask hit the result cache" true
    ((engine_stats ()).Engine.Stats.result_hits > 0);
  let _cost = Serve.rehost srv ~tenant:"alpha" ~new_master:"alpha-m2" in
  Alcotest.(check bool) "generation fence advanced" true
    (Serve.generation srv "alpha" > g1);
  Alcotest.(check bool) "rehost flushed the caches" true
    ((engine_stats ()).Engine.Stats.invalidations >= 1);
  let a3, g3 = ask "alpha" in
  Alcotest.(check int) "answers carry the new generation"
    (Serve.generation srv "alpha") g3;
  Alcotest.(check bool) "re-encrypted hosting answers identically" true
    (Helpers.norm_trees a3 = Helpers.norm_trees a1);
  (* the other tenant never noticed *)
  Alcotest.(check int) "beta untouched" beta_gen (Serve.generation srv "beta");
  let _, bg = ask "beta" in
  Alcotest.(check int) "beta still serving on its generation" beta_gen bg

let () =
  Alcotest.run "serve"
    [ ( "machines",
        [ Alcotest.test_case "limiter bucket shape" `Quick limiter_bucket_shape;
          Alcotest.test_case "breaker lifecycle" `Quick breaker_lifecycle ] );
      ( "admission",
        [ Alcotest.test_case "overload typed rejection" `Quick
            overload_is_a_typed_rejection;
          Alcotest.test_case "rate limit and fairness" `Quick
            rate_limit_and_fairness ] );
      ( "chaos",
        [ Alcotest.test_case "isolation gate" `Quick chaos_isolation_gate;
          Alcotest.test_case "deterministic trajectory" `Quick
            trajectory_is_deterministic ] );
      ( "rehost",
        [ Alcotest.test_case "online generation fence" `Quick
            rehost_swaps_generation_online ] ) ]
