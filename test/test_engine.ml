(* Engine tests: LRU mechanics, planner shape, answer equality across
   schemes and cache configurations (including immediately after an
   update), eviction behaviour at tiny capacities, the server-side
   sortedness invariant behind the lookup fast path, and cache-key
   hygiene (the key is exactly the wire request; plaintext never
   reaches it). *)

module System = Secure.System
module Scheme = Secure.Scheme
module Qg = Workload.Querygen

let doc = Workload.Health.generate ~patients:60 ()
let scs = Workload.Health.constraints ()

let systems = Hashtbl.create 4

let system kind =
  match Hashtbl.find_opt systems kind with
  | Some sys -> sys
  | None ->
    let sys, _ = System.setup ~master:"test-engine" doc scs kind in
    Hashtbl.replace systems kind sys;
    sys

let parse = Xpath.Parser.parse

let workload () =
  List.sort_uniq compare
    (List.concat_map
       (fun fam -> Qg.generate ~seed:42L doc fam ~count:3)
       [ Qg.Qs; Qg.Qm; Qg.Ql; Qg.Qv ])

(* --- LRU ------------------------------------------------------------ *)

let lru_basics () =
  let c = Engine.Lru.create 2 in
  Engine.Lru.put c 1 "a";
  Engine.Lru.put c 2 "b";
  Alcotest.(check (option string)) "find refreshes" (Some "a")
    (Engine.Lru.find c 1);
  Engine.Lru.put c 3 "c";
  (* 2 was least recently used (1 was refreshed by the find). *)
  Alcotest.(check (option string)) "evicted" None (Engine.Lru.find c 2);
  Alcotest.(check (option string)) "survivor" (Some "a") (Engine.Lru.find c 1);
  Alcotest.(check (option string)) "newcomer" (Some "c") (Engine.Lru.find c 3);
  Alcotest.(check int) "one eviction" 1 (Engine.Lru.evictions c);
  Alcotest.(check int) "length capped" 2 (Engine.Lru.length c)

let lru_update_in_place () =
  let c = Engine.Lru.create 4 in
  Engine.Lru.put c 7 "old";
  Engine.Lru.put c 7 "new";
  Alcotest.(check int) "no duplicate entry" 1 (Engine.Lru.length c);
  Alcotest.(check (option string)) "value replaced" (Some "new")
    (Engine.Lru.find c 7);
  Alcotest.(check int) "no eviction" 0 (Engine.Lru.evictions c)

let lru_zero_capacity () =
  (* Capacity 0 is the disabled mode: every find is a counted miss. *)
  let c = Engine.Lru.create 0 in
  Engine.Lru.put c 1 "a";
  Alcotest.(check (option string)) "nothing stored" None (Engine.Lru.find c 1);
  Alcotest.(check int) "length stays 0" 0 (Engine.Lru.length c);
  Alcotest.(check int) "misses counted" 1 (Engine.Lru.misses c);
  Alcotest.(check int) "no hits" 0 (Engine.Lru.hits c)

let lru_clear_keeps_counters () =
  let c = Engine.Lru.create 8 in
  Engine.Lru.put c 1 "a";
  ignore (Engine.Lru.find c 1);
  ignore (Engine.Lru.find c 2);
  Engine.Lru.clear c;
  Alcotest.(check int) "empty" 0 (Engine.Lru.length c);
  Alcotest.(check (option string)) "entries gone" None (Engine.Lru.find c 1);
  Alcotest.(check int) "hits survive clear" 1 (Engine.Lru.hits c);
  Alcotest.(check bool) "misses survive clear" true (Engine.Lru.misses c >= 2)

(* --- Planner -------------------------------------------------------- *)

let squery_of kind q =
  Secure.Client.translate (System.client (system kind)) (parse q)

let planner_identity_when_disabled () =
  let sys = system Scheme.Opt in
  let est = Engine.Estimate.of_server (System.server sys) in
  let squery = squery_of Scheme.Opt "//patient[age>=60]/pname" in
  let plan = Engine.Planner.compile ~reorder:false est squery in
  Alcotest.(check int) "step count preserved"
    (List.length squery.Secure.Squery.steps)
    (List.length plan.Engine.Plan.steps);
  Alcotest.(check bool) "not reordered" false plan.Engine.Plan.reordered;
  Alcotest.(check int) "no pivot span" 0 (Engine.Plan.reorder_span plan)

let planner_plans_every_workload_query () =
  let sys = system Scheme.Opt in
  let est = Engine.Estimate.of_server (System.server sys) in
  List.iter
    (fun q ->
      let squery = Secure.Client.translate (System.client sys) q in
      let plan = Engine.Planner.compile est squery in
      Alcotest.(check int) "plan covers all steps"
        (List.length squery.Secure.Squery.steps)
        (List.length plan.Engine.Plan.steps);
      (* A pivot, when chosen, is a valid step index. *)
      Alcotest.(check bool) "pivot in range" true
        (plan.Engine.Plan.pivot >= 0
        && plan.Engine.Plan.pivot < max 1 (List.length plan.Engine.Plan.steps)))
    (workload ())

let application_order_sanitised () =
  Alcotest.(check (list int)) "dedup, drop out-of-range, append missing"
    [ 2; 0; 1 ]
    (Engine.Exec.application_order [ 2; 0; 0; 5 ] 3);
  Alcotest.(check (list int)) "empty order is identity" [ 0; 1 ]
    (Engine.Exec.application_order [] 2)

(* --- Answer equality ------------------------------------------------ *)

let off_config =
  { Engine.default_config with Engine.planner = false; Engine.caches = false }

let equality_across_schemes () =
  (* Cold, warm and fully-disabled engine runs must all agree with the
     unplanned, uncached System.evaluate, for every scheme. *)
  let queries = workload () in
  List.iter
    (fun kind ->
      let sys = system kind in
      let eng = Engine.create sys in
      let off = Engine.create ~config:off_config sys in
      List.iter
        (fun q ->
          let reference = fst (System.evaluate sys q) in
          let label what =
            Printf.sprintf "%s %s" (Scheme.kind_to_string kind) what
          in
          Alcotest.(check bool) (label "cold") true
            (Engine.evaluate eng q = reference);
          Alcotest.(check bool) (label "warm") true
            (Engine.evaluate eng q = reference);
          Alcotest.(check bool) (label "caches+planner off") true
            (Engine.evaluate off q = reference))
        queries)
    Scheme.all_kinds

let update_invalidates () =
  let sys, _ = System.setup ~master:"test-engine-upd" doc scs Scheme.Opt in
  let eng = Engine.create sys in
  let q = parse "//patient[age>=60]/pname" in
  ignore (Engine.evaluate eng q);
  let _, warm = Engine.evaluate_report eng q in
  Alcotest.(check bool) "warm run hits the result memo" true
    (warm.Engine.result_outcome = Engine.Hit);
  let _cost =
    Engine.update eng (Secure.Update.Set_value (parse "//patient/age", "61"))
  in
  let answers, post = Engine.evaluate_report eng q in
  Alcotest.(check bool) "post-update run misses" true
    (post.Engine.result_outcome = Engine.Miss);
  Alcotest.(check bool) "post-update answers exact" true
    (answers = fst (System.evaluate (Engine.system eng) q));
  Alcotest.(check bool) "invalidation counted" true
    ((Engine.stats eng).Engine.Stats.invalidations >= 1)

(* The incremental-update contract: Engine.apply_delta flushes the
   result memo but keeps compiled plans and every untouched block's
   decrypted-subtree entry — only the touched blocks' (id, generation)
   keys are evicted, and no counters reset.  This is the cache-survival
   pin: before this path existed, ANY update flushed all three caches
   wholesale. *)
let delta_preserves_untouched_block_cache () =
  let sys, _ = System.setup ~master:"test-engine-delta" doc scs Scheme.Opt in
  let eng = Engine.create sys in
  let pnames =
    List.filter_map
      (Xmlcore.Doc.value doc)
      (Xmlcore.Doc.nodes_with_tag doc "pname")
  in
  let a = List.nth pnames 0 and b = List.nth pnames 1 in
  let q_warm = parse (Printf.sprintf "//patient[pname='%s']//policy#" a) in
  let q_touched = parse (Printf.sprintf "//patient[pname='%s']//policy#" b) in
  (* Warm both queries' blocks (and plans, and result memos). *)
  ignore (Engine.evaluate eng q_warm);
  ignore (Engine.evaluate eng q_touched);
  let _, warm = Engine.evaluate_report eng q_warm in
  Alcotest.(check bool) "warm run serves blocks from cache" true
    (warm.Engine.block_misses = 0 && warm.Engine.block_hits > 0);
  let hits_before = (Engine.stats eng).Engine.Stats.block_hits in
  (* Edit patient b's insurance block through the incremental path. *)
  let cost =
    Engine.apply_delta eng
      (Secure.Update.Set_value
         (parse (Printf.sprintf "//patient[pname='%s']//policy#" b), "91234"))
  in
  Alcotest.(check bool) "edit stayed incremental" false cost.System.fell_back;
  Alcotest.(check bool) "edit touched a block" true (cost.System.blocks_touched >= 1);
  (* Untouched region: every block entry survived (zero misses), the
     compiled plan survived, and the counters kept climbing — only the
     result memo was flushed. *)
  let answers, post = Engine.evaluate_report eng q_warm in
  Alcotest.(check bool) "untouched blocks still cached" true
    (post.Engine.block_misses = 0 && post.Engine.block_hits > 0);
  Alcotest.(check bool) "plan survived the delta" true
    (post.Engine.plan_outcome = Engine.Hit);
  Alcotest.(check bool) "result memo flushed" true
    (post.Engine.result_outcome = Engine.Miss);
  Alcotest.(check bool) "block-hit counter not reset" true
    ((Engine.stats eng).Engine.Stats.block_hits > hits_before);
  Alcotest.(check bool) "untouched answers exact" true
    (answers = fst (System.evaluate (Engine.system eng) q_warm));
  (* Touched region: the superseded (id, generation) entry is gone, so
     the block re-ships — and the fresh ciphertext's value is served. *)
  let answers, touched = Engine.evaluate_report eng q_touched in
  Alcotest.(check bool) "touched block re-shipped" true
    (touched.Engine.block_misses >= 1);
  Alcotest.(check bool) "touched answers exact" true
    (answers = fst (System.evaluate (Engine.system eng) q_touched));
  Alcotest.(check bool) "new value visible" true
    (List.exists
       (fun t ->
         match t with
         | Xmlcore.Tree.Element (_, [ Xmlcore.Tree.Text v ]) -> v = "91234"
         | _ -> false)
       answers)

let tiny_capacity_eviction () =
  (* Capacities of 1/1/2 force constant eviction; answers must not
     change, only hit rates. *)
  let sys = system Scheme.Opt in
  let eng =
    Engine.create
      ~config:
        { Engine.default_config with
          Engine.plan_capacity = 1;
          Engine.result_capacity = 1;
          Engine.block_capacity = 2 }
      sys
  in
  let queries = workload () in
  List.iter
    (fun q ->
      Alcotest.(check bool) "answers exact under eviction pressure" true
        (Engine.evaluate eng q = fst (System.evaluate sys q)))
    (queries @ queries);
  let stats = Engine.stats eng in
  Alcotest.(check bool) "evictions happened" true
    (stats.Engine.Stats.result_evictions > 0)

(* --- Server sortedness invariant (lookup fast path) ----------------- *)

let lookup_fast_path_sorted () =
  (* Server.create normalises every table entry, so the single-token
     fast path may return the stored list as-is.  Pin the invariant and
     the fast path's equality with the merging path. *)
  let sys = system Scheme.Opt in
  let server = System.server sys in
  let squery = squery_of Scheme.Opt "//patient//pname" in
  List.iter
    (fun (step : Secure.Squery.step) ->
      let ivs = Secure.Server.lookup server step.Secure.Squery.test in
      Alcotest.(check bool) "sorted and duplicate-free" true
        (ivs = List.sort_uniq Dsi.Interval.compare_by_lo ivs);
      match step.Secure.Squery.test with
      | Secure.Squery.Tokens [ token ] ->
        (* A duplicated token exercises the general merging path; the
           result must match the fast path exactly. *)
        let merged =
          Secure.Server.lookup server (Secure.Squery.Tokens [ token; token ])
        in
        Alcotest.(check bool) "fast path = merge path" true (merged = ivs)
      | _ -> ())
    squery.Secure.Squery.steps

(* --- Cache-key hygiene ---------------------------------------------- *)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let wire_request_is_the_protocol_encoding () =
  let sys = system Scheme.Opt in
  let eng = Engine.create sys in
  let q = parse "//patient[age>=60]/pname" in
  Alcotest.(check string) "key = encode_request of the translation"
    (Secure.Protocol.encode_request
       (Secure.Client.translate (System.client sys) q))
    (Engine.wire_request eng q)

let key_hides_encrypted_tags_and_values () =
  (* Under the sub scheme whole patient records are encrypted, so inner
     tags reach the wire only as Vernam tokens and compared values only
     as OPESS ranges: neither plaintext may appear in the cache key. *)
  let sys = system Scheme.Sub in
  let eng = Engine.create sys in
  let req = Engine.wire_request eng (parse "//patient[disease='Flu']/pname") in
  Alcotest.(check bool) "encrypted tag absent" false
    (contains_substring req "disease");
  (* The value literal is translated to OPESS int64 ranges (or Unknown),
     so its plaintext must not survive either.  A letter-bearing literal
     keeps the check from tripping on range digits. *)
  Alcotest.(check bool) "compared value absent" false
    (contains_substring req "Flu")

let () =
  Alcotest.run "engine"
    [ ( "lru",
        [ Alcotest.test_case "basics" `Quick lru_basics;
          Alcotest.test_case "update in place" `Quick lru_update_in_place;
          Alcotest.test_case "zero capacity" `Quick lru_zero_capacity;
          Alcotest.test_case "clear keeps counters" `Quick
            lru_clear_keeps_counters ] );
      ( "planner",
        [ Alcotest.test_case "identity when disabled" `Quick
            planner_identity_when_disabled;
          Alcotest.test_case "plans every workload query" `Quick
            planner_plans_every_workload_query;
          Alcotest.test_case "application order sanitised" `Quick
            application_order_sanitised ] );
      ( "equality",
        [ Alcotest.test_case "all schemes, warm/cold/off" `Slow
            equality_across_schemes;
          Alcotest.test_case "update invalidates" `Quick update_invalidates;
          Alcotest.test_case "delta keeps untouched blocks warm" `Quick
            delta_preserves_untouched_block_cache;
          Alcotest.test_case "tiny capacities" `Quick tiny_capacity_eviction ]
      );
      ( "server-invariants",
        [ Alcotest.test_case "lookup fast path sorted" `Quick
            lookup_fast_path_sorted ] );
      ( "hygiene",
        [ Alcotest.test_case "key is the wire request" `Quick
            wire_request_is_the_protocol_encoding;
          Alcotest.test_case "key hides plaintext" `Quick
            key_hides_encrypted_tags_and_values ] ) ]
