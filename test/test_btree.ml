(* B-tree tests: invariants, range scans, duplicates. *)

let insert_many t pairs = List.iter (fun (k, v) -> Btree.insert t k v) pairs

let keys_of pairs = List.map fst pairs

let reference_range pairs ~lo ~hi =
  List.filter (fun (k, _) -> k >= lo && k <= hi)
    (List.stable_sort (fun (a, _) (b, _) -> compare a b) pairs)

let arbitrary_pairs =
  QCheck.(
    make
      ~print:(fun l ->
        String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%Ld:%d" k v) l))
      (Gen.list_size (Gen.int_range 0 400)
         (Gen.pair (Gen.map Int64.of_int (Gen.int_range 0 100)) Gen.nat)))

let validates_prop =
  QCheck.Test.make ~name:"invariants hold after random inserts" ~count:200
    arbitrary_pairs
    (fun pairs ->
      let t = Btree.create ~min_degree:3 () in
      insert_many t pairs;
      Btree.validate t = Ok ())

let sorted_iteration_prop =
  QCheck.Test.make ~name:"iteration yields sorted keys" ~count:200 arbitrary_pairs
    (fun pairs ->
      let t = Btree.create ~min_degree:3 () in
      insert_many t pairs;
      keys_of (Btree.to_list t) = List.sort compare (keys_of pairs))

let range_matches_reference_prop =
  QCheck.Test.make ~name:"range = filtered sorted list" ~count:200
    QCheck.(pair arbitrary_pairs (pair (int_bound 100) (int_bound 100)))
    (fun (pairs, (a, b)) ->
      let lo = Int64.of_int (min a b) and hi = Int64.of_int (max a b) in
      let t = Btree.create ~min_degree:3 () in
      insert_many t pairs;
      keys_of (Btree.range t ~lo ~hi) = keys_of (reference_range pairs ~lo ~hi))

let insertion_order_irrelevant_prop =
  QCheck.Test.make ~name:"insertion order does not change key sequence" ~count:100
    arbitrary_pairs
    (fun pairs ->
      let t1 = Btree.create ~min_degree:4 () in
      insert_many t1 pairs;
      let t2 = Btree.create ~min_degree:4 () in
      insert_many t2 (List.rev pairs);
      keys_of (Btree.to_list t1) = keys_of (Btree.to_list t2))

let duplicates () =
  let t = Btree.create ~min_degree:2 () in
  List.iter (fun v -> Btree.insert t 7L v) [ 1; 2; 3; 4; 5 ];
  Btree.insert t 3L 0;
  Btree.insert t 9L 9;
  Alcotest.(check int) "length" 7 (Btree.length t);
  Alcotest.(check (list int)) "find_all preserves insertion order"
    [ 1; 2; 3; 4; 5 ] (Btree.find_all t 7L);
  Alcotest.(check (list int)) "absent key" [] (Btree.find_all t 8L)

let min_max () =
  let t = Btree.create () in
  Alcotest.(check (option int64)) "empty min" None (Btree.min_key t);
  Alcotest.(check (option int64)) "empty max" None (Btree.max_key t);
  List.iter (fun k -> Btree.insert t (Int64.of_int k) k) [ 42; 7; 99; 0; 13 ];
  Alcotest.(check (option int64)) "min" (Some 0L) (Btree.min_key t);
  Alcotest.(check (option int64)) "max" (Some 99L) (Btree.max_key t)

let growth () =
  (* Height grows logarithmically; all leaves at one depth is part of
     validate, so just sanity-check the trend. *)
  let t = Btree.create ~min_degree:2 () in
  Alcotest.(check int) "empty height" 1 (Btree.height t);
  for i = 1 to 1000 do
    Btree.insert t (Int64.of_int i) i
  done;
  Alcotest.(check bool) "height sane" true
    (Btree.height t >= 4 && Btree.height t <= 12);
  Alcotest.(check bool) "node count sane" true (Btree.node_count t >= 100);
  (match Btree.validate t with
   | Ok () -> ()
   | Error e -> Alcotest.fail e)

let ascending_descending () =
  (* Sorted and reverse-sorted insertion are the classic worst cases. *)
  List.iter
    (fun order ->
      let t = Btree.create ~min_degree:3 () in
      List.iter (fun k -> Btree.insert t (Int64.of_int k) k) order;
      (match Btree.validate t with
       | Ok () -> ()
       | Error e -> Alcotest.fail e);
      Alcotest.(check int) "all present" 500 (Btree.length t))
    [ List.init 500 (fun i -> i); List.init 500 (fun i -> 499 - i) ]

let empty_range () =
  let t = Btree.create () in
  List.iter (fun k -> Btree.insert t (Int64.of_int k) k) [ 10; 20; 30 ];
  Alcotest.(check int) "gap range" 0 (List.length (Btree.range t ~lo:11L ~hi:19L));
  Alcotest.(check int) "inverted range" 0 (List.length (Btree.range t ~lo:30L ~hi:10L));
  Alcotest.(check int) "inclusive bounds" 2
    (List.length (Btree.range t ~lo:10L ~hi:20L))

(* --- Deletion ----------------------------------------------------- *)

(* Reference model: sorted association list with stable duplicates. *)
let model_delete pairs k p =
  let rec go acc = function
    | [] -> None
    | (key, v) :: rest when key = k && p v -> Some (List.rev_append acc rest)
    | entry :: rest -> go (entry :: acc) rest
  in
  go [] pairs

let delete_matches_model_prop =
  QCheck.Test.make ~name:"delete agrees with a list model" ~count:300
    QCheck.(pair arbitrary_pairs (small_list (int_bound 100)))
    (fun (pairs, to_delete) ->
      let t = Btree.create ~min_degree:2 () in
      insert_many t pairs;
      let model = ref (List.stable_sort (fun (a, _) (b, _) -> compare a b) pairs) in
      List.for_all
        (fun k ->
          let k = Int64.of_int k in
          let expected = model_delete !model k (fun _ -> true) in
          let found = Btree.delete t k (fun _ -> true) in
          (match expected with
           | Some next -> model := next
           | None -> ());
          let structure_ok = Btree.validate t = Ok () in
          found = Option.is_some expected
          && structure_ok
          && Btree.to_list t = !model)
        to_delete)

let delete_with_predicate_prop =
  QCheck.Test.make ~name:"predicate deletion picks first match" ~count:200
    arbitrary_pairs
    (fun pairs ->
      let t = Btree.create ~min_degree:3 () in
      insert_many t pairs;
      let model = ref (List.stable_sort (fun (a, _) (b, _) -> compare a b) pairs) in
      List.for_all
        (fun (k, v) ->
          (* Delete specifically payload v under key k. *)
          let expected = model_delete !model k (fun v' -> v' = v) in
          let found = Btree.delete t k (fun v' -> v' = v) in
          (match expected with Some next -> model := next | None -> ());
          found = Option.is_some expected
          && Btree.validate t = Ok ()
          && Btree.to_list t = !model)
        pairs)

let delete_everything_prop =
  QCheck.Test.make ~name:"deleting all entries empties the tree" ~count:100
    arbitrary_pairs
    (fun pairs ->
      let t = Btree.create ~min_degree:2 () in
      insert_many t pairs;
      List.iter (fun (k, _) -> ignore (Btree.delete t k (fun _ -> true))) pairs;
      Btree.length t = 0 && Btree.to_list t = [] && Btree.validate t = Ok ())

let delete_all_duplicates () =
  let t = Btree.create ~min_degree:2 () in
  for i = 1 to 20 do
    Btree.insert t 5L i;
    Btree.insert t 7L i
  done;
  Alcotest.(check int) "removes every duplicate" 20
    (Btree.delete_all t 5L (fun _ -> true));
  Alcotest.(check int) "others untouched" 20 (Btree.length t);
  Alcotest.(check bool) "absent afterwards" true (Btree.find_all t 5L = []);
  Alcotest.(check int) "partial predicate" 10
    (Btree.delete_all t 7L (fun v -> v mod 2 = 0));
  Alcotest.(check (list int)) "odd survivors"
    [ 1; 3; 5; 7; 9; 11; 13; 15; 17; 19 ]
    (Btree.find_all t 7L)

let delete_interleaved_with_insert =
  QCheck.Test.make ~name:"interleaved insert/delete keeps invariants" ~count:100
    QCheck.(list (pair bool (int_bound 50)))
    (fun ops ->
      let t = Btree.create ~min_degree:2 () in
      let model = ref [] in
      List.for_all
        (fun (is_insert, k) ->
          let key = Int64.of_int k in
          if is_insert then begin
            Btree.insert t key k;
            model := List.stable_sort (fun (a, _) (b, _) -> compare a b)
                ((key, k) :: !model)
          end
          else begin
            match model_delete !model key (fun _ -> true) with
            | Some next ->
              ignore (Btree.delete t key (fun _ -> true));
              model := next
            | None -> ignore (Btree.delete t key (fun _ -> true))
          end;
          Btree.validate t = Ok () && Btree.to_list t = !model)
        ops)

(* --- Bulk loading -------------------------------------------------- *)

let bulk_load_matches_inserts_prop =
  QCheck.Test.make ~name:"bulk_load = repeated insert" ~count:300
    QCheck.(pair (int_range 2 6) arbitrary_pairs)
    (fun (degree, pairs) ->
      let loaded = Btree.bulk_load ~min_degree:degree pairs in
      let inserted = Btree.create ~min_degree:degree () in
      insert_many inserted pairs;
      Btree.validate loaded = Ok ()
      && Btree.to_list loaded = Btree.to_list inserted
      && Btree.length loaded = List.length pairs)

let bulk_load_sizes () =
  (* Edge sizes around node-capacity boundaries. *)
  List.iter
    (fun n ->
      let entries = List.init n (fun i -> Int64.of_int i, i) in
      let t = Btree.bulk_load ~min_degree:3 entries in
      (match Btree.validate t with
       | Ok () -> ()
       | Error e -> Alcotest.failf "n=%d: %s" n e);
      Alcotest.(check int) (Printf.sprintf "n=%d length" n) n (Btree.length t);
      Alcotest.(check (list int)) (Printf.sprintf "n=%d contents" n)
        (List.init n (fun i -> i))
        (List.map snd (Btree.to_list t)))
    [ 0; 1; 2; 4; 5; 6; 10; 11; 12; 25; 36; 100; 1000 ];
  (* Range queries behave identically after bulk load. *)
  let entries = List.init 500 (fun i -> Int64.of_int (i mod 50), i) in
  let t = Btree.bulk_load ~min_degree:4 entries in
  Alcotest.(check int) "duplicate-heavy range" 30
    (List.length (Btree.range t ~lo:10L ~hi:12L))

(* Bulk loading packs nodes as full as the invariants allow, so the
   very first deletions force borrows and merges that incremental
   insertion rarely sets up.  Same list model as the delete suite. *)
let bulk_load_delete_prop =
  QCheck.Test.make ~name:"deletes from a bulk-loaded tree (borrow/merge)"
    ~count:200
    QCheck.(pair (int_range 2 6) (pair arbitrary_pairs (small_list (int_bound 100))))
    (fun (degree, (pairs, to_delete)) ->
      let t = Btree.bulk_load ~min_degree:degree pairs in
      let model = ref (List.stable_sort (fun (a, _) (b, _) -> compare a b) pairs) in
      List.for_all
        (fun k ->
          let k = Int64.of_int k in
          let expected = model_delete !model k (fun _ -> true) in
          let found = Btree.delete t k (fun _ -> true) in
          (match expected with Some next -> model := next | None -> ());
          found = Option.is_some expected
          && Btree.validate t = Ok ()
          && Btree.to_list t = !model)
        to_delete)

let bulk_load_interleaved_prop =
  QCheck.Test.make ~name:"bulk load then interleaved insert/delete" ~count:100
    QCheck.(pair arbitrary_pairs (list (pair bool (int_bound 50))))
    (fun (pairs, ops) ->
      let t = Btree.bulk_load ~min_degree:2 pairs in
      let model = ref (List.stable_sort (fun (a, _) (b, _) -> compare a b) pairs) in
      List.for_all
        (fun (is_insert, k) ->
          let key = Int64.of_int k in
          if is_insert then begin
            Btree.insert t key k;
            (* insert appends after existing duplicates of the key, so
               the model entry goes at the tail of the equal-key run *)
            model := List.stable_sort (fun (a, _) (b, _) -> compare a b)
                (!model @ [ key, k ])
          end
          else begin
            (match model_delete !model key (fun _ -> true) with
             | Some next -> model := next
             | None -> ());
            ignore (Btree.delete t key (fun _ -> true))
          end;
          Btree.validate t = Ok () && Btree.to_list t = !model)
        ops)

let duplicate_chunk_boundaries () =
  (* Duplicate runs longer than a node straddle leaf boundaries after a
     bulk load; point and span ranges must still see every copy, in
     insertion order, at every (degree, run-length) combination. *)
  List.iter
    (fun degree ->
      List.iter
        (fun run ->
          let entries =
            List.concat_map
              (fun k -> List.init run (fun i -> Int64.of_int k, (k * 1000) + i))
              [ 0; 1; 2; 3; 4 ]
          in
          let t = Btree.bulk_load ~min_degree:degree entries in
          (match Btree.validate t with
           | Ok () -> ()
           | Error e -> Alcotest.failf "degree=%d run=%d: %s" degree run e);
          Alcotest.(check (list int))
            (Printf.sprintf "degree=%d run=%d find_all order" degree run)
            (List.init run (fun i -> 2000 + i))
            (Btree.find_all t 2L);
          Alcotest.(check (list int))
            (Printf.sprintf "degree=%d run=%d point range" degree run)
            (List.init run (fun i -> 2000 + i))
            (List.map snd (Btree.range t ~lo:2L ~hi:2L));
          Alcotest.(check int)
            (Printf.sprintf "degree=%d run=%d span range" degree run)
            (3 * run)
            (List.length (Btree.range t ~lo:1L ~hi:3L));
          Alcotest.(check bool)
            (Printf.sprintf "degree=%d run=%d full range = contents" degree run)
            true
            (Btree.range t ~lo:0L ~hi:4L = Btree.to_list t))
        [ 1; 2; 3; 5; 8; 17 ])
    [ 2; 3; 4 ]

let min_degree_guard () =
  Alcotest.check_raises "min_degree >= 2"
    (Invalid_argument "Btree.create: min_degree must be >= 2")
    (fun () -> ignore (Btree.create ~min_degree:1 ()))

let () =
  Alcotest.run "btree"
    [ ( "unit",
        [ Alcotest.test_case "duplicates" `Quick duplicates;
          Alcotest.test_case "min/max" `Quick min_max;
          Alcotest.test_case "growth" `Quick growth;
          Alcotest.test_case "sorted insert orders" `Quick ascending_descending;
          Alcotest.test_case "empty ranges" `Quick empty_range;
          Alcotest.test_case "min_degree guard" `Quick min_degree_guard ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ validates_prop; sorted_iteration_prop; range_matches_reference_prop;
            insertion_order_irrelevant_prop ] );
      ( "bulk load",
        Alcotest.test_case "boundary sizes" `Quick bulk_load_sizes
        :: Alcotest.test_case "duplicate runs at chunk boundaries" `Quick
             duplicate_chunk_boundaries
        :: List.map QCheck_alcotest.to_alcotest
             [ bulk_load_matches_inserts_prop; bulk_load_delete_prop;
               bulk_load_interleaved_prop ] );
      ( "deletion",
        Alcotest.test_case "delete_all with duplicates" `Quick delete_all_duplicates
        :: List.map QCheck_alcotest.to_alcotest
             [ delete_matches_model_prop; delete_with_predicate_prop;
               delete_everything_prop; delete_interleaved_with_insert ] ) ]
