(* Unit tests for the secure library's components: counting, SCs,
   constraint graph, vertex cover, schemes, encryption, OPESS,
   metadata, attacks. *)

module Doc = Xmlcore.Doc
module Tree = Xmlcore.Tree
module Sc = Secure.Sc
module Counting = Secure.Counting

let health_doc () = Workload.Health.doc ()
let health_scs () = Workload.Health.constraints ()
let keys () = Crypto.Keys.create ~master:"test-master" ()

(* --- Counting (Theorems 4.1 / 5.1 / 5.2 numerology) -------------- *)

let counting_paper_examples () =
  (* Theorem 4.1's worked example: k1=3, k2=4, k3=5 gives 27720. *)
  Alcotest.(check (option int64)) "multinomial" (Some 27720L)
    (Counting.multinomial [ 3; 4; 5 ]);
  (* Theorems 5.1/5.2: n=15, k=5 gives C(14,4) = 1001. *)
  Alcotest.(check (option int64)) "compositions" (Some 1001L)
    (Counting.compositions_count ~n:15 ~k:5)

let counting_binomials () =
  Alcotest.(check (option int64)) "C(10,3)" (Some 120L) (Counting.binomial 10 3);
  Alcotest.(check (option int64)) "C(n,0)" (Some 1L) (Counting.binomial 7 0);
  Alcotest.(check (option int64)) "C(n,n)" (Some 1L) (Counting.binomial 7 7);
  Alcotest.(check (option int64)) "out of range" (Some 0L) (Counting.binomial 3 5);
  Alcotest.(check (option int64)) "overflow detected" None (Counting.binomial 200 100)

let counting_log_consistency =
  QCheck.Test.make ~name:"log and exact counts agree" ~count:200
    QCheck.(pair (int_range 1 40) (int_range 1 40))
    (fun (n, k) ->
      let k = min k n in
      match Counting.binomial n k with
      | Some exact ->
        let via_log = exp (Counting.log_binomial n k) in
        Float.abs (via_log -. Int64.to_float exact)
        <= 1e-6 *. Float.max 1.0 (Int64.to_float exact)
      | None -> true)

let counting_multinomial_symmetry =
  QCheck.Test.make ~name:"multinomial invariant under permutation" ~count:100
    QCheck.(small_list (int_range 1 8))
    (fun ks ->
      ks = []
      || Counting.multinomial ks = Counting.multinomial (List.rev ks))

(* --- Security constraints ---------------------------------------- *)

let sc_parsing () =
  (match Sc.parse "//insurance" with
   | Sc.Node_type _ -> ()
   | Sc.Association _ -> Alcotest.fail "expected node type");
  (match Sc.parse "//patient:(/pname, /SSN)" with
   | Sc.Association { q1; q2; _ } ->
     Alcotest.(check bool) "relative" true
       (not q1.Xpath.Ast.absolute && not q2.Xpath.Ast.absolute)
   | Sc.Node_type _ -> Alcotest.fail "expected association");
  Alcotest.check_raises "malformed"
    (Invalid_argument "Sc.parse: association must look like p:(q1, q2)")
    (fun () -> ignore (Sc.parse "//a:(b"));
  Alcotest.(check string) "to_string roundtrips"
    "//patient:(pname, //disease)"
    (Sc.to_string (Sc.parse "//patient:(/pname, //disease)"))

let sc_bindings () =
  let doc = health_doc () in
  Alcotest.(check int) "insurance bindings" 3
    (List.length (Sc.bindings doc (Sc.parse "//insurance")));
  Alcotest.(check int) "patient bindings" 2
    (List.length (Sc.bindings doc (Sc.parse "//patient:(/pname, /SSN)")))

let sc_captured_queries () =
  let doc = health_doc () in
  let sc = Sc.parse "//patient:(/pname, //disease)" in
  let captured = Sc.captured_queries doc sc in
  (* Betty x {diarrhea, flu} + Matt x {leukemia, diarrhea} = 4. *)
  Alcotest.(check int) "captured count" 4 (List.length captured);
  (* Every captured query holds in D (that is their defining property). *)
  List.iter
    (fun { Sc.query; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "D |= %s" (Xpath.Ast.to_string query))
        true (Xpath.Eval.matches doc query))
    captured;
  let pairs = Sc.sensitive_value_pairs doc sc in
  Alcotest.(check bool) "Betty-diarrhea pair" true
    (List.mem ("Betty", "diarrhea") pairs);
  Alcotest.(check bool) "no Betty-leukemia pair" false
    (List.mem ("Betty", "leukemia") pairs)

(* --- Vertex cover ------------------------------------------------- *)

let vc_graph weights edges = { Secure.Vertex_cover.weights; edges }

let vertex_cover_exact () =
  (* Path x - y - z: cheap middle vertex wins. *)
  let g = vc_graph [ "x", 1.0; "y", 1.5; "z", 1.0 ] [ "x", "y"; "y", "z" ] in
  Alcotest.(check (list string)) "middle" [ "y" ] (Secure.Vertex_cover.exact g);
  (* Expensive middle: endpoints win. *)
  let g = vc_graph [ "x", 1.0; "y", 2.5; "z", 1.0 ] [ "x", "y"; "y", "z" ] in
  Alcotest.(check (list string)) "endpoints" [ "x"; "z" ] (Secure.Vertex_cover.exact g);
  (* Self loop forces its vertex. *)
  let g = vc_graph [ "x", 5.0; "y", 1.0 ] [ "x", "x"; "x", "y" ] in
  Alcotest.(check (list string)) "self loop" [ "x" ] (Secure.Vertex_cover.exact g)

(* Brute-force minimum-weight cover over all subsets. *)
let brute_force_cover g =
  let vertices = List.map fst g.Secure.Vertex_cover.weights in
  let n = List.length vertices in
  let best = ref infinity in
  for mask = 0 to (1 lsl n) - 1 do
    let subset = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) vertices in
    if Secure.Vertex_cover.is_cover g subset then
      best := Float.min !best (Secure.Vertex_cover.cover_weight g subset)
  done;
  !best

let random_graph_gen =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let vertices = List.init n (fun i -> Printf.sprintf "v%d" i) in
    let* weights =
      flatten_l (List.map (fun v -> map (fun w -> v, float_of_int (1 + w)) (int_bound 9)) vertices)
    in
    let* edge_count = int_range 1 12 in
    let* edges =
      flatten_l
        (List.init edge_count (fun _ ->
             let* a = int_bound (n - 1) in
             let* b = int_bound (n - 1) in
             return (Printf.sprintf "v%d" a, Printf.sprintf "v%d" b)))
    in
    return { Secure.Vertex_cover.weights; edges })

let arbitrary_graph =
  QCheck.make
    ~print:(fun g ->
      String.concat ","
        (List.map (fun (a, b) -> Printf.sprintf "%s-%s" a b) g.Secure.Vertex_cover.edges))
    random_graph_gen

let exact_is_optimal_prop =
  QCheck.Test.make ~name:"exact cover = brute force optimum" ~count:200
    arbitrary_graph
    (fun g ->
      let cover = Secure.Vertex_cover.exact g in
      Secure.Vertex_cover.is_cover g cover
      && Float.abs (Secure.Vertex_cover.cover_weight g cover -. brute_force_cover g)
         < 1e-9)

let greedy_within_factor_two_prop =
  QCheck.Test.make ~name:"Clarkson greedy is a cover within 2x optimal" ~count:200
    arbitrary_graph
    (fun g ->
      let cover = Secure.Vertex_cover.clarkson_greedy g in
      Secure.Vertex_cover.is_cover g cover
      && Secure.Vertex_cover.cover_weight g cover
         <= (2.0 *. brute_force_cover g) +. 1e-9)

(* --- Constraint graph --------------------------------------------- *)

let constraint_graph_shape () =
  let doc = health_doc () in
  let cg = Secure.Constraint_graph.build doc (health_scs ()) in
  let tags = List.map fst cg.Secure.Constraint_graph.graph.Secure.Vertex_cover.weights in
  Alcotest.(check (list string)) "vertices"
    [ "SSN"; "disease"; "doctor"; "pname" ]
    (List.sort String.compare tags);
  Alcotest.(check int) "edges" 3
    (List.length cg.Secure.Constraint_graph.graph.Secure.Vertex_cover.edges);
  Alcotest.(check int) "mandatory = insurance nodes" 3
    (List.length cg.Secure.Constraint_graph.mandatory);
  (* pname weight: 2 leaf nodes, subtree 1 + decoy 1 each = 4. *)
  Alcotest.(check (float 1e-9)) "pname weight" 4.0
    (List.assoc "pname" cg.Secure.Constraint_graph.graph.Secure.Vertex_cover.weights)

(* --- Schemes ------------------------------------------------------ *)

let scheme_construction () =
  let doc = health_doc () in
  let scs = health_scs () in
  let opt = Secure.Scheme.build doc scs Secure.Scheme.Opt in
  Alcotest.(check int) "opt size (3 insurance + cheapest cover)" 22
    (Secure.Scheme.size doc opt);
  let top = Secure.Scheme.build doc scs Secure.Scheme.Top in
  Alcotest.(check int) "top is whole doc" (Doc.node_count doc)
    (Secure.Scheme.size doc top);
  Alcotest.(check int) "top single block" 1 (Secure.Scheme.block_count top);
  let sub = Secure.Scheme.build doc scs Secure.Scheme.Sub in
  Alcotest.(check bool) "sub coarser than opt" true
    (Secure.Scheme.block_count sub < Secure.Scheme.block_count opt);
  List.iter
    (fun kind ->
      let s = Secure.Scheme.build doc scs kind in
      match Secure.Scheme.enforces doc s scs with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "%s does not enforce: %s" (Secure.Scheme.kind_to_string kind) e)
    Secure.Scheme.all_kinds

let scheme_no_nested_blocks =
  QCheck.Test.make ~name:"block roots are never nested" ~count:50
    Helpers.arbitrary_doc
    (fun doc ->
      (* Improvised SCs over the random tag pool. *)
      let scs = [ Sc.parse "//a"; Sc.parse "//item:(/name, /price)" ] in
      List.for_all
        (fun kind ->
          let s = Secure.Scheme.build doc scs kind in
          let roots = s.Secure.Scheme.block_roots in
          List.for_all
            (fun r ->
              List.for_all
                (fun r' -> r = r' || not (Doc.is_ancestor doc r r'))
                roots)
            roots)
        Secure.Scheme.all_kinds)

let broken_scheme_detected () =
  let doc = health_doc () in
  let scs = health_scs () in
  (* A scheme that encrypts nothing cannot enforce the SCs. *)
  let broken = { Secure.Scheme.kind = Secure.Scheme.Opt; block_roots = []; covered_tags = [] } in
  (match Secure.Scheme.enforces doc broken scs with
   | Ok () -> Alcotest.fail "empty scheme must not enforce"
   | Error _ -> ())

(* --- Encryption --------------------------------------------------- *)

let encrypt_roundtrip () =
  let doc = health_doc () in
  let scs = health_scs () in
  let keys = keys () in
  let scheme = Secure.Scheme.build doc scs Secure.Scheme.Opt in
  let db = Secure.Encrypt.encrypt ~keys doc scheme in
  Alcotest.(check int) "block count matches scheme" (Secure.Scheme.block_count scheme)
    (List.length db.Secure.Encrypt.blocks);
  List.iter
    (fun b ->
      let tree = Secure.Encrypt.decrypt_block ~keys b in
      Alcotest.(check bool)
        (Printf.sprintf "block %d decrypts to its subtree" b.Secure.Encrypt.id)
        true
        (Tree.equal tree (Doc.subtree doc b.Secure.Encrypt.root)))
    db.Secure.Encrypt.blocks

let encrypt_decoys_diversify () =
  let doc = health_doc () in
  let keys = keys () in
  (* Encrypt the two 'diarrhea' disease leaves: ciphertexts and decoys
     must differ even though plaintext values coincide. *)
  let diseases =
    List.filter (fun n -> Doc.value doc n = Some "diarrhea") (Doc.nodes_with_tag doc "disease")
  in
  let scheme =
    { Secure.Scheme.kind = Secure.Scheme.Opt; block_roots = diseases; covered_tags = [] }
  in
  let db = Secure.Encrypt.encrypt ~keys doc scheme in
  (match db.Secure.Encrypt.blocks with
   | [ b1; b2 ] ->
     Alcotest.(check bool) "decoys applied" true
       (b1.Secure.Encrypt.has_decoy && b2.Secure.Encrypt.has_decoy);
     Alcotest.(check bool) "distinct ciphertexts" false
       (b1.Secure.Encrypt.ciphertext = b2.Secure.Encrypt.ciphertext);
     (* Decoy stripped on decryption. *)
     Alcotest.(check bool) "decoy removed" true
       (Tree.equal (Secure.Encrypt.decrypt_block ~keys b1) (Tree.leaf "disease" "diarrhea"))
   | _ -> Alcotest.fail "expected two blocks")

let encrypt_skeleton () =
  let doc = health_doc () in
  let scs = health_scs () in
  let db =
    Secure.Encrypt.encrypt ~keys:(keys ()) doc
      (Secure.Scheme.build doc scs Secure.Scheme.Opt)
  in
  let skeleton_str = Xmlcore.Printer.tree_to_string db.Secure.Encrypt.skeleton in
  let contains_substring haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
    at 0
  in
  (* The sensitive values are gone from the public part. *)
  List.iter
    (fun secret ->
      Alcotest.(check bool) (secret ^ " hidden") false
        (contains_substring skeleton_str secret))
    [ "Betty"; "Matt"; "diarrhea"; "leukemia"; "34221" ];
  Alcotest.(check bool) "placeholders present" true
    (contains_substring skeleton_str "<_enc_block_")

let tampered_blocks_rejected () =
  let doc = health_doc () in
  let keys = keys () in
  let scheme = Secure.Scheme.build doc (health_scs ()) Secure.Scheme.Opt in
  let db = Secure.Encrypt.encrypt ~keys doc scheme in
  let block = List.hd db.Secure.Encrypt.blocks in
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    Bytes.to_string b
  in
  let expect_tampered label b =
    match Secure.Encrypt.decrypt_block ~keys b with
    | _ -> Alcotest.failf "%s: tampering not detected" label
    | exception Secure.Encrypt.Tampered id ->
      Alcotest.(check int) "right block blamed" b.Secure.Encrypt.id id
  in
  (* Flip a ciphertext byte. *)
  expect_tampered "body flip"
    { block with
      Secure.Encrypt.ciphertext = flip block.Secure.Encrypt.ciphertext 3 };
  (* Flip a tag byte. *)
  expect_tampered "tag flip"
    { block with
      Secure.Encrypt.ciphertext =
        flip block.Secure.Encrypt.ciphertext
          (String.length block.Secure.Encrypt.ciphertext - 1) };
  (* Swap two blocks' ciphertexts: the id binding catches it. *)
  (match db.Secure.Encrypt.blocks with
   | b1 :: b2 :: _ ->
     expect_tampered "block swap"
       { b1 with Secure.Encrypt.ciphertext = b2.Secure.Encrypt.ciphertext }
   | _ -> Alcotest.fail "expected at least two blocks");
  (* Truncation. *)
  expect_tampered "truncation" { block with Secure.Encrypt.ciphertext = "xy" }

let encrypted_tags_partition () =
  let doc = health_doc () in
  let scs = health_scs () in
  let db =
    Secure.Encrypt.encrypt ~keys:(keys ()) doc
      (Secure.Scheme.build doc scs Secure.Scheme.Opt)
  in
  Alcotest.(check bool) "insurance tag encrypted" true
    (List.mem "insurance" db.Secure.Encrypt.encrypted_tags);
  Alcotest.(check bool) "patient tag plaintext" true
    (List.mem "patient" db.Secure.Encrypt.plaintext_tags);
  Alcotest.(check bool) "patient not in encrypted set" false
    (List.mem "patient" db.Secure.Encrypt.encrypted_tags)

(* --- OPESS -------------------------------------------------------- *)

let opess_build tag histogram =
  Secure.Opess.build ~key:("opess-" ^ tag) ~attr_id:3 ~tag histogram

let opess_figure6 () =
  (* Figure 6's input: a skewed distribution. *)
  let histogram =
    [ "1001", 21; "932", 8; "23", 26; "77", 7; "90", 34; "12", 14 ]
  in
  let cat = opess_build "val" histogram in
  let m = Secure.Opess.chunk_parameter cat in
  Alcotest.(check bool) "m chosen sensibly" true (m >= 2);
  (* Every ciphertext frequency lies in {m-1, m, m+1} (no singletons here). *)
  List.iter
    (fun (_, count) ->
      Alcotest.(check bool)
        (Printf.sprintf "chunk size %d in band around %d" count m)
        true
        (count = m - 1 || count = m || count = m + 1))
    (Secure.Opess.ciphertext_histogram cat);
  (* Counts are preserved: sum of chunks = original frequency. *)
  List.iter
    (fun entry ->
      Alcotest.(check int)
        (entry.Secure.Opess.value ^ " count preserved")
        entry.Secure.Opess.count
        (List.fold_left
           (fun acc c -> acc + c.Secure.Opess.occurrences)
           0 entry.Secure.Opess.chunks))
    (Secure.Opess.entries cat)

let opess_no_straddle () =
  let histogram = [ "10", 13; "12", 5; "23", 26; "40", 9 ] in
  let cat = opess_build "num" histogram in
  (* Chunks of consecutive values must not interleave. *)
  let rec check = function
    | e1 :: (e2 :: _ as rest) ->
      let max1 =
        List.fold_left (fun acc c -> max acc c.Secure.Opess.cipher) Int64.min_int
          e1.Secure.Opess.chunks
      in
      let min2 =
        List.fold_left (fun acc c -> min acc c.Secure.Opess.cipher) Int64.max_int
          e2.Secure.Opess.chunks
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s < %s" e1.Secure.Opess.value e2.Secure.Opess.value)
        true (max1 < min2);
      check rest
    | [ _ ] | [] -> ()
  in
  check (Secure.Opess.entries cat)

let opess_translate_soundness () =
  let histogram = [ "10", 13; "12", 5; "23", 26; "40", 9 ] in
  let cat = opess_build "num" histogram in
  let covered op lit value =
    let ranges = Secure.Opess.translate cat op lit in
    match Secure.Opess.find_entry cat value with
    | None -> false
    | Some e ->
      List.for_all
        (fun c ->
          List.exists (fun (lo, hi) -> c.Secure.Opess.cipher >= lo && c.Secure.Opess.cipher <= hi)
            ranges)
        e.Secure.Opess.chunks
  in
  let not_covered op lit value =
    let ranges = Secure.Opess.translate cat op lit in
    match Secure.Opess.find_entry cat value with
    | None -> true
    | Some e ->
      List.for_all
        (fun c ->
          not
            (List.exists
               (fun (lo, hi) -> c.Secure.Opess.cipher >= lo && c.Secure.Opess.cipher <= hi)
               ranges))
        e.Secure.Opess.chunks
  in
  Alcotest.(check bool) "eq covers all chunks of 23" true (covered Xpath.Ast.Eq "23" "23");
  Alcotest.(check bool) "eq excludes 40" true (not_covered Xpath.Ast.Eq "23" "40");
  Alcotest.(check bool) "ge 12 covers 23" true (covered Xpath.Ast.Ge "12" "23");
  Alcotest.(check bool) "ge 12 covers 12" true (covered Xpath.Ast.Ge "12" "12");
  Alcotest.(check bool) "ge 12 excludes 10" true (not_covered Xpath.Ast.Ge "12" "10");
  Alcotest.(check bool) "lt 23 covers 10" true (covered Xpath.Ast.Lt "23" "10");
  Alcotest.(check bool) "lt 23 excludes 40" true (not_covered Xpath.Ast.Lt "23" "40");
  Alcotest.(check bool) "neq excludes 12" true (not_covered Xpath.Ast.Neq "12" "12");
  Alcotest.(check bool) "neq covers others" true
    (covered Xpath.Ast.Neq "12" "10" && covered Xpath.Ast.Neq "12" "40");
  Alcotest.(check (list (pair int64 int64))) "eq on absent value" []
    (Secure.Opess.translate cat Xpath.Ast.Eq "17")

let opess_properties =
  QCheck.Test.make ~name:"opess invariants on random histograms" ~count:100
    QCheck.(small_list (pair (int_range 0 500) (int_range 1 60)))
    (fun raw ->
      (* Distinct values with positive counts. *)
      let histogram =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) raw
        |> List.map (fun (v, c) -> string_of_int v, c)
      in
      histogram = []
      ||
      let cat = opess_build "prop" histogram in
      let m = Secure.Opess.chunk_parameter cat in
      (* (1) counts preserved, (2) chunk sizes in band (or singleton),
         (3) no straddling, (4) ciphers strictly increasing within an
         entry. *)
      let entries = Secure.Opess.entries cat in
      let counts_ok =
        List.for_all
          (fun e ->
            e.Secure.Opess.count
            = List.fold_left (fun a c -> a + c.Secure.Opess.occurrences) 0
                e.Secure.Opess.chunks)
          entries
      in
      let sizes_ok =
        List.for_all
          (fun e ->
            List.for_all
              (fun c ->
                let n = c.Secure.Opess.occurrences in
                n = 1 || n = m - 1 || n = m || n = m + 1)
              e.Secure.Opess.chunks)
          entries
      in
      let rec no_straddle = function
        | e1 :: (e2 :: _ as rest) ->
          let max1 =
            List.fold_left (fun a c -> max a c.Secure.Opess.cipher) Int64.min_int
              e1.Secure.Opess.chunks
          in
          let min2 =
            List.fold_left (fun a c -> min a c.Secure.Opess.cipher) Int64.max_int
              e2.Secure.Opess.chunks
          in
          max1 < min2 && no_straddle rest
        | [ _ ] | [] -> true
      in
      counts_ok && sizes_ok && no_straddle entries)

let opess_scaling () =
  let histogram = [ "a", 10; "b", 20; "c", 5 ] in
  let cat = opess_build "cat" histogram in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Secure.Opess.value ^ " scale in [1,10]")
        true
        (e.Secure.Opess.scale >= 1 && e.Secure.Opess.scale <= 10))
    (Secure.Opess.entries cat);
  (* Scaled histogram totals = chunk totals x per-value scale. *)
  let scaled_total =
    List.fold_left (fun a (_, c) -> a + c) 0 (Secure.Opess.scaled_histogram cat)
  in
  let expected =
    List.fold_left
      (fun a e -> a + (e.Secure.Opess.count * e.Secure.Opess.scale))
      0 (Secure.Opess.entries cat)
  in
  Alcotest.(check int) "scaled totals" expected scaled_total

let opess_negative_numbers () =
  (* Numeric domains may include negatives (temperatures, deltas). *)
  let histogram = [ "-40", 9; "-7", 13; "0", 5; "12", 21 ] in
  let cat = opess_build "temp" histogram in
  Alcotest.(check (list string)) "numeric order with negatives"
    [ "-40"; "-7"; "0"; "12" ]
    (List.map (fun e -> e.Secure.Opess.value) (Secure.Opess.entries cat));
  (* Range semantics across zero. *)
  let ranges = Secure.Opess.translate cat Xpath.Ast.Lt "0" in
  let covered v =
    match Secure.Opess.find_entry cat v with
    | None -> false
    | Some e ->
      List.for_all
        (fun c ->
          List.exists
            (fun (lo, hi) -> c.Secure.Opess.cipher >= lo && c.Secure.Opess.cipher <= hi)
            ranges)
        e.Secure.Opess.chunks
  in
  Alcotest.(check bool) "-40 < 0" true (covered "-40");
  Alcotest.(check bool) "-7 < 0" true (covered "-7");
  Alcotest.(check bool) "0 not < 0" false (covered "0");
  Alcotest.(check bool) "12 not < 0" false (covered "12")

let opess_categorical () =
  let histogram = [ "apple", 7; "banana", 3; "cherry", 9 ] in
  let cat = opess_build "fruit" histogram in
  (* Ordering is lexicographic for categorical domains. *)
  Alcotest.(check (list string)) "sorted domain" [ "apple"; "banana"; "cherry" ]
    (List.map (fun e -> e.Secure.Opess.value) (Secure.Opess.entries cat));
  Alcotest.(check bool) "range query across strings" true
    (Secure.Opess.translate cat Xpath.Ast.Ge "banana" <> [])

let opess_occurrence_cipher () =
  let histogram = [ "v", 10 ] in
  let cat = opess_build "occ" histogram in
  (* All 10 occurrences map to some chunk cipher; chunk fill is
     left-to-right, so ciphers are non-decreasing in occurrence. *)
  let ciphers =
    List.init 10 (fun i -> Secure.Opess.occurrence_cipher cat ~value:"v" ~occurrence:i)
  in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone fill" true (non_decreasing ciphers);
  Alcotest.check_raises "occurrence out of range" Not_found (fun () ->
      ignore (Secure.Opess.occurrence_cipher cat ~value:"v" ~occurrence:10));
  Alcotest.check_raises "unknown value" Not_found (fun () ->
      ignore (Secure.Opess.occurrence_cipher cat ~value:"w" ~occurrence:0))

(* --- Metadata ----------------------------------------------------- *)

let metadata_build () =
  let doc = health_doc () in
  let scs = health_scs () in
  let keys = keys () in
  let scheme = Secure.Scheme.build doc scs Secure.Scheme.Opt in
  let db = Secure.Encrypt.encrypt ~keys doc scheme in
  let meta = Secure.Metadata.build ~keys db in
  (* Block table has one representative interval per block. *)
  Alcotest.(check int) "block table" (List.length db.Secure.Encrypt.blocks)
    (List.length meta.Secure.Metadata.block_table);
  (* Grouping shrinks the table below the node count. *)
  Alcotest.(check bool) "grouping reduces entries" true
    (Secure.Metadata.table_entry_count meta <= Doc.node_count doc);
  (* Betty's two adjacent policy# leaves share one insurance block, so
     they must be grouped: count table intervals with encrypted tokens
     vs the raw node count. *)
  Alcotest.(check bool) "policy# grouped" true
    (Secure.Metadata.table_entry_count meta < Doc.node_count doc);
  (* Catalogs exist for every leaf tag. *)
  List.iter
    (fun tag ->
      Alcotest.(check bool) (tag ^ " catalog") true
        (Option.is_some (Secure.Metadata.catalog meta ~tag)))
    (Xmlcore.Stats.leaf_tags doc);
  (* B-tree entries: one per occurrence per scale replica, validated tree. *)
  Alcotest.(check bool) "btree nonempty" true
    (Secure.Metadata.btree_entry_count meta > 0);
  (match Btree.validate meta.Secure.Metadata.btree with
   | Ok () -> ()
   | Error e -> Alcotest.fail e)

let metadata_tokens_hide_tags () =
  let doc = health_doc () in
  let scs = health_scs () in
  let keys = keys () in
  let db = Secure.Encrypt.encrypt ~keys doc (Secure.Scheme.build doc scs Secure.Scheme.Opt) in
  let meta = Secure.Metadata.build ~keys db in
  (* No DSI table key may leak an encrypted tag in the clear. *)
  List.iter
    (fun (key, _) ->
      List.iter
        (fun secret_tag ->
          Alcotest.(check bool)
            (* The "secret" here is the tag *name* under test, printed
               only into the test description. *)
            (* lint: allow secret-print *)
            (Printf.sprintf "%s hidden in %s" secret_tag key)
            false
            (String.equal key ("P:" ^ secret_tag)))
        [ "insurance"; "policy#"; "@coverage"; "pname" ])
    meta.Secure.Metadata.dsi_table

(* --- Attacks ------------------------------------------------------ *)

let frequency_attack_breaks_naive () =
  let known = [ "flu", 5; "cold", 9; "rare", 1; "odd", 3 ] in
  let observed = Secure.Attack.deterministic_leaf_histogram known in
  let result = Secure.Attack.frequency_attack ~known ~observed in
  (* All four frequencies are unique: full crack. *)
  Alcotest.(check int) "all cracked" 4 (List.length result.Secure.Attack.cracked);
  Alcotest.(check (float 1e-9)) "rate" 1.0 result.Secure.Attack.crack_rate

let frequency_attack_fails_on_opess () =
  let known = [ "flu", 15; "cold", 9; "rare", 21; "odd", 3 ] in
  let cat = Secure.Opess.build ~key:"fa" ~attr_id:1 ~tag:"t" known in
  let observed = Secure.Opess.scaled_histogram cat in
  let result = Secure.Attack.frequency_attack ~known ~observed in
  Alcotest.(check int) "nothing cracked" 0 (List.length result.Secure.Attack.cracked)

let coalescing_attack_cases () =
  (* Hand-checkable: plaintext frequencies (5, 7) in order; split-only
     ciphertext counts (2,3, 3,4) admit exactly the one partition
     [2+3 | 3+4]. *)
  let known = [ "a", 5; "b", 7 ] in
  let split_only = [ 1L, 2; 2L, 3; 3L, 3; 4L, 4 ] in
  let r = Secure.Attack.coalescing_attack ~known ~observed:split_only in
  Alcotest.(check bool) "unique partition cracks" true r.Secure.Attack.unique;
  (* With positive counts and fixed order, matching sums force a unique
     partition — the dangerous case.  After scaling the sums no longer
     match any partition. *)
  let scaled = [ 1L, 4; 2L, 6; 3L, 9; 4L, 12 ] in
  let r = Secure.Attack.coalescing_attack ~known ~observed:scaled in
  Alcotest.(check int) "scaling kills all partitions" 0 r.Secure.Attack.valid_partitions;
  (* End-to-end via OPESS. *)
  let hist = [ "10", 14; "20", 9; "30", 23; "40", 11 ] in
  let cat = Secure.Opess.build ~key:"coal" ~attr_id:0 ~tag:"t" hist in
  let known_ordered =
    List.map (fun e -> e.Secure.Opess.value, e.Secure.Opess.count)
      (Secure.Opess.entries cat)
  in
  let split = Secure.Attack.coalescing_attack ~known:known_ordered
      ~observed:(Secure.Opess.ciphertext_histogram cat) in
  Alcotest.(check bool) "split-only crackable" true split.Secure.Attack.unique;
  let full = Secure.Attack.coalescing_attack ~known:known_ordered
      ~observed:(Secure.Opess.scaled_histogram cat) in
  Alcotest.(check bool) "split+scale safe" false full.Secure.Attack.unique

let opess_full_range () =
  let hist = [ "10", 14; "20", 9; "30", 23 ] in
  let cat = Secure.Opess.build ~key:"fr" ~attr_id:5 ~tag:"t" hist in
  (match Secure.Opess.full_range cat with
   | None -> Alcotest.fail "expected a range"
   | Some (lo, hi) ->
     Alcotest.(check bool) "ordered" true (lo < hi);
     (* Every chunk cipher falls inside. *)
     List.iter
       (fun (c, _) -> Alcotest.(check bool) "covered" true (c >= lo && c <= hi))
       (Secure.Opess.ciphertext_histogram cat));
  let empty = Secure.Opess.build ~key:"fr" ~attr_id:5 ~tag:"t" [] in
  Alcotest.(check bool) "empty catalog" true (Secure.Opess.full_range empty = None)

let tag_distribution_attack_cases () =
  (* The paper's acknowledged limitation (Section 8): an attacker with
     tag-census knowledge can match unique per-tag counts against table
     token counts. *)
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let keys = Crypto.Keys.create ~master:"tagatk" () in
  let db = Secure.Encrypt.encrypt ~keys doc (Secure.Scheme.build doc scs Secure.Scheme.Opt) in
  let meta = Secure.Metadata.build ~keys db in
  let known_census = Xmlcore.Stats.tag_census doc in
  let observed =
    List.map (fun (token, ivs) -> token, List.length ivs) meta.Secure.Metadata.dsi_table
  in
  let r = Secure.Attack.tag_distribution_attack ~known_census ~observed in
  (* Some tags are re-identifiable — the attack "works" as the paper
     warns — though grouping erodes it (grouped tokens have fewer
     intervals than nodes). *)
  Alcotest.(check bool) "attack is a real threat" true
    (r.Secure.Attack.identification_rate > 0.0);
  (* Sanity on the arithmetic: a census with all-unique counts against
     an identical observation identifies everything. *)
  let census = [ "a", 3; "b", 5; "c", 9 ] in
  let full =
    Secure.Attack.tag_distribution_attack ~known_census:census ~observed:census
  in
  Alcotest.(check (float 1e-9)) "full identification" 1.0
    full.Secure.Attack.identification_rate;
  (* Duplicate counts block identification. *)
  let census = [ "a", 3; "b", 3 ] in
  let none =
    Secure.Attack.tag_distribution_attack ~known_census:census ~observed:census
  in
  Alcotest.(check int) "ambiguous counts identify nothing" 0
    (List.length none.Secure.Attack.identified)

let size_attack_cases () =
  let r = Secure.Attack.size_attack ~candidate_sizes:[ 100; 100; 90; 100 ] ~target_size:100 in
  Alcotest.(check int) "survivors" 3 r.Secure.Attack.survivors;
  Alcotest.(check int) "candidates" 4 r.Secure.Attack.candidates

let belief_sequence_monotone () =
  let beliefs = Secure.Attack.belief_sequence ~k:5 ~n:15 ~queries:10 in
  (match beliefs with
   | prior :: after_first :: rest ->
     Alcotest.(check (float 1e-9)) "prior 1/k" 0.2 prior;
     Alcotest.(check (float 1e-6)) "posterior 1/C(14,4)" (1.0 /. 1001.0) after_first;
     (* Theorem 6.1: never increases. *)
     List.iter (fun b -> Alcotest.(check (float 1e-12)) "stable" after_first b) rest
   | _ -> Alcotest.fail "sequence too short")

(* --- Access-pattern audit ----------------------------------------- *)

let audit_linkability () =
  let doc = health_doc () in
  let scs = health_scs () in
  let sys, _ = Secure.System.setup doc scs Secure.Scheme.Opt in
  let log = Secure.Audit.create () in
  let observe q =
    let squery = Secure.Client.translate (Secure.System.client sys) (Xpath.Parser.parse q) in
    let request = Secure.Protocol.encode_request squery in
    let response = Secure.Server.answer (Secure.System.server sys) squery in
    Secure.Audit.record log ~request ~response
  in
  (* Same query three times, two other queries. *)
  observe "//patient[pname='Betty']//disease";
  observe "//patient[pname='Betty']//disease";
  observe "//patient[pname='Betty']//disease";
  observe "//insurance";
  observe "//patient[pname='Matt']/SSN";
  let a = Secure.Audit.analyze log in
  Alcotest.(check int) "all observed" 5 a.Secure.Audit.queries;
  Alcotest.(check int) "three distinct requests" 3 a.Secure.Audit.distinct_requests;
  Alcotest.(check int) "repeats recognisable" 2 a.Secure.Audit.repeated_requests;
  Alcotest.(check bool) "patterns bounded by requests" true
    (a.Secure.Audit.distinct_patterns <= a.Secure.Audit.distinct_requests);
  (* Betty's disease blocks co-accessed across the repeats. *)
  Alcotest.(check bool) "co-access pairs surfaced" true
    (List.exists (fun (_, c) -> c >= 3) a.Secure.Audit.top_co_accessed)

(* --- Schema & candidate enumeration ------------------------------- *)

let schema_inference () =
  let doc = health_doc () in
  let schema = Xmlcore.Schema.infer doc in
  Alcotest.(check string) "root" "hospital" (Xmlcore.Schema.root_tag schema);
  (match Xmlcore.Schema.shape schema "treat" with
   | Some s ->
     Alcotest.(check (list string)) "treat children" [ "disease"; "doctor" ]
       s.Xmlcore.Schema.child_tags;
     Alcotest.(check bool) "treat not leaf" false s.Xmlcore.Schema.is_leaf
   | None -> Alcotest.fail "treat shape missing");
  (match Xmlcore.Schema.shape schema "disease" with
   | Some s ->
     Alcotest.(check bool) "disease is leaf" true s.Xmlcore.Schema.is_leaf;
     Alcotest.(check int) "domain size" 3 (List.length s.Xmlcore.Schema.leaf_domain)
   | None -> Alcotest.fail "disease shape missing");
  Alcotest.(check bool) "doc conforms to itself" true
    (Xmlcore.Schema.conforms doc schema = Ok ());
  (* A violating document is caught. *)
  let bad =
    Doc.of_tree
      (Tree.element "hospital" [ Tree.element "patient" [ Tree.leaf "intruder" "x" ] ])
  in
  Alcotest.(check bool) "violation detected" true
    (Xmlcore.Schema.conforms bad schema <> Ok ())

let candidate_enumeration () =
  let doc = health_doc () in
  (* disease slots: diarrhea, flu, leukemia, diarrhea -> 4!/2! = 12. *)
  Alcotest.(check (option int64)) "multinomial" (Some 12L)
    (Secure.Candidates.candidate_count doc ~tag:"disease");
  let all = Secure.Candidates.value_permutations doc ~tag:"disease" ~limit:100 in
  Alcotest.(check int) "all distinct assignments" 12 (List.length all);
  (* Each candidate preserves the histogram. *)
  let original = Xmlcore.Stats.value_histogram doc ~tag:"disease" in
  List.iter
    (fun d ->
      Alcotest.(check (list (pair string int))) "histogram preserved" original
        (Xmlcore.Stats.value_histogram d ~tag:"disease"))
    all;
  (* The limit is respected and the original comes first. *)
  let few = Secure.Candidates.value_permutations doc ~tag:"disease" ~limit:3 in
  Alcotest.(check int) "limited" 3 (List.length few);
  Alcotest.(check bool) "original first" true
    (Tree.equal (Doc.to_tree (List.hd few)) (Doc.to_tree doc))

let theorem_51_compositions () =
  (* Figure 5's example: 7 leaves over 3 intervals -> 15 assignments =
     C(6,2). *)
  let assignments = Secure.Candidates.structural_assignments ~leaves:7 ~intervals:3 in
  Alcotest.(check int) "fifteen possibilities" 15 (List.length assignments);
  Alcotest.(check (option int64)) "matches C(6,2)" (Some 15L)
    (Secure.Counting.compositions_count ~n:7 ~k:3);
  (* Every assignment is positive and sums to the leaf count. *)
  List.iter
    (fun a ->
      Alcotest.(check int) "sums to 7" 7 (List.fold_left ( + ) 0 a);
      Alcotest.(check bool) "positive parts" true (List.for_all (fun p -> p > 0) a))
    assignments;
  (* Distinct assignments. *)
  Alcotest.(check int) "distinct" 15
    (List.length (List.sort_uniq compare assignments));
  (* Materialised candidate subtrees carry all values in order. *)
  let values = [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ] in
  let trees =
    Secure.Candidates.structural_candidate_trees ~tag:"A" ~leaf_tag:"x"
      ~values ~intervals:3
  in
  Alcotest.(check int) "one tree per assignment" 15 (List.length trees);
  List.iter
    (fun t ->
      Alcotest.(check (list (pair string string))) "leaves preserved"
        (List.map (fun v -> "x", v) values)
        (Xmlcore.Tree.leaf_values t))
    trees;
  (* The paper's other worked example: n=15, k=5 -> 1001. *)
  Alcotest.(check int) "n=15 k=5" 1001
    (List.length (Secure.Candidates.structural_assignments ~leaves:15 ~intervals:5))

let theorem_41_empirically () =
  let doc = health_doc () in
  let report =
    Secure.Candidates.indistinguishability_report ~master:"t41"
      ~constraints:(health_scs ()) ~kind:Secure.Scheme.Opt ~tag:"disease"
      ~limit:12 doc
  in
  Alcotest.(check int) "twelve candidates" 12 report.Secure.Candidates.candidates;
  Alcotest.(check bool) "all conform to the schema" true
    report.Secure.Candidates.all_conform;
  Alcotest.(check bool) "equal encrypted sizes (Def 3.1(1))" true
    report.Secure.Candidates.equal_sizes;
  Alcotest.(check bool) "equal index histograms (Def 3.1(2))" true
    report.Secure.Candidates.equal_index_histograms;
  Alcotest.(check int) "exactly one true database (Def 3.3(2))" 1
    report.Secure.Candidates.satisfying_original

let () =
  Alcotest.run "secure"
    [ ( "counting",
        [ Alcotest.test_case "paper examples" `Quick counting_paper_examples;
          Alcotest.test_case "binomials" `Quick counting_binomials ]
        @ List.map QCheck_alcotest.to_alcotest
            [ counting_log_consistency; counting_multinomial_symmetry ] );
      ( "security constraints",
        [ Alcotest.test_case "parsing" `Quick sc_parsing;
          Alcotest.test_case "bindings" `Quick sc_bindings;
          Alcotest.test_case "captured queries" `Quick sc_captured_queries ] );
      ( "vertex cover",
        Alcotest.test_case "exact cases" `Quick vertex_cover_exact
        :: List.map QCheck_alcotest.to_alcotest
             [ exact_is_optimal_prop; greedy_within_factor_two_prop ] );
      ( "constraint graph",
        [ Alcotest.test_case "figure 8 shape" `Quick constraint_graph_shape ] );
      ( "schemes",
        [ Alcotest.test_case "construction" `Quick scheme_construction;
          Alcotest.test_case "broken scheme detected" `Quick broken_scheme_detected ]
        @ List.map QCheck_alcotest.to_alcotest [ scheme_no_nested_blocks ] );
      ( "encryption",
        [ Alcotest.test_case "roundtrip" `Quick encrypt_roundtrip;
          Alcotest.test_case "decoys" `Quick encrypt_decoys_diversify;
          Alcotest.test_case "skeleton hides secrets" `Quick encrypt_skeleton;
          Alcotest.test_case "tampering rejected" `Quick tampered_blocks_rejected;
          Alcotest.test_case "tag partition" `Quick encrypted_tags_partition ] );
      ( "opess",
        [ Alcotest.test_case "figure 6 flattening" `Quick opess_figure6;
          Alcotest.test_case "no straddling" `Quick opess_no_straddle;
          Alcotest.test_case "translate soundness" `Quick opess_translate_soundness;
          Alcotest.test_case "scaling" `Quick opess_scaling;
          Alcotest.test_case "categorical domains" `Quick opess_categorical;
          Alcotest.test_case "negative numeric domains" `Quick opess_negative_numbers;
          Alcotest.test_case "occurrence ciphers" `Quick opess_occurrence_cipher ]
        @ List.map QCheck_alcotest.to_alcotest [ opess_properties ] );
      ( "audit",
        [ Alcotest.test_case "access-pattern linkability" `Quick audit_linkability ] );
      ( "schema & candidates",
        [ Alcotest.test_case "schema inference" `Quick schema_inference;
          Alcotest.test_case "candidate enumeration" `Quick candidate_enumeration;
          Alcotest.test_case "Theorem 5.1 compositions" `Quick theorem_51_compositions;
          Alcotest.test_case "Theorem 4.1 empirically" `Quick theorem_41_empirically ] );
      ( "metadata",
        [ Alcotest.test_case "build" `Quick metadata_build;
          Alcotest.test_case "tokens hide tags" `Quick metadata_tokens_hide_tags ] );
      ( "attacks",
        [ Alcotest.test_case "breaks naive scheme" `Quick frequency_attack_breaks_naive;
          Alcotest.test_case "fails on OPESS" `Quick frequency_attack_fails_on_opess;
          Alcotest.test_case "coalescing attack" `Quick coalescing_attack_cases;
          Alcotest.test_case "tag-distribution attack" `Quick tag_distribution_attack_cases;
          Alcotest.test_case "opess full range" `Quick opess_full_range;
          Alcotest.test_case "size attack" `Quick size_attack_cases;
          Alcotest.test_case "belief sequence" `Quick belief_sequence_monotone ] ) ]
