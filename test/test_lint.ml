(* sxq-lint tests: the OCaml lexer, each rule against inline fixtures,
   suppression comments, baseline behaviour, and the gate property that
   a seeded trust-boundary violation produces findings (which makes the
   driver — and therefore `make check` — exit non-zero). *)

module Lexer = Analysis.Lexer
module Rules = Analysis.Rules
module Policy = Analysis.Policy
module Lint = Analysis.Lint
module Finding = Analysis.Finding

let rule_ids findings = List.map (fun f -> f.Finding.rule) findings

let count_rule id findings =
  List.length (List.filter (fun f -> f.Finding.rule = id) findings)

let lint rel src = Lint.check_source ~rel src

let check_rules name expected rel src =
  Alcotest.(check (list string)) name expected
    (List.sort_uniq String.compare (rule_ids (lint rel src)))

(* --- Lexer ---------------------------------------------------------- *)

let token_names (lex : Lexer.t) =
  Array.to_list lex.tokens
  |> List.filter_map (fun (t : Lexer.token) ->
         match t.kind with
         | Lexer.Lident s -> Some ("l:" ^ s)
         | Lexer.Uident s -> Some ("u:" ^ s)
         | Lexer.Keyword s -> Some ("k:" ^ s)
         | _ -> None)

let lexer_nested_comments () =
  let lex =
    Lexer.tokenize
      "let a = 1 (* outer (* nested *) \"a string with *) inside\" tail *) let b = 2"
  in
  Alcotest.(check (list string)) "comment hides everything"
    [ "k:let"; "l:a"; "k:let"; "l:b" ] (token_names lex);
  Alcotest.(check int) "one comment" 1 (List.length lex.comments);
  match lex.comments with
  | [ c ] ->
    Alcotest.(check bool) "body kept" true
      (String.length c.Lexer.text > 0
      && c.Lexer.start_line = 1 && c.Lexer.end_line = 1)
  | _ -> Alcotest.fail "expected exactly one comment"

let lexer_strings () =
  let lex =
    Lexer.tokenize "let s = \"not (* a comment *) \\\" still\" ^ other"
  in
  Alcotest.(check int) "no comments" 0 (List.length lex.comments);
  let strings =
    Array.to_list lex.tokens
    |> List.filter (fun (t : Lexer.token) -> t.kind = Lexer.String_lit)
  in
  Alcotest.(check int) "one string" 1 (List.length strings);
  Alcotest.(check (list string)) "idents survive"
    [ "k:let"; "l:s"; "l:other" ] (token_names lex)

let lexer_quoted_strings () =
  let lex = Lexer.tokenize "let s = {|raw \" (* |} and {id| nested |x} |id}" in
  Alcotest.(check int) "no comments" 0 (List.length lex.comments);
  let strings =
    Array.to_list lex.tokens
    |> List.filter (fun (t : Lexer.token) -> t.kind = Lexer.String_lit)
  in
  Alcotest.(check int) "two quoted strings" 2 (List.length strings)

let lexer_char_literals () =
  (* 'x' and '\n' are chars; 'a in [type 'a t] is a type variable and
     must not swallow the rest of the line as a literal. *)
  let lex = Lexer.tokenize "let c = 'x' let nl = '\\n' type 'a t = 'a list" in
  let chars =
    Array.to_list lex.tokens
    |> List.filter (fun (t : Lexer.token) -> t.kind = Lexer.Char_lit)
  in
  Alcotest.(check int) "two char literals" 2 (List.length chars);
  Alcotest.(check bool) "type variable lexes as ident" true
    (List.mem "l:a" (token_names lex))

let lexer_positions () =
  let lex = Lexer.tokenize "let a =\n  String.equal\n" in
  let tok name =
    Array.to_list lex.tokens
    |> List.find (fun (t : Lexer.token) -> t.kind = Lexer.Uident name)
  in
  let t = tok "String" in
  Alcotest.(check (pair int int)) "line/col" (2, 3) (t.line, t.col)

(* --- Module references and aliases ---------------------------------- *)

let refs_of src =
  List.map
    (fun r -> String.concat "." r.Rules.path)
    (Rules.module_refs (Lexer.tokenize src))

let module_refs_basic () =
  let refs = refs_of "let f d = Crypto.Hmac.mac ~key:(Xpath.Parser.parse d)" in
  Alcotest.(check bool) "Crypto.Hmac.mac" true (List.mem "Crypto.Hmac.mac" refs);
  Alcotest.(check bool) "Xpath.Parser.parse" true
    (List.mem "Xpath.Parser.parse" refs)

let module_refs_alias () =
  let refs = refs_of "module D = Xmlcore.Doc\nlet f d = D.tag d" in
  Alcotest.(check bool) "alias expanded" true
    (List.mem "Xmlcore.Doc.tag" refs);
  Alcotest.(check bool) "binder is not a reference" true
    (not (List.exists (fun r -> r = "D" || r = "D.tag") refs))

let binding_vs_comparison () =
  let src = "let f ?(u = dflt) v = { r with fld = v } in if a = b then ()" in
  let lex = Lexer.tokenize src in
  let eq_sites =
    Array.to_list lex.tokens
    |> List.mapi (fun i (t : Lexer.token) -> i, t)
    |> List.filter (fun (_, (t : Lexer.token)) -> t.kind = Lexer.Op "=")
    |> List.map (fun (i, _) -> Rules.is_binding_eq lex.tokens i)
  in
  (* ?(u = dflt), the function's own =, the record field: bindings;
     the [if a = b]: a comparison. *)
  Alcotest.(check (list bool)) "binding classification"
    [ true; true; true; false ] eq_sites

(* --- Layering ------------------------------------------------------- *)

let layering_rejects_upward_dep () =
  check_rules "crypto must not reach secure" [ "layering" ]
    "lib/crypto/evil.ml" "let x = Secure.Server.answer"

let layering_rejects_sideways_dep () =
  check_rules "xmlcore must not reach xpath" [ "layering" ]
    "lib/xmlcore/evil.ml" "let x = Xpath.Parser.parse"

let layering_allows_declared_deps () =
  check_rules "secure may use dsi/crypto/btree" []
    "lib/secure/fine.ml"
    "let x = Dsi.Interval.make 0.0 1.0\n\
     let y = Crypto.Hmac.mac\n\
     let z = Btree.range"

let layering_ignores_bin_and_test () =
  check_rules "binaries may use everything" [] "bin/tool.ml"
    "let x = Secure.Server.answer\nlet y = Workload.Xmark.generate"

let layering_engine_cannot_reach_xmlcore () =
  (* The engine sits above the secure layer but below the plaintext
     world: a new engine source reaching Xmlcore breaches layering, and
     in a module named by the per-file boundary table it additionally
     breaches the trust boundary. *)
  check_rules "fresh engine file: layering only" [ "layering" ]
    "lib/engine/evil.ml" "let leak d = Xmlcore.Doc.tag d 0";
  check_rules "listed engine module: both rules" [ "layering"; "trust-boundary" ]
    "lib/engine/exec.ml" "let leak d = Xmlcore.Doc.tag d 0"

let layering_engine_declared_deps_ok () =
  check_rules "engine may use xpath/dsi/secure" [] "lib/engine/fine.ml"
    "let a = Secure.Server.lookup\n\
     let b = Dsi.Interval.contains\n\
     let c = Xpath.Ast.Child"

let layering_obs_is_a_leaf () =
  (* Obs must stay below everything: an observability module that
     reached back into the secure layer could smuggle protocol state
     into what looks like passive accounting. *)
  check_rules "obs must not reach secure" [ "layering" ]
    "lib/obs/evil.ml" "let peek () = Secure.Server.answer";
  check_rules "obs must not reach the engine" [ "layering" ]
    "lib/obs/evil2.ml" "let peek e = Engine.stats e"

let layering_allows_obs_from_instrumented_layers () =
  check_rules "secure may bump obs counters" [] "lib/secure/fine_obs.ml"
    "let bump c = Obs.Metric.incr c\nlet t = Obs.Trace.create ()";
  check_rules "engine may bump obs counters" [] "lib/engine/fine_obs.ml"
    "let bump c = Obs.Metric.incr c"

let layering_serve_is_the_top () =
  (* The serving tier may orchestrate over the system/engine surface
     but nothing below it may reach up: serve at the top of the DAG. *)
  check_rules "serve may use its declared deps" [] "lib/serve/fine.ml"
    "let a s q = Secure.System.try_evaluate s q\n\
     let b e q = Engine.evaluate e q\n\
     let c p f xs = Parallel.Pool.map p f xs\n\
     let d r = Obs.Metric.snapshot r";
  check_rules "secure must not reach serve" [ "layering" ]
    "lib/secure/evil_serve.ml" "let s = Serve.create ()";
  check_rules "engine must not reach serve" [ "layering" ]
    "lib/engine/evil_serve.ml" "let s = Serve.default_config";
  check_rules "obs must not reach serve" [ "layering" ]
    "lib/obs/evil_serve.ml" "let s = Serve.create ()"

(* --- Trust boundary ------------------------------------------------- *)

let boundary_rejects_plaintext_on_server () =
  (* The acceptance fixture: a synthetic Server -> Xmlcore.Doc
     reference must be rejected. *)
  check_rules "server.ml may not touch Xmlcore.Doc" [ "trust-boundary" ]
    "lib/secure/server.ml" "let f d = Xmlcore.Doc.tag d 0"

let boundary_rejects_keys_on_server () =
  check_rules "server.ml may not touch the key ring" [ "trust-boundary" ]
    "lib/secure/server.ml" "let f k = Crypto.Keys.dsi_key k"

let boundary_sees_through_aliases () =
  check_rules "module alias does not evade the boundary" [ "trust-boundary" ]
    "lib/secure/server.ml" "module D = Xmlcore.Doc\nlet f d = D.tag d"

let boundary_rejects_bare_open () =
  check_rules "open Xmlcore defeats checking, so it is rejected"
    [ "trust-boundary" ] "lib/secure/server.ml" "open Xmlcore"

let boundary_is_per_file () =
  check_rules "client code may use plaintext modules" []
    "lib/secure/client_side.ml"
    "let f d = Xmlcore.Doc.tag d 0\nlet g k = Crypto.Keys.dsi_key k"

let boundary_allows_serverside_modules () =
  check_rules "server.ml keeps its legitimate deps" []
    "lib/secure/server.ml"
    "module Interval = Dsi.Interval\nlet f = Btree.range\nlet g = Xpath.Ast.Child"

let boundary_rejects_keys_in_engine () =
  (* Any engine module deriving keys would move decryption across the
     trust boundary; crypto is also absent from the engine's allowed
     deps, so layering fires alongside. *)
  check_rules "engine may not touch the key ring"
    [ "layering"; "trust-boundary" ]
    "lib/engine/exec.ml" "let k keys = Crypto.Keys.block_key keys 0"

let boundary_rejects_plaintext_in_obs () =
  (* A metric or ledger row that could name the plaintext-document
     layer or the key ring would be a leak by construction: the ledger
     is the model of what the *server* sees.  Listed obs modules breach
     both the layering DAG and the per-file boundary table. *)
  check_rules "obs ledger may not touch Xmlcore.Doc"
    [ "layering"; "trust-boundary" ]
    "lib/obs/ledger.ml" "let leak d = Xmlcore.Doc.tag d 0";
  check_rules "obs metric may not touch the key ring"
    [ "layering"; "trust-boundary" ]
    "lib/obs/metric.ml" "let k keys = Crypto.Keys.block_key keys 0"

let boundary_rejects_plaintext_in_serve () =
  (* The serving tier holds whole tenant hostings, so the temptation to
     peek is real: naming the plaintext-document layer or the key ring
     in a listed serve module breaches both the DAG and the per-file
     boundary table. *)
  check_rules "serve may not touch Xmlcore.Tree"
    [ "layering"; "trust-boundary" ]
    "lib/serve/serve.ml" "let leak t = Xmlcore.Tree.value t";
  check_rules "serve may not touch the key ring"
    [ "layering"; "trust-boundary" ]
    "lib/serve/breaker.ml" "let k keys = Crypto.Keys.block_key keys 0";
  check_rules "opaque answers are fine" [] "lib/serve/serve.ml"
    "let pass (a : Secure.Client.answer list) = a"

let boundary_rejects_plaintext_in_attack () =
  (* The adversary simulator works from the leakage ledger alone.  A
     listed attack module naming the plaintext-document layer is the
     adversary cheating (layering fires too: xmlcore is not among
     attack's declared deps), and the key ring would let it decrypt
     instead of infer. *)
  check_rules "attack passes may not touch Xmlcore.Doc"
    [ "layering"; "trust-boundary" ]
    "lib/attack/passes.ml" "let cheat d = Xmlcore.Doc.tag d 0";
  check_rules "attack mitigate may not render plaintext answers"
    [ "layering"; "trust-boundary" ]
    "lib/attack/mitigate.ml" "let peek t = Xmlcore.Printer.tree_to_string t";
  check_rules "attack trace may not touch the key ring" [ "trust-boundary" ]
    "lib/attack/trace.ml" "let k keys = Crypto.Keys.block_key keys 0";
  check_rules "ledger-only inputs are fine" [] "lib/attack/trace.ml"
    "let n l = List.length (Obs.Ledger.rounds l)\n\
     let u = Crypto.Prng.create ~seed:1L"

let boundary_allows_plain_obs_code () =
  check_rules "self-contained obs code is clean" [] "lib/obs/metric.ml"
    "let bump t = t.count <- t.count + 1\n\
     let render t = Buffer.add_string t.buf (string_of_int t.count)"

(* --- Crypto hygiene ------------------------------------------------- *)

let ct_rule_flags_string_equal () =
  check_rules "String.equal on a mac" [ "mac-compare" ]
    "lib/secure/fx1.ml" "let verify expected_hmac given = String.equal expected_hmac given"

let ct_rule_flags_structural_eq () =
  check_rules "structural = on a digest" [ "mac-compare" ]
    "lib/secure/fx2.ml" "let ok st = st.digest = expected st"

let ct_rule_ignores_bindings () =
  check_rules "let-binding of a mac value is fine" []
    "lib/secure/fx3.ml"
    "let block_hmac = compute ()\nlet stored_digest = fetch ()"

let ct_rule_ignores_neutral_names () =
  check_rules "comparisons without sensitive names are fine" []
    "lib/secure/fx4.ml" "let same a b = String.equal a b && a = b"

let random_rule_flags_stdlib_random () =
  check_rules "Random outside prng.ml" [ "random-source" ]
    "lib/secure/fx5.ml" "let r () = Random.int 5"

let random_rule_allows_prng () =
  check_rules "prng.ml itself is exempt" [] "lib/crypto/prng.ml"
    "let reseed () = Random.self_init ()"

let concurrency_rule_flags_primitives () =
  check_rules "Domain.spawn outside lib/parallel" [ "concurrency" ]
    "lib/secure/fx10.ml" "let d = Domain.spawn (fun () -> 1)";
  check_rules "Mutex outside lib/parallel" [ "concurrency" ]
    "lib/engine/fx10.ml" "let m = Mutex.create ()";
  check_rules "Atomic outside lib/parallel" [ "concurrency" ]
    "lib/secure/fx11.ml" "let c = Atomic.make 0";
  check_rules "Stdlib-qualified primitive seen through" [ "concurrency" ]
    "lib/secure/fx12.ml" "let c = Stdlib.Atomic.make 0";
  check_rules "primitives flagged in tests too" [ "concurrency" ]
    "test/fx10.ml" "let d = Domain.spawn (fun () -> 1)"

let concurrency_rule_allows_parallel_lib () =
  check_rules "lib/parallel may use the primitives" [] "lib/parallel/fx.ml"
    "let w = Domain.spawn (fun () -> Mutex.create ())";
  check_rules "the pool API is fine anywhere" [] "lib/secure/fx13.ml"
    "let xs p = Parallel.Pool.map p succ [| 1; 2 |]"

let print_rule_flags_secrets () =
  check_rules "Printf of a *_key value" [ "secret-print" ]
    "lib/secure/fx6.ml" "let dump k = Printf.printf \"%s\" k.session_key"

let print_rule_ignores_public_values () =
  check_rules "Printf of counters is fine" [] "lib/secure/fx7.ml"
    "let dump n = Printf.printf \"%d blocks\" n"

(* --- Robustness ----------------------------------------------------- *)

let partiality_flagged_on_server_paths () =
  let src =
    "let f () = assert false\n\
     let g l = List.hd l\n\
     let h o = Option.get o\n\
     let i () = failwith \"boom\""
  in
  let found = lint "lib/secure/server.ml" src in
  Alcotest.(check int) "all four partial forms" 4
    (count_rule "partiality" found)

let partiality_scoped_to_policy_paths () =
  check_rules "client-side code may still assert" []
    "lib/xmlcore/printer_fx.ml" "let f () = assert false"

let plain_assert_is_fine () =
  check_rules "assert of a real invariant is not assert false" []
    "lib/secure/opess.ml" "let f n = assert (n >= 0)"

(* --- Suppression ---------------------------------------------------- *)

let suppression_same_line () =
  check_rules "trailing comment suppresses" []
    "lib/secure/fx8.ml"
    "let v given_hmac w = String.equal given_hmac w (* lint: allow mac-compare *)"

let suppression_previous_line () =
  check_rules "preceding-line comment suppresses" []
    "lib/secure/fx9.ml"
    "(* lint: allow mac-compare *)\n\
     let v given_hmac w = String.equal given_hmac w"

let suppression_wrong_rule () =
  check_rules "naming a different rule does not suppress" [ "mac-compare" ]
    "lib/secure/fx10.ml"
    "(* lint: allow partiality *)\n\
     let v given_hmac w = String.equal given_hmac w"

let suppression_allow_all () =
  check_rules "allow all suppresses any rule" []
    "lib/secure/fx11.ml"
    "(* lint: allow all *)\nlet r () = Random.int 5"

let suppression_does_not_leak_down () =
  let src =
    "(* lint: allow random-source *)\n\
     let a () = Random.int 5\n\
     let b () = Random.int 6"
  in
  let found = lint "lib/secure/fx12.ml" src in
  (* line 2 covered, line 3 not *)
  Alcotest.(check int) "only the adjacent line is covered" 1
    (count_rule "random-source" found)

(* --- Secret flow ---------------------------------------------------- *)

module Taint = Analysis.Taint

let secret_flow findings =
  List.filter (fun f -> f.Finding.rule = "secret-flow") findings

(* Three units under lib/secure: the key ring is created in one, washed
   through an identity function in a second, and the third drives the
   tainted value into [last_unit]'s sink.  Exercises source seeding,
   cross-module binder resolution and argument->parameter propagation
   in one fixture. *)
let leak_fixture last_unit =
  [ ( "lib/secure/leaka.ml",
      "let secret () =\n\
      \  Crypto.Keys.create ~suite:Crypto.Cipher.Xtea ~master:\"m\" ()" );
    "lib/secure/leakb.ml", "let relay x = x";
    ( "lib/secure/leakc.ml",
      "let k = Leaka.secret ()\nlet v = Leakb.relay k\n" ^ last_unit ) ]

let flow_cross_module_leak () =
  let found =
    secret_flow
      (Taint.check_files Policy.default
         (leak_fixture "let () = print_endline v"))
  in
  Alcotest.(check int) "one finding" 1 (List.length found);
  let f = List.hd found in
  Alcotest.(check string) "fires in the leaking unit" "lib/secure/leakc.ml"
    f.Finding.file;
  let witness = String.concat "\n" f.Finding.witness in
  let mentions sub =
    let n = String.length sub in
    let rec at i =
      i + n <= String.length witness
      && (String.sub witness i n = sub || at (i + 1))
    in
    at 0
  in
  (* The witness must walk the whole chain, not just name the sink. *)
  Alcotest.(check bool) "witness crosses into leaka.ml" true
    (mentions "leaka.ml");
  Alcotest.(check bool) "witness crosses into leakb.ml" true
    (mentions "leakb.ml");
  Alcotest.(check bool) "witness names the source" true (mentions "(source)")

let flow_declassified_is_clean () =
  (* Same chain, but the value passes [Crypto.Cipher.encrypt] before
     printing: ciphertext is exactly what the model allows out. *)
  let found =
    secret_flow
      (Taint.check_files Policy.default
         (leak_fixture
            "let safe = Crypto.Cipher.encrypt v\nlet () = print_endline safe"))
  in
  Alcotest.(check int) "no findings" 0 (List.length found)

let flow_projection_through_record () =
  (* Binding-level analysis: the record value is tainted as a whole, so
     a projection out of it carries the taint even though no field
     tracking exists. *)
  let found =
    secret_flow
      (Taint.check_files Policy.default
         [ ( "lib/secure/leaka.ml",
             "let secret () =\n\
             \  Crypto.Keys.create ~suite:Crypto.Cipher.Xtea ~master:\"m\" ()"
           );
           ( "lib/secure/leakr.ml",
             "let k = Leaka.secret ()\n\
              let r = { key = k; count = 1 }\n\
              let out = r.key\n\
              let () = print_endline out" ) ])
  in
  Alcotest.(check int) "projection still flagged" 1 (List.length found)

let flow_suppression () =
  (* Through the full [check_sources] pipeline: a suppression comment on
     the sink line swallows the finding like any token-level rule. *)
  let with_comment =
    secret_flow
      (Lint.check_sources
         (leak_fixture
            "(* lint: allow secret-flow *)\nlet () = print_endline v"))
  in
  Alcotest.(check int) "suppressed at the sink" 0 (List.length with_comment);
  let without =
    secret_flow
      (Lint.check_sources (leak_fixture "let () = print_endline v"))
  in
  Alcotest.(check int) "same pipeline without the comment fires" 1
    (List.length without)

let flow_trusted_interior_is_skipped () =
  (* lib/crypto is the modelled TCB: its interior necessarily mixes key
     material, so its graphs are excluded and only its API surface (the
     source/declassifier tables) participates. *)
  let found =
    secret_flow
      (Taint.check_files Policy.default
         [ ( "lib/crypto/interior.ml",
             "let k = Crypto.Keys.create ~suite:Crypto.Cipher.Xtea \
              ~master:\"m\" ()\n\
              let () = print_endline k" ) ])
  in
  Alcotest.(check int) "trusted interior produces no findings" 0
    (List.length found)

(* --- Baseline ------------------------------------------------------- *)

let baseline_absorbs_known_findings () =
  let src = "let r () = Random.int 5" in
  let found = lint "lib/secure/fx13.ml" src in
  Alcotest.(check int) "finding exists" 1 (List.length found);
  let entries = List.map Finding.fingerprint found in
  Alcotest.(check int) "baseline absorbs it" 0
    (List.length (Lint.apply_baseline entries found))

let baseline_entry_consumed_once () =
  let src = "let a () = Random.int 5\nlet b () = Random.int 6" in
  let found = lint "lib/secure/fx14.ml" src in
  Alcotest.(check int) "two findings" 2 (List.length found);
  (* Both findings share a fingerprint (same rule/file/message); one
     entry must absorb only one of them. *)
  let one = [ Finding.fingerprint (List.nth found 0) ] in
  Alcotest.(check int) "one survives" 1
    (List.length (Lint.apply_baseline one found))

(* --- The gate ------------------------------------------------------- *)

let seeded_violation_fails_the_gate () =
  (* What `make check` runs: non-empty findings make the driver exit
     non-zero.  A seeded boundary violation must therefore fail CI. *)
  let found =
    lint "lib/secure/server.ml" "let leak d = Xmlcore.Doc.value d 0"
  in
  Alcotest.(check bool) "driver would exit 1" true (found <> [])

let seeded_flow_violation_fails_the_gate () =
  (* The interprocedural analogue: a cross-module secret->sink chain
     seeded into an otherwise clean file set must surface through the
     same [check_sources] pipeline the tree walk uses, so the driver —
     and therefore `make check` — goes red. *)
  let found = Lint.check_sources (leak_fixture "let () = print_endline v") in
  Alcotest.(check bool) "driver would exit 1" true
    (List.exists (fun f -> f.Finding.rule = "secret-flow") found)

(* Dune may run the test binary from the sandbox or from the project
   root, so locate the repo by walking up until we see dune-project
   next to lib/ — a blind "../../.." can escape into the filesystem. *)
let find_repo_root () =
  let is_root d =
    Sys.file_exists (Filename.concat d "dune-project")
    && Sys.file_exists (Filename.concat d "lib")
    && Sys.file_exists (Filename.concat d "lint.baseline")
  in
  let rec up d depth =
    if depth > 8 then None
    else if is_root d then Some d
    else
      let parent = Filename.dirname d in
      if parent = d then None else up parent (depth + 1)
  in
  up (Sys.getcwd ()) 0

let shipped_tree_is_clean () =
  (* Guarded so the test stays meaningful out of tree. *)
  match find_repo_root () with
  | None -> ()
  | Some root ->
    let findings, _ = Lint.run ~root () in
    List.iter (fun f -> Printf.eprintf "%s\n" (Finding.to_string f)) findings;
    Alcotest.(check int) "no findings in the shipped tree" 0
      (List.length findings)

let () =
  Alcotest.run "lint"
    [ ( "lexer",
        [ Alcotest.test_case "nested comments" `Quick lexer_nested_comments;
          Alcotest.test_case "strings" `Quick lexer_strings;
          Alcotest.test_case "quoted strings" `Quick lexer_quoted_strings;
          Alcotest.test_case "char literals" `Quick lexer_char_literals;
          Alcotest.test_case "positions" `Quick lexer_positions ] );
      ( "refs",
        [ Alcotest.test_case "paths" `Quick module_refs_basic;
          Alcotest.test_case "aliases" `Quick module_refs_alias;
          Alcotest.test_case "binding vs comparison" `Quick
            binding_vs_comparison ] );
      ( "layering",
        [ Alcotest.test_case "upward dep rejected" `Quick
            layering_rejects_upward_dep;
          Alcotest.test_case "sideways dep rejected" `Quick
            layering_rejects_sideways_dep;
          Alcotest.test_case "declared deps allowed" `Quick
            layering_allows_declared_deps;
          Alcotest.test_case "bin/test exempt" `Quick
            layering_ignores_bin_and_test;
          Alcotest.test_case "engine cannot reach xmlcore" `Quick
            layering_engine_cannot_reach_xmlcore;
          Alcotest.test_case "engine declared deps allowed" `Quick
            layering_engine_declared_deps_ok;
          Alcotest.test_case "obs is a leaf" `Quick layering_obs_is_a_leaf;
          Alcotest.test_case "obs usable from secure/engine" `Quick
            layering_allows_obs_from_instrumented_layers;
          Alcotest.test_case "serve is the top" `Quick
            layering_serve_is_the_top ] );
      ( "trust-boundary",
        [ Alcotest.test_case "plaintext doc rejected" `Quick
            boundary_rejects_plaintext_on_server;
          Alcotest.test_case "key ring rejected" `Quick
            boundary_rejects_keys_on_server;
          Alcotest.test_case "alias seen through" `Quick
            boundary_sees_through_aliases;
          Alcotest.test_case "bare open rejected" `Quick
            boundary_rejects_bare_open;
          Alcotest.test_case "per-file scope" `Quick boundary_is_per_file;
          Alcotest.test_case "server deps allowed" `Quick
            boundary_allows_serverside_modules;
          Alcotest.test_case "key ring rejected in engine" `Quick
            boundary_rejects_keys_in_engine;
          Alcotest.test_case "plaintext/keys rejected in obs" `Quick
            boundary_rejects_plaintext_in_obs;
          Alcotest.test_case "plain obs code clean" `Quick
            boundary_allows_plain_obs_code;
          Alcotest.test_case "plaintext/keys rejected in serve" `Quick
            boundary_rejects_plaintext_in_serve;
          Alcotest.test_case "plaintext/keys rejected in attack" `Quick
            boundary_rejects_plaintext_in_attack ] );
      ( "crypto-hygiene",
        [ Alcotest.test_case "String.equal flagged" `Quick
            ct_rule_flags_string_equal;
          Alcotest.test_case "structural = flagged" `Quick
            ct_rule_flags_structural_eq;
          Alcotest.test_case "bindings ignored" `Quick ct_rule_ignores_bindings;
          Alcotest.test_case "neutral names ignored" `Quick
            ct_rule_ignores_neutral_names;
          Alcotest.test_case "Random flagged" `Quick
            random_rule_flags_stdlib_random;
          Alcotest.test_case "prng exempt" `Quick random_rule_allows_prng;
          Alcotest.test_case "secret print flagged" `Quick
            print_rule_flags_secrets;
          Alcotest.test_case "public print fine" `Quick
            print_rule_ignores_public_values;
          Alcotest.test_case "concurrency primitives flagged" `Quick
            concurrency_rule_flags_primitives;
          Alcotest.test_case "lib/parallel exempt" `Quick
            concurrency_rule_allows_parallel_lib ] );
      ( "robustness",
        [ Alcotest.test_case "partial forms flagged" `Quick
            partiality_flagged_on_server_paths;
          Alcotest.test_case "scoped to policy paths" `Quick
            partiality_scoped_to_policy_paths;
          Alcotest.test_case "plain assert fine" `Quick plain_assert_is_fine ]
      );
      ( "suppression",
        [ Alcotest.test_case "same line" `Quick suppression_same_line;
          Alcotest.test_case "previous line" `Quick suppression_previous_line;
          Alcotest.test_case "wrong rule" `Quick suppression_wrong_rule;
          Alcotest.test_case "allow all" `Quick suppression_allow_all;
          Alcotest.test_case "bounded range" `Quick
            suppression_does_not_leak_down ] );
      ( "secret-flow",
        [ Alcotest.test_case "cross-module leak" `Quick flow_cross_module_leak;
          Alcotest.test_case "declassified chain clean" `Quick
            flow_declassified_is_clean;
          Alcotest.test_case "projection through record" `Quick
            flow_projection_through_record;
          Alcotest.test_case "suppression honoured" `Quick flow_suppression;
          Alcotest.test_case "trusted interior skipped" `Quick
            flow_trusted_interior_is_skipped ] );
      ( "baseline",
        [ Alcotest.test_case "absorbs findings" `Quick
            baseline_absorbs_known_findings;
          Alcotest.test_case "entry consumed once" `Quick
            baseline_entry_consumed_once ] );
      ( "gate",
        [ Alcotest.test_case "seeded violation fails" `Quick
            seeded_violation_fails_the_gate;
          Alcotest.test_case "seeded secret-flow fails" `Quick
            seeded_flow_violation_fails_the_gate;
          Alcotest.test_case "shipped tree clean" `Quick shipped_tree_is_clean
        ] ) ]
