(* Observability suite.

   Property tests for the obs library itself (histogram bucketing vs a
   reference fold, span-tree well-formedness under random
   instrumentation sequences, registry idempotence, JSON round-trips)
   plus the two cross-layer agreements this PR pins:

   - the leakage ledger's per-round replay counts sum exactly to the
     session endpoint's replay-cache hits (and therefore to what
     {!Secure.Audit} is fed) under seeded transport faults;
   - a rehost ({!Engine.update} / {!Engine.rotate}) resets every engine
     counter except [invalidations], so stats always describe the
     current hosting generation. *)

module Json = Obs.Json
module Metric = Obs.Metric
module Trace = Obs.Trace
module Ledger = Obs.Ledger
module System = Secure.System
module Session = Secure.Session
module Transport = Secure.Transport
module Audit = Secure.Audit

(* --- Histograms vs a reference fold --------------------------------- *)

(* Strictly increasing bounds from a sorted, deduplicated float list. *)
let bounds_gen =
  QCheck.Gen.(
    map
      (fun xs ->
        let sorted = List.sort_uniq compare (List.map float_of_int xs) in
        match sorted with [] -> [ 0.0 ] | _ -> sorted)
      (list_size (int_range 1 8) (int_range (-50) 50)))

let observations_gen =
  QCheck.Gen.(list_size (int_range 0 200) (float_range (-100.0) 100.0))

let reference_counts bounds obs =
  let n = List.length bounds in
  let counts = Array.make (n + 1) 0 in
  let index v =
    let rec go i = function
      | [] -> n
      | b :: rest -> if v <= b then i else go (i + 1) rest
    in
    go 0 bounds
  in
  List.iter (fun v -> counts.(index v) <- counts.(index v) + 1) obs;
  counts

let histogram_matches_reference =
  QCheck.Test.make ~name:"histogram counts = reference fold" ~count:200
    QCheck.(
      make
        ~print:(fun (b, o) ->
          Printf.sprintf "bounds=[%s] obs=[%s]"
            (String.concat ";" (List.map string_of_float b))
            (String.concat ";" (List.map string_of_float o)))
        (Gen.pair bounds_gen observations_gen))
    (fun (bounds, obs) ->
      let reg = Metric.create ~enabled:true () in
      let h = Metric.histogram reg ~buckets:bounds "h" in
      List.iter (Metric.observe h) obs;
      Metric.bucket_counts h = reference_counts bounds obs
      && Metric.observed_count h = List.length obs
      && Float.abs (Metric.observed_sum h -. List.fold_left ( +. ) 0.0 obs)
         <= 1e-6 *. (1.0 +. Float.abs (Metric.observed_sum h))
      && Metric.bucket_bounds h = Array.of_list bounds)

(* --- Registry idempotence and kind safety --------------------------- *)

let registration_is_idempotent () =
  let reg = Metric.create ~enabled:true () in
  let a = Metric.counter reg "requests" in
  let b = Metric.counter reg "requests" in
  Metric.incr a;
  Metric.add b 2;
  Alcotest.(check int) "same instrument behind the name" 3 (Metric.value a);
  Alcotest.(check int) "one registration" 1 (List.length (Metric.snapshot reg));
  let h1 = Metric.histogram reg ~buckets:[ 1.0; 2.0 ] "lat" in
  let h2 = Metric.histogram reg ~buckets:[ 1.0; 2.0 ] "lat" in
  Metric.observe h1 0.5;
  Alcotest.(check int) "same histogram behind the name" 1
    (Metric.observed_count h2)

let registration_rejects_kind_mismatch () =
  let reg = Metric.create ~enabled:true () in
  ignore (Metric.counter reg "n");
  Alcotest.check_raises "counter name reused as gauge"
    (Invalid_argument "Obs.Metric.gauge: \"n\" is registered as another kind")
    (fun () -> ignore (Metric.gauge reg "n"));
  ignore (Metric.histogram reg ~buckets:[ 1.0; 2.0 ] "lat");
  (try
     ignore (Metric.histogram reg ~buckets:[ 1.0; 3.0 ] "lat");
     Alcotest.fail "bounds mismatch accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Metric.histogram reg ~buckets:[] "empty");
     Alcotest.fail "empty bucket list accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Metric.histogram reg ~buckets:[ 2.0; 1.0 ] "unsorted");
    Alcotest.fail "unsorted bucket list accepted"
  with Invalid_argument _ -> ()

let counters_are_monotone () =
  let reg = Metric.create ~enabled:true () in
  let c = Metric.counter reg "n" in
  try
    Metric.add c (-1);
    Alcotest.fail "negative add accepted"
  with Invalid_argument _ -> ()

let disabled_registry_is_inert () =
  let reg = Metric.create () in
  let c = Metric.counter reg "n" in
  Metric.incr c;
  Metric.add c 10;
  Alcotest.(check int) "no updates while disabled" 0 (Metric.value c);
  Alcotest.(check int) "no ops while disabled" 0 (Metric.ops reg);
  Metric.set_enabled reg true;
  Metric.incr c;
  Alcotest.(check int) "updates once enabled" 1 (Metric.value c);
  Alcotest.(check int) "ops once enabled" 1 (Metric.ops reg)

let reset_preserves_registration () =
  let reg = Metric.create ~enabled:true () in
  let c = Metric.counter reg "n" in
  let h = Metric.histogram reg ~buckets:[ 1.0 ] "lat" in
  Metric.incr c;
  Metric.observe h 0.5;
  Metric.reset reg;
  Alcotest.(check int) "counter zeroed" 0 (Metric.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metric.observed_count h);
  Alcotest.(check int) "ops zeroed" 0 (Metric.ops reg);
  Alcotest.(check bool) "still enabled" true (Metric.enabled reg);
  Alcotest.(check int) "registrations survive" 2
    (List.length (Metric.snapshot reg))

(* --- Span trees under random instrumentation sequences --------------- *)

type prog =
  | Event
  | Span of prog list
  | Raising of prog list  (** a span whose body raises after its children *)

exception Boom

let prog_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then return Event
           else
             frequency
               [ 2, return Event;
                 3,
                 map (fun ps -> Span ps)
                   (list_size (int_range 0 3) (self (n / 2)));
                 1,
                 map (fun ps -> Raising ps)
                   (list_size (int_range 0 2) (self (n / 2))) ]))

let rec run_prog t = function
  | Event -> Trace.event t "e"
  | Span ps -> Obs.span t "s" (fun () -> List.iter (run_prog t) ps)
  | Raising ps -> (
    try Obs.span t "r" (fun () -> List.iter (run_prog t) ps; raise Boom)
    with Boom -> ())

(* Well-formedness: every node's tick range sits strictly inside its
   parent's, siblings are disjoint and in open order, and the whole
   forest is oldest-first. *)
let rec node_ok ~lo ~hi (n : Trace.node) =
  lo < n.Trace.start_tick
  && n.Trace.start_tick <= n.Trace.end_tick
  && n.Trace.end_tick < hi
  && children_ok ~cursor:n.Trace.start_tick ~hi:n.Trace.end_tick
       n.Trace.children

and children_ok ~cursor ~hi = function
  | [] -> true
  | c :: rest ->
    node_ok ~lo:cursor ~hi c && children_ok ~cursor:c.Trace.end_tick ~hi rest

let forest_ok roots =
  let rec go cursor = function
    | [] -> true
    | (r : Trace.node) :: rest ->
      node_ok ~lo:cursor ~hi:max_int r && go r.Trace.end_tick rest
  in
  go (-1) roots

let top_level_spans = function
  | Event -> 1
  | Span _ | Raising _ -> 1

let span_tree_well_formed =
  QCheck.Test.make ~name:"span trees are well-formed" ~count:200
    QCheck.(make (Gen.list_size (Gen.int_range 0 6) prog_gen))
    (fun progs ->
      let t = Trace.create ~enabled:true () in
      List.iter (run_prog t) progs;
      let roots = Trace.roots t in
      (* Every top-level op yields exactly one root (raising spans are
         recorded too), in execution order; all tick ranges nest. *)
      List.length roots = List.fold_left (fun n p -> n + top_level_spans p) 0 progs
      && forest_ok roots
      &&
      (* Determinism: replaying the program reproduces the forest
         bit-for-bit (the clock is a tick counter, not wall time). *)
      let t2 = Trace.create ~enabled:true () in
      List.iter (run_prog t2) progs;
      Trace.roots t2 = roots)

let span_reraises_and_records () =
  let t = Trace.create ~enabled:true () in
  (try Obs.span t "outer" (fun () ->
       Obs.span t "inner" (fun () -> raise Boom))
   with Boom -> ());
  match Trace.roots t with
  | [ { Trace.name = "outer"; children = [ { Trace.name = "inner"; _ } ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "raising spans must still be recorded"

let disabled_tracer_is_inert () =
  let t = Trace.create () in
  Obs.span t "s" (fun () -> Trace.event t "e");
  Alcotest.(check int) "no spans while disabled" 0
    (List.length (Trace.roots t))

(* --- JSON round-trips ------------------------------------------------ *)

let json_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           let scalar =
             frequency
               [ 1, return Json.Null;
                 2, map (fun b -> Json.Bool b) bool;
                 4, map (fun i -> Json.Int i) int;
                 2, map (fun f -> Json.Float f) (float_range (-1e9) 1e9);
                 4, map (fun s -> Json.Str s) (string_size (int_range 0 12)) ]
           in
           if n <= 0 then scalar
           else
             frequency
               [ 3, scalar;
                 2, map (fun l -> Json.List l)
                      (list_size (int_range 0 4) (self (n / 2)));
                 2,
                 map (fun kvs -> Json.Obj kvs)
                   (list_size (int_range 0 4)
                      (pair (string_size (int_range 0 6)) (self (n / 2)))) ]))

let json_round_trip =
  QCheck.Test.make ~name:"of_string (to_string v) = v" ~count:300
    QCheck.(make ~print:(fun v -> Json.to_string v) json_gen)
    (fun v ->
      let compact = Json.of_string (Json.to_string v) in
      let pretty = Json.of_string (Json.to_string ~indent:true v) in
      match compact, pretty with
      | Ok c, Ok p -> Json.equal c v && Json.equal p v
      | _ -> false)

let sink_json_round_trips () =
  let check_sink name json =
    match Json.of_string (Json.to_string json) with
    | Ok parsed ->
      Alcotest.(check bool) (name ^ " round-trips") true (Json.equal parsed json)
    | Error msg -> Alcotest.fail (name ^ ": " ^ msg)
  in
  let reg = Metric.create ~enabled:true () in
  Metric.add (Metric.counter reg "a.count") 7;
  Metric.set (Metric.gauge reg "a.level") 0.25;
  Metric.observe (Metric.histogram reg ~buckets:[ 1.0; 10.0 ] "a.lat") 3.0;
  check_sink "metric registry" (Metric.to_json reg);
  let t = Trace.create ~enabled:true () in
  Obs.span t "outer" ~attrs:[ "k", "v\"with\nescapes" ] (fun () ->
      Trace.event t "e");
  check_sink "trace" (Trace.to_json t);
  let l = Ledger.create ~enabled:true () in
  Ledger.record l (Ledger.round "evaluate" ~bytes_up:12 ~bytes_down:3456);
  Ledger.record l (Ledger.round "naive" ~degraded:true);
  check_sink "ledger" (Ledger.to_json l)

(* The same JSON surface `sxq trace --json` prints, consumed here: host
   a system, trace one evaluation, parse the emitted JSON and navigate
   it structurally. *)
let system_trace_json_consumable () =
  let doc = Workload.Health.generate ~patients:10 () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup ~master:"obs-json" doc scs Secure.Scheme.Opt in
  Trace.set_enabled (System.tracer sys) true;
  Ledger.set_enabled (System.ledger sys) true;
  let q = Xpath.Parser.parse "//patient//pname" in
  ignore (System.evaluate sys q);
  let payload =
    Json.Obj
      [ "trace", Trace.to_json (System.tracer sys);
        "ledger", Ledger.to_json (System.ledger sys) ]
  in
  match Json.of_string (Json.to_string ~indent:true payload) with
  | Error msg -> Alcotest.fail msg
  | Ok parsed ->
    let root_names =
      match Json.member "trace" parsed with
      | Some (Json.List nodes) ->
        List.filter_map
          (fun n -> Option.bind (Json.member "name" n) Json.to_str)
          nodes
      | _ -> []
    in
    Alcotest.(check (list string)) "top-level span" [ "system.evaluate" ]
      root_names;
    let total_down =
      Option.bind (Json.member "ledger" parsed) (fun l ->
          Option.bind (Json.member "totals" l) (fun t ->
              Option.bind (Json.member "bytes_down" t) Json.to_int))
    in
    (match total_down with
    | Some n -> Alcotest.(check bool) "ledger saw response bytes" true (n > 0)
    | None -> Alcotest.fail "ledger totals missing bytes_down")

(* --- Ledger bookkeeping ---------------------------------------------- *)

let ledger_capacity_and_totals () =
  let l = Ledger.create ~enabled:true ~capacity:3 () in
  for i = 1 to 5 do
    Ledger.record l
      (Ledger.round "r" ~bytes_up:i ~attempts:2 ~degraded:(i = 2))
  done;
  let held = Ledger.rounds l in
  Alcotest.(check (list int)) "oldest rounds dropped at capacity"
    [ 3; 4; 5 ]
    (List.map (fun r -> r.Ledger.seq) held);
  Alcotest.(check int) "count includes dropped rounds" 5 (Ledger.count l);
  let totals = Ledger.totals l in
  Alcotest.(check int) "totals sum over dropped rounds too" 15
    totals.Ledger.bytes_up;
  Alcotest.(check int) "attempts sum" 10 totals.Ledger.attempts;
  Alcotest.(check bool) "degraded is ORed" true totals.Ledger.degraded;
  Ledger.clear l;
  Alcotest.(check int) "clear empties" 0 (Ledger.count l)

let ledger_disabled_is_inert () =
  let l = Ledger.create () in
  Ledger.record l (Ledger.round "r" ~bytes_up:1);
  Alcotest.(check int) "no rounds while disabled" 0 (Ledger.count l)

(* --- Ledger vs audit: replay accounting agrees ----------------------- *)

let replay_accounting_agrees () =
  (* Under a duplicate-heavy (loss-free) profile every evaluation
     succeeds, and each duplicated frame the server answers from its
     replay cache must show up (a) in the endpoint's [replayed] count,
     (b) as a per-round [replays] delta in the ledger, and (c) in the
     audit log fed from the endpoint — all three agree exactly. *)
  let doc = Workload.Health.generate ~patients:15 () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup ~master:"obs-audit" doc scs Secure.Scheme.Opt in
  let faulty =
    System.with_faults
      ~profile:(Transport.chaos ~duplicate:0.6 ())
      ~seed:7L sys
  in
  let ledger = System.ledger faulty in
  Ledger.set_enabled ledger true;
  Ledger.clear ledger;
  let before = (System.endpoint_stats faulty).Session.replayed in
  let queries =
    Workload.Querygen.generate ~seed:31L doc Workload.Querygen.Qs ~count:25
  in
  List.iter (fun q -> ignore (System.evaluate faulty q)) queries;
  let after = (System.endpoint_stats faulty).Session.replayed in
  let ledger_replays =
    List.fold_left
      (fun acc r -> acc + r.Ledger.replays)
      0 (Ledger.rounds ledger)
  in
  Alcotest.(check bool)
    (Printf.sprintf "profile produced replays (got %d)" (after - before))
    true
    (after - before > 0);
  Alcotest.(check int) "ledger rounds sum to the endpoint's replay count"
    (after - before) ledger_replays;
  let audit = Audit.create () in
  Audit.record_replays audit (after - before);
  Alcotest.(check int) "audit channel fed from the endpoint agrees"
    ledger_replays (Audit.analyze audit).Audit.replayed_frames

(* --- Engine counters reset on rehost --------------------------------- *)

let engine_counters_reset_on_rehost () =
  let doc = Workload.Health.generate ~patients:15 () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup ~master:"obs-engine" doc scs Secure.Scheme.Opt in
  let eng = Engine.create sys in
  let q = Xpath.Parser.parse "//patient[age>=60]/pname" in
  ignore (Engine.evaluate eng q);
  ignore (Engine.evaluate eng q);
  let warm = Engine.stats eng in
  Alcotest.(check int) "two queries counted" 2 warm.Engine.Stats.queries;
  Alcotest.(check bool) "warm run hit a cache" true
    (warm.Engine.Stats.result_hits >= 1);
  ignore
    (Engine.update eng
       (Secure.Update.Set_value (Xpath.Parser.parse "//patient/age", "61")));
  let fresh = Engine.stats eng in
  (* The pinned fix: before this PR these counters accumulated across
     hosting generations, silently mixing dead ciphertext artifacts'
     hit rates into live ones. *)
  Alcotest.(check int) "queries restart from zero" 0 fresh.Engine.Stats.queries;
  Alcotest.(check int) "compilations restart" 0
    fresh.Engine.Stats.plans_compiled;
  Alcotest.(check int) "plan cache counters restart" 0
    (fresh.Engine.Stats.plan_hits + fresh.Engine.Stats.plan_misses);
  Alcotest.(check int) "result cache counters restart" 0
    (fresh.Engine.Stats.result_hits + fresh.Engine.Stats.result_misses);
  Alcotest.(check int) "block cache counters restart" 0
    (fresh.Engine.Stats.block_hits + fresh.Engine.Stats.block_misses);
  Alcotest.(check bool) "invalidations survive (monotone)" true
    (fresh.Engine.Stats.invalidations >= 1);
  let _, report = Engine.evaluate_report eng q in
  Alcotest.(check bool) "caches are cold after the rehost" true
    (report.Engine.result_outcome = Engine.Miss);
  Alcotest.(check int) "counting resumes in the new generation" 1
    (Engine.stats eng).Engine.Stats.queries;
  ignore (Engine.rotate eng ~new_master:"obs-engine-2");
  let rotated = Engine.stats eng in
  Alcotest.(check int) "rotate also resets" 0 rotated.Engine.Stats.queries;
  Alcotest.(check bool) "rotate adds an invalidation" true
    (rotated.Engine.Stats.invalidations >= 2)

let snapshot_prefix_carves_tenant_views () =
  let module Metric = Obs.Metric in
  let r = Metric.create ~enabled:true () in
  let a1 = Metric.counter r "serve.tenant-a.served" in
  let _ = Metric.counter r "serve.tenant-b.served" in
  let b2 = Metric.counter r "serve.tenant-b.shed" in
  Metric.incr a1;
  Metric.incr b2;
  Metric.incr b2;
  let names prefix = List.map fst (Metric.snapshot_prefix r prefix) in
  Alcotest.(check (list string)) "tenant-a view"
    [ "serve.tenant-a.served" ] (names "serve.tenant-a.");
  Alcotest.(check (list string)) "tenant-b view"
    [ "serve.tenant-b.served"; "serve.tenant-b.shed" ] (names "serve.tenant-b.");
  Alcotest.(check (list string)) "no such prefix" [] (names "serve.tenant-c.");
  Alcotest.(check int) "whole registry" 3 (List.length (names ""));
  (match Metric.snapshot_prefix r "serve.tenant-b.shed" with
   | [ (_, Metric.Counter_v n) ] -> Alcotest.(check int) "values survive" 2 n
   | _ -> Alcotest.fail "exact-name prefix should match one counter")

let degraded_fallbacks_are_counted () =
  (* A near-dead link forces [System.evaluate] onto the naive fallback;
     the default registry's [system.degraded] counter must agree with
     the per-query cost flags. *)
  let module System = Secure.System in
  let module Transport = Secure.Transport in
  let module Session = Secure.Session in
  let doc = Workload.Health.generate ~patients:5 () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup ~master:"obs-degraded" doc scs Secure.Scheme.Opt in
  let faulty =
    System.with_faults
      ~session:{ Session.default_config with Session.max_attempts = 2 }
      ~profile:(Transport.chaos ~drop:1.0 ()) ~seed:11L sys
  in
  let reg = Obs.Metric.default in
  let counter = Obs.Metric.counter reg "system.degraded" in
  let was_enabled = Obs.Metric.enabled reg in
  Obs.Metric.set_enabled reg true;
  let before = Obs.Metric.value counter in
  let q = Xpath.Parser.parse "//patient/pname" in
  let degraded = ref 0 in
  for _ = 1 to 5 do
    let _, cost = System.evaluate faulty q in
    if cost.System.degraded then incr degraded
  done;
  let seen = Obs.Metric.value counter - before in
  Obs.Metric.set_enabled reg was_enabled;
  Alcotest.(check bool) "dead link degrades every query" true (!degraded = 5);
  Alcotest.(check int) "counter agrees with cost flags" !degraded seen

(* --- Labels --------------------------------------------------------- *)

let label_sanitize () =
  Alcotest.(check string) "clean labels pass through" "tenant-a.v2_x"
    (Obs.Label.sanitize "tenant-a.v2_x");
  Alcotest.(check string) "structure is destroyed" "a_b_c__d"
    (Obs.Label.sanitize "a b\nc{\"d");
  let long = String.make 200 'x' in
  Alcotest.(check int) "truncated to 64 bytes" 64
    (String.length (Obs.Label.sanitize long));
  let once = Obs.Label.sanitize "sp\xffooky id" in
  Alcotest.(check string) "idempotent" once (Obs.Label.sanitize once)

let label_used_for_tenant_metrics () =
  (* Serve.register must not mint metric names straight from the raw
     tenant id; a hostile id shows up sanitized in the snapshot. *)
  Alcotest.(check string) "hostile id becomes a flat label"
    "serve.evil_tenant_1.admitted"
    ("serve." ^ Obs.Label.sanitize "evil tenant\n1" ^ ".admitted")

let () =
  Alcotest.run "obs"
    [ Helpers.qsuite "properties"
        [ histogram_matches_reference; span_tree_well_formed; json_round_trip ];
      ( "metric",
        [ Alcotest.test_case "registration idempotent" `Quick
            registration_is_idempotent;
          Alcotest.test_case "kind mismatch rejected" `Quick
            registration_rejects_kind_mismatch;
          Alcotest.test_case "counters monotone" `Quick counters_are_monotone;
          Alcotest.test_case "disabled registry inert" `Quick
            disabled_registry_is_inert;
          Alcotest.test_case "reset preserves registration" `Quick
            reset_preserves_registration;
          Alcotest.test_case "snapshot_prefix tenant views" `Quick
            snapshot_prefix_carves_tenant_views;
          Alcotest.test_case "degraded fallbacks counted" `Quick
            degraded_fallbacks_are_counted ] );
      ( "trace",
        [ Alcotest.test_case "raising spans recorded" `Quick
            span_reraises_and_records;
          Alcotest.test_case "disabled tracer inert" `Quick
            disabled_tracer_is_inert ] );
      ( "json",
        [ Alcotest.test_case "sink round-trips" `Quick sink_json_round_trips;
          Alcotest.test_case "system trace consumable" `Quick
            system_trace_json_consumable ] );
      ( "ledger",
        [ Alcotest.test_case "capacity and totals" `Quick
            ledger_capacity_and_totals;
          Alcotest.test_case "disabled ledger inert" `Quick
            ledger_disabled_is_inert;
          Alcotest.test_case "replay accounting agrees" `Quick
            replay_accounting_agrees ] );
      ( "label",
        [ Alcotest.test_case "sanitize" `Quick label_sanitize;
          Alcotest.test_case "tenant metric names" `Quick
            label_used_for_tenant_metrics ] );
      ( "engine",
        [ Alcotest.test_case "counters reset on rehost" `Quick
            engine_counters_reset_on_rehost ] ) ]
