(* Session layer tests: frame codec, retry policy, replay cache, and
   the deterministic fault schedule of the faulty transport. *)

module Transport = Secure.Transport
module Session = Secure.Session

let mac_key =
  Crypto.Keys.derive (Crypto.Keys.create ~master:"sess-test" ()) "session-mac"

(* --- Frame codec --------------------------------------------------- *)

let frame_roundtrip () =
  List.iter
    (fun payload ->
      let frame =
        Session.encode_frame ~mac_key ~kind:Session.Request ~seq:42L payload
      in
      match Session.decode_frame ~mac_key ~expect:Session.Request frame with
      | Ok (seq, got) ->
        Alcotest.(check int64) "seq" 42L seq;
        Alcotest.(check string) "payload" payload got
      | Error e -> Alcotest.failf "roundtrip failed: %s" (Session.error_to_string e))
    [ ""; "x"; String.make 1000 '\255'; "payload with \000 bytes \001" ]

let frame_tamper_detected () =
  let frame = Session.encode_frame ~mac_key ~kind:Session.Request ~seq:7L "hello" in
  (* Flip one bit at every byte position: always Tampered or Malformed,
     never an accept and never a stray exception. *)
  for i = 0 to String.length frame - 1 do
    let b = Bytes.of_string frame in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
    match Session.decode_frame ~mac_key ~expect:Session.Request (Bytes.to_string b) with
    | Ok _ -> Alcotest.failf "bit flip at %d accepted" i
    | Error (Session.Tampered | Session.Malformed) -> ()
    | Error e ->
      Alcotest.failf "bit flip at %d: unexpected %s" i (Session.error_to_string e)
  done

let frame_truncation_detected () =
  let frame = Session.encode_frame ~mac_key ~kind:Session.Response ~seq:9L "body" in
  for keep = 0 to String.length frame - 1 do
    match
      Session.decode_frame ~mac_key ~expect:Session.Response
        (String.sub frame 0 keep)
    with
    | Ok _ -> Alcotest.failf "truncation to %d accepted" keep
    | Error (Session.Malformed | Session.Tampered) -> ()
    | Error e ->
      Alcotest.failf "truncation to %d: unexpected %s" keep
        (Session.error_to_string e)
  done

let frame_direction_and_seq () =
  let frame = Session.encode_frame ~mac_key ~kind:Session.Request ~seq:3L "p" in
  (* A reflected request must not pass as a response. *)
  (match Session.decode_frame ~mac_key ~expect:Session.Response frame with
   | Error Session.Malformed -> ()
   | Ok _ -> Alcotest.fail "reflected request accepted as response"
   | Error e -> Alcotest.failf "unexpected %s" (Session.error_to_string e));
  (* Authentic frame for the wrong sequence number is Stale. *)
  (match Session.decode_frame ~mac_key ~expect:Session.Request ~expect_seq:4L frame with
   | Error Session.Stale -> ()
   | Ok _ -> Alcotest.fail "wrong seq accepted"
   | Error e -> Alcotest.failf "unexpected %s" (Session.error_to_string e));
  (* Wrong MAC key is Tampered. *)
  let other = Crypto.Keys.derive (Crypto.Keys.create ~master:"other" ()) "session-mac" in
  match Session.decode_frame ~mac_key:other ~expect:Session.Request frame with
  | Error Session.Tampered -> ()
  | Ok _ -> Alcotest.fail "wrong key accepted"
  | Error e -> Alcotest.failf "unexpected %s" (Session.error_to_string e)

(* --- Client retry policy ------------------------------------------- *)

let echo_endpoint () =
  Session.endpoint ~mac_key ~handler:(fun payload -> "echo:" ^ payload) ()

let clean_call () =
  let ep = echo_endpoint () in
  let client = Session.client ~mac_key (Transport.loopback (Session.serve ep)) in
  (match Session.call client "ping" with
   | Ok r -> Alcotest.(check string) "response" "echo:ping" r
   | Error e -> Alcotest.failf "clean call failed: %s" (Session.error_to_string e));
  let s = Session.stats client in
  Alcotest.(check int) "one attempt" 1 s.Session.attempts;
  Alcotest.(check int) "no retries" 0 s.Session.retries;
  Alcotest.(check int) "no retransmitted bytes" 0 s.Session.retransmitted_bytes

let retry_absorbs_transient_drop () =
  (* Handler loses the first delivery of every fresh request; the retry
     must succeed and the fault be absorbed. *)
  let ep = echo_endpoint () in
  let first = ref true in
  let flaky frame =
    if !first then begin
      first := false;
      raise Transport.Dropped
    end
    else Session.serve ep frame
  in
  let client = Session.client ~mac_key (Transport.loopback flaky) in
  (match Session.call client "once" with
   | Ok r -> Alcotest.(check string) "response" "echo:once" r
   | Error e -> Alcotest.failf "retry should recover: %s" (Session.error_to_string e));
  let s = Session.stats client in
  Alcotest.(check int) "two attempts" 2 s.Session.attempts;
  Alcotest.(check int) "one retry" 1 s.Session.retries;
  Alcotest.(check int) "one timeout recorded" 1 s.Session.timeouts;
  Alcotest.(check int) "fault absorbed" 1 (Session.faults_absorbed s);
  Alcotest.(check bool) "retransmitted bytes counted" true
    (s.Session.retransmitted_bytes > 0);
  Alcotest.(check bool) "backoff accumulated" true (s.Session.backoff_ms > 0.0)

let gives_up_on_total_loss () =
  let ep = echo_endpoint () in
  let transport =
    Transport.faulty ~profile:(Transport.chaos ~drop:1.0 ()) ~seed:1L
      (Transport.loopback (Session.serve ep))
  in
  let config = { Session.default_config with Session.max_attempts = 3 } in
  let client = Session.client ~config ~mac_key transport in
  (match Session.call client "void" with
   | Error (Session.Gave_up 3) -> ()
   | Ok _ -> Alcotest.fail "call cannot succeed on a dead link"
   | Error e -> Alcotest.failf "expected Gave_up 3, got %s" (Session.error_to_string e));
  let s = Session.stats client in
  Alcotest.(check int) "three attempts" 3 s.Session.attempts;
  Alcotest.(check int) "gave up once" 1 s.Session.gave_up;
  (* Backoff doubles from the base and is capped. *)
  Alcotest.(check bool) "backoff simulated, never slept" true
    (s.Session.backoff_ms
     <= float_of_int s.Session.attempts *. config.Session.max_backoff_ms)

let corruption_is_detected_and_retried () =
  (* Corrupt the first response's MAC only; the retry must recover. *)
  let ep = echo_endpoint () in
  let corrupted = ref 0 in
  let corrupt frame =
    let r = Bytes.of_string (Session.serve ep frame) in
    if !corrupted = 0 then begin
      incr corrupted;
      let last = Bytes.length r - 1 in
      Bytes.set r last (Char.chr (Char.code (Bytes.get r last) lxor 1))
    end;
    Bytes.to_string r
  in
  let client = Session.client ~mac_key (Transport.loopback corrupt) in
  (match Session.call client "x" with
   | Ok r -> Alcotest.(check string) "recovered" "echo:x" r
   | Error e -> Alcotest.failf "retry should recover: %s" (Session.error_to_string e));
  let s = Session.stats client in
  Alcotest.(check int) "tampering classified" 1 s.Session.tampered;
  Alcotest.(check int) "no timeouts" 0 s.Session.timeouts;
  Alcotest.(check int) "fault absorbed" 1 (Session.faults_absorbed s)

(* --- Server-side replay cache -------------------------------------- *)

let replay_answered_from_cache () =
  let evaluations = ref 0 in
  let ep =
    Session.endpoint ~mac_key
      ~handler:(fun p -> incr evaluations; "r:" ^ p)
      ()
  in
  let frame = Session.encode_frame ~mac_key ~kind:Session.Request ~seq:1L "dup" in
  let r1 = Session.serve ep frame in
  let r2 = Session.serve ep frame in
  Alcotest.(check string) "identical responses" r1 r2;
  Alcotest.(check int) "handler ran once" 1 !evaluations;
  let s = Session.endpoint_stats ep in
  Alcotest.(check int) "served" 1 s.Session.served;
  Alcotest.(check int) "replayed" 1 s.Session.replayed

let replay_cache_is_bounded () =
  let evaluations = ref 0 in
  let ep =
    Session.endpoint ~replay_cache:2 ~mac_key
      ~handler:(fun p -> incr evaluations; p)
      ()
  in
  let frame i =
    Session.encode_frame ~mac_key ~kind:Session.Request ~seq:(Int64.of_int i)
      (Printf.sprintf "q%d" i)
  in
  ignore (Session.serve ep (frame 0));
  ignore (Session.serve ep (frame 1));
  ignore (Session.serve ep (frame 2));
  (* frame 0 was evicted (capacity 2): replaying it re-evaluates. *)
  ignore (Session.serve ep (frame 0));
  Alcotest.(check int) "four evaluations (one eviction)" 4 !evaluations;
  (* frame 0 is now cached again. *)
  ignore (Session.serve ep (frame 0));
  Alcotest.(check int) "fifth serve replayed" 4 !evaluations

let unverifiable_frames_discarded () =
  let ep = echo_endpoint () in
  (match Session.serve ep "not a frame at all" with
   | _ -> Alcotest.fail "garbage must be dropped"
   | exception Transport.Dropped -> ());
  let wrong_key = Crypto.Keys.derive (Crypto.Keys.create ~master:"eve" ()) "session-mac" in
  let forged =
    Session.encode_frame ~mac_key:wrong_key ~kind:Session.Request ~seq:1L "evil"
  in
  (match Session.serve ep forged with
   | _ -> Alcotest.fail "forged frame must be dropped"
   | exception Transport.Dropped -> ());
  let s = Session.endpoint_stats ep in
  Alcotest.(check int) "both discarded" 2 s.Session.discarded;
  Alcotest.(check int) "none served" 0 s.Session.served

(* --- Deterministic fault schedules --------------------------------- *)

let run_schedule seed =
  let ep = echo_endpoint () in
  let transport =
    Transport.faulty
      ~profile:(Transport.chaos ~drop:0.3 ~flip:0.2 ~duplicate:0.2 ~truncate:0.1 ())
      ~seed
      (Transport.loopback (Session.serve ep))
  in
  let client = Session.client ~mac_key transport in
  let outcomes =
    List.init 30 (fun i ->
        match Session.call client (Printf.sprintf "m%d" i) with
        | Ok r -> "ok:" ^ r
        | Error e -> "err:" ^ Session.error_to_string e)
  in
  outcomes, Session.stats client, Transport.stats transport

let schedule_is_deterministic () =
  let o1, s1, t1 = run_schedule 99L in
  let o2, s2, t2 = run_schedule 99L in
  Alcotest.(check (list string)) "same outcomes" o1 o2;
  Alcotest.(check bool) "same session stats" true (s1 = s2);
  Alcotest.(check bool) "same transport stats" true (t1 = t2);
  (* A different seed produces a different schedule (with near
     certainty at these rates over 30 calls). *)
  let o3, _, _ = run_schedule 100L in
  Alcotest.(check bool) "different seed diverges" true (o1 <> o3)

let calls_never_raise_under_chaos () =
  let ep = echo_endpoint () in
  List.iter
    (fun seed ->
      let transport =
        Transport.faulty
          ~profile:
            (Transport.chaos ~drop:0.4 ~flip:0.3 ~duplicate:0.3 ~truncate:0.3
               ~reorder:0.3 ())
          ~seed
          (Transport.loopback (Session.serve ep))
      in
      let client = Session.client ~mac_key transport in
      for i = 0 to 49 do
        match Session.call client (Printf.sprintf "s%Ld-%d" seed i) with
        | Ok r ->
          Alcotest.(check string) "correct payload when Ok"
            (Printf.sprintf "echo:s%Ld-%d" seed i) r
        | Error (Session.Gave_up _) -> ()
        | Error e ->
          Alcotest.failf "call surfaced non-terminal error %s"
            (Session.error_to_string e)
      done)
    [ 1L; 2L; 3L; 4L; 5L ]

(* --- Link lifecycle: close and re-establish ------------------------ *)

let close_refuses_calls () =
  let ep = echo_endpoint () in
  let client = Session.client ~mac_key (Transport.loopback (Session.serve ep)) in
  (match Session.call client "a" with
   | Ok r -> Alcotest.(check string) "live call" "echo:a" r
   | Error e -> Alcotest.failf "live call failed: %s" (Session.error_to_string e));
  Alcotest.(check bool) "open before close" false (Session.closed client);
  Session.close client;
  Session.close client;   (* idempotent *)
  Alcotest.(check bool) "closed" true (Session.closed client);
  (match Session.call client "b" with
   | Error Session.Closed -> ()
   | Ok _ -> Alcotest.fail "closed session answered a call"
   | Error e -> Alcotest.failf "expected Closed, got %s" (Session.error_to_string e));
  (* The refusal happened client-side: no frame reached the wire. *)
  let s = Session.endpoint_stats ep in
  Alcotest.(check int) "endpoint saw only the live call" 1 s.Session.served

let reset_link_gets_fresh_incarnation () =
  (* A duplicate-heavy schedule warms the endpoint's replay cache; after
     [System.reset_link] the old session refuses calls and the new
     incarnation's cache starts empty — no pre-reset frame can leak
     across as a replay hit. *)
  let module System = Secure.System in
  let doc = Workload.Health.generate ~patients:5 () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup ~master:"relink-master" doc scs Secure.Scheme.Opt in
  let faulty =
    System.with_faults
      ~profile:(Transport.chaos ~duplicate:0.9 ()) ~seed:5L sys
  in
  let q = Xpath.Parser.parse "//patient/pname" in
  let expected = Helpers.norm_trees (fst (System.evaluate sys q)) in
  for _ = 1 to 8 do
    ignore (System.evaluate faulty q)
  done;
  let before = System.endpoint_stats faulty in
  Alcotest.(check bool) "duplicates warmed the replay cache" true
    (before.Session.replayed > 0);
  let fresh = System.reset_link faulty in
  (* The superseded incarnation refuses instead of limping on. *)
  (match System.try_evaluate faulty q with
   | Error Session.Closed -> ()
   | Ok _ -> Alcotest.fail "old link still answers after reset"
   | Error e -> Alcotest.failf "expected Closed, got %s" (Session.error_to_string e));
  (* The new incarnation starts with an empty replay cache... *)
  let s0 = System.endpoint_stats fresh in
  Alcotest.(check int) "fresh endpoint served nothing" 0 s0.Session.served;
  Alcotest.(check int) "fresh replay cache empty" 0 s0.Session.replayed;
  (* ...and serves cleanly (reset without [faults] is a loopback). *)
  let answers, cost = System.evaluate fresh q in
  Alcotest.(check bool) "answers exact after relink" true
    (Helpers.norm_trees answers = expected);
  Alcotest.(check int) "clean link: one attempt" 1 cost.System.attempts;
  Alcotest.(check bool) "not degraded" false cost.System.degraded;
  let s1 = System.endpoint_stats fresh in
  Alcotest.(check bool) "new endpoint served the call" true (s1.Session.served > 0);
  Alcotest.(check int) "still zero replays" 0 s1.Session.replayed

let () =
  Alcotest.run "session"
    [ ( "frames",
        [ Alcotest.test_case "roundtrip" `Quick frame_roundtrip;
          Alcotest.test_case "tamper detected" `Quick frame_tamper_detected;
          Alcotest.test_case "truncation detected" `Quick frame_truncation_detected;
          Alcotest.test_case "direction and seq" `Quick frame_direction_and_seq ] );
      ( "retry",
        [ Alcotest.test_case "clean call" `Quick clean_call;
          Alcotest.test_case "absorbs transient drop" `Quick retry_absorbs_transient_drop;
          Alcotest.test_case "gives up on total loss" `Quick gives_up_on_total_loss;
          Alcotest.test_case "corruption detected" `Quick corruption_is_detected_and_retried ] );
      ( "replay",
        [ Alcotest.test_case "answered from cache" `Quick replay_answered_from_cache;
          Alcotest.test_case "cache bounded" `Quick replay_cache_is_bounded;
          Alcotest.test_case "unverifiable discarded" `Quick unverifiable_frames_discarded ] );
      ( "chaos",
        [ Alcotest.test_case "deterministic schedule" `Quick schedule_is_deterministic;
          Alcotest.test_case "never raises" `Quick calls_never_raise_under_chaos ] );
      ( "lifecycle",
        [ Alcotest.test_case "close refuses calls" `Quick close_refuses_calls;
          Alcotest.test_case "reset_link fresh incarnation" `Quick
            reset_link_gets_fresh_incarnation ] ) ]
