(* Adversary-simulator tests: trace building from the leakage ledger,
   the inference passes' candidate-set semantics (a known-plaintext
   fixture where frequency analysis pins a unique candidate and the
   budget gate fires; a padded rerun where it must not), the
   fail-closed budget parser/scorer, mitigation determinism, and the
   differential pin that mitigated answers are byte-identical to the
   unmitigated path across schemes. *)

module System = Secure.System
module Scheme = Secure.Scheme
module Trace = Attack.Trace
module Passes = Attack.Passes
module Budget = Attack.Budget
module Mitigate = Attack.Mitigate

let health ?(patients = 5) () =
  ( Workload.Health.generate ~seed:1L ~patients (),
    Workload.Health.constraints () )

let workload =
  [ "//patient/pname"; "//patient[age>=50]/pname"; "//treat/doctor"; "//SSN" ]
  |> List.map Xpath.Parser.parse
  |> Array.of_list

let hosted ?patients scheme =
  let doc, scs = health ?patients () in
  let sys, _ = System.setup ~master:"test-attack" doc scs scheme in
  Obs.Ledger.set_enabled (System.ledger sys) true;
  sys

(* The same declaration as the checked-in attack.budget (tests run in
   the dune sandbox, away from the repo root; `make attack-gate`
   exercises the actual file end to end). *)
let gate_budget () =
  match
    Budget.parse
      "frequency 2\nsize 2\ncooccurrence 2\nlinkability 1\nmitigations pad\n"
  with
  | Ok b -> b
  | Error msg -> Alcotest.fail ("gate budget must parse: " ^ msg)

(* --- Trace building ------------------------------------------------- *)

let trace_from_ledger () =
  let sys = hosted Scheme.Opt in
  Array.iter (fun q -> ignore (System.evaluate sys q)) workload;
  let trace = Trace.of_ledger (System.ledger sys) in
  Alcotest.(check int) "one round per query" (Array.length workload)
    (Trace.length trace);
  Alcotest.(check bool) "non-empty" false (Trace.is_empty trace);
  let universe = Trace.universe trace in
  Alcotest.(check bool) "blocks observed" true (universe <> []);
  Alcotest.(check (list int)) "universe is sorted and distinct"
    (List.sort_uniq compare universe) universe;
  List.iter
    (fun (id, c) ->
      Alcotest.(check bool) "histogram ids come from the universe" true
        (List.mem id universe);
      Alcotest.(check bool) "histogram counts are positive" true (c >= 1))
    (Trace.fetch_counts trace);
  (* Timing ranks are a permutation of 1..n ordered by bytes_down. *)
  let rounds = Trace.rounds trace in
  let ranks = List.map (fun (r : Trace.round) -> r.Trace.timing_rank) rounds in
  Alcotest.(check (list int)) "ranks are a permutation of 1..n"
    (List.init (List.length rounds) (fun i -> i + 1))
    (List.sort compare ranks);
  List.iter
    (fun (a : Trace.round) ->
      List.iter
        (fun (b : Trace.round) ->
          if a.Trace.timing_rank < b.Trace.timing_rank then
            Alcotest.(check bool) "rank order follows bytes_down" true
              (a.Trace.bytes_down >= b.Trace.bytes_down))
        rounds)
    rounds

(* --- Known-plaintext fixture: frequency analysis pins a block ------- *)

(* Hand-built rounds: block 7 is shipped by two rounds, blocks 1 and 2
   by one round each (and always together, so co-occurrence cannot
   split them).  Block 7's fetch count is unique — the frequency class
   collapses to 1 and the budget gate must fire. *)
let pinned_rounds () =
  [ Obs.Ledger.round ~bytes_up:40 ~bytes_down:300 ~blocks_returned:3
      ~block_ids:[ 7; 1; 2 ] "evaluate";
    Obs.Ledger.round ~bytes_up:40 ~bytes_down:100 ~blocks_returned:1
      ~block_ids:[ 7 ] "evaluate" ]

let frequency_pins_unique_candidate () =
  let trace = Trace.of_rounds (pinned_rounds ()) in
  let pinned =
    List.filter
      (fun (f : Passes.finding) ->
        f.Passes.pass = "frequency" && f.Passes.candidates = 1)
      (Passes.frequency trace)
  in
  (match pinned with
   | [ f ] ->
     Alcotest.(check string) "block 7 is the pinned subject" "block 7"
       f.Passes.subject;
     Alcotest.(check bool) "witness cites the sightings" true
       (List.exists
          (fun hop ->
            (* cited hop-by-hop, lint-finding style *)
            String.length hop >= 7 && String.sub hop 0 7 = "block 7")
          f.Passes.witness);
     Alcotest.(check bool) "witness shows the class collapse" true
       (List.exists
          (fun hop ->
            List.exists
              (fun needle ->
                let nl = String.length needle and hl = String.length hop in
                let rec scan i =
                  i + nl <= hl
                  && (String.sub hop i nl = needle || scan (i + 1))
                in
                scan 0)
              [ "candidate set 1" ])
          f.Passes.witness)
   | fs ->
     Alcotest.fail
       (Printf.sprintf "expected exactly one pinned block, got %d"
          (List.length fs)));
  (* ... and the budget gate fires on it, with the witness attached. *)
  match Budget.check (gate_budget ()) trace with
  | Error msg -> Alcotest.fail ("scoring must succeed: " ^ msg)
  | Ok sc ->
    Alcotest.(check bool) "under-budget trace is caught" true
      (sc.Budget.violations <> []);
    List.iter
      (fun (v : Budget.violation) ->
        Alcotest.(check bool) "violation carries evidence" true
          (v.Budget.finding.Passes.witness <> []);
        Alcotest.(check bool) "violation is below its declared minimum" true
          (v.Budget.required = -1
           || v.Budget.finding.Passes.candidates < v.Budget.required))
      sc.Budget.violations

let census_names_the_tag () =
  let trace = Trace.of_rounds (pinned_rounds ()) in
  (* Known plaintext: the tag universe and expected occurrence counts.
     Only "SSN" occurs twice, so block 7 resolves to it by name. *)
  let census = [ "SSN", 2; "pname", 1; "doctor", 1 ] in
  let pinned =
    List.filter
      (fun (f : Passes.finding) -> f.Passes.subject = "block 7")
      (Passes.frequency ~census trace)
  in
  match pinned with
  | [ f ] ->
    Alcotest.(check int) "census pins to one tag" 1 f.Passes.candidates;
    Alcotest.(check bool) "witness names the tag" true
      (List.exists
         (fun hop ->
           let nl = 3 and hl = String.length hop in
           let rec scan i =
             i + nl <= hl && (String.sub hop i nl = "SSN" || scan (i + 1))
           in
           scan 0)
         f.Passes.witness)
  | fs ->
    Alcotest.fail
      (Printf.sprintf "expected one finding for block 7, got %d"
         (List.length fs))

(* --- Mitigations: the padded rerun must pass the gate --------------- *)

let padded_rerun_meets_budget () =
  let budget = gate_budget () in
  (* Unmitigated: the live workload pins blocks (the gate catches it). *)
  let sys = hosted Scheme.Opt in
  let off = Mitigate.create ~seed:7L Mitigate.off in
  ignore (Mitigate.evaluate_batch off sys workload);
  ignore (Mitigate.evaluate_batch off sys workload);
  (match Budget.check budget (Trace.of_ledger (System.ledger sys)) with
   | Error msg -> Alcotest.fail ("unmitigated scoring must succeed: " ^ msg)
   | Ok sc ->
     Alcotest.(check bool) "unmitigated run violates the budget" true
       (sc.Budget.violations <> []));
  (* Padded rerun of the same workload: every class must clear it. *)
  let sys = hosted Scheme.Opt in
  let pad =
    Mitigate.create ~seed:7L { Mitigate.pad = true; dummies = 0; shuffle = false }
  in
  ignore (Mitigate.evaluate_batch pad sys workload);
  ignore (Mitigate.evaluate_batch pad sys workload);
  match Budget.check budget (Trace.of_ledger (System.ledger sys)) with
  | Error msg -> Alcotest.fail ("padded scoring must succeed: " ^ msg)
  | Ok sc ->
    Alcotest.(check (list string)) "padded rerun has no violations" []
      (List.map
         (fun (v : Budget.violation) -> Budget.render_violation v)
         sc.Budget.violations)

(* --- Differential: mitigated answers are byte-identical ------------- *)

let render answers = List.map Xmlcore.Printer.tree_to_string answers

let mitigations_preserve_answers () =
  List.iter
    (fun scheme ->
      let baseline =
        let sys = hosted ~patients:4 scheme in
        Array.map (fun q -> render (fst (System.evaluate sys q))) workload
      in
      List.iter
        (fun config ->
          let sys = hosted ~patients:4 scheme in
          let mit = Mitigate.create ~seed:5L config in
          let got =
            Array.map (fun (ans, _) -> render ans)
              (Mitigate.evaluate_batch mit sys workload)
          in
          Array.iteri
            (fun i expected ->
              Alcotest.(check (list string)) "mitigated answer is byte-identical"
                expected got.(i))
            baseline)
        [ Mitigate.off;
          { Mitigate.pad = true; dummies = 0; shuffle = false };
          { Mitigate.pad = false; dummies = 3; shuffle = false };
          { Mitigate.pad = false; dummies = 0; shuffle = true };
          { Mitigate.pad = true; dummies = 3; shuffle = true } ])
    [ Scheme.Opt; Scheme.App; Scheme.Sub; Scheme.Top ]

(* --- Mitigation determinism ----------------------------------------- *)

let equal_seeds_equal_traces () =
  let run () =
    let sys = hosted Scheme.Opt in
    let mit =
      Mitigate.create ~seed:11L
        { Mitigate.pad = true; dummies = 4; shuffle = true }
    in
    ignore (Mitigate.evaluate_batch mit sys workload);
    ignore (Mitigate.evaluate_batch mit sys workload);
    Obs.Ledger.to_json (System.ledger sys)
  in
  Alcotest.(check bool) "same seed, bit-identical wire trace" true
    (Obs.Json.equal (run ()) (run ()))

(* --- Budget declaration parsing (fail closed) ----------------------- *)

let budget_parse_accepts_the_format () =
  match
    Budget.parse
      "# comment\nfrequency 2\nsize 3\n\ncooccurrence 2\nlinkability 1\n\
       mitigations pad shuffle\n"
  with
  | Error msg -> Alcotest.fail msg
  | Ok b ->
    Alcotest.(check (list string)) "minimums in canonical class order"
      Budget.classes (List.map fst b.Budget.minimums);
    Alcotest.(check int) "size minimum" 3
      (List.assoc "size" b.Budget.minimums);
    Alcotest.(check (list string)) "mitigations" [ "pad"; "shuffle" ]
      b.Budget.mitigations

let budget_parse_fails_closed () =
  let rejects label s =
    match Budget.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": must be rejected")
  in
  rejects "missing class" "frequency 2\nsize 2\ncooccurrence 2\n";
  rejects "duplicate class"
    "frequency 2\nfrequency 3\nsize 2\ncooccurrence 2\nlinkability 1\n";
  rejects "zero minimum"
    "frequency 0\nsize 2\ncooccurrence 2\nlinkability 1\n";
  rejects "non-integer minimum"
    "frequency two\nsize 2\ncooccurrence 2\nlinkability 1\n";
  rejects "unknown class"
    "frequency 2\nsize 2\ncooccurrence 2\nlinkability 1\nentropy 4\n";
  rejects "unknown mitigation"
    "frequency 2\nsize 2\ncooccurrence 2\nlinkability 1\nmitigations onions\n";
  rejects "duplicate mitigations line"
    "frequency 2\nsize 2\ncooccurrence 2\nlinkability 1\n\
     mitigations pad\nmitigations shuffle\n";
  rejects "empty declaration" ""

let budget_fails_closed_on_scoring () =
  let budget = gate_budget () in
  (* An empty trace certifies nothing. *)
  (match Budget.check budget (Trace.of_rounds []) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "empty trace must fail closed");
  (* A finding of an undeclared class is a violation by definition. *)
  let sc =
    Budget.score budget
      [ { Passes.pass = "entropy"; subject = "block 1"; candidates = 99;
          witness = [ "synthetic" ] } ]
  in
  match sc.Budget.violations with
  | [ v ] ->
    Alcotest.(check int) "undeclared class is marked required = -1" (-1)
      v.Budget.required
  | vs ->
    Alcotest.fail
      (Printf.sprintf "expected one violation, got %d" (List.length vs))

(* --- Serving-tier audit --------------------------------------------- *)

let serve_audit_fails_closed () =
  let srv = Serve.create () in
  (* t1: budgeted, ledger on, unmitigated traffic — must be caught.
     t2: no budget — skipped.  t3: budgeted but its ledger was never
     enabled — the audit fails closed on the empty trace. *)
  Serve.register srv ~id:"t1" ~budget:(gate_budget ()) (hosted Scheme.Opt);
  Serve.register srv ~id:"t2" (hosted Scheme.Opt);
  let doc, scs = health () in
  let quiet, _ = System.setup ~master:"t3" doc scs Scheme.Opt in
  Serve.register srv ~id:"t3" ~budget:(gate_budget ()) quiet;
  Array.iter
    (fun q ->
      match Serve.submit srv ~tenant:"t1" q with
      | Ok _ -> ()
      | Error r -> Alcotest.fail (Serve.reject_to_string r))
    workload;
  ignore (Serve.drain srv ());
  let audits = Serve.audit srv in
  Alcotest.(check (list string)) "only budgeted tenants are scored"
    [ "t1"; "t3" ]
    (List.sort compare (List.map fst audits));
  (match List.assoc "t1" audits with
   | Ok sc ->
     Alcotest.(check bool) "unmitigated tenant violates its budget" true
       (sc.Budget.violations <> [])
   | Error msg -> Alcotest.fail ("t1 must score: " ^ msg));
  match List.assoc "t3" audits with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty ledger must fail the audit closed"

(* --- Ledger JSON round trip (the offline replay contract) ----------- *)

let ledger_json_round_trips () =
  let sys = hosted Scheme.Opt in
  Array.iter (fun q -> ignore (System.evaluate sys q)) workload;
  let j = Obs.Ledger.to_json (System.ledger sys) in
  (match Obs.Ledger.of_json j with
   | Error msg -> Alcotest.fail ("of_json must accept to_json output: " ^ msg)
   | Ok ledger ->
     Alcotest.(check bool) "to_json (of_json j) = j" true
       (Obs.Json.equal (Obs.Ledger.to_json ledger) j);
     (* The replayed trace sees exactly the recorded access patterns. *)
     let a = Trace.of_ledger (System.ledger sys) in
     let b = Trace.of_ledger ledger in
     Alcotest.(check int) "same length" (Trace.length a) (Trace.length b);
     Alcotest.(check (list (pair int int))) "same histogram"
       (Trace.fetch_counts a) (Trace.fetch_counts b));
  match Obs.Ledger.of_json (Obs.Json.Str "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_json must reject non-ledger JSON"

let () =
  Alcotest.run "attack"
    [ ( "trace",
        [ Alcotest.test_case "built from the ledger" `Quick trace_from_ledger;
          Alcotest.test_case "ledger JSON round-trips" `Quick
            ledger_json_round_trips ] );
      ( "passes",
        [ Alcotest.test_case "frequency pins a unique candidate" `Quick
            frequency_pins_unique_candidate;
          Alcotest.test_case "census names the tag" `Quick
            census_names_the_tag ] );
      ( "budget",
        [ Alcotest.test_case "parses the declaration format" `Quick
            budget_parse_accepts_the_format;
          Alcotest.test_case "parser fails closed" `Quick
            budget_parse_fails_closed;
          Alcotest.test_case "scorer fails closed" `Quick
            budget_fails_closed_on_scoring ] );
      ( "mitigate",
        [ Alcotest.test_case "padded rerun meets the budget" `Quick
            padded_rerun_meets_budget;
          Alcotest.test_case "answers byte-identical across schemes" `Quick
            mitigations_preserve_answers;
          Alcotest.test_case "equal seeds, equal traces" `Quick
            equal_seeds_equal_traces ] );
      ( "serve",
        [ Alcotest.test_case "audit scores budgeted tenants, fails closed"
            `Quick serve_audit_fails_closed ] ) ]
