(* Crypto substrate tests: published vectors plus property tests. *)

let sha256_vectors () =
  let cases =
    [ "", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
      "abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
      String.make 1_000_000 'a',
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" ]
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) "digest" expected (Crypto.Sha256.hex input))
    cases

let sha256_incremental () =
  (* Chunked absorption must match one-shot hashing at any split. *)
  let msg = String.init 300 (fun i -> Char.chr (i mod 256)) in
  let expected = Crypto.Sha256.digest msg in
  List.iter
    (fun split ->
      let ctx = Crypto.Sha256.init () in
      Crypto.Sha256.update ctx (String.sub msg 0 split);
      Crypto.Sha256.update ctx (String.sub msg split (String.length msg - split));
      Alcotest.(check string)
        (Printf.sprintf "split at %d" split)
        (Crypto.Sha256.to_hex expected)
        (Crypto.Sha256.to_hex (Crypto.Sha256.finalize ctx)))
    [ 0; 1; 55; 56; 63; 64; 65; 127; 128; 200; 300 ]

let hmac_vectors () =
  (* RFC 4231 test case 2 and the classic quick-brown-fox vector. *)
  Alcotest.(check string) "rfc4231 tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Crypto.Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?");
  Alcotest.(check string) "fox"
    "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
    (Crypto.Hmac.mac_hex ~key:"key" "The quick brown fox jumps over the lazy dog");
  let long_key = String.make 131 'k' in
  Alcotest.(check string) "long key: prepared = one-shot"
    (Crypto.Sha256.to_hex (Crypto.Hmac.mac ~key:long_key "m"))
    (Crypto.Sha256.to_hex
       (Crypto.Hmac.mac_prepared (Crypto.Hmac.prepare ~key:long_key) "m"))

let hmac_prepared_agrees =
  QCheck.Test.make ~name:"hmac prepared = one-shot" ~count:200
    QCheck.(pair string string)
    (fun (key, msg) ->
      (* Equality of two local computations, not an authentication
         check — timing is irrelevant here. *)
      Crypto.Hmac.mac ~key msg
      (* lint: allow mac-compare *)
      = Crypto.Hmac.mac_prepared (Crypto.Hmac.prepare ~key) msg)

let xtea_roundtrip =
  QCheck.Test.make ~name:"xtea decrypt after encrypt = id" ~count:500
    QCheck.(pair string int64)
    (fun (key_material, block) ->
      let key = Crypto.Xtea.key_of_string key_material in
      Crypto.Xtea.decrypt_block key (Crypto.Xtea.encrypt_block key block) = block)

let xtea_differs () =
  let k1 = Crypto.Xtea.key_of_string "one" in
  let k2 = Crypto.Xtea.key_of_string "two" in
  Alcotest.(check bool) "not identity" false
    (Crypto.Xtea.encrypt_block k1 42L = 42L);
  Alcotest.(check bool) "key-dependent" false
    (Crypto.Xtea.encrypt_block k1 42L = Crypto.Xtea.encrypt_block k2 42L)

let cbc_roundtrip =
  QCheck.Test.make ~name:"cbc decrypt after encrypt = id" ~count:300
    QCheck.(triple string string string)
    (fun (key, nonce, plaintext) ->
      Crypto.Cbc.decrypt ~key ~nonce (Crypto.Cbc.encrypt ~key ~nonce plaintext)
      = plaintext)

let cbc_prepared_agrees =
  QCheck.Test.make ~name:"cbc prepared = string-key API" ~count:200
    QCheck.(pair string string)
    (fun (key, plaintext) ->
      Crypto.Cbc.encrypt ~key ~nonce:"n" plaintext
      = Crypto.Cbc.encrypt_prepared (Crypto.Cbc.prepare key) ~nonce:"n" plaintext)

let cbc_lengths =
  QCheck.Test.make ~name:"cbc ciphertext length = padded length" ~count:200
    QCheck.string
    (fun plaintext ->
      let ct = Crypto.Cbc.encrypt ~key:"k" ~nonce:"n" plaintext in
      String.length ct = Crypto.Cbc.ciphertext_length (String.length plaintext))

let cbc_nonce_matters () =
  let ct1 = Crypto.Cbc.encrypt ~key:"k" ~nonce:"1" "same plaintext" in
  let ct2 = Crypto.Cbc.encrypt ~key:"k" ~nonce:"2" "same plaintext" in
  Alcotest.(check bool) "distinct ciphertexts" false (ct1 = ct2)

let cbc_malformed () =
  Alcotest.check_raises "bad length"
    (Invalid_argument "Cbc.decrypt: ciphertext length must be a positive multiple of 8")
    (fun () -> ignore (Crypto.Cbc.decrypt ~key:"k" ~nonce:"n" "abc"))

let vernam_involution =
  QCheck.Test.make ~name:"vernam decrypt after encrypt = id" ~count:300
    QCheck.(triple string string string)
    (fun (key, pad_id, msg) ->
      Crypto.Vernam.decrypt ~key ~pad_id (Crypto.Vernam.encrypt ~key ~pad_id msg)
      = msg)

let vernam_deterministic () =
  let a = Crypto.Vernam.encrypt_hex ~key:"k" ~pad_id:"tag" "patient" in
  let b = Crypto.Vernam.encrypt_hex ~key:"k" ~pad_id:"tag" "patient" in
  let c = Crypto.Vernam.encrypt_hex ~key:"k" ~pad_id:"other" "patient" in
  Alcotest.(check string) "same pad, same token" a b;
  Alcotest.(check bool) "different pad, different token" false (a = c)

let ope_monotone =
  QCheck.Test.make ~name:"ope strictly increasing" ~count:100
    QCheck.(pair small_string (list (int_bound 100_000)))
    (fun (key, xs) ->
      let ope = Crypto.Ope.create ~key ~domain_bits:20 in
      let xs =
        List.sort_uniq compare (List.map (fun x -> Int64.of_int (x mod (1 lsl 20))) xs)
      in
      let cs = List.map (Crypto.Ope.encrypt ope) xs in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | [ _ ] | [] -> true
      in
      increasing cs)

let ope_roundtrip =
  QCheck.Test.make ~name:"ope decrypt after encrypt = id" ~count:100
    QCheck.(pair small_string (small_list (int_bound 1_000_000)))
    (fun (key, xs) ->
      let ope = Crypto.Ope.create ~key ~domain_bits:24 in
      List.for_all
        (fun x ->
          let x = Int64.of_int (x mod (1 lsl 24)) in
          Crypto.Ope.decrypt ope (Crypto.Ope.encrypt ope x) = x)
        xs)

let ope_key_dependent () =
  let a = Crypto.Ope.create ~key:"a" ~domain_bits:16 in
  let b = Crypto.Ope.create ~key:"b" ~domain_bits:16 in
  let differs =
    List.exists
      (fun x -> Crypto.Ope.encrypt a (Int64.of_int x) <> Crypto.Ope.encrypt b (Int64.of_int x))
      [ 0; 1; 100; 1000; 65535 ]
  in
  Alcotest.(check bool) "key changes mapping" true differs

let ope_rejects_invalid () =
  let ope = Crypto.Ope.create ~key:"k" ~domain_bits:8 in
  Alcotest.check_raises "domain check"
    (Invalid_argument "Ope.encrypt: plaintext out of domain")
    (fun () -> ignore (Crypto.Ope.encrypt ope 256L))

(* --- AES and cipher suites ---------------------------------------- *)

let hex_to_string h =
  String.init (String.length h / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let bytes_to_hex b =
  String.concat ""
    (List.init (Bytes.length b) (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let aes_vectors () =
  (* FIPS-197 Appendix B. *)
  let key = Crypto.Aes.key_of_raw (hex_to_string "2b7e151628aed2a6abf7158809cf4f3c") in
  let block = Bytes.of_string (hex_to_string "3243f6a8885a308d313198a2e0370734") in
  Crypto.Aes.encrypt_block key block 0;
  Alcotest.(check string) "fips-197" "3925841d02dc09fbdc118597196a0b32"
    (bytes_to_hex block);
  Crypto.Aes.decrypt_block key block 0;
  Alcotest.(check string) "inverse" "3243f6a8885a308d313198a2e0370734"
    (bytes_to_hex block);
  (* NIST SP800-38A ECB-AES128, blocks 1 and 2. *)
  List.iter
    (fun (pt, expected) ->
      let b = Bytes.of_string (hex_to_string pt) in
      Crypto.Aes.encrypt_block key b 0;
      Alcotest.(check string) pt expected (bytes_to_hex b))
    [ "6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97";
      "ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf" ];
  Alcotest.check_raises "raw key length"
    (Invalid_argument "Aes.key_of_raw: need 16 bytes")
    (fun () -> ignore (Crypto.Aes.key_of_raw "short"))

let cipher_suite_roundtrips =
  QCheck.Test.make ~name:"cipher suites roundtrip" ~count:200
    QCheck.(triple (oneofl [ Crypto.Cipher.Xtea; Crypto.Cipher.Aes ]) string string)
    (fun (suite, key, plaintext) ->
      let prepared = Crypto.Cipher.prepare suite key in
      let ct = Crypto.Cipher.encrypt prepared ~nonce:"n" plaintext in
      Crypto.Cipher.decrypt prepared ~nonce:"n" ct = plaintext
      && String.length ct
         = Crypto.Cipher.ciphertext_length suite (String.length plaintext))

let cipher_suites_differ () =
  let xtea = Crypto.Cipher.prepare Crypto.Cipher.Xtea "k" in
  let aes = Crypto.Cipher.prepare Crypto.Cipher.Aes "k" in
  Alcotest.(check bool) "distinct ciphertexts" false
    (Crypto.Cipher.encrypt xtea ~nonce:"n" "same input padded to len"
     = Crypto.Cipher.encrypt aes ~nonce:"n" "same input padded to len");
  Alcotest.(check (option string)) "suite naming roundtrip" (Some "aes")
    (Option.map Crypto.Cipher.suite_to_string (Crypto.Cipher.suite_of_string "aes"))

let prng_deterministic () =
  let a = Crypto.Prng.create 5L and b = Crypto.Prng.create 5L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Crypto.Prng.next64 a) (Crypto.Prng.next64 b)
  done

let prng_bounds =
  QCheck.Test.make ~name:"prng int within bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Crypto.Prng.create seed in
      let x = Crypto.Prng.int rng bound in
      x >= 0 && x < bound)

let prng_float_bounds =
  QCheck.Test.make ~name:"prng float_in within bounds" ~count:500 QCheck.int64
    (fun seed ->
      let rng = Crypto.Prng.create seed in
      let x = Crypto.Prng.float_in rng 0.25 0.75 in
      x >= 0.25 && x < 0.75)

let prng_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200 QCheck.int64
    (fun seed ->
      let rng = Crypto.Prng.create seed in
      let a = Array.init 50 (fun i -> i) in
      Crypto.Prng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.init 50 (fun i -> i))

let keys_derivation () =
  let keys = Crypto.Keys.create ~master:"m" () in
  Alcotest.(check bool) "labels separate" false
    (Crypto.Keys.derive keys "a" = Crypto.Keys.derive keys "b");
  Alcotest.(check string) "memoised and stable"
    (Crypto.Sha256.to_hex (Crypto.Keys.derive keys "a"))
    (Crypto.Sha256.to_hex (Crypto.Keys.derive keys "a"));
  let keys2 = Crypto.Keys.create ~master:"m2" () in
  Alcotest.(check bool) "master matters" false
    (Crypto.Keys.derive keys "a" = Crypto.Keys.derive keys2 "a")

let () =
  Alcotest.run "crypto"
    [ ( "sha256",
        [ Alcotest.test_case "FIPS vectors" `Quick sha256_vectors;
          Alcotest.test_case "incremental" `Quick sha256_incremental ] );
      ( "hmac",
        Alcotest.test_case "vectors" `Quick hmac_vectors
        :: List.map QCheck_alcotest.to_alcotest [ hmac_prepared_agrees ] );
      ( "xtea",
        Alcotest.test_case "sanity" `Quick xtea_differs
        :: List.map QCheck_alcotest.to_alcotest [ xtea_roundtrip ] );
      ( "cbc",
        [ Alcotest.test_case "nonce matters" `Quick cbc_nonce_matters;
          Alcotest.test_case "malformed input" `Quick cbc_malformed ]
        @ List.map QCheck_alcotest.to_alcotest
            [ cbc_roundtrip; cbc_prepared_agrees; cbc_lengths ] );
      ( "vernam",
        Alcotest.test_case "deterministic tokens" `Quick vernam_deterministic
        :: List.map QCheck_alcotest.to_alcotest [ vernam_involution ] );
      ( "ope",
        [ Alcotest.test_case "invalid inputs" `Quick ope_rejects_invalid;
          Alcotest.test_case "key dependent" `Quick ope_key_dependent ]
        @ List.map QCheck_alcotest.to_alcotest [ ope_monotone; ope_roundtrip ] );
      ( "aes",
        [ Alcotest.test_case "FIPS/NIST vectors" `Quick aes_vectors;
          Alcotest.test_case "suites differ" `Quick cipher_suites_differ ]
        @ List.map QCheck_alcotest.to_alcotest [ cipher_suite_roundtrips ] );
      ( "prng",
        Alcotest.test_case "deterministic" `Quick prng_deterministic
        :: List.map QCheck_alcotest.to_alcotest
             [ prng_bounds; prng_float_bounds; prng_shuffle_permutes ] );
      ("keys", [ Alcotest.test_case "derivation" `Quick keys_derivation ]) ]
