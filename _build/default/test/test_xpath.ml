(* XPath fragment tests: parser, printer, evaluator. *)

module Ast = Xpath.Ast
module Doc = Xmlcore.Doc

let parse = Xpath.Parser.parse

let doc () = Workload.Health.doc ()

let eval_values d q =
  List.filter_map (fun n -> Doc.value d n) (Xpath.Eval.eval d (parse q))

(* --- Parser ------------------------------------------------------ *)

let parser_shapes () =
  let p = parse "//patient" in
  Alcotest.(check bool) "absolute" true p.Ast.absolute;
  Alcotest.(check int) "one step" 1 (List.length p.Ast.steps);
  (match p.Ast.steps with
   | [ { Ast.axis = Ast.Descendant_or_self; test = Ast.Tag "patient"; predicates = [] } ] -> ()
   | _ -> Alcotest.fail "wrong step");
  let p = parse "/a/b//c" in
  (match List.map (fun s -> s.Ast.axis) p.Ast.steps with
   | [ Ast.Child; Ast.Child; Ast.Descendant_or_self ] -> ()
   | _ -> Alcotest.fail "wrong axes");
  let p = parse "//insurance//@coverage" in
  (match List.rev p.Ast.steps with
   | { Ast.test = Ast.Tag "@coverage"; _ } :: _ -> ()
   | _ -> Alcotest.fail "attribute test");
  let p = parse "//*" in
  (match p.Ast.steps with
   | [ { Ast.test = Ast.Wildcard; _ } ] -> ()
   | _ -> Alcotest.fail "wildcard")

let parser_predicates () =
  let p = parse "//patient[pname='Betty'][.//disease='diarrhea']" in
  (match p.Ast.steps with
   | [ { Ast.predicates = [ Ast.Compare (q1, Ast.Eq, "Betty"); Ast.Compare (q2, Ast.Eq, "diarrhea") ]; _ } ] ->
     Alcotest.(check bool) "q1 relative child" true
       (not q1.Ast.absolute
        && List.map (fun s -> s.Ast.axis) q1.Ast.steps = [ Ast.Child ]);
     Alcotest.(check bool) "q2 self-descendant" true
       (List.map (fun s -> s.Ast.axis) q2.Ast.steps = [ Ast.Descendant_or_self ])
   | _ -> Alcotest.fail "predicates");
  let p = parse "//a[b >= 10][c != 'x'][d]" in
  (match p.Ast.steps with
   | [ { Ast.predicates = [ Ast.Compare (_, Ast.Ge, "10"); Ast.Compare (_, Ast.Neq, "x"); Ast.Exists _ ]; _ } ] -> ()
   | _ -> Alcotest.fail "ops");
  (* The paper's Figure 7(b) query parses. *)
  let p = parse "//patient[.//insurance//@coverage>='10000']//SSN" in
  Alcotest.(check int) "two steps" 2 (List.length p.Ast.steps)

let parser_self_comparison () =
  let p = parse "//age[. >= 40]" in
  (match p.Ast.steps with
   | [ { Ast.predicates = [ Ast.Compare (q, Ast.Ge, "40") ]; _ } ] ->
     Alcotest.(check bool) "self path" true (q.Ast.steps = [])
   | _ -> Alcotest.fail "self comparison")

let parser_extended_axes () =
  let p = parse "//treat/.." in
  (match List.rev p.Ast.steps with
   | { Ast.axis = Ast.Parent; test = Ast.Wildcard; _ } :: _ -> ()
   | _ -> Alcotest.fail "expected parent step");
  let p = parse "//disease/parent::treat" in
  (match List.rev p.Ast.steps with
   | { Ast.axis = Ast.Parent; test = Ast.Tag "treat"; _ } :: _ -> ()
   | _ -> Alcotest.fail "expected named parent step");
  let p = parse "//pname/following-sibling::SSN" in
  (match List.rev p.Ast.steps with
   | { Ast.axis = Ast.Following_sibling; test = Ast.Tag "SSN"; _ } :: _ -> ()
   | _ -> Alcotest.fail "expected following-sibling step");
  (* Inside predicates too. *)
  let p = parse "//SSN[../pname='Betty']" in
  (match p.Ast.steps with
   | [ { Ast.predicates = [ Ast.Compare (q, Ast.Eq, "Betty") ]; _ } ] ->
     (match q.Ast.steps with
      | [ { Ast.axis = Ast.Parent; _ }; { Ast.axis = Ast.Child; Ast.test = Ast.Tag "pname"; _ } ] -> ()
      | _ -> Alcotest.fail "expected ../pname")
   | _ -> Alcotest.fail "expected one predicate");
  (* Explicit axes need a single slash. *)
  (match parse "//a//.." with
   | _ -> Alcotest.fail "'//..' should not parse"
   | exception Xpath.Parser.Parse_error _ -> ())

let eval_extended_axes () =
  let d = doc () in
  Alcotest.(check (list string)) "parent of disease values via treat" []
    (eval_values d "//disease/..");
  Alcotest.(check int) "treat parents" 4
    (List.length (Xpath.Eval.eval d (parse "//disease/..")));
  Alcotest.(check int) "named parent" 4
    (List.length (Xpath.Eval.eval d (parse "//disease/parent::treat")));
  Alcotest.(check int) "wrong named parent" 0
    (List.length (Xpath.Eval.eval d (parse "//disease/parent::patient")));
  Alcotest.(check (list string)) "SSN after pname" [ "276543"; "763895" ]
    (List.sort compare (eval_values d "//pname/following-sibling::SSN"));
  Alcotest.(check int) "nothing precedes pname" 0
    (List.length (Xpath.Eval.eval d (parse "//SSN/following-sibling::pname")));
  Alcotest.(check (list string)) "predicate with parent nav" [ "763895" ]
    (eval_values d "//SSN[../pname='Betty']");
  (* doctor follows disease inside each treat *)
  Alcotest.(check int) "doctor follows disease" 4
    (List.length (Xpath.Eval.eval d (parse "//disease/following-sibling::doctor")));
  (* second insurance of Matt follows the first *)
  Alcotest.(check int) "insurance follows insurance" 1
    (List.length (Xpath.Eval.eval d (parse "//insurance/following-sibling::insurance")))

let parser_errors () =
  let fails s =
    match parse s with
    | _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
    | exception Xpath.Parser.Parse_error _ -> ()
  in
  fails "//";
  fails "//a[";
  fails "//a[b=]";
  fails "//a]b";
  fails ""

let boolean_predicates_parse () =
  let p = parse "//patient[pname='Betty' or pname='Matt']" in
  (match p.Ast.steps with
   | [ { Ast.predicates = [ Ast.Or (Ast.Compare _, Ast.Compare _) ]; _ } ] -> ()
   | _ -> Alcotest.fail "or shape");
  let p = parse "//treat[disease='flu' and doctor='Walker']" in
  (match p.Ast.steps with
   | [ { Ast.predicates = [ Ast.And (Ast.Compare _, Ast.Compare _) ]; _ } ] -> ()
   | _ -> Alcotest.fail "and shape");
  let p = parse "//patient[not(insurance)]" in
  (match p.Ast.steps with
   | [ { Ast.predicates = [ Ast.Not (Ast.Exists _) ]; _ } ] -> ()
   | _ -> Alcotest.fail "not shape");
  (* 'and' binds tighter than 'or'; parens override. *)
  let p = parse "//a[b='1' or c='2' and d='3']" in
  (match p.Ast.steps with
   | [ { Ast.predicates = [ Ast.Or (Ast.Compare _, Ast.And _) ]; _ } ] -> ()
   | _ -> Alcotest.fail "precedence");
  let p = parse "//a[(b='1' or c='2') and d='3']" in
  (match p.Ast.steps with
   | [ { Ast.predicates = [ Ast.And (Ast.Or _, Ast.Compare _) ]; _ } ] -> ()
   | _ -> Alcotest.fail "parens");
  (* A tag that merely starts with a keyword is still a tag. *)
  let p = parse "//a[notes='x']" in
  (match p.Ast.steps with
   | [ { Ast.predicates = [ Ast.Compare _ ]; _ } ] -> ()
   | _ -> Alcotest.fail "notes is a tag")

let boolean_predicates_eval () =
  let d = doc () in
  Alcotest.(check (list string)) "or" [ "Betty"; "Matt" ]
    (eval_values d "//patient[pname='Betty' or pname='Matt']/pname");
  Alcotest.(check (list string)) "and" [ "Betty" ]
    (eval_values d "//patient[age>=30 and .//disease='flu']/pname");
  Alcotest.(check (list string)) "not exists" []
    (eval_values d "//patient[not(insurance)]/pname");
  Alcotest.(check (list string)) "not compare" [ "Betty" ]
    (eval_values d "//patient[not(age>=40)]/pname");
  Alcotest.(check (list string)) "mixed" [ "Matt" ]
    (eval_values d
       "//patient[(pname='Matt' or pname='Nobody') and not(age<40)]/pname")

let eval_document_order_axes () =
  let d = doc () in
  (* preceding-sibling mirrors following-sibling. *)
  Alcotest.(check (list string)) "pname precedes SSN" [ "Betty"; "Matt" ]
    (List.sort compare (eval_values d "//SSN/preceding-sibling::pname"));
  Alcotest.(check int) "nothing precedes pname" 0
    (List.length (Xpath.Eval.eval d (parse "//pname/preceding-sibling::*")));
  (* following:: reaches across subtrees (Betty's SSN is followed by
     everything in Matt's record too). *)
  let betty_ssn_following =
    Xpath.Eval.eval d (parse "//patient[pname='Betty']/SSN/following::disease")
  in
  Alcotest.(check int) "all four diseases follow Betty's SSN" 4
    (List.length betty_ssn_following);
  (* preceding:: excludes ancestors. *)
  let age_preceding = Xpath.Eval.eval d (parse "//patient[pname='Matt']/age/preceding::patient") in
  Alcotest.(check int) "only Betty's record precedes (Matt is an ancestor)" 1
    (List.length age_preceding);
  (* following excludes descendants: Betty's second treat plus Matt's
     two, deduplicated across the two context nodes. *)
  Alcotest.(check int) "treats after Betty's treats" 3
    (List.length
       (Xpath.Eval.eval d (parse "//patient[pname='Betty']/treat/following::treat")))

let union_parsing () =
  Alcotest.(check int) "three branches" 3
    (List.length (Xpath.Parser.parse_union "//a | //b/c | /d"));
  Alcotest.(check int) "single path" 1
    (List.length (Xpath.Parser.parse_union "//a"));
  (* '|' inside a literal does not split. *)
  Alcotest.(check int) "literal pipe" 1
    (List.length (Xpath.Parser.parse_union "//a[b='x|y']"));
  (match Xpath.Parser.parse_union "//a | " with
   | _ -> Alcotest.fail "empty branch should fail"
   | exception Xpath.Parser.Parse_error _ -> ())

let union_eval () =
  let d = doc () in
  let nodes = Xpath.Eval.eval_union d (Xpath.Parser.parse_union "//pname | //SSN") in
  Alcotest.(check int) "both branches" 4 (List.length nodes);
  (* Overlapping branches deduplicate. *)
  let overlap =
    Xpath.Eval.eval_union d (Xpath.Parser.parse_union "//disease | //treat/disease")
  in
  Alcotest.(check int) "dedup" 4 (List.length overlap);
  (* Document order across branches. *)
  let ordered =
    Xpath.Eval.eval_union d (Xpath.Parser.parse_union "//SSN | //pname")
  in
  Alcotest.(check bool) "sorted" true (ordered = List.sort compare ordered)

let to_string_roundtrip () =
  List.iter
    (fun q ->
      let p = parse q in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" q)
        true
        (Ast.equal_path p (parse (Ast.to_string p))))
    [ "//patient"; "/a/b//c"; "//a[b='x']"; "//a[.//b>=10][c]/d";
      "//insurance//@coverage"; "//*[a='1']"; "//age[.>=40]";
      "//patient[pname='Betty'][.//disease='diarrhea']/SSN";
      "//disease/.."; "//disease/parent::treat";
      "//pname/following-sibling::SSN"; "//SSN[../pname='Betty']";
      "//patient[pname='Betty' or pname='Matt']";
      "//treat[disease='flu' and doctor='Walker']/doctor";
      "//patient[not(age>=40)]"; "//a[(b='1' or c='2') and not(d)]" ]

let tags_of_path () =
  let p = parse "//patient[pname='Betty'][.//disease='x']//treat/doctor" in
  Alcotest.(check (list string)) "tags"
    [ "patient"; "pname"; "disease"; "treat"; "doctor" ]
    (Ast.tags_of_path p)

(* --- Evaluator --------------------------------------------------- *)

let eval_axes () =
  let d = doc () in
  Alcotest.(check int) "//patient" 2 (List.length (Xpath.Eval.eval d (parse "//patient")));
  Alcotest.(check int) "/hospital" 1 (List.length (Xpath.Eval.eval d (parse "/hospital")));
  Alcotest.(check int) "/patient (root mismatch)" 0
    (List.length (Xpath.Eval.eval d (parse "/patient")));
  Alcotest.(check int) "//disease" 4 (List.length (Xpath.Eval.eval d (parse "//disease")));
  Alcotest.(check int) "//patient//disease" 4
    (List.length (Xpath.Eval.eval d (parse "//patient//disease")));
  Alcotest.(check int) "//patient/disease (not children)" 0
    (List.length (Xpath.Eval.eval d (parse "//patient/disease")));
  Alcotest.(check int) "//insurance/@coverage" 3
    (List.length (Xpath.Eval.eval d (parse "//insurance/@coverage")));
  (* Wildcard skips attributes: Betty's insurance has 2 policy#
     children; Matt's two insurances have 1 each. *)
  Alcotest.(check int) "//insurance/*" 4
    (List.length (Xpath.Eval.eval d (parse "//insurance/*")))

let eval_predicates () =
  let d = doc () in
  Alcotest.(check (list string)) "Betty's diseases" [ "diarrhea"; "flu" ]
    (eval_values d "//patient[pname='Betty']//disease");
  Alcotest.(check (list string)) "who has leukemia" [ "Matt" ]
    (eval_values d "//patient[.//disease='leukemia']/pname");
  Alcotest.(check (list string)) "age >= 40" [ "Matt" ]
    (eval_values d "//patient[age>=40]/pname");
  Alcotest.(check (list string)) "age > 40" []
    (eval_values d "//patient[age>40]/pname");
  Alcotest.(check (list string)) "numeric not lexicographic" [ "Betty"; "Matt" ]
    (eval_values d "//patient[age>=5]/pname");
  Alcotest.(check (list string)) "self comparison" [ "40" ]
    (eval_values d "//age[.>=40]");
  Alcotest.(check (list string)) "coverage filter" [ "Betty" ]
    (eval_values d "//patient[.//insurance/@coverage>=100000]/pname");
  Alcotest.(check (list string)) "exists predicate" [ "Betty"; "Matt" ]
    (eval_values d "//patient[insurance]/pname");
  Alcotest.(check (list string)) "neq" [ "Matt" ]
    (eval_values d "//patient[pname!='Betty']/pname")

let eval_figure7 () =
  let d = doc () in
  (* Figure 7(b): coverage >= 10000 holds for Betty (1000000) and Matt
     (10000); both patients' SSNs come back. *)
  Alcotest.(check int) "paper query" 2
    (List.length
       (Xpath.Eval.eval d (parse "//patient[.//insurance//@coverage>='10000']//SSN")))

let eval_doc_order_dedup =
  QCheck.Test.make ~name:"results sorted and distinct" ~count:100
    Helpers.arbitrary_doc
    (fun d ->
      List.for_all
        (fun q ->
          let ns = Xpath.Eval.eval d (parse q) in
          ns = List.sort_uniq compare ns)
        [ "//a"; "//a//b"; "//*"; "//a[b='x']"; "/root//c" ])

let eval_from_context () =
  let d = doc () in
  (match Xpath.Eval.eval d (parse "//patient") with
   | [ betty; matt ] ->
     let q = { (parse "//disease") with Ast.absolute = false } in
     Alcotest.(check int) "from betty" 2
       (List.length (Xpath.Eval.eval_from d [ betty ] q));
     Alcotest.(check int) "from matt" 2
       (List.length (Xpath.Eval.eval_from d [ matt ] q))
   | _ -> Alcotest.fail "expected two patients")

let compare_values_cases () =
  let open Xpath.Eval in
  Alcotest.(check bool) "numeric" true (compare_values "9" Ast.Lt "10");
  Alcotest.(check bool) "lexicographic" false (compare_values "b9" Ast.Lt "a10");
  Alcotest.(check bool) "eq" true (compare_values "10.0" Ast.Eq "10");
  Alcotest.(check bool) "string eq" true (compare_values "xy" Ast.Eq "xy");
  Alcotest.(check bool) "mixed falls back to string" true
    (compare_values "10x" Ast.Gt "10")

(* Brute-force scan cross-checks the evaluator's descendant axis. *)
let brute_descendant_tag d tag =
  List.filter (fun n -> Doc.tag d n = tag) (List.init (Doc.node_count d) (fun i -> i))

let eval_vs_brute =
  QCheck.Test.make ~name:"//tag = brute-force scan" ~count:100
    Helpers.arbitrary_doc
    (fun d ->
      List.for_all
        (fun tag ->
          Xpath.Eval.eval d (parse ("//" ^ tag)) = brute_descendant_tag d tag)
        [ "a"; "b"; "item"; "name" ])

let () =
  Alcotest.run "xpath"
    [ ( "parser",
        [ Alcotest.test_case "shapes" `Quick parser_shapes;
          Alcotest.test_case "predicates" `Quick parser_predicates;
          Alcotest.test_case "self comparison" `Quick parser_self_comparison;
          Alcotest.test_case "extended axes" `Quick parser_extended_axes;
          Alcotest.test_case "boolean predicates" `Quick boolean_predicates_parse;
          Alcotest.test_case "boolean predicate eval" `Quick boolean_predicates_eval;
          Alcotest.test_case "document-order axes" `Quick eval_document_order_axes;
          Alcotest.test_case "unions" `Quick union_parsing;
          Alcotest.test_case "union eval" `Quick union_eval;
          Alcotest.test_case "errors" `Quick parser_errors;
          Alcotest.test_case "to_string roundtrip" `Quick to_string_roundtrip;
          Alcotest.test_case "tags_of_path" `Quick tags_of_path ] );
      ( "eval",
        [ Alcotest.test_case "axes" `Quick eval_axes;
          Alcotest.test_case "extended axes" `Quick eval_extended_axes;
          Alcotest.test_case "predicates" `Quick eval_predicates;
          Alcotest.test_case "figure 7 query" `Quick eval_figure7;
          Alcotest.test_case "context evaluation" `Quick eval_from_context;
          Alcotest.test_case "compare_values" `Quick compare_values_cases ]
        @ List.map QCheck_alcotest.to_alcotest [ eval_doc_order_dedup; eval_vs_brute ] ) ]
