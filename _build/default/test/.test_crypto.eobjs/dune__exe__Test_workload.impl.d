test/test_workload.ml: Alcotest Crypto Hashtbl List Option Printf Secure String Workload Xmlcore Xpath
