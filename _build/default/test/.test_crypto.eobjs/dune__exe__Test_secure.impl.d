test/test_secure.ml: Alcotest Btree Bytes Char Crypto Float Helpers Int64 List Option Printf QCheck QCheck_alcotest Secure String Workload Xmlcore Xpath
