test/test_xquery.ml: Alcotest List Printf Secure String Workload Xmlcore Xpath Xquery
