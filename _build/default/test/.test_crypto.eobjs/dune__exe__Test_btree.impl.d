test/test_btree.ml: Alcotest Btree Gen Int64 List Option Printf QCheck QCheck_alcotest String
