test/test_dsi.ml: Alcotest Dsi Helpers List QCheck QCheck_alcotest Workload Xmlcore
