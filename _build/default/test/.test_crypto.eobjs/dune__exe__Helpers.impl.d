test/helpers.ml: Alcotest Array Crypto Int64 List QCheck QCheck_alcotest Xmlcore
