test/test_update.ml: Alcotest Dsi Float Helpers List Printf QCheck QCheck_alcotest Secure Workload Xmlcore Xpath
