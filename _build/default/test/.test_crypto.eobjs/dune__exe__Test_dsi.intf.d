test/test_dsi.mli:
