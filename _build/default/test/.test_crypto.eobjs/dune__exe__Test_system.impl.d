test/test_system.ml: Alcotest Btree Crypto Float Hashtbl Helpers List Option Printf QCheck QCheck_alcotest Secure String Workload Xmlcore Xpath
