test/test_protocol.ml: Alcotest Int64 List QCheck QCheck_alcotest Secure String Workload Xpath
