test/test_xml.ml: Alcotest Bytes Char Filename Fun Helpers List Printf QCheck QCheck_alcotest String Sys Workload Xmlcore
