test/test_xpath.ml: Alcotest Helpers List Printf QCheck QCheck_alcotest Workload Xmlcore Xpath
