test/test_persist.ml: Alcotest Bytes Char Filename Fun Helpers List Secure String Sys Workload Xpath
