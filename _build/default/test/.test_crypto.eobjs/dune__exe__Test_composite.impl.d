test/test_composite.ml: Alcotest Crypto Helpers List QCheck QCheck_alcotest Secure String Workload Xmlcore Xpath
