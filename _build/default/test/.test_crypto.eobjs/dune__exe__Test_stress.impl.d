test/test_stress.ml: Alcotest Dsi Helpers List Printf Secure String Workload Xmlcore Xpath
