(* Persistence tests: save/load round trips, integrity checks. *)

module System = Secure.System
module Persist = Secure.Persist

let parse = Xpath.Parser.parse

let build_system () =
  let doc = Workload.Health.generate ~patients:40 () in
  let scs = Workload.Health.constraints () in
  fst (System.setup ~master:"persist-master" doc scs Secure.Scheme.Opt)

let queries =
  [ "//patient/pname"; "//patient[.//disease='flu']/pname";
    "//insurance/@coverage"; "//patient[age>=50]/SSN"; "//treat/doctor" ]

let roundtrip_preserves_answers () =
  let sys = build_system () in
  let restored = Persist.of_string ~master:"persist-master" (Persist.to_string sys) in
  List.iter
    (fun q ->
      let query = parse q in
      let expected, _ = System.evaluate sys query in
      let got, _ = System.evaluate restored query in
      Helpers.check_trees_equal q expected got)
    queries;
  (* Aggregates survive too (catalog reconstruction). *)
  List.iter
    (fun q ->
      let query = parse q in
      Alcotest.(check (option string)) ("max " ^ q)
        (fst (System.aggregate sys `Max query))
        (fst (System.aggregate restored `Max query)))
    [ "//age"; "//disease" ]

let roundtrip_via_file () =
  let sys = build_system () in
  let path = Filename.temp_file "sxq" ".host" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save sys path;
      let restored = Persist.load ~master:"persist-master" path in
      let q = parse "//patient[.//disease='flu']/pname" in
      Helpers.check_trees_equal "file roundtrip"
        (fst (System.evaluate sys q))
        (fst (System.evaluate restored q)))

let stable_encoding () =
  let sys = build_system () in
  Alcotest.(check bool) "deterministic encoding" true
    (Persist.to_string sys = Persist.to_string sys)

let wrong_master_rejected () =
  let sys = build_system () in
  let data = Persist.to_string sys in
  (match Persist.of_string ~master:"wrong" data with
   | _ -> Alcotest.fail "wrong master must be rejected"
   | exception Persist.Corrupt _ -> ())

let tampering_rejected () =
  let sys = build_system () in
  let data = Bytes.of_string (Persist.to_string sys) in
  (* Flip a byte in the middle of the payload. *)
  let i = Bytes.length data / 2 in
  Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0x40));
  (match Persist.of_string ~master:"persist-master" (Bytes.to_string data) with
   | _ -> Alcotest.fail "tampered file must be rejected"
   | exception Persist.Corrupt _ -> ())

let truncation_rejected () =
  let sys = build_system () in
  let data = Persist.to_string sys in
  List.iter
    (fun keep ->
      match Persist.of_string ~master:"persist-master" (String.sub data 0 keep) with
      | _ -> Alcotest.failf "truncation to %d must be rejected" keep
      | exception Persist.Corrupt _ -> ())
    [ 0; 7; 40; String.length data / 2; String.length data - 1 ]

let updated_system_persists () =
  let sys = build_system () in
  let sys2, _ =
    System.update sys
      (Secure.Update.Set_value (parse "//patient/age", "64"))
  in
  let restored = Persist.of_string ~master:"persist-master" (Persist.to_string sys2) in
  let q = parse "//patient[age=64]/pname" in
  Helpers.check_trees_equal "post-update persistence"
    (fst (System.evaluate sys2 q))
    (fst (System.evaluate restored q))

let () =
  Alcotest.run "persist"
    [ ( "roundtrip",
        [ Alcotest.test_case "answers preserved" `Quick roundtrip_preserves_answers;
          Alcotest.test_case "file io" `Quick roundtrip_via_file;
          Alcotest.test_case "deterministic" `Quick stable_encoding;
          Alcotest.test_case "after update" `Quick updated_system_persists ] );
      ( "integrity",
        [ Alcotest.test_case "wrong master" `Quick wrong_master_rejected;
          Alcotest.test_case "tampering" `Quick tampering_rejected;
          Alcotest.test_case "truncation" `Quick truncation_rejected ] ) ]
