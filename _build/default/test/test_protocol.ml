(* Wire protocol tests: request/response codecs. *)

module Squery = Secure.Squery
module Protocol = Secure.Protocol
module System = Secure.System

let translate_all () =
  (* Translate a battery of real queries and roundtrip each request. *)
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Secure.Scheme.Opt in
  List.iter
    (fun q ->
      let squery = Secure.Client.translate (System.client sys) (Xpath.Parser.parse q) in
      let roundtripped = Protocol.roundtrip_request squery in
      Alcotest.(check string) q (Squery.to_string squery)
        (Squery.to_string roundtripped))
    [ "//patient"; "//patient[pname='Betty']//disease"; "//insurance/policy#";
      "//patient[.//insurance//@coverage>='10000']//SSN"; "//*";
      "//disease/.."; "//pname/following-sibling::SSN";
      "//treat[disease='flu'][doctor!='Smith']/doctor";
      "/hospital/patient/age" ]

let response_roundtrip () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Secure.Scheme.Opt in
  let squery =
    Secure.Client.translate (System.client sys)
      (Xpath.Parser.parse "//patient[pname='Betty']//disease")
  in
  let response = Secure.Server.answer (System.server sys) squery in
  let rt = Protocol.roundtrip_response response in
  Alcotest.(check int) "block count"
    (List.length response.Secure.Server.blocks)
    (List.length rt.Secure.Server.blocks);
  List.iter2
    (fun a b ->
      Alcotest.(check int) "id" a.Secure.Encrypt.id b.Secure.Encrypt.id;
      Alcotest.(check string) "ciphertext" a.Secure.Encrypt.ciphertext
        b.Secure.Encrypt.ciphertext;
      Alcotest.(check bool) "decoy flag" a.Secure.Encrypt.has_decoy
        b.Secure.Encrypt.has_decoy)
    response.Secure.Server.blocks rt.Secure.Server.blocks;
  Alcotest.(check int) "stats" response.Secure.Server.btree_hits
    rt.Secure.Server.btree_hits

let malformed_rejected () =
  let rejects data =
    match Protocol.decode_request data with
    | _ -> Alcotest.failf "%S should be rejected" data
    | exception Protocol.Malformed _ -> ()
  in
  rejects "";
  rejects "\255\255\255\255\255\255\255\255";
  rejects (String.make 100 '\000' ^ "x");
  (* Valid prefix with trailing garbage. *)
  let good =
    Protocol.encode_request
      { Squery.absolute = true;
        steps =
          [ { Squery.axis = Xpath.Ast.Child;
              test = Squery.Tokens [ Squery.Clear "a" ];
              predicates = [] } ] }
  in
  rejects (good ^ "junk");
  (match Protocol.decode_response "\001" with
   | _ -> Alcotest.fail "bad response accepted"
   | exception Protocol.Malformed _ -> ())

(* Random squery generator for the roundtrip property. *)
let squery_gen =
  let open QCheck.Gen in
  let token =
    oneof
      [ map (fun s -> Squery.Clear ("t" ^ s)) (string_size (int_range 0 5));
        map (fun s -> Squery.Enc s) (string_size (int_range 1 16)) ]
  in
  let test =
    oneof
      [ return Squery.Any;
        map (fun ts -> Squery.Tokens ts) (list_size (int_range 1 3) token) ]
  in
  let axis =
    oneofl
      [ Xpath.Ast.Child; Xpath.Ast.Descendant_or_self; Xpath.Ast.Parent;
        Xpath.Ast.Following_sibling ]
  in
  let rec path depth =
    let* absolute = bool in
    let* steps = list_size (int_range 1 3) (step depth) in
    return { Squery.absolute; steps }
  and step depth =
    let* axis = axis in
    let* test = test in
    let* predicates =
      if depth = 0 then return []
      else list_size (int_range 0 2) (predicate (depth - 1))
    in
    return { Squery.axis; test; predicates }
  and predicate depth =
    let* choice = int_range 0 (if depth = 0 then 1 else 4) in
    match choice with
    | 0 ->
      let* q = path depth in
      return (Squery.Exists q)
    | 1 ->
      let* q = path depth in
      let* ranges =
        list_size (int_range 0 2)
          (map2 (fun a b -> Int64.of_int (min a b), Int64.of_int (max a b)) nat nat)
      in
      let* known = bool in
      return
        (Squery.Value (q, if known then Squery.Ranges ranges else Squery.Unknown))
    | 2 ->
      let* a = predicate (depth - 1) in
      let* b = predicate (depth - 1) in
      return (Squery.P_and (a, b))
    | 3 ->
      let* a = predicate (depth - 1) in
      let* b = predicate (depth - 1) in
      return (Squery.P_or (a, b))
    | _ ->
      let* a = predicate (depth - 1) in
      return (Squery.P_not a)
  in
  path 2

let request_roundtrip_prop =
  QCheck.Test.make ~name:"encode/decode request = id" ~count:300
    (QCheck.make ~print:Squery.to_string squery_gen)
    (fun q -> Squery.to_string (Protocol.roundtrip_request q) = Squery.to_string q)

let () =
  Alcotest.run "protocol"
    [ ( "requests",
        [ Alcotest.test_case "real queries roundtrip" `Quick translate_all;
          Alcotest.test_case "malformed rejected" `Quick malformed_rejected ]
        @ List.map QCheck_alcotest.to_alcotest [ request_roundtrip_prop ] );
      ("responses", [ Alcotest.test_case "roundtrip" `Quick response_roundtrip ]) ]
